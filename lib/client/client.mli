(** Typed client for the Hercules design-server.

    Wraps one Unix-domain socket connection to a {!Ddf_server.Server}
    daemon.  Every call sends one {!Ddf_wire.Wire.request} and blocks
    for its response; server-side failures come back as
    {!Client_error}.  A client is not thread-safe — give each thread
    its own connection, as the server gives each connection its own
    session (task window, flow catalog, selections). *)

exception Client_error of string
(** A server-side error response, a protocol violation, or a dropped
    connection. *)

type t

val connect :
  ?user:string -> ?version:int -> ?timeout:float -> ?retries:int ->
  socket:string -> unit -> t
(** Connect to the daemon listening on [socket] and introduce
    ourselves as [user] (default ["anonymous"]); the server stamps
    that identity on every instance and history record this
    connection creates.

    [version] (default {!Ddf_wire.Wire.protocol_version}) is the
    protocol dialect announced in the handshake — a mismatch is
    refused by the server with a typed error.  [timeout] bounds each
    request's wait for a response (seconds); on expiry the call raises
    and the connection is dropped, to be redialed on the next call.
    [retries] (default 0) is how many times a call survives a {e
    transport} failure: the client redials with bounded exponential
    backoff (50ms doubling to 1s) and resends, so CLI verbs ride out a
    daemon restart or failover.  Server [Error] responses are never
    retried.  With [retries > 0] a mutation can be delivered more than
    once if the connection dies mid-call. *)

val close : t -> unit
(** Close the connection (idempotent). *)

val with_client :
  ?user:string -> ?version:int -> ?timeout:float -> ?retries:int ->
  socket:string -> (t -> 'a) -> 'a
(** [connect], run, [close] — also on exception. *)

val user : t -> string

(** {1 The session surface} *)

val ping : t -> unit
val stat : t -> Ddf_wire.Wire.stat

val catalog : t -> Ddf_wire.Wire.catalog -> string list
(** Entity, tool or flow names known to this connection's session. *)

val browse : t -> Ddf_store.Store.filter -> Ddf_wire.Wire.instance_row list
(** Whole-store browse; rows carry entity and metadata so the client
    can render them without further round trips. *)

val install :
  t ->
  entity:string ->
  ?label:string ->
  ?keywords:string list ->
  Ddf_persist.Sexp.t ->
  Ddf_store.Store.iid
(** Install a value (in {!Ddf_persist.Codec} form) as a new instance. *)

val annotate :
  t ->
  ?label:string ->
  ?comment:string ->
  ?keywords:string list ->
  Ddf_store.Store.iid ->
  unit

val start_goal : t -> string -> int
(** Start a goal-based flow; returns the root node id. *)

val start_data : t -> Ddf_store.Store.iid -> int
(** Start a data-based flow from an existing instance. *)

val expand : t -> int -> (int * string) list
(** Expand a node; returns the fresh (node id, entity) pairs. *)

val specialize : t -> int -> string -> unit
val select : t -> int -> Ddf_store.Store.iid list -> unit
val node_browse : t -> int -> Ddf_store.Store.filter -> Ddf_store.Store.iid list
val leaves : t -> (int * string) list
val run : t -> int -> Ddf_store.Store.iid list
val render : t -> string
val recall : t -> Ddf_store.Store.iid -> int
val trace : t -> Ddf_store.Store.iid -> string
val uses : t -> Ddf_store.Store.iid -> Ddf_store.Store.iid list

val refresh : t -> Ddf_store.Store.iid -> Ddf_store.Store.iid * int * int
(** [Consistency.refresh]: the fresh instance, tasks re-run, tasks
    reused. *)

val save_flow : t -> string -> unit
val load_flow : t -> string -> int list

(** {1 Administration} *)

val lag : t -> int * Ddf_wire.Wire.lag_row list
(** Replication lag as seen by this server: its own journal seqno and
    one row per subscribed follower (acked / sent watermarks). *)

val compact : t -> unit
(** Ask the daemon to fold its journal into a fresh snapshot now. *)

val batch : t -> Ddf_wire.Wire.request list -> Ddf_wire.Wire.response list
(** Pipeline: send the requests as one [Batch] frame and return their
    responses positionally (always the same length as the input).  The
    server executes them in order; an inner failure is an [Error] at
    its position and execution continues — effects of earlier members
    are not rolled back.  A batch containing a mutation runs as one
    writer job, so its writes share one group commit (and one fsync).
    @raise Client_error on a top-level refusal (e.g. a read-only
    follower rejecting a mutating batch) or a length mismatch. *)

val shutdown : t -> unit
(** Ask the daemon to shut down gracefully, then close this
    connection. *)

(** {1 Escape hatch} *)

val call : t -> Ddf_wire.Wire.request -> Ddf_wire.Wire.response
(** Raw request/response; [Error] responses are returned, not
    raised.  @raise Client_error on a dropped connection. *)

(** {1 Read/write splitting over a replica set}

    A {!Pool.pool} watches a set of endpoints — one primary and any
    number of followers — classifying each by the role its [stat]
    reports.  {!Pool.read} round-robins over live followers (read
    scaling), {!Pool.write} targets the primary; both re-probe the set
    when their endpoint fails, so a promoted follower is discovered
    and adopted without restarting the client.  Like a single client,
    a pool is not thread-safe: one per thread. *)

module Pool : sig
  type pool

  val connect : ?user:string -> ?timeout:float -> string list -> pool
  (** Probe every endpoint (sockets); unreachable ones stay in the set
      and are re-probed on failover. *)

  val endpoints : pool -> (string * string) list
  (** [(socket, role)] per member; role is ["primary"], ["follower"]
      or ["down"]. *)

  val read : pool -> (t -> 'a) -> 'a
  (** Run a read on a live follower (round-robin), falling back to the
      primary when no follower is up.  A member that stops answering
      is marked down and the read moves on; a server [Error] from a
      live member is raised as the answer.
      @raise Client_error when no endpoint can serve. *)

  val write : pool -> (t -> 'a) -> 'a
  (** Run a write on the primary; when it is gone, re-probe everything
      once to find a promoted follower and retry.
      @raise Client_error when no writable endpoint exists. *)

  val batch :
    pool -> Ddf_wire.Wire.request list -> Ddf_wire.Wire.response list
  (** One pipeline frame, routed to the primary iff any member is a
      mutation (a follower would reject it), to a follower otherwise. *)

  val close : pool -> unit
end
