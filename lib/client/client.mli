(** Typed client for the Hercules design-server.

    Wraps one Unix-domain socket connection to a {!Ddf_server.Server}
    daemon.  Every call sends one {!Ddf_wire.Wire.request} and blocks
    for its response; server-side failures come back as
    {!Client_error}.  A client is not thread-safe — give each thread
    its own connection, as the server gives each connection its own
    session (task window, flow catalog, selections). *)

exception Client_error of string
(** A server-side error response, a protocol violation, or a dropped
    connection. *)

type t

val connect : ?user:string -> socket:string -> unit -> t
(** Connect to the daemon listening on [socket] and introduce
    ourselves as [user] (default ["anonymous"]); the server stamps
    that identity on every instance and history record this
    connection creates. *)

val close : t -> unit
(** Close the connection (idempotent). *)

val with_client : ?user:string -> socket:string -> (t -> 'a) -> 'a
(** [connect], run, [close] — also on exception. *)

val user : t -> string

(** {1 The session surface} *)

val ping : t -> unit
val stat : t -> Ddf_wire.Wire.stat

val catalog : t -> Ddf_wire.Wire.catalog -> string list
(** Entity, tool or flow names known to this connection's session. *)

val browse : t -> Ddf_store.Store.filter -> Ddf_wire.Wire.instance_row list
(** Whole-store browse; rows carry entity and metadata so the client
    can render them without further round trips. *)

val install :
  t ->
  entity:string ->
  ?label:string ->
  ?keywords:string list ->
  Ddf_persist.Sexp.t ->
  Ddf_store.Store.iid
(** Install a value (in {!Ddf_persist.Codec} form) as a new instance. *)

val annotate :
  t ->
  ?label:string ->
  ?comment:string ->
  ?keywords:string list ->
  Ddf_store.Store.iid ->
  unit

val start_goal : t -> string -> int
(** Start a goal-based flow; returns the root node id. *)

val start_data : t -> Ddf_store.Store.iid -> int
(** Start a data-based flow from an existing instance. *)

val expand : t -> int -> (int * string) list
(** Expand a node; returns the fresh (node id, entity) pairs. *)

val specialize : t -> int -> string -> unit
val select : t -> int -> Ddf_store.Store.iid list -> unit
val node_browse : t -> int -> Ddf_store.Store.filter -> Ddf_store.Store.iid list
val leaves : t -> (int * string) list
val run : t -> int -> Ddf_store.Store.iid list
val render : t -> string
val recall : t -> Ddf_store.Store.iid -> int
val trace : t -> Ddf_store.Store.iid -> string
val uses : t -> Ddf_store.Store.iid -> Ddf_store.Store.iid list

val refresh : t -> Ddf_store.Store.iid -> Ddf_store.Store.iid * int * int
(** [Consistency.refresh]: the fresh instance, tasks re-run, tasks
    reused. *)

val save_flow : t -> string -> unit
val load_flow : t -> string -> int list

val shutdown : t -> unit
(** Ask the daemon to shut down gracefully, then close this
    connection. *)

(** {1 Escape hatch} *)

val call : t -> Ddf_wire.Wire.request -> Ddf_wire.Wire.response
(** Raw request/response; [Error] responses are returned, not
    raised.  @raise Client_error on a dropped connection. *)
