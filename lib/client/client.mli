(** Typed client for the Hercules design-server.

    Wraps one Unix-domain socket connection to a {!Ddf_server.Server}
    daemon.  Every call sends one {!Ddf_wire.Wire.request} and blocks
    for its response; failures carry a typed {!Ddf_core.Error.t}.  A
    client is not thread-safe — give each thread its own connection,
    as the server gives each connection its own session (task window,
    flow catalog, selections).

    Failure handling is classified, not blind.  With [retries > 0] a
    call resends only when resending cannot double-apply: after a
    send-phase transport failure (the server never saw a complete
    frame), after any failure of a {e read}, or after a server error
    with [retryable = true] — the server's assertion that the request
    was not executed (shed under overload, expired in the queue),
    whose [retry_after] hint floors the backoff.  A {e mutation} whose
    transport dies after the request was fully sent raises
    [`Ambiguous_commit]: it may or may not have committed, and the
    caller must reconcile (re-read, then decide) instead of resending.
    Retries are counted in [client.retries], ambiguous outcomes in
    [client.ambiguous_commits].

    When {!Ddf_obs.Obs} tracing is on, every call is a
    [client.request] span with one [client.attempt] child per wire
    exchange; the attempt's span context rides the frame header, so
    the server's dispatch (and its queue/fsync/follower child spans)
    join this client's trace.  Retries appear as [client.retry]
    instants between attempts. *)

exception Client_error of Ddf_core.Error.t
(** Deprecated alias of {!Ddf_core.Error.Ddf_error}: server-side
    errors, protocol violations and transport failures all raise the
    shared typed error.  Existing handlers keep catching; use
    {!Ddf_core.Error.message} for the text and the [code] for routing. *)

type t

val connect :
  ?user:string -> ?version:int -> ?timeout:float -> ?retries:int ->
  ?deadline:float -> socket:string -> unit -> t
(** Connect to the daemon listening on [socket] and introduce
    ourselves as [user] (default ["anonymous"]); the server stamps
    that identity on every instance and history record this
    connection creates.

    [version] (default {!Ddf_wire.Wire.protocol_version}) is the
    protocol dialect announced in the handshake — a mismatch is
    refused by the server with a final typed error.  [timeout] bounds
    each attempt's wait for a response (seconds); on expiry the
    connection is dropped, to be redialed on the next call.
    [retries] (default 0: fail fast) bounds classified resends with
    exponential backoff (50ms doubling to 1s).  [deadline] gives
    every call a total budget in seconds: the remaining budget is
    sent in each frame header so the server can shed requests the
    client has given up on, and retries stop when it is spent. *)

val close : t -> unit
(** Close the connection (idempotent). *)

val closed : t -> bool

val with_client :
  ?user:string -> ?version:int -> ?timeout:float -> ?retries:int ->
  ?deadline:float -> socket:string -> (t -> 'a) -> 'a
(** [connect], run, [close] — also on exception. *)

val user : t -> string

(** {1 The session surface} *)

val ping : t -> unit
val stat : t -> Ddf_wire.Wire.stat

val catalog : t -> Ddf_wire.Wire.catalog -> string list
(** Entity, tool or flow names known to this connection's session. *)

val browse : t -> Ddf_store.Store.filter -> Ddf_wire.Wire.instance_row list
(** Whole-store browse; rows carry entity and metadata so the client
    can render them without further round trips. *)

val install :
  t ->
  entity:string ->
  ?label:string ->
  ?keywords:string list ->
  Ddf_persist.Sexp.t ->
  Ddf_store.Store.iid
(** Install a value (in {!Ddf_persist.Codec} form) as a new instance. *)

val annotate :
  t ->
  ?label:string ->
  ?comment:string ->
  ?keywords:string list ->
  Ddf_store.Store.iid ->
  unit

val start_goal : t -> string -> int
(** Start a goal-based flow; returns the root node id. *)

val start_data : t -> Ddf_store.Store.iid -> int
(** Start a data-based flow from an existing instance. *)

val expand : t -> int -> (int * string) list
(** Expand a node; returns the fresh (node id, entity) pairs. *)

val specialize : t -> int -> string -> unit
val select : t -> int -> Ddf_store.Store.iid list -> unit
val node_browse : t -> int -> Ddf_store.Store.filter -> Ddf_store.Store.iid list
val leaves : t -> (int * string) list
val run : t -> int -> Ddf_store.Store.iid list
val render : t -> string
val recall : t -> Ddf_store.Store.iid -> int
val trace : t -> Ddf_store.Store.iid -> string
val uses : t -> Ddf_store.Store.iid -> Ddf_store.Store.iid list

val refresh : t -> Ddf_store.Store.iid -> Ddf_store.Store.iid * int * int
(** [Consistency.refresh]: the fresh instance, tasks re-run, tasks
    reused. *)

val save_flow : t -> string -> unit
val load_flow : t -> string -> int list

(** {1 Result-typed variants}

    The same session surface returning [(value, Ddf_core.Error.t)
    result] instead of raising — for callers that route on the error
    code (retry orchestration, degraded-mode UIs) without exception
    handlers. *)

val ping_r : t -> (unit, Ddf_core.Error.t) result
val stat_r : t -> (Ddf_wire.Wire.stat, Ddf_core.Error.t) result

val catalog_r :
  t -> Ddf_wire.Wire.catalog -> (string list, Ddf_core.Error.t) result

val browse_r :
  t ->
  Ddf_store.Store.filter ->
  (Ddf_wire.Wire.instance_row list, Ddf_core.Error.t) result

val install_r :
  t ->
  entity:string ->
  ?label:string ->
  ?keywords:string list ->
  Ddf_persist.Sexp.t ->
  (Ddf_store.Store.iid, Ddf_core.Error.t) result

val annotate_r :
  t ->
  ?label:string ->
  ?comment:string ->
  ?keywords:string list ->
  Ddf_store.Store.iid ->
  (unit, Ddf_core.Error.t) result

val start_goal_r : t -> string -> (int, Ddf_core.Error.t) result
val start_data_r : t -> Ddf_store.Store.iid -> (int, Ddf_core.Error.t) result
val expand_r : t -> int -> ((int * string) list, Ddf_core.Error.t) result
val specialize_r : t -> int -> string -> (unit, Ddf_core.Error.t) result

val select_r :
  t -> int -> Ddf_store.Store.iid list -> (unit, Ddf_core.Error.t) result

val node_browse_r :
  t ->
  int ->
  Ddf_store.Store.filter ->
  (Ddf_store.Store.iid list, Ddf_core.Error.t) result

val leaves_r : t -> ((int * string) list, Ddf_core.Error.t) result

val run_r :
  t -> int -> (Ddf_store.Store.iid list, Ddf_core.Error.t) result

val render_r : t -> (string, Ddf_core.Error.t) result
val recall_r : t -> Ddf_store.Store.iid -> (int, Ddf_core.Error.t) result
val trace_r : t -> Ddf_store.Store.iid -> (string, Ddf_core.Error.t) result

val uses_r :
  t ->
  Ddf_store.Store.iid ->
  (Ddf_store.Store.iid list, Ddf_core.Error.t) result

val refresh_r :
  t ->
  Ddf_store.Store.iid ->
  (Ddf_store.Store.iid * int * int, Ddf_core.Error.t) result

val save_flow_r : t -> string -> (unit, Ddf_core.Error.t) result
val load_flow_r : t -> string -> (int list, Ddf_core.Error.t) result

(** {1 Administration} *)

val lag : t -> int * Ddf_wire.Wire.lag_row list
(** Replication lag as seen by this server: its own journal seqno and
    one row per subscribed follower (acked / sent watermarks). *)

val compact : t -> unit
(** Ask the daemon to fold its journal into a fresh snapshot now. *)

val metrics : t -> Ddf_obs.Metrics.metric list
(** The server's metrics registry snapshot: counters, gauges and
    histograms with p50/p90/p99 quantiles — the payload behind
    [hercules remote metrics] and [hercules top]. *)

val snapshot_export : t -> out:string -> int * int
(** Ask the daemon to compact and stream its snapshot back in bounded
    chunks (wire v7).  The stream is spooled to [out ^ ".tmp"],
    verified against its digest and byte count, and renamed to [out];
    at no point does the snapshot exist as one in-memory string.
    Returns [(seq, bytes)] — the seqno the snapshot covers and its
    size.  Never retried (the server compacts first, a mutation).
    @raise Client_error on refusal (a pre-v7 negotiation) or a
    corrupt/short stream. *)

val batch : t -> Ddf_wire.Wire.request list -> Ddf_wire.Wire.response list
(** Pipeline: send the requests as one [Batch] frame and return their
    responses positionally (always the same length as the input).  The
    server executes them in order; an inner failure is an [Error] at
    its position and execution continues — effects of earlier members
    are not rolled back.  A batch containing a mutation runs as one
    writer job, so its writes share one group commit (and one fsync).
    @raise Client_error on a top-level refusal (e.g. a read-only
    follower rejecting a mutating batch) or a length mismatch. *)

val shutdown : t -> unit
(** Ask the daemon to shut down gracefully, then close this
    connection (idempotent: a no-op on a closed client). *)

(** {1 Anti-entropy sync (wire v6)}

    The raw verbs {!Ddf_sync.Sync} drives: a digest handshake, frame
    pulls, and frame pushes.  Useful directly for diagnostics
    ([hercules remote digest]); for an actual reconciliation use
    {!Ddf_sync.Sync.run}, which sequences them into bounded rounds. *)

val sync_digest :
  t ->
  string * int * int * string * (string * int) list * (int * string) list
(** The server's anti-entropy digest:
    [(wsid, base, seq, fingerprint, cursors, entries)] — see
    {!Ddf_wire.Wire.response}. *)

val sync_frames :
  t -> after:int -> limit:int -> (int * string * string) list
(** At most [limit] of the server's wal frames with seqno > [after],
    as [(seqno, md5, payload)]. *)

val sync_push :
  t ->
  origin:string ->
  upto:int ->
  (int * string * string) list ->
  Ddf_wire.Wire.sync_stats
(** Deliver a batch of [origin]'s frames for application and advance
    the server's persisted cursor for that origin to [upto].  An empty
    batch just moves the cursor. *)

val conflicts : t -> Ddf_wire.Wire.conflict_row list
(** The server's sync-conflict registry, resolved entries included. *)

val resolve : t -> conflict:int -> winner:Ddf_store.Store.iid -> unit
(** Pick the winning version of a surfaced conflict; [winner] must be
    the conflict's base, ours or theirs instance. *)

(** {1 Escape hatch} *)

val call : t -> Ddf_wire.Wire.request -> Ddf_wire.Wire.response
(** Raw request/response; [Error] responses are returned, not raised
    (though retryable ones are resent first when [retries > 0]).
    @raise Client_error on a dropped connection. *)

(** {1 Read/write splitting over a replica set}

    A {!Pool.pool} watches a set of endpoints — one primary and any
    number of followers — classifying each by the role its [stat]
    reports.  {!Pool.read} round-robins over live followers (read
    scaling), {!Pool.write} targets the primary.  A write failing
    with [`Unavailable] re-probes the set and retries once (the code
    asserts the request never executed), so a promoted follower is
    adopted without restarting the client; an [`Ambiguous_commit] is
    never resent.  When no primary is reachable the pool degrades:
    reads keep flowing to followers (counted in
    [pool.degraded_reads]) while writes fail fast, until a re-probe
    finds a primary again.  Like a single client, a pool is not
    thread-safe: one per thread. *)

module Pool : sig
  type pool

  val connect :
    ?user:string -> ?timeout:float -> ?deadline:float -> string list -> pool
  (** Probe every endpoint (sockets); unreachable ones stay in the set
      and are re-probed on failover.  [timeout] and [deadline] apply
      to every member connection. *)

  val endpoints : pool -> (string * string) list
  (** [(socket, role)] per member; role is ["primary"], ["follower"]
      or ["down"]. *)

  val degraded : pool -> bool
  (** No reachable primary: the pool serves follower reads only. *)

  val read : pool -> (t -> 'a) -> 'a
  (** Run a read on a live follower (round-robin), falling back to the
      primary when no follower is up.  A member that stops answering
      is marked down and the read moves on; a server error from a
      live member is raised as the answer.
      @raise Client_error when no endpoint can serve. *)

  val write : pool -> (t -> 'a) -> 'a
  (** Run a write on the primary; on [`Unavailable] — and only then —
      re-probe everything once to find a promoted follower and retry.
      @raise Client_error when no writable endpoint exists
      ([`Unavailable], and the pool is marked degraded). *)

  val batch :
    pool -> Ddf_wire.Wire.request list -> Ddf_wire.Wire.response list
  (** One pipeline frame, routed to the primary iff any member is a
      mutation (a follower would reject it), to a follower otherwise. *)

  val close : pool -> unit
end
