(* Typed client: one socket, blocking request/response.  All the
   interesting protocol work (framing, codecs) lives in Ddf_wire; this
   module is the thin typed veneer the CLI and tests use.

   Resilience: a client remembers how it connected, so when the
   transport fails (daemon restart, failover) it can redial with
   bounded exponential backoff and retry the request — up to [retries]
   attempts, default 0 (fail fast, the historical behaviour).  Only
   transport failures are retried; an [Error] response from the server
   is the answer, never a reason to reconnect.  [timeout] arms
   [SO_RCVTIMEO], so a request stuck behind a wedged daemon returns a
   timeout error instead of hanging; the connection is dropped (the
   reply could arrive late and desynchronize the stream) and redialed
   on the next call.  With [retries > 0], a mutation whose connection
   died mid-call may be delivered more than once — at-least-once, like
   re-running the CLI verb by hand. *)

module Wire = Ddf_wire.Wire

exception Client_error of string

let client_errorf fmt = Printf.ksprintf (fun s -> raise (Client_error s)) fmt

type t = {
  socket : string;
  c_user : string;
  c_version : int;
  c_timeout : float option;
  c_retries : int;
  mutable fd : Unix.file_descr option;
  mutable closed : bool;
}

let user t = t.c_user

let backoff_initial = 0.05
let backoff_max = 1.0

let drop t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* One dial attempt: socket, connect, hello.  The server answers the
   hello with Ok_unit, or refuses (version mismatch, capacity) with an
   Error we surface verbatim — and never retry. *)
let dial t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise (Client_error s))
      fmt
  in
  (match Unix.connect fd (Unix.ADDR_UNIX t.socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    fail "cannot connect to %s: %s" t.socket (Unix.error_message e));
  (match t.c_timeout with
  | Some s -> (
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  (match
     Wire.send fd
       (Wire.request_to_sexp
          (Wire.Hello { user = t.c_user; version = t.c_version }));
     Wire.recv fd
   with
  | Some sexp -> (
    match Wire.response_of_sexp sexp with
    | Wire.Ok_unit -> ()
    | Wire.Error m -> fail "%s" m
    | _ -> fail "unexpected response to hello")
  | None -> fail "server closed the connection during hello"
  | exception Wire.Wire_error m -> fail "%s" m
  | exception Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e));
  t.fd <- Some fd

(* Retryable? Connection refusals and resets are; a server [Error]
   (raised by [dial] after a completed round trip) is not.  We tell
   them apart by shape: dial re-raises transport problems as
   Client_error too, so retry decisions happen where the Unix error is
   still visible — hence dial_retrying catches only "cannot connect". *)
let rec dial_retrying t attempts backoff =
  match dial t with
  | () -> ()
  | exception (Client_error m as e) ->
    let transport =
      (* a refused hello is final; an unreachable socket is transient *)
      String.length m >= 14 && String.sub m 0 14 = "cannot connect"
    in
    if transport && attempts > 0 then begin
      Unix.sleepf backoff;
      dial_retrying t (attempts - 1) (Float.min (backoff *. 2.0) backoff_max)
    end
    else raise e

let ensure_connected t =
  if t.closed then client_errorf "connection is closed";
  match t.fd with
  | Some fd -> fd
  | None ->
    dial_retrying t t.c_retries backoff_initial;
    Option.get t.fd

let call t req =
  let rec attempt retries backoff =
    let fd = ensure_connected t in
    let retry e =
      drop t;
      if retries > 0 then begin
        Unix.sleepf backoff;
        attempt (retries - 1) (Float.min (backoff *. 2.0) backoff_max)
      end
      else raise e
    in
    match
      Wire.send fd (Wire.request_to_sexp req);
      Wire.recv fd
    with
    | Some sexp -> Wire.response_of_sexp sexp
    | None -> retry (Client_error "server closed the connection")
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* the reply may still arrive; the stream is no longer trustworthy *)
      drop t;
      client_errorf "request timed out after %gs"
        (Option.value t.c_timeout ~default:0.0)
    | exception Wire.Wire_error m -> retry (Client_error m)
    | exception Unix.Unix_error (e, _, _) ->
      retry (Client_error (Unix.error_message e))
  in
  attempt t.c_retries backoff_initial

(* Raise on Error, return the payload otherwise; each wrapper below
   then destructures the one constructor it expects. *)
let ok t req =
  match call t req with
  | Wire.Error m -> raise (Client_error m)
  | resp -> resp

let unexpected req resp =
  client_errorf "unexpected %s response to %s"
    (match (resp : Wire.response) with
    | Wire.Ok_unit -> "unit" | Wire.Ok_int _ -> "int"
    | Wire.Ok_ints _ -> "ints" | Wire.Ok_atoms _ -> "atoms"
    | Wire.Ok_text _ -> "text" | Wire.Ok_nodes _ -> "nodes"
    | Wire.Ok_rows _ -> "rows" | Wire.Ok_stat _ -> "stat"
    | Wire.Ok_refresh _ -> "refresh" | Wire.Ok_snapshot _ -> "snapshot"
    | Wire.Ok_frame _ -> "frame" | Wire.Ok_lags _ -> "lags"
    | Wire.Ok_batch _ -> "batch" | Wire.Error _ -> "error")
    (Wire.request_name req)

let ok_unit t req =
  match ok t req with Wire.Ok_unit -> () | resp -> unexpected req resp

let ok_int t req =
  match ok t req with Wire.Ok_int n -> n | resp -> unexpected req resp

let ok_ints t req =
  match ok t req with Wire.Ok_ints ns -> ns | resp -> unexpected req resp

let ok_atoms t req =
  match ok t req with Wire.Ok_atoms xs -> xs | resp -> unexpected req resp

let ok_text t req =
  match ok t req with Wire.Ok_text s -> s | resp -> unexpected req resp

let ok_nodes t req =
  match ok t req with Wire.Ok_nodes ns -> ns | resp -> unexpected req resp

let ok_rows t req =
  match ok t req with Wire.Ok_rows rs -> rs | resp -> unexpected req resp

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let connect ?(user = "anonymous") ?(version = Wire.protocol_version) ?timeout
    ?(retries = 0) ~socket () =
  let t =
    { socket; c_user = user; c_version = version; c_timeout = timeout;
      c_retries = retries; fd = None; closed = false }
  in
  dial_retrying t retries backoff_initial;
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop t
  end

let with_client ?user ?version ?timeout ?retries ~socket f =
  let t = connect ?user ?version ?timeout ?retries ~socket () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* The session surface                                                 *)
(* ------------------------------------------------------------------ *)

let ping t = ok_unit t Wire.Ping

let stat t =
  match ok t Wire.Stat with
  | Wire.Ok_stat s -> s
  | resp -> unexpected Wire.Stat resp

let catalog t which = ok_atoms t (Wire.Catalog which)
let browse t filter = ok_rows t (Wire.Browse filter)

let install t ~entity ?(label = "") ?(keywords = []) value =
  ok_int t (Wire.Install { entity; label; keywords; value })

let annotate t ?label ?comment ?keywords iid =
  ok_unit t (Wire.Annotate { iid; label; comment; keywords })

let start_goal t entity = ok_int t (Wire.Start_goal entity)
let start_data t iid = ok_int t (Wire.Start_data iid)
let expand t nid = ok_nodes t (Wire.Expand nid)
let specialize t nid sub = ok_unit t (Wire.Specialize (nid, sub))
let select t nid iids = ok_unit t (Wire.Select (nid, iids))
let node_browse t nid filter = ok_ints t (Wire.Node_browse (nid, filter))
let leaves t = ok_nodes t Wire.Leaves
let run t nid = ok_ints t (Wire.Run nid)
let render t = ok_text t Wire.Render
let recall t iid = ok_int t (Wire.Recall iid)
let trace t iid = ok_text t (Wire.Trace iid)
let uses t iid = ok_ints t (Wire.Uses iid)

let refresh t iid =
  match ok t (Wire.Refresh iid) with
  | Wire.Ok_refresh { fresh; reran; reused } -> (fresh, reran, reused)
  | resp -> unexpected (Wire.Refresh iid) resp

let save_flow t name = ok_unit t (Wire.Save_flow name)
let load_flow t name = ok_ints t (Wire.Load_flow name)

let lag t =
  match ok t Wire.Lag with
  | Wire.Ok_lags { primary_seq; rows } -> (primary_seq, rows)
  | resp -> unexpected Wire.Lag resp

let compact t = ok_unit t Wire.Compact

let batch t reqs =
  let req = Wire.Batch reqs in
  match ok t req with
  | Wire.Ok_batch resps ->
    let want = List.length reqs and got = List.length resps in
    if want <> got then
      client_errorf "batch answered %d of %d requests" got want;
    resps
  | resp -> unexpected req resp

let shutdown t =
  ok_unit t Wire.Shutdown;
  close t

(* ------------------------------------------------------------------ *)
(* Pool: read/write splitting over a replica set                       *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* Roles come from [stat]: each endpoint reports "primary" or
     "follower".  Reads round-robin over live followers (falling back
     to the primary when none are up); writes go to the primary, and a
     write that cannot reach one re-probes every endpoint — so when an
     operator promotes a follower, the pool finds the new primary on
     the next write instead of erroring out. *)

  type member = {
    ep : string;
    mutable conn : t option;
    mutable role : string;  (* "primary" | "follower" | "down" *)
  }

  type pool = {
    members : member list;
    p_user : string option;
    p_timeout : float option;
    mutable rr : int;
  }

  let probe pool m =
    (match m.conn with
    | Some c when c.closed -> m.conn <- None
    | Some _ | None -> ());
    (match m.conn with
    | Some _ -> ()
    | None -> (
      match
        connect ?user:pool.p_user ?timeout:pool.p_timeout ~socket:m.ep ()
      with
      | c -> m.conn <- Some c
      | exception Client_error _ -> ()));
    match m.conn with
    | None -> m.role <- "down"
    | Some c -> (
      match stat c with
      | s -> m.role <- s.Wire.st_role
      | exception Client_error _ ->
        close c;
        m.conn <- None;
        m.role <- "down")

  let connect ?user ?timeout endpoints =
    let members =
      List.map (fun ep -> { ep; conn = None; role = "down" }) endpoints
    in
    let pool = { members; p_user = user; p_timeout = timeout; rr = 0 } in
    List.iter (probe pool) members;
    pool

  let endpoints pool = List.map (fun m -> (m.ep, m.role)) pool.members

  let primary pool =
    List.find_opt
      (fun m -> m.role = "primary" && m.conn <> None)
      pool.members

  let followers pool =
    List.filter
      (fun m -> m.role = "follower" && m.conn <> None)
      pool.members

  let write pool f =
    let attempt () =
      match primary pool with
      | Some { conn = Some c; _ } -> Some (f c)
      | Some { conn = None; _ } | None -> None
    in
    match attempt () with
    | Some v -> v
    | None | (exception Client_error _) -> (
      (* failover: a follower may have been promoted since we probed *)
      List.iter (probe pool) pool.members;
      match attempt () with
      | Some v -> v
      | None -> raise (Client_error "no writable endpoint in the pool"))

  let read pool f =
    let rec go tries =
      if tries = 0 then write pool f   (* primary serves reads too *)
      else
        match followers pool with
        | [] -> write pool f
        | fs -> (
          let m = List.nth fs (pool.rr mod List.length fs) in
          pool.rr <- pool.rr + 1;
          match m.conn with
          | None -> go (tries - 1)
          | Some c -> (
            match f c with
            | v -> v
            | exception (Client_error _ as e) ->
              (* dead follower, or a real server error?  Re-probe: if
                 the endpoint still answers, the error is the answer. *)
              probe pool m;
              if m.role = "down" then go (tries - 1) else raise e))
    in
    go (List.length pool.members)

  (* One pipeline frame; primary iff any member mutates, since a
     follower rejects a batch that writes.  [batch] here is the
     single-connection pipeline above. *)
  let batch pool reqs =
    if List.exists Wire.is_mutation reqs then write pool (fun c -> batch c reqs)
    else read pool (fun c -> batch c reqs)

  let close pool =
    List.iter
      (fun m ->
        (match m.conn with
        | Some c -> ( try close c with Client_error _ -> ())
        | None -> ());
        m.conn <- None;
        m.role <- "down")
      pool.members
end
