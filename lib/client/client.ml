(* Typed client: one socket, blocking request/response.  All the
   interesting protocol work (framing, codecs) lives in Ddf_wire; this
   module is the thin typed veneer the CLI and tests use.

   Resilience is driven by the error taxonomy rather than blind
   redialing.  Every failure is classified before any retry decision:

   - send-phase transport failure: the server never saw a complete
     frame, so nothing executed — safe to resend anything;
   - recv-phase failure on a read: the answer is lost but re-asking is
     harmless — resend;
   - recv-phase failure on a MUTATION: the request was fully delivered
     and may have committed — surfaced as [`Ambiguous_commit], never
     resent (an at-least-once blind retry could double-apply);
   - a server error with [retryable = true] ([`Overloaded], a queue
     [`Timeout]): the server asserts the request was not executed —
     resend anything, honouring its retry-after hint;
   - any other server error is the answer, never a reason to retry.

   [retries] bounds the resend attempts (default 0: fail fast, the
   historical behaviour); backoff is exponential from 50ms to 1s with
   the server's retry-after hint as a floor.  [deadline] gives each
   call a total budget: the remaining budget rides in every frame
   header so the server can shed work the client will no longer read,
   and retries stop when the budget is spent.  [timeout] arms
   [SO_RCVTIMEO] per attempt; on expiry the connection is dropped (a
   late reply would desynchronize the stream) and redialed on the next
   call. *)

module Wire = Ddf_wire.Wire
module E = Ddf_core.Error
module Metrics = Ddf_obs.Metrics
module Obs = Ddf_obs.Obs

exception Client_error = E.Ddf_error
(* Deprecated alias: the client raises the shared typed error now. *)

let client_errorf ?(code = `Internal) fmt = E.errorf code fmt

let m_retries = Metrics.counter "client.retries"
let m_ambiguous = Metrics.counter "client.ambiguous_commits"

type t = {
  socket : string;
  c_user : string;
  c_version : int;
  c_timeout : float option;
  c_retries : int;
  c_deadline : float option;          (* per-call budget, seconds *)
  mutable fd : Unix.file_descr option;
  (* the codec the CURRENT connection negotiated.  Never carried over:
     [drop] resets it to [Sexp], and only a completed hello on a fresh
     dial upgrades it — a redial after a mid-frame disconnect
     re-negotiates from scratch. *)
  mutable c_codec : Wire.codec;
  mutable closed : bool;
}

let user t = t.c_user

let backoff_initial = 0.05
let backoff_max = 1.0

let drop t =
  t.c_codec <- Wire.Sexp;
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* One dial attempt: socket, connect, hello.  The server answers the
   hello with Ok_unit, or refuses (version mismatch, capacity) with a
   typed error we re-raise with its code intact. *)
let dial t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let fail ?(code = `Unavailable) fmt =
    Printf.ksprintf
      (fun s ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        E.raise_ (E.make ~context:[ ("endpoint", t.socket) ] code s))
      fmt
  in
  (match Unix.connect fd (Unix.ADDR_UNIX t.socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    fail "cannot connect to %s: %s" t.socket (Unix.error_message e));
  (match t.c_timeout with
  | Some s -> (
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
    with Unix.Unix_error _ | Invalid_argument _ -> ())
  | None -> ());
  (* the hello itself always travels as sexp — the server's dialect is
     unknown until it answers.  An accepting v8 server switches the
     connection immediately, so the hello reply already arrives binary
     (recv_response sniffs the frame's first byte either way). *)
  (match
     Wire.send_request Wire.Sexp fd
       (Wire.Hello { user = t.c_user; version = t.c_version });
     Wire.recv_response fd
   with
  | Some (Wire.Ok_unit, _, _) ->
    t.c_codec <- Wire.codec_for_version t.c_version
  | Some (Wire.Error err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (E.Ddf_error err)
  | Some _ -> fail ~code:`Internal "unexpected response to hello"
  | None -> fail "server closed the connection during hello"
  | exception Wire.Wire_error m -> fail "%s" m
  | exception Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e));
  t.fd <- Some fd

(* A refused hello (version mismatch) comes back [retryable = false]
   and is final; an unreachable socket or a capacity refusal is
   transient and worth another dial. *)
let rec dial_retrying t attempts backoff =
  match dial t with
  | () -> ()
  | exception (E.Ddf_error err as e) ->
    if err.E.retryable && attempts > 0 then begin
      Metrics.incr m_retries;
      Unix.sleepf
        (match err.E.retry_after with
        | Some after -> Float.max backoff after
        | None -> backoff);
      dial_retrying t (attempts - 1) (Float.min (backoff *. 2.0) backoff_max)
    end
    else raise e

let ensure_connected t =
  if t.closed then client_errorf ~code:`Invalid "connection is closed";
  match t.fd with
  | Some fd -> fd
  | None ->
    dial_retrying t t.c_retries backoff_initial;
    Option.get t.fd

(* Tracing: the whole call is one [client.request] span; each wire
   attempt is a [client.attempt] child whose context rides the frame
   header, so the server's dispatch span (and everything under it)
   joins this client's trace.  Retries appear as [client.retry]
   instants between attempt spans, not inside them — the waterfall
   then shows each attempt's true extent and the backoff gaps. *)
let call t req =
  let started = Unix.gettimeofday () in
  let mutation = Wire.is_mutation req in
  let budget_left () =
    Option.map (fun b -> b -. (Unix.gettimeofday () -. started)) t.c_deadline
  in
  let ambiguous what =
    drop t;
    Metrics.incr m_ambiguous;
    E.errorf
      ~context:[ ("request", Wire.request_name req) ]
      `Ambiguous_commit
      "%s after the mutation was sent: it may or may not have committed" what
  in
  let rec attempt retries backoff =
    (match budget_left () with
    | Some left when left <= 0.0 ->
      E.errorf `Timeout "deadline (%gs) spent before the request went out"
        (Option.value t.c_deadline ~default:0.0)
    | Some _ | None -> ());
    let fd = ensure_connected t in
    (* what is left of the budget rides in the frame header, so the
       server can shed the request once we are no longer listening *)
    let deadline_ms =
      Option.map
        (fun left -> int_of_float (Float.max 1.0 (left *. 1000.0)))
        (budget_left ())
    in
    let retry ?(sleep = backoff) e =
      let budget_ok =
        match budget_left () with Some left -> left > sleep | None -> true
      in
      if retries > 0 && budget_ok then begin
        Metrics.incr m_retries;
        Obs.instant ~cat:"client"
          ~attrs:
            [ ("op", Obs.Str (Wire.request_name req));
              ("sleep_ms", Obs.Float (sleep *. 1000.0)) ]
          "client.retry";
        Unix.sleepf sleep;
        attempt (retries - 1) (Float.min (backoff *. 2.0) backoff_max)
      end
      else raise e
    in
    let sent = ref false in
    (* the attempt span covers exactly the wire exchange; its context
       goes out in the frame header so the server parents under it *)
    let outcome =
      Obs.with_span ~cat:"client"
        ~attrs:[ ("attempt", Obs.Int (t.c_retries - retries)) ]
        "client.attempt"
        (fun () ->
          match
            Wire.send_request ?deadline_ms ?trace:(Obs.current_span ())
              t.c_codec fd req;
            sent := true;
            Wire.recv_response fd
          with
          | v -> Ok v
          | exception e -> Error e)
    in
    match outcome with
    | Ok (Some (resp, _, _)) -> (
      match resp with
      | Wire.Error err when err.E.retryable && retries > 0 ->
        (* the server asserts the request was NOT executed (shed,
           expired in the queue): resending cannot double-apply *)
        let sleep =
          match err.E.retry_after with
          | Some after -> Float.max backoff after
          | None -> backoff
        in
        retry ~sleep (E.Ddf_error err)
      | resp -> resp)
    | Ok None ->
      if !sent && mutation then ambiguous "the connection closed"
      else begin
        drop t;
        retry (E.Ddf_error (E.make `Unavailable "server closed the connection"))
      end
    | Error (Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)) ->
      (* the reply may still arrive; the stream is no longer
         trustworthy either way *)
      if !sent && mutation then ambiguous "the reply timed out"
      else begin
        drop t;
        retry
          (E.Ddf_error
             (E.make `Timeout
                (Printf.sprintf "request timed out after %gs"
                   (Option.value t.c_timeout ~default:0.0))))
      end
    | Error (Wire.Wire_error m) ->
      if !sent && mutation then ambiguous m
      else begin
        drop t;
        retry (E.Ddf_error (E.make `Unavailable m))
      end
    | Error (Ddf_fault.Fault.Injected point) ->
      (* an injected torn send: the frame never fully left, so the
         server cannot have parsed (or executed) it *)
      drop t;
      retry (E.Ddf_error (E.make `Unavailable ("injected fault at " ^ point)))
    | Error (Unix.Unix_error (e, _, _)) ->
      if !sent && mutation then ambiguous (Unix.error_message e)
      else begin
        drop t;
        retry (E.Ddf_error (E.make `Unavailable (Unix.error_message e)))
      end
    | Error e -> raise e
  in
  Obs.with_span ~cat:"client"
    ~attrs:[ ("op", Obs.Str (Wire.request_name req)) ]
    "client.request"
    (fun () -> attempt t.c_retries backoff_initial)

(* Raise on Error, return the payload otherwise; each wrapper below
   then destructures the one constructor it expects. *)
let ok t req =
  match call t req with
  | Wire.Error err -> raise (E.Ddf_error err)
  | resp -> resp

let unexpected req resp =
  client_errorf "unexpected %s response to %s"
    (match (resp : Wire.response) with
    | Wire.Ok_unit -> "unit" | Wire.Ok_int _ -> "int"
    | Wire.Ok_ints _ -> "ints" | Wire.Ok_atoms _ -> "atoms"
    | Wire.Ok_text _ -> "text" | Wire.Ok_nodes _ -> "nodes"
    | Wire.Ok_rows _ -> "rows" | Wire.Ok_stat _ -> "stat"
    | Wire.Ok_refresh _ -> "refresh" | Wire.Ok_snapshot _ -> "snapshot"
    | Wire.Ok_snapshot_begin _ -> "snapshot-begin"
    | Wire.Ok_snapshot_chunk _ -> "snapshot-chunk"
    | Wire.Ok_snapshot_end _ -> "snapshot-end"
    | Wire.Ok_frame _ -> "frame" | Wire.Ok_lags _ -> "lags"
    | Wire.Ok_batch _ -> "batch" | Wire.Ok_metrics _ -> "metrics"
    | Wire.Ok_digest _ -> "digest" | Wire.Ok_frames _ -> "frames"
    | Wire.Ok_sync _ -> "sync" | Wire.Ok_conflicts _ -> "conflicts"
    | Wire.Error _ -> "error")
    (Wire.request_name req)

let ok_unit t req =
  match ok t req with Wire.Ok_unit -> () | resp -> unexpected req resp

let ok_int t req =
  match ok t req with Wire.Ok_int n -> n | resp -> unexpected req resp

let ok_ints t req =
  match ok t req with Wire.Ok_ints ns -> ns | resp -> unexpected req resp

let ok_atoms t req =
  match ok t req with Wire.Ok_atoms xs -> xs | resp -> unexpected req resp

let ok_text t req =
  match ok t req with Wire.Ok_text s -> s | resp -> unexpected req resp

let ok_nodes t req =
  match ok t req with Wire.Ok_nodes ns -> ns | resp -> unexpected req resp

let ok_rows t req =
  match ok t req with Wire.Ok_rows rs -> rs | resp -> unexpected req resp

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let connect ?(user = "anonymous") ?(version = Wire.protocol_version) ?timeout
    ?(retries = 0) ?deadline ~socket () =
  let t =
    { socket; c_user = user; c_version = version; c_timeout = timeout;
      c_retries = retries; c_deadline = deadline; fd = None;
      c_codec = Wire.Sexp; closed = false }
  in
  dial_retrying t retries backoff_initial;
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop t
  end

let closed t = t.closed

let with_client ?user ?version ?timeout ?retries ?deadline ~socket f =
  let t = connect ?user ?version ?timeout ?retries ?deadline ~socket () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* The session surface                                                 *)
(* ------------------------------------------------------------------ *)

let ping t = ok_unit t Wire.Ping

let stat t =
  match ok t Wire.Stat with
  | Wire.Ok_stat s -> s
  | resp -> unexpected Wire.Stat resp

let catalog t which = ok_atoms t (Wire.Catalog which)
let browse t filter = ok_rows t (Wire.Browse filter)

let install t ~entity ?(label = "") ?(keywords = []) value =
  ok_int t (Wire.Install { entity; label; keywords; value })

let annotate t ?label ?comment ?keywords iid =
  ok_unit t (Wire.Annotate { iid; label; comment; keywords })

let start_goal t entity = ok_int t (Wire.Start_goal entity)
let start_data t iid = ok_int t (Wire.Start_data iid)
let expand t nid = ok_nodes t (Wire.Expand nid)
let specialize t nid sub = ok_unit t (Wire.Specialize (nid, sub))
let select t nid iids = ok_unit t (Wire.Select (nid, iids))
let node_browse t nid filter = ok_ints t (Wire.Node_browse (nid, filter))
let leaves t = ok_nodes t Wire.Leaves
let run t nid = ok_ints t (Wire.Run nid)
let render t = ok_text t Wire.Render
let recall t iid = ok_int t (Wire.Recall iid)
let trace t iid = ok_text t (Wire.Trace iid)
let uses t iid = ok_ints t (Wire.Uses iid)

let refresh t iid =
  match ok t (Wire.Refresh iid) with
  | Wire.Ok_refresh { fresh; reran; reused } -> (fresh, reran, reused)
  | resp -> unexpected (Wire.Refresh iid) resp

let save_flow t name = ok_unit t (Wire.Save_flow name)
let load_flow t name = ok_ints t (Wire.Load_flow name)

let lag t =
  match ok t Wire.Lag with
  | Wire.Ok_lags { primary_seq; rows } -> (primary_seq, rows)
  | resp -> unexpected Wire.Lag resp

let compact t = ok_unit t Wire.Compact

let metrics t =
  match ok t Wire.Metrics with
  | Wire.Ok_metrics ms -> ms
  | resp -> unexpected Wire.Metrics resp

let batch t reqs =
  let req = Wire.Batch reqs in
  match ok t req with
  | Wire.Ok_batch resps ->
    let want = List.length reqs and got = List.length resps in
    if want <> got then
      client_errorf "batch answered %d of %d requests" got want;
    resps
  | resp -> unexpected req resp

let shutdown t =
  if not t.closed then begin
    ok_unit t Wire.Shutdown;
    close t
  end

(* ------------------------------------------------------------------ *)
(* The anti-entropy sync surface (wire v6)                             *)
(* ------------------------------------------------------------------ *)

let sync_digest t =
  match ok t Wire.Sync_digest with
  | Wire.Ok_digest { wsid; base; seq; fingerprint; cursors; entries } ->
      (wsid, base, seq, fingerprint, cursors, entries)
  | resp -> unexpected Wire.Sync_digest resp

let sync_frames t ~after ~limit =
  let req = Wire.Sync_frames { after; limit } in
  match ok t req with
  | Wire.Ok_frames fs -> fs
  | resp -> unexpected req resp

let sync_push t ~origin ~upto frames =
  let req = Wire.Sync_ack { origin; upto; frames } in
  match ok t req with
  | Wire.Ok_sync st -> st
  | resp -> unexpected req resp

let conflicts t =
  match ok t Wire.Conflicts with
  | Wire.Ok_conflicts rows -> rows
  | resp -> unexpected Wire.Conflicts resp

let resolve t ~conflict ~winner =
  ok_unit t (Wire.Resolve { conflict; winner })

(* ------------------------------------------------------------------ *)
(* Streaming snapshot export (wire v7)                                 *)
(* ------------------------------------------------------------------ *)

(* One request, many response frames — this cannot ride [call]'s
   one-in-one-out machinery, so it speaks on the socket directly (and
   never retries: the server compacts first, a mutation).  The
   snapshot is spooled to [out ^ ".tmp"] chunk by chunk, verified
   against the stream digest and renamed into place, so it never
   exists as one in-memory string. *)
let snapshot_export t ~out =
  let fd = ensure_connected t in
  let tmp = out ^ ".tmp" in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        (try Sys.remove tmp with Sys_error _ -> ());
        drop t;
        client_errorf ~code:`Unavailable "%s" s)
      fmt
  in
  let recv () =
    match Wire.recv_response fd with
    | Some (resp, _, _) -> resp
    | None -> fail "server closed the connection mid-export"
    | exception Wire.Wire_error m -> fail "%s" m
    | exception Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e)
  in
  (match Wire.send_request t.c_codec fd Wire.Snapshot_export with
  | () -> ()
  | exception Wire.Wire_error m -> fail "%s" m
  | exception Unix.Unix_error (e, _, _) -> fail "%s" (Unix.error_message e));
  match recv () with
  | Wire.Error err -> raise (E.Ddf_error err)
  | Wire.Ok_snapshot_begin { seq; bytes } ->
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
    let rec chunks received =
      match recv () with
      | Wire.Ok_snapshot_chunk { data } ->
        output_string oc data;
        chunks (received + String.length data)
      | Wire.Ok_snapshot_end { digest } ->
        close_out oc;
        if received <> bytes then
          fail "export ended short: %d of %d bytes" received bytes;
        if not (String.equal (Digest.to_hex (Digest.file tmp)) digest) then
          fail "export failed its checksum";
        Sys.rename tmp out;
        (seq, bytes)
      | Wire.Error err ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise (E.Ddf_error err)
      | resp -> unexpected Wire.Snapshot_export resp
    in
    chunks 0
  | resp -> unexpected Wire.Snapshot_export resp

(* ------------------------------------------------------------------ *)
(* Result-typed variants                                               *)
(* ------------------------------------------------------------------ *)

(* Same calls, [Error e] instead of a raised exception — for callers
   that route on the error code (retry orchestration, degraded-mode
   UIs) without exception handlers. *)
let res f = match f () with v -> Ok v | exception E.Ddf_error e -> Error e

let ping_r t = res (fun () -> ping t)
let stat_r t = res (fun () -> stat t)
let catalog_r t which = res (fun () -> catalog t which)
let browse_r t filter = res (fun () -> browse t filter)

let install_r t ~entity ?label ?keywords value =
  res (fun () -> install t ~entity ?label ?keywords value)

let annotate_r t ?label ?comment ?keywords iid =
  res (fun () -> annotate t ?label ?comment ?keywords iid)

let start_goal_r t entity = res (fun () -> start_goal t entity)
let start_data_r t iid = res (fun () -> start_data t iid)
let expand_r t nid = res (fun () -> expand t nid)
let specialize_r t nid sub = res (fun () -> specialize t nid sub)
let select_r t nid iids = res (fun () -> select t nid iids)
let node_browse_r t nid filter = res (fun () -> node_browse t nid filter)
let leaves_r t = res (fun () -> leaves t)
let run_r t nid = res (fun () -> run t nid)
let render_r t = res (fun () -> render t)
let recall_r t iid = res (fun () -> recall t iid)
let trace_r t iid = res (fun () -> trace t iid)
let uses_r t iid = res (fun () -> uses t iid)
let refresh_r t iid = res (fun () -> refresh t iid)
let save_flow_r t name = res (fun () -> save_flow t name)
let load_flow_r t name = res (fun () -> load_flow t name)

(* ------------------------------------------------------------------ *)
(* Pool: read/write splitting over a replica set                       *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* Roles come from [stat]: each endpoint reports "primary" or
     "follower".  Reads round-robin over live followers (falling back
     to the primary when none are up); writes go to the primary.

     A write that fails with [`Unavailable] — the primary unreachable,
     shutting down, or a follower telling us we are mis-routed —
     re-probes every endpoint and retries once: the error asserts the
     request never executed, so resending is safe, and a promoted
     follower is adopted without restarting the client.  Any other
     error is final; in particular [`Ambiguous_commit] is NEVER
     resent — the caller must reconcile.  When no primary can be
     found the pool enters degraded mode: reads keep flowing to the
     followers (counted in [pool.degraded_reads]) while writes fail
     fast with [`Unavailable], until a re-probe finds a primary. *)

  let m_degraded_reads = Metrics.counter "pool.degraded_reads"

  type member = {
    ep : string;
    mutable conn : t option;
    mutable role : string;  (* "primary" | "follower" | "down" *)
  }

  type pool = {
    members : member list;
    p_user : string option;
    p_timeout : float option;
    p_deadline : float option;
    mutable p_degraded : bool;
    mutable rr : int;
  }

  let find_primary members =
    List.find_opt (fun m -> m.role = "primary" && m.conn <> None) members

  let probe pool m =
    (match m.conn with
    | Some c when c.closed -> m.conn <- None
    | Some _ | None -> ());
    (match m.conn with
    | Some _ -> ()
    | None -> (
      match
        connect ?user:pool.p_user ?timeout:pool.p_timeout
          ?deadline:pool.p_deadline ~socket:m.ep ()
      with
      | c -> m.conn <- Some c
      | exception Client_error _ -> ()));
    (match m.conn with
    | None -> m.role <- "down"
    | Some c -> (
      match stat c with
      | s -> m.role <- s.Wire.st_role
      | exception Client_error _ ->
        close c;
        m.conn <- None;
        m.role <- "down"));
    pool.p_degraded <- find_primary pool.members = None

  let connect ?user ?timeout ?deadline endpoints =
    let members =
      List.map (fun ep -> { ep; conn = None; role = "down" }) endpoints
    in
    let pool =
      { members; p_user = user; p_timeout = timeout; p_deadline = deadline;
        p_degraded = false; rr = 0 }
    in
    List.iter (probe pool) members;
    pool

  let endpoints pool = List.map (fun m -> (m.ep, m.role)) pool.members

  let degraded pool = pool.p_degraded

  let primary pool = find_primary pool.members

  let followers pool =
    List.filter
      (fun m -> m.role = "follower" && m.conn <> None)
      pool.members

  let write pool f =
    let attempt () =
      match primary pool with
      | Some { conn = Some c; _ } -> Some (f c)
      | Some { conn = None; _ } | None -> None
    in
    let reprobe_and_retry () =
      (* failover: a follower may have been promoted since we probed *)
      List.iter (probe pool) pool.members;
      match attempt () with
      | Some v ->
        pool.p_degraded <- false;
        v
      | None ->
        pool.p_degraded <- true;
        E.errorf ~retryable:false `Unavailable
          "no writable endpoint in the pool (degraded to follower reads)"
    in
    match attempt () with
    | Some v ->
      pool.p_degraded <- false;
      v
    | None -> reprobe_and_retry ()
    | exception E.Ddf_error err when err.E.code = `Unavailable ->
      (* [`Unavailable] asserts the write never executed, so resending
         on the re-probed primary cannot double-apply.  Everything
         else — including [`Ambiguous_commit] — propagates untouched. *)
      reprobe_and_retry ()

  let read pool f =
    let serve c =
      if pool.p_degraded then Metrics.incr m_degraded_reads;
      f c
    in
    let rec go tries =
      if tries = 0 then write pool f   (* primary serves reads too *)
      else
        match followers pool with
        | [] -> write pool f
        | fs -> (
          let m = List.nth fs (pool.rr mod List.length fs) in
          pool.rr <- pool.rr + 1;
          match m.conn with
          | None -> go (tries - 1)
          | Some c -> (
            match serve c with
            | v -> v
            | exception (E.Ddf_error err as e)
              when err.E.code = `Unavailable || err.E.code = `Timeout ->
              (* dead follower, or one mid-shutdown?  Re-probe: when
                 the endpoint is really gone the read moves on *)
              probe pool m;
              if m.role = "down" then go (tries - 1) else raise e))
    in
    go (List.length pool.members)

  (* One pipeline frame; primary iff any member mutates, since a
     follower rejects a batch that writes.  [batch] here is the
     single-connection pipeline above. *)
  let batch pool reqs =
    if List.exists Wire.is_mutation reqs then write pool (fun c -> batch c reqs)
    else read pool (fun c -> batch c reqs)

  let close pool =
    List.iter
      (fun m ->
        (match m.conn with
        | Some c -> ( try close c with Client_error _ -> ())
        | None -> ());
        m.conn <- None;
        m.role <- "down")
      pool.members
end
