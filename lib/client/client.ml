(* Typed client: one socket, blocking request/response.  All the
   interesting protocol work (framing, codecs) lives in Ddf_wire; this
   module is the thin typed veneer the CLI and tests use. *)

module Wire = Ddf_wire.Wire

exception Client_error of string

let client_errorf fmt = Printf.ksprintf (fun s -> raise (Client_error s)) fmt

type t = {
  fd : Unix.file_descr;
  c_user : string;
  mutable closed : bool;
}

let user t = t.c_user

let call t req =
  if t.closed then client_errorf "connection is closed";
  match
    Wire.send t.fd (Wire.request_to_sexp req);
    Wire.recv t.fd
  with
  | Some sexp -> Wire.response_of_sexp sexp
  | None -> client_errorf "server closed the connection"
  | exception Wire.Wire_error m -> client_errorf "%s" m

(* Raise on Error, return the payload otherwise; each wrapper below
   then destructures the one constructor it expects. *)
let ok t req =
  match call t req with
  | Wire.Error m -> raise (Client_error m)
  | resp -> resp

let unexpected req resp =
  client_errorf "unexpected %s response to %s"
    (match (resp : Wire.response) with
    | Wire.Ok_unit -> "unit" | Wire.Ok_int _ -> "int"
    | Wire.Ok_ints _ -> "ints" | Wire.Ok_atoms _ -> "atoms"
    | Wire.Ok_text _ -> "text" | Wire.Ok_nodes _ -> "nodes"
    | Wire.Ok_rows _ -> "rows" | Wire.Ok_stat _ -> "stat"
    | Wire.Ok_refresh _ -> "refresh" | Wire.Error _ -> "error")
    (Wire.request_name req)

let ok_unit t req =
  match ok t req with Wire.Ok_unit -> () | resp -> unexpected req resp

let ok_int t req =
  match ok t req with Wire.Ok_int n -> n | resp -> unexpected req resp

let ok_ints t req =
  match ok t req with Wire.Ok_ints ns -> ns | resp -> unexpected req resp

let ok_atoms t req =
  match ok t req with Wire.Ok_atoms xs -> xs | resp -> unexpected req resp

let ok_text t req =
  match ok t req with Wire.Ok_text s -> s | resp -> unexpected req resp

let ok_nodes t req =
  match ok t req with Wire.Ok_nodes ns -> ns | resp -> unexpected req resp

let ok_rows t req =
  match ok t req with Wire.Ok_rows rs -> rs | resp -> unexpected req resp

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let connect ?(user = "anonymous") ~socket () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    client_errorf "cannot connect to %s: %s" socket (Unix.error_message e));
  let t = { fd; c_user = user; closed = false } in
  (try ok_unit t (Wire.Hello user)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?user ~socket f =
  let t = connect ?user ~socket () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* The session surface                                                 *)
(* ------------------------------------------------------------------ *)

let ping t = ok_unit t Wire.Ping

let stat t =
  match ok t Wire.Stat with
  | Wire.Ok_stat s -> s
  | resp -> unexpected Wire.Stat resp

let catalog t which = ok_atoms t (Wire.Catalog which)
let browse t filter = ok_rows t (Wire.Browse filter)

let install t ~entity ?(label = "") ?(keywords = []) value =
  ok_int t (Wire.Install { entity; label; keywords; value })

let annotate t ?label ?comment ?keywords iid =
  ok_unit t (Wire.Annotate { iid; label; comment; keywords })

let start_goal t entity = ok_int t (Wire.Start_goal entity)
let start_data t iid = ok_int t (Wire.Start_data iid)
let expand t nid = ok_nodes t (Wire.Expand nid)
let specialize t nid sub = ok_unit t (Wire.Specialize (nid, sub))
let select t nid iids = ok_unit t (Wire.Select (nid, iids))
let node_browse t nid filter = ok_ints t (Wire.Node_browse (nid, filter))
let leaves t = ok_nodes t Wire.Leaves
let run t nid = ok_ints t (Wire.Run nid)
let render t = ok_text t Wire.Render
let recall t iid = ok_int t (Wire.Recall iid)
let trace t iid = ok_text t (Wire.Trace iid)
let uses t iid = ok_ints t (Wire.Uses iid)

let refresh t iid =
  match ok t (Wire.Refresh iid) with
  | Wire.Ok_refresh { fresh; reran; reused } -> (fresh, reran, reused)
  | resp -> unexpected (Wire.Refresh iid) resp

let save_flow t name = ok_unit t (Wire.Save_flow name)
let load_flow t name = ok_ints t (Wire.Load_flow name)

let shutdown t =
  ok_unit t Wire.Shutdown;
  close t
