(* Journal-shipping replication: the transport pieces shared by the
   primary (Outbox) and the follower daemon (Feed, Follower).

   The protocol rides on Ddf_wire.  A follower connects to the primary
   like any client, says Hello, then sends [Subscribe since]; from
   that point the connection is a replication stream: the primary
   pushes an optional [Ok_snapshot] followed by [Ok_frame]s forever,
   and the follower answers only with [Repl_ack]s.  Frames carry the
   journal's global seqnos and md5 digests, so a follower detects both
   gaps and corruption before anything touches its database.

   Threading: an [Outbox] owns the send side of a replication
   connection (one sender thread, bounded queue) so the primary's
   writer loop never blocks on a slow follower — a follower that falls
   more than [cap] frames behind is evicted and must reconnect, which
   lands it on the catch-up path.  A [Follower] owns one background
   thread that keeps a Feed alive with bounded exponential backoff and
   pumps every event into the caller's [apply]/[reset] hooks. *)

module Wire = Ddf_wire.Wire
module Metrics = Ddf_obs.Metrics
module Obs = Ddf_obs.Obs

exception Replica_error of string

let replica_errorf fmt = Printf.ksprintf (fun s -> raise (Replica_error s)) fmt

let m_frames_sent = Metrics.counter "replica.frames_sent"
let m_snapshots_sent = Metrics.counter "replica.snapshots_sent"
let m_snapshots_streamed = Metrics.counter "replica.snapshots_streamed"
let m_evicted = Metrics.counter "replica.followers_evicted"
let m_reconnects = Metrics.counter "replica.follower_reconnects"

let digest_hex payload = Digest.to_hex (Digest.string payload)

(* Stream a pinned snapshot descriptor as begin/chunk/end frames.  The
   caller opened [fd] while the writer was excluded, so the descriptor
   pins the snapshot inode — a later compaction renames a fresh file
   into place but cannot disturb these bytes.  Two passes: one for the
   md5, one for the chunks; at no point is more than one chunk in
   memory.  Closes [fd].  [send] must raise to abort the stream. *)
let stream_snapshot ~send ~seq fd =
  let ic = Unix.in_channel_of_descr fd in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let size = in_channel_length ic in
  seek_in ic 0;
  let digest = Digest.to_hex (Digest.channel ic size) in
  seek_in ic 0;
  send (Wire.Ok_snapshot_begin { seq; bytes = size });
  let buf = Bytes.create Wire.snapshot_chunk_bytes in
  let rec go remaining =
    if remaining > 0 then begin
      let k = min remaining (Bytes.length buf) in
      really_input ic buf 0 k;
      send (Wire.Ok_snapshot_chunk { data = Bytes.sub_string buf 0 k });
      go (remaining - k)
    end
  in
  go size;
  send (Wire.Ok_snapshot_end { digest });
  Metrics.incr m_snapshots_streamed

(* ------------------------------------------------------------------ *)
(* Feed: the follower's view of the stream                             *)
(* ------------------------------------------------------------------ *)

module Feed = struct
  type event =
    | Snapshot of { seq : int; data : string }
    | Snapshot_file of { seq : int; path : string }
    | Frame of { seq : int; payload : string; trace : Obs.span_ctx option }

  type t = {
    fd : Unix.file_descr;
    spool : string;
    codec : Wire.codec;
    mutable closed : bool;
  }

  let connect ?(user = "follower") ?(version = Wire.protocol_version)
      ?(spool = Filename.get_temp_dir_name ()) ~socket ~since () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise (Replica_error s))
        fmt
    in
    (match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      fail "cannot connect to primary %s: %s" socket (Unix.error_message e));
    (* the hello always travels as sexp — the server's version is
       unknown until it answers; the reply already arrives in the
       negotiated codec (recv_response sniffs per frame) *)
    let hello = Wire.Hello { user; version } in
    (match
       Wire.send_request Wire.Sexp fd hello;
       Wire.recv_response fd
     with
    | Some (Wire.Ok_unit, _, _) -> ()
    | Some (Wire.Error err, _, _) ->
      fail "primary refused hello: %s" (Ddf_core.Error.to_string err)
    | Some _ -> fail "unexpected response to hello"
    | None -> fail "primary closed the connection during hello"
    | exception Wire.Wire_error m -> fail "%s" m);
    let codec = Wire.codec_for_version version in
    (match Wire.send_request codec fd (Wire.Subscribe since) with
    | () -> ()
    | exception Wire.Wire_error m -> fail "%s" m);
    { fd; spool; codec; closed = false }

  (* Reassemble a streamed snapshot into a spool file: after
     [Ok_snapshot_begin] only chunk frames may arrive until
     [Ok_snapshot_end], whose digest covers the whole reassembled
     file.  Only one chunk is ever held in memory. *)
  let spool_snapshot t ~seq ~bytes =
    let path =
      try Filename.temp_file ~temp_dir:t.spool "snapshot" ".spool"
      with Sys_error m -> replica_errorf "cannot spool snapshot: %s" m
    in
    let oc = open_out_bin path in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          close_out_noerr oc;
          (try Sys.remove path with Sys_error _ -> ());
          raise (Replica_error s))
        fmt
    in
    let rec chunks received =
      match Wire.recv_response t.fd with
      | None -> fail "primary closed the stream mid-snapshot"
      | exception Wire.Wire_error m -> fail "%s" m
      | exception Unix.Unix_error (e, _, _) ->
        fail "snapshot stream: %s" (Unix.error_message e)
      | Some (resp, _, _) -> (
        match resp with
        | Wire.Ok_snapshot_chunk { data } ->
          output_string oc data;
          chunks (received + String.length data)
        | Wire.Ok_snapshot_end { digest } ->
          if received <> bytes then
            fail "snapshot stream ended short: %d of %d bytes" received bytes;
          close_out oc;
          if not (String.equal (Digest.to_hex (Digest.file path)) digest) then begin
            (try Sys.remove path with Sys_error _ -> ());
            replica_errorf "snapshot stream failed its checksum"
          end;
          Snapshot_file { seq; path }
        | Wire.Error err -> fail "primary: %s" (Ddf_core.Error.to_string err)
        | _ -> fail "unexpected message inside a snapshot stream")
    in
    chunks 0

  let next t =
    if t.closed then replica_errorf "feed is closed";
    match Wire.recv_response t.fd with
    | None -> replica_errorf "primary closed the replication stream"
    | exception Wire.Wire_error m -> replica_errorf "%s" m
    | exception Unix.Unix_error (e, _, _) ->
      replica_errorf "replication stream: %s" (Unix.error_message e)
    | Some (resp, meta, _) -> (
      match resp with
      | Wire.Ok_snapshot { seq; data } -> Snapshot { seq; data }
      | Wire.Ok_snapshot_begin { seq; bytes } -> spool_snapshot t ~seq ~bytes
      | Wire.Ok_frame { seq; payload; digest } ->
        if not (String.equal (digest_hex payload) digest) then
          replica_errorf "frame %d failed its checksum in transit" seq;
        Frame { seq; payload; trace = meta.Wire.fm_trace }
      | Wire.Error err ->
        replica_errorf "primary: %s" (Ddf_core.Error.to_string err)
      | _ -> replica_errorf "unexpected message on the replication stream")

  let ack t seq =
    if not t.closed then
      match Wire.send_request t.codec t.fd (Wire.Repl_ack seq) with
      | () -> ()
      | exception Wire.Wire_error _ -> ()
      | exception Unix.Unix_error _ -> ()

  let close t =
    if not t.closed then begin
      t.closed <- true;
      (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end

  (* For [Follower.stop]: unblock a reader stuck in [next] without
     releasing the descriptor out from under it. *)
  let interrupt t =
    try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Outbox: the primary's per-follower send queue                       *)
(* ------------------------------------------------------------------ *)

module Outbox = struct
  type msg =
    | Resp of Wire.response
    | Stream_snapshot of { sf_seq : int; sf_fd : Unix.file_descr }
        (* a snapshot to stream as begin/chunk/end; the descriptor was
           opened with the writer excluded, pinning the inode *)

  type t = {
    ob_name : string;
    ob_fd : Unix.file_descr;
    ob_codec : Wire.codec;  (* negotiated by the subscriber's hello *)
    ob_cap : int;
    ob_m : Mutex.t;
    ob_c : Condition.t;
    (* each queued message keeps the span context of the write that
       produced it, so the frame's header carries the trace onward *)
    ob_q : (msg * Obs.span_ctx option) Queue.t;
    mutable ob_dead : bool;
    mutable ob_sent : int;   (* highest seqno enqueued for this follower *)
    mutable ob_acked : int;  (* highest seqno it acknowledged *)
    mutable ob_sender : Thread.t option;
  }

  let kill_locked t =
    if not t.ob_dead then begin
      t.ob_dead <- true;
      (* queued snapshot descriptors would otherwise leak *)
      Queue.iter
        (function
          | Stream_snapshot { sf_fd; _ }, _ ->
            (try Unix.close sf_fd with Unix.Unix_error _ -> ())
          | Resp _, _ -> ())
        t.ob_q;
      Queue.clear t.ob_q;
      Condition.broadcast t.ob_c;
      (* The connection's ack loop owns the descriptor; shutting it
         down fails that loop's recv, which unregisters and closes. *)
      try Unix.shutdown t.ob_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
    end

  let sender_loop t =
    let rec next () =
      Mutex.lock t.ob_m;
      let rec await () =
        if t.ob_dead then None
        else if not (Queue.is_empty t.ob_q) then
          match Queue.pop t.ob_q with
          | (Stream_snapshot _, _) as m -> Some [ m ]
          | (Resp _, _) as m ->
            (* drain the contiguous run of queued responses: the whole
               group — typically one group commit's fan-out — flushes
               below as a single gathered write *)
            let rec run acc =
              match Queue.peek_opt t.ob_q with
              | Some (Resp _, _) -> run (Queue.pop t.ob_q :: acc)
              | Some (Stream_snapshot _, _) | None -> List.rev acc
            in
            Some (run [ m ])
        else begin
          Condition.wait t.ob_c t.ob_m;
          await ()
        end
      in
      let batch = await () in
      Mutex.unlock t.ob_m;
      match batch with
      | None -> ()
      | Some [ (Stream_snapshot { sf_seq; sf_fd }, _) ] ->
        (match
           stream_snapshot ~seq:sf_seq sf_fd
             ~send:(fun r -> Wire.send_response t.ob_codec t.ob_fd r)
         with
        | () -> next ()
        | exception Wire.Wire_error _ | exception Unix.Unix_error _
        | exception Sys_error _ | exception End_of_file ->
          Mutex.lock t.ob_m;
          kill_locked t;
          Mutex.unlock t.ob_m)
      | Some batch ->
        let items =
          List.filter_map
            (function
              | Resp r, trace -> Some (r, trace)
              | Stream_snapshot _, _ -> None)
            batch
        in
        (match Wire.send_response_batch t.ob_codec t.ob_fd items with
        | () -> next ()
        | exception Wire.Wire_error _ | exception Unix.Unix_error _ ->
          Mutex.lock t.ob_m;
          kill_locked t;
          Mutex.unlock t.ob_m)
    in
    next ()

  let create ?(cap = 65536) ?(codec = Wire.Sexp) ~name fd =
    let t =
      { ob_name = name; ob_fd = fd; ob_codec = codec; ob_cap = cap;
        ob_m = Mutex.create ();
        ob_c = Condition.create (); ob_q = Queue.create (); ob_dead = false;
        ob_sent = 0; ob_acked = 0; ob_sender = None }
    in
    t.ob_sender <- Some (Thread.create sender_loop t);
    t

  let name t = t.ob_name

  let push ?trace t resp =
    Mutex.lock t.ob_m;
    if not t.ob_dead then begin
      if Queue.length t.ob_q >= t.ob_cap then begin
        (* hopelessly behind: cut it loose rather than buffer forever *)
        Metrics.incr m_evicted;
        kill_locked t
      end
      else begin
        (match resp with
        | Wire.Ok_frame { seq; _ } ->
          t.ob_sent <- max t.ob_sent seq;
          Metrics.incr m_frames_sent
        | Wire.Ok_snapshot { seq; _ } ->
          t.ob_sent <- max t.ob_sent seq;
          t.ob_acked <- max t.ob_acked seq;
          Metrics.incr m_snapshots_sent
        | _ -> ());
        Queue.push (Resp resp, trace) t.ob_q;
        Condition.signal t.ob_c
      end
    end;
    Mutex.unlock t.ob_m

  (* Enqueue a snapshot to be streamed in chunks.  Call with the
     writer excluded and [seq = base_seq]: the descriptor opened here
     pins the inode, so later compactions renaming a fresh snapshot
     into place cannot disturb what the sender streams. *)
  let push_snapshot_file t ~seq path =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Mutex.lock t.ob_m;
      kill_locked t;
      Mutex.unlock t.ob_m;
      replica_errorf "cannot open snapshot %s: %s" path (Unix.error_message e)
    | fd ->
      Mutex.lock t.ob_m;
      if t.ob_dead then begin
        Mutex.unlock t.ob_m;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        t.ob_sent <- max t.ob_sent seq;
        t.ob_acked <- max t.ob_acked seq;
        Queue.push (Stream_snapshot { sf_seq = seq; sf_fd = fd }, None) t.ob_q;
        Condition.signal t.ob_c;
        Mutex.unlock t.ob_m
      end

  let note_ack t seq =
    Mutex.lock t.ob_m;
    if seq > t.ob_acked then t.ob_acked <- seq;
    Mutex.unlock t.ob_m

  let sent t =
    Mutex.lock t.ob_m;
    let v = t.ob_sent in
    Mutex.unlock t.ob_m;
    v

  let acked t =
    Mutex.lock t.ob_m;
    let v = t.ob_acked in
    Mutex.unlock t.ob_m;
    v

  let alive t =
    Mutex.lock t.ob_m;
    let v = not t.ob_dead in
    Mutex.unlock t.ob_m;
    v

  let close t =
    Mutex.lock t.ob_m;
    kill_locked t;
    let sender = t.ob_sender in
    t.ob_sender <- None;
    Mutex.unlock t.ob_m;
    Option.iter Thread.join sender
end

(* ------------------------------------------------------------------ *)
(* Follower: the reconnecting stream driver                            *)
(* ------------------------------------------------------------------ *)

module Follower = struct
  type t = {
    f_primary : string;
    f_m : Mutex.t;
    mutable f_stopped : bool;
    mutable f_feed : Feed.t option;
    mutable f_thread : Thread.t option;
  }

  let backoff_initial = 0.05
  let backoff_max = 2.0

  let stopped t =
    Mutex.lock t.f_m;
    let v = t.f_stopped in
    Mutex.unlock t.f_m;
    v

  (* Sleep [d] in small slices so [stop] never waits long. *)
  let interruptible_sleep t d =
    let slice = 0.05 in
    let rec go left =
      if left > 0.0 && not (stopped t) then begin
        Thread.delay (Float.min slice left);
        go (left -. slice)
      end
    in
    go d

  let drive t ~name ?version ?spool ~current_seq ~apply ~reset ?reset_file
      ~on_error () =
    (* Without a file hook a streamed snapshot degrades to the
       monolithic path: read the spool back and hand it to [reset]. *)
    let reset_spooled ~seq path =
      match reset_file with
      | Some f ->
        f ~seq path;
        (* the hook usually renames the spool into place; clean up if not *)
        if Sys.file_exists path then
          (try Sys.remove path with Sys_error _ -> ())
      | None ->
        let data =
          let ic = open_in_bin path in
          Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
          really_input_string ic (in_channel_length ic)
        in
        (try Sys.remove path with Sys_error _ -> ());
        reset ~seq data
    in
    let rec attempt backoff =
      if not (stopped t) then begin
        match Feed.connect ~user:name ?version ?spool ~socket:t.f_primary
                ~since:(current_seq ()) ()
        with
        | exception Replica_error m ->
          if not (stopped t) then begin
            on_error m;
            interruptible_sleep t backoff;
            attempt (Float.min (backoff *. 2.0) backoff_max)
          end
        | feed ->
          Mutex.lock t.f_m;
          let usable = not t.f_stopped in
          if usable then t.f_feed <- Some feed;
          Mutex.unlock t.f_m;
          if not usable then Feed.close feed
          else begin
            Metrics.incr m_reconnects;
            (match
               let rec pump () =
                 (match Feed.next feed with
                 | Feed.Snapshot { seq; data } -> reset ~seq data
                 | Feed.Snapshot_file { seq; path } -> reset_spooled ~seq path
                 | Feed.Frame { seq; payload; trace } ->
                   apply ~trace ~seq payload);
                 Feed.ack feed (current_seq ());
                 pump ()
               in
               pump ()
             with
            | () -> ()
            | exception Replica_error m -> if not (stopped t) then on_error m
            | exception e -> if not (stopped t) then on_error (Printexc.to_string e));
            Mutex.lock t.f_m;
            t.f_feed <- None;
            Mutex.unlock t.f_m;
            Feed.close feed;
            (* a fresh connect restarts catch-up from [current_seq ()] *)
            interruptible_sleep t backoff_initial;
            attempt backoff_initial
          end
      end
    in
    attempt backoff_initial

  let start ?(name = "follower") ?version ?spool ~primary ~current_seq ~apply
      ~reset ?reset_file ?(on_error = fun _ -> ()) () =
    let t =
      { f_primary = primary; f_m = Mutex.create (); f_stopped = false;
        f_feed = None; f_thread = None }
    in
    t.f_thread <-
      Some
        (Thread.create
           (fun () ->
             drive t ~name ?version ?spool ~current_seq ~apply ~reset
               ?reset_file ~on_error ())
           ());
    t

  let primary t = t.f_primary

  let stop t =
    Mutex.lock t.f_m;
    t.f_stopped <- true;
    let feed = t.f_feed in
    let thread = t.f_thread in
    t.f_thread <- None;
    Mutex.unlock t.f_m;
    Option.iter Feed.interrupt feed;
    Option.iter Thread.join thread
end
