(* Journal-shipping replication: the transport pieces shared by the
   primary (Outbox) and the follower daemon (Feed, Follower).

   The protocol rides on Ddf_wire.  A follower connects to the primary
   like any client, says Hello, then sends [Subscribe since]; from
   that point the connection is a replication stream: the primary
   pushes an optional [Ok_snapshot] followed by [Ok_frame]s forever,
   and the follower answers only with [Repl_ack]s.  Frames carry the
   journal's global seqnos and md5 digests, so a follower detects both
   gaps and corruption before anything touches its database.

   Threading: an [Outbox] owns the send side of a replication
   connection (one sender thread, bounded queue) so the primary's
   writer loop never blocks on a slow follower — a follower that falls
   more than [cap] frames behind is evicted and must reconnect, which
   lands it on the catch-up path.  A [Follower] owns one background
   thread that keeps a Feed alive with bounded exponential backoff and
   pumps every event into the caller's [apply]/[reset] hooks. *)

module Wire = Ddf_wire.Wire
module Metrics = Ddf_obs.Metrics
module Obs = Ddf_obs.Obs

exception Replica_error of string

let replica_errorf fmt = Printf.ksprintf (fun s -> raise (Replica_error s)) fmt

let m_frames_sent = Metrics.counter "replica.frames_sent"
let m_snapshots_sent = Metrics.counter "replica.snapshots_sent"
let m_evicted = Metrics.counter "replica.followers_evicted"
let m_reconnects = Metrics.counter "replica.follower_reconnects"

let digest_hex payload = Digest.to_hex (Digest.string payload)

(* ------------------------------------------------------------------ *)
(* Feed: the follower's view of the stream                             *)
(* ------------------------------------------------------------------ *)

module Feed = struct
  type event =
    | Snapshot of { seq : int; data : string }
    | Frame of { seq : int; payload : string; trace : Obs.span_ctx option }

  type t = {
    fd : Unix.file_descr;
    mutable closed : bool;
  }

  let connect ?(user = "follower") ~socket ~since () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise (Replica_error s))
        fmt
    in
    (match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      fail "cannot connect to primary %s: %s" socket (Unix.error_message e));
    let hello =
      Wire.Hello { user; version = Wire.protocol_version }
    in
    (match
       Wire.send fd (Wire.request_to_sexp hello);
       Wire.recv fd
     with
    | Some sexp -> (
      match Wire.response_of_sexp sexp with
      | Wire.Ok_unit -> ()
      | Wire.Error err ->
        fail "primary refused hello: %s" (Ddf_core.Error.to_string err)
      | _ -> fail "unexpected response to hello")
    | None -> fail "primary closed the connection during hello"
    | exception Wire.Wire_error m -> fail "%s" m);
    (match Wire.send fd (Wire.request_to_sexp (Wire.Subscribe since)) with
    | () -> ()
    | exception Wire.Wire_error m -> fail "%s" m);
    { fd; closed = false }

  let next t =
    if t.closed then replica_errorf "feed is closed";
    match Wire.recv_meta t.fd with
    | None -> replica_errorf "primary closed the replication stream"
    | exception Wire.Wire_error m -> replica_errorf "%s" m
    | exception Unix.Unix_error (e, _, _) ->
      replica_errorf "replication stream: %s" (Unix.error_message e)
    | Some (sexp, meta) -> (
      match Wire.response_of_sexp sexp with
      | Wire.Ok_snapshot { seq; data } -> Snapshot { seq; data }
      | Wire.Ok_frame { seq; payload; digest } ->
        if not (String.equal (digest_hex payload) digest) then
          replica_errorf "frame %d failed its checksum in transit" seq;
        Frame { seq; payload; trace = meta.Wire.fm_trace }
      | Wire.Error err ->
        replica_errorf "primary: %s" (Ddf_core.Error.to_string err)
      | _ -> replica_errorf "unexpected message on the replication stream")

  let ack t seq =
    if not t.closed then
      match Wire.send t.fd (Wire.request_to_sexp (Wire.Repl_ack seq)) with
      | () -> ()
      | exception Wire.Wire_error _ -> ()
      | exception Unix.Unix_error _ -> ()

  let close t =
    if not t.closed then begin
      t.closed <- true;
      (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end

  (* For [Follower.stop]: unblock a reader stuck in [next] without
     releasing the descriptor out from under it. *)
  let interrupt t =
    try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Outbox: the primary's per-follower send queue                       *)
(* ------------------------------------------------------------------ *)

module Outbox = struct
  type t = {
    ob_name : string;
    ob_fd : Unix.file_descr;
    ob_cap : int;
    ob_m : Mutex.t;
    ob_c : Condition.t;
    (* each queued message keeps the span context of the write that
       produced it, so the frame's header carries the trace onward *)
    ob_q : (Wire.response * Obs.span_ctx option) Queue.t;
    mutable ob_dead : bool;
    mutable ob_sent : int;   (* highest seqno enqueued for this follower *)
    mutable ob_acked : int;  (* highest seqno it acknowledged *)
    mutable ob_sender : Thread.t option;
  }

  let kill_locked t =
    if not t.ob_dead then begin
      t.ob_dead <- true;
      Queue.clear t.ob_q;
      Condition.broadcast t.ob_c;
      (* The connection's ack loop owns the descriptor; shutting it
         down fails that loop's recv, which unregisters and closes. *)
      try Unix.shutdown t.ob_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
    end

  let sender_loop t =
    let rec next () =
      Mutex.lock t.ob_m;
      let rec await () =
        if t.ob_dead then None
        else if not (Queue.is_empty t.ob_q) then Some (Queue.pop t.ob_q)
        else begin
          Condition.wait t.ob_c t.ob_m;
          await ()
        end
      in
      let resp = await () in
      Mutex.unlock t.ob_m;
      match resp with
      | None -> ()
      | Some (resp, trace) ->
        (match Wire.send ?trace t.ob_fd (Wire.response_to_sexp resp) with
        | () -> next ()
        | exception Wire.Wire_error _ | exception Unix.Unix_error _ ->
          Mutex.lock t.ob_m;
          kill_locked t;
          Mutex.unlock t.ob_m)
    in
    next ()

  let create ?(cap = 65536) ~name fd =
    let t =
      { ob_name = name; ob_fd = fd; ob_cap = cap; ob_m = Mutex.create ();
        ob_c = Condition.create (); ob_q = Queue.create (); ob_dead = false;
        ob_sent = 0; ob_acked = 0; ob_sender = None }
    in
    t.ob_sender <- Some (Thread.create sender_loop t);
    t

  let name t = t.ob_name

  let push ?trace t resp =
    Mutex.lock t.ob_m;
    if not t.ob_dead then begin
      if Queue.length t.ob_q >= t.ob_cap then begin
        (* hopelessly behind: cut it loose rather than buffer forever *)
        Metrics.incr m_evicted;
        kill_locked t
      end
      else begin
        (match resp with
        | Wire.Ok_frame { seq; _ } ->
          t.ob_sent <- max t.ob_sent seq;
          Metrics.incr m_frames_sent
        | Wire.Ok_snapshot { seq; _ } ->
          t.ob_sent <- max t.ob_sent seq;
          t.ob_acked <- max t.ob_acked seq;
          Metrics.incr m_snapshots_sent
        | _ -> ());
        Queue.push (resp, trace) t.ob_q;
        Condition.signal t.ob_c
      end
    end;
    Mutex.unlock t.ob_m

  let note_ack t seq =
    Mutex.lock t.ob_m;
    if seq > t.ob_acked then t.ob_acked <- seq;
    Mutex.unlock t.ob_m

  let sent t =
    Mutex.lock t.ob_m;
    let v = t.ob_sent in
    Mutex.unlock t.ob_m;
    v

  let acked t =
    Mutex.lock t.ob_m;
    let v = t.ob_acked in
    Mutex.unlock t.ob_m;
    v

  let alive t =
    Mutex.lock t.ob_m;
    let v = not t.ob_dead in
    Mutex.unlock t.ob_m;
    v

  let close t =
    Mutex.lock t.ob_m;
    kill_locked t;
    let sender = t.ob_sender in
    t.ob_sender <- None;
    Mutex.unlock t.ob_m;
    Option.iter Thread.join sender
end

(* ------------------------------------------------------------------ *)
(* Follower: the reconnecting stream driver                            *)
(* ------------------------------------------------------------------ *)

module Follower = struct
  type t = {
    f_primary : string;
    f_m : Mutex.t;
    mutable f_stopped : bool;
    mutable f_feed : Feed.t option;
    mutable f_thread : Thread.t option;
  }

  let backoff_initial = 0.05
  let backoff_max = 2.0

  let stopped t =
    Mutex.lock t.f_m;
    let v = t.f_stopped in
    Mutex.unlock t.f_m;
    v

  (* Sleep [d] in small slices so [stop] never waits long. *)
  let interruptible_sleep t d =
    let slice = 0.05 in
    let rec go left =
      if left > 0.0 && not (stopped t) then begin
        Thread.delay (Float.min slice left);
        go (left -. slice)
      end
    in
    go d

  let drive t ~name ~current_seq ~apply ~reset ~on_error =
    let rec attempt backoff =
      if not (stopped t) then begin
        match Feed.connect ~user:name ~socket:t.f_primary
                ~since:(current_seq ()) ()
        with
        | exception Replica_error m ->
          if not (stopped t) then begin
            on_error m;
            interruptible_sleep t backoff;
            attempt (Float.min (backoff *. 2.0) backoff_max)
          end
        | feed ->
          Mutex.lock t.f_m;
          let usable = not t.f_stopped in
          if usable then t.f_feed <- Some feed;
          Mutex.unlock t.f_m;
          if not usable then Feed.close feed
          else begin
            Metrics.incr m_reconnects;
            (match
               let rec pump () =
                 (match Feed.next feed with
                 | Feed.Snapshot { seq; data } -> reset ~seq data
                 | Feed.Frame { seq; payload; trace } ->
                   apply ~trace ~seq payload);
                 Feed.ack feed (current_seq ());
                 pump ()
               in
               pump ()
             with
            | () -> ()
            | exception Replica_error m -> if not (stopped t) then on_error m
            | exception e -> if not (stopped t) then on_error (Printexc.to_string e));
            Mutex.lock t.f_m;
            t.f_feed <- None;
            Mutex.unlock t.f_m;
            Feed.close feed;
            (* a fresh connect restarts catch-up from [current_seq ()] *)
            interruptible_sleep t backoff_initial;
            attempt backoff_initial
          end
      end
    in
    attempt backoff_initial

  let start ?(name = "follower") ~primary ~current_seq ~apply ~reset
      ?(on_error = fun _ -> ()) () =
    let t =
      { f_primary = primary; f_m = Mutex.create (); f_stopped = false;
        f_feed = None; f_thread = None }
    in
    t.f_thread <-
      Some
        (Thread.create
           (fun () -> drive t ~name ~current_seq ~apply ~reset ~on_error)
           ());
    t

  let primary t = t.f_primary

  let stop t =
    Mutex.lock t.f_m;
    t.f_stopped <- true;
    let feed = t.f_feed in
    let thread = t.f_thread in
    t.f_thread <- None;
    Mutex.unlock t.f_m;
    Option.iter Feed.interrupt feed;
    Option.iter Thread.join thread
end
