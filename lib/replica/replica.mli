(** Journal-shipping replication transport.

    A primary design server streams its {!Ddf_journal.Journal} to
    follower daemons: each follower receives an optional full-state
    snapshot followed by every journal entry, tagged with its global
    sequence number and md5 digest, and applies them through its own
    journal — so a caught-up follower's database (store, history,
    meta-data, logical clock, and on-disk wal suffix) is identical to
    the primary's, and the follower is itself crash-safe and
    promotable.

    This module is transport only: {!Feed} is the follower's
    subscription socket, {!Outbox} the primary's per-follower send
    queue, {!Follower} the reconnect-with-backoff driver.  The policy
    ends — what to do with a frame — live in {!Ddf_server.Server}
    (primary fan-out, follower apply) so this library depends only on
    the wire protocol. *)

exception Replica_error of string

val stream_snapshot :
  send:(Ddf_wire.Wire.response -> unit) -> seq:int -> Unix.file_descr -> unit
(** Stream a snapshot file descriptor as [Ok_snapshot_begin], then
    {!Ddf_wire.Wire.snapshot_chunk_bytes}-sized [Ok_snapshot_chunk]s,
    then [Ok_snapshot_end] (md5 over the whole file).  Open the
    descriptor with the writer excluded — it pins the snapshot inode
    against later compaction renames.  Holds at most one chunk in
    memory; closes the descriptor; counts [replica.snapshots_streamed].
    [send] must raise to abort the stream (the exception propagates). *)

(** The follower's end of a replication stream. *)
module Feed : sig
  type t

  type event =
    | Snapshot of { seq : int; data : string }
        (** full workspace state as of [seq]; replaces everything *)
    | Snapshot_file of { seq : int; path : string }
        (** a v7 streamed snapshot, reassembled (byte count and digest
            verified) into a spool file the consumer owns — state as
            of [seq] without ever existing as one in-memory string *)
    | Frame of {
        seq : int;
        payload : string;
        trace : Ddf_obs.Obs.span_ctx option;
            (** the primary-side span of the write that produced the
                frame, when the primary was tracing *)
      }  (** one journal entry (digest already verified) *)

  val connect :
    ?user:string -> ?version:int -> ?spool:string ->
    socket:string -> since:int -> unit -> t
  (** Dial the primary, handshake ([Hello] with this build's protocol
      version — override [version] to exercise the downlevel sexp
      codec or monolithic resync paths; the feed speaks the codec the
      version negotiates from the Subscribe onward) and send
      [Subscribe since].  [spool] is the directory streamed snapshots
      are reassembled in (default the system temp dir); put it on the
      database's filesystem so the final rename into place is atomic.
      @raise Replica_error on connection refusal, a version mismatch,
      or any transport failure. *)

  val next : t -> event
  (** Block for the next stream event.  Verifies each frame's digest.
      @raise Replica_error on end-of-stream, checksum failure or a
      protocol violation. *)

  val ack : t -> int -> unit
  (** Tell the primary we have durably applied through [seq].  Send
      failures are ignored — the stream read will fail soon after. *)

  val close : t -> unit
end

(** The primary's send side of one replication connection: a bounded
    queue drained by a private sender thread, so the engine's writer
    loop never blocks on a slow follower.  A follower more than [cap]
    frames behind is evicted (its socket shut down); on reconnect it
    lands on the normal catch-up path. *)
module Outbox : sig
  type t

  val create :
    ?cap:int -> ?codec:Ddf_wire.Wire.codec -> name:string ->
    Unix.file_descr -> t
  (** [cap] defaults to 65536 queued messages.  [codec] (default
      [Sexp]) is the encoding the subscriber negotiated; the sender
      thread drains each contiguous run of queued responses and
      flushes it as {e one} gathered write in that codec. *)

  val name : t -> string
  val push : ?trace:Ddf_obs.Obs.span_ctx -> t -> Ddf_wire.Wire.response -> unit
  (** Enqueue; silently drops when the outbox is dead.  [Ok_frame] and
      [Ok_snapshot] update the sent-seqno watermark.  [trace] rides
      the frame header so the follower's apply span joins the
      producing write's trace. *)

  val push_snapshot_file : t -> seq:int -> string -> unit
  (** Enqueue the snapshot file at this path to be streamed as
      begin/chunk/end frames ({!stream_snapshot}).  The descriptor is
      opened here — call with the writer excluded and [seq] equal to
      the journal's base, so the pinned bytes are exactly the state at
      [seq].  Kills the outbox when the file cannot be opened.
      @raise Replica_error in that open-failure case. *)

  val note_ack : t -> int -> unit
  val sent : t -> int    (** highest seqno enqueued *)

  val acked : t -> int   (** highest seqno acknowledged *)

  val alive : t -> bool
  val close : t -> unit
  (** Stop the sender thread and shut the socket down (the connection
      loop still owns the descriptor's close). *)
end

(** A background thread keeping one replication stream alive:
    reconnects with bounded exponential backoff (50ms doubling to 2s),
    resubscribes from [current_seq ()], and feeds every event to the
    [apply]/[reset] hooks.  The hooks run on the follower thread and
    must raise on failure — the driver then drops the connection and
    retries, which restarts catch-up cleanly. *)
module Follower : sig
  type t

  val start :
    ?name:string ->
    ?version:int ->
    ?spool:string ->
    primary:string ->
    current_seq:(unit -> int) ->
    apply:(trace:Ddf_obs.Obs.span_ctx option -> seq:int -> string -> unit) ->
    reset:(seq:int -> string -> unit) ->
    ?reset_file:(seq:int -> string -> unit) ->
    ?on_error:(string -> unit) ->
    unit -> t
  (** [version] overrides the protocol version each (re)connection
      hellos with — the downlevel-codec debug lever (see
      {!Feed.connect}).  [spool] is where streamed snapshots are
      reassembled.  [reset_file] handles a {!Feed.Snapshot_file}
      event — typically {!Ddf_journal.Journal.reset_to_snapshot_file},
      which consumes the spool file; when absent the driver reads the
      spool back into memory and falls through to [reset]. *)

  val primary : t -> string

  val stop : t -> unit
  (** Interrupt the stream and join the thread.  Idempotent; after
      [stop] the local database stops tracking the primary — the
      promotion hook. *)
end
