(** The design-object store.

    Every design object is an {e instance}: per-instance meta-data
    (user, logical timestamp, name, comment, keywords — the browser
    columns of Fig. 9) plus a reference to content-addressed physical
    data.  As the paper's footnote 5 notes, several instances
    (different versions of a design) may share one physical datum;
    here sharing falls out of content addressing.  The store is
    polymorphic in the payload so the framework layers stay independent
    of the EDA substrate.

    {b MVCC:} the store's hot state is one immutable record behind an
    [Atomic.t].  {!snapshot} is an O(1), lock-free capture of it that
    stays valid forever; all reads are served from a snapshot
    ({!Snapshot}), and the live-store read functions below are thin
    wrappers that capture a fresh snapshot per call.  Mutations build a
    new state record and publish it with a compare-and-set, so a
    snapshot pinned on one domain is never torn by a writer on
    another. *)

type iid = int
(** Instance identifier, unique within one store. *)

type meta = {
  user : string;
  created_at : int;         (** logical-clock timestamp *)
  label : string;           (** designer-facing name *)
  comment : string;
  keywords : string list;
}

type 'a instance = private {
  iid : iid;
  entity : string;          (** schema entity the instance belongs to *)
  data_hash : string;
  meta : meta;
}

type 'a t
(** The live store handle: an atomic reference to the latest committed
    state plus the observer / cold-loader attachment points.  Store
    failures raise {!Ddf_core.Error.Ddf_error} with a typed
    {!Ddf_core.Error.t} ([`Not_found] for missing instances,
    [`Invalid] otherwise). *)

type 'a snapshot
(** An immutable view of the store at one commit point.  Capturing one
    is O(1) and lock-free; every read through it is repeatable — later
    writes to the live store are invisible. *)

val create : unit -> 'a t

val id : 'a t -> int
(** A process-unique identity for this handle, stable across
    mutations.  External caches (e.g. the history version index) key
    on it instead of on physical equality of mutable innards. *)

val snapshot : 'a t -> 'a snapshot
(** Capture the latest committed state: one atomic load. *)

val meta :
  ?user:string -> ?label:string -> ?comment:string -> ?keywords:string list ->
  created_at:int -> unit -> meta

val put : 'a t -> entity:string -> hash:string -> meta:meta -> 'a -> iid
(** Install an instance; the payload is stored once per distinct hash. *)

val find : 'a t -> iid -> 'a instance
(** @raise Ddf_core.Error.Ddf_error on a missing instance. *)

val find_opt : 'a t -> iid -> 'a instance option
val mem : 'a t -> iid -> bool

val payload : 'a t -> iid -> 'a
(** The physical datum behind an instance.  Resident payloads are one
    map lookup; an evicted payload falls through to the cold loader
    (see {!set_cold_loader}), is re-installed in the resident table
    (promote-on-read) and counted in [store.cold_loads].
    @raise Ddf_core.Error.Ddf_error ([`Not_found]) when the payload is
    neither resident nor reloadable. *)

val entity_of : 'a t -> iid -> string
val meta_of : 'a t -> iid -> meta
val hash_of : 'a t -> iid -> string

val annotate :
  'a t -> iid -> ?label:string -> ?comment:string -> ?keywords:string list ->
  unit -> unit
(** Update the designer-facing annotation of an instance (section 4.1:
    naming and documenting design steps). *)

val tick : 'a t -> int
(** The store's monotonic instance counter: the iid the next {!put}
    will assign.  Exposed so journal replay and the design server can
    restore the clock instead of re-deriving it from the contents. *)

val restore_tick : 'a t -> int -> unit
(** Reset the counter after a replay.
    @raise Ddf_core.Error.Ddf_error when moving the counter backwards
    (iids must stay unique). *)

(** {1 Tiered storage (the cement store's attachment point)}

    Instance meta-data always stays resident — only the physical
    payloads (the heavy part) tier out.  The journal wires a cold
    loader backed by cemented [put] frames, then {!evict} drops
    resident payloads whose every owning instance is reloadable. *)

val set_cold_loader : 'a t -> (iid -> 'a option) -> unit
(** Install the fall-through used by {!payload} on a non-resident
    datum.  The loader receives the iid (cold storage is keyed by the
    installing put, not by hash) and returns the payload or [None]. *)

val clear_cold_loader : 'a t -> unit

val payload_resident : 'a t -> iid -> bool
(** Whether {!payload} would be served from the resident table (no
    cold load).  @raise Ddf_core.Error.Ddf_error on a missing
    instance. *)

val evict : 'a t -> iid -> bool
(** Drop the resident payload behind [iid] (shared-hash siblings lose
    residency too — callers must check every owner is cold-loadable
    first).  Returns [false] when already evicted or the instance is
    unknown.  Counts [store.evictions]. *)

(** {1 Write observation (the journal's attachment point)} *)

type 'a event =
  | Put of 'a instance * 'a       (** a new instance was installed *)
  | Annotated of 'a instance      (** an instance's meta changed *)

val set_observer : 'a t -> ('a event -> unit) -> unit
(** Install the single write observer, called synchronously after each
    mutation commits.  The write-ahead journal subscribes here. *)

val clear_observer : 'a t -> unit

val instance_count : 'a t -> int

val physical_count : 'a t -> int
(** Distinct payloads: [instance_count - physical_count] is the storage
    saved by sharing. *)

val instances_of_entity : 'a t -> string -> iid list
(** In installation order. *)

val all_instances : 'a t -> iid list

(** {1 Browser filters (the Fig. 9 instance browser)} *)

type filter = {
  f_entities : string list option;  (** accepted entities; [None] = all *)
  f_user : string option;
  f_from : int option;              (** inclusive timestamp bounds *)
  f_to : int option;
  f_keywords : string list;         (** all must be present *)
  f_text : string option;           (** substring of label or comment *)
}

val any_filter : filter
val matches : 'a t -> filter -> iid -> bool
val browse : 'a t -> filter -> iid list

(** {1 Snapshot reads}

    The same read API as the live wrappers above, against one frozen
    view.  This is what the server's domain-pool read executor and
    {!Parallel}'s flow branches use: pin once, read many times, never
    take a lock. *)

module Snapshot : sig
  type 'a store := 'a t
  type 'a t = 'a snapshot

  val source : 'a t -> 'a store
  (** The live handle this snapshot was captured from. *)

  val tick : 'a t -> int
  (** The instance counter at capture time: iids [>= tick] are not in
      this snapshot. *)

  val find : 'a t -> iid -> 'a instance
  val find_opt : 'a t -> iid -> 'a instance option
  val mem : 'a t -> iid -> bool

  val payload : 'a t -> iid -> 'a
  (** Cold loads promote into the {e live} store, never into the
      snapshot: re-reading the same evicted payload through one
      snapshot hits the loader again. *)

  val payload_resident : 'a t -> iid -> bool
  val entity_of : 'a t -> iid -> string
  val meta_of : 'a t -> iid -> meta
  val hash_of : 'a t -> iid -> string
  val instance_count : 'a t -> int
  val physical_count : 'a t -> int
  val instances_of_entity : 'a t -> string -> iid list
  val all_instances : 'a t -> iid list
  val matches : 'a t -> filter -> iid -> bool
  val browse : 'a t -> filter -> iid list
end

val pp_instance : Format.formatter -> 'a instance -> unit
val pp : Format.formatter -> 'a t -> unit
