(** The design-object store.

    Every design object is an {e instance}: per-instance meta-data
    (user, logical timestamp, name, comment, keywords — the browser
    columns of Fig. 9) plus a reference to content-addressed physical
    data.  As the paper's footnote 5 notes, several instances
    (different versions of a design) may share one physical datum;
    here sharing falls out of content addressing.  The store is
    polymorphic in the payload so the framework layers stay independent
    of the EDA substrate. *)

type iid = int
(** Instance identifier, unique within one store. *)

type meta = {
  user : string;
  created_at : int;         (** logical-clock timestamp *)
  label : string;           (** designer-facing name *)
  comment : string;
  keywords : string list;
}

type 'a instance = private {
  iid : iid;
  entity : string;          (** schema entity the instance belongs to *)
  data_hash : string;
  meta : meta;
}

type 'a t

exception Store_error of Ddf_core.Error.t
(** Deprecated alias of {!Ddf_core.Error.Ddf_error}: store failures
    carry a typed {!Ddf_core.Error.t} ([`Not_found] for missing
    instances, [`Invalid] otherwise).  Existing handlers keep catching;
    use {!Ddf_core.Error.message} for the text. *)

val create : unit -> 'a t

val meta :
  ?user:string -> ?label:string -> ?comment:string -> ?keywords:string list ->
  created_at:int -> unit -> meta

val put : 'a t -> entity:string -> hash:string -> meta:meta -> 'a -> iid
(** Install an instance; the payload is stored once per distinct hash. *)

val find : 'a t -> iid -> 'a instance
(** @raise Store_error on a missing instance. *)

val find_opt : 'a t -> iid -> 'a instance option
val mem : 'a t -> iid -> bool

val payload : 'a t -> iid -> 'a
(** The physical datum behind an instance.  Resident payloads are one
    hash lookup; an evicted payload falls through to the cold loader
    (see {!set_cold_loader}), is re-installed in the resident table
    (promote-on-read) and counted in [store.cold_loads].
    @raise Store_error ([`Not_found]) when the payload is neither
    resident nor reloadable. *)

val entity_of : 'a t -> iid -> string
val meta_of : 'a t -> iid -> meta
val hash_of : 'a t -> iid -> string

val annotate :
  'a t -> iid -> ?label:string -> ?comment:string -> ?keywords:string list ->
  unit -> unit
(** Update the designer-facing annotation of an instance (section 4.1:
    naming and documenting design steps). *)

val tick : 'a t -> int
(** The store's monotonic instance counter: the iid the next {!put}
    will assign.  Exposed so journal replay and the design server can
    restore the clock instead of re-deriving it from the contents. *)

val restore_tick : 'a t -> int -> unit
(** Reset the counter after a replay.  @raise Store_error when moving
    the counter backwards (iids must stay unique). *)

(** {1 Tiered storage (the cement store's attachment point)}

    Instance meta-data always stays resident — only the physical
    payloads (the heavy part) tier out.  The journal wires a cold
    loader backed by cemented [put] frames, then {!evict} drops
    resident payloads whose every owning instance is reloadable. *)

val set_cold_loader : 'a t -> (iid -> 'a option) -> unit
(** Install the fall-through used by {!payload} on a non-resident
    datum.  The loader receives the iid (cold storage is keyed by the
    installing put, not by hash) and returns the payload or [None]. *)

val clear_cold_loader : 'a t -> unit

val payload_resident : 'a t -> iid -> bool
(** Whether {!payload} would be served from the resident table (no
    cold load).  @raise Store_error on a missing instance. *)

val evict : 'a t -> iid -> bool
(** Drop the resident payload behind [iid] (shared-hash siblings lose
    residency too — callers must check every owner is cold-loadable
    first).  Returns [false] when already evicted or the instance is
    unknown.  Counts [store.evictions]. *)

(** {1 Write observation (the journal's attachment point)} *)

type 'a event =
  | Put of 'a instance * 'a       (** a new instance was installed *)
  | Annotated of 'a instance      (** an instance's meta changed *)

val set_observer : 'a t -> ('a event -> unit) -> unit
(** Install the single write observer, called synchronously after each
    mutation commits.  The write-ahead journal subscribes here. *)

val clear_observer : 'a t -> unit

val instance_count : 'a t -> int

val physical_count : 'a t -> int
(** Distinct payloads: [instance_count - physical_count] is the storage
    saved by sharing. *)

val instances_of_entity : 'a t -> string -> iid list
(** In installation order. *)

val all_instances : 'a t -> iid list

(** {1 Browser filters (the Fig. 9 instance browser)} *)

type filter = {
  f_entities : string list option;  (** accepted entities; [None] = all *)
  f_user : string option;
  f_from : int option;              (** inclusive timestamp bounds *)
  f_to : int option;
  f_keywords : string list;         (** all must be present *)
  f_text : string option;           (** substring of label or comment *)
}

val any_filter : filter
val matches : 'a t -> filter -> iid -> bool
val browse : 'a t -> filter -> iid list

val pp_instance : Format.formatter -> 'a instance -> unit
val pp : Format.formatter -> 'a t -> unit
