(* The design-object store.

   Every design object is an *instance*: per-instance meta-data (user,
   logical timestamp, name, comment, keywords -- the browser columns of
   Fig. 9) plus a reference to content-addressed physical data.  As the
   paper's footnote 5 notes, several instances (different versions of a
   design) may share one physical datum; sharing falls out of content
   addressing here.  The store is polymorphic in the payload so the
   framework layers stay independent of the EDA substrate.

   MVCC: the whole hot state lives in one immutable record behind an
   [Atomic.t].  A snapshot is just [Atomic.get] — O(1), no locks — and
   stays valid forever; mutations build a new record and CAS it in.
   The only concurrent writers are the (single) mutator and readers
   promoting cold payloads, so CAS retries are rare. *)

module Int_map = Map.Make (Int)
module String_map = Map.Make (String)

type iid = int

type meta = {
  user : string;
  created_at : int;          (* logical clock value *)
  label : string;            (* the designer-facing name *)
  comment : string;
  keywords : string list;
}

type 'a instance = {
  iid : iid;
  entity : string;           (* schema entity the instance belongs to *)
  data_hash : string;
  meta : meta;
}

type 'a event =
  | Put of 'a instance * 'a
  | Annotated of 'a instance

(* The immutable hot state: everything a read needs, in persistent
   maps.  [Int_map] iterates in ascending iid order, which is exactly
   the store's installation order (iids are dense and ascending), so
   the old [all_rev] list is redundant. *)
type 'a state = {
  st_next_iid : int;
  st_instances : 'a instance Int_map.t;
  st_payloads : 'a String_map.t;   (* content-addressed physical data *)
  st_by_entity : iid list String_map.t;   (* newest first *)
  st_phys : int;                   (* cardinal of st_payloads, O(1) *)
}

type 'a t = {
  id : int;                        (* identity for external index caches *)
  state : 'a state Atomic.t;
  mutable observer : ('a event -> unit) option;
  mutable cold_loader : (iid -> 'a option) option;
  (* tiered storage: reloads an evicted payload from cold storage *)
}

type 'a snapshot = {
  snap_state : 'a state;
  snap_source : 'a t;
  (* the handle is carried for the cold loader and for promoting
     reloaded payloads back into the *live* state; the snapshot's own
     view never changes *)
}

let store_errorf ?(code = `Invalid) fmt = Ddf_core.Error.errorf code fmt

let m_puts = Ddf_obs.Metrics.counter "store.puts"
let m_dedup = Ddf_obs.Metrics.counter "store.dedup_hits"
let m_browses = Ddf_obs.Metrics.counter "store.browses"
let m_cold_loads = Ddf_obs.Metrics.counter "store.cold_loads"
let m_evictions = Ddf_obs.Metrics.counter "store.evictions"

let next_store_id = Atomic.make 1

let empty_state =
  {
    st_next_iid = 1;
    st_instances = Int_map.empty;
    st_payloads = String_map.empty;
    st_by_entity = String_map.empty;
    st_phys = 0;
  }

let create () =
  {
    id = Atomic.fetch_and_add next_store_id 1;
    state = Atomic.make empty_state;
    observer = None;
    cold_loader = None;
  }

let id store = store.id

(* Apply a pure state transform with a CAS retry loop.  [f] must be
   side-effect free (it may run more than once under contention);
   the returned value from the *winning* application is handed back so
   callers run their side effects (observer notify, metrics) once. *)
let rec update store f =
  let old_state = Atomic.get store.state in
  let new_state, ret = f old_state in
  if Atomic.compare_and_set store.state old_state new_state then ret
  else update store f

let snapshot store = { snap_state = Atomic.get store.state; snap_source = store }

let tick store = (Atomic.get store.state).st_next_iid

let restore_tick store n =
  update store (fun st ->
      if n < st.st_next_iid then
        store_errorf "cannot move the instance counter back (%d < %d)" n
          st.st_next_iid;
      ({ st with st_next_iid = n }, ()))

let set_observer store f = store.observer <- Some f
let clear_observer store = store.observer <- None

let notify store ev =
  match store.observer with None -> () | Some f -> f ev

let meta ?(user = "designer") ?(label = "") ?(comment = "") ?(keywords = [])
    ~created_at () =
  { user; created_at; label; comment; keywords }

let put store ~entity ~hash ~meta payload =
  let inst, dedup =
    update store (fun st ->
        let iid = st.st_next_iid in
        let inst = { iid; entity; data_hash = hash; meta } in
        let dedup = String_map.mem hash st.st_payloads in
        let st_payloads =
          (* content-hash sharing: a second instance over the same
             datum keeps the first payload *)
          if dedup then st.st_payloads
          else String_map.add hash payload st.st_payloads
        in
        let bucket =
          match String_map.find_opt entity st.st_by_entity with
          | Some l -> iid :: l
          | None -> [ iid ]
        in
        ( {
            st_next_iid = iid + 1;
            st_instances = Int_map.add iid inst st.st_instances;
            st_payloads;
            st_by_entity = String_map.add entity bucket st.st_by_entity;
            st_phys = (if dedup then st.st_phys else st.st_phys + 1);
          },
          (inst, dedup) ))
  in
  Ddf_obs.Metrics.incr m_puts;
  if dedup then Ddf_obs.Metrics.incr m_dedup;
  notify store (Put (inst, payload));
  inst.iid

let annotate store iid ?label ?comment ?keywords () =
  let inst =
    update store (fun st ->
        match Int_map.find_opt iid st.st_instances with
        | None -> store_errorf ~code:`Not_found "no instance %d" iid
        | Some inst ->
          let m = inst.meta in
          let m =
            {
              m with
              label = Option.value label ~default:m.label;
              comment = Option.value comment ~default:m.comment;
              keywords = Option.value keywords ~default:m.keywords;
            }
          in
          let inst = { inst with meta = m } in
          ( { st with st_instances = Int_map.add iid inst st.st_instances },
            inst ))
  in
  notify store (Annotated inst)

let set_cold_loader store f = store.cold_loader <- Some f
let clear_cold_loader store = store.cold_loader <- None

let evict store iid =
  let dropped =
    update store (fun st ->
        match Int_map.find_opt iid st.st_instances with
        | None -> (st, false)
        | Some inst ->
          if String_map.mem inst.data_hash st.st_payloads then
            ( {
                st with
                st_payloads = String_map.remove inst.data_hash st.st_payloads;
                st_phys = st.st_phys - 1;
              },
              true )
          else (st, false))
  in
  if dropped then Ddf_obs.Metrics.incr m_evictions;
  dropped

(* Promote a cold-loaded payload into the *live* resident table so
   later readers stay hot.  Runs on the read path, possibly from a
   reader domain: a plain CAS loop against the owning handle. *)
let promote store hash payload =
  update store (fun st ->
      if String_map.mem hash st.st_payloads then (st, ())
      else
        ( {
            st with
            st_payloads = String_map.add hash payload st.st_payloads;
            st_phys = st.st_phys + 1;
          },
          () ))

(* ------------------------------------------------------------------ *)
(* Browser filters (the Fig. 9 instance browser)                       *)
(* ------------------------------------------------------------------ *)

type filter = {
  f_entities : string list option;  (* accepted entity ids; None = all *)
  f_user : string option;
  f_from : int option;              (* inclusive timestamp bounds *)
  f_to : int option;
  f_keywords : string list;         (* all must be present *)
  f_text : string option;           (* substring of label or comment *)
}

let any_filter =
  { f_entities = None; f_user = None; f_from = None; f_to = None;
    f_keywords = []; f_text = None }

(* Compile a filter into a predicate over instances: the text needle
   is lowercased once here, not once per instance scanned. *)
let compile filter =
  let needle = Option.map String.lowercase_ascii filter.f_text in
  let contains_lower hay ln =
    let lh = String.lowercase_ascii hay in
    let n = String.length ln and h = String.length lh in
    let rec at i = i + n <= h && (String.sub lh i n = ln || at (i + 1)) in
    n = 0 || at 0
  in
  fun inst ->
    let m = inst.meta in
    (match filter.f_entities with
    | None -> true
    | Some es -> List.mem inst.entity es)
    && (match filter.f_user with None -> true | Some u -> m.user = u)
    && (match filter.f_from with None -> true | Some t -> m.created_at >= t)
    && (match filter.f_to with None -> true | Some t -> m.created_at <= t)
    && List.for_all (fun k -> List.mem k m.keywords) filter.f_keywords
    && (match needle with
       | None -> true
       | Some ln -> contains_lower m.label ln || contains_lower m.comment ln)

(* ------------------------------------------------------------------ *)
(* The snapshot read API — every read below sees one frozen state.     *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type 'a t = 'a snapshot

  let source snap = snap.snap_source
  let tick snap = snap.snap_state.st_next_iid

  let find_opt snap iid = Int_map.find_opt iid snap.snap_state.st_instances

  let find snap iid =
    match find_opt snap iid with
    | Some inst -> inst
    | None -> store_errorf ~code:`Not_found "no instance %d" iid

  let mem snap iid = Int_map.mem iid snap.snap_state.st_instances

  let payload_resident snap iid =
    String_map.mem (find snap iid).data_hash snap.snap_state.st_payloads

  (* Hot path first: a resident payload is one map lookup.  On a miss,
     fall through to cold storage (if wired) and promote the reloaded
     payload back into the live resident table so later snapshots stay
     hot.  The snapshot itself is never mutated — a re-read through the
     same snapshot hits the loader again, which is correct and rare. *)
  let payload snap iid =
    let inst = find snap iid in
    match String_map.find_opt inst.data_hash snap.snap_state.st_payloads with
    | Some v -> v
    | None -> (
      match snap.snap_source.cold_loader with
      | None ->
        store_errorf ~code:`Not_found
          "payload of instance %d is not resident" iid
      | Some load -> (
        match load iid with
        | Some v ->
          Ddf_obs.Metrics.incr m_cold_loads;
          promote snap.snap_source inst.data_hash v;
          v
        | None ->
          store_errorf ~code:`Not_found
            "payload of instance %d is neither resident nor cemented" iid))

  let entity_of snap iid = (find snap iid).entity
  let meta_of snap iid = (find snap iid).meta
  let hash_of snap iid = (find snap iid).data_hash

  let instance_count snap = Int_map.cardinal snap.snap_state.st_instances

  let physical_count snap = snap.snap_state.st_phys
  (* instance_count - physical_count = storage saved by sharing *)

  let instances_of_entity snap entity =
    match String_map.find_opt entity snap.snap_state.st_by_entity with
    | Some l -> List.rev l
    | None -> []

  (* Ascending-iid fold over the instance map IS installation order:
     iids are dense and nothing is ever deleted. *)
  let all_instances snap =
    Seq.fold_left
      (fun acc (iid, _) -> iid :: acc)
      []
      (Int_map.to_rev_seq snap.snap_state.st_instances)

  let matches snap filter iid = compile filter (find snap iid)

  let browse snap filter =
    Ddf_obs.Metrics.incr m_browses;
    let accept = compile filter in
    Seq.fold_left
      (fun acc (iid, inst) -> if accept inst then iid :: acc else acc)
      []
      (Int_map.to_rev_seq snap.snap_state.st_instances)
end

(* ------------------------------------------------------------------ *)
(* Live-store reads: thin wrappers over a fresh snapshot.  Each call   *)
(* sees the latest committed state; multi-call consistency requires    *)
(* taking an explicit [snapshot].                                      *)
(* ------------------------------------------------------------------ *)

let find_opt store iid = Snapshot.find_opt (snapshot store) iid
let find store iid = Snapshot.find (snapshot store) iid
let mem store iid = Snapshot.mem (snapshot store) iid
let payload_resident store iid = Snapshot.payload_resident (snapshot store) iid
let payload store iid = Snapshot.payload (snapshot store) iid
let entity_of store iid = Snapshot.entity_of (snapshot store) iid
let meta_of store iid = Snapshot.meta_of (snapshot store) iid
let hash_of store iid = Snapshot.hash_of (snapshot store) iid
let instance_count store = Snapshot.instance_count (snapshot store)
let physical_count store = Snapshot.physical_count (snapshot store)

let instances_of_entity store entity =
  Snapshot.instances_of_entity (snapshot store) entity

let all_instances store = Snapshot.all_instances (snapshot store)
let matches store filter iid = Snapshot.matches (snapshot store) filter iid
let browse store filter = Snapshot.browse (snapshot store) filter

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_instance ppf inst =
  Fmt.pf ppf "#%d %s %S by %s @%d" inst.iid inst.entity inst.meta.label
    inst.meta.user inst.meta.created_at

let pp ppf store =
  Fmt.pf ppf "store: %d instances over %d physical objects"
    (instance_count store) (physical_count store)
