(* The design-object store.

   Every design object is an *instance*: per-instance meta-data (user,
   logical timestamp, name, comment, keywords -- the browser columns of
   Fig. 9) plus a reference to content-addressed physical data.  As the
   paper's footnote 5 notes, several instances (different versions of a
   design) may share one physical datum; sharing falls out of content
   addressing here.  The store is polymorphic in the payload so the
   framework layers stay independent of the EDA substrate. *)

type iid = int

type meta = {
  user : string;
  created_at : int;          (* logical clock value *)
  label : string;            (* the designer-facing name *)
  comment : string;
  keywords : string list;
}

type 'a instance = {
  iid : iid;
  entity : string;           (* schema entity the instance belongs to *)
  data_hash : string;
  meta : meta;
}

type 'a event =
  | Put of 'a instance * 'a
  | Annotated of 'a instance

type 'a t = {
  mutable next_iid : int;
  instances : (iid, 'a instance) Hashtbl.t;
  payloads : (string, 'a) Hashtbl.t;     (* content-addressed physical data *)
  by_entity : (string, iid list ref) Hashtbl.t;
  mutable all_rev : iid list;            (* every iid, newest first *)
  mutable observer : ('a event -> unit) option;
  mutable cold_loader : (iid -> 'a option) option;
  (* tiered storage: reloads an evicted payload from cold storage *)
}

exception Store_error = Ddf_core.Error.Ddf_error
(* Deprecated alias: the store raises the shared typed error now. *)

let store_errorf ?(code = `Invalid) fmt = Ddf_core.Error.errorf code fmt

let m_puts = Ddf_obs.Metrics.counter "store.puts"
let m_dedup = Ddf_obs.Metrics.counter "store.dedup_hits"
let m_browses = Ddf_obs.Metrics.counter "store.browses"
let m_cold_loads = Ddf_obs.Metrics.counter "store.cold_loads"
let m_evictions = Ddf_obs.Metrics.counter "store.evictions"

let create () =
  {
    next_iid = 1;
    instances = Hashtbl.create 64;
    payloads = Hashtbl.create 64;
    by_entity = Hashtbl.create 16;
    all_rev = [];
    observer = None;
    cold_loader = None;
  }

let tick store = store.next_iid

let restore_tick store n =
  if n < store.next_iid then
    store_errorf "cannot move the instance counter back (%d < %d)" n
      store.next_iid;
  store.next_iid <- n

let set_observer store f = store.observer <- Some f
let clear_observer store = store.observer <- None

let notify store ev =
  match store.observer with None -> () | Some f -> f ev

let meta ?(user = "designer") ?(label = "") ?(comment = "") ?(keywords = [])
    ~created_at () =
  { user; created_at; label; comment; keywords }

let put store ~entity ~hash ~meta payload =
  let iid = store.next_iid in
  store.next_iid <- iid + 1;
  Ddf_obs.Metrics.incr m_puts;
  if Hashtbl.mem store.payloads hash then
    (* content-hash sharing: a second instance over the same datum *)
    Ddf_obs.Metrics.incr m_dedup
  else Hashtbl.add store.payloads hash payload;
  let inst = { iid; entity; data_hash = hash; meta } in
  Hashtbl.add store.instances iid inst;
  let bucket =
    match Hashtbl.find_opt store.by_entity entity with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add store.by_entity entity l;
      l
  in
  bucket := iid :: !bucket;
  store.all_rev <- iid :: store.all_rev;
  notify store (Put (inst, payload));
  iid

let find_opt store iid = Hashtbl.find_opt store.instances iid

let find store iid =
  match find_opt store iid with
  | Some inst -> inst
  | None -> store_errorf ~code:`Not_found "no instance %d" iid

let mem store iid = Hashtbl.mem store.instances iid

let set_cold_loader store f = store.cold_loader <- Some f
let clear_cold_loader store = store.cold_loader <- None

let payload_resident store iid =
  Hashtbl.mem store.payloads (find store iid).data_hash

(* Hot path first: a resident payload is one hash lookup.  On a miss,
   fall through to cold storage (if wired) and promote the reloaded
   payload back into the resident table so later readers stay hot. *)
let payload store iid =
  let inst = find store iid in
  match Hashtbl.find_opt store.payloads inst.data_hash with
  | Some v -> v
  | None -> (
    match store.cold_loader with
    | None -> Hashtbl.find store.payloads inst.data_hash
    | Some load -> (
      match load iid with
      | Some v ->
        Ddf_obs.Metrics.incr m_cold_loads;
        Hashtbl.add store.payloads inst.data_hash v;
        v
      | None ->
        store_errorf ~code:`Not_found
          "payload of instance %d is neither resident nor cemented" iid))

let evict store iid =
  match find_opt store iid with
  | None -> false
  | Some inst ->
    if Hashtbl.mem store.payloads inst.data_hash then (
      Hashtbl.remove store.payloads inst.data_hash;
      Ddf_obs.Metrics.incr m_evictions;
      true)
    else false

let entity_of store iid = (find store iid).entity
let meta_of store iid = (find store iid).meta
let hash_of store iid = (find store iid).data_hash

let annotate store iid ?label ?comment ?keywords () =
  let inst = find store iid in
  let m = inst.meta in
  let m =
    {
      m with
      label = Option.value label ~default:m.label;
      comment = Option.value comment ~default:m.comment;
      keywords = Option.value keywords ~default:m.keywords;
    }
  in
  let inst = { inst with meta = m } in
  Hashtbl.replace store.instances iid inst;
  notify store (Annotated inst)

let instance_count store = Hashtbl.length store.instances

let physical_count store = Hashtbl.length store.payloads
(* instance_count - physical_count = storage saved by sharing *)

let instances_of_entity store entity =
  match Hashtbl.find_opt store.by_entity entity with
  | Some l -> List.rev !l
  | None -> []

(* [put] assigns dense ascending iids and nothing is ever deleted, so
   reversing the insertion list IS the sorted order — no per-call
   Hashtbl fold + sort. *)
let all_instances store = List.rev store.all_rev

(* ------------------------------------------------------------------ *)
(* Browser filters (the Fig. 9 instance browser)                       *)
(* ------------------------------------------------------------------ *)

type filter = {
  f_entities : string list option;  (* accepted entity ids; None = all *)
  f_user : string option;
  f_from : int option;              (* inclusive timestamp bounds *)
  f_to : int option;
  f_keywords : string list;         (* all must be present *)
  f_text : string option;           (* substring of label or comment *)
}

let any_filter =
  { f_entities = None; f_user = None; f_from = None; f_to = None;
    f_keywords = []; f_text = None }

(* Compile a filter into a predicate over instances: the text needle
   is lowercased once here, not once per instance scanned. *)
let compile filter =
  let needle = Option.map String.lowercase_ascii filter.f_text in
  let contains_lower hay ln =
    let lh = String.lowercase_ascii hay in
    let n = String.length ln and h = String.length lh in
    let rec at i = i + n <= h && (String.sub lh i n = ln || at (i + 1)) in
    n = 0 || at 0
  in
  fun inst ->
    let m = inst.meta in
    (match filter.f_entities with
    | None -> true
    | Some es -> List.mem inst.entity es)
    && (match filter.f_user with None -> true | Some u -> m.user = u)
    && (match filter.f_from with None -> true | Some t -> m.created_at >= t)
    && (match filter.f_to with None -> true | Some t -> m.created_at <= t)
    && List.for_all (fun k -> List.mem k m.keywords) filter.f_keywords
    && (match needle with
       | None -> true
       | Some ln -> contains_lower m.label ln || contains_lower m.comment ln)

let matches store filter iid = compile filter (find store iid)

let browse store filter =
  Ddf_obs.Metrics.incr m_browses;
  let accept = compile filter in
  List.filter (fun iid -> accept (find store iid)) (all_instances store)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_instance ppf inst =
  Fmt.pf ppf "#%d %s %S by %s @%d" inst.iid inst.entity inst.meta.label
    inst.meta.user inst.meta.created_at

let pp ppf store =
  Fmt.pf ppf "store: %d instances over %d physical objects"
    (instance_count store) (physical_count store)
