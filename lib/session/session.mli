(** The Hercules session model (section 4, Fig. 9).

    A session wraps an execution context with the four catalogs (flows,
    entities, tools, data) and the task-window state: a current flow
    under construction, per-node instance selections, and the expand /
    specialize / browse / run operations of the pop-up menu.  All four
    design approaches — goal-, tool-, data- and plan-based — funnel
    into this one interface. *)

open Ddf_graph
open Ddf_store

type t

val create : ?user:string -> Ddf_schema.Schema.t -> t
val of_context : Ddf_exec.Engine.context -> t
val context : t -> Ddf_exec.Engine.context

val pin : t -> Ddf_exec.Engine.view
(** Pin a lock-free read view of the session's store and history; pass
    it back via the [?view] parameters below to serve several reads
    from one frozen state. *)

val current_flow : t -> Task_graph.t

(** {1 Catalogs} *)

val entity_catalog : t -> string list
val tool_catalog : t -> string list
val data_catalog :
  ?filter:Store.filter -> ?view:Ddf_exec.Engine.view -> t -> Store.iid list
val flow_catalog : t -> string list

val catalog_flow : t -> string -> Task_graph.t option
(** Look a saved flow up by name. *)

val restore_flow : t -> string -> Task_graph.t -> unit
(** Install a flow in the catalog without touching the task window
    (used by workspace loading). *)

val save_flow : t -> string -> unit
(** Store the current flow in the flow catalog (for the plan-based
    approach). @raise Ddf_core.Error.Ddf_error on an empty flow. *)

val clear : t -> unit

(** {1 The four design approaches (section 3.4)} *)

val start_goal_based : t -> string -> int
(** Start from a goal entity picked in the entity catalog; returns the
    goal node. *)

val start_tool_based : t -> string -> int
(** Start from a tool. @raise Ddf_core.Error.Ddf_error for non-tools. *)

val goal_options : t -> int -> string list
(** Goal entities the tool node can produce. *)

val start_data_based : t -> Store.iid -> int
(** Start from an existing instance; the node is pre-selected. *)

val start_plan_based : t -> string -> int list
(** Load a catalog flow; returns its roots.
    @raise Ddf_core.Error.Ddf_error for unknown names. *)

(** {1 Pop-up menu operations (section 4.1)} *)

val expand :
  ?include_optional:bool -> ?reuse:(string * int) list -> t -> int -> int list

val expand_up :
  ?role:string -> ?include_optional:bool -> ?reuse:(string * int) list ->
  t -> int -> consumer:string -> int * int list

val unexpand : t -> int -> unit
(** Also drops selections of removed nodes. *)

val specialize : t -> int -> string -> unit
val specialization_options : t -> int -> string list

val browse :
  ?filter:Store.filter -> ?view:Ddf_exec.Engine.view -> t -> int ->
  Store.iid list
(** Instances selectable for a node: its entity and subtypes, under an
    optional browser filter.  [view] pins the store/history state to
    read from (defaults to a fresh {!pin} per call). *)

val select : t -> int -> Store.iid list -> unit
(** Select instances for a leaf; several instances mean fan-out
    execution. @raise Ddf_core.Error.Ddf_error on empty or incompatible
    selections. *)

val selection : t -> int -> Store.iid list option

val executable : t -> int -> bool
(** A node becomes executable once every leaf below it is selected. *)

val run : ?memo:bool -> t -> int -> Store.iid list
(** Run the sub-flow rooted at a node, fanning out over multi-instance
    selections; one result instance per combination. *)

val last_runs : t -> Ddf_exec.Engine.run list
(** The engine runs behind the most recent {!run} (statistics, full
    assignments). *)

val recall : t -> Store.iid -> int
(** Recall a previously executed task (section 4.1): the instance's
    flow trace becomes the current flow with leaf selections restored,
    ready to be modified and re-executed.  Returns the root node. *)

val history_of :
  ?view:Ddf_exec.Engine.view -> t -> Store.iid ->
  Task_graph.t * int * (int * Store.iid) list
(** The History pop-up (Fig. 10): the instance's derivation trace. *)

val uses_of : ?view:Ddf_exec.Engine.view -> t -> Store.iid -> Store.iid list
(** "Use dependencies" browsing: instances derived from this one. *)

(** {1 Rendering (the task window and browser of Fig. 9)} *)

val render_task_window : t -> string
val render_browser :
  ?filter:Store.filter -> ?view:Ddf_exec.Engine.view -> t -> int -> string
