(* The Hercules session model (section 4, Fig. 9).

   A session wraps an execution context with the four catalogs (flows,
   entities, tools, data) and the task-window state: a current flow
   under construction, per-node instance selections, and the expand /
   specialize / browse / run operations of the pop-up menu.  All four
   design approaches -- goal-, tool-, data- and plan-based -- funnel
   into the same single interface, unlike the per-approach interfaces
   of Rumsey & Farquhar. *)

open Ddf_schema
open Ddf_graph
open Ddf_store

let session_errorf ?(code = `Invalid) fmt = Ddf_core.Error.errorf code fmt

module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics

let m_expands = Metrics.counter "session.expands"
let m_selects = Metrics.counter "session.selects"
let m_runs = Metrics.counter "session.runs"
let m_recalls = Metrics.counter "session.recalls"

type t = {
  ctx : Ddf_exec.Engine.context;
  flow_catalog : (string, Task_graph.t) Hashtbl.t;
  mutable current : Task_graph.t;
  (* node -> selected instances (several = fan-out execution) *)
  selections : (int, Store.iid list) Hashtbl.t;
  mutable last_run : Ddf_exec.Engine.run list;
}

let create ?(user = "designer") schema =
  {
    ctx = Ddf_exec.Engine.create_context ~user schema;
    flow_catalog = Hashtbl.create 8;
    current = Task_graph.empty schema;
    selections = Hashtbl.create 8;
    last_run = [];
  }

let of_context ctx =
  {
    ctx;
    flow_catalog = Hashtbl.create 8;
    current = Task_graph.empty ctx.Ddf_exec.Engine.schema;
    selections = Hashtbl.create 8;
    last_run = [];
  }

let context s = s.ctx
let current_flow s = s.current

(* Pin a read view (store + history snapshots) for this session's
   context; every read entry point takes an optional pre-pinned view
   so the server can serve a whole request — or a whole pure-read
   batch — from one frozen state. *)
let pin s = Ddf_exec.Engine.pin s.ctx

let resolve_view s = function
  | Some v -> v
  | None -> pin s

(* Results of the most recent [run], one per fan-out combination. *)
let last_runs s = s.last_run

(* ------------------------------------------------------------------ *)
(* Catalogs                                                            *)
(* ------------------------------------------------------------------ *)

let entity_catalog s = Schema.entity_ids s.ctx.Ddf_exec.Engine.schema

let tool_catalog s =
  List.filter (Schema.is_tool s.ctx.Ddf_exec.Engine.schema) (entity_catalog s)

let data_catalog ?(filter = Store.any_filter) ?view s =
  let v = resolve_view s view in
  Store.Snapshot.browse v.Ddf_exec.Engine.v_store filter

let flow_catalog s =
  Hashtbl.fold (fun name _ acc -> name :: acc) s.flow_catalog []
  |> List.sort compare

let catalog_flow s name = Hashtbl.find_opt s.flow_catalog name

let restore_flow s name g = Hashtbl.replace s.flow_catalog name g

let save_flow s name =
  if Task_graph.size s.current = 0 then session_errorf "no flow to save";
  Hashtbl.replace s.flow_catalog name s.current

let clear s =
  s.current <- Task_graph.empty s.ctx.Ddf_exec.Engine.schema;
  Hashtbl.reset s.selections

(* ------------------------------------------------------------------ *)
(* The four design approaches (section 3.4)                            *)
(* ------------------------------------------------------------------ *)

(* Goal-based: pick the goal entity type from the entity catalog. *)
let start_goal_based s entity =
  clear s;
  let g, nid = Task_graph.create s.ctx.Ddf_exec.Engine.schema entity in
  s.current <- g;
  nid

(* Tool-based: pick a tool; its node appears, and the goal options are
   derivable from the schema. *)
let start_tool_based s tool_entity =
  if not (Schema.is_tool s.ctx.Ddf_exec.Engine.schema tool_entity) then
    session_errorf ~code:`Type_error "%s is not a tool" tool_entity;
  clear s;
  let g, nid = Task_graph.create s.ctx.Ddf_exec.Engine.schema tool_entity in
  s.current <- g;
  nid

let goal_options s nid =
  Schema.goals_of_tool s.ctx.Ddf_exec.Engine.schema (Task_graph.entity_of s.current nid)

(* Data-based: pick an existing instance from the data catalog. *)
let start_data_based s iid =
  let entity = Store.entity_of s.ctx.Ddf_exec.Engine.store iid in
  clear s;
  let g, nid = Task_graph.create s.ctx.Ddf_exec.Engine.schema entity in
  s.current <- g;
  Hashtbl.replace s.selections nid [ iid ];
  nid

(* Plan-based: pick a predefined flow from the flow catalog. *)
let start_plan_based s name =
  match Hashtbl.find_opt s.flow_catalog name with
  | None -> session_errorf ~code:`Not_found "no flow %S in the catalog" name
  | Some g ->
    clear s;
    s.current <- g;
    Task_graph.roots g

(* ------------------------------------------------------------------ *)
(* Pop-up menu operations                                              *)
(* ------------------------------------------------------------------ *)

let expand ?include_optional ?reuse s nid =
  Metrics.incr m_expands;
  let g, fresh = Task_graph.expand ?include_optional ?reuse s.current nid in
  s.current <- g;
  fresh

let expand_up ?role ?include_optional ?reuse s nid ~consumer =
  let g, cnid, fresh =
    Task_graph.expand_up ?role ?include_optional ?reuse s.current nid ~consumer
  in
  s.current <- g;
  (cnid, fresh)

let unexpand s nid =
  s.current <- Task_graph.unexpand s.current nid;
  (* drop selections of removed nodes *)
  Hashtbl.iter
    (fun n _ -> if not (Task_graph.mem s.current n) then Hashtbl.remove s.selections n)
    (Hashtbl.copy s.selections)

let specialize s nid subtype =
  s.current <- Task_graph.specialize s.current nid subtype

let specialization_options s nid =
  Schema.descendants s.ctx.Ddf_exec.Engine.schema (Task_graph.entity_of s.current nid)

(* Browse: instances selectable for a node (the node's entity and its
   subtypes), under an optional browser filter. *)
let browse ?(filter = Store.any_filter) ?view s nid =
  let v = resolve_view s view in
  let entity = Task_graph.entity_of s.current nid in
  let accepted = entity :: Schema.descendants s.ctx.Ddf_exec.Engine.schema entity in
  let filter =
    { filter with
      Store.f_entities =
        (match filter.Store.f_entities with
        | None -> Some accepted
        | Some es -> Some (List.filter (fun e -> List.mem e accepted) es)) }
  in
  Store.Snapshot.browse v.Ddf_exec.Engine.v_store filter

let select s nid iids =
  Metrics.incr m_selects;
  if iids = [] then session_errorf "empty selection";
  List.iter
    (fun iid ->
      let entity = Store.entity_of s.ctx.Ddf_exec.Engine.store iid in
      let node_entity = Task_graph.entity_of s.current nid in
      if not (Schema.is_subtype s.ctx.Ddf_exec.Engine.schema ~sub:entity ~super:node_entity)
      then
        session_errorf ~code:`Type_error "instance #%d (%s) cannot fill a %s node" iid entity
          node_entity)
    iids;
  Hashtbl.replace s.selections nid iids

let selection s nid = Hashtbl.find_opt s.selections nid

(* A node is executable once every leaf below it has a selection. *)
let executable s nid =
  let sub = Task_graph.reachable s.current nid in
  List.for_all
    (fun leaf ->
      (not (Task_graph.Int_set.mem leaf sub))
      || Hashtbl.mem s.selections leaf)
    (Task_graph.leaves s.current)
  && Task_graph.out_edges s.current nid <> []

(* Run the (sub-)flow rooted at a node, fanning out over multi-instance
   selections; results land in the store and history. *)
let run ?memo s nid =
  Metrics.incr m_runs;
  Obs.with_span ~cat:"session"
    ~attrs:
      [
        ("node", Obs.Int nid);
        ("entity", Obs.Str (Task_graph.entity_of s.current nid));
      ]
    "session.run"
  @@ fun () ->
  let sub = Task_graph.subflow s.current nid in
  let bindings =
    List.filter_map
      (fun leaf -> Option.map (fun sel -> (leaf, sel)) (selection s leaf))
      (Task_graph.leaves sub)
  in
  let runs = Ddf_exec.Engine.execute_fanout ?memo s.ctx sub ~bindings in
  s.last_run <- runs;
  List.map (fun r -> Ddf_exec.Engine.result_of r nid) runs

(* Recall a previously executed task (section 4.1): the instance's flow
   trace becomes the current flow, with the leaf selections restored,
   ready to be modified and re-executed. *)
let recall s iid =
  Metrics.incr m_recalls;
  let g, root, binding =
    Ddf_history.History.trace s.ctx.Ddf_exec.Engine.history
      s.ctx.Ddf_exec.Engine.store s.ctx.Ddf_exec.Engine.schema iid
  in
  clear s;
  s.current <- g;
  List.iter
    (fun (nid, inst) ->
      if Task_graph.out_edges g nid = [] then
        Hashtbl.replace s.selections nid [ inst ])
    binding;
  root

(* History pop-up: reveal the instances used to create one (Fig. 10). *)
let history_of ?view s iid =
  let v = resolve_view s view in
  Ddf_history.History.Snapshot.trace v.Ddf_exec.Engine.v_history
    v.Ddf_exec.Engine.v_store s.ctx.Ddf_exec.Engine.schema iid

(* "Use dependencies" browsing: what was derived from this instance. *)
let uses_of ?view s iid =
  let v = resolve_view s view in
  Ddf_history.History.Snapshot.derived_instances v.Ddf_exec.Engine.v_history iid

(* ------------------------------------------------------------------ *)
(* Rendering (the task window and browser of Fig. 9)                   *)
(* ------------------------------------------------------------------ *)

let render_task_window s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "--- task window ---\n";
  Buffer.add_string buf (Task_graph.to_ascii s.current);
  List.iter
    (fun (n : Task_graph.node) ->
      match selection s n.Task_graph.nid with
      | Some sel ->
        Buffer.add_string buf
          (Printf.sprintf "  node %d <- instances [%s]\n" n.Task_graph.nid
             (String.concat "; " (List.map string_of_int sel)))
      | None -> ())
    (Task_graph.nodes s.current);
  Buffer.contents buf

let render_browser ?(filter = Store.any_filter) ?view s nid =
  let v = resolve_view s view in
  let buf = Buffer.create 512 in
  let entity = Task_graph.entity_of s.current nid in
  Buffer.add_string buf (Printf.sprintf "--- browser: %s ---\n" entity);
  List.iter
    (fun iid ->
      let m = Store.Snapshot.meta_of v.Ddf_exec.Engine.v_store iid in
      Buffer.add_string buf
        (Printf.sprintf "  [%c] #%-4d %-24s %-10s @%d %s\n"
           (match selection s nid with
           | Some sel when List.mem iid sel -> '*'
           | Some _ | None -> ' ')
           iid
           (if m.Store.label = "" then "(unnamed)" else m.Store.label)
           m.Store.user m.Store.created_at m.Store.comment))
    (browse ~filter ~view:v s nid);
  Buffer.contents buf
