(** The Hercules design-server wire protocol.

    Two codecs share the socket.  The s-expression codec frames each
    message as

    {v ddf1 <payload-bytes> [<deadline-ms>] [t=<trace>.<span>]\n<payload>\n v}

    so both sides can read exactly one message without scanning.  The
    optional extra header tokens are recognised by shape: a run of
    digits is the sender's remaining deadline budget in milliseconds —
    how long it is still willing to wait for the answer; the server
    sheds requests it cannot start in time — and a [t=]-prefixed token
    is a trace context ({!Ddf_obs.Obs.span_ctx_to_token}) linking the
    receiver's spans into the sender's distributed trace.

    The v8 {e binary} codec carries the same meta in a fixed header —
    [0xd8] magic, a flags byte, a u32-LE body length, then the flagged
    optional fields — followed by a tag-byte-dispatched body of
    fixed-width ints and length-delimited strings.  Design-object
    values, journal frames and snapshot chunks ride in it as opaque
    length-delimited byte slices the codec never re-encodes.  Every
    receiver sniffs the first byte of each frame (0xd8 vs the ['d'] of
    ["ddf1"]), so the codec can switch mid-connection: a hello always
    travels as sexp, and once a server {e accepts} a v8 hello, every
    later frame in both directions — the hello reply included — is
    binary.

    The request surface mirrors {!Ddf_session.Session}: catalog
    queries, task-window construction (expand / specialize / select),
    execution, history queries and consistency refresh — plus
    auth-lite client identity ([Hello]) that the server maps onto
    [Store.meta.user] for every mutation the client performs. *)

exception Wire_error of string

type iid = Ddf_store.Store.iid

val protocol_version : int
(** The dialect this build speaks (8).  The [Hello] handshake carries
    the client's version; a server refuses clients outside
    [[min_protocol_version, protocol_version]] with a typed error
    before serving anything else.  Version 4 added structured error
    frames and the deadline header token; version 5 added the
    [Metrics] verb and the trace-context header token; version 6 the
    anti-entropy sync verbs ([Sync_digest] / [Sync_frames] /
    [Sync_ack]) and the conflict surface ([Conflicts] / [Resolve]);
    version 7 adds chunked streaming snapshots ([Snapshot_export] and
    the [Ok_snapshot_begin]/[Ok_snapshot_chunk]/[Ok_snapshot_end]
    responses, also used to resync a v7 subscriber); version 8 adds no
    verbs — it switches the connection to the length-prefixed binary
    codec after the handshake.  All verb additions live in slots older
    peers never send, so v4–v7 clients interoperate unchanged — a
    v≤7 peer simply keeps the sexp codec both ways. *)

val min_protocol_version : int
(** The oldest client dialect a server of this build accepts (4). *)

type codec = Sexp | Binary
(** Which on-wire encoding a connection speaks.  Derived from the
    negotiated hello version per connection ({!codec_for_version}); a
    redial always restarts from [Sexp] until its own hello lands. *)

val codec_name : codec -> string
val codec_for_version : int -> codec
(** [Binary] for negotiated version ≥ 8, [Sexp] below. *)

val snapshot_chunk_bytes : int
(** Chunk size of a streamed snapshot (both the [Subscribe] resync and
    [Snapshot_export] paths): the most snapshot data either peer holds
    in memory at once, per frame. *)

type catalog = Entities | Tools | Flows

type request =
  | Hello of { user : string; version : int }
      (** client identity (user) + protocol version; a version-1 peer
          sends a bare [(hello <user>)], decoded as [version = 1] *)
  | Ping
  | Stat
  | Catalog of catalog
  | Browse of Ddf_store.Store.filter     (** whole-store browse *)
  | Install of {
      entity : string;
      label : string;
      keywords : string list;
      value : Ddf_persist.Sexp.t;        (** {!Ddf_persist.Codec} form *)
    }
  | Annotate of {
      iid : iid;
      label : string option;
      comment : string option;
      keywords : string list option;
    }
  | Start_goal of string
  | Start_data of iid
  | Expand of int
  | Specialize of int * string
  | Select of int * iid list
  | Node_browse of int * Ddf_store.Store.filter
  | Leaves                               (** current flow's leaves *)
  | Run of int
  | Render                               (** ASCII task window *)
  | Recall of iid
  | Trace of iid                         (** derivation trace, rendered *)
  | Uses of iid
  | Refresh of iid                       (** [Consistency.refresh] *)
  | Save_flow of string
  | Load_flow of string
  | Shutdown
  | Subscribe of int
      (** follower → primary: stream me every journal entry with seqno
          greater than this (0 = from the beginning).  The connection
          switches into replication mode: the server answers with an
          optional [Ok_snapshot] followed by an unbounded stream of
          [Ok_frame]s, and reads only [Repl_ack]s from then on. *)
  | Repl_ack of int                      (** follower → primary: applied
                                             through this seqno (no
                                             response) *)
  | Lag                                  (** per-follower replication lag *)
  | Compact                              (** admin: fold the journal into
                                             a fresh snapshot now *)
  | Metrics                              (** the server's metrics registry
                                             snapshot (v5) *)
  | Sync_digest
      (** v6 anti-entropy handshake: the server's workspace id, journal
          base/seq, wal digest (seqno → frame md5), per-origin applied
          cursors and canonical state fingerprint — everything a peer
          needs to locate the common prefix and resume a sync *)
  | Sync_frames of { after : int; limit : int }
      (** v6: pull at most [limit] wal frames with seqno > [after] *)
  | Sync_ack of { origin : string; upto : int; frames : (int * string * string) list }
      (** v6: deliver a batch of [origin]'s frames [(seqno, md5,
          payload)] for application through the writer loop and
          advance the persisted origin cursor to [upto]; an empty
          batch just acknowledges.  This is the push half of a sync
          round — a mutation. *)
  | Conflicts                            (** v6: the sync-conflict registry *)
  | Resolve of { conflict : int; winner : iid }
      (** v6: pick the winning version of a surfaced conflict *)
  | Snapshot_export
      (** v7: compact, then stream the on-disk snapshot back as
          [Ok_snapshot_begin], [Ok_snapshot_chunk]s and
          [Ok_snapshot_end] — the bounded-memory bootstrap/backup
          verb.  Handled at connection level (like [Subscribe]);
          refused for peers that negotiated below 7. *)
  | Batch of request list
      (** a pipeline: the requests run in order and are answered
          positionally by one [Ok_batch] — one frame each way.  An
          inner failure yields an [Error] at its position and
          execution continues (journaled effects of earlier members
          are not rolled back).  A batch containing a mutation runs as
          one writer job, so its writes group-commit together; batches
          do not nest. *)

type stat = {
  st_role : string;                      (** "primary" or "follower" *)
  st_seq : int;                          (** last journaled seqno *)
  st_clock : int;
  st_instances : int;
  st_records : int;
  st_store_tick : int;
  st_history_tick : int;
  st_uptime_s : float;
}

type instance_row = {
  row_iid : iid;
  row_entity : string;
  row_meta : Ddf_store.Store.meta;
}

type lag_row = {
  lag_follower : string;                 (** follower identity (hello user) *)
  lag_acked : int;                       (** last seqno it acknowledged *)
  lag_sent : int;                        (** last seqno sent to it *)
}

type conflict_row = {
  cf_id : int;
  cf_base : iid;                         (** the version both sides edited *)
  cf_ours : iid;                         (** the local alternative *)
  cf_theirs : iid;                       (** the synced-in alternative *)
  cf_origin : string;                    (** wsid the remote branch came from *)
  cf_at : int;
  cf_winner : iid option;                (** [None] until resolved *)
}

type sync_stats = {
  sy_applied : int;    (** frames whose effects were new here *)
  sy_skipped : int;    (** frames deduplicated as already present *)
  sy_conflicts : int;  (** divergences registered while applying *)
  sy_cursor : int;     (** origin seqno applied through, persisted *)
}

type response =
  | Ok_unit
  | Ok_int of int                        (** fresh node / instance id *)
  | Ok_ints of int list                  (** node or instance ids *)
  | Ok_atoms of string list              (** catalog names *)
  | Ok_text of string                    (** rendered window / trace *)
  | Ok_nodes of (int * string) list      (** node id, entity *)
  | Ok_rows of instance_row list
  | Ok_stat of stat
  | Ok_refresh of { fresh : iid; reran : int; reused : int }
  | Ok_snapshot of { seq : int; data : string }
      (** replication seed: a full workspace save as of [seq] (the
          monolithic, v6-and-below form) *)
  | Ok_snapshot_begin of { seq : int; bytes : int }
      (** v7: a streamed snapshot follows — [bytes] of workspace save
          taken at [seq], chunked in {!snapshot_chunk_bytes} pieces *)
  | Ok_snapshot_chunk of { data : string }
  | Ok_snapshot_end of { digest : string }
      (** v7: end of stream; [digest] is md5 hex over the whole
          reassembled snapshot *)
  | Ok_frame of { seq : int; payload : string; digest : string }
      (** one journal entry; [digest] is the md5 hex of [payload], the
          same checksum the on-disk frame carries *)
  | Ok_lags of { primary_seq : int; rows : lag_row list }
  | Ok_metrics of Ddf_obs.Metrics.metric list
      (** the server's metrics snapshot; histogram stats travel as hex
          floats so they round-trip exactly *)
  | Ok_digest of {
      wsid : string;
      base : int;
      seq : int;
      fingerprint : string;
          (** canonical identity-independent state digest: two peers
              whose fingerprints agree hold the same design state even
              though their iids may differ *)
      cursors : (string * int) list;     (** origin wsid → applied seqno *)
      entries : (int * string) list;     (** seqno → frame md5, ascending *)
    }
  | Ok_frames of (int * string * string) list
      (** [(seqno, md5, payload)] — answers [Sync_frames] *)
  | Ok_sync of sync_stats                (** answers [Sync_ack] *)
  | Ok_conflicts of conflict_row list
  | Ok_batch of response list            (** positional answers to [Batch] *)
  | Error of Ddf_core.Error.t
      (** on the wire:
          [(error <code> <msg> <retryable|final> [(retry-after s)]
          [(ctx (k v) ...)])].  [retryable] is the server's assertion
          that the request was {e not executed}, so resending cannot
          double-apply; [retry-after] is its backoff hint in seconds.
          A bare [(error <msg>)] from a v3 peer decodes as a final
          [`Internal] error. *)

val request_to_sexp : request -> Ddf_persist.Sexp.t
val request_of_sexp : Ddf_persist.Sexp.t -> request
(** @raise Wire_error on malformed input. *)

val response_to_sexp : response -> Ddf_persist.Sexp.t
val response_of_sexp : Ddf_persist.Sexp.t -> response

val request_name : request -> string
(** Stable short name for tracing and metrics ("run", "browse", ...). *)

val is_mutation : request -> bool
(** Must the request go through the single-writer engine loop?
    Session-window operations (expand/select/...) mutate only the
    per-connection session and count as reads of the shared store. *)

(** {1 The v8 binary codec} *)

val request_to_binary_string : request -> string
val request_of_binary_string : string -> request
val response_to_binary_string : response -> string
val response_of_binary_string : string -> response
(** The binary codec as plain strings (frame body only, no header) —
    the property-test and bench surface; the socket paths below keep
    the gathered iovec form.  Decoders
    @raise Wire_error on malformed input, including trailing bytes. *)

(** {1 Framed socket I/O} *)

val send :
  ?deadline_ms:int -> ?trace:Ddf_obs.Obs.span_ctx ->
  Unix.file_descr -> Ddf_persist.Sexp.t -> unit
(** Write one sexp-framed message; [deadline_ms] puts the sender's
    remaining budget in the header, [trace] its span context (so the
    receiver can parent its spans into the sender's trace).
    @raise Wire_error on a closed peer. *)

val recv : Unix.file_descr -> Ddf_persist.Sexp.t option
(** Read one framed message; [None] on clean end-of-stream.
    @raise Wire_error on framing violations (a binary frame included). *)

type frame_meta = {
  fm_deadline_ms : int option;   (** peer's remaining budget, ms *)
  fm_trace : Ddf_obs.Obs.span_ctx option;  (** peer's span context *)
}

val recv_meta :
  Unix.file_descr -> (Ddf_persist.Sexp.t * frame_meta) option
(** Like {!recv} but also yields the optional header tokens. *)

val recv_deadline : Unix.file_descr -> (Ddf_persist.Sexp.t * int option) option
(** {!recv_meta} restricted to the deadline budget. *)

(** {1 Typed codec-aware I/O}

    What every production path speaks.  Senders encode in the given
    codec; receivers sniff the codec per frame, so a connection can
    switch from sexp to binary the moment a v8 hello is accepted.
    Each call observes the [wire.<codec>.encode_seconds] /
    [wire.<codec>.decode_seconds] histograms and the
    [wire.<codec>.bytes_out] / [wire.<codec>.bytes_in] counters. *)

val send_request :
  ?deadline_ms:int -> ?trace:Ddf_obs.Obs.span_ctx ->
  codec -> Unix.file_descr -> request -> unit

val send_response :
  ?deadline_ms:int -> ?trace:Ddf_obs.Obs.span_ctx ->
  codec -> Unix.file_descr -> response -> unit

val send_response_batch :
  codec -> Unix.file_descr ->
  (response * Ddf_obs.Obs.span_ctx option) list -> unit
(** Flush a whole group of response frames (each with its own trace
    context) as {e one} gathered kernel write — the replication
    outbox's group-commit fan-out.  Large binary payload bodies are
    carried as borrowed slices, never concatenated on the OCaml
    side. *)

val recv_request :
  Unix.file_descr -> (request * frame_meta * codec) option
(** Read and decode one request; the returned codec is the frame's
    own, letting a server answer a pre-hello frame in kind.
    [None] on clean end-of-stream.
    @raise Wire_error on framing or decode violations. *)

val recv_response :
  Unix.file_descr -> (response * frame_meta * codec) option
