/* Gathered socket writes for the v8 binary wire protocol.
 *
 * The OCaml side hands over a frame list as an array of
 * (string, offset, length) slices -- header buffers interleaved with
 * zero-copy payload bodies -- and the stub flushes the whole batch
 * with one kernel write per socket-buffer fill instead of one per
 * frame (Unix.write additionally slices every call into 16 KiB
 * copies, so a 256 KiB chunk alone costs 16 syscalls there).
 *
 * The slice bytes are gathered into one malloc'd buffer while the
 * runtime lock is held (OCaml strings may move once it is released),
 * then written outside the lock so a slow peer never stalls the other
 * server threads.  This keeps writev(2)'s one-syscall-per-batch
 * property; the single bounded memcpy replaces the per-frame string
 * concatenation the pure-OCaml path would do anyway. */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

CAMLprim value ddf_gather_write(value vfd, value vslices, value vtotal)
{
  CAMLparam3(vfd, vslices, vtotal);
  int fd = Int_val(vfd);
  long total = Long_val(vtotal);
  long nslices = Wosize_val(vslices);
  long off = 0, written = 0;
  int err = 0;
  char *buf;

  if (total < 0) caml_invalid_argument("ddf_gather_write: negative total");
  buf = malloc(total > 0 ? (size_t)total : 1);
  if (buf == NULL) caml_raise_out_of_memory();

  for (long i = 0; i < nslices; i++) {
    value s = Field(vslices, i);
    const char *base = String_val(Field(s, 0));
    long soff = Long_val(Field(s, 1));
    long slen = Long_val(Field(s, 2));
    if (slen < 0 || soff < 0 || off + slen > total ||
        soff + slen > caml_string_length(Field(s, 0))) {
      free(buf);
      caml_invalid_argument("ddf_gather_write: slice out of bounds");
    }
    memcpy(buf + off, base + soff, (size_t)slen);
    off += slen;
  }

  caml_release_runtime_system();
  while (written < off) {
    ssize_t k = write(fd, buf + written, (size_t)(off - written));
    if (k >= 0)
      written += k;
    else if (errno == EINTR)
      continue;
    else {
      err = errno;
      break;
    }
  }
  caml_acquire_runtime_system();
  free(buf);
  if (err != 0) caml_unix_error(err, "ddf_gather_write", Nothing);
  CAMLreturn(Val_long(written));
}
