(* The Hercules design-server wire protocol: framed s-expressions over
   a stream socket.

   Framing is a fixed header line ("ddf1 <len>") followed by exactly
   <len> payload bytes and a newline, so either side reads one message
   with two exact reads and malformed peers are detected immediately.
   The payload grammar reuses the persistence codecs (Workspace_file
   meta form, Codec value form) so the network speaks the same dialect
   as the disk. *)

open Ddf_store
module S = Ddf_persist.Sexp
module W = Ddf_persist.Workspace_file
module E = Ddf_core.Error
module Fault = Ddf_fault.Fault

exception Wire_error of string

let wire_errorf fmt = Format.kasprintf (fun s -> raise (Wire_error s)) fmt

type iid = Store.iid

(* Version 1: the PR-2 request/response surface, (hello <user>).
   Version 2: hello carries (version N), replication (subscribe /
   repl-ack / lag / compact) and the role/seq stat fields.
   Version 3: (batch <req>...) pipelining — one frame carrying a
   sequence of requests, answered by one (ok-batch <resp>...).
   Version 4: structured error frames (error <code> <msg> <retry>
   ...) and an optional per-request deadline budget in the frame
   header.  A v4 side still parses the bare v3 (error <msg>) form.
   Version 5: the (metrics) verb answered by (ok-metrics ...), and an
   optional trace-context header token (t=<trace>.<span>).  Both ride
   in slots a v4 peer never sends, so a v5 server accepts v4 clients
   — the handshake takes any version in
   [min_protocol_version, protocol_version].
   Version 6: anti-entropy sync verbs — (sync-digest) answered by
   (ok-digest ...), (sync-frames <after> <limit>) / (ok-frames ...),
   (sync-ack <origin> <upto> <frame>...) / (ok-sync ...) — plus the
   conflict surface (conflicts) / (ok-conflicts ...) and (resolve
   <id> <winner>).  All live in slots a v4/v5 peer never sends, so
   the handshake window stays [4, 6] and older clients interoperate
   unchanged.
   Version 7: chunked streaming snapshots.  (snapshot-export) asks the
   server to compact and stream its on-disk snapshot back as
   (ok-snapshot-begin <seq> <bytes>), a run of (ok-snapshot-chunk
   <data>) frames and a final (ok-snapshot-end <md5>); a v7 subscriber
   whose cursor predates the primary's base is resynced with the same
   begin/chunk/end run (followed by wal frames) instead of one
   monolithic (ok-snapshot ...), so neither side ever holds the whole
   state as a single string.  Negotiated via hello: a v6-or-below
   subscriber still gets the monolithic form, and (snapshot-export)
   from such a peer is refused. *)
let protocol_version = 7
let min_protocol_version = 4

(* Streamed snapshots travel in bounded chunks: big enough to amortise
   framing, small enough that neither peer ever buffers more than a few
   of them. *)
let snapshot_chunk_bytes = 256 * 1024

type catalog = Entities | Tools | Flows

type request =
  | Hello of { user : string; version : int }
  | Ping
  | Stat
  | Catalog of catalog
  | Browse of Store.filter
  | Install of {
      entity : string;
      label : string;
      keywords : string list;
      value : S.t;
    }
  | Annotate of {
      iid : iid;
      label : string option;
      comment : string option;
      keywords : string list option;
    }
  | Start_goal of string
  | Start_data of iid
  | Expand of int
  | Specialize of int * string
  | Select of int * iid list
  | Node_browse of int * Store.filter
  | Leaves
  | Run of int
  | Render
  | Recall of iid
  | Trace of iid
  | Uses of iid
  | Refresh of iid
  | Save_flow of string
  | Load_flow of string
  | Shutdown
  | Subscribe of int
  | Repl_ack of int
  | Lag
  | Compact
  | Metrics
  | Sync_digest
      (** the peer's journal digest, peer cursors and state
          fingerprint — the anti-entropy handshake *)
  | Sync_frames of { after : int; limit : int }
      (** pull at most [limit] wal frames with seqno > [after] *)
  | Sync_ack of { origin : string; upto : int; frames : (int * string * string) list }
      (** deliver a batch of [origin]'s frames [(seqno, md5, payload)]
          for application and advance the origin cursor to [upto]; an
          empty batch just acknowledges *)
  | Conflicts
  | Resolve of { conflict : int; winner : iid }
  | Snapshot_export
      (** compact, then stream the on-disk snapshot back as
          begin/chunk/end frames — the bounded-memory bootstrap verb
          (v7; handled at connection level like [Subscribe]) *)
  | Batch of request list
      (** A pipeline: the requests are executed in order and answered
          positionally by one [Ok_batch], one frame each way.  An inner
          failure yields an [Error] at its position; execution
          continues (the journal has no rollback).  Batches do not
          nest. *)

type stat = {
  st_role : string;
  st_seq : int;
  st_clock : int;
  st_instances : int;
  st_records : int;
  st_store_tick : int;
  st_history_tick : int;
  st_uptime_s : float;
}

type instance_row = {
  row_iid : iid;
  row_entity : string;
  row_meta : Store.meta;
}

type lag_row = {
  lag_follower : string;
  lag_acked : int;
  lag_sent : int;
}

type conflict_row = {
  cf_id : int;
  cf_base : iid;
  cf_ours : iid;
  cf_theirs : iid;
  cf_origin : string;
  cf_at : int;
  cf_winner : iid option;
}

type sync_stats = {
  sy_applied : int;   (** frames whose effects were new here *)
  sy_skipped : int;   (** frames deduplicated as already present *)
  sy_conflicts : int; (** divergences registered while applying *)
  sy_cursor : int;    (** origin seqno applied through, persisted *)
}

type response =
  | Ok_unit
  | Ok_int of int
  | Ok_ints of int list
  | Ok_atoms of string list
  | Ok_text of string
  | Ok_nodes of (int * string) list
  | Ok_rows of instance_row list
  | Ok_stat of stat
  | Ok_refresh of { fresh : iid; reran : int; reused : int }
  | Ok_snapshot of { seq : int; data : string }
  | Ok_snapshot_begin of { seq : int; bytes : int }
      (** a streamed snapshot follows: [bytes] of workspace save taken
          at [seq], in {!snapshot_chunk_bytes}-bounded chunks *)
  | Ok_snapshot_chunk of { data : string }
  | Ok_snapshot_end of { digest : string }
      (** md5 hex over the whole reassembled snapshot *)
  | Ok_frame of { seq : int; payload : string; digest : string }
  | Ok_lags of { primary_seq : int; rows : lag_row list }
  | Ok_metrics of Ddf_obs.Metrics.metric list
  | Ok_digest of {
      wsid : string;
      base : int;
      seq : int;
      fingerprint : string;
          (** canonical identity-independent state digest: equal
              fingerprints mean converged stores/histories *)
      cursors : (string * int) list;  (** origin wsid -> applied seqno *)
      entries : (int * string) list;  (** seqno -> frame md5, ascending *)
    }
  | Ok_frames of (int * string * string) list  (** (seqno, md5, payload) *)
  | Ok_sync of sync_stats
  | Ok_conflicts of conflict_row list
  | Ok_batch of response list
  | Error of E.t

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

(* Optional filter fields are present-or-absent fields of one
   (filter ...) form. *)
let filter_to_sexp (f : Store.filter) =
  let fields = ref [] in
  let add name items = fields := S.field name items :: !fields in
  Option.iter (fun es -> add "entities" (List.map S.atom es)) f.Store.f_entities;
  Option.iter (fun u -> add "user" [ S.atom u ]) f.Store.f_user;
  Option.iter (fun t -> add "from" [ S.int t ]) f.Store.f_from;
  Option.iter (fun t -> add "to" [ S.int t ]) f.Store.f_to;
  if f.Store.f_keywords <> [] then
    add "keywords" (List.map S.atom f.Store.f_keywords);
  Option.iter (fun t -> add "text" [ S.atom t ]) f.Store.f_text;
  S.field "filter" (List.rev !fields)

let filter_of_sexp sexp =
  match S.as_list sexp with
  | S.Atom "filter" :: fields ->
    let opt name f =
      Option.map (fun items -> f (S.one name items))
        (S.find_field_opt fields name)
    in
    {
      Store.f_entities =
        Option.map (List.map S.as_atom) (S.find_field_opt fields "entities");
      f_user = opt "user" S.as_atom;
      f_from = opt "from" S.as_int;
      f_to = opt "to" S.as_int;
      f_keywords =
        (match S.find_field_opt fields "keywords" with
        | Some ks -> List.map S.as_atom ks
        | None -> []);
      f_text = opt "text" S.as_atom;
    }
  | _ -> wire_errorf "malformed filter"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let catalog_name = function
  | Entities -> "entities"
  | Tools -> "tools"
  | Flows -> "flows"

let rec request_to_sexp = function
  | Hello { user; version } ->
    S.field "hello" [ S.atom user; S.field "version" [ S.int version ] ]
  | Ping -> S.atom "ping"
  | Stat -> S.atom "stat"
  | Catalog c -> S.field "catalog" [ S.atom (catalog_name c) ]
  | Browse f -> S.field "browse" [ filter_to_sexp f ]
  | Install { entity; label; keywords; value } ->
    S.field "install"
      [ S.atom entity; S.atom label; S.list (List.map S.atom keywords); value ]
  | Annotate { iid; label; comment; keywords } ->
    let fields = ref [] in
    Option.iter (fun l -> fields := S.field "label" [ S.atom l ] :: !fields) label;
    Option.iter
      (fun c -> fields := S.field "comment" [ S.atom c ] :: !fields)
      comment;
    Option.iter
      (fun ks -> fields := S.field "keywords" (List.map S.atom ks) :: !fields)
      keywords;
    S.field "annotate" (S.int iid :: List.rev !fields)
  | Start_goal entity -> S.field "start-goal" [ S.atom entity ]
  | Start_data iid -> S.field "start-data" [ S.int iid ]
  | Expand nid -> S.field "expand" [ S.int nid ]
  | Specialize (nid, sub) -> S.field "specialize" [ S.int nid; S.atom sub ]
  | Select (nid, iids) ->
    S.field "select" [ S.int nid; S.list (List.map S.int iids) ]
  | Node_browse (nid, f) -> S.field "node-browse" [ S.int nid; filter_to_sexp f ]
  | Leaves -> S.atom "leaves"
  | Run nid -> S.field "run" [ S.int nid ]
  | Render -> S.atom "render"
  | Recall iid -> S.field "recall" [ S.int iid ]
  | Trace iid -> S.field "trace" [ S.int iid ]
  | Uses iid -> S.field "uses" [ S.int iid ]
  | Refresh iid -> S.field "refresh" [ S.int iid ]
  | Save_flow name -> S.field "save-flow" [ S.atom name ]
  | Load_flow name -> S.field "load-flow" [ S.atom name ]
  | Shutdown -> S.atom "shutdown"
  | Subscribe seq -> S.field "subscribe" [ S.int seq ]
  | Repl_ack seq -> S.field "repl-ack" [ S.int seq ]
  | Lag -> S.atom "lag"
  | Compact -> S.atom "compact"
  | Metrics -> S.atom "metrics"
  | Sync_digest -> S.atom "sync-digest"
  | Sync_frames { after; limit } ->
    S.field "sync-frames" [ S.int after; S.int limit ]
  | Sync_ack { origin; upto; frames } ->
    S.field "sync-ack"
      (S.atom origin :: S.int upto
      :: List.map
           (fun (seq, digest, payload) ->
             S.list [ S.int seq; S.atom digest; S.atom payload ])
           frames)
  | Conflicts -> S.atom "conflicts"
  | Resolve { conflict; winner } ->
    S.field "resolve" [ S.int conflict; S.int winner ]
  | Snapshot_export -> S.atom "snapshot-export"
  | Batch reqs -> S.field "batch" (List.map request_to_sexp reqs)

let rec request_of_sexp sexp =
  match sexp with
  | S.Atom "ping" -> Ping
  | S.Atom "stat" -> Stat
  | S.Atom "leaves" -> Leaves
  | S.Atom "render" -> Render
  | S.Atom "shutdown" -> Shutdown
  | S.Atom "lag" -> Lag
  | S.Atom "compact" -> Compact
  | S.Atom "metrics" -> Metrics
  | S.Atom "sync-digest" -> Sync_digest
  | S.Atom "conflicts" -> Conflicts
  | S.Atom "snapshot-export" -> Snapshot_export
  | S.List (S.Atom name :: args) -> (
    match (name, args) with
    (* a bare (hello <user>) is the version-1 dialect *)
    | "hello", [ user ] -> Hello { user = S.as_atom user; version = 1 }
    | "hello", [ user; S.List [ S.Atom "version"; v ] ] ->
      Hello { user = S.as_atom user; version = S.as_int v }
    | "catalog", [ S.Atom "entities" ] -> Catalog Entities
    | "catalog", [ S.Atom "tools" ] -> Catalog Tools
    | "catalog", [ S.Atom "flows" ] -> Catalog Flows
    | "browse", [ f ] -> Browse (filter_of_sexp f)
    | "install", [ entity; label; keywords; value ] ->
      Install
        { entity = S.as_atom entity; label = S.as_atom label;
          keywords = List.map S.as_atom (S.as_list keywords); value }
    | "annotate", iid :: fields ->
      let opt name f =
        Option.map (fun items -> f (S.one name items))
          (S.find_field_opt fields name)
      in
      Annotate
        { iid = S.as_int iid; label = opt "label" S.as_atom;
          comment = opt "comment" S.as_atom;
          keywords =
            Option.map (List.map S.as_atom) (S.find_field_opt fields "keywords") }
    | "start-goal", [ e ] -> Start_goal (S.as_atom e)
    | "start-data", [ iid ] -> Start_data (S.as_int iid)
    | "expand", [ nid ] -> Expand (S.as_int nid)
    | "specialize", [ nid; sub ] -> Specialize (S.as_int nid, S.as_atom sub)
    | "select", [ nid; iids ] ->
      Select (S.as_int nid, List.map S.as_int (S.as_list iids))
    | "node-browse", [ nid; f ] -> Node_browse (S.as_int nid, filter_of_sexp f)
    | "run", [ nid ] -> Run (S.as_int nid)
    | "recall", [ iid ] -> Recall (S.as_int iid)
    | "trace", [ iid ] -> Trace (S.as_int iid)
    | "uses", [ iid ] -> Uses (S.as_int iid)
    | "refresh", [ iid ] -> Refresh (S.as_int iid)
    | "save-flow", [ n ] -> Save_flow (S.as_atom n)
    | "load-flow", [ n ] -> Load_flow (S.as_atom n)
    | "subscribe", [ seq ] -> Subscribe (S.as_int seq)
    | "repl-ack", [ seq ] -> Repl_ack (S.as_int seq)
    | "sync-frames", [ after; limit ] ->
      Sync_frames { after = S.as_int after; limit = S.as_int limit }
    | "sync-ack", origin :: upto :: frames ->
      Sync_ack
        { origin = S.as_atom origin; upto = S.as_int upto;
          frames =
            List.map
              (fun s ->
                match S.as_list s with
                | [ seq; digest; payload ] ->
                  (S.as_int seq, S.as_atom digest, S.as_atom payload)
                | _ -> wire_errorf "malformed sync frame")
              frames }
    | "resolve", [ conflict; winner ] ->
      Resolve { conflict = S.as_int conflict; winner = S.as_int winner }
    | "batch", reqs -> Batch (List.map request_of_sexp reqs)
    | _ -> wire_errorf "unknown request %S" name)
  | _ -> wire_errorf "malformed request"

let request_name = function
  | Hello _ -> "hello"
  | Ping -> "ping"
  | Stat -> "stat"
  | Catalog _ -> "catalog"
  | Browse _ -> "browse"
  | Install _ -> "install"
  | Annotate _ -> "annotate"
  | Start_goal _ -> "start-goal"
  | Start_data _ -> "start-data"
  | Expand _ -> "expand"
  | Specialize _ -> "specialize"
  | Select _ -> "select"
  | Node_browse _ -> "node-browse"
  | Leaves -> "leaves"
  | Run _ -> "run"
  | Render -> "render"
  | Recall _ -> "recall"
  | Trace _ -> "trace"
  | Uses _ -> "uses"
  | Refresh _ -> "refresh"
  | Save_flow _ -> "save-flow"
  | Load_flow _ -> "load-flow"
  | Shutdown -> "shutdown"
  | Subscribe _ -> "subscribe"
  | Repl_ack _ -> "repl-ack"
  | Lag -> "lag"
  | Compact -> "compact"
  | Metrics -> "metrics"
  | Sync_digest -> "sync-digest"
  | Sync_frames _ -> "sync-frames"
  | Sync_ack _ -> "sync-ack"
  | Conflicts -> "conflicts"
  | Resolve _ -> "resolve"
  | Snapshot_export -> "snapshot-export"
  | Batch _ -> "batch"

(* Mutations of the shared store/history/clock go through the
   single-writer loop; everything else (including task-window editing,
   which touches only the per-connection session) is a read.  Compact
   counts as a mutation (it rewrites the journal's snapshot); Subscribe
   and Repl_ack never reach the evaluator — the server's connection
   loop handles replication mode itself.  A batch is a mutation iff
   any member is: the whole pipeline then runs as one writer job, so
   its writes group-commit together. *)
let rec is_mutation = function
  | Install _ | Annotate _ | Run _ | Recall _ | Refresh _ | Compact -> true
  (* the digest and frame pulls are reads of the wal FILE, which only
     the writer loop may touch (like [Subscribe]'s backlog read) — so
     they ride the writer too, not just the actual sync mutations *)
  | Sync_digest | Sync_frames _ | Sync_ack _ | Resolve _ -> true
  | Batch reqs -> List.exists is_mutation reqs
  (* Snapshot_export never reaches the evaluator either — the
     connection loop streams it itself (its compact runs as a writer
     job inside that handler) *)
  | Hello _ | Ping | Stat | Catalog _ | Browse _ | Start_goal _ | Start_data _
  | Expand _ | Specialize _ | Select _ | Node_browse _ | Leaves | Render
  | Trace _ | Uses _ | Save_flow _ | Load_flow _ | Shutdown | Subscribe _
  | Repl_ack _ | Lag | Metrics | Conflicts | Snapshot_export ->
    false

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(* Metrics ride the wire as one tagged form per metric: (c <name>
   <count>), (g <name> <value>), (h <name> <n> <sum> <min> <max> <p50>
   <p90> <p99>).  [S.float] prints hex floats, so values round-trip
   exactly. *)
module M = Ddf_obs.Metrics

let metric_to_sexp = function
  | M.Counter (n, v) -> S.list [ S.atom "c"; S.atom n; S.int v ]
  | M.Gauge (n, v) -> S.list [ S.atom "g"; S.atom n; S.float v ]
  | M.Histogram (n, h) ->
    S.list
      [ S.atom "h"; S.atom n; S.int h.M.hs_n; S.float h.M.hs_sum;
        S.float h.M.hs_min; S.float h.M.hs_max; S.float h.M.hs_p50;
        S.float h.M.hs_p90; S.float h.M.hs_p99 ]

let metric_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "c"; n; v ] -> M.Counter (S.as_atom n, S.as_int v)
  | [ S.Atom "g"; n; v ] -> M.Gauge (S.as_atom n, S.as_float v)
  | [ S.Atom "h"; n; cnt; sum; mn; mx; p50; p90; p99 ] ->
    M.Histogram
      ( S.as_atom n,
        { M.hs_n = S.as_int cnt; hs_sum = S.as_float sum;
          hs_min = S.as_float mn; hs_max = S.as_float mx;
          hs_p50 = S.as_float p50; hs_p90 = S.as_float p90;
          hs_p99 = S.as_float p99 } )
  | _ -> wire_errorf "malformed metric"

let row_to_sexp r =
  S.list [ S.int r.row_iid; S.atom r.row_entity; W.meta_to_sexp r.row_meta ]

let row_of_sexp sexp =
  match S.as_list sexp with
  | [ iid; entity; meta ] ->
    { row_iid = S.as_int iid; row_entity = S.as_atom entity;
      row_meta =
        (try W.meta_of_sexp meta
         with W.Persist_error m -> wire_errorf "row meta: %s" m) }
  | _ -> wire_errorf "malformed instance row"

let rec response_to_sexp = function
  | Ok_unit -> S.atom "ok"
  | Ok_int n -> S.field "ok-int" [ S.int n ]
  | Ok_ints ns -> S.field "ok-ints" (List.map S.int ns)
  | Ok_atoms l -> S.field "ok-atoms" (List.map S.atom l)
  | Ok_text t -> S.field "ok-text" [ S.atom t ]
  | Ok_nodes l ->
    S.field "ok-nodes"
      (List.map (fun (nid, e) -> S.list [ S.int nid; S.atom e ]) l)
  | Ok_rows rows -> S.field "ok-rows" (List.map row_to_sexp rows)
  | Ok_stat st ->
    S.field "ok-stat"
      [ S.atom st.st_role; S.int st.st_seq; S.int st.st_clock;
        S.int st.st_instances; S.int st.st_records; S.int st.st_store_tick;
        S.int st.st_history_tick; S.float st.st_uptime_s ]
  | Ok_refresh { fresh; reran; reused } ->
    S.field "ok-refresh" [ S.int fresh; S.int reran; S.int reused ]
  | Ok_snapshot { seq; data } ->
    S.field "ok-snapshot" [ S.int seq; S.atom data ]
  | Ok_snapshot_begin { seq; bytes } ->
    S.field "ok-snapshot-begin" [ S.int seq; S.int bytes ]
  | Ok_snapshot_chunk { data } -> S.field "ok-snapshot-chunk" [ S.atom data ]
  | Ok_snapshot_end { digest } -> S.field "ok-snapshot-end" [ S.atom digest ]
  | Ok_frame { seq; payload; digest } ->
    S.field "ok-frame" [ S.int seq; S.atom digest; S.atom payload ]
  | Ok_lags { primary_seq; rows } ->
    S.field "ok-lags"
      (S.int primary_seq
      :: List.map
           (fun r ->
             S.list
               [ S.atom r.lag_follower; S.int r.lag_acked; S.int r.lag_sent ])
           rows)
  | Ok_metrics ms -> S.field "ok-metrics" (List.map metric_to_sexp ms)
  | Ok_digest { wsid; base; seq; fingerprint; cursors; entries } ->
    S.field "ok-digest"
      [ S.atom wsid; S.int base; S.int seq; S.atom fingerprint;
        S.list
          (List.map (fun (o, n) -> S.list [ S.atom o; S.int n ]) cursors);
        S.list
          (List.map (fun (s, d) -> S.list [ S.int s; S.atom d ]) entries) ]
  | Ok_frames frames ->
    S.field "ok-frames"
      (List.map
         (fun (seq, digest, payload) ->
           S.list [ S.int seq; S.atom digest; S.atom payload ])
         frames)
  | Ok_sync { sy_applied; sy_skipped; sy_conflicts; sy_cursor } ->
    S.field "ok-sync"
      [ S.int sy_applied; S.int sy_skipped; S.int sy_conflicts;
        S.int sy_cursor ]
  | Ok_conflicts rows ->
    S.field "ok-conflicts"
      (List.map
         (fun c ->
           S.list
             [ S.int c.cf_id; S.int c.cf_base; S.int c.cf_ours;
               S.int c.cf_theirs; S.atom c.cf_origin; S.int c.cf_at;
               (match c.cf_winner with None -> S.atom "-" | Some w -> S.int w) ])
         rows)
  | Ok_batch resps -> S.field "ok-batch" (List.map response_to_sexp resps)
  | Error e ->
    S.field "error"
      (S.atom (E.code_to_string e.E.code)
       :: S.atom e.E.message
       :: S.atom (if e.E.retryable then "retryable" else "final")
       :: ((match e.E.retry_after with
           | Some after -> [ S.field "retry-after" [ S.float after ] ]
           | None -> [])
          @
          match e.E.context with
          | [] -> []
          | ctx ->
            [ S.field "ctx"
                (List.map
                   (fun (k, v) -> S.list [ S.atom k; S.atom v ])
                   ctx) ]))

let rec response_of_sexp sexp =
  match sexp with
  | S.Atom "ok" -> Ok_unit
  | S.List (S.Atom name :: args) -> (
    match (name, args) with
    | "ok-int", [ n ] -> Ok_int (S.as_int n)
    | "ok-ints", ns -> Ok_ints (List.map S.as_int ns)
    | "ok-atoms", l -> Ok_atoms (List.map S.as_atom l)
    | "ok-text", [ t ] -> Ok_text (S.as_atom t)
    | "ok-nodes", l ->
      Ok_nodes
        (List.map
           (fun s ->
             match S.as_list s with
             | [ nid; e ] -> (S.as_int nid, S.as_atom e)
             | _ -> wire_errorf "malformed node")
           l)
    | "ok-rows", rows -> Ok_rows (List.map row_of_sexp rows)
    | "ok-stat", [ role; seq; c; i; r; sti; hti; up ] ->
      Ok_stat
        { st_role = S.as_atom role; st_seq = S.as_int seq;
          st_clock = S.as_int c; st_instances = S.as_int i;
          st_records = S.as_int r; st_store_tick = S.as_int sti;
          st_history_tick = S.as_int hti; st_uptime_s = S.as_float up }
    | "ok-refresh", [ f; re; ru ] ->
      Ok_refresh
        { fresh = S.as_int f; reran = S.as_int re; reused = S.as_int ru }
    | "ok-snapshot", [ seq; data ] ->
      Ok_snapshot { seq = S.as_int seq; data = S.as_atom data }
    | "ok-snapshot-begin", [ seq; bytes ] ->
      Ok_snapshot_begin { seq = S.as_int seq; bytes = S.as_int bytes }
    | "ok-snapshot-chunk", [ data ] ->
      Ok_snapshot_chunk { data = S.as_atom data }
    | "ok-snapshot-end", [ digest ] ->
      Ok_snapshot_end { digest = S.as_atom digest }
    | "ok-frame", [ seq; digest; payload ] ->
      Ok_frame
        { seq = S.as_int seq; digest = S.as_atom digest;
          payload = S.as_atom payload }
    | "ok-lags", primary_seq :: rows ->
      Ok_lags
        { primary_seq = S.as_int primary_seq;
          rows =
            List.map
              (fun s ->
                match S.as_list s with
                | [ f; a; l ] ->
                  { lag_follower = S.as_atom f; lag_acked = S.as_int a;
                    lag_sent = S.as_int l }
                | _ -> wire_errorf "malformed lag row")
              rows }
    | "ok-metrics", ms -> Ok_metrics (List.map metric_of_sexp ms)
    | "ok-digest", [ wsid; base; seq; fp; cursors; entries ] ->
      Ok_digest
        { wsid = S.as_atom wsid; base = S.as_int base; seq = S.as_int seq;
          fingerprint = S.as_atom fp;
          cursors =
            List.map
              (fun s ->
                match S.as_list s with
                | [ o; n ] -> (S.as_atom o, S.as_int n)
                | _ -> wire_errorf "malformed cursor")
              (S.as_list cursors);
          entries =
            List.map
              (fun s ->
                match S.as_list s with
                | [ seq; d ] -> (S.as_int seq, S.as_atom d)
                | _ -> wire_errorf "malformed digest entry")
              (S.as_list entries) }
    | "ok-frames", frames ->
      Ok_frames
        (List.map
           (fun s ->
             match S.as_list s with
             | [ seq; digest; payload ] ->
               (S.as_int seq, S.as_atom digest, S.as_atom payload)
             | _ -> wire_errorf "malformed sync frame")
           frames)
    | "ok-sync", [ a; s; c; cur ] ->
      Ok_sync
        { sy_applied = S.as_int a; sy_skipped = S.as_int s;
          sy_conflicts = S.as_int c; sy_cursor = S.as_int cur }
    | "ok-conflicts", rows ->
      Ok_conflicts
        (List.map
           (fun s ->
             match S.as_list s with
             | [ id; base; ours; theirs; origin; at; winner ] ->
               { cf_id = S.as_int id; cf_base = S.as_int base;
                 cf_ours = S.as_int ours; cf_theirs = S.as_int theirs;
                 cf_origin = S.as_atom origin; cf_at = S.as_int at;
                 cf_winner =
                   (match winner with
                   | S.Atom "-" -> None
                   | w -> Some (S.as_int w)) }
             | _ -> wire_errorf "malformed conflict row")
           rows)
    | "ok-batch", resps -> Ok_batch (List.map response_of_sexp resps)
    (* bare (error <msg>) is the pre-v4 dialect: unclassified, final *)
    | "error", [ m ] -> Error (E.make ~retryable:false `Internal (S.as_atom m))
    | "error", code :: msg :: flag :: rest ->
      let code =
        match E.code_of_string (S.as_atom code) with
        | Some c -> c
        | None -> `Internal (* a code minted by a newer peer *)
      in
      let retryable =
        match S.as_atom flag with
        | "retryable" -> true
        | "final" -> false
        | other -> wire_errorf "bad retry flag %S" other
      in
      let retry_after =
        Option.map
          (fun items -> S.as_float (S.one "retry-after" items))
          (S.find_field_opt rest "retry-after")
      in
      let context =
        match S.find_field_opt rest "ctx" with
        | None -> []
        | Some items ->
          List.map
            (fun s ->
              match S.as_list s with
              | [ k; v ] -> (S.as_atom k, S.as_atom v)
              | _ -> wire_errorf "malformed error context")
            items
      in
      Error (E.make ~context ~retryable ?retry_after code (S.as_atom msg))
    | _ -> wire_errorf "unknown response %S" name)
  | _ -> wire_errorf "malformed response"

(* ------------------------------------------------------------------ *)
(* Framed socket I/O                                                   *)
(* ------------------------------------------------------------------ *)

let max_frame = 64 * 1024 * 1024

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | 0 -> wire_errorf "peer closed the connection mid-write"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
        wire_errorf "peer closed the connection"
  in
  go 0

let send ?deadline_ms ?trace fd sexp =
  let payload = S.to_string sexp in
  let header =
    Printf.sprintf "ddf1 %d%s%s\n" (String.length payload)
      (match deadline_ms with
      | None -> ""
      | Some ms -> Printf.sprintf " %d" ms)
      (match trace with
      | None -> ""
      | Some ctx -> " " ^ Ddf_obs.Obs.span_ctx_to_token ctx)
  in
  let msg = header ^ payload ^ "\n" in
  match Fault.check "wire.send" with
  | Some (Fault.Torn k) ->
    (* the sender dies mid-frame: the peer sees a truncated message *)
    (try write_all fd (Bytes.of_string (String.sub msg 0 (min k (String.length msg))))
     with Wire_error _ -> ());
    raise (Fault.Injected "wire.send")
  | Some Fault.Fail -> raise (Fault.Injected "wire.send")
  | Some (Fault.Delay _) | None -> write_all fd (Bytes.of_string msg)

(* Read exactly [n] bytes; [None] when the stream ends cleanly at a
   message boundary (off = 0). *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then None else wire_errorf "truncated frame"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        if off = 0 then None else wire_errorf "connection reset mid-frame"
  in
  go 0

let read_header_line fd =
  let buf = Buffer.create 24 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else wire_errorf "truncated header"
    | _ ->
      if Bytes.get byte 0 = '\n' then Some (Buffer.contents buf)
      else begin
        if Buffer.length buf > 64 then wire_errorf "oversized frame header";
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
  in
  go ()

type frame_meta = {
  fm_deadline_ms : int option;
  fm_trace : Ddf_obs.Obs.span_ctx option;
}

(* Header tokens after the length are recognised by shape — digits are
   a deadline budget, "t=..." a trace context — so either, both (in
   that order) or neither may appear and old peers stay parseable. *)
let recv_meta fd =
  match read_header_line fd with
  | None -> None
  | Some header -> (
    match String.split_on_char ' ' header with
    | "ddf1" :: len :: rest -> (
      let len =
        match int_of_string_opt len with
        | Some n when n >= 0 && n <= max_frame -> n
        | Some _ | None -> wire_errorf "bad frame length %S" len
      in
      let meta =
        List.fold_left
          (fun meta tok ->
            if String.length tok >= 2 && String.sub tok 0 2 = "t=" then
              match Ddf_obs.Obs.span_ctx_of_token tok with
              | Some ctx -> { meta with fm_trace = Some ctx }
              | None -> wire_errorf "bad trace token %S" tok
            else
              match int_of_string_opt tok with
              | Some n when n >= 0 -> { meta with fm_deadline_ms = Some n }
              | Some _ | None -> wire_errorf "bad frame header %S" header)
          { fm_deadline_ms = None; fm_trace = None }
          rest
      in
      match read_exact fd (len + 1) with
      | None -> wire_errorf "truncated frame"
      | Some bytes ->
        if Bytes.get bytes len <> '\n' then wire_errorf "missing frame terminator";
        let payload = Bytes.sub_string bytes 0 len in
        (try Some (S.of_string payload, meta)
         with S.Sexp_error m -> wire_errorf "payload: %s" m))
    | _ -> wire_errorf "bad frame header %S" header)

let recv_deadline fd =
  Option.map (fun (sexp, meta) -> (sexp, meta.fm_deadline_ms)) (recv_meta fd)

let recv fd = Option.map fst (recv_meta fd)
