(* The Hercules design-server wire protocol: framed s-expressions over
   a stream socket.

   Framing is a fixed header line ("ddf1 <len>") followed by exactly
   <len> payload bytes and a newline, so either side reads one message
   with two exact reads and malformed peers are detected immediately.
   The payload grammar reuses the persistence codecs (Workspace_file
   meta form, Codec value form) so the network speaks the same dialect
   as the disk. *)

open Ddf_store
module S = Ddf_persist.Sexp
module W = Ddf_persist.Workspace_file
module E = Ddf_core.Error
module Fault = Ddf_fault.Fault

exception Wire_error of string

let wire_errorf fmt = Format.kasprintf (fun s -> raise (Wire_error s)) fmt

type iid = Store.iid

(* Version 1: the PR-2 request/response surface, (hello <user>).
   Version 2: hello carries (version N), replication (subscribe /
   repl-ack / lag / compact) and the role/seq stat fields.
   Version 3: (batch <req>...) pipelining — one frame carrying a
   sequence of requests, answered by one (ok-batch <resp>...).
   Version 4: structured error frames (error <code> <msg> <retry>
   ...) and an optional per-request deadline budget in the frame
   header.  A v4 side still parses the bare v3 (error <msg>) form.
   Version 5: the (metrics) verb answered by (ok-metrics ...), and an
   optional trace-context header token (t=<trace>.<span>).  Both ride
   in slots a v4 peer never sends, so a v5 server accepts v4 clients
   — the handshake takes any version in
   [min_protocol_version, protocol_version].
   Version 6: anti-entropy sync verbs — (sync-digest) answered by
   (ok-digest ...), (sync-frames <after> <limit>) / (ok-frames ...),
   (sync-ack <origin> <upto> <frame>...) / (ok-sync ...) — plus the
   conflict surface (conflicts) / (ok-conflicts ...) and (resolve
   <id> <winner>).  All live in slots a v4/v5 peer never sends, so
   the handshake window stays [4, 6] and older clients interoperate
   unchanged.
   Version 7: chunked streaming snapshots.  (snapshot-export) asks the
   server to compact and stream its on-disk snapshot back as
   (ok-snapshot-begin <seq> <bytes>), a run of (ok-snapshot-chunk
   <data>) frames and a final (ok-snapshot-end <md5>); a v7 subscriber
   whose cursor predates the primary's base is resynced with the same
   begin/chunk/end run (followed by wal frames) instead of one
   monolithic (ok-snapshot ...), so neither side ever holds the whole
   state as a single string.  Negotiated via hello: a v6-or-below
   subscriber still gets the monolithic form, and (snapshot-export)
   from such a peer is refused.
   Version 8: the length-prefixed binary codec.  No new verbs — the
   same request/response surface rides binary frames (tag byte,
   fixed-width little-endian ints, length-delimited strings; journal
   payloads and snapshot chunks as opaque byte slices that are never
   escaped through an s-expression).  Negotiation stays inside the
   hello handshake: the hello itself and its reply up to acceptance
   travel as framed s-expressions, and once a v8 hello is accepted
   every later frame in both directions is binary.  Receivers always
   dispatch on the first frame byte (0xD8 = binary, 'd' of "ddf1" =
   sexp), so a v≤7 peer — or a v8 client forced down with --wire sexp,
   which simply negotiates v7 — interoperates unchanged. *)
let protocol_version = 8
let min_protocol_version = 4

(* The two on-wire codecs.  Which one a connection speaks is a pure
   function of the negotiated hello version, re-derived per connection
   (a redial always restarts from [Sexp] until its own hello lands). *)
type codec = Sexp | Binary

let codec_name = function Sexp -> "sexp" | Binary -> "binary"
let codec_for_version v = if v >= 8 then Binary else Sexp

(* Streamed snapshots travel in bounded chunks: big enough to amortise
   framing, small enough that neither peer ever buffers more than a few
   of them. *)
let snapshot_chunk_bytes = 256 * 1024

type catalog = Entities | Tools | Flows

type request =
  | Hello of { user : string; version : int }
  | Ping
  | Stat
  | Catalog of catalog
  | Browse of Store.filter
  | Install of {
      entity : string;
      label : string;
      keywords : string list;
      value : S.t;
    }
  | Annotate of {
      iid : iid;
      label : string option;
      comment : string option;
      keywords : string list option;
    }
  | Start_goal of string
  | Start_data of iid
  | Expand of int
  | Specialize of int * string
  | Select of int * iid list
  | Node_browse of int * Store.filter
  | Leaves
  | Run of int
  | Render
  | Recall of iid
  | Trace of iid
  | Uses of iid
  | Refresh of iid
  | Save_flow of string
  | Load_flow of string
  | Shutdown
  | Subscribe of int
  | Repl_ack of int
  | Lag
  | Compact
  | Metrics
  | Sync_digest
      (** the peer's journal digest, peer cursors and state
          fingerprint — the anti-entropy handshake *)
  | Sync_frames of { after : int; limit : int }
      (** pull at most [limit] wal frames with seqno > [after] *)
  | Sync_ack of { origin : string; upto : int; frames : (int * string * string) list }
      (** deliver a batch of [origin]'s frames [(seqno, md5, payload)]
          for application and advance the origin cursor to [upto]; an
          empty batch just acknowledges *)
  | Conflicts
  | Resolve of { conflict : int; winner : iid }
  | Snapshot_export
      (** compact, then stream the on-disk snapshot back as
          begin/chunk/end frames — the bounded-memory bootstrap verb
          (v7; handled at connection level like [Subscribe]) *)
  | Batch of request list
      (** A pipeline: the requests are executed in order and answered
          positionally by one [Ok_batch], one frame each way.  An inner
          failure yields an [Error] at its position; execution
          continues (the journal has no rollback).  Batches do not
          nest. *)

type stat = {
  st_role : string;
  st_seq : int;
  st_clock : int;
  st_instances : int;
  st_records : int;
  st_store_tick : int;
  st_history_tick : int;
  st_uptime_s : float;
}

type instance_row = {
  row_iid : iid;
  row_entity : string;
  row_meta : Store.meta;
}

type lag_row = {
  lag_follower : string;
  lag_acked : int;
  lag_sent : int;
}

type conflict_row = {
  cf_id : int;
  cf_base : iid;
  cf_ours : iid;
  cf_theirs : iid;
  cf_origin : string;
  cf_at : int;
  cf_winner : iid option;
}

type sync_stats = {
  sy_applied : int;   (** frames whose effects were new here *)
  sy_skipped : int;   (** frames deduplicated as already present *)
  sy_conflicts : int; (** divergences registered while applying *)
  sy_cursor : int;    (** origin seqno applied through, persisted *)
}

type response =
  | Ok_unit
  | Ok_int of int
  | Ok_ints of int list
  | Ok_atoms of string list
  | Ok_text of string
  | Ok_nodes of (int * string) list
  | Ok_rows of instance_row list
  | Ok_stat of stat
  | Ok_refresh of { fresh : iid; reran : int; reused : int }
  | Ok_snapshot of { seq : int; data : string }
  | Ok_snapshot_begin of { seq : int; bytes : int }
      (** a streamed snapshot follows: [bytes] of workspace save taken
          at [seq], in {!snapshot_chunk_bytes}-bounded chunks *)
  | Ok_snapshot_chunk of { data : string }
  | Ok_snapshot_end of { digest : string }
      (** md5 hex over the whole reassembled snapshot *)
  | Ok_frame of { seq : int; payload : string; digest : string }
  | Ok_lags of { primary_seq : int; rows : lag_row list }
  | Ok_metrics of Ddf_obs.Metrics.metric list
  | Ok_digest of {
      wsid : string;
      base : int;
      seq : int;
      fingerprint : string;
          (** canonical identity-independent state digest: equal
              fingerprints mean converged stores/histories *)
      cursors : (string * int) list;  (** origin wsid -> applied seqno *)
      entries : (int * string) list;  (** seqno -> frame md5, ascending *)
    }
  | Ok_frames of (int * string * string) list  (** (seqno, md5, payload) *)
  | Ok_sync of sync_stats
  | Ok_conflicts of conflict_row list
  | Ok_batch of response list
  | Error of E.t

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

(* Optional filter fields are present-or-absent fields of one
   (filter ...) form. *)
let filter_to_sexp (f : Store.filter) =
  let fields = ref [] in
  let add name items = fields := S.field name items :: !fields in
  Option.iter (fun es -> add "entities" (List.map S.atom es)) f.Store.f_entities;
  Option.iter (fun u -> add "user" [ S.atom u ]) f.Store.f_user;
  Option.iter (fun t -> add "from" [ S.int t ]) f.Store.f_from;
  Option.iter (fun t -> add "to" [ S.int t ]) f.Store.f_to;
  if f.Store.f_keywords <> [] then
    add "keywords" (List.map S.atom f.Store.f_keywords);
  Option.iter (fun t -> add "text" [ S.atom t ]) f.Store.f_text;
  S.field "filter" (List.rev !fields)

let filter_of_sexp sexp =
  match S.as_list sexp with
  | S.Atom "filter" :: fields ->
    let opt name f =
      Option.map (fun items -> f (S.one name items))
        (S.find_field_opt fields name)
    in
    {
      Store.f_entities =
        Option.map (List.map S.as_atom) (S.find_field_opt fields "entities");
      f_user = opt "user" S.as_atom;
      f_from = opt "from" S.as_int;
      f_to = opt "to" S.as_int;
      f_keywords =
        (match S.find_field_opt fields "keywords" with
        | Some ks -> List.map S.as_atom ks
        | None -> []);
      f_text = opt "text" S.as_atom;
    }
  | _ -> wire_errorf "malformed filter"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let catalog_name = function
  | Entities -> "entities"
  | Tools -> "tools"
  | Flows -> "flows"

let rec request_to_sexp = function
  | Hello { user; version } ->
    S.field "hello" [ S.atom user; S.field "version" [ S.int version ] ]
  | Ping -> S.atom "ping"
  | Stat -> S.atom "stat"
  | Catalog c -> S.field "catalog" [ S.atom (catalog_name c) ]
  | Browse f -> S.field "browse" [ filter_to_sexp f ]
  | Install { entity; label; keywords; value } ->
    S.field "install"
      [ S.atom entity; S.atom label; S.list (List.map S.atom keywords); value ]
  | Annotate { iid; label; comment; keywords } ->
    let fields = ref [] in
    Option.iter (fun l -> fields := S.field "label" [ S.atom l ] :: !fields) label;
    Option.iter
      (fun c -> fields := S.field "comment" [ S.atom c ] :: !fields)
      comment;
    Option.iter
      (fun ks -> fields := S.field "keywords" (List.map S.atom ks) :: !fields)
      keywords;
    S.field "annotate" (S.int iid :: List.rev !fields)
  | Start_goal entity -> S.field "start-goal" [ S.atom entity ]
  | Start_data iid -> S.field "start-data" [ S.int iid ]
  | Expand nid -> S.field "expand" [ S.int nid ]
  | Specialize (nid, sub) -> S.field "specialize" [ S.int nid; S.atom sub ]
  | Select (nid, iids) ->
    S.field "select" [ S.int nid; S.list (List.map S.int iids) ]
  | Node_browse (nid, f) -> S.field "node-browse" [ S.int nid; filter_to_sexp f ]
  | Leaves -> S.atom "leaves"
  | Run nid -> S.field "run" [ S.int nid ]
  | Render -> S.atom "render"
  | Recall iid -> S.field "recall" [ S.int iid ]
  | Trace iid -> S.field "trace" [ S.int iid ]
  | Uses iid -> S.field "uses" [ S.int iid ]
  | Refresh iid -> S.field "refresh" [ S.int iid ]
  | Save_flow name -> S.field "save-flow" [ S.atom name ]
  | Load_flow name -> S.field "load-flow" [ S.atom name ]
  | Shutdown -> S.atom "shutdown"
  | Subscribe seq -> S.field "subscribe" [ S.int seq ]
  | Repl_ack seq -> S.field "repl-ack" [ S.int seq ]
  | Lag -> S.atom "lag"
  | Compact -> S.atom "compact"
  | Metrics -> S.atom "metrics"
  | Sync_digest -> S.atom "sync-digest"
  | Sync_frames { after; limit } ->
    S.field "sync-frames" [ S.int after; S.int limit ]
  | Sync_ack { origin; upto; frames } ->
    S.field "sync-ack"
      (S.atom origin :: S.int upto
      :: List.map
           (fun (seq, digest, payload) ->
             S.list [ S.int seq; S.atom digest; S.atom payload ])
           frames)
  | Conflicts -> S.atom "conflicts"
  | Resolve { conflict; winner } ->
    S.field "resolve" [ S.int conflict; S.int winner ]
  | Snapshot_export -> S.atom "snapshot-export"
  | Batch reqs -> S.field "batch" (List.map request_to_sexp reqs)

let rec request_of_sexp sexp =
  match sexp with
  | S.Atom "ping" -> Ping
  | S.Atom "stat" -> Stat
  | S.Atom "leaves" -> Leaves
  | S.Atom "render" -> Render
  | S.Atom "shutdown" -> Shutdown
  | S.Atom "lag" -> Lag
  | S.Atom "compact" -> Compact
  | S.Atom "metrics" -> Metrics
  | S.Atom "sync-digest" -> Sync_digest
  | S.Atom "conflicts" -> Conflicts
  | S.Atom "snapshot-export" -> Snapshot_export
  | S.List (S.Atom name :: args) -> (
    match (name, args) with
    (* a bare (hello <user>) is the version-1 dialect *)
    | "hello", [ user ] -> Hello { user = S.as_atom user; version = 1 }
    | "hello", [ user; S.List [ S.Atom "version"; v ] ] ->
      Hello { user = S.as_atom user; version = S.as_int v }
    | "catalog", [ S.Atom "entities" ] -> Catalog Entities
    | "catalog", [ S.Atom "tools" ] -> Catalog Tools
    | "catalog", [ S.Atom "flows" ] -> Catalog Flows
    | "browse", [ f ] -> Browse (filter_of_sexp f)
    | "install", [ entity; label; keywords; value ] ->
      Install
        { entity = S.as_atom entity; label = S.as_atom label;
          keywords = List.map S.as_atom (S.as_list keywords); value }
    | "annotate", iid :: fields ->
      let opt name f =
        Option.map (fun items -> f (S.one name items))
          (S.find_field_opt fields name)
      in
      Annotate
        { iid = S.as_int iid; label = opt "label" S.as_atom;
          comment = opt "comment" S.as_atom;
          keywords =
            Option.map (List.map S.as_atom) (S.find_field_opt fields "keywords") }
    | "start-goal", [ e ] -> Start_goal (S.as_atom e)
    | "start-data", [ iid ] -> Start_data (S.as_int iid)
    | "expand", [ nid ] -> Expand (S.as_int nid)
    | "specialize", [ nid; sub ] -> Specialize (S.as_int nid, S.as_atom sub)
    | "select", [ nid; iids ] ->
      Select (S.as_int nid, List.map S.as_int (S.as_list iids))
    | "node-browse", [ nid; f ] -> Node_browse (S.as_int nid, filter_of_sexp f)
    | "run", [ nid ] -> Run (S.as_int nid)
    | "recall", [ iid ] -> Recall (S.as_int iid)
    | "trace", [ iid ] -> Trace (S.as_int iid)
    | "uses", [ iid ] -> Uses (S.as_int iid)
    | "refresh", [ iid ] -> Refresh (S.as_int iid)
    | "save-flow", [ n ] -> Save_flow (S.as_atom n)
    | "load-flow", [ n ] -> Load_flow (S.as_atom n)
    | "subscribe", [ seq ] -> Subscribe (S.as_int seq)
    | "repl-ack", [ seq ] -> Repl_ack (S.as_int seq)
    | "sync-frames", [ after; limit ] ->
      Sync_frames { after = S.as_int after; limit = S.as_int limit }
    | "sync-ack", origin :: upto :: frames ->
      Sync_ack
        { origin = S.as_atom origin; upto = S.as_int upto;
          frames =
            List.map
              (fun s ->
                match S.as_list s with
                | [ seq; digest; payload ] ->
                  (S.as_int seq, S.as_atom digest, S.as_atom payload)
                | _ -> wire_errorf "malformed sync frame")
              frames }
    | "resolve", [ conflict; winner ] ->
      Resolve { conflict = S.as_int conflict; winner = S.as_int winner }
    | "batch", reqs -> Batch (List.map request_of_sexp reqs)
    | _ -> wire_errorf "unknown request %S" name)
  | _ -> wire_errorf "malformed request"

let request_name = function
  | Hello _ -> "hello"
  | Ping -> "ping"
  | Stat -> "stat"
  | Catalog _ -> "catalog"
  | Browse _ -> "browse"
  | Install _ -> "install"
  | Annotate _ -> "annotate"
  | Start_goal _ -> "start-goal"
  | Start_data _ -> "start-data"
  | Expand _ -> "expand"
  | Specialize _ -> "specialize"
  | Select _ -> "select"
  | Node_browse _ -> "node-browse"
  | Leaves -> "leaves"
  | Run _ -> "run"
  | Render -> "render"
  | Recall _ -> "recall"
  | Trace _ -> "trace"
  | Uses _ -> "uses"
  | Refresh _ -> "refresh"
  | Save_flow _ -> "save-flow"
  | Load_flow _ -> "load-flow"
  | Shutdown -> "shutdown"
  | Subscribe _ -> "subscribe"
  | Repl_ack _ -> "repl-ack"
  | Lag -> "lag"
  | Compact -> "compact"
  | Metrics -> "metrics"
  | Sync_digest -> "sync-digest"
  | Sync_frames _ -> "sync-frames"
  | Sync_ack _ -> "sync-ack"
  | Conflicts -> "conflicts"
  | Resolve _ -> "resolve"
  | Snapshot_export -> "snapshot-export"
  | Batch _ -> "batch"

(* Mutations of the shared store/history/clock go through the
   single-writer loop; everything else (including task-window editing,
   which touches only the per-connection session) is a read.  Compact
   counts as a mutation (it rewrites the journal's snapshot); Subscribe
   and Repl_ack never reach the evaluator — the server's connection
   loop handles replication mode itself.  A batch is a mutation iff
   any member is: the whole pipeline then runs as one writer job, so
   its writes group-commit together. *)
let rec is_mutation = function
  | Install _ | Annotate _ | Run _ | Recall _ | Refresh _ | Compact -> true
  (* the digest and frame pulls are reads of the wal FILE, which only
     the writer loop may touch (like [Subscribe]'s backlog read) — so
     they ride the writer too, not just the actual sync mutations *)
  | Sync_digest | Sync_frames _ | Sync_ack _ | Resolve _ -> true
  | Batch reqs -> List.exists is_mutation reqs
  (* Snapshot_export never reaches the evaluator either — the
     connection loop streams it itself (its compact runs as a writer
     job inside that handler) *)
  | Hello _ | Ping | Stat | Catalog _ | Browse _ | Start_goal _ | Start_data _
  | Expand _ | Specialize _ | Select _ | Node_browse _ | Leaves | Render
  | Trace _ | Uses _ | Save_flow _ | Load_flow _ | Shutdown | Subscribe _
  | Repl_ack _ | Lag | Metrics | Conflicts | Snapshot_export ->
    false

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(* Metrics ride the wire as one tagged form per metric: (c <name>
   <count>), (g <name> <value>), (h <name> <n> <sum> <min> <max> <p50>
   <p90> <p99>).  [S.float] prints hex floats, so values round-trip
   exactly. *)
module M = Ddf_obs.Metrics

let metric_to_sexp = function
  | M.Counter (n, v) -> S.list [ S.atom "c"; S.atom n; S.int v ]
  | M.Gauge (n, v) -> S.list [ S.atom "g"; S.atom n; S.float v ]
  | M.Histogram (n, h) ->
    S.list
      [ S.atom "h"; S.atom n; S.int h.M.hs_n; S.float h.M.hs_sum;
        S.float h.M.hs_min; S.float h.M.hs_max; S.float h.M.hs_p50;
        S.float h.M.hs_p90; S.float h.M.hs_p99 ]

let metric_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "c"; n; v ] -> M.Counter (S.as_atom n, S.as_int v)
  | [ S.Atom "g"; n; v ] -> M.Gauge (S.as_atom n, S.as_float v)
  | [ S.Atom "h"; n; cnt; sum; mn; mx; p50; p90; p99 ] ->
    M.Histogram
      ( S.as_atom n,
        { M.hs_n = S.as_int cnt; hs_sum = S.as_float sum;
          hs_min = S.as_float mn; hs_max = S.as_float mx;
          hs_p50 = S.as_float p50; hs_p90 = S.as_float p90;
          hs_p99 = S.as_float p99 } )
  | _ -> wire_errorf "malformed metric"

let row_to_sexp r =
  S.list [ S.int r.row_iid; S.atom r.row_entity; W.meta_to_sexp r.row_meta ]

let row_of_sexp sexp =
  match S.as_list sexp with
  | [ iid; entity; meta ] ->
    { row_iid = S.as_int iid; row_entity = S.as_atom entity;
      row_meta =
        (try W.meta_of_sexp meta
         with W.Persist_error m -> wire_errorf "row meta: %s" m) }
  | _ -> wire_errorf "malformed instance row"

let rec response_to_sexp = function
  | Ok_unit -> S.atom "ok"
  | Ok_int n -> S.field "ok-int" [ S.int n ]
  | Ok_ints ns -> S.field "ok-ints" (List.map S.int ns)
  | Ok_atoms l -> S.field "ok-atoms" (List.map S.atom l)
  | Ok_text t -> S.field "ok-text" [ S.atom t ]
  | Ok_nodes l ->
    S.field "ok-nodes"
      (List.map (fun (nid, e) -> S.list [ S.int nid; S.atom e ]) l)
  | Ok_rows rows -> S.field "ok-rows" (List.map row_to_sexp rows)
  | Ok_stat st ->
    S.field "ok-stat"
      [ S.atom st.st_role; S.int st.st_seq; S.int st.st_clock;
        S.int st.st_instances; S.int st.st_records; S.int st.st_store_tick;
        S.int st.st_history_tick; S.float st.st_uptime_s ]
  | Ok_refresh { fresh; reran; reused } ->
    S.field "ok-refresh" [ S.int fresh; S.int reran; S.int reused ]
  | Ok_snapshot { seq; data } ->
    S.field "ok-snapshot" [ S.int seq; S.atom data ]
  | Ok_snapshot_begin { seq; bytes } ->
    S.field "ok-snapshot-begin" [ S.int seq; S.int bytes ]
  | Ok_snapshot_chunk { data } -> S.field "ok-snapshot-chunk" [ S.atom data ]
  | Ok_snapshot_end { digest } -> S.field "ok-snapshot-end" [ S.atom digest ]
  | Ok_frame { seq; payload; digest } ->
    S.field "ok-frame" [ S.int seq; S.atom digest; S.atom payload ]
  | Ok_lags { primary_seq; rows } ->
    S.field "ok-lags"
      (S.int primary_seq
      :: List.map
           (fun r ->
             S.list
               [ S.atom r.lag_follower; S.int r.lag_acked; S.int r.lag_sent ])
           rows)
  | Ok_metrics ms -> S.field "ok-metrics" (List.map metric_to_sexp ms)
  | Ok_digest { wsid; base; seq; fingerprint; cursors; entries } ->
    S.field "ok-digest"
      [ S.atom wsid; S.int base; S.int seq; S.atom fingerprint;
        S.list
          (List.map (fun (o, n) -> S.list [ S.atom o; S.int n ]) cursors);
        S.list
          (List.map (fun (s, d) -> S.list [ S.int s; S.atom d ]) entries) ]
  | Ok_frames frames ->
    S.field "ok-frames"
      (List.map
         (fun (seq, digest, payload) ->
           S.list [ S.int seq; S.atom digest; S.atom payload ])
         frames)
  | Ok_sync { sy_applied; sy_skipped; sy_conflicts; sy_cursor } ->
    S.field "ok-sync"
      [ S.int sy_applied; S.int sy_skipped; S.int sy_conflicts;
        S.int sy_cursor ]
  | Ok_conflicts rows ->
    S.field "ok-conflicts"
      (List.map
         (fun c ->
           S.list
             [ S.int c.cf_id; S.int c.cf_base; S.int c.cf_ours;
               S.int c.cf_theirs; S.atom c.cf_origin; S.int c.cf_at;
               (match c.cf_winner with None -> S.atom "-" | Some w -> S.int w) ])
         rows)
  | Ok_batch resps -> S.field "ok-batch" (List.map response_to_sexp resps)
  | Error e ->
    S.field "error"
      (S.atom (E.code_to_string e.E.code)
       :: S.atom e.E.message
       :: S.atom (if e.E.retryable then "retryable" else "final")
       :: ((match e.E.retry_after with
           | Some after -> [ S.field "retry-after" [ S.float after ] ]
           | None -> [])
          @
          match e.E.context with
          | [] -> []
          | ctx ->
            [ S.field "ctx"
                (List.map
                   (fun (k, v) -> S.list [ S.atom k; S.atom v ])
                   ctx) ]))

let rec response_of_sexp sexp =
  match sexp with
  | S.Atom "ok" -> Ok_unit
  | S.List (S.Atom name :: args) -> (
    match (name, args) with
    | "ok-int", [ n ] -> Ok_int (S.as_int n)
    | "ok-ints", ns -> Ok_ints (List.map S.as_int ns)
    | "ok-atoms", l -> Ok_atoms (List.map S.as_atom l)
    | "ok-text", [ t ] -> Ok_text (S.as_atom t)
    | "ok-nodes", l ->
      Ok_nodes
        (List.map
           (fun s ->
             match S.as_list s with
             | [ nid; e ] -> (S.as_int nid, S.as_atom e)
             | _ -> wire_errorf "malformed node")
           l)
    | "ok-rows", rows -> Ok_rows (List.map row_of_sexp rows)
    | "ok-stat", [ role; seq; c; i; r; sti; hti; up ] ->
      Ok_stat
        { st_role = S.as_atom role; st_seq = S.as_int seq;
          st_clock = S.as_int c; st_instances = S.as_int i;
          st_records = S.as_int r; st_store_tick = S.as_int sti;
          st_history_tick = S.as_int hti; st_uptime_s = S.as_float up }
    | "ok-refresh", [ f; re; ru ] ->
      Ok_refresh
        { fresh = S.as_int f; reran = S.as_int re; reused = S.as_int ru }
    | "ok-snapshot", [ seq; data ] ->
      Ok_snapshot { seq = S.as_int seq; data = S.as_atom data }
    | "ok-snapshot-begin", [ seq; bytes ] ->
      Ok_snapshot_begin { seq = S.as_int seq; bytes = S.as_int bytes }
    | "ok-snapshot-chunk", [ data ] ->
      Ok_snapshot_chunk { data = S.as_atom data }
    | "ok-snapshot-end", [ digest ] ->
      Ok_snapshot_end { digest = S.as_atom digest }
    | "ok-frame", [ seq; digest; payload ] ->
      Ok_frame
        { seq = S.as_int seq; digest = S.as_atom digest;
          payload = S.as_atom payload }
    | "ok-lags", primary_seq :: rows ->
      Ok_lags
        { primary_seq = S.as_int primary_seq;
          rows =
            List.map
              (fun s ->
                match S.as_list s with
                | [ f; a; l ] ->
                  { lag_follower = S.as_atom f; lag_acked = S.as_int a;
                    lag_sent = S.as_int l }
                | _ -> wire_errorf "malformed lag row")
              rows }
    | "ok-metrics", ms -> Ok_metrics (List.map metric_of_sexp ms)
    | "ok-digest", [ wsid; base; seq; fp; cursors; entries ] ->
      Ok_digest
        { wsid = S.as_atom wsid; base = S.as_int base; seq = S.as_int seq;
          fingerprint = S.as_atom fp;
          cursors =
            List.map
              (fun s ->
                match S.as_list s with
                | [ o; n ] -> (S.as_atom o, S.as_int n)
                | _ -> wire_errorf "malformed cursor")
              (S.as_list cursors);
          entries =
            List.map
              (fun s ->
                match S.as_list s with
                | [ seq; d ] -> (S.as_int seq, S.as_atom d)
                | _ -> wire_errorf "malformed digest entry")
              (S.as_list entries) }
    | "ok-frames", frames ->
      Ok_frames
        (List.map
           (fun s ->
             match S.as_list s with
             | [ seq; digest; payload ] ->
               (S.as_int seq, S.as_atom digest, S.as_atom payload)
             | _ -> wire_errorf "malformed sync frame")
           frames)
    | "ok-sync", [ a; s; c; cur ] ->
      Ok_sync
        { sy_applied = S.as_int a; sy_skipped = S.as_int s;
          sy_conflicts = S.as_int c; sy_cursor = S.as_int cur }
    | "ok-conflicts", rows ->
      Ok_conflicts
        (List.map
           (fun s ->
             match S.as_list s with
             | [ id; base; ours; theirs; origin; at; winner ] ->
               { cf_id = S.as_int id; cf_base = S.as_int base;
                 cf_ours = S.as_int ours; cf_theirs = S.as_int theirs;
                 cf_origin = S.as_atom origin; cf_at = S.as_int at;
                 cf_winner =
                   (match winner with
                   | S.Atom "-" -> None
                   | w -> Some (S.as_int w)) }
             | _ -> wire_errorf "malformed conflict row")
           rows)
    | "ok-batch", resps -> Ok_batch (List.map response_of_sexp resps)
    (* bare (error <msg>) is the pre-v4 dialect: unclassified, final *)
    | "error", [ m ] -> Error (E.make ~retryable:false `Internal (S.as_atom m))
    | "error", code :: msg :: flag :: rest ->
      let code =
        match E.code_of_string (S.as_atom code) with
        | Some c -> c
        | None -> `Internal (* a code minted by a newer peer *)
      in
      let retryable =
        match S.as_atom flag with
        | "retryable" -> true
        | "final" -> false
        | other -> wire_errorf "bad retry flag %S" other
      in
      let retry_after =
        Option.map
          (fun items -> S.as_float (S.one "retry-after" items))
          (S.find_field_opt rest "retry-after")
      in
      let context =
        match S.find_field_opt rest "ctx" with
        | None -> []
        | Some items ->
          List.map
            (fun s ->
              match S.as_list s with
              | [ k; v ] -> (S.as_atom k, S.as_atom v)
              | _ -> wire_errorf "malformed error context")
            items
      in
      Error (E.make ~context ~retryable ?retry_after code (S.as_atom msg))
    | _ -> wire_errorf "unknown response %S" name)
  | _ -> wire_errorf "malformed response"

(* ------------------------------------------------------------------ *)
(* The v8 binary codec                                                 *)
(* ------------------------------------------------------------------ *)

(* Wire traffic accounting, split by codec: encode/decode latency per
   frame and bytes moved each way.  Surfaced through the Metrics verb,
   `remote metrics` and `hercules top` like every other registry
   metric. *)
let m_bytes_out_sexp = M.counter "wire.sexp.bytes_out"
let m_bytes_in_sexp = M.counter "wire.sexp.bytes_in"
let m_bytes_out_bin = M.counter "wire.binary.bytes_out"
let m_bytes_in_bin = M.counter "wire.binary.bytes_in"
let h_encode_sexp = M.histogram "wire.sexp.encode_seconds"
let h_decode_sexp = M.histogram "wire.sexp.decode_seconds"
let h_encode_bin = M.histogram "wire.binary.encode_seconds"
let h_decode_bin = M.histogram "wire.binary.decode_seconds"

let bytes_out_counter = function
  | Sexp -> m_bytes_out_sexp
  | Binary -> m_bytes_out_bin

let bytes_in_counter = function
  | Sexp -> m_bytes_in_sexp
  | Binary -> m_bytes_in_bin

let encode_histogram = function
  | Sexp -> h_encode_sexp
  | Binary -> h_encode_bin

let decode_histogram = function
  | Sexp -> h_decode_sexp
  | Binary -> h_decode_bin

(* An iovec-style frame list: header buffers interleaved with borrowed
   payload slices.  [gather_write] flushes a whole list with one
   kernel write per socket-buffer fill (the C stub gathers outside the
   OCaml heap and writes with the runtime lock released), so a group
   of frames costs one syscall, not one per frame — and large payload
   bodies are never concatenated through an intermediate string on the
   OCaml side. *)
module Iovec = struct
  type slice = { io_base : string; io_off : int; io_len : int }

  external gather_write : Unix.file_descr -> slice array -> int -> int
    = "ddf_gather_write"

  let of_string s = { io_base = s; io_off = 0; io_len = String.length s }

  let total slices =
    List.fold_left (fun n s -> n + s.io_len) 0 slices

  let concat slices =
    let n = total slices in
    let b = Bytes.create n in
    let off = ref 0 in
    List.iter
      (fun s ->
        Bytes.blit_string s.io_base s.io_off b !off s.io_len;
        off := !off + s.io_len)
      slices;
    Bytes.unsafe_to_string b
end

(* Payload bodies at least this large travel as their own iovec slice
   (zero-copy on the OCaml side); smaller ones are cheaper to append
   to the scratch buffer than to carry as an extra slice. *)
let zero_copy_min = 512

module Enc = struct
  type t = {
    mutable slices : Iovec.slice list;  (* finalized, reversed *)
    buf : Buffer.t;                     (* scratch being filled *)
  }

  let create () = { slices = []; buf = Buffer.create 256 }

  let flush_buf e =
    if Buffer.length e.buf > 0 then begin
      e.slices <- Iovec.of_string (Buffer.contents e.buf) :: e.slices;
      Buffer.clear e.buf
    end

  let u8 e n = Buffer.add_char e.buf (Char.chr (n land 0xff))
  let u32 e n = Buffer.add_int32_le e.buf (Int32.of_int n)
  let int e n = Buffer.add_int64_le e.buf (Int64.of_int n)
  let float e f = Buffer.add_int64_le e.buf (Int64.bits_of_float f)
  let bool e b = u8 e (if b then 1 else 0)

  let str e s =
    u32 e (String.length s);
    Buffer.add_string e.buf s

  (* An opaque payload body: length-delimited raw bytes, borrowed as a
     slice when large — the codec never escapes or re-encodes them. *)
  let payload e s =
    u32 e (String.length s);
    if String.length s >= zero_copy_min then begin
      flush_buf e;
      e.slices <- Iovec.of_string s :: e.slices
    end
    else Buffer.add_string e.buf s

  let opt e f = function
    | None -> u8 e 0
    | Some v ->
      u8 e 1;
      f e v

  let list e f l =
    u32 e (List.length l);
    List.iter (f e) l

  let finish e =
    flush_buf e;
    List.rev e.slices
end

module Dec = struct
  type t = { db : string; mutable pos : int }

  let of_string s = { db = s; pos = 0 }

  let need d n =
    if d.pos + n > String.length d.db then
      wire_errorf "truncated binary frame body (at byte %d)" d.pos

  let u8 d =
    need d 1;
    let v = Char.code d.db.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u32 d =
    need d 4;
    let v = Int32.to_int (String.get_int32_le d.db d.pos) land 0xFFFFFFFF in
    d.pos <- d.pos + 4;
    v

  let int d =
    need d 8;
    let v = Int64.to_int (String.get_int64_le d.db d.pos) in
    d.pos <- d.pos + 8;
    v

  let float d =
    need d 8;
    let v = Int64.float_of_bits (String.get_int64_le d.db d.pos) in
    d.pos <- d.pos + 8;
    v

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | n -> wire_errorf "bad boolean byte %d" n

  let str d =
    let n = u32 d in
    need d n;
    let v = String.sub d.db d.pos n in
    d.pos <- d.pos + n;
    v

  let payload = str

  let opt d f =
    match u8 d with
    | 0 -> None
    | 1 -> Some (f d)
    | n -> wire_errorf "bad option byte %d" n

  let list d f =
    let n = u32 d in
    (* cheap sanity bound: every item costs at least one byte *)
    need d n;
    List.init n (fun _ -> f d)

  let finished d = d.pos = String.length d.db
end

(* --- binary forms of the shared sub-structures --- *)

let filter_to_bin e (f : Store.filter) =
  Enc.opt e (fun e -> Enc.list e Enc.str) f.Store.f_entities;
  Enc.opt e Enc.str f.Store.f_user;
  Enc.opt e Enc.int f.Store.f_from;
  Enc.opt e Enc.int f.Store.f_to;
  Enc.list e Enc.str f.Store.f_keywords;
  Enc.opt e Enc.str f.Store.f_text

let filter_of_bin d =
  let f_entities = Dec.opt d (fun d -> Dec.list d Dec.str) in
  let f_user = Dec.opt d Dec.str in
  let f_from = Dec.opt d Dec.int in
  let f_to = Dec.opt d Dec.int in
  let f_keywords = Dec.list d Dec.str in
  let f_text = Dec.opt d Dec.str in
  { Store.f_entities; f_user; f_from; f_to; f_keywords; f_text }

let meta_to_bin e (m : Store.meta) =
  Enc.str e m.Store.user;
  Enc.int e m.Store.created_at;
  Enc.str e m.Store.label;
  Enc.str e m.Store.comment;
  Enc.list e Enc.str m.Store.keywords

let meta_of_bin d =
  let user = Dec.str d in
  let created_at = Dec.int d in
  let label = Dec.str d in
  let comment = Dec.str d in
  let keywords = Dec.list d Dec.str in
  { Store.user; created_at; label; comment; keywords }

let sync_frame_to_bin e (seq, digest, payload) =
  Enc.int e seq;
  Enc.str e digest;
  Enc.payload e payload

let sync_frame_of_bin d =
  let seq = Dec.int d in
  let digest = Dec.str d in
  let payload = Dec.payload d in
  (seq, digest, payload)

let pair_to_bin fa fb e (a, b) =
  fa e a;
  fb e b

let pair_of_bin fa fb d =
  let a = fa d in
  let b = fb d in
  (a, b)

let error_to_bin e (err : E.t) =
  Enc.str e (E.code_to_string err.E.code);
  Enc.str e err.E.message;
  Enc.bool e err.E.retryable;
  Enc.opt e Enc.float err.E.retry_after;
  Enc.list e (pair_to_bin Enc.str Enc.str) err.E.context

let error_of_bin d =
  let code =
    match E.code_of_string (Dec.str d) with
    | Some c -> c
    | None -> `Internal (* a code minted by a newer peer *)
  in
  let message = Dec.str d in
  let retryable = Dec.bool d in
  let retry_after = Dec.opt d Dec.float in
  let context = Dec.list d (pair_of_bin Dec.str Dec.str) in
  E.make ~context ~retryable ?retry_after code message

let metric_to_bin e = function
  | M.Counter (n, v) ->
    Enc.u8 e 0;
    Enc.str e n;
    Enc.int e v
  | M.Gauge (n, v) ->
    Enc.u8 e 1;
    Enc.str e n;
    Enc.float e v
  | M.Histogram (n, h) ->
    Enc.u8 e 2;
    Enc.str e n;
    Enc.int e h.M.hs_n;
    Enc.float e h.M.hs_sum;
    Enc.float e h.M.hs_min;
    Enc.float e h.M.hs_max;
    Enc.float e h.M.hs_p50;
    Enc.float e h.M.hs_p90;
    Enc.float e h.M.hs_p99

let metric_of_bin d =
  match Dec.u8 d with
  | 0 ->
    let n = Dec.str d in
    let v = Dec.int d in
    M.Counter (n, v)
  | 1 ->
    let n = Dec.str d in
    let v = Dec.float d in
    M.Gauge (n, v)
  | 2 ->
    let n = Dec.str d in
    let hs_n = Dec.int d in
    let hs_sum = Dec.float d in
    let hs_min = Dec.float d in
    let hs_max = Dec.float d in
    let hs_p50 = Dec.float d in
    let hs_p90 = Dec.float d in
    let hs_p99 = Dec.float d in
    M.Histogram
      (n, { M.hs_n; hs_sum; hs_min; hs_max; hs_p50; hs_p90; hs_p99 })
  | t -> wire_errorf "unknown binary metric tag %d" t

let catalog_to_bin = function Entities -> 0 | Tools -> 1 | Flows -> 2

let catalog_of_bin = function
  | 0 -> Entities
  | 1 -> Tools
  | 2 -> Flows
  | t -> wire_errorf "unknown catalog tag %d" t

(* --- requests --- *)

(* Tag bytes are append-only protocol surface: never renumber. *)
let rec request_to_bin e = function
  | Hello { user; version } ->
    Enc.u8 e 1;
    Enc.str e user;
    Enc.int e version
  | Ping -> Enc.u8 e 2
  | Stat -> Enc.u8 e 3
  | Catalog c ->
    Enc.u8 e 4;
    Enc.u8 e (catalog_to_bin c)
  | Browse f ->
    Enc.u8 e 5;
    filter_to_bin e f
  | Install { entity; label; keywords; value } ->
    Enc.u8 e 6;
    Enc.str e entity;
    Enc.str e label;
    Enc.list e Enc.str keywords;
    (* the design-object value rides as one opaque body: printed once
       here, parsed once by the evaluator, never re-framed between *)
    Enc.payload e (S.to_string ~pretty:false value)
  | Annotate { iid; label; comment; keywords } ->
    Enc.u8 e 7;
    Enc.int e iid;
    Enc.opt e Enc.str label;
    Enc.opt e Enc.str comment;
    Enc.opt e (fun e -> Enc.list e Enc.str) keywords
  | Start_goal entity ->
    Enc.u8 e 8;
    Enc.str e entity
  | Start_data iid ->
    Enc.u8 e 9;
    Enc.int e iid
  | Expand nid ->
    Enc.u8 e 10;
    Enc.int e nid
  | Specialize (nid, sub) ->
    Enc.u8 e 11;
    Enc.int e nid;
    Enc.str e sub
  | Select (nid, iids) ->
    Enc.u8 e 12;
    Enc.int e nid;
    Enc.list e Enc.int iids
  | Node_browse (nid, f) ->
    Enc.u8 e 13;
    Enc.int e nid;
    filter_to_bin e f
  | Leaves -> Enc.u8 e 14
  | Run nid ->
    Enc.u8 e 15;
    Enc.int e nid
  | Render -> Enc.u8 e 16
  | Recall iid ->
    Enc.u8 e 17;
    Enc.int e iid
  | Trace iid ->
    Enc.u8 e 18;
    Enc.int e iid
  | Uses iid ->
    Enc.u8 e 19;
    Enc.int e iid
  | Refresh iid ->
    Enc.u8 e 20;
    Enc.int e iid
  | Save_flow name ->
    Enc.u8 e 21;
    Enc.str e name
  | Load_flow name ->
    Enc.u8 e 22;
    Enc.str e name
  | Shutdown -> Enc.u8 e 23
  | Subscribe seq ->
    Enc.u8 e 24;
    Enc.int e seq
  | Repl_ack seq ->
    Enc.u8 e 25;
    Enc.int e seq
  | Lag -> Enc.u8 e 26
  | Compact -> Enc.u8 e 27
  | Metrics -> Enc.u8 e 28
  | Sync_digest -> Enc.u8 e 29
  | Sync_frames { after; limit } ->
    Enc.u8 e 30;
    Enc.int e after;
    Enc.int e limit
  | Sync_ack { origin; upto; frames } ->
    Enc.u8 e 31;
    Enc.str e origin;
    Enc.int e upto;
    Enc.list e sync_frame_to_bin frames
  | Conflicts -> Enc.u8 e 32
  | Resolve { conflict; winner } ->
    Enc.u8 e 33;
    Enc.int e conflict;
    Enc.int e winner
  | Snapshot_export -> Enc.u8 e 34
  | Batch reqs ->
    Enc.u8 e 35;
    Enc.list e request_to_bin reqs

let rec request_of_bin d =
  match Dec.u8 d with
  | 1 ->
    let user = Dec.str d in
    let version = Dec.int d in
    Hello { user; version }
  | 2 -> Ping
  | 3 -> Stat
  | 4 -> Catalog (catalog_of_bin (Dec.u8 d))
  | 5 -> Browse (filter_of_bin d)
  | 6 ->
    let entity = Dec.str d in
    let label = Dec.str d in
    let keywords = Dec.list d Dec.str in
    let value =
      let body = Dec.payload d in
      try S.of_string body
      with S.Sexp_error m -> wire_errorf "install value: %s" m
    in
    Install { entity; label; keywords; value }
  | 7 ->
    let iid = Dec.int d in
    let label = Dec.opt d Dec.str in
    let comment = Dec.opt d Dec.str in
    let keywords = Dec.opt d (fun d -> Dec.list d Dec.str) in
    Annotate { iid; label; comment; keywords }
  | 8 -> Start_goal (Dec.str d)
  | 9 -> Start_data (Dec.int d)
  | 10 -> Expand (Dec.int d)
  | 11 ->
    let nid = Dec.int d in
    let sub = Dec.str d in
    Specialize (nid, sub)
  | 12 ->
    let nid = Dec.int d in
    let iids = Dec.list d Dec.int in
    Select (nid, iids)
  | 13 ->
    let nid = Dec.int d in
    let f = filter_of_bin d in
    Node_browse (nid, f)
  | 14 -> Leaves
  | 15 -> Run (Dec.int d)
  | 16 -> Render
  | 17 -> Recall (Dec.int d)
  | 18 -> Trace (Dec.int d)
  | 19 -> Uses (Dec.int d)
  | 20 -> Refresh (Dec.int d)
  | 21 -> Save_flow (Dec.str d)
  | 22 -> Load_flow (Dec.str d)
  | 23 -> Shutdown
  | 24 -> Subscribe (Dec.int d)
  | 25 -> Repl_ack (Dec.int d)
  | 26 -> Lag
  | 27 -> Compact
  | 28 -> Metrics
  | 29 -> Sync_digest
  | 30 ->
    let after = Dec.int d in
    let limit = Dec.int d in
    Sync_frames { after; limit }
  | 31 ->
    let origin = Dec.str d in
    let upto = Dec.int d in
    let frames = Dec.list d sync_frame_of_bin in
    Sync_ack { origin; upto; frames }
  | 32 -> Conflicts
  | 33 ->
    let conflict = Dec.int d in
    let winner = Dec.int d in
    Resolve { conflict; winner }
  | 34 -> Snapshot_export
  | 35 -> Batch (Dec.list d request_of_bin)
  | t -> wire_errorf "unknown binary request tag %d" t

(* --- responses --- *)

let rec response_to_bin e = function
  | Ok_unit -> Enc.u8 e 1
  | Ok_int n ->
    Enc.u8 e 2;
    Enc.int e n
  | Ok_ints ns ->
    Enc.u8 e 3;
    Enc.list e Enc.int ns
  | Ok_atoms l ->
    Enc.u8 e 4;
    Enc.list e Enc.str l
  | Ok_text t ->
    Enc.u8 e 5;
    Enc.payload e t
  | Ok_nodes l ->
    Enc.u8 e 6;
    Enc.list e (pair_to_bin Enc.int Enc.str) l
  | Ok_rows rows ->
    Enc.u8 e 7;
    Enc.list e
      (fun e r ->
        Enc.int e r.row_iid;
        Enc.str e r.row_entity;
        meta_to_bin e r.row_meta)
      rows
  | Ok_stat st ->
    Enc.u8 e 8;
    Enc.str e st.st_role;
    Enc.int e st.st_seq;
    Enc.int e st.st_clock;
    Enc.int e st.st_instances;
    Enc.int e st.st_records;
    Enc.int e st.st_store_tick;
    Enc.int e st.st_history_tick;
    Enc.float e st.st_uptime_s
  | Ok_refresh { fresh; reran; reused } ->
    Enc.u8 e 9;
    Enc.int e fresh;
    Enc.int e reran;
    Enc.int e reused
  | Ok_snapshot { seq; data } ->
    Enc.u8 e 10;
    Enc.int e seq;
    Enc.payload e data
  | Ok_snapshot_begin { seq; bytes } ->
    Enc.u8 e 11;
    Enc.int e seq;
    Enc.int e bytes
  | Ok_snapshot_chunk { data } ->
    Enc.u8 e 12;
    Enc.payload e data
  | Ok_snapshot_end { digest } ->
    Enc.u8 e 13;
    Enc.str e digest
  | Ok_frame { seq; payload; digest } ->
    Enc.u8 e 14;
    Enc.int e seq;
    Enc.str e digest;
    Enc.payload e payload
  | Ok_lags { primary_seq; rows } ->
    Enc.u8 e 15;
    Enc.int e primary_seq;
    Enc.list e
      (fun e r ->
        Enc.str e r.lag_follower;
        Enc.int e r.lag_acked;
        Enc.int e r.lag_sent)
      rows
  | Ok_metrics ms ->
    Enc.u8 e 16;
    Enc.list e metric_to_bin ms
  | Ok_digest { wsid; base; seq; fingerprint; cursors; entries } ->
    Enc.u8 e 17;
    Enc.str e wsid;
    Enc.int e base;
    Enc.int e seq;
    Enc.str e fingerprint;
    Enc.list e (pair_to_bin Enc.str Enc.int) cursors;
    Enc.list e (pair_to_bin Enc.int Enc.str) entries
  | Ok_frames frames ->
    Enc.u8 e 18;
    Enc.list e sync_frame_to_bin frames
  | Ok_sync { sy_applied; sy_skipped; sy_conflicts; sy_cursor } ->
    Enc.u8 e 19;
    Enc.int e sy_applied;
    Enc.int e sy_skipped;
    Enc.int e sy_conflicts;
    Enc.int e sy_cursor
  | Ok_conflicts rows ->
    Enc.u8 e 20;
    Enc.list e
      (fun e c ->
        Enc.int e c.cf_id;
        Enc.int e c.cf_base;
        Enc.int e c.cf_ours;
        Enc.int e c.cf_theirs;
        Enc.str e c.cf_origin;
        Enc.int e c.cf_at;
        Enc.opt e Enc.int c.cf_winner)
      rows
  | Ok_batch resps ->
    Enc.u8 e 21;
    Enc.list e response_to_bin resps
  | Error err ->
    Enc.u8 e 22;
    error_to_bin e err

let rec response_of_bin d =
  match Dec.u8 d with
  | 1 -> Ok_unit
  | 2 -> Ok_int (Dec.int d)
  | 3 -> Ok_ints (Dec.list d Dec.int)
  | 4 -> Ok_atoms (Dec.list d Dec.str)
  | 5 -> Ok_text (Dec.payload d)
  | 6 -> Ok_nodes (Dec.list d (pair_of_bin Dec.int Dec.str))
  | 7 ->
    Ok_rows
      (Dec.list d (fun d ->
           let row_iid = Dec.int d in
           let row_entity = Dec.str d in
           let row_meta = meta_of_bin d in
           { row_iid; row_entity; row_meta }))
  | 8 ->
    let st_role = Dec.str d in
    let st_seq = Dec.int d in
    let st_clock = Dec.int d in
    let st_instances = Dec.int d in
    let st_records = Dec.int d in
    let st_store_tick = Dec.int d in
    let st_history_tick = Dec.int d in
    let st_uptime_s = Dec.float d in
    Ok_stat
      { st_role; st_seq; st_clock; st_instances; st_records; st_store_tick;
        st_history_tick; st_uptime_s }
  | 9 ->
    let fresh = Dec.int d in
    let reran = Dec.int d in
    let reused = Dec.int d in
    Ok_refresh { fresh; reran; reused }
  | 10 ->
    let seq = Dec.int d in
    let data = Dec.payload d in
    Ok_snapshot { seq; data }
  | 11 ->
    let seq = Dec.int d in
    let bytes = Dec.int d in
    Ok_snapshot_begin { seq; bytes }
  | 12 -> Ok_snapshot_chunk { data = Dec.payload d }
  | 13 -> Ok_snapshot_end { digest = Dec.str d }
  | 14 ->
    let seq = Dec.int d in
    let digest = Dec.str d in
    let payload = Dec.payload d in
    Ok_frame { seq; payload; digest }
  | 15 ->
    let primary_seq = Dec.int d in
    let rows =
      Dec.list d (fun d ->
          let lag_follower = Dec.str d in
          let lag_acked = Dec.int d in
          let lag_sent = Dec.int d in
          { lag_follower; lag_acked; lag_sent })
    in
    Ok_lags { primary_seq; rows }
  | 16 -> Ok_metrics (Dec.list d metric_of_bin)
  | 17 ->
    let wsid = Dec.str d in
    let base = Dec.int d in
    let seq = Dec.int d in
    let fingerprint = Dec.str d in
    let cursors = Dec.list d (pair_of_bin Dec.str Dec.int) in
    let entries = Dec.list d (pair_of_bin Dec.int Dec.str) in
    Ok_digest { wsid; base; seq; fingerprint; cursors; entries }
  | 18 -> Ok_frames (Dec.list d sync_frame_of_bin)
  | 19 ->
    let sy_applied = Dec.int d in
    let sy_skipped = Dec.int d in
    let sy_conflicts = Dec.int d in
    let sy_cursor = Dec.int d in
    Ok_sync { sy_applied; sy_skipped; sy_conflicts; sy_cursor }
  | 20 ->
    Ok_conflicts
      (Dec.list d (fun d ->
           let cf_id = Dec.int d in
           let cf_base = Dec.int d in
           let cf_ours = Dec.int d in
           let cf_theirs = Dec.int d in
           let cf_origin = Dec.str d in
           let cf_at = Dec.int d in
           let cf_winner = Dec.opt d Dec.int in
           { cf_id; cf_base; cf_ours; cf_theirs; cf_origin; cf_at; cf_winner }))
  | 21 -> Ok_batch (Dec.list d response_of_bin)
  | 22 -> Error (error_of_bin d)
  | t -> wire_errorf "unknown binary response tag %d" t

(* String forms of the binary codec, for the property tests and the
   codec bench (the socket paths below keep the iovec form). *)
let encode_to_string enc v =
  let e = Enc.create () in
  enc e v;
  Iovec.concat (Enc.finish e)

let decode_of_string dec s =
  let d = Dec.of_string s in
  let v = dec d in
  if not (Dec.finished d) then
    wire_errorf "trailing bytes in binary frame (%d of %d consumed)" d.Dec.pos
      (String.length s);
  v

let request_to_binary_string = encode_to_string request_to_bin
let request_of_binary_string = decode_of_string request_of_bin
let response_to_binary_string = encode_to_string response_to_bin
let response_of_binary_string = decode_of_string response_of_bin

(* ------------------------------------------------------------------ *)
(* Framed socket I/O                                                   *)
(* ------------------------------------------------------------------ *)

let max_frame = 64 * 1024 * 1024

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | 0 -> wire_errorf "peer closed the connection mid-write"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
        wire_errorf "peer closed the connection"
  in
  go 0

(* One fault-checked flush of an iovec frame list.  Both codecs funnel
   through here, so a "wire.send" fault (fail / torn) covers them
   equally: [Torn k] writes the first [k] bytes of the flattened batch
   and dies, exactly as the old single-string path did. *)
let flush_slices fd slices =
  match Fault.check "wire.send" with
  | Some (Fault.Torn k) ->
    (* the sender dies mid-frame: the peer sees a truncated message *)
    let msg = Iovec.concat slices in
    (try write_all fd (Bytes.of_string (String.sub msg 0 (min k (String.length msg))))
     with Wire_error _ -> ());
    raise (Fault.Injected "wire.send")
  | Some Fault.Fail -> raise (Fault.Injected "wire.send")
  | Some (Fault.Delay _) | None -> (
    try ignore (Iovec.gather_write fd (Array.of_list slices) (Iovec.total slices))
    with Unix.Unix_error (Unix.EPIPE, _, _) ->
      wire_errorf "peer closed the connection")

let sexp_header ?deadline_ms ?trace len =
  Printf.sprintf "ddf1 %d%s%s\n" len
    (match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf " %d" ms)
    (match trace with
    | None -> ""
    | Some ctx -> " " ^ Ddf_obs.Obs.span_ctx_to_token ctx)

let sexp_frame ?deadline_ms ?trace payload =
  sexp_header ?deadline_ms ?trace (String.length payload) ^ payload ^ "\n"

let send ?deadline_ms ?trace fd sexp =
  let msg = sexp_frame ?deadline_ms ?trace (S.to_string sexp) in
  flush_slices fd [ Iovec.of_string msg ]

(* A binary frame: 0xd8 magic, flags byte (bit0 deadline, bit1 trace),
   u32-LE body length, then the optional header fields in flag order
   (u32-LE deadline ms; u8-length-prefixed trace token), then the
   body. *)
let binary_magic = '\xd8'

let binary_frame ?deadline_ms ?trace body_slices =
  let blen = Iovec.total body_slices in
  if blen > max_frame then wire_errorf "oversized frame (%d bytes)" blen;
  let h = Buffer.create 48 in
  Buffer.add_char h binary_magic;
  let flags =
    (if deadline_ms = None then 0 else 1) lor if trace = None then 0 else 2
  in
  Buffer.add_char h (Char.chr flags);
  Buffer.add_int32_le h (Int32.of_int blen);
  (match deadline_ms with
  | None -> ()
  | Some ms -> Buffer.add_int32_le h (Int32.of_int (max 0 ms)));
  (match trace with
  | None -> ()
  | Some ctx ->
    let tok = Ddf_obs.Obs.span_ctx_to_token ctx in
    Buffer.add_char h (Char.chr (String.length tok));
    Buffer.add_string h tok);
  Iovec.of_string (Buffer.contents h) :: body_slices

let encode_request_frame ?deadline_ms ?trace codec req =
  match codec with
  | Sexp ->
    [ Iovec.of_string
        (sexp_frame ?deadline_ms ?trace (S.to_string (request_to_sexp req))) ]
  | Binary ->
    let e = Enc.create () in
    request_to_bin e req;
    binary_frame ?deadline_ms ?trace (Enc.finish e)

let encode_response_frame ?deadline_ms ?trace codec resp =
  match codec with
  | Sexp ->
    [ Iovec.of_string
        (sexp_frame ?deadline_ms ?trace (S.to_string (response_to_sexp resp))) ]
  | Binary ->
    let e = Enc.create () in
    response_to_bin e resp;
    binary_frame ?deadline_ms ?trace (Enc.finish e)

let instrument_encode codec enc =
  let t0 = Unix.gettimeofday () in
  let slices = enc () in
  M.observe (encode_histogram codec) (Unix.gettimeofday () -. t0);
  M.incr ~by:(Iovec.total slices) (bytes_out_counter codec);
  slices

let send_request ?deadline_ms ?trace codec fd req =
  flush_slices fd
    (instrument_encode codec (fun () ->
         encode_request_frame ?deadline_ms ?trace codec req))

let send_response ?deadline_ms ?trace codec fd resp =
  flush_slices fd
    (instrument_encode codec (fun () ->
         encode_response_frame ?deadline_ms ?trace codec resp))

(* A whole group of responses as one flush: the frame lists are
   chained and hit the kernel in a single gathered write — this is the
   replication outbox's group-commit fan-out path. *)
let send_response_batch codec fd items =
  match items with
  | [] -> ()
  | items ->
    flush_slices fd
      (List.concat_map
         (fun (resp, trace) ->
           instrument_encode codec (fun () ->
               encode_response_frame ?trace codec resp))
         items)

(* Read exactly [n] bytes; [None] when the stream ends cleanly at a
   message boundary (off = 0). *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then None else wire_errorf "truncated frame"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        if off = 0 then None else wire_errorf "connection reset mid-frame"
  in
  go 0

(* One byte of lookahead: every receiver sniffs the first byte of a
   frame (0xd8 = binary, 'd' of "ddf1" = sexp), so a server can read
   the sexp hello of a peer whose version it does not yet know and
   binary frames the moment the handshake settles. *)
let read_byte fd =
  let byte = Bytes.create 1 in
  match Unix.read fd byte 0 1 with
  | 0 -> None
  | _ -> Some (Bytes.get byte 0)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None

let read_header_line_from fd first =
  let buf = Buffer.create 24 in
  Buffer.add_char buf first;
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> wire_errorf "truncated header"
    | _ ->
      if Bytes.get byte 0 = '\n' then Buffer.contents buf
      else begin
        if Buffer.length buf > 64 then wire_errorf "oversized frame header";
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      wire_errorf "connection reset mid-header"
  in
  go ()

type frame_meta = {
  fm_deadline_ms : int option;
  fm_trace : Ddf_obs.Obs.span_ctx option;
}

(* Header tokens after the length are recognised by shape — digits are
   a deadline budget, "t=..." a trace context — so either, both (in
   that order) or neither may appear and old peers stay parseable. *)
let parse_sexp_header header =
  match String.split_on_char ' ' header with
  | "ddf1" :: len :: rest ->
    let len =
      match int_of_string_opt len with
      | Some n when n >= 0 && n <= max_frame -> n
      | Some _ | None -> wire_errorf "bad frame length %S" len
    in
    let meta =
      List.fold_left
        (fun meta tok ->
          if String.length tok >= 2 && String.sub tok 0 2 = "t=" then
            match Ddf_obs.Obs.span_ctx_of_token tok with
            | Some ctx -> { meta with fm_trace = Some ctx }
            | None -> wire_errorf "bad trace token %S" tok
          else
            match int_of_string_opt tok with
            | Some n when n >= 0 -> { meta with fm_deadline_ms = Some n }
            | Some _ | None -> wire_errorf "bad frame header %S" header)
        { fm_deadline_ms = None; fm_trace = None }
        rest
    in
    (len, meta)
  | _ -> wire_errorf "bad frame header %S" header

(* The raw body of one frame, still undecoded; the constructor records
   which codec it arrived in. *)
type raw_frame = Raw_sexp of string | Raw_binary of string

let recv_sexp_rest fd first =
  let header = read_header_line_from fd first in
  let len, meta = parse_sexp_header header in
  match read_exact fd (len + 1) with
  | None -> wire_errorf "truncated frame"
  | Some bytes ->
    if Bytes.get bytes len <> '\n' then wire_errorf "missing frame terminator";
    let payload = Bytes.sub_string bytes 0 len in
    (Raw_sexp payload, meta, String.length header + 1 + len + 1)

let recv_binary_rest fd =
  match read_exact fd 5 with
  | None -> wire_errorf "truncated binary frame header"
  | Some hdr ->
    let flags = Char.code (Bytes.get hdr 0) in
    if flags land lnot 3 <> 0 then
      wire_errorf "bad binary frame flags 0x%x" flags;
    let blen = Int32.to_int (Bytes.get_int32_le hdr 1) land 0xFFFFFFFF in
    if blen > max_frame then wire_errorf "oversized binary frame (%d bytes)" blen;
    let hbytes = ref 6 in
    let fm_deadline_ms =
      if flags land 1 = 0 then None
      else
        match read_exact fd 4 with
        | None -> wire_errorf "truncated binary frame header"
        | Some b ->
          hbytes := !hbytes + 4;
          Some (Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF)
    in
    let fm_trace =
      if flags land 2 = 0 then None
      else
        match read_exact fd 1 with
        | None -> wire_errorf "truncated binary frame header"
        | Some n -> (
          let n = Char.code (Bytes.get n 0) in
          match read_exact fd n with
          | None -> wire_errorf "truncated binary frame header"
          | Some tok -> (
            hbytes := !hbytes + 1 + n;
            let tok = Bytes.to_string tok in
            match Ddf_obs.Obs.span_ctx_of_token tok with
            | Some ctx -> Some ctx
            | None -> wire_errorf "bad trace token %S" tok))
    in
    let body =
      match read_exact fd blen with
      | None -> wire_errorf "truncated binary frame"
      | Some b -> Bytes.unsafe_to_string b
    in
    (Raw_binary body, { fm_deadline_ms; fm_trace }, !hbytes + blen)

(* [None] on clean EOF at a frame boundary. *)
let recv_raw fd =
  match read_byte fd with
  | None -> None
  | Some c when c = binary_magic -> Some (recv_binary_rest fd)
  | Some c -> Some (recv_sexp_rest fd c)

let parse_sexp_payload payload =
  try S.of_string payload with S.Sexp_error m -> wire_errorf "payload: %s" m

let recv_meta fd =
  match recv_raw fd with
  | None -> None
  | Some (Raw_binary _, _, _) ->
    wire_errorf "unexpected binary frame on a sexp connection"
  | Some (Raw_sexp payload, meta, _) -> Some (parse_sexp_payload payload, meta)

let recv_deadline fd =
  Option.map (fun (sexp, meta) -> (sexp, meta.fm_deadline_ms)) (recv_meta fd)

let recv fd = Option.map fst (recv_meta fd)

let instrument_decode raw nbytes dec_sexp dec_bin =
  let t0 = Unix.gettimeofday () in
  let codec, v =
    match raw with
    | Raw_sexp payload -> (Sexp, dec_sexp (parse_sexp_payload payload))
    | Raw_binary body -> (Binary, decode_of_string dec_bin body)
  in
  M.observe (decode_histogram codec) (Unix.gettimeofday () -. t0);
  M.incr ~by:nbytes (bytes_in_counter codec);
  (v, codec)

(* Typed receive: sniffs the codec per frame, so a connection can
   switch from sexp to binary mid-stream when a v8 hello is accepted.
   Returns the frame's codec so servers can answer a pre-hello frame
   in kind. *)
let recv_request fd =
  match recv_raw fd with
  | None -> None
  | Some (raw, meta, nbytes) ->
    let req, codec = instrument_decode raw nbytes request_of_sexp request_of_bin in
    Some (req, meta, codec)

let recv_response fd =
  match recv_raw fd with
  | None -> None
  | Some (raw, meta, nbytes) ->
    let resp, codec =
      instrument_decode raw nbytes response_of_sexp response_of_bin
    in
    Some (resp, meta, codec)
