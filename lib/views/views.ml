(* View management through flows (section 3.3, Figs. 7-8).

   Designers think of a cell as a logic view, a transistor-level view
   and a physical view.  Associating views with schema entities lets
   flows express the transformations between them: synthesis derives
   the physical view from the logic view (Fig. 8a), and verification
   checks their correspondence by extraction and comparison (Fig. 8b).
   View management thus needs no machinery beyond dynamically defined
   flows -- this module only names the conventions. *)

open Ddf_schema
open Ddf_graph
open Ddf_store
module E = Standard_schemas.E

type view =
  | Logic_view
  | Transistor_level_view
  | Physical_view

let view_name = function
  | Logic_view -> "logic"
  | Transistor_level_view -> "transistor"
  | Physical_view -> "physical"

(* Which view an entity belongs to, by its root type. *)
let view_of_entity schema entity =
  let root = Schema.root_of schema entity in
  if root = E.netlist then Some Logic_view
  else if root = E.transistor_netlist then Some Transistor_level_view
  else if root = E.layout then Some Physical_view
  else None

type cell_views = {
  cv_logic : Store.iid;
  cv_transistor : Store.iid;
  cv_physical : Store.iid;
}

(* Derive the transistor and physical views of a logic view by two
   flows, recording everything in the design history (Fig. 7). *)
let derive_views (ctx : Ddf_exec.Engine.context) ~logic ~placer_tool ~expander_tool =
  let schema = ctx.Ddf_exec.Engine.schema in
  (* physical: Fig. 8(a) synthesis flow *)
  let g, layout = Task_graph.create schema E.synthesized_layout in
  let g, fresh = Task_graph.expand ~include_optional:false g layout in
  let placer_node, netlist_node =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let run =
    Ddf_exec.Engine.execute ctx g
      ~bindings:[ (placer_node, placer_tool); (netlist_node, logic) ]
  in
  let physical = Ddf_exec.Engine.result_of run layout in
  (* transistor: expansion flow *)
  let g, tview = Task_graph.create schema E.transistor_netlist in
  let g, fresh = Task_graph.expand g tview in
  let expander_node, netlist_node =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let run =
    Ddf_exec.Engine.execute ctx g
      ~bindings:[ (expander_node, expander_tool); (netlist_node, logic) ]
  in
  let transistor = Ddf_exec.Engine.result_of run tview in
  { cv_logic = logic; cv_transistor = transistor; cv_physical = physical }

(* Fig. 8(b): verify that the physical view corresponds to the logic
   view, as a flow (extract then compare). *)
let verify_physical (ctx : Ddf_exec.Engine.context) ~logic ~physical ~extractor_tool
    ~verifier_tool =
  let schema = ctx.Ddf_exec.Engine.schema in
  let f = Standard_flows.fig8b () in
  ignore schema;
  let g = f.Standard_flows.f8b_graph in
  (* the fig8b flow still has the extractor + verifier tool leaves to bind *)
  let tool_leaves =
    List.filter
      (fun nid ->
        Task_graph.out_edges g nid = []
        && Schema.kind_of (Task_graph.schema g) (Task_graph.entity_of g nid)
           = Schema.Tool)
      (Task_graph.node_ids g)
  in
  let bindings =
    List.map
      (fun nid ->
        let entity = Task_graph.entity_of g nid in
        if entity = E.extractor then (nid, extractor_tool)
        else if entity = E.verifier then (nid, verifier_tool)
        else
          raise
            (Ddf_core.Error.Ddf_error
               (Ddf_core.Error.make `Type_error ("unexpected tool leaf " ^ entity))))
      tool_leaves
  in
  let bindings =
    (f.Standard_flows.f8b_reference, logic)
    :: (f.Standard_flows.f8b_layout, physical)
    :: bindings
  in
  let run = Ddf_exec.Engine.execute ctx g ~bindings in
  let verification_iid = Ddf_exec.Engine.result_of run f.Standard_flows.f8b_verification in
  let verdict =
    Ddf_data.as_verification (Store.payload ctx.Ddf_exec.Engine.store verification_iid)
  in
  (verification_iid, verdict)

(* Direct (non-flow) correspondence between logic and transistor views,
   for the Fig. 7 demonstration: switch-level against gate-level. *)
let transistor_corresponds (ctx : Ddf_exec.Engine.context) ~logic ~transistor rng =
  let nl = Ddf_data.as_netlist (Store.payload ctx.Ddf_exec.Engine.store logic) in
  let tv =
    match Store.payload ctx.Ddf_exec.Engine.store transistor with
    | Ddf_data.Transistor_view t -> t
    | v ->
      raise
        (Ddf_data.Type_error
           ("expected a transistor view, got " ^ Ddf_data.kind_name v))
  in
  Ddf_eda.Transistor.corresponds nl tv rng

let pp_view ppf v = Fmt.string ppf (view_name v)
