(** Fault injection for crash and failure testing.

    A {e fault point} is a named hook compiled into a production code
    path; it does nothing until armed.  Tests arm points
    programmatically ({!arm}); operators and CI arm them through the
    [DDF_FAULT] environment variable, so a stock binary can be run
    under injected fsync failures, torn writes, severed sockets and
    writer stalls without a rebuild.

    Points currently wired in:
    - ["journal.fsync"]      the wal durability fsync ([Fail] → the
                             sync raises, like a dying disk; the
                             journal fail-stops)
    - ["journal.torn_write"] a wal frame append ([Torn n] → only the
                             first [n] bytes reach the file, then the
                             append raises — a crash mid-write)
    - ["journal.dir_fsync"]  the directory fsync pinning compaction and
                             resync renames ([Fail] → dies exactly
                             between the base write and the wal
                             truncation — the crash window open-time
                             repair recovers from)
    - ["wire.send"]          any framed socket send ([Torn n] → the
                             peer sees [n] bytes then a dead
                             connection)
    - ["server.writer_stall"] the server's writer loop, once per
                             batch ([Delay s] → the writer sleeps with
                             requests queued behind it)
    - ["sync.pull"]          before each anti-entropy frame fetch
                             ([Fail] → the sync round dies mid-flight;
                             the persisted cursor makes the next sync
                             resume where this one stopped)

    The spec grammar for [DDF_FAULT] (and {!configure}) is a
    semicolon-separated list of [point=action], where action is
    [fail], [torn:BYTES], or [delay:SECONDS], optionally suffixed by
    [@N] (skip the first N hits) and [xM] (fire M times; [x*] forever,
    default once):

    {[ DDF_FAULT="journal.fsync=fail@2;wire.send=torn:10x*" ]}

    Injection raises {!Injected}, which carries the point name and is
    classified as an internal error by the server — exactly how an
    unexpected [Unix_error] from the real syscall would surface. *)

exception Injected of string

type action =
  | Fail  (** raise {!Injected} at the point *)
  | Torn of int  (** emit only the first [n] bytes, then raise *)
  | Delay of float  (** sleep [s] seconds, then continue *)

val arm : ?after:int -> ?times:int -> string -> action -> unit
(** Arm [point]: skip the first [after] hits (default 0), then fire on
    the next [times] hits (default 1; [max_int] ≈ forever).  Re-arming
    a point replaces its previous state. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm everything (including [DDF_FAULT]-loaded points). *)

val configure : string -> unit
(** Parse a spec string (the [DDF_FAULT] grammar) and arm each entry.
    Raises [Invalid_argument] on a malformed spec. *)

val load_env : unit -> unit
(** Arm from [DDF_FAULT] if set.  Called automatically before the
    first {!fire}/{!check}; explicit calls re-read the variable. *)

val fire : string -> unit
(** Hit [point]: no-op when unarmed; [Delay] sleeps; [Fail] and [Torn]
    raise {!Injected}.  Use {!check} at sites that can honour [Torn]
    byte counts. *)

val check : string -> action option
(** Hit [point] and return the action to perform, consuming one armed
    hit; [None] when unarmed (or still in the [after] window).  [Delay]
    is already slept before returning. *)

val fired : string -> int
(** How many times [point] actually injected (not mere hits). *)
