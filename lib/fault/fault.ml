(* Registry-driven fault points.  Production code calls [fire]/[check]
   at named sites; nothing happens until a test (or DDF_FAULT) arms
   the point.  The registry is process-global and mutex-guarded — the
   server hits points from several threads. *)

exception Injected of string

type action =
  | Fail
  | Torn of int
  | Delay of float

type point = {
  p_action : action;
  mutable p_skip : int;      (* hits to ignore before firing *)
  mutable p_left : int;      (* firings remaining *)
  mutable p_fired : int;
}

let m = Mutex.create ()
let points : (string, point) Hashtbl.t = Hashtbl.create 8
let env_loaded = ref false

let m_injected = Ddf_obs.Metrics.counter "fault.injected"

let locked f =
  Mutex.lock m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock m)

let arm ?(after = 0) ?(times = 1) name action =
  locked (fun () ->
      Hashtbl.replace points name
        { p_action = action; p_skip = after; p_left = times; p_fired = 0 })

let disarm name = locked (fun () -> Hashtbl.remove points name)

let reset () = locked (fun () -> Hashtbl.reset points)

(* point=action[:arg][@skip][xtimes] ; ... *)
let configure spec =
  let bad fmt = Printf.ksprintf (fun s -> invalid_arg ("DDF_FAULT: " ^ s)) fmt in
  String.split_on_char ';' spec
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.iter (fun entry ->
         match String.index_opt entry '=' with
         | None -> bad "missing '=' in %S" entry
         | Some eq ->
           let name = String.sub entry 0 eq in
           let rhs =
             String.sub entry (eq + 1) (String.length entry - eq - 1)
           in
           (* peel xM then @N suffixes *)
           let rhs, times =
             match String.rindex_opt rhs 'x' with
             | Some i when i > 0 -> (
               let suffix = String.sub rhs (i + 1) (String.length rhs - i - 1) in
               if suffix = "*" then (String.sub rhs 0 i, max_int)
               else
                 match int_of_string_opt suffix with
                 | Some n when n >= 0 -> (String.sub rhs 0 i, n)
                 | Some _ | None -> (rhs, 1))
             | Some _ | None -> (rhs, 1)
           in
           let rhs, after =
             match String.index_opt rhs '@' with
             | None -> (rhs, 0)
             | Some i -> (
               let suffix = String.sub rhs (i + 1) (String.length rhs - i - 1) in
               match int_of_string_opt suffix with
               | Some n when n >= 0 -> (String.sub rhs 0 i, n)
               | Some _ | None -> bad "bad skip count in %S" entry)
           in
           let action =
             match String.split_on_char ':' rhs with
             | [ "fail" ] -> Fail
             | [ "torn"; n ] -> (
               match int_of_string_opt n with
               | Some k when k >= 0 -> Torn k
               | Some _ | None -> bad "bad byte count in %S" entry)
             | [ "delay"; s ] -> (
               match float_of_string_opt s with
               | Some f when f >= 0.0 -> Delay f
               | Some _ | None -> bad "bad delay in %S" entry)
             | _ -> bad "unknown action in %S" entry
           in
           arm ~after ~times name action)

let load_env () =
  env_loaded := true;
  match Sys.getenv_opt "DDF_FAULT" with
  | Some spec when spec <> "" -> configure spec
  | Some _ | None -> ()

let ensure_env () = if not !env_loaded then load_env ()

(* One hit: consume the skip window, then an armed firing. *)
let take name =
  ensure_env ();
  locked (fun () ->
      match Hashtbl.find_opt points name with
      | None -> None
      | Some p ->
        if p.p_skip > 0 then begin
          p.p_skip <- p.p_skip - 1;
          None
        end
        else if p.p_left <= 0 then None
        else begin
          p.p_left <- (if p.p_left = max_int then max_int else p.p_left - 1);
          p.p_fired <- p.p_fired + 1;
          Ddf_obs.Metrics.incr m_injected;
          Some p.p_action
        end)

let check name =
  match take name with
  | Some (Delay s) ->
    Thread.delay s;
    None
  | other -> other

let fire name =
  match check name with
  | None | Some (Delay _) -> ()
  | Some (Fail | Torn _) -> raise (Injected name)

let fired name =
  locked (fun () ->
      match Hashtbl.find_opt points name with
      | None -> 0
      | Some p -> p.p_fired)
