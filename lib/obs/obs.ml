(* Structured tracing for the flow engine and the serving stack.

   The runtime emits *events* -- span begin/end pairs, complete
   (pre-timed) durations, instants and counter samples -- into a single
   process-wide *sink*.  Each event carries an absolute wall-clock
   timestamp in microseconds (so traces from several processes line up
   on one timeline), the engine's logical clock when one applies, a
   lane id (machine / domain / connection) and free-form key/value
   attributes.

   Events may also carry a *span context*: a process-spanning trace id
   plus a span id and parent span id.  Contexts form a tree; the
   current context is tracked per thread, and [with_span] pushes a
   child context for the dynamic extent of its thunk.  A context can
   be serialised into a compact header token ([span_ctx_to_token]) and
   revived on the far side of a socket, which is how one request's
   journey is stitched across client, server and follower processes.

   The default sink is absent: every instrumentation site guards on
   [enabled ()], so a disabled trace costs exactly one branch and
   produces no allocation.  Emission is serialised by an internal
   mutex, so server and client threads may share one sink safely. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attrs = (string * value) list

type kind =
  | Begin               (* span opens; must be balanced by [End] *)
  | End
  | Complete of float   (* a span measured by the caller: duration in us *)
  | Instant
  | Sample of float     (* a counter/gauge sample *)

type span_ctx = {
  trace_id : string;    (* 16 lowercase hex digits, shared by a whole trace *)
  span_id : int;        (* nonzero, unique within the trace *)
  parent_id : int;      (* 0 for a root span *)
}

type event = {
  kind : kind;
  name : string;
  cat : string;     (* coarse subsystem: engine, store, server, ... *)
  ts_us : float;    (* absolute wall clock, us since the Unix epoch *)
  logical : int;    (* engine logical clock; -1 when not applicable *)
  tid : int;        (* lane: simulated machine, domain, connection, ... *)
  span : span_ctx option;
  attrs : attrs;
}

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null_sink = { emit = (fun _ -> ()); close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* The process-wide sink                                               *)
(* ------------------------------------------------------------------ *)

(* One mutex serialises sink installation and every emission, so sinks
   need no locking of their own even when server threads emit. *)
let sink_mutex = Mutex.create ()
let current : sink option ref = ref None

let enabled () = !current <> None

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_sink sink =
  with_lock sink_mutex (fun () ->
      (match !current with Some s -> s.close () | None -> ());
      current := Some sink)

let clear_sink () =
  with_lock sink_mutex (fun () ->
      match !current with
      | Some s ->
        current := None;
        s.close ()
      | None -> ())

let now_us () = Unix.gettimeofday () *. 1e6

let emit ev =
  if !current <> None then
    with_lock sink_mutex (fun () ->
        match !current with Some s -> s.emit ev | None -> ())

(* ------------------------------------------------------------------ *)
(* Span identity and the per-thread current context                    *)
(* ------------------------------------------------------------------ *)

(* Ids must be unique across processes (a client, a primary and a
   follower all mint spans of one trace), so seed from the pid and the
   clock.  Draws are serialised by a mutex: Random.State is not
   thread-safe. *)
let id_mutex = Mutex.create ()

let id_state =
  lazy
    (Random.State.make
       [|
         Unix.getpid ();
         int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF;
         int_of_float (Unix.gettimeofday () *. 1e9) land 0x3FFFFFFF;
       |])

let random_bits bits =
  with_lock id_mutex (fun () ->
      let st = Lazy.force id_state in
      let rec go acc got =
        if got >= bits then acc
        else go ((acc lsl 30) lor Random.State.bits st) (got + 30)
      in
      go 0 0 land ((1 lsl bits) - 1))

let fresh_span_id () =
  let rec nonzero () =
    let id = random_bits 60 in
    if id = 0 then nonzero () else id
  in
  nonzero ()

let fresh_trace_id () = Printf.sprintf "%016x" (random_bits 60)

(* The current span per thread.  Entries are removed when a span pops
   back to [None], so the table stays small. *)
let ctx_mutex = Mutex.create ()
let ctx_table : (int, span_ctx) Hashtbl.t = Hashtbl.create 16

let current_span () =
  let tid = Thread.id (Thread.self ()) in
  with_lock ctx_mutex (fun () -> Hashtbl.find_opt ctx_table tid)

let set_current_span ctx =
  let tid = Thread.id (Thread.self ()) in
  with_lock ctx_mutex (fun () ->
      match ctx with
      | Some c -> Hashtbl.replace ctx_table tid c
      | None -> Hashtbl.remove ctx_table tid)

let with_current_span ctx f =
  let saved = current_span () in
  set_current_span (Some ctx);
  Fun.protect ~finally:(fun () -> set_current_span saved) f

let new_root () =
  { trace_id = fresh_trace_id (); span_id = fresh_span_id (); parent_id = 0 }

let child_of parent =
  {
    trace_id = parent.trace_id;
    span_id = fresh_span_id ();
    parent_id = parent.span_id;
  }

(* ------------------------------------------------------------------ *)
(* The trace-context header token: t=<trace_id>.<span_id-hex>          *)
(* ------------------------------------------------------------------ *)

let span_ctx_to_token ctx = Printf.sprintf "t=%s.%x" ctx.trace_id ctx.span_id

let is_hex s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let span_ctx_of_token s =
  if String.length s < 2 || not (String.sub s 0 2 = "t=") then None
  else
    let body = String.sub s 2 (String.length s - 2) in
    match String.index_opt body '.' with
    | None -> None
    | Some dot ->
      let tr = String.sub body 0 dot in
      let sp = String.sub body (dot + 1) (String.length body - dot - 1) in
      if String.length tr = 16 && is_hex tr && is_hex sp
         && String.length sp <= 15 then
        match int_of_string_opt ("0x" ^ sp) with
        | Some id when id > 0 ->
          (* the receiving side parents its spans under the sender's *)
          Some { trace_id = tr; span_id = id; parent_id = 0 }
        | _ -> None
      else None

(* ------------------------------------------------------------------ *)
(* Emission helpers (all no-ops when no sink is installed)             *)
(* ------------------------------------------------------------------ *)

(* [?span] defaults to the calling thread's current context, so
   instants and completes emitted inside a [with_span] join its trace
   without every call site threading a context. *)
let event ?(cat = "") ?(logical = -1) ?(tid = 0) ?span ?(attrs = []) kind name
    =
  let span = match span with Some _ as s -> s | None -> current_span () in
  { kind; name; cat; ts_us = now_us (); logical; tid; span; attrs }

let span_begin ?cat ?logical ?tid ?span ?attrs name =
  if enabled () then emit (event ?cat ?logical ?tid ?span ?attrs Begin name)

let span_end ?cat ?logical ?tid ?span ?attrs name =
  if enabled () then emit (event ?cat ?logical ?tid ?span ?attrs End name)

let complete ?cat ?logical ?tid ?span ?attrs ~dur_us name =
  if enabled () then
    emit (event ?cat ?logical ?tid ?span ?attrs (Complete dur_us) name)

let instant ?cat ?logical ?tid ?span ?attrs name =
  if enabled () then emit (event ?cat ?logical ?tid ?span ?attrs Instant name)

let sample ?cat ?logical ?tid name v =
  if enabled () then emit (event ?cat ?logical ?tid (Sample v) name)

(* Balanced even when [f] raises: the End event is emitted from a
   [Fun.protect] finalizer.  When tracing is on, the span gets a fresh
   context — a child of [?parent] if given, else of the thread's
   current span, else a new root — installed for the thunk's extent. *)
let with_span ?cat ?logical ?tid ?parent ?attrs name f =
  if not (enabled ()) then f ()
  else begin
    let ctx =
      match parent with
      | Some p -> child_of p
      | None -> (
        match current_span () with
        | Some p -> child_of p
        | None -> new_root ())
    in
    emit (event ?cat ?logical ?tid ~span:ctx ?attrs Begin name);
    with_current_span ctx (fun () ->
        Fun.protect
          ~finally:(fun () ->
            emit (event ?cat ?logical ?tid ~span:ctx End name))
          f)
  end

(* ------------------------------------------------------------------ *)
(* JSON helpers shared by the sinks and the metrics registry           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals.  The integer cutoff sits at
   2^53-ish so absolute-microsecond timestamps (~1.8e15 in 2026) still
   print exactly. *)
let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 9e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.6g" f

let json_of_value = function
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> string_of_bool b

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b
