(* Structured tracing for the flow engine.

   The runtime emits *events* -- span begin/end pairs, complete
   (pre-timed) durations, instants and counter samples -- into a single
   process-wide *sink*.  Each event carries a monotonic wall-clock
   timestamp relative to the moment the sink was installed, the
   engine's logical clock when one applies, a lane id (machine /
   domain) and free-form key/value attributes.

   The default sink is absent: every instrumentation site guards on
   [enabled ()], so a disabled trace costs exactly one branch and
   produces no allocation.  Sinks are not thread-safe; the engine only
   emits from the domain that owns the store (parallel execution
   commits sequentially), which keeps a single sink sound. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attrs = (string * value) list

type kind =
  | Begin               (* span opens; must be balanced by [End] *)
  | End
  | Complete of float   (* a span measured by the caller: duration in us *)
  | Instant
  | Sample of float     (* a counter/gauge sample *)

type event = {
  kind : kind;
  name : string;
  cat : string;     (* coarse subsystem: engine, store, history, ... *)
  ts_us : float;    (* wall clock, us since the sink was installed *)
  logical : int;    (* engine logical clock; -1 when not applicable *)
  tid : int;        (* lane: simulated machine, domain, ... *)
  attrs : attrs;
}

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null_sink = { emit = (fun _ -> ()); close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* The process-wide sink                                               *)
(* ------------------------------------------------------------------ *)

let current : sink option ref = ref None
let epoch = ref 0.0

let enabled () = !current <> None

let set_sink sink =
  (match !current with Some s -> s.close () | None -> ());
  epoch := Unix.gettimeofday ();
  current := Some sink

let clear_sink () =
  match !current with
  | Some s ->
    current := None;
    s.close ()
  | None -> ()

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let emit ev = match !current with Some s -> s.emit ev | None -> ()

let event ?(cat = "") ?(logical = -1) ?(tid = 0) ?(attrs = []) kind name =
  { kind; name; cat; ts_us = now_us (); logical; tid; attrs }

(* ------------------------------------------------------------------ *)
(* Emission helpers (all no-ops when no sink is installed)             *)
(* ------------------------------------------------------------------ *)

let span_begin ?cat ?logical ?tid ?attrs name =
  if enabled () then emit (event ?cat ?logical ?tid ?attrs Begin name)

let span_end ?cat ?logical ?tid ?attrs name =
  if enabled () then emit (event ?cat ?logical ?tid ?attrs End name)

let complete ?cat ?logical ?tid ?attrs ~dur_us name =
  if enabled () then emit (event ?cat ?logical ?tid ?attrs (Complete dur_us) name)

let instant ?cat ?logical ?tid ?attrs name =
  if enabled () then emit (event ?cat ?logical ?tid ?attrs Instant name)

let sample ?cat ?logical ?tid name v =
  if enabled () then emit (event ?cat ?logical ?tid (Sample v) name)

(* Balanced even when [f] raises: the End event is emitted from a
   [Fun.protect] finalizer. *)
let with_span ?cat ?logical ?tid ?attrs name f =
  match !current with
  | None -> f ()
  | Some _ ->
    emit (event ?cat ?logical ?tid ?attrs Begin name);
    Fun.protect
      ~finally:(fun () -> emit (event ?cat ?logical ?tid End name))
      f

(* ------------------------------------------------------------------ *)
(* JSON helpers shared by the sinks and the metrics registry           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals. *)
let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.6g" f

let json_of_value = function
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> string_of_bool b

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b
