(* Sink implementations: human-readable text, JSON-lines, and the
   Chrome trace-event format (load the file in chrome://tracing or
   https://ui.perfetto.dev), plus an in-memory recorder for tests.

   Span-carrying events render with their trace identity in [args],
   and every span Begin additionally yields Chrome *flow* records:
   a flow start (ph "s") anchored at the span so children anywhere —
   including other processes — can bind to it, and a flow finish
   (ph "f") binding the span to its parent.  Merging the JSONL output
   of several processes into one document therefore draws arrows
   client → server → follower with no post-processing. *)

open Obs

type format = Text | Jsonl | Chrome

let format_of_string = function
  | "text" -> Some Text
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_name = function Text -> "text" | Jsonl -> "jsonl" | Chrome -> "chrome"

(* ------------------------------------------------------------------ *)
(* In-memory recorder                                                  *)
(* ------------------------------------------------------------------ *)

(* Returns the sink and a function yielding the events recorded so
   far, oldest first. *)
let memory () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

(* ------------------------------------------------------------------ *)
(* Thread-safety wrapper                                               *)
(* ------------------------------------------------------------------ *)

(* [Obs.emit] already serialises all emission behind a process-wide
   mutex, so this wrapper is needed only for sinks driven directly
   (bypassing [Obs.emit]); it is kept for compatibility. *)
let locked sink =
  let m = Mutex.create () in
  let guard f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guard sink.emit; close = guard sink.close }

(* ------------------------------------------------------------------ *)
(* Text                                                                *)
(* ------------------------------------------------------------------ *)

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%a" k Obs.pp_value v) attrs

(* Timestamps are absolute microseconds; the text sink shows them
   relative to the first event so the column stays readable. *)
let text oc =
  let depth = ref 0 in
  let t0 = ref nan in
  let emit ev =
    if Float.is_nan !t0 then t0 := ev.ts_us;
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Printf.fprintf oc "%10.1f %s%s\n" (ev.ts_us -. !t0)
            (String.make (2 * !depth) ' ')
            s)
        fmt
    in
    let attrs = Fmt.str "%a" pp_attrs ev.attrs in
    let logical = if ev.logical >= 0 then Printf.sprintf " @%d" ev.logical else "" in
    match ev.kind with
    | Begin ->
      line "> %s [%s]%s%s" ev.name ev.cat logical attrs;
      incr depth
    | End ->
      depth := max 0 (!depth - 1);
      line "< %s%s" ev.name attrs
    | Complete dur -> line "= %s [%s] %.1f us%s%s" ev.name ev.cat dur logical attrs
    | Instant -> line "! %s [%s]%s%s" ev.name ev.cat logical attrs
    | Sample v -> line "# %s = %g%s" ev.name v attrs
  in
  { emit; close = (fun () -> flush oc) }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let pid = lazy (Unix.getpid ())

(* The hot path appends straight into a buffer: one jsonl emission is
   a single buffer fill and one channel write, with no intermediate
   field lists or string concatenation. *)
let add_json_of_event buf ev =
  let str s =
    Buffer.add_char buf '"';
    Buffer.add_string buf (Obs.json_escape s);
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf "{\"name\": ";
  str ev.name;
  Buffer.add_string buf ", \"cat\": ";
  str (if ev.cat = "" then "ddf" else ev.cat);
  Buffer.add_string buf ", \"ph\": \"";
  Buffer.add_string buf
    (match ev.kind with
    | Begin -> "B"
    | End -> "E"
    | Complete _ -> "X"
    | Instant -> "i"
    | Sample _ -> "C");
  Buffer.add_string buf "\", \"ts\": ";
  Buffer.add_string buf (Obs.json_float ev.ts_us);
  Buffer.add_string buf ", \"pid\": ";
  Buffer.add_string buf (string_of_int (Lazy.force pid));
  Buffer.add_string buf ", \"tid\": ";
  Buffer.add_string buf (string_of_int ev.tid);
  (match ev.kind with
  | Complete dur ->
    Buffer.add_string buf ", \"dur\": ";
    Buffer.add_string buf (Obs.json_float dur)
  | Instant -> Buffer.add_string buf ", \"s\": \"t\""
  | Begin | End | Sample _ -> ());
  Buffer.add_string buf ", \"args\": {";
  let sep = ref false in
  let arg k v =
    if !sep then Buffer.add_string buf ", ";
    sep := true;
    Buffer.add_char buf '"';
    Buffer.add_string buf (Obs.json_escape k);
    Buffer.add_string buf "\": ";
    Buffer.add_string buf v
  in
  if ev.logical >= 0 then arg "logical" (string_of_int ev.logical);
  (match ev.span with
  | None -> ()
  | Some c ->
    arg "trace_id" ("\"" ^ c.trace_id ^ "\"");
    arg "span" (Printf.sprintf "\"%x\"" c.span_id);
    if c.parent_id <> 0 then arg "parent" (Printf.sprintf "\"%x\"" c.parent_id));
  List.iter (fun (k, v) -> arg k (Obs.json_of_value v)) ev.attrs;
  (match ev.kind with Sample v -> arg "value" (Obs.json_float v) | _ -> ());
  Buffer.add_string buf "}}"

let json_of_event ev =
  let buf = Buffer.create 256 in
  add_json_of_event buf ev;
  Buffer.contents buf

(* Chrome flow records: same (name, cat, id) triple binds a start to
   its finish.  Anchored at the event's own coordinates. *)
let add_flow_record buf ~ph ~id ev =
  Buffer.add_string buf "{\"name\": \"span\", \"cat\": \"trace\", \"ph\": \"";
  Buffer.add_string buf ph;
  Buffer.add_string buf "\", ";
  if ph = "f" then Buffer.add_string buf "\"bp\": \"e\", ";
  Buffer.add_string buf (Printf.sprintf "\"id\": \"0x%x\", " id);
  Buffer.add_string buf "\"ts\": ";
  Buffer.add_string buf (Obs.json_float ev.ts_us);
  Buffer.add_string buf
    (Printf.sprintf ", \"pid\": %d, \"tid\": %d}" (Lazy.force pid) ev.tid)

let flow_record ~ph ~id ev =
  let buf = Buffer.create 128 in
  add_flow_record buf ~ph ~id ev;
  Buffer.contents buf

(* The event as JSON plus any flow records it implies: a span Begin
   opens a flow anchor under its own id and, when parented, closes the
   parent's flow into itself — which is what draws the cross-process
   arrow once traces are merged. *)
let add_json_lines buf ev =
  add_json_of_event buf ev;
  Buffer.add_char buf '\n';
  match (ev.kind, ev.span) with
  | Begin, Some c ->
    add_flow_record buf ~ph:"s" ~id:c.span_id ev;
    Buffer.add_char buf '\n';
    if c.parent_id <> 0 then begin
      add_flow_record buf ~ph:"f" ~id:c.parent_id ev;
      Buffer.add_char buf '\n'
    end
  | _ -> ()

let json_lines_of_event ev =
  let main = json_of_event ev in
  match (ev.kind, ev.span) with
  | Begin, Some c ->
    (main :: [ flow_record ~ph:"s" ~id:c.span_id ev ])
    @ (if c.parent_id <> 0 then [ flow_record ~ph:"f" ~id:c.parent_id ev ]
       else [])
  | _ -> [ main ]

(* One trace event per line: greppable, streamable, jq-friendly.  The
   scratch buffer is owned by the sink; [Obs.emit] serialises calls. *)
let jsonl oc =
  let buf = Buffer.create 512 in
  {
    emit =
      (fun ev ->
        Buffer.clear buf;
        add_json_lines buf ev;
        Buffer.output_buffer oc buf);
    close = (fun () -> flush oc);
  }

(* The Chrome trace-event envelope over a list of already-built
   events; also used to render Parallel.schedule lanes. *)
let chrome_json_of_events ?(lane_names = []) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_string buf ",\n  ";
    Buffer.add_string buf s
  in
  List.iter
    (fun (tid, name) ->
      add
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": \
            %d, \"args\": {\"name\": \"%s\"}}"
           (Lazy.force pid) tid (Obs.json_escape name)))
    lane_names;
  List.iter (fun ev -> List.iter add (json_lines_of_event ev)) events;
  Buffer.add_string buf "],\n\"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

(* Buffers everything and writes one well-formed JSON document on
   close -- the format chrome://tracing and Perfetto load directly. *)
let chrome oc =
  let events = ref [] in
  {
    emit = (fun ev -> events := ev :: !events);
    close =
      (fun () ->
        output_string oc (chrome_json_of_events (List.rev !events));
        flush oc);
  }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let of_format format oc =
  match format with Text -> text oc | Jsonl -> jsonl oc | Chrome -> chrome oc

(* The sink owns the channel: closing the sink closes the file. *)
let to_file ~format path =
  let oc = open_out path in
  let sink = of_format format oc in
  { sink with close = (fun () -> sink.close (); close_out oc) }
