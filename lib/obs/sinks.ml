(* Sink implementations: human-readable text, JSON-lines, and the
   Chrome trace-event format (load the file in chrome://tracing or
   https://ui.perfetto.dev), plus an in-memory recorder for tests. *)

open Obs

type format = Text | Jsonl | Chrome

let format_of_string = function
  | "text" -> Some Text
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_name = function Text -> "text" | Jsonl -> "jsonl" | Chrome -> "chrome"

(* ------------------------------------------------------------------ *)
(* In-memory recorder                                                  *)
(* ------------------------------------------------------------------ *)

(* Returns the sink and a function yielding the events recorded so
   far, oldest first. *)
let memory () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

(* ------------------------------------------------------------------ *)
(* Thread-safety wrapper                                               *)
(* ------------------------------------------------------------------ *)

(* Sinks are single-threaded by default; the design server wraps its
   sink so concurrent connection threads emit safely. *)
let locked sink =
  let m = Mutex.create () in
  let guard f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guard sink.emit; close = guard sink.close }

(* ------------------------------------------------------------------ *)
(* Text                                                                *)
(* ------------------------------------------------------------------ *)

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%a" k Obs.pp_value v) attrs

let text oc =
  let depth = ref 0 in
  let emit ev =
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Printf.fprintf oc "%10.1f %s%s\n" ev.ts_us
            (String.make (2 * !depth) ' ')
            s)
        fmt
    in
    let attrs = Fmt.str "%a" pp_attrs ev.attrs in
    let logical = if ev.logical >= 0 then Printf.sprintf " @%d" ev.logical else "" in
    match ev.kind with
    | Begin ->
      line "> %s [%s]%s%s" ev.name ev.cat logical attrs;
      incr depth
    | End ->
      depth := max 0 (!depth - 1);
      line "< %s%s" ev.name attrs
    | Complete dur -> line "= %s [%s] %.1f us%s%s" ev.name ev.cat dur logical attrs
    | Instant -> line "! %s [%s]%s%s" ev.name ev.cat logical attrs
    | Sample v -> line "# %s = %g%s" ev.name v attrs
  in
  { emit; close = (fun () -> flush oc) }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_fields_of_event ev =
  let kind, extra =
    match ev.kind with
    | Begin -> ("B", [])
    | End -> ("E", [])
    | Complete dur -> ("X", [ ("dur", Obs.json_float dur) ])
    | Instant -> ("i", [ ("s", "\"t\"") ])
    | Sample v -> ("C", [ ("value", Obs.json_float v) ])
  in
  let args =
    (if ev.logical >= 0 then [ ("logical", string_of_int ev.logical) ] else [])
    @ List.map (fun (k, v) -> (k, Obs.json_of_value v)) ev.attrs
    @ (match ev.kind with Sample v -> [ ("value", Obs.json_float v) ] | _ -> [])
  in
  [
    ("name", "\"" ^ Obs.json_escape ev.name ^ "\"");
    ("cat", "\"" ^ Obs.json_escape (if ev.cat = "" then "ddf" else ev.cat) ^ "\"");
    ("ph", "\"" ^ kind ^ "\"");
    ("ts", Obs.json_float ev.ts_us);
    ("pid", "1");
    ("tid", string_of_int ev.tid);
  ]
  @ (match ev.kind with Sample _ -> [] | _ -> extra)
  @ [
      ( "args",
        "{"
        ^ String.concat ", "
            (List.map (fun (k, v) -> "\"" ^ Obs.json_escape k ^ "\": " ^ v) args)
        ^ "}" );
    ]

let json_of_event ev =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> "\"" ^ k ^ "\": " ^ v) (json_fields_of_event ev))
  ^ "}"

(* One trace event per line: greppable, streamable, jq-friendly. *)
let jsonl oc =
  {
    emit = (fun ev -> output_string oc (json_of_event ev ^ "\n"));
    close = (fun () -> flush oc);
  }

(* The Chrome trace-event envelope over a list of already-built
   events; also used to render Parallel.schedule lanes. *)
let chrome_json_of_events ?(lane_names = []) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_string buf ",\n  ";
    Buffer.add_string buf s
  in
  List.iter
    (fun (tid, name) ->
      add
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
            %d, \"args\": {\"name\": \"%s\"}}"
           tid (Obs.json_escape name)))
    lane_names;
  List.iter (fun ev -> add (json_of_event ev)) events;
  Buffer.add_string buf "],\n\"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

(* Buffers everything and writes one well-formed JSON document on
   close -- the format chrome://tracing and Perfetto load directly. *)
let chrome oc =
  let events = ref [] in
  {
    emit = (fun ev -> events := ev :: !events);
    close =
      (fun () ->
        output_string oc (chrome_json_of_events (List.rev !events));
        flush oc);
  }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let of_format format oc =
  match format with Text -> text oc | Jsonl -> jsonl oc | Chrome -> chrome oc

(* The sink owns the channel: closing the sink closes the file. *)
let to_file ~format path =
  let oc = open_out path in
  let sink = of_format format oc in
  { sink with close = (fun () -> sink.close (); close_out oc) }
