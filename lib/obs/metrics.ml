(* A process-wide metrics registry: named counters, gauges and
   histograms.

   Counters are always on -- an increment is one mutable int bump, so
   there is no enable switch.  Call sites cache the metric handle in a
   module-level binding; [reset] therefore zeroes metrics in place
   instead of discarding them, keeping every cached handle valid. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

(* Power-of-two buckets: bucket 0 counts values <= 1, bucket i counts
   values in (2^(i-1), 2^i], the last bucket overflows. *)
let bucket_count = 32

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

(* The registry every standard engine metric lives in. *)
let global = create ()

let counter ?(registry = global) name =
  match Hashtbl.find_opt registry.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.add registry.counters name c;
    c

let incr ?(by = 1) c = c.count <- c.count + by
let count c = c.count

let gauge ?(registry = global) name =
  match Hashtbl.find_opt registry.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; value = 0.0 } in
    Hashtbl.add registry.gauges name g;
    g

let set g v = g.value <- v
let value g = g.value

let histogram ?(registry = global) name =
  match Hashtbl.find_opt registry.histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity;
        buckets = Array.make bucket_count 0 }
    in
    Hashtbl.add registry.histograms name h;
    h

let bucket_of v =
  if v <= 1.0 then 0
  else
    let b = int_of_float (ceil (Float.log2 v)) in
    min (max b 0) (bucket_count - 1)

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let reset reg =
  Hashtbl.iter (fun _ c -> c.count <- 0) reg.counters;
  Hashtbl.iter (fun _ g -> g.value <- 0.0) reg.gauges;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.min_v <- infinity;
      h.max_v <- neg_infinity;
      Array.fill h.buckets 0 bucket_count 0)
    reg.histograms

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type metric =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * int * float * float * float
      (* name, n, mean, min, max *)

let metric_name = function
  | Counter (n, _) | Gauge (n, _) | Histogram (n, _, _, _, _) -> n

let snapshot reg =
  let cs =
    Hashtbl.fold (fun _ c acc -> Counter (c.c_name, c.count) :: acc)
      reg.counters []
  in
  let gs =
    Hashtbl.fold (fun _ g acc -> Gauge (g.g_name, g.value) :: acc)
      reg.gauges []
  in
  let hs =
    Hashtbl.fold
      (fun _ h acc ->
        if h.n = 0 then acc
        else Histogram (h.h_name, h.n, mean h, h.min_v, h.max_v) :: acc)
      reg.histograms []
  in
  List.sort (fun a b -> compare (metric_name a) (metric_name b)) (cs @ gs @ hs)

let to_json reg =
  let buf = Buffer.create 512 in
  let fields =
    List.map
      (fun m ->
        match m with
        | Counter (n, v) ->
          Printf.sprintf "\"%s\": %d" (Obs.json_escape n) v
        | Gauge (n, v) ->
          Printf.sprintf "\"%s\": %s" (Obs.json_escape n) (Obs.json_float v)
        | Histogram (n, count, mn, lo, hi) ->
          Printf.sprintf
            "\"%s\": {\"n\": %d, \"mean\": %s, \"min\": %s, \"max\": %s}"
            (Obs.json_escape n) count (Obs.json_float mn) (Obs.json_float lo)
            (Obs.json_float hi))
      (snapshot reg)
  in
  Buffer.add_string buf "{";
  Buffer.add_string buf (String.concat ", " fields);
  Buffer.add_string buf "}";
  Buffer.contents buf

let pp ppf reg =
  List.iter
    (fun m ->
      match m with
      | Counter (n, v) -> Fmt.pf ppf "%-32s %d@." n v
      | Gauge (n, v) -> Fmt.pf ppf "%-32s %g@." n v
      | Histogram (n, count, mn, lo, hi) ->
        Fmt.pf ppf "%-32s n=%d mean=%.1f min=%g max=%g@." n count mn lo hi)
    (snapshot reg)
