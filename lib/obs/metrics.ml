(* A process-wide metrics registry: named counters, gauges and
   histograms.

   Counters are always on -- an increment is one mutable int bump, so
   there is no enable switch.  Call sites cache the metric handle in a
   module-level binding; [reset] therefore zeroes metrics in place
   instead of discarding them, keeping every cached handle valid.

   Histograms use fixed log-linear buckets -- 8 sub-buckets per
   power-of-two octave -- so p50/p90/p99 read out with bounded
   relative error (one bucket is a factor of 2^(1/8) ~ 9% wide) at a
   fixed 256-int footprint, with no per-observation allocation. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

(* Log-linear buckets: bucket 0 counts values <= 1; bucket i (i >= 1)
   counts values in (2^((i-1)/8), 2^(i/8)]; the last bucket overflows
   (2^(255/8) ~ 4e9 -- over an hour in microseconds). *)
let sub_buckets = 8
let bucket_count = 256

(* Upper bound of bucket i. *)
let bucket_bound =
  let bounds =
    Array.init bucket_count (fun i ->
        Float.pow 2.0 (float_of_int i /. float_of_int sub_buckets))
  in
  fun i -> bounds.(i)

let bucket_of v =
  if v <= 1.0 then 0
  else
    let b =
      int_of_float (ceil (float_of_int sub_buckets *. Float.log2 v))
    in
    min (max b 0) (bucket_count - 1)

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

(* The registry every standard engine metric lives in. *)
let global = create ()

let counter ?(registry = global) name =
  match Hashtbl.find_opt registry.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.add registry.counters name c;
    c

let incr ?(by = 1) c = c.count <- c.count + by
let count c = c.count

let gauge ?(registry = global) name =
  match Hashtbl.find_opt registry.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; value = 0.0 } in
    Hashtbl.add registry.gauges name g;
    g

let set g v = g.value <- v
let value g = g.value

let histogram ?(registry = global) name =
  match Hashtbl.find_opt registry.histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity;
        buckets = Array.make bucket_count 0 }
    in
    Hashtbl.add registry.histograms name h;
    h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

(* Cumulative-rank walk with linear interpolation inside the landing
   bucket, clamped to the observed [min, max] so small samples do not
   report a bucket bound no value ever reached. *)
let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int h.n in
    let rec walk i cum =
      if i >= bucket_count then h.max_v
      else
        let cum' = cum +. float_of_int h.buckets.(i) in
        if cum' >= rank && h.buckets.(i) > 0 then begin
          let lo = if i = 0 then 0.0 else bucket_bound (i - 1) in
          let hi = bucket_bound i in
          let frac =
            (rank -. cum) /. float_of_int h.buckets.(i)
          in
          let v = lo +. ((hi -. lo) *. Float.min 1.0 (Float.max 0.0 frac)) in
          Float.min h.max_v (Float.max h.min_v v)
        end
        else walk (i + 1) cum'
    in
    walk 0 0.0
  end

let reset reg =
  Hashtbl.iter (fun _ c -> c.count <- 0) reg.counters;
  Hashtbl.iter (fun _ g -> g.value <- 0.0) reg.gauges;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum <- 0.0;
      h.min_v <- infinity;
      h.max_v <- neg_infinity;
      Array.fill h.buckets 0 bucket_count 0)
    reg.histograms

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histo = {
  hs_n : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type metric =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * histo

let metric_name = function
  | Counter (n, _) | Gauge (n, _) | Histogram (n, _) -> n

let histo_of_histogram h =
  if h.n = 0 then
    { hs_n = 0; hs_sum = 0.0; hs_min = 0.0; hs_max = 0.0;
      hs_p50 = 0.0; hs_p90 = 0.0; hs_p99 = 0.0 }
  else
    {
      hs_n = h.n;
      hs_sum = h.sum;
      hs_min = h.min_v;
      hs_max = h.max_v;
      hs_p50 = quantile h 0.50;
      hs_p90 = quantile h 0.90;
      hs_p99 = quantile h 0.99;
    }

let hs_mean hs = if hs.hs_n = 0 then 0.0 else hs.hs_sum /. float_of_int hs.hs_n

(* Empty histograms are included (n = 0, zeroed stats): a consumer can
   tell "no samples yet" from "metric missing". *)
let snapshot reg =
  let cs =
    Hashtbl.fold (fun _ c acc -> Counter (c.c_name, c.count) :: acc)
      reg.counters []
  in
  let gs =
    Hashtbl.fold (fun _ g acc -> Gauge (g.g_name, g.value) :: acc)
      reg.gauges []
  in
  let hs =
    Hashtbl.fold
      (fun _ h acc -> Histogram (h.h_name, histo_of_histogram h) :: acc)
      reg.histograms []
  in
  List.sort (fun a b -> compare (metric_name a) (metric_name b)) (cs @ gs @ hs)

let json_of_metrics metrics =
  let buf = Buffer.create 512 in
  let fields =
    List.map
      (fun m ->
        match m with
        | Counter (n, v) ->
          Printf.sprintf "\"%s\": %d" (Obs.json_escape n) v
        | Gauge (n, v) ->
          Printf.sprintf "\"%s\": %s" (Obs.json_escape n) (Obs.json_float v)
        | Histogram (n, h) ->
          Printf.sprintf
            "\"%s\": {\"n\": %d, \"mean\": %s, \"min\": %s, \"max\": %s, \
             \"p50\": %s, \"p90\": %s, \"p99\": %s}"
            (Obs.json_escape n) h.hs_n
            (Obs.json_float (hs_mean h))
            (Obs.json_float h.hs_min) (Obs.json_float h.hs_max)
            (Obs.json_float h.hs_p50) (Obs.json_float h.hs_p90)
            (Obs.json_float h.hs_p99))
      metrics
  in
  Buffer.add_string buf "{";
  Buffer.add_string buf (String.concat ", " fields);
  Buffer.add_string buf "}";
  Buffer.contents buf

let to_json reg = json_of_metrics (snapshot reg)

let pp_metrics ppf metrics =
  List.iter
    (fun m ->
      match m with
      | Counter (n, v) -> Fmt.pf ppf "%-32s %d@." n v
      | Gauge (n, v) -> Fmt.pf ppf "%-32s %g@." n v
      | Histogram (n, h) ->
        Fmt.pf ppf
          "%-32s n=%d mean=%.1f min=%g max=%g p50=%g p90=%g p99=%g@." n
          h.hs_n (hs_mean h) h.hs_min h.hs_max h.hs_p50 h.hs_p90 h.hs_p99)
    metrics

let pp ppf reg = pp_metrics ppf (snapshot reg)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Dots become underscores; histograms render summary-style with
   quantile labels plus _sum and _count; counters get the _total
   suffix the convention expects. *)
let prom_name n =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    n

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 9e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus_of_metrics metrics =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      match m with
      | Counter (n, v) ->
        let n = prom_name n in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s_total counter\n%s_total %d\n" n n v)
      | Gauge (n, v) ->
        let n = prom_name n in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (prom_float v))
      | Histogram (n, h) ->
        let n = prom_name n in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
        List.iter
          (fun (q, v) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (prom_float v)))
          [ ("0.5", h.hs_p50); ("0.9", h.hs_p90); ("0.99", h.hs_p99) ];
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n%s_count %d\n" n (prom_float h.hs_sum)
             n h.hs_n))
    metrics;
  Buffer.contents buf

let to_prometheus reg = prometheus_of_metrics (snapshot reg)
