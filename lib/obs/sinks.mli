(** Sink implementations for {!Obs}: human-readable text, JSON-lines,
    Chrome trace-event format, and an in-memory recorder. *)

type format = Text | Jsonl | Chrome

val format_of_string : string -> format option
val format_name : format -> string

val memory : unit -> Obs.sink * (unit -> Obs.event list)
(** A recording sink and a function returning the events recorded so
    far, oldest first. *)

val text : out_channel -> Obs.sink
(** Indented human-readable lines, one per event. *)

val jsonl : out_channel -> Obs.sink
(** One Chrome-style trace event object per line. *)

val chrome : out_channel -> Obs.sink
(** Buffers all events and writes one [{"traceEvents": [...]}]
    document on close; loadable in chrome://tracing and Perfetto. *)

val json_of_event : Obs.event -> string

val json_lines_of_event : Obs.event -> string list
(** The event's JSON object plus the Chrome flow records (ph ["s"] /
    ["f"]) a span Begin implies — one line each, the shape the JSONL
    sink writes.  Flow records are what draw cross-process arrows once
    traces from several processes are merged. *)

val chrome_json_of_events :
  ?lane_names:(int * string) list -> Obs.event list -> string
(** The Chrome envelope over pre-built events; [lane_names] adds
    thread-name metadata for the given tids (used to label
    per-machine lanes of a {e schedule}). *)

val locked : Obs.sink -> Obs.sink
(** Serialize [emit]/[close] behind a mutex.  {!Obs.emit} already
    serialises all emission process-wide, so this is only needed for
    sinks driven directly; kept for compatibility. *)

val of_format : format -> out_channel -> Obs.sink

val to_file : format:format -> string -> Obs.sink
(** Opens the file now; closing the sink closes the file. *)
