(** Structured tracing for the flow engine.

    Instrumentation sites emit {!event}s into one process-wide
    {!sink}.  With no sink installed (the default) every helper is a
    single branch, so disabled tracing is free and leaves engine
    behaviour byte-identical.

    Sinks are not thread-safe; the engine emits only from the domain
    that owns the store (parallel execution commits sequentially). *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attrs = (string * value) list

type kind =
  | Begin               (** span opens; balanced by [End] *)
  | End
  | Complete of float   (** caller-measured span: duration in us *)
  | Instant
  | Sample of float     (** counter/gauge sample *)

type event = {
  kind : kind;
  name : string;
  cat : string;    (** coarse subsystem: engine, store, history, ... *)
  ts_us : float;   (** wall clock, us since the sink was installed *)
  logical : int;   (** engine logical clock; -1 when not applicable *)
  tid : int;       (** lane: simulated machine, domain, ... *)
  attrs : attrs;
}

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

val null_sink : sink

val enabled : unit -> bool
(** Is a sink installed?  The one branch disabled tracing costs. *)

val set_sink : sink -> unit
(** Install the process-wide sink (closing any previous one) and reset
    the trace clock. *)

val clear_sink : unit -> unit
(** Remove and close the current sink, if any. *)

val now_us : unit -> float
(** Wall-clock microseconds since the sink was installed. *)

val emit : event -> unit

val event :
  ?cat:string -> ?logical:int -> ?tid:int -> ?attrs:attrs ->
  kind -> string -> event
(** Build an event stamped with {!now_us}. *)

val span_begin :
  ?cat:string -> ?logical:int -> ?tid:int -> ?attrs:attrs -> string -> unit

val span_end :
  ?cat:string -> ?logical:int -> ?tid:int -> ?attrs:attrs -> string -> unit

val complete :
  ?cat:string -> ?logical:int -> ?tid:int -> ?attrs:attrs ->
  dur_us:float -> string -> unit
(** A caller-measured duration: one self-contained span event. *)

val instant :
  ?cat:string -> ?logical:int -> ?tid:int -> ?attrs:attrs -> string -> unit

val sample : ?cat:string -> ?logical:int -> ?tid:int -> string -> float -> unit

val with_span :
  ?cat:string -> ?logical:int -> ?tid:int -> ?attrs:attrs ->
  string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span; the [End] event is emitted even when
    the thunk raises. *)

(** {1 JSON helpers} (shared by sinks, metrics and schedule export) *)

val json_escape : string -> string
val json_float : float -> string
val json_of_value : value -> string
val pp_value : Format.formatter -> value -> unit
