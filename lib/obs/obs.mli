(** Structured tracing for the flow engine and the serving stack.

    Instrumentation sites emit {!event}s into one process-wide
    {!sink}.  With no sink installed (the default) every helper is a
    single branch, so disabled tracing is free and leaves engine
    behaviour byte-identical.

    Emission is serialised by an internal mutex: sinks may be driven
    from any thread (server connection threads, the writer thread, the
    replication sender) without their own locking.

    Events may carry a {!span_ctx} — a trace id shared across
    processes plus span/parent ids forming a tree.  The current
    context is tracked per thread; {!with_span} pushes a child context
    for its thunk, and {!span_ctx_to_token}/{!span_ctx_of_token} carry
    a context across a socket in a compact header token. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type attrs = (string * value) list

type kind =
  | Begin               (** span opens; balanced by [End] *)
  | End
  | Complete of float   (** caller-measured span: duration in us *)
  | Instant
  | Sample of float     (** counter/gauge sample *)

type span_ctx = {
  trace_id : string;  (** 16 lowercase hex digits, shared by the trace *)
  span_id : int;      (** nonzero, unique within the trace *)
  parent_id : int;    (** 0 for a root span *)
}

type event = {
  kind : kind;
  name : string;
  cat : string;    (** coarse subsystem: engine, store, server, ... *)
  ts_us : float;   (** absolute wall clock, us since the Unix epoch *)
  logical : int;   (** engine logical clock; -1 when not applicable *)
  tid : int;       (** lane: simulated machine, domain, connection, ... *)
  span : span_ctx option;
  attrs : attrs;
}

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

val null_sink : sink

val enabled : unit -> bool
(** Is a sink installed?  The one branch disabled tracing costs. *)

val set_sink : sink -> unit
(** Install the process-wide sink (closing any previous one). *)

val clear_sink : unit -> unit
(** Remove and close the current sink, if any. *)

val now_us : unit -> float
(** Absolute wall-clock microseconds (since the Unix epoch), so traces
    from different processes share one timeline. *)

val emit : event -> unit
(** Hand an event to the sink (serialised; safe from any thread). *)

val event :
  ?cat:string -> ?logical:int -> ?tid:int -> ?span:span_ctx ->
  ?attrs:attrs -> kind -> string -> event
(** Build an event stamped with {!now_us}.  [?span] defaults to the
    calling thread's current context. *)

(** {1 Span identity} *)

val fresh_trace_id : unit -> string
(** A random 16-hex-digit trace id (process-unique seeding). *)

val fresh_span_id : unit -> int
(** A random nonzero span id. *)

val new_root : unit -> span_ctx
(** A fresh root context: new trace, no parent. *)

val child_of : span_ctx -> span_ctx
(** A fresh span in the parent's trace. *)

val current_span : unit -> span_ctx option
(** The calling thread's current span context, if any. *)

val set_current_span : span_ctx option -> unit
(** Install (or clear, with [None]) the calling thread's context —
    used when a queued job resumes on another thread. *)

val with_current_span : span_ctx -> (unit -> 'a) -> 'a
(** Run the thunk with the given context installed for this thread,
    restoring the previous one afterwards (even on raise). *)

val span_ctx_to_token : span_ctx -> string
(** Wire form: [t=<trace_id>.<span_id-hex>] — fits a frame header. *)

val span_ctx_of_token : string -> span_ctx option
(** Parse the wire form; the result has [parent_id = 0] and the
    receiver parents its own spans under [span_id].  [None] on
    malformed input. *)

(** {1 Emission helpers} *)

val span_begin :
  ?cat:string -> ?logical:int -> ?tid:int -> ?span:span_ctx ->
  ?attrs:attrs -> string -> unit

val span_end :
  ?cat:string -> ?logical:int -> ?tid:int -> ?span:span_ctx ->
  ?attrs:attrs -> string -> unit

val complete :
  ?cat:string -> ?logical:int -> ?tid:int -> ?span:span_ctx ->
  ?attrs:attrs -> dur_us:float -> string -> unit
(** A caller-measured duration: one self-contained span event. *)

val instant :
  ?cat:string -> ?logical:int -> ?tid:int -> ?span:span_ctx ->
  ?attrs:attrs -> string -> unit

val sample : ?cat:string -> ?logical:int -> ?tid:int -> string -> float -> unit

val with_span :
  ?cat:string -> ?logical:int -> ?tid:int -> ?parent:span_ctx ->
  ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span; the [End] event is emitted even when
    the thunk raises.  When tracing is enabled the span gets a fresh
    context — a child of [?parent] if given, else of the thread's
    current span, else a new root — installed as the thread's current
    context for the thunk's extent. *)

(** {1 JSON helpers} (shared by sinks, metrics and schedule export) *)

val json_escape : string -> string
val json_float : float -> string
val json_of_value : value -> string
val pp_value : Format.formatter -> value -> unit
