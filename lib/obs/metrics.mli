(** A process-wide metrics registry: named counters, gauges and
    histograms.

    Counters are always on -- an increment is one mutable int bump.
    Call sites cache the handle in a module-level binding; {!reset}
    zeroes metrics in place, so cached handles survive a reset.

    Histograms use fixed log-linear buckets (8 sub-buckets per
    power-of-two octave, 256 buckets total) so p50/p90/p99 read out
    with ~9% worst-case relative error at a fixed footprint. *)

type counter
type gauge
type histogram

type t
(** A registry. *)

val create : unit -> t

val global : t
(** The registry the standard engine metrics live in
    ([engine.executed], [store.puts], ...). *)

val counter : ?registry:t -> string -> counter
(** Find or create; [registry] defaults to {!global}. *)

val incr : ?by:int -> counter -> unit
val count : counter -> int

val gauge : ?registry:t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

val histogram : ?registry:t -> string -> histogram
val observe : histogram -> float -> unit
val mean : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: linear interpolation inside the
    landing bucket, clamped to the observed min/max.  0 when empty. *)

val reset : t -> unit
(** Zero every metric in place (handles stay valid). *)

(** {1 Snapshots} *)

type histo = {
  hs_n : int;
  hs_sum : float;
  hs_min : float;    (** 0 when [hs_n = 0] *)
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type metric =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * histo

val metric_name : metric -> string
val hs_mean : histo -> float

val snapshot : t -> metric list
(** Sorted by name; empty histograms are {e included} with [hs_n = 0]
    and zeroed stats so consumers can tell "no samples" from "metric
    missing". *)

val json_of_metrics : metric list -> string
val to_json : t -> string
(** One flat JSON object: counters and gauges as numbers, histograms
    as [{"n", "mean", "min", "max", "p50", "p90", "p99"}] objects. *)

val prometheus_of_metrics : metric list -> string
val to_prometheus : t -> string
(** Prometheus text exposition: counters as [<name>_total], gauges
    plain, histograms summary-style with [quantile] labels plus
    [_sum]/[_count].  Dots in names become underscores. *)

val pp_metrics : Format.formatter -> metric list -> unit
val pp : Format.formatter -> t -> unit
