(** A process-wide metrics registry: named counters, gauges and
    histograms.

    Counters are always on -- an increment is one mutable int bump.
    Call sites cache the handle in a module-level binding; {!reset}
    zeroes metrics in place, so cached handles survive a reset. *)

type counter
type gauge
type histogram

type t
(** A registry. *)

val create : unit -> t

val global : t
(** The registry the standard engine metrics live in
    ([engine.executed], [store.puts], ...). *)

val counter : ?registry:t -> string -> counter
(** Find or create; [registry] defaults to {!global}. *)

val incr : ?by:int -> counter -> unit
val count : counter -> int

val gauge : ?registry:t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

val histogram : ?registry:t -> string -> histogram
val observe : histogram -> float -> unit
val mean : histogram -> float

val reset : t -> unit
(** Zero every metric in place (handles stay valid). *)

(** {1 Snapshots} *)

type metric =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * int * float * float * float
      (** name, n, mean, min, max *)

val snapshot : t -> metric list
(** Sorted by name; empty histograms are omitted. *)

val to_json : t -> string
(** One flat JSON object: counters and gauges as numbers, histograms
    as [{"n", "mean", "min", "max"}] objects. *)

val pp : Format.formatter -> t -> unit
