(* A durable write-ahead log for the design database.

   Layout of a database directory:

     snapshot.ddf   full workspace (Workspace_file format), optional
     wal.ddf        framed log entries appended since the snapshot
     base.ddf       sequence number folded into the snapshot

   Each log frame is

     J1 <payload-bytes> <md5-hex>\n
     <payload>\n

   where <payload> is one s-expression:

     (put (iid N) (clock C) (entity E) (hash H) (meta M) (value V))
     (note (iid N) (meta M))
     (record (clock C) R)               ; R as in Workspace_file
     (conflict (clock C) (id N) (base B) (ours O) (theirs T)
               (origin S) (at A))       ; sync divergence registered
     (resolve (clock C) (id N) (winner W))

   The frame header makes entries self-delimiting and the checksum
   makes a torn tail (crash mid-append) detectable: recovery truncates
   the log at the last complete frame and replays the rest.  Entries
   carry the engine's logical clock so replay restores it exactly;
   counters (next iid / next rid) are restored through the stores'
   [tick] accessors.

   Sequence numbers.  Every entry ever journaled has a global sequence
   number: the snapshot covers entries 1..base (persisted in base.ddf,
   0 when absent), the wal holds base+1..seq.  Seqnos are not written
   into the frames — the i-th wal frame is entry base+i — so the disk
   format is unchanged; they exist so a replication stream can name
   frames exactly ([entries_since], [apply], the frame observer). *)

open Ddf_store
open Ddf_history
module S = Ddf_persist.Sexp
module W = Ddf_persist.Workspace_file
module Codec = Ddf_persist.Codec
module Cement = Ddf_cement.Cement

exception Journal_error = Ddf_core.Error.Ddf_error
(* Deprecated alias: the journal raises the shared typed error now. *)

module Fault = Ddf_fault.Fault

let journal_errorf ?(code = `Internal) fmt = Ddf_core.Error.errorf code fmt

let m_appends = Ddf_obs.Metrics.counter "journal.appends"
let m_replayed = Ddf_obs.Metrics.counter "journal.replayed_entries"
let m_compactions = Ddf_obs.Metrics.counter "journal.compactions"
let m_torn = Ddf_obs.Metrics.counter "journal.torn_tails"
let m_syncs = Ddf_obs.Metrics.counter "journal.syncs"
let h_batch = Ddf_obs.Metrics.histogram "journal.group_commit_batch"
let h_compact = Ddf_obs.Metrics.histogram "journal.compact_seconds"

(* When is an entry durable?
     [Always] - fsync inside every append: an entry is on disk before
       the caller proceeds.  Safest, one disk flush per write.
     [Group]  - appends only flush to the OS; durability happens at the
       next [sync], which fsyncs once for every entry buffered since
       the previous one (classic WAL group commit).  The design server
       drains its write queue in batches and syncs once per batch, so
       a write is acknowledged only after its batch is durable.
     [Never]  - no fsync at all, for replay-only followers and
       benchmark scaffolding: a machine crash may lose the tail, a
       clean process exit loses nothing. *)
type sync_mode = Always | Group | Never

let sync_mode_of_string = function
  | "always" -> Some Always
  | "group" -> Some Group
  | "none" | "never" -> Some Never
  | _ -> None

let sync_mode_to_string = function
  | Always -> "always"
  | Group -> "group"
  | Never -> "none"

type t = {
  j_dir : string;
  j_ctx : Ddf_exec.Engine.context;
  j_registry : Ddf_tools.Encapsulation.registry option;
  mutable j_oc : out_channel;        (* wal.ddf, append mode *)
  mutable j_entries : int;           (* entries since the snapshot *)
  mutable j_base : int;              (* seq folded into the snapshot *)
  mutable j_seq : int;               (* seq of the last entry = base + entries *)
  j_truncated : int;                 (* torn-tail bytes dropped on open *)
  mutable j_closed : bool;
  mutable j_failed : string option;  (* fail-stop reason, sticky until reopen *)
  mutable j_frame_obs : (int -> string -> unit) option;
  compact_every : int;
  mutable j_sync_mode : sync_mode;
  mutable j_pending : int;           (* entries since the last durability point *)
  j_cement_enabled : bool;
  mutable j_cement : Cement.t option;  (* opened lazily on first fold *)
}

let context j = j.j_ctx
let dir j = j.j_dir
let entries_since_snapshot j = j.j_entries
let truncated_on_open j = j.j_truncated
let seq j = j.j_seq
let base_seq j = j.j_base

let set_frame_observer j f = j.j_frame_obs <- Some f
let clear_frame_observer j = j.j_frame_obs <- None

let sync_mode j = j.j_sync_mode
let set_sync_mode j m = j.j_sync_mode <- m
let failed j = j.j_failed

let m_failures = Ddf_obs.Metrics.counter "journal.failures"

(* A write-path failure (fsync error, short write, injected fault)
   fail-stops the journal: the wal's good prefix stays intact and every
   later append/sync/compact refuses with [`Unavailable].  Continuing
   to append past a failed or torn frame would bury it mid-log, and
   recovery truncates at the FIRST bad frame — acknowledged entries
   after it would silently vanish.  Fail-stop makes that impossible:
   un-acked writes error out, acked ones stay replayable. *)
let fail_stop j e =
  if j.j_failed = None then begin
    j.j_failed <- Some (Printexc.to_string e);
    Ddf_obs.Metrics.incr m_failures
  end;
  raise e

let check_writable j =
  match j.j_failed with
  | Some reason ->
    journal_errorf ~code:`Unavailable "journal failed (fail-stop): %s" reason
  | None -> ()

let snapshot_path dir = Filename.concat dir "snapshot.ddf"
let wal_path dir = Filename.concat dir "wal.ddf"
let base_path dir = Filename.concat dir "base.ddf"
let cemented_dir dir = Filename.concat dir "cemented"

let snapshot_file j = snapshot_path j.j_dir

(* The base seqno is a tiny self-checking text file, written atomically
   (tmp + rename) so a crash leaves either the old or the new base. *)
let read_base dir =
  if not (Sys.file_exists (base_path dir)) then 0
  else
    let ic = open_in_bin (base_path dir) in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ "B1"; n ] -> (
      match int_of_string_opt n with
      | Some b when b >= 0 -> b
      | Some _ | None -> journal_errorf "base.ddf: bad sequence %S" n)
    | _ -> journal_errorf "base.ddf: malformed (%S)" line

let write_base dir base =
  let tmp = base_path dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "B1 %d\n" base;
     flush oc;
     (* an fsync failure here must fail the caller: renaming a base
        that may not be on disk would report durability that didn't
        happen *)
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (base_path dir)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let write_frame oc payload =
  let frame =
    Printf.sprintf "J1 %d %s\n%s\n" (String.length payload)
      (Digest.to_hex (Digest.string payload))
      payload
  in
  (match Fault.check "journal.torn_write" with
  | Some (Fault.Torn k) ->
    (* a crash mid-append: only a prefix of the frame reaches the file *)
    output_string oc (String.sub frame 0 (min k (String.length frame)));
    flush oc;
    raise (Fault.Injected "journal.torn_write")
  | Some Fault.Fail -> raise (Fault.Injected "journal.torn_write")
  | Some (Fault.Delay _) | None -> output_string oc frame);
  flush oc

(* Read one frame; [None] cleanly at end of file.  A short, malformed
   or checksum-failing frame raises [Torn] with the offset where the
   good prefix ends. *)
exception Torn of int

let read_frame ic =
  let start = pos_in ic in
  match input_line ic with
  | exception End_of_file -> None
  | header ->
    (match String.split_on_char ' ' header with
    | [ "J1"; len; digest ] ->
      let len =
        match int_of_string_opt len with
        | Some n when n >= 0 -> n
        | Some _ | None -> raise (Torn start)
      in
      let payload =
        try really_input_string ic (len + 1) with End_of_file -> raise (Torn start)
      in
      if payload.[len] <> '\n' then raise (Torn start);
      let payload = String.sub payload 0 len in
      if Digest.to_hex (Digest.string payload) <> digest then raise (Torn start);
      Some payload
    | _ -> raise (Torn start))

(* ------------------------------------------------------------------ *)
(* Entry codec                                                         *)
(* ------------------------------------------------------------------ *)

let put_to_sexp ~clock (inst : Ddf_data.value Store.instance) value =
  S.list
    [ S.atom "put"; S.field "iid" [ S.int inst.Store.iid ];
      S.field "clock" [ S.int clock ];
      S.field "entity" [ S.atom inst.Store.entity ];
      S.field "hash" [ S.atom inst.Store.data_hash ];
      S.field "meta" [ W.meta_to_sexp inst.Store.meta ];
      S.field "value" [ Codec.value_to_sexp value ] ]

let note_to_sexp (inst : Ddf_data.value Store.instance) =
  S.list
    [ S.atom "note"; S.field "iid" [ S.int inst.Store.iid ];
      S.field "meta" [ W.meta_to_sexp inst.Store.meta ] ]

let record_to_sexp ~clock r =
  S.list
    [ S.atom "record"; S.field "clock" [ S.int clock ]; W.record_to_sexp r ]

let conflict_to_sexp ~clock (c : History.conflict) =
  S.list
    [ S.atom "conflict"; S.field "clock" [ S.int clock ];
      S.field "id" [ S.int c.History.cid ];
      S.field "base" [ S.int c.History.c_base ];
      S.field "ours" [ S.int c.History.c_ours ];
      S.field "theirs" [ S.int c.History.c_theirs ];
      S.field "origin" [ S.atom c.History.c_origin ];
      S.field "at" [ S.int c.History.c_at ] ]

let resolve_to_sexp ~clock (c : History.conflict) winner =
  S.list
    [ S.atom "resolve"; S.field "clock" [ S.int clock ];
      S.field "id" [ S.int c.History.cid ];
      S.field "winner" [ S.int winner ] ]

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* [lenient] makes replay idempotent: an entry whose effect is already
   present (same instance/record/conflict with identical content) is
   skipped instead of raising "log out of order".  Only [replay_wal]
   passes it — a crash inside [compact] between the snapshot rename and
   the base.ddf write leaves a NEW snapshot with the OLD base and a
   full wal, so restart replays entries the snapshot already folded in.
   Divergent content under a replayed id still errors: leniency covers
   exact re-application, never conflicting history.

   Returns whether the entry changed anything: [false] means its whole
   effect was already present.  A wal whose every entry replays as
   [false] is a leftover from an interrupted compaction — [open_] uses
   that signal (confirmed against the cement watermark) to finish the
   truncation instead of double-counting the frames. *)
let replay_entry ?(lenient = false) ctx payload =
  let sexp =
    try S.of_string payload
    with S.Sexp_error m -> journal_errorf "log entry: %s" m
  in
  let store = ctx.Ddf_exec.Engine.store in
  match S.as_list sexp with
  | S.Atom "put" :: fields ->
    let iid = S.as_int (S.one "iid" (S.find_field fields "iid")) in
    let clock = S.as_int (S.one "clock" (S.find_field fields "clock")) in
    let entity = S.as_atom (S.one "entity" (S.find_field fields "entity")) in
    let stored_hash = S.as_atom (S.one "hash" (S.find_field fields "hash")) in
    let meta = W.meta_of_sexp (S.one "meta" (S.find_field fields "meta")) in
    let value =
      try Codec.value_of_sexp (S.one "value" (S.find_field fields "value"))
      with Codec.Codec_error m -> journal_errorf "entry for #%d: %s" iid m
    in
    let hash = Ddf_data.hash value in
    if hash <> stored_hash then
      journal_errorf "instance %d: content hash mismatch (log corrupt?)" iid;
    let applied =
      if lenient && Store.mem store iid then begin
        let inst = Store.find store iid in
        if inst.Store.entity <> entity || inst.Store.data_hash <> hash then
          journal_errorf
            "instance %d already present with different content (log \
             corrupt?)"
            iid;
        false
      end
      else begin
        let got = Store.put store ~entity ~hash ~meta value in
        if got <> iid then
          journal_errorf "log out of order: instance %d replayed as %d" iid
            got;
        true
      end
    in
    ctx.Ddf_exec.Engine.clock <- max ctx.Ddf_exec.Engine.clock clock;
    applied
  | S.Atom "note" :: fields ->
    let iid = S.as_int (S.one "iid" (S.find_field fields "iid")) in
    let meta = W.meta_of_sexp (S.one "meta" (S.find_field fields "meta")) in
    if not (Store.mem store iid) then
      journal_errorf "annotation of unknown instance %d" iid;
    let inst = Store.find store iid in
    if
      lenient
      && inst.Store.meta.Store.label = meta.Store.label
      && inst.Store.meta.Store.comment = meta.Store.comment
      && inst.Store.meta.Store.keywords = meta.Store.keywords
    then false
    else begin
      Store.annotate store iid ~label:meta.Store.label
        ~comment:meta.Store.comment ~keywords:meta.Store.keywords ();
      true
    end
  | [ S.Atom "record"; clock_field; r ] ->
    let clock =
      match clock_field with
      | S.List [ S.Atom "clock"; c ] -> S.as_int c
      | _ -> journal_errorf "malformed record entry"
    in
    let p =
      try W.record_of_sexp r
      with W.Persist_error m -> journal_errorf "record entry: %s" m
    in
    let history = ctx.Ddf_exec.Engine.history in
    let applied =
      if lenient && p.W.rp_rid < History.tick history then begin
        (* raises if the claimed record was never actually replayed *)
        ignore (History.find history p.W.rp_rid);
        false
      end
      else begin
        let r =
          History.add history ~task_entity:p.W.rp_task_entity
            ~tool:p.W.rp_tool ~inputs:p.W.rp_inputs ~outputs:p.W.rp_outputs
            ~at:p.W.rp_at
        in
        if r.History.rid <> p.W.rp_rid then
          journal_errorf "log out of order: record %d replayed as %d"
            p.W.rp_rid r.History.rid;
        true
      end
    in
    ctx.Ddf_exec.Engine.clock <- max ctx.Ddf_exec.Engine.clock clock;
    applied
  | S.Atom "conflict" :: fields ->
    let int_f name = S.as_int (S.one name (S.find_field fields name)) in
    let clock = int_f "clock" in
    let cid = int_f "id" in
    let history = ctx.Ddf_exec.Engine.history in
    let applied =
      if lenient && cid < History.conflict_tick history then begin
        ignore (History.find_conflict history cid);
        false
      end
      else begin
        let c =
          History.add_conflict history ~base:(int_f "base")
            ~ours:(int_f "ours") ~theirs:(int_f "theirs")
            ~origin:(S.as_atom (S.one "origin" (S.find_field fields "origin")))
            ~at:(int_f "at")
        in
        if c.History.cid <> cid then
          journal_errorf "log out of order: conflict %d replayed as %d" cid
            c.History.cid;
        true
      end
    in
    ctx.Ddf_exec.Engine.clock <- max ctx.Ddf_exec.Engine.clock clock;
    applied
  | S.Atom "resolve" :: fields ->
    let int_f name = S.as_int (S.one name (S.find_field fields name)) in
    let clock = int_f "clock" in
    let cid = int_f "id" in
    let winner = int_f "winner" in
    let history = ctx.Ddf_exec.Engine.history in
    let already =
      lenient
      && (match History.find_conflict history cid with
         | c -> c.History.c_winner = Some winner
         | exception _ -> false)
    in
    if not already then
      ignore (History.resolve_conflict history cid ~winner);
    ctx.Ddf_exec.Engine.clock <- max ctx.Ddf_exec.Engine.clock clock;
    not already
  | _ -> journal_errorf "unknown log entry kind"

(* ------------------------------------------------------------------ *)
(* Observers: the live write path                                      *)
(* ------------------------------------------------------------------ *)

(* One durability point: fsync the wal and record how many entries the
   flush covered (the group-commit batch size). *)
let fsync_now j =
  let t0 = Unix.gettimeofday () in
  let batch = j.j_pending in
  flush j.j_oc;
  Fault.fire "journal.fsync";
  Unix.fsync (Unix.descr_of_out_channel j.j_oc);
  Ddf_obs.Metrics.incr m_syncs;
  if j.j_pending > 0 then
    Ddf_obs.Metrics.observe h_batch (float_of_int j.j_pending);
  j.j_pending <- 0;
  (* inherits the writer thread's current span, so the fsync shows up
     inside the write job (or batch-sync span) that forced it *)
  if Ddf_obs.Obs.enabled () then
    Ddf_obs.Obs.complete ~cat:"journal"
      ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6)
      ~attrs:[ ("batch", Ddf_obs.Obs.Int batch) ]
      "journal.fsync"

let append j payload =
  if not j.j_closed then begin
    check_writable j;
    (match
       write_frame j.j_oc payload;
       j.j_entries <- j.j_entries + 1;
       j.j_seq <- j.j_seq + 1;
       j.j_pending <- j.j_pending + 1;
       Ddf_obs.Metrics.incr m_appends;
       if j.j_sync_mode = Always then fsync_now j
     with
    | () -> ()
    | exception e -> fail_stop j e);
    (* written first, then shipped: the frame observer (the replication
       fan-out) sees an entry only after the local wal has it — on disk
       in [Always] mode, flushed to the OS in [Group]/[Never] (the
       entry becomes durable at the batch's [sync]) *)
    match j.j_frame_obs with
    | Some f -> f j.j_seq payload
    | None -> ()
  end

let attach j =
  let ctx = j.j_ctx in
  Store.set_observer ctx.Ddf_exec.Engine.store (function
    | Store.Put (inst, value) ->
      append j
        (S.to_string (put_to_sexp ~clock:ctx.Ddf_exec.Engine.clock inst value))
    | Store.Annotated inst -> append j (S.to_string (note_to_sexp inst)));
  History.set_observer ctx.Ddf_exec.Engine.history (fun r ->
      append j
        (S.to_string (record_to_sexp ~clock:ctx.Ddf_exec.Engine.clock r)));
  History.set_conflict_observer ctx.Ddf_exec.Engine.history (fun ev ->
      let clock = ctx.Ddf_exec.Engine.clock in
      match ev with
      | History.Conflict_added c ->
        append j (S.to_string (conflict_to_sexp ~clock c))
      | History.Conflict_resolved c ->
        let winner = Option.get c.History.c_winner in
        append j (S.to_string (resolve_to_sexp ~clock c winner)))

let detach j =
  Store.clear_observer j.j_ctx.Ddf_exec.Engine.store;
  History.clear_observer j.j_ctx.Ddf_exec.Engine.history;
  History.clear_conflict_observer j.j_ctx.Ddf_exec.Engine.history

(* ------------------------------------------------------------------ *)
(* Open / close / compaction                                           *)
(* ------------------------------------------------------------------ *)

let fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Directory fsync: a rename is only durable once the directory entry
   itself reaches disk — without this, a power cut after [compact] or
   [reset_to_snapshot] can resurrect the pre-rename snapshot/base.
   Real I/O errors are swallowed (the fsync is belt-and-braces on
   filesystems that journal renames anyway), but the
   [journal.dir_fsync] crash point fires through so the fault sweep
   can kill the process exactly here. *)
let fsync_dir dir =
  Fault.fire "journal.dir_fsync";
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let sync j =
  if not j.j_closed then begin
    check_writable j;
    match
      flush j.j_oc;
      if j.j_pending > 0 then
        match j.j_sync_mode with
        | Never ->
          j.j_pending <- 0 (* no durability point, just bound the count *)
        | Always | Group -> fsync_now j
    with
    | () -> ()
    | exception e -> fail_stop j e
  end

(* Replay wal.ddf into [ctx]; returns (entries, torn-tail bytes
   dropped, entries that actually applied something new).  The file is
   truncated at the first torn frame.  [applied] = 0 with entries > 0
   means the snapshot already held everything — the signal [open_]
   uses to detect a compaction that crashed between its base write and
   its wal truncation. *)
let replay_wal ctx path =
  if not (Sys.file_exists path) then (0, 0, 0)
  else begin
    let ic = open_in_bin path in
    let total = in_channel_length ic in
    let entries = ref 0 in
    let applied = ref 0 in
    let good_end =
      let rec go () =
        match read_frame ic with
        | None -> pos_in ic
        | Some payload ->
          (* lenient: a crash inside [compact] can leave a snapshot
             that already folded in a prefix of this wal *)
          if replay_entry ~lenient:true ctx payload then incr applied;
          incr entries;
          Ddf_obs.Metrics.incr m_replayed;
          go ()
      in
      try go () with Torn at -> at
    in
    close_in ic;
    let torn = total - good_end in
    if torn > 0 then begin
      Ddf_obs.Metrics.incr m_torn;
      Unix.truncate path good_end
    end;
    (!entries, torn, !applied)
  end

(* ------------------------------------------------------------------ *)
(* Tiered cold storage (the cement store)                              *)
(* ------------------------------------------------------------------ *)

(* The cement handle, opened lazily: a database that never compacts
   never creates [cemented/].  Once it exists it is reopened eagerly
   by [open_] so cold reads work before the first fold. *)
let cement_store j =
  match j.j_cement with
  | Some c -> c
  | None ->
    let c = Cement.open_ ~dir:(cemented_dir j.j_dir) in
    j.j_cement <- Some c;
    c

let cement_stats j =
  match j.j_cement with
  | None -> None
  | Some c ->
    Some
      (Cement.segment_count c, Cement.total_bytes c, Cement.first_seq c,
       Cement.last_seq c)

(* A cemented frame payload by seqno — the cold half of the log. *)
let cold_frame j seqno =
  match j.j_cement with None -> None | Some c -> Cement.read c seqno

(* The store's cold-load path: re-read an evicted payload from the
   cemented put frame that installed it.  The frame checksum was
   verified by [Cement]; the content hash is re-verified here exactly
   like live replay does. *)
let cold_put_value j iid =
  match j.j_cement with
  | None -> None
  | Some c -> (
    match Cement.find_put c ~iid with
    | None -> None
    | Some payload -> (
      let sexp =
        try S.of_string payload
        with S.Sexp_error m -> journal_errorf "cemented entry: %s" m
      in
      match S.as_list sexp with
      | S.Atom "put" :: fields ->
        let stored_hash =
          S.as_atom (S.one "hash" (S.find_field fields "hash"))
        in
        let value =
          try Codec.value_of_sexp (S.one "value" (S.find_field fields "value"))
          with Codec.Codec_error m ->
            journal_errorf "cemented entry for #%d: %s" iid m
        in
        if Ddf_data.hash value <> stored_hash then
          journal_errorf "cemented instance %d: content hash mismatch" iid;
        Some value
      | _ -> None))

let install_cold_loader j =
  if j.j_cement_enabled then
    Store.set_cold_loader j.j_ctx.Ddf_exec.Engine.store (cold_put_value j)

(* Evict resident payloads whose every owning instance can be cold-
   loaded back from cement.  Payloads are shared by content hash, so a
   hash is only droppable when ALL its owners' installing puts are
   cemented; one [Store.evict] per hash drops it for every owner.
   Returns the number of payloads evicted. *)
let evict_cold j =
  match j.j_cement with
  | None -> 0
  | Some c ->
    let store = j.j_ctx.Ddf_exec.Engine.store in
    let cold = Hashtbl.create 256 in
    Cement.iter_puts c (fun iid -> Hashtbl.replace cold iid ());
    let owners = Hashtbl.create 256 in
    (* hash -> (droppable so far, representative iid) *)
    List.iter
      (fun iid ->
        let h = Store.hash_of store iid in
        let ok = Hashtbl.mem cold iid in
        match Hashtbl.find_opt owners h with
        | None -> Hashtbl.replace owners h (ok, iid)
        | Some (all_ok, rep) -> Hashtbl.replace owners h (all_ok && ok, rep))
      (Store.all_instances store);
    let n = ref 0 in
    Hashtbl.iter
      (fun _h (all_ok, rep) ->
        if all_ok && Store.payload_resident store rep && Store.evict store rep
        then incr n)
      owners;
    !n

let open_ ?registry ?(compact_every = 10_000) ?(sync_mode = Group)
    ?(cement = true) ~dir schema =
  if compact_every < 1 then journal_errorf "compact_every must be positive";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if not (Sys.is_directory dir) then journal_errorf "%s is not a directory" dir;
  let ctx =
    if Sys.file_exists (snapshot_path dir) then
      let session =
        try W.load_file ?registry schema (snapshot_path dir)
        with W.Persist_error m -> journal_errorf "snapshot: %s" m
      in
      Ddf_session.Session.context session
    else Ddf_exec.Engine.create_context ?registry schema
  in
  let entries, torn, applied = replay_wal ctx (wal_path dir) in
  (* counters were restored by dense re-insertion; assert the ticks
     agree with the contents before trusting the database *)
  let store = ctx.Ddf_exec.Engine.store in
  if Store.tick store <> Store.instance_count store + 1 then
    journal_errorf "instance counter %d does not match %d instances"
      (Store.tick store)
      (Store.instance_count store);
  if History.tick ctx.Ddf_exec.Engine.history
     <> History.size ctx.Ddf_exec.Engine.history + 1
  then journal_errorf "record counter disagrees with the history size";
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (wal_path dir)
  in
  let base = read_base dir in
  let j =
    { j_dir = dir; j_ctx = ctx; j_registry = registry; j_oc = oc;
      j_entries = entries; j_base = base; j_seq = base + entries;
      j_truncated = torn; j_closed = false; j_failed = None;
      j_frame_obs = None; compact_every;
      j_sync_mode = sync_mode; j_pending = 0;
      j_cement_enabled = cement; j_cement = None }
  in
  (* reopen an existing cement store eagerly so cold reads (and torn-
     tail recovery on its newest segment) happen now, not mid-query *)
  if cement && Sys.file_exists (cemented_dir dir) then
    ignore (cement_store j);
  (* Crash between compact's base write and its wal truncation: replay
     proved the wal fully redundant (nothing applied) while the cement
     watermark sits exactly at the new base — so these frames are the
     pre-compaction wal, already folded into both snapshot and cement.
     Complete the interrupted truncation instead of double-counting
     them into the seqno line.  (The other crash window — snapshot
     renamed, base still old — is left alone: there the cement
     watermark equals base + entries, not base.) *)
  if applied = 0 && entries > 0 then
    (match j.j_cement with
    | Some c when Cement.last_seq c = base && base > 0 ->
      close_out j.j_oc;
      j.j_oc <-
        open_out_gen
          [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
          0o644 (wal_path dir);
      j.j_entries <- 0;
      j.j_seq <- base
    | _ -> ());
  install_cold_loader j;
  attach j;
  j

(* Wal entries with seqno > [since], as (seqno, payload) ascending.
   Reads the file back from its start (the i-th frame is entry
   base+i); callers must exclude writers so the file ends exactly at
   the last complete frame. *)
let wal_tail j since =
  flush j.j_oc;
  if not (Sys.file_exists (wal_path j.j_dir)) then []
  else begin
    let ic = open_in_bin (wal_path j.j_dir) in
    let frames = ref [] in
    let n = ref j.j_base in
    (try
       let rec go () =
         match read_frame ic with
         | None -> ()
         | Some payload ->
           incr n;
           if !n > since then frames := (!n, payload) :: !frames;
           go ()
       in
       (try go () with Torn at -> journal_errorf "wal torn mid-read at %d" at)
     with e ->
       close_in_noerr ic;
       raise e);
    close_in ic;
    List.rev !frames
  end

let compact j =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  check_writable j;
  Ddf_obs.Metrics.incr m_compactions;
  let t0 = Unix.gettimeofday () in
  (* Cement first: the wal frames about to be folded into the snapshot
     move to cold storage instead of vanishing.  [Cement.fold] is
     durable on return and skips already-cemented seqnos, so a crash
     anywhere in compact leaves fold idempotent on retry. *)
  (if j.j_cement_enabled && j.j_entries > 0 then begin
     let c = cement_store j in
     (* a cold store that stops short of the current base (cement was
        disabled for a while, or the directory was copied from another
        line) cannot be extended contiguously: start over *)
     if Cement.last_seq c <> 0 && Cement.last_seq c < j.j_base then
       Cement.clear c;
     Cement.fold c ~first:(j.j_base + 1) (wal_tail j j.j_base)
   end);
  let tmp = snapshot_path j.j_dir ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc
       (W.save (Ddf_session.Session.of_context j.j_ctx));
     fsync_oc oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (snapshot_path j.j_dir);
  write_base j.j_dir j.j_seq;
  (* one directory fsync pins BOTH renames (snapshot.ddf and base.ddf):
     without it a power cut can resurrect the old directory entries
     even though both files were themselves fsynced *)
  fsync_dir j.j_dir;
  (* the log's contents are folded into the snapshot: restart it *)
  close_out j.j_oc;
  j.j_oc <-
    open_out_gen
      [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
      0o644 (wal_path j.j_dir);
  j.j_entries <- 0;
  j.j_base <- j.j_seq;
  (* every journaled entry is folded into the fsynced snapshot: this is
     a durability point even for entries not yet fsynced in the wal *)
  j.j_pending <- 0;
  Ddf_obs.Metrics.observe h_compact (Unix.gettimeofday () -. t0)

let maybe_compact j =
  if (not j.j_closed) && j.j_entries >= j.compact_every then begin
    compact j;
    true
  end
  else false

let close j =
  if not j.j_closed then begin
    detach j;
    (* best effort: a failed (or failing) journal still closes — its
       good prefix is already safe, and close is called from shutdown
       paths that must stay idempotent *)
    (match
       match j.j_sync_mode with
       | Never -> flush j.j_oc
       | Always | Group -> if j.j_failed = None then fsync_now j else flush j.j_oc
     with
    | () -> ()
    | exception _ -> j.j_failed <- Some "fsync failed during close");
    close_out_noerr j.j_oc;
    (match j.j_cement with Some c -> Cement.close c | None -> ());
    j.j_closed <- true
  end

(* ------------------------------------------------------------------ *)
(* Replication: tailing, follower application, snapshot resync         *)
(* ------------------------------------------------------------------ *)

let m_applied = Ddf_obs.Metrics.counter "journal.replicated_applies"
let m_resyncs = Ddf_obs.Metrics.counter "journal.snapshot_resyncs"

type tail =
  | Frames of (int * string) list
  | Snapshot_needed

(* Entries with seqno > [since], read back from the on-disk wal.  The
   i-th frame of the wal is entry base+i.  Callers must exclude writers
   (the server reads the tail from its single-writer loop), so the file
   ends exactly at the last complete frame. *)
let entries_since j since =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  if since < j.j_base then Snapshot_needed
  else if since >= j.j_seq then Frames []
  else Frames (wal_tail j since)

(* Anti-entropy support: the digest a peer compares against, and exact
   frame extraction by seqno window.  Both read the wal back from disk
   (writers excluded, like [entries_since]); frames are hashed with the
   same md5 the frame header carries, so a digest mismatch means the
   histories genuinely diverge at that seqno. *)

let frame_digest payload = Digest.to_hex (Digest.string payload)

(* (seqno, md5) for every wal frame, ascending — entries base+1..seq. *)
let digest j =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  flush j.j_oc;
  if not (Sys.file_exists (wal_path j.j_dir)) then []
  else begin
    let ic = open_in_bin (wal_path j.j_dir) in
    let out = ref [] in
    let n = ref j.j_base in
    (try
       let rec go () =
         match read_frame ic with
         | None -> ()
         | Some payload ->
           incr n;
           out := (!n, frame_digest payload) :: !out;
           go ()
       in
       (try go () with Torn at -> journal_errorf "wal torn mid-read at %d" at)
     with e ->
       close_in_noerr ic;
       raise e);
    close_in ic;
    List.rev !out
  end

(* At most [limit] frames with seqno > [after], as (seqno, md5,
   payload) ascending.  Frames below the snapshot base are served from
   the cement store when it covers them (positioned reads, no replay);
   asking below both is a typed conflict: those frames are gone. *)
let rec frames j ~after ~limit =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  if limit < 0 then journal_errorf ~code:`Invalid "negative frame limit";
  if after < j.j_base then begin
    let served_cold =
      match j.j_cement with
      | Some c
        when Cement.first_seq c <> 0 && after + 1 >= Cement.first_seq c ->
        let out = ref [] in
        let taken = ref 0 in
        Cement.iter_range c ~from:(after + 1)
          ~upto:(min j.j_base (after + limit))
          (fun seqno payload ->
            if !taken < limit then begin
              incr taken;
              out := (seqno, frame_digest payload, payload) :: !out
            end);
        Some (List.rev !out)
      | Some _ | None -> None
    in
    match served_cold with
    | None ->
      journal_errorf ~code:`Conflict
        "frames before %d were compacted away (asked for > %d)" j.j_base after
    | Some cold ->
      let got = List.length cold in
      if got < limit then
        cold @ frames j ~after:j.j_base ~limit:(limit - got)
      else cold
  end
  else begin
  flush j.j_oc;
  if after >= j.j_seq || limit = 0 then []
  else begin
    let ic = open_in_bin (wal_path j.j_dir) in
    let out = ref [] in
    let taken = ref 0 in
    let n = ref j.j_base in
    (try
       let rec go () =
         if !taken < limit then
           match read_frame ic with
           | None -> ()
           | Some payload ->
             incr n;
             if !n > after then begin
               incr taken;
               out := (!n, frame_digest payload, payload) :: !out
             end;
             go ()
       in
       (try go () with Torn at -> journal_errorf "wal torn mid-read at %d" at)
     with e ->
       close_in_noerr ic;
       raise e);
    close_in ic;
    List.rev !out
  end
  end

(* A stable workspace identity for the sync fabric, minted on first
   use and persisted next to the wal.  A cloned database directory
   must shed [wsid.ddf] (like a machine-id) so the clone syncs as its
   own peer. *)
let wsid_path dir = Filename.concat dir "wsid.ddf"

let wsid j =
  let path = wsid_path j.j_dir in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ "W1"; id ] when id <> "" -> id
    | _ -> journal_errorf "wsid.ddf: malformed (%S)" line
  end
  else begin
    let id =
      Digest.to_hex
        (Digest.string
           (Printf.sprintf "%s|%d|%f|%d" j.j_dir (Unix.getpid ())
              (Unix.gettimeofday ()) (Random.bits ())))
    in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       Printf.fprintf oc "W1 %s\n" id;
       flush oc;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    id
  end

(* The full current state as a replication seed: (seqno, workspace
   save).  Like [entries_since], call this with writers excluded. *)
let snapshot_state j =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  (j.j_seq, W.save (Ddf_session.Session.of_context j.j_ctx))

(* Apply one replicated frame: replay the payload into the context and
   append the identical bytes to the local wal, so a follower's journal
   is byte-for-byte the primary's log suffix and the follower is itself
   crash-safe (and promotable).  The payload's integrity was already
   checked frame-by-frame in transit; [replay_entry] re-verifies the
   content hash and dense-id ordering on application.

   Note the clock is pre-set from the payload before the entry is
   applied, and observers stay detached during application: the bytes
   written locally are the primary's bytes, not a re-encoding (a
   re-encoding after [Store.put] would stamp a stale clock). *)
let apply j ~seq payload =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  check_writable j;
  if seq <> j.j_seq + 1 then
    journal_errorf ~code:`Conflict "replication gap: expected entry %d, got %d"
      (j.j_seq + 1) seq;
  detach j;
  (try ignore (replay_entry j.j_ctx payload : bool)
   with e ->
     attach j;
     raise e);
  attach j;
  (match
     write_frame j.j_oc payload;
     j.j_entries <- j.j_entries + 1;
     j.j_seq <- seq;
     j.j_pending <- j.j_pending + 1;
     if j.j_sync_mode = Always then fsync_now j
   with
  | () -> ()
  | exception e -> fail_stop j e);
  Ddf_obs.Metrics.incr m_applied;
  match j.j_frame_obs with
  | Some f -> f j.j_seq payload
  | None -> ()

(* Replace the whole database with a primary's snapshot (the catch-up
   path when our seqno predates the primary's oldest wal entry, e.g.
   after a primary compaction).  Disk first — snapshot.ddf via atomic
   rename, base.ddf, truncated wal — then the in-memory context is
   swapped to the freshly loaded store/history/clock in place, so
   sessions holding the context observe the new state. *)
(* Shared tail of both reset flavours, entered with the new
   snapshot.ddf already renamed into place and observers detached. *)
let finish_reset j ~seq fresh =
  write_base j.j_dir seq;
  (* one directory fsync pins both renames (snapshot + base) *)
  fsync_dir j.j_dir;
  close_out j.j_oc;
  j.j_oc <-
    open_out_gen
      [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
      0o644 (wal_path j.j_dir);
  j.j_ctx.Ddf_exec.Engine.store <- fresh.Ddf_exec.Engine.store;
  j.j_ctx.Ddf_exec.Engine.history <- fresh.Ddf_exec.Engine.history;
  j.j_ctx.Ddf_exec.Engine.clock <- fresh.Ddf_exec.Engine.clock;
  j.j_entries <- 0;
  j.j_base <- seq;
  j.j_seq <- seq;
  j.j_pending <- 0;
  (* the resync rebased the seqno line: the cemented history belongs
     to the pre-reset database and can never be extended contiguously *)
  (match j.j_cement with Some c -> Cement.clear c | None -> ());
  (* the fresh store needs the cold loader re-wired (it replaced the
     one the loader was installed on) *)
  install_cold_loader j;
  attach j

let reset_to_snapshot j ~seq data =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  Ddf_obs.Metrics.incr m_resyncs;
  let session =
    try W.load ?registry:j.j_registry j.j_ctx.Ddf_exec.Engine.schema data
    with W.Persist_error m -> journal_errorf "replication snapshot: %s" m
  in
  let fresh = Ddf_session.Session.context session in
  detach j;
  let tmp = snapshot_path j.j_dir ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc data;
     fsync_oc oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     attach j;
     raise e);
  Sys.rename tmp (snapshot_path j.j_dir);
  finish_reset j ~seq fresh

let m_stream_resyncs = Ddf_obs.Metrics.counter "journal.snapshot_stream_resyncs"

(* Move [src] over [dst] — rename when the spool shares the
   filesystem, copy-then-rename when it does not. *)
let rename_or_copy src dst =
  try Sys.rename src dst
  with Sys_error _ ->
    let ic = open_in_bin src in
    let tmp = dst ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       let buf = Bytes.create 65536 in
       let rec loop () =
         let n = input ic buf 0 (Bytes.length buf) in
         if n > 0 then begin
           output oc buf 0 n;
           loop ()
         end
       in
       loop ();
       fsync_oc oc;
       close_out oc;
       close_in ic
     with e ->
       close_out_noerr oc;
       close_in_noerr ic;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp dst;
    try Sys.remove src with Sys_error _ -> ()

(* The streaming flavour of [reset_to_snapshot]: [path] holds a
   workspace save spooled to disk in bounded chunks (a streamed
   bootstrap), so the snapshot bytes never exist as one in-memory
   string here.  The file is parsed FIRST — a malformed stream must
   not clobber the database — then fsynced and renamed into place. *)
let reset_to_snapshot_file j ~seq path =
  if j.j_closed then journal_errorf ~code:`Unavailable "journal is closed";
  Ddf_obs.Metrics.incr m_resyncs;
  Ddf_obs.Metrics.incr m_stream_resyncs;
  let session =
    try W.load_file ?registry:j.j_registry j.j_ctx.Ddf_exec.Engine.schema path
    with W.Persist_error m -> journal_errorf "replication snapshot: %s" m
  in
  let fresh = Ddf_session.Session.context session in
  detach j;
  (match
     (match Unix.openfile path [ Unix.O_RDONLY ] 0 with
     | fd ->
       (try Unix.fsync fd with Unix.Unix_error _ -> ());
       Unix.close fd
     | exception Unix.Unix_error _ -> ());
     rename_or_copy path (snapshot_path j.j_dir)
   with
  | () -> ()
  | exception e ->
    attach j;
    raise e);
  finish_reset j ~seq fresh
