(** A durable write-ahead log for the design database.

    The paper's framework is a shared, persistent design database:
    many designers work against one store and history, and the
    derivation meta-data must survive across sessions.  [Journal]
    makes an {!Ddf_exec.Engine.context} durable: every [Store.put],
    annotation and [History.add] is appended to an on-disk log
    ([wal.ddf]) as one checksummed, length-prefixed s-expression frame
    before the caller proceeds, and replaying snapshot + log
    reconstructs the context — same iids, rids, meta-data, payload
    hashes and logical clock.

    Crash safety: frames are self-delimiting with an MD5 checksum, so
    a torn tail (power cut mid-append) is detected and truncated on
    open; everything up to the last complete frame replays.  Periodic
    {!compact} folds the log into a full workspace snapshot
    ([snapshot.ddf], the {!Ddf_persist.Workspace_file} format) and
    truncates the log. *)

exception Journal_error of Ddf_core.Error.t
(** Deprecated alias of {!Ddf_core.Error.Ddf_error}: corruption and
    ordering violations are [`Internal]/[`Conflict], operations on a
    closed or failed journal are [`Unavailable]. *)

type t

type sync_mode =
  | Always  (** [fsync] inside every append: each entry is on disk
                before the caller proceeds. *)
  | Group   (** appends only flush to the OS; {!sync} makes everything
                buffered durable with one [fsync] — classic WAL group
                commit.  The default: callers choose the durability
                points. *)
  | Never   (** no [fsync] at all — for replay-only followers and
                benchmark scaffolding.  A clean close loses nothing; a
                machine crash may lose the tail. *)

val sync_mode_of_string : string -> sync_mode option
(** ["always"], ["group"], ["none"] (or ["never"]). *)

val sync_mode_to_string : sync_mode -> string

val open_ :
  ?registry:Ddf_tools.Encapsulation.registry ->
  ?compact_every:int ->
  ?sync_mode:sync_mode ->
  ?cement:bool ->
  dir:string -> Ddf_schema.Schema.t -> t
(** Open a database directory (created when missing): load
    [snapshot.ddf] if present, replay [wal.ddf] (truncating a torn
    tail), then attach write observers to the rebuilt context so
    subsequent mutations are journaled.  [compact_every] (default
    10_000) is the log-entry threshold {!maybe_compact} acts on.
    [sync_mode] (default {!Group}) sets when entries become durable.
    [cement] (default [true]) keeps compacted history in the tiered
    cold store (see the {!section-cement} section); [false] restores
    the old discard-on-compact behaviour.
    @raise Journal_error on corruption before the tail (iid/rid or
    content-hash mismatches). *)

val sync_mode : t -> sync_mode
val set_sync_mode : t -> sync_mode -> unit

val context : t -> Ddf_exec.Engine.context
(** The journaled context; mutate it only through the normal engine /
    store / history operations. *)

val dir : t -> string

val entries_since_snapshot : t -> int

val truncated_on_open : t -> int
(** Bytes of torn tail dropped by crash recovery during {!open_}. *)

val failed : t -> string option
(** Fail-stop reason, if a write-path failure (fsync error, short
    write, injected fault) poisoned the journal.  A failed journal
    refuses every later mutation with [`Unavailable] so a bad frame
    can never end up buried mid-log — recovery truncates at the first
    torn frame, and anything after it would be lost even though it was
    acknowledged.  Cleared only by reopening. *)

val sync : t -> unit
(** A durability point: flush and [fsync] the log, so everything
    journaled so far survives a machine crash.  In {!Group} mode this
    is the group commit — one [fsync] covers every entry appended
    since the previous durability point, and the batch size is
    recorded in the [journal.group_commit_batch] histogram.  In
    {!Never} mode it only flushes.  Skips the [fsync] when nothing is
    pending. *)

val compact : t -> unit
(** Write a fresh snapshot (atomically, via rename) and truncate the
    log.  With cement enabled the truncated frames are first folded
    into the cold store, so the full history stays addressable by
    seqno.  The snapshot and base renames are pinned by a directory
    fsync (crash point [journal.dir_fsync]); the whole operation is
    timed into the [journal.compact_seconds] histogram. *)

val maybe_compact : t -> bool
(** {!compact} when the log has reached [compact_every] entries;
    returns whether it did. *)

val close : t -> unit
(** Detach the observers, {!sync} and close the log.  The context
    remains usable but further writes are no longer journaled. *)

(** {1 Replication (journal shipping)}

    Every journaled entry has a global sequence number: the snapshot
    covers entries [1..base_seq] (persisted in [base.ddf]) and the wal
    holds [base_seq+1..seq].  A primary streams frames tagged with
    their seqnos; a follower applies them through its own journal, so
    its wal is byte-for-byte the primary's log suffix. *)

val seq : t -> int
(** Sequence number of the last entry journaled (applied or appended). *)

val base_seq : t -> int
(** Sequence number folded into the current snapshot. *)

val set_frame_observer : t -> (int -> string -> unit) -> unit
(** Install the single frame observer, called with [(seqno, payload)]
    after each entry reaches the local disk — the replication fan-out
    point.  Called from whichever thread performs the write. *)

val clear_frame_observer : t -> unit

type tail =
  | Frames of (int * string) list  (** [(seqno, payload)], ascending *)
  | Snapshot_needed
      (** the requested seqno predates the snapshot base: the follower
          must resync from a fresh snapshot *)

val entries_since : t -> int -> tail
(** Entries with seqno greater than the argument, read back from the
    on-disk wal.  Call with writers excluded (the design server calls
    it from its single-writer loop). *)

val snapshot_state : t -> int * string
(** The full current state as a replication seed: [(seq, workspace
    save)].  Call with writers excluded. *)

(** {1 Anti-entropy sync support}

    {!Ddf_sync} reconciles two divergent journals pairwise: each side
    publishes {!digest} (seqno → frame md5 over its wal), the common
    prefix is located by comparing digests, and exactly the missing
    frames are fetched with {!frames} and re-executed remotely.  Like
    the replication readers, call these with writers excluded. *)

val digest : t -> (int * string) list
(** [(seqno, md5)] per wal frame, ascending — entries
    [base_seq+1 .. seq].  The md5 is the frame-header checksum, so
    equal digests mean byte-identical entries. *)

val frames : t -> after:int -> limit:int -> (int * string * string) list
(** At most [limit] frames with seqno > [after], as
    [(seqno, md5, payload)] ascending.  Frames below [base_seq] are
    served from the cement store when it covers them (positioned
    reads), transparently continuing into the wal.
    @raise Journal_error ([`Conflict]) when [after] predates both the
    cemented window and [base_seq]: those frames are gone. *)

val frame_digest : string -> string
(** The md5 hex a frame header (and {!digest}) carries for a payload. *)

val wsid : t -> string
(** This database directory's stable workspace identity, minted on
    first use and persisted in [wsid.ddf].  Clones of a directory must
    remove that file (like a machine-id) to sync as their own peer. *)

val apply : t -> seq:int -> string -> unit
(** Follower-side: apply one replicated frame — replay the payload into
    the context and append the identical bytes to the local wal.
    @raise Journal_error on a sequence gap ([seq] must be [seq t + 1]),
    content-hash mismatch or out-of-order ids. *)

val reset_to_snapshot : t -> seq:int -> string -> unit
(** Follower-side resync: replace the whole database (disk and the
    live context, in place) with a primary snapshot taken at [seq].
    Clears the cement store — its history belongs to the pre-reset
    seqno line.
    @raise Journal_error when the snapshot does not parse. *)

val reset_to_snapshot_file : t -> seq:int -> string -> unit
(** Like {!reset_to_snapshot} but the snapshot was spooled to the
    given file path in bounded chunks (a streamed bootstrap), so the
    state never exists as one in-memory string.  The file is parsed
    first — a malformed stream leaves the database untouched — then
    fsynced and renamed (or copied across filesystems) into place.
    Counts [journal.snapshot_stream_resyncs] on top of
    [journal.snapshot_resyncs].
    @raise Journal_error when the file does not parse. *)

val snapshot_file : t -> string
(** Path of [snapshot.ddf] in this database directory — the file a
    primary streams to bootstrap a follower.  Exists whenever
    [base_seq t > 0]. *)

(** {1:cement Tiered cold storage}

    With cement enabled (the {!open_} default), {!compact} folds the
    wal frames it is about to truncate into an append-only, indexed
    cold store under [cemented/] (see {!Ddf_cement.Cement}).  The full
    journaled history 1..seq then stays addressable: seqnos at or
    below [base_seq] resolve by positioned reads against cement,
    seqnos above it live in the wal.  The store's heavy payloads can
    be evicted from memory and reloaded on demand from their cemented
    put frames. *)

val cement_stats : t -> (int * int * int * int) option
(** [(segments, bytes, first_seq, last_seq)] of the cement store, or
    [None] when nothing has been cemented (or cement is disabled). *)

val cold_frame : t -> int -> string option
(** The cemented frame payload for a seqno — one index lookup and one
    checksum-verified positioned read; [None] outside the cemented
    window. *)

val evict_cold : t -> int
(** Evict resident payloads whose every owning instance can be
    reloaded from cement (payloads are shared by content hash, so a
    payload only leaves memory when all its owners' puts are
    cemented).  Instance meta-data always stays resident.  Returns the
    number of payloads evicted; later reads reload and re-promote them
    transparently ([store.cold_loads]). *)
