(** A durable write-ahead log for the design database.

    The paper's framework is a shared, persistent design database:
    many designers work against one store and history, and the
    derivation meta-data must survive across sessions.  [Journal]
    makes an {!Ddf_exec.Engine.context} durable: every [Store.put],
    annotation and [History.add] is appended to an on-disk log
    ([wal.ddf]) as one checksummed, length-prefixed s-expression frame
    before the caller proceeds, and replaying snapshot + log
    reconstructs the context — same iids, rids, meta-data, payload
    hashes and logical clock.

    Crash safety: frames are self-delimiting with an MD5 checksum, so
    a torn tail (power cut mid-append) is detected and truncated on
    open; everything up to the last complete frame replays.  Periodic
    {!compact} folds the log into a full workspace snapshot
    ([snapshot.ddf], the {!Ddf_persist.Workspace_file} format) and
    truncates the log. *)

exception Journal_error of Ddf_core.Error.t
(** Deprecated alias of {!Ddf_core.Error.Ddf_error}: corruption and
    ordering violations are [`Internal]/[`Conflict], operations on a
    closed or failed journal are [`Unavailable]. *)

type t

type sync_mode =
  | Always  (** [fsync] inside every append: each entry is on disk
                before the caller proceeds. *)
  | Group   (** appends only flush to the OS; {!sync} makes everything
                buffered durable with one [fsync] — classic WAL group
                commit.  The default: callers choose the durability
                points. *)
  | Never   (** no [fsync] at all — for replay-only followers and
                benchmark scaffolding.  A clean close loses nothing; a
                machine crash may lose the tail. *)

val sync_mode_of_string : string -> sync_mode option
(** ["always"], ["group"], ["none"] (or ["never"]). *)

val sync_mode_to_string : sync_mode -> string

val open_ :
  ?registry:Ddf_tools.Encapsulation.registry ->
  ?compact_every:int ->
  ?sync_mode:sync_mode ->
  dir:string -> Ddf_schema.Schema.t -> t
(** Open a database directory (created when missing): load
    [snapshot.ddf] if present, replay [wal.ddf] (truncating a torn
    tail), then attach write observers to the rebuilt context so
    subsequent mutations are journaled.  [compact_every] (default
    10_000) is the log-entry threshold {!maybe_compact} acts on.
    [sync_mode] (default {!Group}) sets when entries become durable.
    @raise Journal_error on corruption before the tail (iid/rid or
    content-hash mismatches). *)

val sync_mode : t -> sync_mode
val set_sync_mode : t -> sync_mode -> unit

val context : t -> Ddf_exec.Engine.context
(** The journaled context; mutate it only through the normal engine /
    store / history operations. *)

val dir : t -> string

val entries_since_snapshot : t -> int

val truncated_on_open : t -> int
(** Bytes of torn tail dropped by crash recovery during {!open_}. *)

val failed : t -> string option
(** Fail-stop reason, if a write-path failure (fsync error, short
    write, injected fault) poisoned the journal.  A failed journal
    refuses every later mutation with [`Unavailable] so a bad frame
    can never end up buried mid-log — recovery truncates at the first
    torn frame, and anything after it would be lost even though it was
    acknowledged.  Cleared only by reopening. *)

val sync : t -> unit
(** A durability point: flush and [fsync] the log, so everything
    journaled so far survives a machine crash.  In {!Group} mode this
    is the group commit — one [fsync] covers every entry appended
    since the previous durability point, and the batch size is
    recorded in the [journal.group_commit_batch] histogram.  In
    {!Never} mode it only flushes.  Skips the [fsync] when nothing is
    pending. *)

val compact : t -> unit
(** Write a fresh snapshot (atomically, via rename) and truncate the
    log. *)

val maybe_compact : t -> bool
(** {!compact} when the log has reached [compact_every] entries;
    returns whether it did. *)

val close : t -> unit
(** Detach the observers, {!sync} and close the log.  The context
    remains usable but further writes are no longer journaled. *)

(** {1 Replication (journal shipping)}

    Every journaled entry has a global sequence number: the snapshot
    covers entries [1..base_seq] (persisted in [base.ddf]) and the wal
    holds [base_seq+1..seq].  A primary streams frames tagged with
    their seqnos; a follower applies them through its own journal, so
    its wal is byte-for-byte the primary's log suffix. *)

val seq : t -> int
(** Sequence number of the last entry journaled (applied or appended). *)

val base_seq : t -> int
(** Sequence number folded into the current snapshot. *)

val set_frame_observer : t -> (int -> string -> unit) -> unit
(** Install the single frame observer, called with [(seqno, payload)]
    after each entry reaches the local disk — the replication fan-out
    point.  Called from whichever thread performs the write. *)

val clear_frame_observer : t -> unit

type tail =
  | Frames of (int * string) list  (** [(seqno, payload)], ascending *)
  | Snapshot_needed
      (** the requested seqno predates the snapshot base: the follower
          must resync from a fresh snapshot *)

val entries_since : t -> int -> tail
(** Entries with seqno greater than the argument, read back from the
    on-disk wal.  Call with writers excluded (the design server calls
    it from its single-writer loop). *)

val snapshot_state : t -> int * string
(** The full current state as a replication seed: [(seq, workspace
    save)].  Call with writers excluded. *)

(** {1 Anti-entropy sync support}

    {!Ddf_sync} reconciles two divergent journals pairwise: each side
    publishes {!digest} (seqno → frame md5 over its wal), the common
    prefix is located by comparing digests, and exactly the missing
    frames are fetched with {!frames} and re-executed remotely.  Like
    the replication readers, call these with writers excluded. *)

val digest : t -> (int * string) list
(** [(seqno, md5)] per wal frame, ascending — entries
    [base_seq+1 .. seq].  The md5 is the frame-header checksum, so
    equal digests mean byte-identical entries. *)

val frames : t -> after:int -> limit:int -> (int * string * string) list
(** At most [limit] frames with seqno > [after], as
    [(seqno, md5, payload)] ascending.
    @raise Journal_error ([`Conflict]) when [after] predates
    [base_seq]: those frames were compacted away. *)

val frame_digest : string -> string
(** The md5 hex a frame header (and {!digest}) carries for a payload. *)

val wsid : t -> string
(** This database directory's stable workspace identity, minted on
    first use and persisted in [wsid.ddf].  Clones of a directory must
    remove that file (like a machine-id) to sync as their own peer. *)

val apply : t -> seq:int -> string -> unit
(** Follower-side: apply one replicated frame — replay the payload into
    the context and append the identical bytes to the local wal.
    @raise Journal_error on a sequence gap ([seq] must be [seq t + 1]),
    content-hash mismatch or out-of-order ids. *)

val reset_to_snapshot : t -> seq:int -> string -> unit
(** Follower-side resync: replace the whole database (disk and the
    live context, in place) with a primary snapshot taken at [seq].
    @raise Journal_error when the snapshot does not parse. *)
