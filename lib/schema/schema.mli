(** Task schemas (paper section 3.1).

    A task schema is a graph whose nodes are design entities -- both
    tools and data are entities -- and whose arcs are dependencies.  It
    serves two purposes: it states the construction rules from which
    tasks (and hence dynamically defined flows) may be built, and it is
    the data schema of the design-history database. *)

(** Entities are either tools or design data; both are first-class, so
    tools may themselves be constructed during design (Fig. 2). *)
type kind =
  | Tool
  | Design_data

(** An entity has at most one functional dependency (the tool that
    realises its construction) and any number of data dependencies.
    Optional data dependencies (dashed arcs) break schema loops such as
    "an edited netlist depends on a netlist". *)
type dep_kind =
  | Functional
  | Data_dep of { optional : bool }

type dep = private {
  role : string;     (** unique within the entity, e.g. ["reference"] *)
  target : string;   (** entity id this dependency points at *)
  dep_kind : dep_kind;
}

type entity = private {
  id : string;
  kind : kind;
  parent : string option;  (** supertype, for subtyped construction *)
  deps : dep list;         (** construction rule; [[]] inherits/none *)
  description : string;
}

type t

exception Schema_error of string

(** {1 Building schemas} *)

val functional : ?role:string -> string -> dep
(** [functional target] is a functional dependency on tool entity
    [target].  Default role is ["tool"]. *)

val data : ?role:string -> ?optional:bool -> string -> dep
(** [data target] is a data dependency; the role defaults to the target
    entity id. *)

val entity :
  ?kind:kind -> ?parent:string -> ?description:string ->
  string -> dep list -> entity
(** [entity id deps] declares a design-data entity constructed from
    [deps].  An empty [deps] with a parent inherits the parent's rule;
    an empty [deps] without subtypes is a source entity. *)

val tool : ?parent:string -> ?description:string -> string -> dep list -> entity
(** [tool id deps] declares a tool entity.  A non-empty [deps] means the
    tool is created during design, as the compiled simulator of Fig. 2. *)

val create : string -> entity list -> t
(** [create name entities] builds and validates a schema.
    @raise Schema_error on duplicate ids, unknown dependency targets,
    several functional dependencies on one entity, functional
    dependencies on non-tools, subtype cycles, kind-changing subtyping,
    or dependency cycles not broken by an optional arc. *)

val add_entity : t -> entity -> t
(** Extend a schema with one entity and re-validate: incorporating a new
    tool requires no flow maintenance, only a schema extension. *)

val remove_entity : t -> string -> t

val validate : t -> unit
(** Re-check all invariants. @raise Schema_error when violated. *)

(** {1 Accessors} *)

val name : t -> string
val mem : t -> string -> bool
val find : t -> string -> entity
val find_opt : t -> string -> entity option
val entities : t -> entity list
val entity_ids : t -> string list
val size : t -> int
val kind_of : t -> string -> kind
val is_tool : t -> string -> bool

(** {1 Subtyping} *)

val parent_of : t -> string -> string option
val ancestors : t -> string -> string list
(** Nearest first, root last. *)

val root_of : t -> string -> string
val subtypes : t -> string -> string list
(** Direct subtypes only. *)

val descendants : t -> string -> string list
(** Transitive subtypes, breadth-first, excluding [id] itself. *)

val is_subtype : t -> sub:string -> super:string -> bool
(** Reflexive and transitive.  Subtype queries are answered from
    memoized closure tables built lazily per schema value; since a
    schema is immutable, {!add_entity}/{!remove_entity} invalidate by
    constructing a fresh cache. *)

(** {1 Construction rules} *)

type rule =
  | Constructed of dep list
      (** a task: at most one functional plus data dependencies *)
  | Abstract of string list
      (** several construction methods; specialize to a subtype first *)
  | Source
      (** no construction rule; instances come from the store/catalog *)

val construction_rule : t -> string -> rule

val effective_deps : t -> string -> dep list
(** The entity's own rule, or the nearest ancestor's when inherited. *)

val functional_dep : t -> string -> dep option
val data_deps : t -> string -> dep list

val is_composite : t -> string -> bool
(** Only data dependencies and no functional one (paper section 3.1):
    the entity groups parts with implicit compose/decompose functions. *)

val is_primitive_source : t -> string -> bool

(** {1 Schema queries driving flow construction} *)

val consumers : t -> string -> string list
(** [consumers s id] lists entities with a dependency satisfiable by an
    instance of [id] (i.e. targeting [id] or an ancestor): the upward
    expansion candidates. *)

val consuming_roles : t -> string -> (string * dep) list
(** Like {!consumers} but also returns the matching dependency. *)

val goals_of_tool : t -> string -> string list
(** Entities whose functional dependency the given tool satisfies: the
    goal choices of the tool-based design approach. *)

val coproduced : t -> string -> string list
(** Entities produced by the same task invocation (same functional tool
    and same data-dependency targets), e.g. extraction statistics
    alongside an extracted netlist. *)

(** {1 Printing} *)

val pp_kind : Format.formatter -> kind -> unit
val pp_dep : Format.formatter -> dep -> unit
val pp_entity : Format.formatter -> entity -> unit
val pp : Format.formatter -> t -> unit
val to_dot : t -> string
