(* Task schemas (Sutton, Brockman & Director, DAC'93, section 3.1).

   A schema is a graph over design entities -- tools and data alike --
   whose arcs are the functional and data dependencies that state how
   each entity may be constructed.  The same arcs double as the data
   schema of the design-history database.  Cycles are legal only when
   broken by an optional data dependency (the dashed arc of Fig. 1). *)

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type kind =
  | Tool
  | Design_data

type dep_kind =
  | Functional
  | Data_dep of { optional : bool }

type dep = {
  role : string;
  target : string;
  dep_kind : dep_kind;
}

type entity = {
  id : string;
  kind : kind;
  parent : string option;
  deps : dep list;
  description : string;
}

(* Memoized subtype-closure tables.  A schema value is immutable —
   [add_entity]/[remove_entity] build a new record — so each record
   carries its own lazily-built cache: extension invalidates by
   construction.  The cache itself is an *immutable* record behind an
   [Atomic.t] so concurrent domain readers are safe: builders publish
   a fully-constructed closure with one CAS, and per-root descendant
   lists extend the record by CAS-swapping a new map in.  Losing a
   race just means recomputing a pure value — no torn Hashtbl state. *)
type closure = {
  cl_children : string list String_map.t;
      (* direct subtypes, ascending id order *)
  cl_ancestors : String_set.t String_map.t;
      (* proper ancestors (the parent chain) as a set *)
  cl_descendants : string list String_map.t;
      (* transitive subtypes in BFS order, filled per queried root *)
}

type t = {
  name : string;
  entities : entity String_map.t;
  closure : closure option Atomic.t;
}

exception Schema_error of string

let schema_errorf fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let functional ?(role = "tool") target = { role; target; dep_kind = Functional }

let data ?role ?(optional = false) target =
  let role = match role with Some r -> r | None -> target in
  { role; target; dep_kind = Data_dep { optional } }

let entity ?(kind = Design_data) ?parent ?(description = "") id deps =
  if id = "" then schema_errorf "entity id must be non-empty";
  { id; kind; parent; deps; description }

let tool ?parent ?description id deps =
  entity ~kind:Tool ?parent ?description id deps

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let name s = s.name
let mem s id = String_map.mem id s.entities
let find_opt s id = String_map.find_opt id s.entities

let find s id =
  match find_opt s id with
  | Some e -> e
  | None -> schema_errorf "unknown entity %S in schema %S" id s.name

let entities s = List.map snd (String_map.bindings s.entities)
let entity_ids s = List.map fst (String_map.bindings s.entities)
let size s = String_map.cardinal s.entities

let kind_of s id = (find s id).kind
let is_tool s id = kind_of s id = Tool

(* ------------------------------------------------------------------ *)
(* Subtyping                                                           *)
(* ------------------------------------------------------------------ *)

let parent_of s id = (find s id).parent

let ancestors s id =
  let rec up acc id =
    match parent_of s id with
    | None -> List.rev acc
    | Some p -> up (p :: acc) p
  in
  up [] id

let root_of s id =
  match List.rev (ancestors s id) with
  | [] -> id
  | r :: _ -> r

(* Build the children lists and ancestor sets in one pass over the
   entity map; descendant lists are filled on demand per queried root.
   Parent chains are acyclic (validated), so the memoized ancestor
   recursion terminates. *)
let build_closure s =
  let children =
    String_map.fold
      (fun id e acc ->
        match e.parent with
        | None -> acc
        | Some p ->
          let prev = Option.value (String_map.find_opt p acc) ~default:[] in
          String_map.add p (id :: prev) acc)
      s.entities String_map.empty
  in
  (* the fold visits ids in ascending order; un-reverse each list *)
  let children = String_map.map List.rev children in
  let ancs = ref String_map.empty in
  let rec anc_of id =
    match String_map.find_opt id !ancs with
    | Some set -> set
    | None ->
      let set =
        match (String_map.find id s.entities).parent with
        | None -> String_set.empty
        | Some p -> String_set.add p (anc_of p)
      in
      ancs := String_map.add id set !ancs;
      set
  in
  String_map.iter (fun id _ -> ignore (anc_of id)) s.entities;
  { cl_children = children; cl_ancestors = !ancs;
    cl_descendants = String_map.empty }

let closure_of s =
  match Atomic.get s.closure with
  | Some cl -> cl
  | None ->
    let cl = build_closure s in
    if Atomic.compare_and_set s.closure None (Some cl) then cl
    else (
      (* another domain published first; its tables are identical *)
      match Atomic.get s.closure with Some cl -> cl | None -> cl)

let subtypes s id =
  match String_map.find_opt id (closure_of s).cl_children with
  | Some subs -> subs
  | None -> []

let descendants s id =
  match String_map.find_opt id (closure_of s).cl_descendants with
  | Some l -> l
  | None ->
    (* BFS with an explicit visited set and a reversed accumulator:
       linear, and terminating even on (invalid) cyclic subtype edges *)
    let visited = Hashtbl.create 16 in
    let out = ref [] in
    let q = Queue.create () in
    Hashtbl.add visited id ();
    Queue.add id q;
    while not (Queue.is_empty q) do
      let x = Queue.pop q in
      List.iter
        (fun sub ->
          if not (Hashtbl.mem visited sub) then begin
            Hashtbl.add visited sub ();
            out := sub :: !out;
            Queue.add sub q
          end)
        (subtypes s x)
    done;
    let l = List.rev !out in
    (* memoize by swapping an extended closure in; a lost race means
       someone else cached this (or another) root — retry the extend *)
    let rec publish () =
      (* the CAS expected value must be the physically-identical option
         cell read from the atomic — a fresh [Some cl] never compares
         equal and would spin forever *)
      let cur = Atomic.get s.closure in
      match cur with
      | None -> ()    (* closure vanished is impossible; nothing to extend *)
      | Some cl ->
        if String_map.mem id cl.cl_descendants then ()
        else
          let cl' =
            { cl with
              cl_descendants = String_map.add id l cl.cl_descendants }
          in
          if Atomic.compare_and_set s.closure cur (Some cl') then ()
          else publish ()
    in
    publish ();
    l

let is_subtype s ~sub ~super =
  sub = super
  ||
  match String_map.find_opt sub (closure_of s).cl_ancestors with
  | Some ancs -> String_set.mem super ancs
  | None -> schema_errorf "unknown entity %S in schema %S" sub s.name

(* ------------------------------------------------------------------ *)
(* Construction rules                                                  *)
(* ------------------------------------------------------------------ *)

(* A subtype with its own dependency list overrides its parent's rule;
   a subtype with none inherits the nearest ancestor rule. *)
let effective_deps s id =
  let rec look id =
    let e = find s id in
    if e.deps <> [] then e.deps
    else
      match e.parent with
      | None -> []
      | Some p -> look p
  in
  look id

let functional_dep s id =
  List.find_opt (fun d -> d.dep_kind = Functional) (effective_deps s id)

let data_deps s id =
  let keep d = match d.dep_kind with Data_dep _ -> true | Functional -> false in
  List.filter keep (effective_deps s id)

let is_composite s id =
  effective_deps s id <> [] && functional_dep s id = None

let is_primitive_source s id =
  effective_deps s id = [] && subtypes s id = []

type rule =
  | Constructed of dep list  (* primitive or composite task over these deps *)
  | Abstract of string list  (* must be specialized to one of these subtypes *)
  | Source                   (* no construction; instantiated from the store *)

let construction_rule s id =
  let deps = effective_deps s id in
  if deps <> [] then Constructed deps
  else
    match subtypes s id with
    | [] -> Source
    | subs -> Abstract subs

(* ------------------------------------------------------------------ *)
(* Consumers: who can take an instance of [id] as an input?            *)
(* ------------------------------------------------------------------ *)

(* A dependency on entity E is satisfiable by any subtype of E, so the
   consumers of [id] are all entities one of whose dependencies targets
   [id] or one of its ancestors. *)
let consumers s id =
  let accepted = String_set.of_list (id :: ancestors s id) in
  String_map.fold
    (fun cid _ acc ->
      let takes d = String_set.mem d.target accepted in
      if List.exists takes (effective_deps s cid) then cid :: acc else acc)
    s.entities []
  |> List.rev

let consuming_roles s id =
  let accepted = String_set.of_list (id :: ancestors s id) in
  String_map.fold
    (fun cid _ acc ->
      let here =
        List.filter_map
          (fun d ->
            if String_set.mem d.target accepted then Some (cid, d) else None)
          (effective_deps s cid)
      in
      here @ acc)
    s.entities []
  |> List.rev

(* Entities whose construction rule names the tool [tool_id] as its
   functional dependency: the goals reachable from a tool-based start. *)
let goals_of_tool s tool_id =
  String_map.fold
    (fun gid _ acc ->
      match functional_dep s gid with
      | Some d when is_subtype s ~sub:tool_id ~super:d.target -> gid :: acc
      | Some _ | None -> acc)
    s.entities []
  |> List.rev

(* Sibling outputs: entities sharing the same functional tool and the
   same data-dependency targets are produced by one task invocation
   (Fig. 5: extracted netlist + extraction statistics). *)
let coproduced s id =
  match functional_dep s id with
  | None -> []
  | Some f ->
    let my_data =
      List.sort compare (List.map (fun d -> d.target) (data_deps s id))
    in
    String_map.fold
      (fun oid _ acc ->
        if oid = id then acc
        else
          match functional_dep s oid with
          | Some f' when f'.target = f.target ->
            let other =
              List.sort compare (List.map (fun d -> d.target) (data_deps s oid))
            in
            if other = my_data then oid :: acc else acc
          | Some _ | None -> acc)
      s.entities []
    |> List.rev

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check_entity s e =
  let seen_roles = Hashtbl.create 8 in
  let check_dep d =
    if not (mem s d.target) then
      schema_errorf "entity %S depends on unknown entity %S" e.id d.target;
    if Hashtbl.mem seen_roles d.role then
      schema_errorf "entity %S has duplicate dependency role %S" e.id d.role;
    Hashtbl.add seen_roles d.role ();
    match d.dep_kind with
    | Functional ->
      if kind_of s d.target <> Tool then
        schema_errorf
          "entity %S has a functional dependency on %S, which is not a tool"
          e.id d.target
    | Data_dep _ -> ()
  in
  List.iter check_dep e.deps;
  let functionals =
    List.filter (fun d -> d.dep_kind = Functional) e.deps
  in
  if List.length functionals > 1 then
    schema_errorf "entity %S has more than one functional dependency" e.id;
  match e.parent with
  | None -> ()
  | Some p ->
    if not (mem s p) then
      schema_errorf "entity %S has unknown parent %S" e.id p;
    if kind_of s p <> e.kind then
      schema_errorf "entity %S and its parent %S differ in kind" e.id p

let check_no_parent_cycle s =
  let check id =
    let rec up seen id =
      match parent_of s id with
      | None -> ()
      | Some p ->
        if String_set.mem p seen then
          schema_errorf "subtype cycle through entity %S" p
        else up (String_set.add p seen) p
    in
    up (String_set.singleton id) id
  in
  List.iter check (entity_ids s)

(* Mandatory-dependency graph must be acyclic: every dependency cycle
   has to be broken by an optional arc (the paper's dashed edges). *)
let check_loops_broken s =
  let mandatory id =
    List.filter_map
      (fun d ->
        match d.dep_kind with
        | Functional | Data_dep { optional = false } -> Some d.target
        | Data_dep { optional = true } -> None)
      (effective_deps s id)
  in
  (* Iterative three-colour DFS to keep large schemas stack-safe. *)
  let colour = Hashtbl.create (size s) in
  let state id = try Hashtbl.find colour id with Not_found -> `White in
  let visit start =
    let rec go = function
      | [] -> ()
      | `Enter id :: rest -> (
        match state id with
        | `Black -> go rest
        | `Grey -> schema_errorf "mandatory dependency cycle through %S" id
        | `White ->
          Hashtbl.replace colour id `Grey;
          let succs = List.map (fun x -> `Enter x) (mandatory id) in
          go (succs @ (`Exit id :: rest)))
      | `Exit id :: rest ->
        Hashtbl.replace colour id `Black;
        go rest
    in
    if state start = `White then go [ `Enter start ]
  in
  List.iter visit (entity_ids s)

let validate s =
  List.iter (check_entity s) (entities s);
  check_no_parent_cycle s;
  check_loops_broken s

let create name entity_list =
  let add acc e =
    if String_map.mem e.id acc then
      schema_errorf "duplicate entity %S in schema %S" e.id name
    else String_map.add e.id e acc
  in
  let entities = List.fold_left add String_map.empty entity_list in
  let s = { name; entities; closure = Atomic.make None } in
  validate s;
  s

(* Extension and removal build a fresh record with a fresh (empty)
   closure cache — never [{ s with ... }], which would share the stale
   cache ref with the original schema. *)
let add_entity s e =
  if mem s e.id then schema_errorf "entity %S already present" e.id;
  let s =
    { name = s.name; entities = String_map.add e.id e s.entities;
      closure = Atomic.make None }
  in
  validate s;
  s

let remove_entity s id =
  let _ = find s id in
  let s =
    { name = s.name; entities = String_map.remove id s.entities;
      closure = Atomic.make None }
  in
  validate s;
  s

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_kind ppf = function
  | Tool -> Fmt.string ppf "tool"
  | Design_data -> Fmt.string ppf "data"

let pp_dep ppf d =
  match d.dep_kind with
  | Functional -> Fmt.pf ppf "f:%s" d.target
  | Data_dep { optional = false } -> Fmt.pf ppf "d:%s" d.target
  | Data_dep { optional = true } -> Fmt.pf ppf "d?:%s" d.target

let pp_entity ppf e =
  Fmt.pf ppf "@[<h>%s (%a%a)%a@]" e.id pp_kind e.kind
    (fun ppf -> function
      | None -> ()
      | Some p -> Fmt.pf ppf " <: %s" p)
    e.parent
    (fun ppf deps ->
      if deps <> [] then Fmt.pf ppf " <- %a" Fmt.(list ~sep:comma pp_dep) deps)
    e.deps

let pp ppf s =
  Fmt.pf ppf "@[<v>schema %s:@,%a@]" s.name
    Fmt.(list ~sep:cut pp_entity)
    (entities s)

let to_dot s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" s.name);
  let emit e =
    let shape = match e.kind with Tool -> "ellipse" | Design_data -> "box" in
    Buffer.add_string buf
      (Printf.sprintf "  %S [shape=%s];\n" e.id shape);
    (match e.parent with
    | None -> ()
    | Some p ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [style=bold,label=\"subtype\"];\n" e.id p));
    let edge d =
      let label, style =
        match d.dep_kind with
        | Functional -> ("f", "solid")
        | Data_dep { optional = false } -> ("d", "solid")
        | Data_dep { optional = true } -> ("d", "dashed")
      in
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S,style=%s];\n" e.id d.target label
           style)
    in
    List.iter edge e.deps
  in
  List.iter emit (entities s);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
