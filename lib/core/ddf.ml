(* Dynamically defined flows: the public facade.

   Re-exports every subsystem under one roof and provides [Workspace],
   a ready-to-use Hercules-style environment over the odyssey schema
   with the standard tool catalog installed. *)

module Error = Ddf_core.Error
module Fault = Ddf_fault.Fault
module Schema = Ddf_schema.Schema
module Standard_schemas = Ddf_schema.Standard_schemas
module Task_graph = Ddf_graph.Task_graph
module Sexp_form = Ddf_graph.Sexp_form
module Bipartite = Ddf_graph.Bipartite
module Canonical = Ddf_graph.Canonical
module Standard_flows = Ddf_graph.Standard_flows
module Store = Ddf_store.Store
module History = Ddf_history.History
module Value = Ddf_data
module Encapsulation = Ddf_tools.Encapsulation
module Standard_tools = Ddf_tools.Standard_tools
module Engine = Ddf_exec.Engine
module Parallel = Ddf_exec.Parallel
module Consistency = Ddf_exec.Consistency
module Typing = Ddf_exec.Typing
module Views = Ddf_views.Views
module Persist = Ddf_persist.Workspace_file
module Process = Ddf_process.Process
module Process_file = Ddf_process.Process_file
module Sexp = Ddf_persist.Sexp
module Codec = Ddf_persist.Codec
module Session = Ddf_session.Session
module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics
module Obs_sinks = Ddf_obs.Sinks
module Journal = Ddf_journal.Journal
module Cement = Ddf_cement.Cement
module Wire = Ddf_wire.Wire
module Replica = Ddf_replica.Replica
module Server = Ddf_server.Server
module Client = Ddf_client.Client
module Sync = Ddf_sync.Sync

module Baselines = struct
  module Static_flow = Ddf_baselines.Static_flow
  module Freedom = Ddf_baselines.Freedom
  module Trace_capture = Ddf_baselines.Trace_capture
  module Make_style = Ddf_baselines.Make_style
  module Version_tree = Ddf_baselines.Version_tree
end

module Eda = struct
  module Logic = Ddf_eda.Logic
  module Netlist = Ddf_eda.Netlist
  module Circuits = Ddf_eda.Circuits
  module Stimuli = Ddf_eda.Stimuli
  module Waveform = Ddf_eda.Waveform
  module Sim_event = Ddf_eda.Sim_event
  module Sim_compiled = Ddf_eda.Sim_compiled
  module Device_model = Ddf_eda.Device_model
  module Layout = Ddf_eda.Layout
  module Extract = Ddf_eda.Extract
  module Lvs = Ddf_eda.Lvs
  module Transistor = Ddf_eda.Transistor
  module Pla = Ddf_eda.Pla
  module Performance = Ddf_eda.Performance
  module Plot = Ddf_eda.Plot
  module Optimize = Ddf_eda.Optimize
  module Edit_script = Ddf_eda.Edit_script
  module Hier = Ddf_eda.Hier
  module Blif = Ddf_eda.Blif
  module Vcd = Ddf_eda.Vcd

  module Rng = Ddf_eda.Rng
end

(* ------------------------------------------------------------------ *)
(* Workspace                                                           *)
(* ------------------------------------------------------------------ *)

module Workspace = struct
  module E = Standard_schemas.E

  type t = {
    session : Session.t;
    catalog_tools : (string * Ddf_store.Store.iid) list;
  }

  exception Workspace_error of string

  let catalog_tool_entities =
    [
      E.simulator; E.verifier; E.plotter; E.extractor; E.placer;
      E.pla_generator; E.simulator_compiler; E.transistor_expander;
    ]

  (* A fresh Hercules-style workspace: the odyssey schema, the standard
     registry, one catalog instance of each primitive tool, the default
     device models and default option sets. *)
  let create ?(user = "designer") () =
    let session = Session.create ~user Standard_schemas.odyssey in
    let ctx = Session.context session in
    let catalog_tools =
      List.map
        (fun entity -> (entity, Engine.install_tool ctx entity))
        catalog_tool_entities
    in
    ignore
      (Engine.install ctx ~entity:E.device_models ~label:"generic 800nm"
         (Ddf_data.Device_models Ddf_eda.Device_model.default));
    ignore
      (Engine.install ctx ~entity:E.sim_options ~label:"default sim options"
         (Ddf_data.Sim_options Ddf_data.default_sim_options));
    ignore
      (Engine.install ctx ~entity:E.placement_options ~label:"default placement"
         (Ddf_data.Placement_options Ddf_data.default_placement_options));
    { session; catalog_tools }

  (* Rebuild a workspace around an existing session (e.g. one loaded
     from disk): catalog tools are recovered as the first store
     instance of each primitive tool entity, installing any that are
     missing. *)
  let of_session session =
    let ctx = Session.context session in
    let catalog_tools =
      List.map
        (fun entity ->
          match
            Ddf_store.Store.instances_of_entity ctx.Engine.store entity
          with
          | iid :: _ -> (entity, iid)
          | [] -> (entity, Engine.install_tool ctx entity))
        catalog_tool_entities
    in
    { session; catalog_tools }

  let session w = w.session
  let ctx w = Session.context w.session
  let store w = (ctx w).Engine.store
  let history w = (ctx w).Engine.history
  let schema w = (ctx w).Engine.schema

  let tool w entity =
    match List.assoc_opt entity w.catalog_tools with
    | Some iid -> iid
    | None -> raise (Workspace_error ("no catalog tool " ^ entity))

  (* Three optimizer tool instances sharing one encapsulation. *)
  let install_optimizers w =
    List.map
      (fun strategy ->
        let name = Ddf_eda.Optimize.strategy_name strategy in
        ( strategy,
          Engine.install (ctx w) ~entity:E.optimizer ~label:("optimizer " ^ name)
            (Ddf_data.Tool (Ddf_data.Builtin ("optimizer:" ^ name))) ))
      Ddf_eda.Optimize.all_strategies

  let install_netlist w ?(label = "") ?(keywords = []) nl =
    let label = if label = "" then nl.Ddf_eda.Netlist.name else label in
    Engine.install (ctx w) ~entity:E.edited_netlist ~label ~keywords
      (Ddf_data.Netlist nl)

  let install_stimuli w ?(label = "stimuli") stimuli =
    Engine.install (ctx w) ~entity:E.stimuli ~label (Ddf_data.Stimuli stimuli)

  let install_layout w ?(label = "") layout =
    let label =
      if label = "" then layout.Ddf_eda.Layout.layout_name else label
    in
    Engine.install (ctx w) ~entity:E.edited_layout ~label
      (Ddf_data.Layout layout)

  let install_editor_session w ?(label = "editing session") script =
    Engine.install (ctx w) ~entity:E.netlist_editor ~label
      (Ddf_data.Tool (Ddf_data.Scripted_netlist_editor script))

  let install_layout_editor_session w ?(label = "layout session") edits =
    Engine.install (ctx w) ~entity:E.layout_editor ~label
      (Ddf_data.Tool (Ddf_data.Scripted_layout_editor edits))

  let default_device_models w =
    match
      Ddf_store.Store.instances_of_entity (store w) E.device_models
    with
    | iid :: _ -> iid
    | [] -> raise (Workspace_error "no device models installed")

  (* Bindings for every unbound tool leaf of a flow, from the catalog:
     the common case when a flow only needs the standard tools. *)
  let bind_catalog_tools w flow ~already =
    let bound = List.map fst already in
    List.filter_map
      (fun nid ->
        if List.mem nid bound then None
        else
          let entity = Task_graph.entity_of flow nid in
          if Schema.is_tool (schema w) entity then
            match List.assoc_opt entity w.catalog_tools with
            | Some iid -> Some (nid, iid)
            | None -> None
          else None)
      (Task_graph.leaves flow)
    @ already

  let find_nodes flow entity =
    List.filter_map
      (fun (n : Task_graph.node) ->
        if n.Task_graph.entity = entity then Some n.Task_graph.nid else None)
      (Task_graph.nodes flow)

  let payload w iid = Ddf_store.Store.payload (store w) iid

  let netlist_of w iid = Ddf_data.as_netlist (payload w iid)
  let layout_of w iid = Ddf_data.as_layout (payload w iid)
  let performance_of w iid = Ddf_data.as_performance (payload w iid)
  let verification_of w iid = Ddf_data.as_verification (payload w iid)
end
