(* The Hercules design-server daemon.

   Concurrency model (MVCC): one reader thread per connection, one
   writer thread for the engine, an optional pool of reader DOMAINS.
   Store/history mutations (install, annotate, run, refresh) are
   enqueued as jobs and applied by the writer in arrival order — a
   single serialization point, so the design history is trivially
   serializable and the journal records one total order.  After each
   group commit the writer atomically publishes a pinned
   store+history snapshot ([published]); pure reads (catalogs,
   browsing, task-window editing, history queries) evaluate against
   that frozen view and never synchronize with the writer at all — no
   read lock, no gate, nothing to contend on.  The only lock left on
   the commit path is the (vestigial, single-threaded) writer commit
   lock, instrumented with [server.lock_acquisitions] precisely so
   tests can assert the counter stays flat under read-only load.

   With [read_domains > 0] pure reads are dispatched to a pool of
   worker domains that pin the latest published view per request (or
   per pure-read batch), so reads scale across cores while the writer
   keeps committing.  [read_domains = 0] (the default) evaluates them
   inline on the connection thread — still lock-free.

   Each connection owns a private Session over the shared context, so
   concurrent designers build flows independently while sharing one
   store, history and clock — the paper's multi-designer Hercules
   database.  A connection serves one request at a time, so handing
   its session to a pool domain is race-free.  Client identity
   arrives via Hello and is rebound onto ctx.user by the writer
   before each mutation, so Store.meta.user reflects the requesting
   designer. *)

open Ddf_store
open Ddf_history
module Wire = Ddf_wire.Wire
module Journal = Ddf_journal.Journal
module Session = Ddf_session.Session
module Engine = Ddf_exec.Engine
module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics
module Replica = Ddf_replica.Replica
module Sync = Ddf_sync.Sync
module E = Ddf_core.Error
module Fault = Ddf_fault.Fault

exception Server_error of string

let server_errorf fmt = Format.kasprintf (fun s -> raise (Server_error s)) fmt

let m_requests = Metrics.counter "server.requests"
let m_mutations = Metrics.counter "server.mutations"
let m_errors = Metrics.counter "server.errors"
let m_timeouts = Metrics.counter "server.timeouts"
let m_shed = Metrics.counter "server.shed"
let m_deadline_missed = Metrics.counter "server.deadline_missed"
let m_connections = Metrics.counter "server.connections"
let m_rejected = Metrics.counter "server.rejected_connections"
let m_version_mismatch = Metrics.counter "server.version_mismatches"
let m_slow = Metrics.counter "server.slow_requests"
let h_request = Metrics.histogram "server.request_us"
let h_queue_wait = Metrics.histogram "server.write_queue_wait_us"

(* The zero-lock-read invariant, made checkable: every acquisition of
   the writer commit lock bumps this counter, and nothing on the read
   path ever takes it — so under read-only load the counter must stay
   flat.  The CI smoke and test suite assert exactly that. *)
let m_lock_acquisitions = Metrics.counter "server.lock_acquisitions"
let m_pool_reads = Metrics.counter "server.pool_reads"

(* replication gauges: the primary's shipped seqno, its worst follower
   lag (entries), follower count, and a follower's applied seqno *)
let g_seq = Metrics.gauge "replica.seq"
let g_lag = Metrics.gauge "replica.lag_entries"
let g_followers = Metrics.gauge "replica.followers"

(* ------------------------------------------------------------------ *)
(* The writer commit lock                                              *)
(* ------------------------------------------------------------------ *)

(* Vestigial by construction — only the (single) writer thread takes
   it, around each job's store/history/journal mutation — but kept and
   instrumented: the acquisition counter is the proof that the read
   path is lock-free.  A read that (re)grew a lock dependency would
   move the counter under read-only load and fail the assertion. *)
module Commit_lock = struct
  type t = Mutex.t

  let create () = Mutex.create ()

  let with_lock m f =
    Metrics.incr m_lock_acquisitions;
    Mutex.lock m;
    Fun.protect f ~finally:(fun () -> Mutex.unlock m)
end

(* ------------------------------------------------------------------ *)
(* The published view                                                  *)
(* ------------------------------------------------------------------ *)

(* What pure reads see: the store and history pinned together, plus
   the journal seqno and logical clock they correspond to.  The writer
   swaps a fresh one in (a single [Atomic.set]) after each group
   commit's fsync, so a reader can never observe state whose
   durability is still in flight; between commits every read costs one
   [Atomic.get] and zero synchronization. *)
type published = {
  pub_view : Engine.view;
  pub_seq : int;        (* journal seqno covered by the view *)
  pub_clock : int;      (* engine clock at publication *)
}

(* ------------------------------------------------------------------ *)
(* The domain-pool read executor                                       *)
(* ------------------------------------------------------------------ *)

(* Pure-read requests are handed to worker domains over a bounded
   queue; each worker pins the latest published view and evaluates
   without ever touching a server lock.  At most [max_pending] jobs
   wait; anything beyond is shed immediately instead of stacking up
   unbounded latency, and a job whose deadline passed while queued is
   answered [`Timeout] at dequeue, not executed.  With no domains the
   pool is inert and reads run inline on the connection thread. *)
module Read_pool = struct
  type rjob = {
    rj_run : unit -> Wire.response;
    rj_deadline : float option;
    rj_enqueued : float;
    rj_m : Mutex.t;
    rj_c : Condition.t;
    mutable rj_result : Wire.response option;
  }

  type t = {
    pm : Mutex.t;
    pc : Condition.t;
    pqueue : rjob Queue.t;
    max_pending : int;
    pstop : bool Atomic.t;
    mutable workers : unit Domain.t list;
  }

  let answer job resp =
    Mutex.lock job.rj_m;
    job.rj_result <- Some resp;
    Condition.signal job.rj_c;
    Mutex.unlock job.rj_m

  (* Workers drain the queue even while stopping, so no accepted job
     is ever dropped: stop only prevents new admissions. *)
  let worker p =
    let rec loop () =
      Mutex.lock p.pm;
      let rec await () =
        if not (Queue.is_empty p.pqueue) then Some (Queue.pop p.pqueue)
        else if Atomic.get p.pstop then None
        else begin
          Condition.wait p.pc p.pm;
          await ()
        end
      in
      let job = await () in
      Mutex.unlock p.pm;
      match job with
      | None -> ()
      | Some job ->
        Metrics.incr m_pool_reads;
        let now = Unix.gettimeofday () in
        let resp =
          match job.rj_deadline with
          | Some d when now > d ->
            Metrics.incr m_deadline_missed;
            Wire.Error
              (E.make `Timeout
                 (Printf.sprintf
                    "deadline expired after %.3fs in the read queue"
                    (now -. job.rj_enqueued)))
          | Some _ | None -> job.rj_run ()
        in
        answer job resp;
        loop ()
    in
    loop ()

  let create ~domains ~max_pending =
    let p =
      { pm = Mutex.create (); pc = Condition.create ();
        pqueue = Queue.create (); max_pending = max 1 max_pending;
        pstop = Atomic.make false; workers = [] }
    in
    if domains > 0 then
      p.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker p));
    p

  let pooled p = p.workers <> []

  (* [run] evaluates [f] on a worker domain (or inline when the pool
     has none) and returns its verdict. *)
  let run ?deadline p f =
    if not (pooled p) then `Done (f ())
    else begin
      let job =
        { rj_run = f; rj_deadline = deadline;
          rj_enqueued = Unix.gettimeofday (); rj_m = Mutex.create ();
          rj_c = Condition.create (); rj_result = None }
      in
      Mutex.lock p.pm;
      let verdict =
        if Atomic.get p.pstop then `Stopping
        else if Queue.length p.pqueue >= p.max_pending then `Shed
        else begin
          Queue.push job p.pqueue;
          Condition.signal p.pc;
          `Queued
        end
      in
      Mutex.unlock p.pm;
      match verdict with
      | `Stopping -> `Stopping
      | `Shed -> `Shed
      | `Queued ->
        Mutex.lock job.rj_m;
        while job.rj_result = None do
          Condition.wait job.rj_c job.rj_m
        done;
        Mutex.unlock job.rj_m;
        `Done (Option.get job.rj_result)
    end

  let stop p =
    Atomic.set p.pstop true;
    Mutex.lock p.pm;
    Condition.broadcast p.pc;
    Mutex.unlock p.pm

  let join p =
    stop p;
    List.iter Domain.join p.workers;
    p.workers <- []
end

(* ------------------------------------------------------------------ *)
(* Write-queue jobs                                                    *)
(* ------------------------------------------------------------------ *)

type job = {
  job_user : string;
  job_run : unit -> Wire.response;
  job_enqueued : float;
  job_deadline : float option;        (* absolute; shed when passed *)
  job_span : Obs.span_ctx option;     (* submitter's span, for the trace *)
  job_m : Mutex.t;
  job_c : Condition.t;
  mutable job_result : Wire.response option;
}

type t = {
  journal : Journal.t;
  ctx : Engine.context;
  commit_m : Commit_lock.t;           (* writer-only; see Commit_lock *)
  published : published Atomic.t;     (* what pure reads evaluate against *)
  pool : Read_pool.t;                 (* domain-pool read executor *)
  socket_path : string;
  listen_fd : Unix.file_descr;
  (* self-pipe: [stop] writes a byte to wake the accepter out of its
     [select] — closing the listening socket from another thread does
     not reliably interrupt a blocked accept *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  max_clients : int;
  request_timeout : float;
  max_queue : int;                    (* writer admission bound *)
  default_deadline : float option;    (* seconds, for deadline-less peers *)
  drain_grace : float;                (* seconds to let in-flight finish *)
  slow_log : float option;            (* seconds; log requests above it *)
  started_at : float;
  (* lock-free request-path state: the read side must not contend on
     [m], so the stop flag and the in-flight count are atomics *)
  stopping : bool Atomic.t;
  in_flight : int Atomic.t;           (* requests being served right now *)
  (* shared state under [m] *)
  m : Mutex.t;
  mutable conns : (int * Unix.file_descr) list;
  mutable next_conn : int;
  mutable threads : Thread.t list;
  queue : job Queue.t;
  queue_c : Condition.t;              (* signalled on enqueue and stop *)
  mutable avg_job_us : float;         (* EWMA of writer job service time *)
  mutable writer : Thread.t option;
  mutable accepter : Thread.t option;
  (* replication *)
  mutable follow : string option;     (* primary socket when a follower *)
  mutable follower : Replica.Follower.t option;
  mutable followers : Replica.Outbox.t list;   (* primary side, under [m] *)
}

let context t = t.ctx

let role t = match t.follow with None -> "primary" | Some _ -> "follower"

let is_follower t = t.follow <> None

(* ------------------------------------------------------------------ *)
(* Follower bookkeeping (primary side)                                 *)
(* ------------------------------------------------------------------ *)

let live_followers t =
  Mutex.lock t.m;
  let obs = List.filter Replica.Outbox.alive t.followers in
  t.followers <- obs;
  Mutex.unlock t.m;
  obs

let update_replica_gauges t =
  let obs = live_followers t in
  let seq = Journal.seq t.journal in
  let lag =
    List.fold_left
      (fun worst ob -> max worst (seq - Replica.Outbox.acked ob))
      0 obs
  in
  Metrics.set g_followers (float_of_int (List.length obs));
  Metrics.set g_lag (float_of_int lag)

let register_follower t outbox =
  Mutex.lock t.m;
  t.followers <- outbox :: t.followers;
  Mutex.unlock t.m;
  update_replica_gauges t

let unregister_follower t outbox =
  Mutex.lock t.m;
  t.followers <- List.filter (fun ob -> ob != outbox) t.followers;
  Mutex.unlock t.m;
  update_replica_gauges t

(* ------------------------------------------------------------------ *)
(* The writer loop                                                     *)
(* ------------------------------------------------------------------ *)

(* Store/History/Session/Engine/Consistency/Journal errors all raise
   Ddf_error and pass through with their code intact; the unmigrated
   stringly exceptions get classified here. *)
let error_response e =
  let err =
    match e with
    | E.Ddf_error err -> err
    | Ddf_exec.Typing.Type_mismatch m -> E.make `Type_error m
    | Ddf_schema.Schema.Schema_error m | Ddf_graph.Task_graph.Graph_error m
    | Ddf_persist.Codec.Codec_error m | Ddf_persist.Sexp.Sexp_error m
    | Wire.Wire_error m ->
      E.make `Invalid m
    | e -> E.of_exn e
  in
  Wire.Error err

let wire_error ?context ?retryable ?retry_after code fmt =
  Format.kasprintf
    (fun m -> Wire.Error (E.make ?context ?retryable ?retry_after code m))
    fmt

let finish job result =
  Mutex.lock job.job_m;
  job.job_result <- Some result;
  Condition.signal job.job_c;
  Mutex.unlock job.job_m

(* Swap the published view: two atomic snapshot loads (history first,
   so the store side covers every instance its records mention) and
   one atomic store.  Runs on the writer thread only. *)
let publish t =
  Atomic.set t.published
    { pub_view = Engine.pin t.ctx; pub_seq = Journal.seq t.journal;
      pub_clock = t.ctx.Engine.clock }

(* Group commit: the writer drains its whole queue as one batch, runs
   each job (mutating the store and appending journal frames), then
   makes the batch durable with a single [Journal.sync] before
   acknowledging anyone.  Under load the queue fills while the previous
   batch runs, so the fsync cost amortizes over every waiting writer;
   an idle server degenerates to one fsync per write.  Jobs still
   execute one at a time under the write lock, so readers interleave
   between jobs exactly as before. *)
let writer_loop t =
  let rec next () =
    Mutex.lock t.m;
    let rec await () =
      if not (Queue.is_empty t.queue) then begin
        let batch = ref [] in
        while not (Queue.is_empty t.queue) do
          batch := Queue.pop t.queue :: !batch
        done;
        Some (List.rev !batch)
      end
      else if Atomic.get t.stopping then None
      else begin
        Condition.wait t.queue_c t.m;
        await ()
      end
    in
    let batch = await () in
    Mutex.unlock t.m;
    match batch with
    | None -> ()
    | Some batch ->
      (* test hook: an armed delay here models a stalled writer (slow
         disk, GC pause) so tests can fill the admission queue *)
      ignore (Fault.check "server.writer_stall" : Fault.action option);
      let run_one job =
        let now = Unix.gettimeofday () in
        let waited = now -. job.job_enqueued in
        Metrics.observe h_queue_wait (waited *. 1e6);
        if Obs.enabled () then
          Obs.complete ~cat:"server" ?span:job.job_span
            ~dur_us:(waited *. 1e6) "server.queue_wait";
        let expired =
          match job.job_deadline with Some d -> now > d | None -> false
        in
        let result =
          if expired then begin
            (* the client gave up while the job sat in the queue;
               executing it now would waste write-lock time nobody
               will read — and the entry was never journaled *)
            Metrics.incr m_deadline_missed;
            wire_error `Timeout
              "deadline expired after %.3fs in the write queue" waited
          end
          else if waited > t.request_timeout then begin
            Metrics.incr m_timeouts;
            wire_error `Timeout
              "request timed out after %.1fs in the write queue" waited
          end
          else begin
            let r =
              (* the write-job span becomes the writer thread's current
                 context, so journal appends (and the frame observer
                 shipping to followers) inherit the request's trace *)
              Obs.with_span ~cat:"server" ?parent:job.job_span
                ~attrs:[ ("user", Obs.Str job.job_user) ] "server.write_job"
              @@ fun () ->
              Commit_lock.with_lock t.commit_m (fun () ->
                  t.ctx.Engine.user <- job.job_user;
                  match job.job_run () with
                  | resp ->
                    ignore (Journal.maybe_compact t.journal);
                    resp
                  | exception e -> error_response e)
            in
            let dur_us = (Unix.gettimeofday () -. now) *. 1e6 in
            Mutex.lock t.m;
            (* EWMA of service time drives the retry-after hint *)
            t.avg_job_us <- (0.8 *. t.avg_job_us) +. (0.2 *. dur_us);
            Mutex.unlock t.m;
            r
          end
        in
        (job, result)
      in
      let results = List.map run_one batch in
      (* one fsync covers every frame the batch appended; only after it
         succeeds are the jobs acknowledged.  If the disk fails here,
         nobody gets an Ok for an entry of unknown durability. *)
      let results =
        match
          (* the batch shares one fsync; parent the sync span to the
             first traced job so the group commit shows in its trace *)
          Obs.with_span ~cat:"journal"
            ?parent:(List.find_map (fun (job, _) -> job.job_span) results)
            ~attrs:[ ("batch", Obs.Int (List.length results)) ]
            "journal.sync_batch"
            (fun () -> Journal.sync t.journal)
        with
        | () -> results
        | exception e ->
          let err = error_response e in
          List.map (fun (job, _) -> (job, err)) results
      in
      (* Publication ordering: AFTER the batch's fsync, BEFORE any job
         is acknowledged.  A reader can never observe state whose
         durability is still pending, and a client that got its Ok is
         guaranteed to see its own write in the next view it pins.
         (On an fsync failure the jobs error but the state mutations
         already happened — there is no rollback — so the view is
         published regardless; the journal is the wounded party.) *)
      publish t;
      List.iter (fun (job, result) -> finish job result) results;
      next ()
  in
  next ()

(* How long a shed client should back off: the queue's expected drain
   time under the writer's recent service rate.  Call under [t.m]. *)
let retry_after_hint t queued =
  let avg_us = if t.avg_job_us > 0.0 then t.avg_job_us else 2_000.0 in
  Float.max 0.01 (float_of_int (queued + 1) *. avg_us /. 1e6)

let submit ?deadline t ~user run =
  let job =
    { job_user = user; job_run = run; job_enqueued = Unix.gettimeofday ();
      job_deadline = deadline;
      (* captured on the submitting thread: the dispatch span (or the
         follower pump's context) the queued work belongs to *)
      job_span = (if Obs.enabled () then Obs.current_span () else None);
      job_m = Mutex.create (); job_c = Condition.create (); job_result = None }
  in
  Mutex.lock t.m;
  let verdict =
    if Atomic.get t.stopping then `Stopping
    else if Queue.length t.queue >= t.max_queue then begin
      Metrics.incr m_shed;
      `Full (retry_after_hint t (Queue.length t.queue))
    end
    else begin
      Queue.push job t.queue;
      Condition.broadcast t.queue_c;
      `Queued
    end
  in
  Mutex.unlock t.m;
  match verdict with
  | `Stopping -> wire_error `Unavailable "server is shutting down"
  | `Full retry_after ->
    (* shed at admission: the request never reaches the writer, so it
       is never executed and never journaled — safe to resend *)
    wire_error ~retry_after `Overloaded "write queue is full (%d jobs)"
      t.max_queue
  | `Queued ->
    Mutex.lock job.job_m;
    while job.job_result = None do
      Condition.wait job.job_c job.job_m
    done;
    Mutex.unlock job.job_m;
    Option.get job.job_result

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let rows_of snap iids =
  List.map
    (fun iid ->
      { Wire.row_iid = iid; row_entity = Store.Snapshot.entity_of snap iid;
        row_meta = Store.Snapshot.meta_of snap iid })
    iids

let nodes_with_entities flow nids =
  List.map (fun nid -> (nid, Ddf_graph.Task_graph.entity_of flow nid)) nids

(* Evaluate one request against a connection's session.  [pin] yields
   the view shared-state reads go through: on the read path it is a
   constant — the published view the request (or the whole pure-read
   batch) was dispatched with, so evaluation is repeatable and
   lock-free; on the writer path it pins the live context afresh, so
   a member of a mutation batch observes the members before it. *)
let rec eval t session ~pin req =
  let ctx = t.ctx in
  match (req : Wire.request) with
  | Wire.Batch reqs ->
    (* Positional answers; an inner failure becomes an [Error] at its
       position and execution continues — journaled effects of earlier
       members are already committed (there is no rollback).  When the
       batch is a mutation it arrived here as one writer job, so all
       its writes share one group commit. *)
    Wire.Ok_batch
      (List.map
         (fun r ->
           match (r : Wire.request) with
           | Wire.Batch _ ->
             wire_error `Invalid "batch requests do not nest"
           | Wire.Hello _ | Wire.Shutdown | Wire.Subscribe _ | Wire.Repl_ack _
           | Wire.Snapshot_export ->
             wire_error `Invalid "connection-level request %S inside a batch"
               (Wire.request_name r)
           | r -> ( try eval t session ~pin r with e -> error_response e))
         reqs)
  | Wire.Hello _ | Wire.Ping | Wire.Shutdown -> Wire.Ok_unit
  | Wire.Stat ->
    (* all numbers from one published record, so they are mutually
       consistent — seq, clock and the counts describe the same
       committed state *)
    let p = Atomic.get t.published in
    let v = p.pub_view in
    Wire.Ok_stat
      { Wire.st_role = role t;
        st_seq = p.pub_seq;
        st_clock = p.pub_clock;
        st_instances = Store.Snapshot.instance_count v.Engine.v_store;
        st_records = History.Snapshot.size v.Engine.v_history;
        st_store_tick = Store.Snapshot.tick v.Engine.v_store;
        st_history_tick = History.Snapshot.tick v.Engine.v_history;
        st_uptime_s = Unix.gettimeofday () -. t.started_at }
  | Wire.Lag ->
    let obs = live_followers t in
    Wire.Ok_lags
      { primary_seq = Journal.seq t.journal;
        rows =
          List.map
            (fun ob ->
              { Wire.lag_follower = Replica.Outbox.name ob;
                lag_acked = Replica.Outbox.acked ob;
                lag_sent = Replica.Outbox.sent ob })
            obs }
  | Wire.Compact ->
    Journal.compact t.journal;
    Wire.Ok_unit
  | Wire.Metrics -> Wire.Ok_metrics (Metrics.snapshot Metrics.global)
  | Wire.Sync_digest ->
    (* runs as a writer job (wal reads need the writer excluded), but
       mutates nothing — the anti-entropy handshake *)
    let d = Sync.digest_of t.journal in
    Wire.Ok_digest
      { wsid = d.Sync.g_wsid; base = d.Sync.g_base; seq = d.Sync.g_seq;
        fingerprint = d.Sync.g_fingerprint; cursors = d.Sync.g_cursors;
        entries = d.Sync.g_entries }
  | Wire.Sync_frames { after; limit } ->
    Wire.Ok_frames (Journal.frames t.journal ~after ~limit)
  | Wire.Sync_ack { origin; upto; frames } ->
    Wire.Ok_sync (Sync.apply_frames t.journal ~origin ~upto frames)
  | Wire.Conflicts ->
    let v = pin () in
    Wire.Ok_conflicts
      (List.map
         (fun (c : History.conflict) ->
           { Wire.cf_id = c.History.cid; cf_base = c.History.c_base;
             cf_ours = c.History.c_ours; cf_theirs = c.History.c_theirs;
             cf_origin = c.History.c_origin; cf_at = c.History.c_at;
             cf_winner = c.History.c_winner })
         (History.Snapshot.all_conflicts v.Engine.v_history))
  | Wire.Resolve { conflict; winner } ->
    ignore
      (History.resolve_conflict ctx.Engine.history conflict ~winner
        : History.conflict);
    Wire.Ok_unit
  | Wire.Subscribe _ | Wire.Repl_ack _ | Wire.Snapshot_export ->
    (* handled by the connection loop before reaching the evaluator *)
    wire_error `Invalid "streaming request outside the connection loop"
  | Wire.Catalog Wire.Entities -> Wire.Ok_atoms (Session.entity_catalog session)
  | Wire.Catalog Wire.Tools -> Wire.Ok_atoms (Session.tool_catalog session)
  | Wire.Catalog Wire.Flows -> Wire.Ok_atoms (Session.flow_catalog session)
  | Wire.Browse filter ->
    let v = pin () in
    let snap = v.Engine.v_store in
    Wire.Ok_rows (rows_of snap (Store.Snapshot.browse snap filter))
  | Wire.Install { entity; label; keywords; value } ->
    let value = Ddf_persist.Codec.value_of_sexp value in
    Wire.Ok_int (Engine.install ctx ~entity ~label ~keywords value)
  | Wire.Annotate { iid; label; comment; keywords } ->
    Store.annotate ctx.Engine.store iid ?label ?comment ?keywords ();
    Wire.Ok_unit
  | Wire.Start_goal entity -> Wire.Ok_int (Session.start_goal_based session entity)
  | Wire.Start_data iid -> Wire.Ok_int (Session.start_data_based session iid)
  | Wire.Expand nid ->
    let fresh = Session.expand session nid in
    Wire.Ok_nodes (nodes_with_entities (Session.current_flow session) fresh)
  | Wire.Specialize (nid, sub) ->
    Session.specialize session nid sub;
    Wire.Ok_unit
  | Wire.Select (nid, iids) ->
    Session.select session nid iids;
    Wire.Ok_unit
  | Wire.Node_browse (nid, filter) ->
    Wire.Ok_ints (Session.browse ~filter ~view:(pin ()) session nid)
  | Wire.Leaves ->
    let flow = Session.current_flow session in
    Wire.Ok_nodes (nodes_with_entities flow (Ddf_graph.Task_graph.leaves flow))
  | Wire.Run nid -> Wire.Ok_ints (Session.run session nid)
  | Wire.Render -> Wire.Ok_text (Session.render_task_window session)
  | Wire.Recall iid -> Wire.Ok_int (Session.recall session iid)
  | Wire.Trace iid ->
    let g, _, binding = Session.history_of ~view:(pin ()) session iid in
    Wire.Ok_text
      (Printf.sprintf "%s(%d instances in the derivation)\n"
         (Ddf_graph.Task_graph.to_ascii g)
         (List.length binding))
  | Wire.Uses iid -> Wire.Ok_ints (Session.uses_of ~view:(pin ()) session iid)
  | Wire.Refresh iid ->
    let r = Ddf_exec.Consistency.refresh ctx iid in
    Wire.Ok_refresh
      { fresh = r.Ddf_exec.Consistency.fresh_instance;
        reran = r.Ddf_exec.Consistency.reran;
        reused = r.Ddf_exec.Consistency.reused }
  | Wire.Save_flow name ->
    Session.save_flow session name;
    Wire.Ok_unit
  | Wire.Load_flow name -> Wire.Ok_ints (Session.start_plan_based session name)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* A follower's store is a replica: every write must happen on the
   primary (and arrive here through the stream), or the two histories
   diverge.  Local journal compaction and shutdown remain legal. *)
let follower_rejects t req =
  is_follower t && Wire.is_mutation req
  && (match (req : Wire.request) with
     (* the sync pull verbs are writer-serialized wal reads, not
        mutations — a follower may be inspected and pulled from, it
        just may not apply a sync (its journal must stay a byte copy
        of the primary's) *)
     | Wire.Compact | Wire.Shutdown | Wire.Sync_digest | Wire.Sync_frames _ ->
       false
     | _ -> true)

let serve_request t session ~conn_id ~user ?deadline ?trace req =
  Metrics.incr m_requests;
  Atomic.incr t.in_flight;
  Fun.protect ~finally:(fun () -> Atomic.decr t.in_flight)
  @@ fun () ->
  (* the dispatch span parents everything this request causes — queue
     wait, write job, journal sync, replication frames — and, when the
     client sent a trace token, joins the client's trace *)
  Obs.with_span ~cat:"server" ~tid:conn_id ?parent:trace
    ~attrs:[ ("op", Obs.Str (Wire.request_name req)) ]
    "server.dispatch"
  @@ fun () ->
  let t0 = Unix.gettimeofday () *. 1e6 in
  let resp =
    if
      (* inclusive: a zero-remaining budget is already spent *)
      match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
    then begin
      (* the budget was spent before dispatch (slow network, queued
         socket): doing the work now would serve a reply nobody reads *)
      Metrics.incr m_deadline_missed;
      wire_error `Timeout "deadline expired before dispatch"
    end
    else if follower_rejects t req then
      wire_error ~retryable:false
        ~context:[ ("primary", Option.value t.follow ~default:"?") ]
        `Unavailable "read-only follower: send writes to the primary at %s"
        (Option.value t.follow ~default:"?")
    else if Wire.is_mutation req then begin
      Metrics.incr m_mutations;
      submit ?deadline t ~user:!user
        (fun () -> eval t session ~pin:(fun () -> Engine.pin t.ctx) req)
    end
    else begin
      (* Pure read (including a pure-read batch): pin the latest
         published view once and evaluate against it — on a pool
         domain when the server has read domains, inline otherwise.
         Either way the request takes no server lock; every member of
         a batch reads the same frozen state. *)
      let g0 = Unix.gettimeofday () in
      let evaluate () =
        if Obs.enabled () then
          Obs.complete ~cat:"server" ~tid:conn_id
            ~dur_us:((Unix.gettimeofday () -. g0) *. 1e6)
            "server.read_queue_wait";
        let view = (Atomic.get t.published).pub_view in
        try eval t session ~pin:(fun () -> view) req
        with e -> error_response e
      in
      match Read_pool.run ?deadline t.pool evaluate with
      | `Done resp -> resp
      | `Stopping -> wire_error `Unavailable "server is shutting down"
      | `Shed ->
        Metrics.incr m_shed;
        wire_error ~retry_after:0.05 `Overloaded
          "read queue is full (%d jobs pending)"
          t.pool.Read_pool.max_pending
    end
  in
  let dur_us = (Unix.gettimeofday () *. 1e6) -. t0 in
  Metrics.observe h_request dur_us;
  (match resp with Wire.Error _ -> Metrics.incr m_errors | _ -> ());
  if Obs.enabled () then
    Obs.complete ~cat:"server" ~tid:conn_id ~dur_us
      ~attrs:
        [ ("op", Obs.Str (Wire.request_name req)); ("user", Obs.Str !user);
          ("ok", Obs.Bool (match resp with Wire.Error _ -> false | _ -> true)) ]
      "server.request";
  (match t.slow_log with
  | Some threshold when dur_us >= threshold *. 1e6 ->
    (* sampled trace dump: the slow-log line carries the trace token so
       the offending request can be pulled out of the trace file *)
    Metrics.incr m_slow;
    let tok =
      match Obs.current_span () with
      | Some ctx -> " trace=" ^ Obs.span_ctx_to_token ctx
      | None -> ""
    in
    Printf.eprintf "[hercules] slow request: op=%s user=%s conn=%d dur=%.3fs%s\n%!"
      (Wire.request_name req) !user conn_id (dur_us /. 1e6) tok
  | Some _ | None -> ());
  resp

let remove_conn t conn_id =
  Mutex.lock t.m;
  t.conns <- List.filter (fun (id, _) -> id <> conn_id) t.conns;
  Mutex.unlock t.m

(* [Snapshot_export] (wire v7): compact, then stream the on-disk
   snapshot back as begin/chunk/end frames.  The compaction and the
   descriptor open run as one writer job, so the pinned descriptor is
   exactly the state at the captured seqno; the streaming itself runs
   on the connection thread, outside the writer — a slow reader never
   blocks writes.  A later compaction renames a fresh snapshot into
   place but cannot disturb the pinned inode. *)
let snapshot_export_stream t fd ~user ~version =
  let codec = Wire.codec_for_version version in
  let send resp =
    try Wire.send_response codec fd resp with Wire.Wire_error _ -> ()
  in
  if version < 7 then
    send
      (wire_error `Invalid
         "snapshot-export needs protocol v7 (connection negotiated v%d)"
         version)
  else begin
    let pinned = ref None in
    let resp =
      submit t ~user (fun () ->
          Journal.compact t.journal;
          let seq = Journal.base_seq t.journal in
          let sfd =
            Unix.openfile (Journal.snapshot_file t.journal) [ Unix.O_RDONLY ] 0
          in
          pinned := Some (seq, sfd);
          Wire.Ok_unit)
    in
    match (resp, !pinned) with
    | Wire.Ok_unit, Some (seq, sfd) -> (
      try
        Replica.stream_snapshot ~seq sfd
          ~send:(fun r -> Wire.send_response codec fd r)
      with Wire.Wire_error _ | Unix.Unix_error _ | Sys_error _ -> ())
    | resp, _ -> send resp
  end

let rec stop t =
  let already = Atomic.exchange t.stopping true in
  Mutex.lock t.m;
  let driver = t.follower in
  t.follower <- None;
  Condition.broadcast t.queue_c;
  Mutex.unlock t.m;
  if not already then begin
    (* stop admitting pool reads; queued ones still get answered *)
    Read_pool.stop t.pool;
    (* a follower stops chasing the primary first, so no replication
       job races the drain *)
    Option.iter Replica.Follower.stop driver;
    (* unblock the accept loop; the accepter closes the listening
       socket itself on the way out *)
    (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (* graceful drain: new work is already refused everywhere, so let
       the requests being served finish (bounded by [drain_grace])
       before severing the connections *)
    let drainer =
      Thread.create
        (fun () ->
          let give_up = Unix.gettimeofday () +. t.drain_grace in
          let rec poll () =
            let busy = Atomic.get t.in_flight > 0 in
            if busy && Unix.gettimeofday () < give_up then begin
              Thread.delay 0.01;
              poll ()
            end
          in
          poll ();
          Mutex.lock t.m;
          let conns = t.conns in
          Mutex.unlock t.m;
          List.iter
            (fun (_, fd) ->
              try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ())
            conns)
        ()
    in
    Mutex.lock t.m;
    t.threads <- drainer :: t.threads;
    Mutex.unlock t.m
  end

(* A [Subscribe] flips its connection into replication mode.  The
   backlog read and the fan-out registration run as one writer job, so
   no frame can be appended between "read everything through seqno s"
   and "start receiving live frames after s" — the stream is gapless
   by construction.  After that this thread only reads acks; the
   outbox's sender thread owns the socket's write side. *)
and replication_loop t fd ~user ~version since =
  let codec = Wire.codec_for_version version in
  let outbox = Replica.Outbox.create ~codec ~name:user fd in
  let push_frames frames =
    List.iter
      (fun (seq, payload) ->
        Replica.Outbox.push outbox
          (Wire.Ok_frame
             { seq; payload; digest = Digest.to_hex (Digest.string payload) }))
      frames
  in
  let subscribed =
    submit t ~user (fun () ->
        (match Journal.entries_since t.journal since with
        | Journal.Snapshot_needed when version >= 7 ->
          (* the journal was compacted past [since]: reseed.  A v7
             subscriber gets the on-disk snapshot (state at base_seq)
             streamed in chunks — the descriptor pinned here, under
             the writer — plus the wal tail above it; neither side
             ever holds the state as one string. *)
          let base = Journal.base_seq t.journal in
          Replica.Outbox.push_snapshot_file outbox ~seq:base
            (Journal.snapshot_file t.journal);
          (match Journal.entries_since t.journal base with
          | Journal.Frames frames -> push_frames frames
          | Journal.Snapshot_needed -> assert false)
        | Journal.Snapshot_needed ->
          (* a v6-or-below subscriber: one monolithic snapshot *)
          let seq, data = Journal.snapshot_state t.journal in
          Replica.Outbox.push outbox (Wire.Ok_snapshot { seq; data })
        | Journal.Frames frames -> push_frames frames);
        register_follower t outbox;
        Wire.Ok_unit)
  in
  (match subscribed with
  | Wire.Ok_unit ->
    let rec acks () =
      match Wire.recv_request fd with
      | None -> ()
      | Some (Wire.Repl_ack seq, _, _) ->
        Replica.Outbox.note_ack outbox seq;
        update_replica_gauges t;
        acks ()
      | Some _ ->
        (* protocol violation: drop the stream *)
        ()
    in
    (try acks () with Wire.Wire_error _ | Unix.Unix_error _ -> ())
  | resp -> (
    try Wire.send_response codec fd resp with Wire.Wire_error _ -> ()));
  unregister_follower t outbox;
  Replica.Outbox.close outbox

and connection_loop t fd conn_id =
  let session = Session.of_context t.ctx in
  let user = ref "anonymous" in
  (* negotiated protocol dialect; a peer that never says Hello is
     treated as pre-streaming (v1) and gets the monolithic paths *)
  let version = ref 1 in
  let stopping () = Atomic.get t.stopping in
  (* which codec this connection answers in: a pure function of the
     negotiated version, so the reply to an accepted v8 hello — and
     everything after it — is already binary *)
  let codec () = Wire.codec_for_version !version in
  let rec loop () =
    match Wire.recv_request fd with
    | None -> ()
    | exception Wire.Wire_error m ->
      (* malformed frame or undecodable request: answer in the
         connection's current codec, then drop the connection *)
      (try Wire.send_response (codec ()) fd (wire_error `Invalid "%s" m)
       with Wire.Wire_error _ -> ())
    | Some (req, meta, _frame_codec) -> (
      (* the budget starts ticking the moment the frame is read; a
         header-less request falls back to the server default *)
      let deadline =
        let now = Unix.gettimeofday () in
        match meta.Wire.fm_deadline_ms with
        | Some ms -> Some (now +. (float_of_int ms /. 1000.0))
        | None -> Option.map (fun d -> now +. d) t.default_deadline
      in
      let trace = meta.Wire.fm_trace in
      match req with
      | Wire.Subscribe since ->
        replication_loop t fd ~user:!user ~version:!version since
      | Wire.Snapshot_export ->
        snapshot_export_stream t fd ~user:!user ~version:!version;
        if not (stopping ()) then loop ()
      | req ->
        let resp, continue =
          match req with
          | Wire.Hello { user = u; version = version_ } ->
            if
              version_ < Wire.min_protocol_version
              || version_ > Wire.protocol_version
            then begin
              Metrics.incr m_version_mismatch;
              ( wire_error `Invalid
                  "protocol version mismatch: server speaks v%d (accepts \
                   v%d..v%d), client speaks v%d"
                  Wire.protocol_version Wire.min_protocol_version
                  Wire.protocol_version version_,
                false )
            end
            else begin
              user := u;
              version := version_;
              (serve_request t session ~conn_id ~user ?deadline ?trace req,
               true)
            end
          | Wire.Shutdown ->
            ( serve_request t session ~conn_id ~user ?deadline ?trace
                Wire.Shutdown,
              false )
          | req ->
            (serve_request t session ~conn_id ~user ?deadline ?trace req, true)
        in
        (match Wire.send_response (codec ()) fd resp with
        | () -> ()
        | exception Wire.Wire_error _ -> ());
        if continue then begin
          (* during a drain, finish the request in hand but take no
             more from this connection *)
          if not (stopping ()) then loop ()
        end
        else if
          (* a Shutdown request stops the whole server after the reply *)
          match req with Wire.Shutdown -> true | _ -> false
        then stop t)
  in
  (try loop () with
  | Wire.Wire_error _ -> ()
  | Unix.Unix_error _ -> ());
  remove_conn t conn_id;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Accepting                                                           *)
(* ------------------------------------------------------------------ *)

let accept_loop t =
  let stopping () = Atomic.get t.stopping in
  (* Wait until a connection is pending or [stop] tickles the wake
     pipe, so the loop never blocks inside [accept] itself. *)
  let rec ready () =
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | rs, _, _ -> List.mem t.listen_fd rs
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ready ()
  in
  let rec loop () =
    if not (stopping ()) then begin
      if not (ready ()) then loop ()
      else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Metrics.incr m_connections;
        Mutex.lock t.m;
        let reject =
          Atomic.get t.stopping || List.length t.conns >= t.max_clients
        in
        let conn_id = t.next_conn in
        t.next_conn <- conn_id + 1;
        if not reject then t.conns <- (conn_id, fd) :: t.conns;
        Mutex.unlock t.m;
        if reject then begin
          Metrics.incr m_rejected;
          (try
             Wire.send fd
               (Wire.response_to_sexp
                  (wire_error ~retry_after:0.1 `Overloaded
                     "server is at capacity (%d clients)" t.max_clients))
           with Wire.Wire_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          let th = Thread.create (fun () -> connection_loop t fd conn_id) () in
          Mutex.lock t.m;
          t.threads <- th :: t.threads;
          Mutex.unlock t.m
        end;
        loop ()
      | exception
          Unix.Unix_error
            ( ( Unix.EBADF | Unix.EINVAL | Unix.EINTR | Unix.EAGAIN
              | Unix.EWOULDBLOCK | Unix.ECONNABORTED ),
              _, _ ) ->
        (* signal, aborted handshake, or a spurious wakeup: re-check
           the flag *)
        loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?registry ?seed ?follow ?feed_version ?(max_clients = 64)
    ?(request_timeout = 30.0) ?(max_queue = 256) ?default_deadline
    ?(read_domains = 0) ?(drain_grace = 5.0) ?compact_every ?sync_mode
    ?slow_log ~db ~socket schema =
  let journal = Journal.open_ ?registry ?compact_every ?sync_mode ~dir:db schema in
  let ctx = Journal.context journal in
  (match seed with
  | Some f when follow = None && Store.instance_count ctx.Engine.store = 0 ->
    f ctx
  | Some _ | None -> ());
  if Sys.file_exists socket then (
    try Unix.unlink socket
    with Unix.Unix_error _ -> server_errorf "cannot remove stale socket %s" socket);
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Journal.close journal;
     server_errorf "cannot bind %s: %s" socket (Unix.error_message e));
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let wake_r, wake_w = Unix.pipe () in
  let t =
    { journal; ctx; commit_m = Commit_lock.create ();
      published =
        Atomic.make
          { pub_view = Engine.pin ctx; pub_seq = Journal.seq journal;
            pub_clock = ctx.Engine.clock };
      pool =
        Read_pool.create ~domains:read_domains
          ~max_pending:(4 * max_clients);
      socket_path = socket; listen_fd; wake_r; wake_w;
      max_clients; request_timeout; max_queue; default_deadline;
      drain_grace; slow_log;
      started_at = Unix.gettimeofday ();
      stopping = Atomic.make false; in_flight = Atomic.make 0;
      m = Mutex.create (); conns = []; next_conn = 1;
      threads = []; queue = Queue.create (); queue_c = Condition.create ();
      avg_job_us = 0.0;
      writer = None; accepter = None;
      follow; follower = None; followers = [] }
  in
  (* Fan every journaled entry out to the subscribed followers.  The
     observer fires on the writer thread right after the entry hits
     the local disk (durable first, then ship) — and it fires on
     replicated applies too, so a follower can itself feed followers. *)
  Journal.set_frame_observer journal (fun seq payload ->
      Metrics.set g_seq (float_of_int seq);
      match live_followers t with
      | [] -> ()
      | obs ->
        let frame =
          Wire.Ok_frame
            { seq; payload; digest = Digest.to_hex (Digest.string payload) }
        in
        (* the observer fires on the writer thread inside the write-job
           span, so the frame ships with the producing request's trace *)
        let trace = if Obs.enabled () then Obs.current_span () else None in
        List.iter (fun ob -> Replica.Outbox.push ?trace ob frame) obs);
  Metrics.set g_seq (float_of_int (Journal.seq journal));
  t.writer <- Some (Thread.create writer_loop t);
  t.accepter <- Some (Thread.create accept_loop t);
  (* A follower chases its primary on a background driver: every frame
     and snapshot is applied as a writer job, so replication shares
     the one serialization point (and the RW lock, and auto-compaction)
     with local mutations. *)
  (match follow with
  | None -> ()
  | Some primary ->
    let apply_job what run =
      match submit t ~user:"replication" run with
      | Wire.Ok_unit -> ()
      | Wire.Error err ->
        server_errorf "replication %s failed: %s" what (E.to_string err)
      | _ -> server_errorf "replication %s failed" what
    in
    let driver =
      Replica.Follower.start
        ~name:(Printf.sprintf "follower:%s" (Filename.basename socket))
        ?version:feed_version
        (* spool streamed snapshots beside the database, so the final
           rename into place stays on one filesystem *)
        ~spool:(Journal.dir t.journal)
        ~primary
        ~current_seq:(fun () -> Journal.seq t.journal)
        ~apply:(fun ~trace ~seq payload ->
          apply_job "apply" (fun () ->
              (* linked under the primary's write span via the frame's
                 trace token: the cross-process apply-lag edge *)
              Obs.with_span ~cat:"replica" ?parent:trace
                ~attrs:[ ("seq", Obs.Int seq) ] "follower.apply"
                (fun () -> Journal.apply t.journal ~seq payload);
              Wire.Ok_unit))
        ~reset:(fun ~seq data ->
          apply_job "resync" (fun () ->
              Journal.reset_to_snapshot t.journal ~seq data;
              Wire.Ok_unit))
        ~reset_file:(fun ~seq path ->
          apply_job "resync" (fun () ->
              Journal.reset_to_snapshot_file t.journal ~seq path;
              Wire.Ok_unit))
        ~on_error:(fun m ->
          if Obs.enabled () then
            Obs.instant ~cat:"replica" ~attrs:[ ("error", Obs.Str m) ]
              "replica.stream_error")
        ()
    in
    t.follower <- Some driver);
  t

(* Failover: stop chasing the (dead) primary and open for writes.
   The local journal already holds a prefix of the primary's history —
   byte-identical — so new writes continue the same log. *)
let promote t =
  let driver =
    Mutex.lock t.m;
    let d = t.follower in
    t.follower <- None;
    t.follow <- None;
    Mutex.unlock t.m;
    d
  in
  Option.iter Replica.Follower.stop driver

let wait t =
  Option.iter Thread.join t.accepter;
  Option.iter Thread.join t.writer;
  let rec drain () =
    Mutex.lock t.m;
    let ths = t.threads in
    t.threads <- [];
    Mutex.unlock t.m;
    match ths with
    | [] -> ()
    | ths ->
      List.iter Thread.join ths;
      drain ()
  in
  drain ();
  Read_pool.join t.pool;
  Journal.close t.journal;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ | Sys_error _ -> ())

let run ?registry ?seed ?follow ?feed_version ?max_clients ?request_timeout
    ?max_queue ?default_deadline ?read_domains ?drain_grace ?compact_every
    ?sync_mode ?slow_log ~db ~socket schema =
  let t =
    start ?registry ?seed ?follow ?feed_version ?max_clients ?request_timeout
      ?max_queue ?default_deadline ?read_domains ?drain_grace ?compact_every
      ?sync_mode ?slow_log ~db ~socket schema
  in
  let on_signal _ = stop t in
  let previous =
    List.filter_map
      (fun s ->
        try Some (s, Sys.signal s (Sys.Signal_handle on_signal))
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigint; Sys.sigterm ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (s, old) -> try Sys.set_signal s old with _ -> ()) previous)
    (fun () -> wait t)
