(** The Hercules design-server daemon.

    One process owns a journaled design database
    ({!Ddf_journal.Journal}) and serves the {!Ddf_wire.Wire} protocol
    over a Unix-domain socket.  Each connection gets a reader thread
    and its own {!Ddf_session.Session} (task window, flow catalog,
    selections) over the one shared engine context; store/history
    mutations funnel through a single-writer loop, which publishes an
    immutable store+history snapshot ({!Ddf_exec.Engine.view}) after
    each group commit.  Pure reads — single requests and pure-read
    batches alike — evaluate against the latest published view and
    take {e no} lock: with [read_domains > 0] they are dispatched to
    a pool of OCaml 5 worker domains and scale across cores, with
    [read_domains = 0] (the default) they run inline on the
    connection thread, equally lock-free.  The only remaining lock on
    the commit path is the writer's, instrumented as the
    [server.lock_acquisitions] counter — flat under read-only load,
    which the test suite asserts.  Every request is traced as a
    [server.dispatch] span (lane = connection id) carrying
    [server.request] timing, joined to the client's distributed trace
    when the frame header carried a trace token, and counted in the
    metrics registry; queue wait, write job, group-commit fsync and
    follower applies appear as child spans of the same trace.  The
    [Metrics] wire verb exposes the registry (with p50/p90/p99
    histogram quantiles) to remote clients.

    Robustness: both admission queues are bounded — at most
    [max_queue] mutations wait for the writer and at most
    [4 * max_clients] pool reads wait for a worker domain; excess
    load is shed with a typed [`Overloaded] error carrying a
    retry-after hint, {e before} any work (or journaling) happens.
    Requests carry a deadline budget in the frame header (or inherit
    [default_deadline]); a request whose budget expires before or
    while it waits is shed with [`Timeout] — again never executed,
    so resending is safe.  Graceful shutdown stops admitting, lets
    in-flight requests finish (bounded by [drain_grace]), drains the
    writer and the read pool, closes the connections and fsyncs the
    journal; {!stop} and {!wait} are idempotent. *)

exception Server_error of string

type t

val start :
  ?registry:Ddf_tools.Encapsulation.registry ->
  ?seed:(Ddf_exec.Engine.context -> unit) ->
  ?follow:string ->
  ?feed_version:int ->
  ?max_clients:int ->
  ?request_timeout:float ->
  ?max_queue:int ->
  ?default_deadline:float ->
  ?read_domains:int ->
  ?drain_grace:float ->
  ?compact_every:int ->
  ?sync_mode:Ddf_journal.Journal.sync_mode ->
  ?slow_log:float ->
  db:string -> socket:string -> Ddf_schema.Schema.t -> t
(** Open (or create) the database under [db], bind [socket] and start
    accepting.  [seed] runs once — journaled — when the database is
    empty (the CLI installs the standard tool catalog there).
    [max_clients] (default 64) bounds concurrent connections;
    [request_timeout] (default 30s) bounds a mutation's wait in the
    write queue.

    [max_queue] (default 256) bounds the write queue: a mutation
    arriving when it is full is refused with [`Overloaded] and a
    retry-after hint derived from the writer's recent service rate.
    [read_domains] (default 0) sets the size of the domain-pool read
    executor: with [N > 0], pure reads are evaluated on [N] OCaml 5
    worker domains, each pinning the latest published store+history
    view, so read throughput scales across cores; with [0] they run
    inline on the connection threads — in both modes the read path
    acquires no server lock.  [default_deadline] (seconds) gives
    every request from a peer that sent no deadline header an
    implicit budget; [drain_grace] (default 5s) is how long {!stop}
    lets in-flight requests finish before severing their
    connections.

    [slow_log] (seconds) turns on the slow-request log: any request
    whose service time exceeds the threshold is reported on stderr
    with its operation, user, duration and — when tracing — its trace
    token, and counted in [server.slow_requests].

    [sync_mode] (default [Group]) sets the journal durability policy.
    Under [Group] the writer loop drains its queue in batches and
    fsyncs once per batch {e before} acknowledging any job in it —
    group commit: every [Ok] a client sees is durable, but concurrent
    writers share one fsync.  [Always] fsyncs inside every append;
    [Never] never fsyncs (replay-only / bench scaffolding).

    [follow] makes this daemon a replication follower of the primary
    listening on that socket: it subscribes to the primary's journal
    stream, applies every entry through its own (crash-safe) journal,
    serves the whole read surface locally and rejects writes; [seed]
    is ignored (state comes from the stream).  The connection is kept
    alive with bounded exponential backoff, and a follower whose
    journal predates the primary's snapshot resyncs from a fresh
    snapshot automatically.  [feed_version] overrides the protocol
    version the replication feed hellos with (the [--wire sexp] debug
    lever: 7 keeps the upstream link on the sexp codec).
    @raise Server_error when the socket cannot be bound. *)

val context : t -> Ddf_exec.Engine.context
(** The shared engine context.  Not synchronized: use it only before
    serving traffic or after {!wait} returns. *)

val role : t -> string
(** ["primary"] or ["follower"] — also reported in [Stat]. *)

val promote : t -> unit
(** Follower failover: stop following and start accepting writes.  The
    local journal holds a byte-identical prefix of the primary's log,
    so new writes continue the same history.  No-op on a primary. *)

val stop : t -> unit
(** Initiate graceful shutdown (idempotent): stop accepting, unblock
    readers, drain the write queue, fsync and close the journal. *)

val wait : t -> unit
(** Block until the server has fully shut down. *)

val run :
  ?registry:Ddf_tools.Encapsulation.registry ->
  ?seed:(Ddf_exec.Engine.context -> unit) ->
  ?follow:string ->
  ?feed_version:int ->
  ?max_clients:int ->
  ?request_timeout:float ->
  ?max_queue:int ->
  ?default_deadline:float ->
  ?read_domains:int ->
  ?drain_grace:float ->
  ?compact_every:int ->
  ?sync_mode:Ddf_journal.Journal.sync_mode ->
  ?slow_log:float ->
  db:string -> socket:string -> Ddf_schema.Schema.t -> unit
(** {!start}, shut down on SIGINT/SIGTERM (or a [Shutdown] request),
    {!wait}. *)
