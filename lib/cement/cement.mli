(** Tiered cold storage for cemented journal history.

    The journal's entries are immutable once written: frames below the
    compaction watermark ([base.ddf]) describe puts, annotations and
    flow records that can never change again.  Before this subsystem
    they were folded into the snapshot and {e discarded} — restart
    replay, anti-entropy catch-up and cold version/trace queries below
    the watermark were impossible without a full resync.

    [Cement] keeps that history in {e segments}: append-only,
    checksummed, index-backed files under a [cemented/] directory.  A
    segment holds a contiguous seqno window

    {v
      segment-<first>-<last>.ddf   C1 <first> <last>\n + J1 frames
      segment-<first>-<last>.idx   I1 header + fixed-width offset lines
    v}

    The frames reuse the wal's [J1 <len> <md5>] framing, so a cemented
    frame is byte-identical to the wal frame it came from; the index
    maps a seqno to its byte offset in O(1) (one fixed-width line per
    entry), so lookups are served by pread-style positioned reads, not
    replay.  The index is derived data: a missing or inconsistent
    [.idx] is rebuilt from its segment on open.

    Crash safety: segments are written to a temp file, fsynced and
    renamed into place (the directory is fsynced after the rename); a
    torn tail on the newest segment — external truncation, a crash
    while the file system reordered writes — is detected on open by a
    full scan of that segment and truncated back to the last good
    frame (an empty survivor is dropped entirely).

    Thread safety: all operations on one [t] are serialised by an
    internal mutex; callers may read from any thread. *)

type t

val open_ : dir:string -> t
(** Open (creating the directory if needed) the cement store rooted at
    [dir].  Scans segment files, validates contiguity, truncates a
    torn newest segment and rebuilds stale indexes.
    @raise Ddf_core.Error.Ddf_error on unrecoverable corruption (a
    seqno gap between surviving segments). *)

val dir : t -> string

val first_seq : t -> int
(** Lowest cemented seqno; [0] when the store is empty. *)

val last_seq : t -> int
(** Highest cemented seqno; [0] when the store is empty. *)

val segment_count : t -> int

val total_bytes : t -> int
(** Bytes across all segment ([.ddf]) files. *)

val truncated_on_open : t -> int
(** Bytes of torn tail dropped by crash recovery during {!open_}. *)

val fold : t -> first:int -> (int * string) list -> unit
(** [fold t ~first frames] cements [frames] (ascending, contiguous
    [(seqno, payload)] starting at [first]) as one new segment.
    Frames with seqno <= {!last_seq} are skipped — refolding after a
    crash between the cement fold and the watermark write is
    idempotent — and the remainder must start at [last_seq t + 1].
    A no-op on an empty list.  Durable on return (file and directory
    fsync).  Observes [cement.fold_seconds] and bumps
    [cement.segments]/[cement.bytes].
    @raise Ddf_core.Error.Ddf_error on a seqno gap. *)

val read : t -> int -> string option
(** [read t seq] returns the cemented frame payload for [seq] via one
    index lookup and one positioned read, verifying the frame
    checksum; [None] when [seq] is outside the cemented window.
    Counts [cement.reads]. *)

val iter_range : t -> from:int -> upto:int -> (int -> string -> unit) -> unit
(** [iter_range t ~from ~upto f] calls [f seq payload] for every
    cemented seqno in [[from, upto]] (clamped to the cemented window),
    ascending — sequential reads, one index lookup per segment. *)

val find_put : t -> iid:int -> string option
(** The cemented [put] frame payload that installed instance [iid], if
    any — the store's cold-load path for evicted payloads.  Served by
    an index scan (the index records each frame's kind and id). *)

val iter_puts : t -> (int -> unit) -> unit
(** Iterate the iids of every cemented [put] frame (index scan, no
    frame reads) — the eviction planner's view of what is reloadable. *)

val clear : t -> unit
(** Drop every segment — used when the journal's history is replaced
    wholesale (a snapshot resync rebases the seqno line, so the old
    cold history no longer belongs to this database). *)

val close : t -> unit
(** Release cached descriptors.  The [t] stays usable (descriptors
    reopen lazily); call it when discarding the store. *)
