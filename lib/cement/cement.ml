(* Tiered cold storage: cemented journal history in append-only,
   checksummed, index-backed segment files.

   Layout of a cement directory (conventionally <db>/cemented):

     segment-<first>-<last>.ddf    C1 <first> <last>\n  + J1 frames
     segment-<first>-<last>.idx    I1 <first> <last> <count>\n
                                   + one 32-byte line per entry:
                                     %016x %c %012d\n
                                     offset kind  id

   The frames reuse the wal's framing byte-for-byte (J1 <len> <md5>
   header, payload, newline), so cementing is a copy, not a
   re-encoding, and every read re-verifies the md5.  The index line
   records the frame's byte offset (hex, fixed width), its entry kind
   (p/n/r/c/v for put/note/record/conflict/resolve) and the id the
   entry installs (the iid for puts and notes, 0 otherwise) — enough
   for O(1) seqno lookup and for the store's cold-load path to find
   the put frame of an evicted payload without replaying anything.

   The index is derived data: if it is missing, or its header
   disagrees with the segment, it is rebuilt by one sequential scan.
   Only the newest segment can have a torn tail (older ones were
   complete when the next was created), so open scans that one segment
   fully and truncates it back to the last good frame. *)

module Metrics = Ddf_obs.Metrics
module Obs = Ddf_obs.Obs

let cement_errorf ?(code = `Internal) fmt = Ddf_core.Error.errorf code fmt

let g_segments = Metrics.gauge "cement.segments"
let g_bytes = Metrics.gauge "cement.bytes"
let m_reads = Metrics.counter "cement.reads"
let m_folds = Metrics.counter "cement.folds"
let h_fold = Metrics.histogram "cement.fold_seconds"

(* ------------------------------------------------------------------ *)
(* Framing (the wal's J1 format, byte-identical)                       *)
(* ------------------------------------------------------------------ *)

let frame_of payload =
  Printf.sprintf "J1 %d %s\n%s\n" (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

(* Read one frame from a channel; [None] cleanly at end of file,
   [`Torn at] when the tail is damaged ([at] = end of the good
   prefix). *)
let read_frame ic =
  let start = pos_in ic in
  match input_line ic with
  | exception End_of_file -> `End
  | header -> (
    match String.split_on_char ' ' header with
    | [ "J1"; len; digest ] -> (
      match int_of_string_opt len with
      | Some len when len >= 0 -> (
        match really_input_string ic (len + 1) with
        | exception End_of_file -> `Torn start
        | payload ->
          if payload.[len] <> '\n' then `Torn start
          else
            let payload = String.sub payload 0 len in
            if Digest.to_hex (Digest.string payload) <> digest then `Torn start
            else `Frame payload)
      | Some _ | None -> `Torn start)
    | _ -> `Torn start)

(* ------------------------------------------------------------------ *)
(* Entry classification (for the index)                                *)
(* ------------------------------------------------------------------ *)

(* Frames are our own codec's output: "(put (iid N) ...)", "(note (iid
   N) ...)", "(record ...)", "(conflict ...)", "(resolve ...)".  The
   kind is the first atom; the id is the integer after the first
   "(iid" (puts and notes only).  A scan, not a full parse — the frame
   checksum already vouches for the bytes. *)
let classify payload =
  let n = String.length payload in
  let rec skip_ws i = if i < n && (payload.[i] = ' ' || payload.[i] = '\n') then skip_ws (i + 1) else i in
  let kind =
    let i = skip_ws (if n > 0 && payload.[0] = '(' then 1 else 0) in
    let rec word j = if j < n && payload.[j] >= 'a' && payload.[j] <= 'z' then word (j + 1) else j in
    match String.sub payload i (word i - i) with
    | "put" -> 'p'
    | "note" -> 'n'
    | "record" -> 'r'
    | "conflict" -> 'c'
    | "resolve" -> 'v'
    | _ | (exception Invalid_argument _) -> '?'
  in
  let id =
    if kind <> 'p' && kind <> 'n' then 0
    else
      let rec find i =
        if i + 4 > n then 0
        else if String.sub payload i 4 = "(iid" then
          let i = skip_ws (i + 4) in
          let rec digits j acc =
            if j < n && payload.[j] >= '0' && payload.[j] <= '9' then
              digits (j + 1) ((acc * 10) + Char.code payload.[j] - 48)
            else acc
          in
          digits i 0
        else find (i + 1)
      in
      find 0
  in
  (kind, id)

(* ------------------------------------------------------------------ *)
(* Segments                                                            *)
(* ------------------------------------------------------------------ *)

type segment = {
  s_first : int;
  s_last : int;
  s_path : string;                    (* .ddf *)
  s_idx : string;                     (* .idx *)
  s_bytes : int;
  s_idx_base : int;                   (* byte length of the idx header *)
  s_min_put : int;                    (* smallest/largest put iid, 0/0 if none *)
  s_max_put : int;
  mutable s_fd : Unix.file_descr option;      (* cached .ddf descriptor *)
  mutable s_idx_fd : Unix.file_descr option;  (* cached .idx descriptor *)
}

type t = {
  c_dir : string;
  c_m : Mutex.t;
  mutable c_segments : segment array;  (* ascending, contiguous *)
  c_truncated : int;
}

let idx_line_len = 32

let seg_name first last = Printf.sprintf "segment-%012d-%012d" first last
let seg_path dir first last = Filename.concat dir (seg_name first last ^ ".ddf")
let idx_path dir first last = Filename.concat dir (seg_name first last ^ ".idx")

let parse_seg_name name =
  match Scanf.sscanf name "segment-%012d-%012d.ddf%!" (fun a b -> (a, b)) with
  | pair -> Some pair
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let idx_header first last count = Printf.sprintf "I1 %d %d %d\n" first last count
let idx_entry off kind id = Printf.sprintf "%016x %c %012d\n" off kind id

let parse_idx_entry line =
  if String.length line <> idx_line_len - 1 then
    cement_errorf "cement index: malformed entry %S" line
  else
    let off = int_of_string ("0x" ^ String.sub line 0 16) in
    let kind = line.[17] in
    let id = int_of_string (String.sub line 19 12) in
    (off, kind, id)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Scan a segment's frames: returns (offsets-and-payloads in order,
   end-of-good-prefix).  [offsets] are absolute file offsets. *)
let scan_segment path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let header = try input_line ic with End_of_file -> "" in
  match String.split_on_char ' ' header with
  | [ "C1"; first; last ] -> (
    match (int_of_string_opt first, int_of_string_opt last) with
    | Some first, Some last ->
      let frames = ref [] in
      let rec go () =
        let off = pos_in ic in
        match read_frame ic with
        | `End -> off
        | `Torn at -> at
        | `Frame payload ->
          frames := (off, payload) :: !frames;
          go ()
      in
      let good_end = go () in
      `Seg (first, last, List.rev !frames, good_end, in_channel_length ic)
    | _ -> `Bad_header)
  | _ -> `Bad_header

(* Build (or rebuild) the idx file for a scanned segment; returns the
   idx header length. *)
let write_idx ~dir ~first ~last frames =
  let path = idx_path dir first last in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let header = idx_header first last (List.length frames) in
  (try
     output_string oc header;
     List.iter
       (fun (off, payload) ->
         let kind, id = classify payload in
         output_string oc (idx_entry off kind id))
       frames;
     fsync_oc oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  String.length header

let put_bounds frames =
  List.fold_left
    (fun (mn, mx) (_, payload) ->
      match classify payload with
      | 'p', id when id > 0 ->
        ((if mn = 0 then id else min mn id), max mx id)
      | _ -> (mn, mx))
    (0, 0) frames

(* Validate the idx against the segment scan; rebuild when stale.
   Returns (idx_base, min_put, max_put). *)
let ensure_idx ~dir ~first ~last frames =
  let path = idx_path dir first last in
  let count = List.length frames in
  let expect = idx_header first last count in
  let stale =
    if not (Sys.file_exists path) then true
    else begin
      let ic = open_in_bin path in
      let header = (try input_line ic with End_of_file -> "") ^ "\n" in
      let len = in_channel_length ic in
      close_in ic;
      header <> expect
      || len <> String.length expect + (count * idx_line_len)
    end
  in
  let base =
    if stale then write_idx ~dir ~first ~last frames
    else String.length expect
  in
  let mn, mx = put_bounds frames in
  (base, mn, mx)

(* ------------------------------------------------------------------ *)
(* Open                                                                *)
(* ------------------------------------------------------------------ *)

let refresh_gauges t =
  Metrics.set g_segments (float_of_int (Array.length t.c_segments));
  Metrics.set g_bytes
    (float_of_int
       (Array.fold_left (fun acc s -> acc + s.s_bytes) 0 t.c_segments))

let open_ ~dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    cement_errorf "%s is not a directory" dir;
  let names =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map parse_seg_name
    |> List.sort compare
  in
  let truncated = ref 0 in
  (* leftover temp files from a crashed fold are garbage *)
  Array.iter
    (fun n ->
      if Filename.check_suffix n ".tmp" then
        try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
    (Sys.readdir dir);
  let n_names = List.length names in
  let segments =
    List.mapi
      (fun i (first, last) ->
        let path = seg_path dir first last in
        let newest = i = n_names - 1 in
        match scan_segment path with
        | `Bad_header ->
          if newest then begin
            (* a damaged newest segment cannot be trusted at all *)
            truncated := !truncated + (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0);
            (try Sys.remove path with Sys_error _ -> ());
            (try Sys.remove (idx_path dir first last) with Sys_error _ -> ());
            None
          end
          else cement_errorf "cement segment %s: bad header" path
        | `Seg (hfirst, hlast, frames, good_end, size) ->
          if hfirst <> first || hlast <> last then
            cement_errorf "cement segment %s: header names %d-%d" path hfirst
              hlast;
          let have = List.length frames in
          let want = last - first + 1 in
          if have > want then
            cement_errorf "cement segment %s: %d frames for window %d-%d" path
              have first last;
          if have < want && not newest then
            cement_errorf "cement segment %s: torn mid-store (%d/%d frames)"
              path have want;
          if have = 0 then begin
            (* nothing survived: drop the segment *)
            truncated := !truncated + size;
            (try Sys.remove path with Sys_error _ -> ());
            (try Sys.remove (idx_path dir first last) with Sys_error _ -> ());
            None
          end
          else begin
            let last, path, size =
              if have = want then (last, path, size)
              else begin
                (* torn tail on the newest segment: truncate to the
                   good prefix and rename to the window that survived *)
                truncated := !truncated + (size - good_end);
                let last' = first + have - 1 in
                let path' = seg_path dir first last' in
                let ic = open_in_bin path in
                let good = really_input_string ic good_end in
                close_in ic;
                (* rewrite with the corrected header, atomically *)
                let body =
                  let nl = String.index good '\n' in
                  String.sub good (nl + 1) (String.length good - nl - 1)
                in
                let tmp = path' ^ ".tmp" in
                let oc = open_out_bin tmp in
                let hdr = Printf.sprintf "C1 %d %d\n" first last' in
                output_string oc hdr;
                output_string oc body;
                fsync_oc oc;
                close_out oc;
                Sys.rename tmp path';
                if path' <> path then
                  (try Sys.remove path with Sys_error _ -> ());
                (try Sys.remove (idx_path dir first last) with Sys_error _ -> ());
                (* offsets shift by the header-length delta *)
                (last', path', String.length hdr + String.length body)
              end
            in
            (* re-scan offsets if we rewrote; cheap relative to open *)
            let frames =
              if last = hlast then frames
              else
                match scan_segment path with
                | `Seg (_, _, frames, _, _) -> frames
                | `Bad_header -> cement_errorf "cement segment %s: rewrite failed" path
            in
            let idx_base, mn, mx = ensure_idx ~dir ~first ~last frames in
            Some
              { s_first = first; s_last = last; s_path = path;
                s_idx = idx_path dir first last; s_bytes = size;
                s_idx_base = idx_base; s_min_put = mn; s_max_put = mx;
                s_fd = None; s_idx_fd = None }
          end)
      names
    |> List.filter_map Fun.id
  in
  if !truncated > 0 then fsync_dir dir;
  (* surviving segments must be contiguous *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      if b.s_first <> a.s_last + 1 then
        cement_errorf "cement store %s: gap between %d and %d" dir a.s_last
          b.s_first;
      check rest
    | _ -> ()
  in
  check segments;
  let t =
    { c_dir = dir; c_m = Mutex.create ();
      c_segments = Array.of_list segments; c_truncated = !truncated }
  in
  refresh_gauges t;
  t

let dir t = t.c_dir
let truncated_on_open t = t.c_truncated

let locked t f =
  Mutex.lock t.c_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.c_m) f

let first_seq t =
  locked t @@ fun () ->
  if Array.length t.c_segments = 0 then 0 else t.c_segments.(0).s_first

let last_seq t =
  locked t @@ fun () ->
  let n = Array.length t.c_segments in
  if n = 0 then 0 else t.c_segments.(n - 1).s_last

let segment_count t = locked t @@ fun () -> Array.length t.c_segments

let total_bytes t =
  locked t @@ fun () ->
  Array.fold_left (fun acc s -> acc + s.s_bytes) 0 t.c_segments

(* ------------------------------------------------------------------ *)
(* Fold (cementing)                                                    *)
(* ------------------------------------------------------------------ *)

let fold t ~first frames =
  let t0 = Unix.gettimeofday () in
  locked t
    (fun () ->
      let n = Array.length t.c_segments in
      let last_cemented = if n = 0 then 0 else t.c_segments.(n - 1).s_last in
      (* idempotence across the compact crash window: skip what is
         already cemented *)
      let frames =
        List.filteri (fun i _ -> first + i > last_cemented) frames
      in
      let first = max first (last_cemented + 1) in
      match frames with
      | [] -> ()
      | frames ->
        if n > 0 && first <> last_cemented + 1 then
          cement_errorf ~code:`Conflict
            "cement fold gap: have through %d, offered from %d" last_cemented
            first;
        (* contiguity within the batch is the caller's contract; the
           index assumes seqno = first + position *)
        let last = first + List.length frames - 1 in
        let path = seg_path t.c_dir first last in
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        let offsets = ref [] in
        (try
           let hdr = Printf.sprintf "C1 %d %d\n" first last in
           output_string oc hdr;
           List.iter
             (fun (_, payload) ->
               offsets := (pos_out oc, payload) :: !offsets;
               output_string oc (frame_of payload))
             frames;
           fsync_oc oc;
           close_out oc
         with e ->
           close_out_noerr oc;
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e);
        Sys.rename tmp path;
        let offsets = List.rev !offsets in
        let idx_base = write_idx ~dir:t.c_dir ~first ~last offsets in
        fsync_dir t.c_dir;
        let mn, mx = put_bounds offsets in
        let size = (Unix.stat path).Unix.st_size in
        let seg =
          { s_first = first; s_last = last; s_path = path;
            s_idx = idx_path t.c_dir first last; s_bytes = size;
            s_idx_base = idx_base; s_min_put = mn; s_max_put = mx;
            s_fd = None; s_idx_fd = None }
        in
        t.c_segments <- Array.append t.c_segments [| seg |];
        Metrics.incr m_folds;
        refresh_gauges t);
  let dt = Unix.gettimeofday () -. t0 in
  Metrics.observe h_fold dt;
  if Obs.enabled () then
    Obs.complete ~cat:"cement" ~dur_us:(dt *. 1e6)
      ~attrs:[ ("frames", Obs.Int (List.length frames)) ]
      "cement.fold"

(* ------------------------------------------------------------------ *)
(* Reads (positioned, index-backed)                                    *)
(* ------------------------------------------------------------------ *)

(* Positioned read on a cached descriptor.  Callers hold [t.c_m], so
   the lseek+read pair is atomic with respect to other readers. *)
let seg_fd seg =
  match seg.s_fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.openfile seg.s_path [ Unix.O_RDONLY ] 0 in
    seg.s_fd <- Some fd;
    fd

let seg_idx_fd seg =
  match seg.s_idx_fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.openfile seg.s_idx [ Unix.O_RDONLY ] 0 in
    seg.s_idx_fd <- Some fd;
    fd

let pread fd ~off ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET : int);
  let buf = Bytes.create len in
  let rec go o =
    if o >= len then o
    else
      match Unix.read fd buf o (len - o) with 0 -> o | k -> go (o + k)
  in
  let n = go 0 in
  Bytes.sub_string buf 0 n

let find_segment t seq =
  let segs = t.c_segments in
  let rec bisect lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let s = segs.(mid) in
      if seq < s.s_first then bisect lo (mid - 1)
      else if seq > s.s_last then bisect (mid + 1) hi
      else Some s
  in
  bisect 0 (Array.length segs - 1)

(* The indexed offset of [seq] within its segment. *)
let entry_offset seg seq =
  let k = seq - seg.s_first in
  let line =
    pread (seg_idx_fd seg) ~off:(seg.s_idx_base + (k * idx_line_len))
      ~len:idx_line_len
  in
  if String.length line <> idx_line_len then
    cement_errorf "cement index %s: short read at entry %d" seg.s_idx k;
  let off, kind, id = parse_idx_entry (String.sub line 0 (idx_line_len - 1)) in
  (off, kind, id)

(* Read the frame at [off]: parse the J1 header out of a fixed-size
   probe, then read exactly the payload. *)
let frame_at seg off =
  let fd = seg_fd seg in
  let probe = pread fd ~off ~len:64 in
  let nl =
    match String.index_opt probe '\n' with
    | Some i -> i
    | None -> cement_errorf "cement segment %s: bad frame header" seg.s_path
  in
  match String.split_on_char ' ' (String.sub probe 0 nl) with
  | [ "J1"; len; digest ] ->
    let len =
      match int_of_string_opt len with
      | Some n when n >= 0 -> n
      | Some _ | None ->
        cement_errorf "cement segment %s: bad frame length" seg.s_path
    in
    let payload = pread fd ~off:(off + nl + 1) ~len in
    if String.length payload <> len then
      cement_errorf "cement segment %s: short frame read" seg.s_path;
    if Digest.to_hex (Digest.string payload) <> digest then
      cement_errorf "cement segment %s: frame checksum mismatch at %d"
        seg.s_path off;
    payload
  | _ -> cement_errorf "cement segment %s: bad frame header" seg.s_path

let read t seq =
  locked t @@ fun () ->
  match find_segment t seq with
  | None -> None
  | Some seg ->
    let off, _, _ = entry_offset seg seq in
    Metrics.incr m_reads;
    Some (frame_at seg off)

let iter_range t ~from ~upto f =
  (* collect under the lock, deliver outside it, segment by segment —
     [f] may be arbitrary user code *)
  let batch from upto =
    locked t @@ fun () ->
    match find_segment t from with
    | None -> None
    | Some seg ->
      let hi = min upto seg.s_last in
      let off, _, _ = entry_offset seg from in
      let ic = open_in_bin seg.s_path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      seek_in ic off;
      let out = ref [] in
      (try
         for seq = from to hi do
           match read_frame ic with
           | `Frame payload -> out := (seq, payload) :: !out
           | `End | `Torn _ ->
             cement_errorf "cement segment %s: truncated mid-window"
               seg.s_path
         done
       with e -> raise e);
      Metrics.incr m_reads;
      Some (List.rev !out, hi)
  in
  let rec go from =
    if from <= upto then
      match batch from upto with
      | None -> ()
      | Some (frames, hi) ->
        List.iter (fun (seq, payload) -> f seq payload) frames;
        go (hi + 1)
  in
  let lo = max from (first_seq t) in
  if lo > 0 then go lo

(* Scan one segment's index sequentially, newest first, for the put
   frame of [iid]. *)
let find_put t ~iid =
  locked t @@ fun () ->
  let segs = t.c_segments in
  let rec search i =
    if i < 0 then None
    else
      let seg = segs.(i) in
      if seg.s_min_put = 0 || iid < seg.s_min_put || iid > seg.s_max_put then
        search (i - 1)
      else begin
        let count = seg.s_last - seg.s_first + 1 in
        let fd = seg_idx_fd seg in
        let body = pread fd ~off:seg.s_idx_base ~len:(count * idx_line_len) in
        let rec scan k =
          if k >= count then None
          else
            let line = String.sub body (k * idx_line_len) (idx_line_len - 1) in
            let off, kind, id = parse_idx_entry line in
            if kind = 'p' && id = iid then begin
              Metrics.incr m_reads;
              Some (frame_at seg off)
            end
            else scan (k + 1)
        in
        match scan 0 with Some p -> Some p | None -> search (i - 1)
      end
  in
  search (Array.length segs - 1)

let iter_puts t f =
  let ids =
    locked t @@ fun () ->
    let out = ref [] in
    Array.iter
      (fun seg ->
        if seg.s_min_put > 0 then begin
          let count = seg.s_last - seg.s_first + 1 in
          let body =
            pread (seg_idx_fd seg) ~off:seg.s_idx_base
              ~len:(count * idx_line_len)
          in
          for k = 0 to count - 1 do
            let line = String.sub body (k * idx_line_len) (idx_line_len - 1) in
            let _, kind, id = parse_idx_entry line in
            if kind = 'p' then out := id :: !out
          done
        end)
      t.c_segments;
    List.rev !out
  in
  List.iter f ids

let clear t =
  locked t @@ fun () ->
  Array.iter
    (fun seg ->
      (match seg.s_fd with
      | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      (match seg.s_idx_fd with
      | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      (try Sys.remove seg.s_path with Sys_error _ -> ());
      try Sys.remove seg.s_idx with Sys_error _ -> ())
    t.c_segments;
  t.c_segments <- [||];
  fsync_dir t.c_dir;
  refresh_gauges t

let close t =
  locked t @@ fun () ->
  Array.iter
    (fun seg ->
      (match seg.s_fd with
      | Some fd ->
        seg.s_fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      match seg.s_idx_fd with
      | Some fd ->
        seg.s_idx_fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())
    t.c_segments
