(** Workspace persistence.

    The paper's framework is a persistent database: a session — store
    instances with their meta-data, history records, the flow catalog,
    the logical clock — saves to one s-expression file and loads back
    exactly (asserted by dense-id checks and recomputed content hashes;
    the save of a reloaded session is byte-identical, a tested
    fixpoint).  Compiled simulators persist their full
    instruction program. *)

exception Persist_error of string

val format_version : int

val save : Ddf_session.Session.t -> string
val save_file : Ddf_session.Session.t -> string -> unit

val load :
  ?registry:Ddf_tools.Encapsulation.registry -> Ddf_schema.Schema.t ->
  string -> Ddf_session.Session.t
(** @raise Persist_error on syntax errors, version mismatch, non-dense
    ids or content-hash mismatches (tampering/corruption). *)

val load_file :
  ?registry:Ddf_tools.Encapsulation.registry -> Ddf_schema.Schema.t ->
  string -> Ddf_session.Session.t

(** {1 Shared codecs}

    The meta/record wire forms, reused by the journal and the design
    server's wire protocol so every durable surface speaks one
    format. *)

val meta_to_sexp : Ddf_store.Store.meta -> Sexp.t

val meta_of_sexp : Sexp.t -> Ddf_store.Store.meta
(** @raise Persist_error on malformed input. *)

val record_to_sexp : Ddf_history.History.record -> Sexp.t

type record_parts = {
  rp_rid : int;
  rp_task_entity : string;
  rp_tool : Ddf_store.Store.iid option;
  rp_inputs : (string * Ddf_store.Store.iid) list;
  rp_outputs : (string * Ddf_store.Store.iid) list;
  rp_at : int;
}

val record_of_sexp : Sexp.t -> record_parts
(** The parsed fields of a record (records proper are only minted by
    {!Ddf_history.History.add}). @raise Persist_error. *)
