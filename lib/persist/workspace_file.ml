(* Workspace persistence: the framework is a database in the paper, so
   a session -- store instances with their meta-data, history records,
   the flow catalog, the logical clock -- saves to one s-expression
   file and loads back bit-for-bit.

   Instance and record identifiers are dense and allocated in order by
   the store and the history, so loading re-inserts them in id order
   and asserts the ids come back unchanged; every payload's content
   hash is recomputed on load and checked against the stored one. *)

open Ddf_store
open Ddf_history
module S = Sexp

exception Persist_error of string

let persist_errorf fmt = Format.kasprintf (fun s -> raise (Persist_error s)) fmt

let format_version = 1

(* ------------------------------------------------------------------ *)
(* Saving                                                              *)
(* ------------------------------------------------------------------ *)

let meta_to_sexp (m : Store.meta) =
  S.list
    [ S.atom m.Store.user; S.int m.Store.created_at; S.atom m.Store.label;
      S.atom m.Store.comment; S.list (List.map S.atom m.Store.keywords) ]

let meta_of_sexp sexp =
  match S.as_list sexp with
  | [ user; created_at; label; comment; keywords ] ->
    Store.meta ~user:(S.as_atom user) ~label:(S.as_atom label)
      ~comment:(S.as_atom comment)
      ~keywords:(List.map S.as_atom (S.as_list keywords))
      ~created_at:(S.as_int created_at) ()
  | _ -> persist_errorf "malformed meta"

let instance_to_sexp store iid =
  S.list
    [ S.int iid;
      S.atom (Store.entity_of store iid);
      meta_to_sexp (Store.meta_of store iid);
      S.atom (Store.hash_of store iid);
      Codec.value_to_sexp (Store.payload store iid) ]

let record_to_sexp (r : History.record) =
  S.list
    [ S.int r.History.rid;
      S.atom r.History.task_entity;
      (match r.History.tool with None -> S.atom "-" | Some t -> S.int t);
      S.list
        (List.map
           (fun (role, iid) -> S.list [ S.atom role; S.int iid ])
           r.History.inputs);
      S.list
        (List.map
           (fun (entity, iid) -> S.list [ S.atom entity; S.int iid ])
           r.History.outputs);
      S.int r.History.at ]

let conflict_to_sexp (c : History.conflict) =
  S.list
    [ S.int c.History.cid; S.int c.History.c_base; S.int c.History.c_ours;
      S.int c.History.c_theirs; S.atom c.History.c_origin;
      S.int c.History.c_at;
      (match c.History.c_winner with None -> S.atom "-" | Some w -> S.int w) ]

let conflict_of_sexp sexp =
  match S.as_list sexp with
  | [ cid; base; ours; theirs; origin; at; winner ] ->
    let winner =
      match winner with S.Atom "-" -> None | w -> Some (S.as_int w)
    in
    (S.as_int cid, S.as_int base, S.as_int ours, S.as_int theirs,
     S.as_atom origin, S.as_int at, winner)
  | _ -> persist_errorf "malformed conflict"

type record_parts = {
  rp_rid : int;
  rp_task_entity : string;
  rp_tool : Store.iid option;
  rp_inputs : (string * Store.iid) list;
  rp_outputs : (string * Store.iid) list;
  rp_at : int;
}

let record_of_sexp sexp =
  match S.as_list sexp with
  | [ rid; task; tool; inputs; outputs; at ] ->
    let tool = match tool with S.Atom "-" -> None | t -> Some (S.as_int t) in
    let pair sexp =
      match S.as_list sexp with
      | [ k; iid ] -> (S.as_atom k, S.as_int iid)
      | _ -> persist_errorf "malformed binding"
    in
    { rp_rid = S.as_int rid; rp_task_entity = S.as_atom task; rp_tool = tool;
      rp_inputs = List.map pair (S.as_list inputs);
      rp_outputs = List.map pair (S.as_list outputs); rp_at = S.as_int at }
  | _ -> persist_errorf "malformed record"

let save session =
  let ctx = Ddf_session.Session.context session in
  let store = ctx.Ddf_exec.Engine.store in
  let sexp =
    S.list
      ([ S.atom "ddf_workspace";
         S.field "version" [ S.int format_version ];
         S.field "user" [ S.atom ctx.Ddf_exec.Engine.user ];
         S.field "clock" [ S.int ctx.Ddf_exec.Engine.clock ];
         S.field "instances"
           (List.map (instance_to_sexp store) (Store.all_instances store));
         S.field "records"
           (List.map record_to_sexp (History.records ctx.Ddf_exec.Engine.history)) ]
      (* omitted when empty, so files without sync conflicts keep the
         exact pre-sync shape *)
      @ (match History.all_conflicts ctx.Ddf_exec.Engine.history with
        | [] -> []
        | cs -> [ S.field "conflicts" (List.map conflict_to_sexp cs) ])
      @ [ S.field "flows"
            (List.filter_map
               (fun name ->
                 Option.map
                   (fun g ->
                     S.list
                       [ S.atom name;
                         S.atom (Ddf_graph.Sexp_form.to_string g) ])
                   (Ddf_session.Session.catalog_flow session name))
               (Ddf_session.Session.flow_catalog session)) ])
  in
  S.to_string sexp ^ "\n"

let save_file session path =
  let oc = open_out path in
  (try output_string oc (save session)
   with e ->
     close_out oc;
     raise e);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let load ?registry schema text =
  let sexp =
    try S.of_string text
    with S.Sexp_error m -> persist_errorf "syntax: %s" m
  in
  let fields =
    match S.as_list sexp with
    | S.Atom "ddf_workspace" :: fields -> fields
    | _ -> persist_errorf "not a ddf workspace file"
  in
  let version = S.as_int (S.one "version" (S.find_field fields "version")) in
  if version <> format_version then
    persist_errorf "unsupported format version %d" version;
  let user = S.as_atom (S.one "user" (S.find_field fields "user")) in
  let ctx = Ddf_exec.Engine.create_context ~user ?registry schema in
  let session = Ddf_session.Session.of_context ctx in
  let instances =
    S.find_field fields "instances"
    |> List.map (fun sexp ->
           match S.as_list sexp with
           | [ iid; entity; meta; hash; value ] ->
             (S.as_int iid, S.as_atom entity, meta_of_sexp meta,
              S.as_atom hash, value)
           | _ -> persist_errorf "malformed instance")
    |> List.sort compare
  in
  List.iter
    (fun (iid, entity, meta, stored_hash, value_sexp) ->
      let value =
        try Codec.value_of_sexp value_sexp
        with Codec.Codec_error m ->
          persist_errorf "instance %d: %s" iid m
      in
      let hash = Ddf_data.hash value in
      if hash <> stored_hash then
        persist_errorf "instance %d: content hash mismatch (file corrupt?)" iid;
      let got = Store.put ctx.Ddf_exec.Engine.store ~entity ~hash ~meta value in
      if got <> iid then
        persist_errorf "instance ids are not dense (%d loaded as %d)" iid got)
    instances;
  (* history records, in rid order *)
  let records =
    S.find_field fields "records"
    |> List.map record_of_sexp
    |> List.sort (fun a b -> compare a.rp_rid b.rp_rid)
  in
  List.iter
    (fun p ->
      let r =
        History.add ctx.Ddf_exec.Engine.history ~task_entity:p.rp_task_entity
          ~tool:p.rp_tool ~inputs:p.rp_inputs ~outputs:p.rp_outputs ~at:p.rp_at
      in
      if r.History.rid <> p.rp_rid then
        persist_errorf "record ids are not dense (%d loaded as %d)" p.rp_rid
          r.History.rid)
    records;
  (* sync conflicts (optional section; absent in pre-sync files) *)
  (match S.find_field_opt fields "conflicts" with
  | None -> ()
  | Some sexps ->
    sexps
    |> List.map conflict_of_sexp
    |> List.sort compare
    |> List.iter (fun (cid, base, ours, theirs, origin, at, winner) ->
           let c =
             History.add_conflict ctx.Ddf_exec.Engine.history ~base ~ours
               ~theirs ~origin ~at
           in
           if c.History.cid <> cid then
             persist_errorf "conflict ids are not dense (%d loaded as %d)" cid
               c.History.cid;
           match winner with
           | None -> ()
           | Some w ->
             ignore (History.resolve_conflict ctx.Ddf_exec.Engine.history cid
                       ~winner:w)));
  (* the clock resumes where it stopped *)
  ctx.Ddf_exec.Engine.clock <-
    S.as_int (S.one "clock" (S.find_field fields "clock"));
  (* the flow catalog *)
  List.iter
    (fun sexp ->
      match S.as_list sexp with
      | [ name; flow_text ] ->
        let g = Ddf_graph.Sexp_form.of_string schema (S.as_atom flow_text) in
        Ddf_session.Session.restore_flow session (S.as_atom name) g
      | _ -> persist_errorf "malformed catalog flow")
    (S.find_field fields "flows");
  session

let load_file ?registry schema path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  load ?registry schema text
