(* The one typed error for every subsystem: a closed code set, a
   message, structured context, and an explicit retry contract.  The
   [retryable] bit is a *promise by the raiser* that the failed request
   was not executed, so a client may resend without double-applying;
   [retry_after] is a backoff hint (seconds) used by overload
   shedding. *)

type code =
  [ `Not_found
  | `Type_error
  | `Conflict
  | `Overloaded
  | `Timeout
  | `Unavailable
  | `Ambiguous_commit
  | `Invalid
  | `Internal ]

type t = {
  code : code;
  message : string;
  context : (string * string) list;
  retryable : bool;
  retry_after : float option;
}

exception Ddf_error of t

let default_retryable = function
  | `Overloaded | `Timeout | `Unavailable -> true
  | `Not_found | `Type_error | `Conflict | `Ambiguous_commit | `Invalid
  | `Internal ->
    false

let make ?(context = []) ?retryable ?retry_after code message =
  let retryable =
    match retryable with Some r -> r | None -> default_retryable code
  in
  { code; message; context; retryable; retry_after }

let raise_ t = raise (Ddf_error t)

let errorf ?context ?retryable ?retry_after code fmt =
  Format.kasprintf
    (fun message -> raise_ (make ?context ?retryable ?retry_after code message))
    fmt

let code_to_string = function
  | `Not_found -> "not-found"
  | `Type_error -> "type-error"
  | `Conflict -> "conflict"
  | `Overloaded -> "overloaded"
  | `Timeout -> "timeout"
  | `Unavailable -> "unavailable"
  | `Ambiguous_commit -> "ambiguous-commit"
  | `Invalid -> "invalid"
  | `Internal -> "internal"

let all_codes : code list =
  [ `Not_found; `Type_error; `Conflict; `Overloaded; `Timeout; `Unavailable;
    `Ambiguous_commit; `Invalid; `Internal ]

let code_of_string s =
  List.find_opt (fun c -> code_to_string c = s) all_codes

let message t = t.message

let to_string t =
  let b = Buffer.create 64 in
  Buffer.add_string b (code_to_string t.code);
  Buffer.add_string b ": ";
  Buffer.add_string b t.message;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf " [%s=%s]" k v))
    t.context;
  if t.retryable then begin
    Buffer.add_string b " (retryable";
    (match t.retry_after with
    | Some s -> Buffer.add_string b (Printf.sprintf " after %.3gs" s)
    | None -> ());
    Buffer.add_string b ")"
  end;
  Buffer.contents b

let of_exn = function
  | Ddf_error t -> t
  | e -> make `Internal (Printexc.to_string e)
