(** One error taxonomy for the whole system.

    Every subsystem used to declare its own [X_error of string]; the
    only thing a caller could do with one was print it.  This module
    replaces the zoo with a single structured error: a {!code} drawn
    from a small closed set, a human-readable message, optional
    key/value context, and an explicit retry contract — [retryable]
    asserts the failed request was {e not executed} (so resending
    cannot double-apply), [retry_after] is a backoff hint in seconds.

    Every subsystem ([Store], [History], [Session], [Engine],
    [Consistency], [Journal], [Client], the server) raises
    {!Ddf_error} directly; the per-module [X_error] aliases that eased
    the migration are gone. *)

type code =
  [ `Not_found  (** no such instance / record / flow *)
  | `Type_error  (** schema or typing violation *)
  | `Conflict  (** state disagreement: replication gap, duplicate producer *)
  | `Overloaded  (** shed before execution: admission queue full *)
  | `Timeout  (** deadline or dwell budget exceeded before execution *)
  | `Unavailable  (** cannot serve now: shutting down, journal failed,
                      unreachable endpoint *)
  | `Ambiguous_commit
    (** a mutation's transport died after the request was sent: it may
        or may not have committed, and must not be blindly retried *)
  | `Invalid  (** malformed or unsatisfiable request *)
  | `Internal  (** everything else: bugs, unclassified exceptions *) ]

type t = {
  code : code;
  message : string;
  context : (string * string) list;  (** structured key/value detail *)
  retryable : bool;
      (** the request was not executed; resending is safe *)
  retry_after : float option;  (** backoff hint, seconds *)
}

exception Ddf_error of t

val make :
  ?context:(string * string) list ->
  ?retryable:bool ->
  ?retry_after:float ->
  code ->
  string ->
  t
(** [retryable] defaults per {!default_retryable}. *)

val errorf :
  ?context:(string * string) list ->
  ?retryable:bool ->
  ?retry_after:float ->
  code ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Format a message and raise {!Ddf_error}. *)

val raise_ : t -> 'a

val default_retryable : code -> bool
(** [`Overloaded], [`Timeout] and [`Unavailable] default to
    retryable — each asserts the request was refused before execution;
    every other code defaults to not retryable. *)

val code_to_string : code -> string
(** Stable kebab-case names (["not-found"], ["ambiguous-commit"], ...)
    used on the wire and in logs. *)

val code_of_string : string -> code option

val all_codes : code list

val message : t -> string

val to_string : t -> string
(** ["<code>: <message>"] plus context and the retry contract when
    present — what CLIs print. *)

val of_exn : exn -> t
(** {!Ddf_error} payloads pass through; any other exception becomes an
    [`Internal] error carrying [Printexc.to_string]. *)
