(** Design-consistency maintenance (section 3.3): automatic re-tracing
    of a flow to update derived design data. *)

open Ddf_store

val latest_version : Engine.context -> Store.iid -> Store.iid
(** The newest version in the instance's version tree (by creation
    time). *)

type refresh_report = {
  fresh_instance : Store.iid;  (** up-to-date equivalent of the input *)
  reran : int;                 (** invocations recomputed *)
  reused : int;                (** invocations satisfied from history *)
  rebound : (Store.iid * Store.iid) list;
      (** source rebindings applied: (old version, latest) *)
}

val refresh : Engine.context -> Store.iid -> refresh_report
(** Re-derive an instance against the current state of its sources:
    reconstruct its flow trace, rebind every source leaf to its latest
    version, re-execute with memoization.  Only sub-flows affected by
    newer versions actually run. *)

type extraction_status =
  | Never_extracted
  | Up_to_date of Store.iid
  | Out_of_date of Store.iid * (string * Store.iid * Store.iid list) list

val derived_status :
  Engine.context -> source:Store.iid -> goal_entity:string -> extraction_status
(** The paper's example query: has a [goal_entity] been derived from
    this source, and is the newest one current? *)

val pp_report : Format.formatter -> refresh_report -> unit
