(* Parallel task execution (Fig. 6): disjoint branches of a flow can
   execute in parallel, possibly on different machines.

   Two facilities:
   - [schedule]: deterministic list scheduling of a flow's invocations
     onto a simulated machine pool, using the costs observed during a
     real run -- the makespan/speedup numbers of experiment E6;
   - [execute_parallel]: actual multicore execution with OCaml domains,
     wave by wave; tool behaviours run concurrently, store and history
     commits stay sequential. *)

open Ddf_graph
open Ddf_store
open Ddf_tools
module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics

let m_schedules = Metrics.counter "parallel.schedules"
let m_waves = Metrics.counter "parallel.waves"
let m_parallel_executed = Metrics.counter "parallel.executed"

(* ------------------------------------------------------------------ *)
(* Machine-pool simulation                                             *)
(* ------------------------------------------------------------------ *)

type entry = {
  outputs : int list;
  machine : int;
  start_us : int;
  finish_us : int;
}

type schedule = {
  entries : entry list;
  makespan_us : int;
  serial_us : int;
  machines : int;
}

exception Schedule_error of string

(* Ready-queue ordering: which invocation gets a machine first. *)
type heuristic =
  | Longest_first   (* classic LPT list scheduling *)
  | Shortest_first
  | Fifo            (* declaration order *)

let heuristic_name = function
  | Longest_first -> "longest-first"
  | Shortest_first -> "shortest-first"
  | Fifo -> "fifo"

(* Invocation-level dependency DAG: A precedes B when one of A's
   outputs is an input (or the tool) of B. *)
let invocation_deps invocations =
  let producer = Hashtbl.create 32 in
  List.iteri
    (fun i (inv : Task_graph.invocation) ->
      List.iter (fun o -> Hashtbl.replace producer o i) inv.Task_graph.outputs)
    invocations;
  List.map
    (fun (inv : Task_graph.invocation) ->
      let ins =
        (match inv.Task_graph.tool with Some t -> [ t ] | None -> [])
        @ List.map snd inv.Task_graph.inputs
      in
      List.filter_map (Hashtbl.find_opt producer) ins |> List.sort_uniq compare)
    invocations

let schedule ?(heuristic = Longest_first) g ~costs ~machines =
  if machines < 1 then raise (Schedule_error "need at least one machine");
  Metrics.incr m_schedules;
  Obs.with_span ~cat:"parallel"
    ~attrs:
      [
        ("machines", Obs.Int machines);
        ("heuristic", Obs.Str (heuristic_name heuristic));
      ]
    "parallel.schedule"
  @@ fun () ->
  let invocations = Task_graph.invocations g in
  (* keep only invocations that actually ran (memo hits cost nothing) *)
  let cost_of outputs = List.assoc_opt outputs costs in
  let timed =
    List.filter
      (fun (inv : Task_graph.invocation) ->
        cost_of inv.Task_graph.outputs <> None)
      invocations
  in
  let deps_all = invocation_deps timed in
  let n = List.length timed in
  let inv_arr = Array.of_list timed in
  let deps = Array.of_list deps_all in
  let cost =
    Array.map
      (fun (inv : Task_graph.invocation) ->
        match cost_of inv.Task_graph.outputs with
        | Some c -> c
        | None -> 0)
      inv_arr
  in
  let finish = Array.make n (-1) in
  let machine_free = Array.make machines 0 in
  let entries = ref [] in
  let done_count = ref 0 in
  let scheduled = Array.make n false in
  while !done_count < n do
    (* ready = unscheduled with all predecessors finished *)
    let ready =
      List.filter
        (fun i ->
          (not scheduled.(i))
          && List.for_all (fun d -> finish.(d) >= 0) deps.(i))
        (List.init n Fun.id)
    in
    if ready = [] then raise (Schedule_error "cyclic invocation graph");
    (* deterministic ready-queue order under the chosen heuristic *)
    let ready =
      match heuristic with
      | Longest_first ->
        List.sort (fun a b -> compare (cost.(b), a) (cost.(a), b)) ready
      | Shortest_first ->
        List.sort (fun a b -> compare (cost.(a), a) (cost.(b), b)) ready
      | Fifo -> ready
    in
    List.iter
      (fun i ->
        let avail =
          List.fold_left (fun m d -> max m finish.(d)) 0 deps.(i)
        in
        (* earliest-free machine *)
        let best = ref 0 in
        for m = 1 to machines - 1 do
          if machine_free.(m) < machine_free.(!best) then best := m
        done;
        let m = !best in
        let start = max avail machine_free.(m) in
        let stop = start + cost.(i) in
        machine_free.(m) <- stop;
        finish.(i) <- stop;
        scheduled.(i) <- true;
        incr done_count;
        entries :=
          { outputs = inv_arr.(i).Task_graph.outputs; machine = m;
            start_us = start; finish_us = stop }
          :: !entries)
      ready
  done;
  let makespan_us = Array.fold_left max 0 machine_free in
  let serial_us = Array.fold_left ( + ) 0 cost in
  { entries = List.rev !entries; makespan_us; serial_us; machines }

let speedup s =
  if s.makespan_us = 0 then 1.0
  else float_of_int s.serial_us /. float_of_int s.makespan_us

(* Render a simulated schedule as a Chrome trace: one lane (tid) per
   machine, one complete duration event per scheduled invocation --
   the Fig. 6 Gantt chart, loadable in chrome://tracing / Perfetto. *)
let chrome_trace_of_schedule ?label_of s =
  let label =
    match label_of with
    | Some f -> f
    | None ->
      fun outputs ->
        "task " ^ String.concat "," (List.map string_of_int outputs)
  in
  let events =
    List.map
      (fun e ->
        {
          Obs.kind = Obs.Complete (float_of_int (e.finish_us - e.start_us));
          name = label e.outputs;
          cat = "schedule";
          ts_us = float_of_int e.start_us;
          logical = -1;
          tid = e.machine;
          span = None;
          attrs = [ ("machine", Obs.Int e.machine) ];
        })
      s.entries
  in
  let lane_names =
    List.init s.machines (fun m -> (m, Printf.sprintf "machine %d" m))
  in
  Ddf_obs.Sinks.chrome_json_of_events ~lane_names events

let pp_schedule ppf s =
  Fmt.pf ppf "%d machines: serial %d us, makespan %d us, speedup %.2fx"
    s.machines s.serial_us s.makespan_us (speedup s)

(* ------------------------------------------------------------------ *)
(* Real multicore execution                                            *)
(* ------------------------------------------------------------------ *)

(* Wave-parallel execution: repeatedly take every invocation whose
   dependencies are all assigned, run their behaviours in domains, then
   commit outputs sequentially. *)
let execute_parallel ?(domains = 4) ?(memo = true) (ctx : Engine.context) g
    ~bindings =
  Task_graph.validate g;
  let assignment = Hashtbl.create 32 in
  List.iter (fun (nid, iid) -> Hashtbl.replace assignment nid iid) bindings;
  let pending = ref (Engine.ordered_invocations g) in
  let executed = ref 0 in
  let wave = ref 0 in
  while !pending <> [] do
    incr wave;
    Metrics.incr m_waves;
    Obs.with_span ~cat:"parallel"
      ~attrs:[ ("wave", Obs.Int !wave) ]
      "parallel.wave"
    @@ fun () ->
    let ready, blocked =
      List.partition
        (fun (inv : Task_graph.invocation) ->
          let needs =
            (match inv.Task_graph.tool with Some t -> [ t ] | None -> [])
            @ List.map snd inv.Task_graph.inputs
          in
          List.for_all (Hashtbl.mem assignment) needs)
        !pending
    in
    if ready = [] then
      Ddf_core.Error.errorf `Invalid "parallel execution stuck: unbound leaves";
    (* skip invocations whose outputs are pre-bound *)
    let ready =
      List.filter
        (fun (inv : Task_graph.invocation) ->
          not (List.for_all (Hashtbl.mem assignment) inv.Task_graph.outputs))
        ready
    in
    (* resolve memo hits inline before spawning any work *)
    let ready =
      List.filter
        (fun (inv : Task_graph.invocation) ->
          let lookup nid = Hashtbl.find assignment nid in
          let inputs =
            List.map (fun (role, nid) -> (role, lookup nid)) inv.Task_graph.inputs
          in
          let tool = Option.map lookup inv.Task_graph.tool in
          let out_entities =
            List.map (Task_graph.entity_of g) inv.Task_graph.outputs
          in
          match
            if memo then Engine.memo_lookup ctx ~tool ~inputs ~out_entities
            else None
          with
          | None -> true
          | Some r ->
            List.iter
              (fun nid ->
                match
                  List.assoc_opt (Task_graph.entity_of g nid)
                    r.Ddf_history.History.outputs
                with
                | Some iid -> Hashtbl.replace assignment nid iid
                | None -> ())
              inv.Task_graph.outputs;
            false)
        ready
    in
    (* Pin one store snapshot for the whole wave: every instance a
       ready invocation references was committed in an earlier wave, so
       the snapshot covers it, and the payload lookups then run
       *inside* the spawned domains — lock-free reads on real cores
       instead of a serial resolve on the coordinator. *)
    let snap = Store.snapshot ctx.Engine.store in
    (* prepare each invocation: graph/assignment lookups stay on the
       coordinator, payload resolution moves into the worker domain *)
    let prepared =
      List.map
        (fun (inv : Task_graph.invocation) ->
          let node_entity nid = Task_graph.entity_of g nid in
          let lookup nid = Hashtbl.find assignment nid in
          let inputs =
            List.map (fun (role, nid) -> (role, lookup nid)) inv.Task_graph.inputs
          in
          let resolve_args () =
            List.map
              (fun (role, iid) -> (role, Store.Snapshot.payload snap iid))
              inputs
          in
          let out_entities = List.map node_entity inv.Task_graph.outputs in
          let work =
            match inv.Task_graph.tool with
            | None ->
              let entity = List.hd out_entities in
              let composer =
                Encapsulation.find_composer ctx.Engine.registry entity
              in
              fun () -> [ (entity, composer (resolve_args ())) ]
            | Some tool_nid ->
              let tool_iid = lookup tool_nid in
              let tool_entity = Store.Snapshot.entity_of snap tool_iid in
              let enc =
                Encapsulation.resolve ctx.Engine.registry ctx.Engine.schema
                  ~tool_entity ~goal:(List.hd out_entities)
              in
              fun () ->
                enc.Encapsulation.behavior
                  ~tool:(Store.Snapshot.payload snap tool_iid)
                  ~goals:out_entities (resolve_args ())
          in
          (inv, inputs, work))
        ready
    in
    (* run in batches of [domains] *)
    let rec batches = function
      | [] -> []
      | l ->
        let rec take n acc = function
          | [] -> (List.rev acc, [])
          | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = take domains [] l in
        batch :: batches rest
    in
    List.iter
      (fun batch ->
        let handles =
          List.map
            (fun (inv, inputs, work) ->
              (inv, inputs, Domain.spawn work))
            batch
        in
        (* sequential commit *)
        List.iter
          (fun ((inv : Task_graph.invocation), inputs, handle) ->
            let outcome = Domain.join handle in
            let at = Engine.tick ctx in
            let stored =
              List.map
                (fun (entity, value) ->
                  let meta =
                    Store.meta ~user:ctx.Engine.user
                      ~label:(Ddf_data.summary value) ~created_at:at ()
                  in
                  ( entity,
                    Store.put ctx.Engine.store ~entity
                      ~hash:(Ddf_data.hash value) ~meta value ))
                outcome
            in
            let tool = Option.map (Hashtbl.find assignment) inv.Task_graph.tool in
            let task_entity =
              Task_graph.entity_of g (List.hd inv.Task_graph.outputs)
            in
            ignore
              (Ddf_history.History.add ctx.Engine.history ~task_entity ~tool
                 ~inputs ~outputs:stored ~at);
            List.iter
              (fun nid ->
                let entity = Task_graph.entity_of g nid in
                match List.assoc_opt entity stored with
                | Some iid -> Hashtbl.replace assignment nid iid
                | None ->
                  Ddf_core.Error.errorf `Internal "no output for entity %s"
                    entity)
              inv.Task_graph.outputs;
            incr executed;
            Metrics.incr m_parallel_executed)
          handles)
      (batches prepared);
    pending := blocked
  done;
  ( Hashtbl.fold (fun nid iid acc -> (nid, iid) :: acc) assignment []
    |> List.sort compare,
    !executed )
