(** Parallel task execution (Fig. 6): disjoint branches of a flow can
    execute in parallel, possibly on different machines. *)

open Ddf_graph
open Ddf_store

(** {1 Machine-pool simulation} *)

type entry = {
  outputs : int list;   (** output nodes of the scheduled invocation *)
  machine : int;
  start_us : int;
  finish_us : int;
}

type schedule = {
  entries : entry list;
  makespan_us : int;
  serial_us : int;
  machines : int;
}

exception Schedule_error of string

(** Ready-queue ordering for the list scheduler. *)
type heuristic =
  | Longest_first
  | Shortest_first
  | Fifo

val heuristic_name : heuristic -> string

val schedule :
  ?heuristic:heuristic -> Task_graph.t -> costs:(int list * int) list ->
  machines:int -> schedule
(** Deterministic list scheduling (longest-task-first by default) of a
    flow's invocations onto a simulated pool, using the per-invocation
    costs observed during a real run ({!Engine.run.costs}); memo hits
    cost nothing and are skipped. *)

val speedup : schedule -> float

val chrome_trace_of_schedule :
  ?label_of:(int list -> string) -> schedule -> string
(** The schedule as a Chrome trace-event JSON document: one lane (tid)
    per simulated machine, one complete duration event per scheduled
    invocation -- a Fig. 6 Gantt chart for chrome://tracing or
    Perfetto.  [label_of] names an invocation from its output nodes. *)

val pp_schedule : Format.formatter -> schedule -> unit

(** {1 Real multicore execution} *)

val execute_parallel :
  ?domains:int -> ?memo:bool -> Engine.context -> Task_graph.t ->
  bindings:(int * Store.iid) list -> (int * Store.iid) list * int
(** Wave-parallel execution with OCaml domains: every ready invocation
    of a wave runs its behaviour concurrently; store and history
    commits stay sequential.  Returns the assignment and the number of
    invocations executed.  Payloads are identical to a serial
    {!Engine.execute} (tested). *)
