(* The task execution engine: flow automation (section 3.3).

   Because tool and data dependencies are specified in the task schema,
   a complete flow sequences itself: the engine walks the graph's
   invocations in dependency order, resolves an encapsulation for each,
   runs it, stores the outputs and appends the derivation record to the
   design history.  Memoization is the design-consistency service: a
   task whose exact tool and inputs were already run is looked up in
   the history instead of re-executed. *)

open Ddf_schema
open Ddf_graph
open Ddf_store
open Ddf_history
open Ddf_tools
module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics

let m_runs = Metrics.counter "engine.runs"
let m_executed = Metrics.counter "engine.executed"
let m_memo = Metrics.counter "engine.memo_hits"
let m_composed = Metrics.counter "engine.composed"
let m_installs = Metrics.counter "engine.installs"
let m_batches = Metrics.counter "engine.batched_merges"

type context = {
  schema : Schema.t;
  mutable store : Ddf_data.value Store.t;
  mutable history : History.t;
  registry : Encapsulation.registry;
  mutable clock : int;
  mutable user : string;
}

let exec_errorf ?(code = `Invalid) fmt = Ddf_core.Error.errorf code fmt

let create_context ?(user = "designer") ?registry schema =
  let registry =
    match registry with Some r -> r | None -> Standard_tools.registry ()
  in
  {
    schema;
    store = Store.create ();
    history = History.create ();
    registry;
    clock = 0;
    user;
  }

let tick ctx =
  ctx.clock <- ctx.clock + 1;
  ctx.clock

(* A pinned read view over a context: the store and history snapshots
   captured together.  The history is captured first — records only
   ever reference instances already installed, so the (possibly
   later) store view covers every instance a captured record
   mentions. *)
type view = {
  v_store : Ddf_data.value Store.snapshot;
  v_history : History.snapshot;
}

let pin ctx =
  let v_history = History.snapshot ctx.history in
  let v_store = Store.snapshot ctx.store in
  { v_store; v_history }

(* Install a source design object (or a tool from the catalog). *)
let install ctx ~entity ?(label = "") ?(comment = "") ?(keywords = []) ?user
    value =
  Metrics.incr m_installs;
  ignore (Schema.find ctx.schema entity);
  Typing.check ctx.schema entity value;
  let user = Option.value user ~default:ctx.user in
  let meta =
    Store.meta ~user ~label ~comment ~keywords ~created_at:(tick ctx) ()
  in
  Store.put ctx.store ~entity ~hash:(Ddf_data.hash value) ~meta value

(* Install a catalog tool with its default payload. *)
let install_tool ctx entity =
  match Standard_tools.default_tool_payload entity with
  | Some payload -> install ctx ~entity ~label:entity payload
  | None -> exec_errorf ~code:`Not_found "tool %s has no default catalog payload" entity

type stats = {
  executed : int;     (* invocations actually run *)
  memo_hits : int;    (* invocations satisfied from the history *)
  composed : int;     (* composite entities assembled *)
}

let no_stats = { executed = 0; memo_hits = 0; composed = 0 }

type run = {
  assignment : (int * Store.iid) list;  (* node -> instance *)
  stats : stats;
  (* per executed invocation: outputs and simulated cost, in execution
     order -- the machine-pool scheduler replays these *)
  costs : (int list * int) list;
}

(* Look in the history for a record of the same task with the same tool
   and inputs: if design objects are uniquely identified by their
   derivation, this IS the design-consistency lookup. *)
let memo_lookup ctx ~tool ~inputs ~out_entities =
  let probe =
    match (inputs, tool) with
    | (_, iid) :: _, _ -> Some iid
    | [], Some t -> Some t
    | [], None -> None
  in
  match probe with
  | None -> None
  | Some iid ->
    let inputs_sorted = List.sort compare inputs in
    let matches (r : History.record) =
      r.History.tool = tool
      && List.sort compare r.History.inputs = inputs_sorted
      && List.for_all
           (fun e -> List.mem_assoc e r.History.outputs)
           out_entities
    in
    List.find_opt matches (History.uses_of ctx.history iid)

let ordered_invocations g =
  let rank = Hashtbl.create 32 in
  List.iteri (fun i nid -> Hashtbl.add rank nid i) (Task_graph.topological_order g);
  Task_graph.invocations g
  |> List.map (fun (inv : Task_graph.invocation) ->
         let r =
           List.fold_left
             (fun m o -> min m (Hashtbl.find rank o))
             max_int inv.Task_graph.outputs
         in
         (r, inv))
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* Execute one invocation under the current assignment; returns the
   new output instances. *)
let run_invocation ?(memo = true) ctx g assignment (inv : Task_graph.invocation) =
  let node_entity nid = Task_graph.entity_of g nid in
  let lookup nid =
    match Hashtbl.find_opt assignment nid with
    | Some iid -> iid
    | None ->
      exec_errorf "node %d (%s) has no instance selected" nid (node_entity nid)
  in
  let tool = Option.map lookup inv.Task_graph.tool in
  (* an unselected node filling only an optional role is simply
     omitted: the dashed arcs of Fig. 1 *)
  let role_optional role =
    match inv.Task_graph.outputs with
    | [] -> false
    | out :: _ ->
      List.exists
        (fun (e : Task_graph.edge) ->
          e.Task_graph.role = role
          && e.Task_graph.dep_kind = Schema.Data_dep { optional = true })
        (Task_graph.out_edges g out)
  in
  let inputs =
    List.filter_map
      (fun (role, nid) ->
        match Hashtbl.find_opt assignment nid with
        | Some iid -> Some (role, iid)
        | None ->
          if role_optional role then None
          else
            exec_errorf "node %d (%s) has no instance selected" nid
              (node_entity nid))
      inv.Task_graph.inputs
  in
  let out_entities = List.map node_entity inv.Task_graph.outputs in
  let assign_outputs outputs_by_entity =
    List.iter
      (fun nid ->
        let entity = node_entity nid in
        match List.assoc_opt entity outputs_by_entity with
        | Some iid -> Hashtbl.replace assignment nid iid
        | None ->
          exec_errorf "task produced no output for entity %s" entity)
      inv.Task_graph.outputs
  in
  match
    if memo then memo_lookup ctx ~tool ~inputs ~out_entities else None
  with
  | Some r ->
    Metrics.incr m_memo;
    (if Obs.enabled () then
       let name = match out_entities with e :: _ -> e | [] -> "task" in
       Obs.instant ~cat:"engine" ~logical:ctx.clock
         ~attrs:[ ("kind", Obs.Str "memo"); ("record", Obs.Int r.History.rid) ]
         name);
    assign_outputs r.History.outputs;
    `Memo
  | None ->
    let args =
      List.map (fun (role, iid) -> (role, Store.payload ctx.store iid)) inputs
    in
    let t0 = if Obs.enabled () then Obs.now_us () else 0.0 in
    let outcome, cost_us, kind =
      match inv.Task_graph.tool with
      | None ->
        (* composite entity: implicit composition function *)
        let entity =
          match out_entities with
          | [ e ] -> e
          | [] | _ :: _ -> exec_errorf "composite task must have one output"
        in
        let composer = Encapsulation.find_composer ctx.registry entity in
        ([ (entity, composer args) ], 10, `Composed)
      | Some tool_nid ->
        let tool_iid = lookup tool_nid in
        let tool_payload = Store.payload ctx.store tool_iid in
        let tool_entity = Store.entity_of ctx.store tool_iid in
        let goal =
          match out_entities with
          | e :: _ -> e
          | [] -> exec_errorf "invocation without outputs"
        in
        let enc =
          Encapsulation.resolve ctx.registry ctx.schema ~tool_entity ~goal
        in
        let outcome =
          enc.Encapsulation.behavior ~tool:tool_payload ~goals:out_entities args
        in
        (outcome, enc.Encapsulation.cost_us args, `Executed)
    in
    (* store outputs and record the derivation *)
    let at = tick ctx in
    let stored =
      List.map
        (fun (entity, value) ->
          Typing.check ctx.schema entity value;
          let label = Ddf_data.summary value in
          let label =
            if String.length label > 60 then String.sub label 0 60 else label
          in
          let meta = Store.meta ~user:ctx.user ~label ~created_at:at () in
          (entity, Store.put ctx.store ~entity ~hash:(Ddf_data.hash value) ~meta value))
        outcome
    in
    let task_entity =
      match out_entities with e :: _ -> e | [] -> assert false
    in
    let produced =
      (* record only the outputs that correspond to graph nodes, but
         all of them: co-produced outputs stay in one record *)
      List.filter (fun (e, _) -> List.mem e out_entities) stored
    in
    ignore
      (History.add ctx.history ~task_entity ~tool ~inputs ~outputs:produced ~at);
    assign_outputs stored;
    (match kind with
    | `Composed -> Metrics.incr m_composed
    | `Executed -> Metrics.incr m_executed);
    if Obs.enabled () then
      Obs.complete ~cat:"engine" ~logical:at
        ~dur_us:(Obs.now_us () -. t0)
        ~attrs:
          [
            ( "kind",
              Obs.Str
                (match kind with `Composed -> "composed" | `Executed -> "executed")
            );
            ("cost_us", Obs.Int cost_us);
            ("outputs", Obs.Int (List.length produced));
          ]
        task_entity;
    (match kind with `Composed -> `Compose cost_us | `Executed -> `Ran cost_us)

(* Execute a complete flow.  [bindings] selects instances for leaf
   nodes (and optionally pre-computed inner nodes).  Derived nodes are
   computed in dependency order; sub-flows whose nodes are all bound
   are left untouched. *)
let execute ?(memo = true) ctx g ~bindings =
  Task_graph.validate g;
  let assignment = Hashtbl.create 32 in
  List.iter
    (fun (nid, iid) ->
      let entity = Task_graph.entity_of g nid in
      let inst_entity = Store.entity_of ctx.store iid in
      if not (Schema.is_subtype ctx.schema ~sub:inst_entity ~super:entity) then
        exec_errorf ~code:`Type_error "instance #%d (%s) cannot fill node %d (%s)" iid
          inst_entity
          nid entity;
      Hashtbl.replace assignment nid iid)
    bindings;
  (* a leaf must be bound when (a) some invocation that will actually
     run consumes it through a mandatory role -- sub-flows beneath
     pre-bound nodes are skipped entirely -- or (b) it is an unconsumed
     root the designer asked for *)
  let needed = Hashtbl.create 16 in
  List.iter
    (fun (inv : Task_graph.invocation) ->
      let runs =
        not (List.for_all (Hashtbl.mem assignment) inv.Task_graph.outputs)
      in
      if runs then begin
        (match inv.Task_graph.tool with
        | Some t -> Hashtbl.replace needed t ()
        | None -> ());
        List.iter
          (fun (role, nid) ->
            let optional =
              match inv.Task_graph.outputs with
              | [] -> false
              | out :: _ ->
                List.exists
                  (fun (e : Task_graph.edge) ->
                    e.Task_graph.role = role
                    && e.Task_graph.dep_kind
                       = Schema.Data_dep { optional = true })
                  (Task_graph.out_edges g out)
            in
            if not optional then Hashtbl.replace needed nid ())
          inv.Task_graph.inputs
      end)
    (Task_graph.invocations g);
  List.iter
    (fun nid ->
      let required =
        Hashtbl.mem needed nid
        || (Task_graph.in_edges g nid = [] && not (Hashtbl.mem assignment nid))
      in
      if required && not (Hashtbl.mem assignment nid) then
        exec_errorf "leaf node %d (%s) has no instance selected" nid
          (Task_graph.entity_of g nid))
    (Task_graph.leaves g);
  Metrics.incr m_runs;
  let stats = ref no_stats in
  let costs = ref [] in
  Obs.with_span ~cat:"engine" ~logical:ctx.clock
    ~attrs:
      [
        ("nodes", Obs.Int (Task_graph.size g));
        ("invocations", Obs.Int (List.length (Task_graph.invocations g)));
      ]
    "engine.execute"
    (fun () ->
      List.iter
        (fun (inv : Task_graph.invocation) ->
          let already_done =
            List.for_all (Hashtbl.mem assignment) inv.Task_graph.outputs
          in
          if not already_done then
            match run_invocation ~memo ctx g assignment inv with
            | `Memo -> stats := { !stats with memo_hits = !stats.memo_hits + 1 }
            | `Compose c ->
              stats := { !stats with composed = !stats.composed + 1 };
              costs := (inv.Task_graph.outputs, c) :: !costs
            | `Ran c ->
              stats := { !stats with executed = !stats.executed + 1 };
              costs := (inv.Task_graph.outputs, c) :: !costs)
        (ordered_invocations g));
  {
    assignment =
      Hashtbl.fold (fun nid iid acc -> (nid, iid) :: acc) assignment []
      |> List.sort compare;
    stats = !stats;
    costs = List.rev !costs;
  }

(* The implicit decomposition function of a composite entity: split an
   instance into component instances, recorded in the history like any
   other task (section 3.1). *)
let decompose ctx iid =
  let entity = Store.entity_of ctx.store iid in
  if not (Schema.is_composite ctx.schema entity) then
    exec_errorf ~code:`Type_error "instance #%d (%s) is not composite" iid entity;
  let decomposer = Encapsulation.find_decomposer ctx.registry entity in
  let parts = decomposer (Store.payload ctx.store iid) in
  let at = tick ctx in
  let stored =
    List.map
      (fun (part_entity, value) ->
        Typing.check ctx.schema part_entity value;
        let label = Ddf_data.summary value in
        let meta = Store.meta ~user:ctx.user ~label ~created_at:at () in
        ( part_entity,
          Store.put ctx.store ~entity:part_entity ~hash:(Ddf_data.hash value)
            ~meta value ))
      parts
  in
  (match stored with
  | [] -> exec_errorf "decomposition of %s produced nothing" entity
  | (first, _) :: _ ->
    ignore
      (History.add ctx.history ~task_entity:first ~tool:None
         ~inputs:[ ("composite", iid) ] ~outputs:stored ~at));
  stored

let result_of run nid =
  match List.assoc_opt nid run.assignment with
  | Some iid -> iid
  | None -> exec_errorf ~code:`Not_found "node %d was not computed" nid

(* Batched tool calls (section 4.1): when every consumer of a
   multi-selected node is served by a batched encapsulation and the
   registry knows how to merge the node's payload kind, the selections
   collapse into one merged instance (recorded in the history like a
   composition) instead of fanning out. *)
let try_batch ?(memo = true) ctx g nid iids =
  let entity = Task_graph.entity_of g nid in
  let root = Schema.root_of ctx.schema entity in
  match Encapsulation.find_merger ctx.registry root with
  | None -> None
  | Some merge ->
    let consumers = Task_graph.in_edges g nid in
    let batched (user, _role) =
      match
        List.find_opt
          (fun (e : Task_graph.edge) ->
            e.Task_graph.dep_kind = Schema.Functional)
          (Task_graph.out_edges g user)
      with
      | None -> false
      | Some tool_edge -> (
        let tool_entity = Task_graph.entity_of g tool_edge.Task_graph.dst in
        match
          Encapsulation.resolve ctx.registry ctx.schema ~tool_entity
            ~goal:(Task_graph.entity_of g user)
        with
        | enc -> enc.Encapsulation.batched
        | exception Encapsulation.Tool_error _ -> false)
    in
    if consumers = [] || not (List.for_all batched consumers) then None
    else begin
      let inputs = List.mapi (fun i iid -> (Printf.sprintf "part%d" i, iid)) iids in
      match
        if memo then
          memo_lookup ctx ~tool:None ~inputs ~out_entities:[ entity ]
        else None
      with
      | Some r -> List.assoc_opt entity r.History.outputs
      | None ->
        Metrics.incr m_batches;
        let merged = merge (List.map (Store.payload ctx.store) iids) in
        Typing.check ctx.schema entity merged;
        let at = tick ctx in
        let meta =
          Store.meta ~user:ctx.user
            ~label:(Printf.sprintf "batch of %d" (List.length iids))
            ~created_at:at ()
        in
        let iid =
          Store.put ctx.store ~entity ~hash:(Ddf_data.hash merged) ~meta merged
        in
        ignore
          (History.add ctx.history ~task_entity:entity ~tool:None ~inputs
             ~outputs:[ (entity, iid) ] ~at);
        Some iid
    end

(* Fan-out execution: any leaf may carry several selected instances
   (section 4.1); the task runs once per combination, except where a
   batched encapsulation collapses the selection into one call. *)
let execute_fanout ?(memo = true) ?(max_combinations = 256) ctx g ~bindings =
  let bindings =
    List.map
      (fun (nid, iids) ->
        if List.length iids <= 1 then (nid, iids)
        else
          match try_batch ~memo ctx g nid iids with
          | Some merged -> (nid, [ merged ])
          | None -> (nid, iids))
      bindings
  in
  let combos =
    List.fold_left
      (fun acc (nid, iids) ->
        if iids = [] then exec_errorf "empty selection for node %d" nid;
        List.concat_map
          (fun combo -> List.map (fun iid -> (nid, iid) :: combo) iids)
          acc)
      [ [] ] bindings
    |> List.map List.rev
  in
  if List.length combos > max_combinations then
    exec_errorf "selection produces %d combinations (limit %d)"
      (List.length combos) max_combinations;
  List.map (fun bindings -> execute ~memo ctx g ~bindings) combos

let pp_stats ppf s =
  Fmt.pf ppf "%d executed, %d from history, %d composed" s.executed s.memo_hits
    s.composed
