(* Design-consistency maintenance (section 3.3): automatic re-tracing
   of a flow to update derived design data.

   The design history answers "is this netlist out of date with respect
   to the layout it was extracted from?"; when it is, [refresh] rebuilds
   only the stale part of the derivation flow -- everything else is a
   memo hit against the history. *)

open Ddf_store
open Ddf_history
module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics

let m_refreshes = Metrics.counter "consistency.refreshes"
let m_reran = Metrics.counter "consistency.reran"
let m_reused = Metrics.counter "consistency.reused"

(* The latest version of an instance: the newest leaf of its version
   tree (by creation time, ties to the higher iid). *)
let latest_version (ctx : Engine.context) iid =
  History.latest_version ctx.Engine.history ctx.Engine.store ctx.Engine.schema
    iid

type refresh_report = {
  fresh_instance : Store.iid;   (* up-to-date equivalent of the input *)
  reran : int;                  (* invocations recomputed *)
  reused : int;                 (* invocations satisfied from history *)
  rebound : (Store.iid * Store.iid) list;  (* source rebindings applied *)
}

(* Re-derive an instance against the current state of its sources:
   reconstruct its flow trace, cut the trace at every node whose bound
   instance has a newer version (the newer version replaces the whole
   sub-derivation that produced the old one), rebind the remaining
   leaves to their latest versions, and re-execute with memoization.
   Only the sub-flows affected by newer versions actually run. *)
let refresh (ctx : Engine.context) iid =
  Metrics.incr m_refreshes;
  Obs.with_span ~cat:"consistency"
    ~attrs:[ ("instance", Obs.Int iid) ]
    "consistency.refresh"
  @@ fun () ->
  let g, root, binding =
    History.trace ctx.Engine.history ctx.Engine.store ctx.Engine.schema iid
  in
  (* prune: an interior node superseded by a newer version becomes a
     leaf to be re-bound, discarding the stale sub-derivation below it *)
  let g =
    List.fold_left
      (fun g (nid, inst) ->
        if nid = root || not (Ddf_graph.Task_graph.mem g nid) then g
        else if
          latest_version ctx inst <> inst
          && Ddf_graph.Task_graph.out_edges g nid <> []
        then Ddf_graph.Task_graph.unexpand g nid
        else g)
      g binding
  in
  let rebound = ref [] in
  let bindings =
    List.filter_map
      (fun (nid, source_iid) ->
        if
          Ddf_graph.Task_graph.mem g nid
          && Ddf_graph.Task_graph.out_edges g nid = []
        then begin
          let latest = latest_version ctx source_iid in
          if latest <> source_iid then
            rebound := (source_iid, latest) :: !rebound;
          Some (nid, latest)
        end
        else None)
      binding
  in
  let run = Engine.execute ~memo:true ctx g ~bindings in
  let reran =
    run.Engine.stats.Engine.executed + run.Engine.stats.Engine.composed
  in
  Metrics.incr ~by:reran m_reran;
  Metrics.incr ~by:run.Engine.stats.Engine.memo_hits m_reused;
  {
    fresh_instance = Engine.result_of run root;
    reran;
    reused = run.Engine.stats.Engine.memo_hits;
    rebound = List.rev !rebound;
  }

(* Answer the paper's example query -- find the netlist extracted from
   this layout, or learn that none exists / it is out of date. *)
type extraction_status =
  | Never_extracted
  | Up_to_date of Store.iid
  | Out_of_date of Store.iid * (string * Store.iid * Store.iid list) list

let derived_status (ctx : Engine.context) ~source ~goal_entity =
  let derived =
    History.forward_closure ctx.Engine.history source
    |> List.concat_map (fun r -> r.History.outputs)
    |> List.filter (fun (e, _) ->
           Ddf_schema.Schema.is_subtype ctx.Engine.schema ~sub:e
             ~super:goal_entity)
    |> List.map snd
  in
  match List.sort (fun a b -> compare b a) derived with
  | [] -> Never_extracted
  | newest :: _ -> (
    match
      History.out_of_date ctx.Engine.history ctx.Engine.store ctx.Engine.schema
        newest
    with
    | [] -> Up_to_date newest
    | stale -> Out_of_date (newest, stale))

let pp_report ppf r =
  Fmt.pf ppf "refreshed to #%d: %d reran, %d reused, %d rebound"
    r.fresh_instance r.reran r.reused (List.length r.rebound)
