(** The task execution engine: flow automation (section 3.3).

    Because tool and data dependencies are specified in the task
    schema, a complete flow sequences itself: the engine walks the
    graph's invocations in dependency order, resolves an encapsulation
    for each, runs it, stores the outputs and appends the derivation
    record to the design history.  Memoization doubles as the
    design-consistency service: a task whose exact tool and inputs were
    already run is looked up in the history instead of re-executed. *)

open Ddf_schema
open Ddf_graph
open Ddf_store
open Ddf_history
open Ddf_tools

type context = {
  schema : Schema.t;
  mutable store : Ddf_data.value Store.t;
      (** swapped wholesale only by a replication snapshot reinstall
          ({!Ddf_journal}); everything else mutates the store in place *)
  mutable history : History.t;
  registry : Encapsulation.registry;
  mutable clock : int;   (** logical time; advanced by {!tick} *)
  mutable user : string;
      (** identity stamped into new instances' meta-data; the design
          server rebinds it to the requesting client per operation *)
}

val create_context :
  ?user:string -> ?registry:Encapsulation.registry -> Schema.t -> context
(** A fresh context; the registry defaults to
    {!Standard_tools.registry}. *)

val tick : context -> int

type view = {
  v_store : Ddf_data.value Store.snapshot;
  v_history : History.snapshot;
}
(** A pinned read view over a context: the store and history captured
    together, lock-free.  Every read through one view is repeatable —
    concurrent writer commits are invisible.  This is what the server's
    domain-pool read executor and {!Parallel} flow branches read
    through. *)

val pin : context -> view
(** Capture a view (two atomic loads; the history side is captured
    first so the store side covers every instance its records
    mention). *)

val install :
  context -> entity:string -> ?label:string -> ?comment:string ->
  ?keywords:string list -> ?user:string -> Ddf_data.value -> Store.iid
(** Install a source design object (or a tool) into the store.
    @raise Typing.Type_mismatch when the payload does not fit the
    entity. *)

val install_tool : context -> string -> Store.iid
(** Install a catalog tool with its default payload.
    @raise Ddf_core.Error.Ddf_error for tools without one. *)

type stats = {
  executed : int;    (** invocations actually run *)
  memo_hits : int;   (** invocations satisfied from the history *)
  composed : int;    (** composite entities assembled *)
}

val no_stats : stats

type run = {
  assignment : (int * Store.iid) list;  (** node -> instance *)
  stats : stats;
  costs : (int list * int) list;
      (** per executed invocation: output nodes and simulated cost, in
          execution order — replayed by {!Parallel.schedule} *)
}

val ordered_invocations : Task_graph.t -> Task_graph.invocation list
(** Invocations in dependency order (used by the parallel executor). *)

val memo_lookup :
  context -> tool:Store.iid option -> inputs:(string * Store.iid) list ->
  out_entities:string list -> History.record option
(** The consistency lookup: an existing record of the same task with
    the same tool and inputs, covering all the requested outputs. *)

val execute :
  ?memo:bool -> context -> Task_graph.t ->
  bindings:(int * Store.iid) list -> run
(** Execute a flow.  [bindings] selects instances for leaves (and
    optionally pre-computed inner nodes); leaves filling only optional
    roles may stay unbound.  With [memo] (default), identical tasks are
    resolved from the history.
    @raise Ddf_core.Error.Ddf_error on unbound mandatory leaves, incompatible
    bindings or missing outputs. *)

val execute_fanout :
  ?memo:bool -> ?max_combinations:int -> context -> Task_graph.t ->
  bindings:(int * Store.iid list) list -> run list
(** Multi-instance selections (section 4.1): the flow runs once per
    combination. @raise Ddf_core.Error.Ddf_error past [max_combinations]. *)

val decompose : context -> Store.iid -> (string * Store.iid) list
(** Apply the implicit decomposition function of a composite instance,
    storing the parts and recording the derivation (section 3.1). *)

val result_of : run -> int -> Store.iid
(** @raise Ddf_core.Error.Ddf_error when the node was not computed. *)

val pp_stats : Format.formatter -> stats -> unit
