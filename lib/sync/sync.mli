(** Pairwise anti-entropy between disconnected workspaces.

    The paper's framework assumes one shared design database; real
    design teams also work offline — a laptop clone on a plane, a site
    database behind a flaky link.  [Sync] reconciles two divergent
    workspace journals without a primary: each side publishes a
    {!digest} of its journal (seqno → frame md5, reusing the checksums
    the frames already carry), the common prefix of the two histories
    is located by comparison, and exactly the missing suffix is pulled
    — in both directions, in bounded batches, resumably.

    Applying a remote suffix is {e semantic re-execution}, not byte
    copy: instance ids are local, so every remote entry is remapped
    through a persisted identity map before it is replayed into the
    local context (and re-journaled by the ordinary observers).  An
    instance's sync identity is its immutable birth key — entity,
    content hash, creating user and logical creation time — so the
    same object arriving over two different routes deduplicates, and
    convergence is multi-hop.

    Divergence is never silently overwritten.  When both workspaces
    derived a version of the same design object, the remote derivation
    is applied as a {e sibling} in the version tree (Fig. 11 already
    represents alternatives) and the branch point is registered as a
    {!Ddf_history.History.conflict}: queryable ([hercules remote
    conflicts]), resolvable by picking a winner ([hercules remote
    resolve]).  Mutable annotations merge as a max-register (largest
    serialized value wins), so label edits converge without conflict.

    Progress is persisted in a [sync.ddf] sidecar next to the wal:
    per-origin applied cursors, the identity map and the conflict map.
    A sync severed mid-round (network fault, crash) resumes from the
    cursor; re-delivered frames deduplicate, so delivery is
    effectively exactly-once.  The wire side rides the v6 verbs
    ({!Ddf_wire.Wire.request}); in-process peers sync directly. *)

(** {1 Digests} *)

type digest = {
  g_wsid : string;                  (** stable workspace identity *)
  g_base : int;                     (** seqno folded into the snapshot *)
  g_seq : int;                      (** last journaled seqno *)
  g_fingerprint : string;
      (** canonical identity-independent state digest: equal
          fingerprints mean equal design state, though iids differ *)
  g_cursors : (string * int) list;  (** origin wsid → applied seqno *)
  g_entries : (int * string) list;  (** seqno → frame md5, ascending *)
}

val digest_of : Ddf_journal.Journal.t -> digest

val fingerprint : Ddf_exec.Engine.context -> string
(** The canonical state digest: an md5 over sorted lines describing
    every instance (by birth key and current annotation), every history
    record (with iids replaced by birth keys) and every conflict (as an
    unordered pair, origin and detection time dropped).  Two workspaces
    that have fully synced report equal fingerprints even though their
    iids were assigned in different orders. *)

val common_prefix : digest -> digest -> int
(** The last seqno up to which the two journals agree, compared over
    the window both wals still cover; pulls start after
    [max common cursor].  Clones of one directory share their history
    up to the point of divergence. *)

val cursors : Ddf_journal.Journal.t -> (string * int) list
(** The persisted per-origin applied cursors ([sync.ddf]). *)

(** {1 Applying a remote suffix} *)

val apply_frames :
  Ddf_journal.Journal.t ->
  origin:string ->
  upto:int ->
  (int * string * string) list ->
  Ddf_wire.Wire.sync_stats
(** Apply a batch of [origin]'s frames [(seqno, md5, payload)] to the
    local context — remapping ids, deduplicating, surfacing conflicts
    — then persist the origin cursor at [upto].  Frames at or below
    the current cursor are skipped (resumed batches overlap safely);
    an empty batch just advances the cursor.  The server runs this
    from its single-writer loop ([Sync_ack] is a mutation).
    @raise Ddf_core.Error.Ddf_error on checksum mismatch, an
    unmappable instance reference, or [origin] equal to the local
    workspace id (a clone that kept [wsid.ddf]). *)

(** {1 Peers and the sync driver} *)

type peer
(** One side of a sync: either a journal in this process or a design
    server reached through a {!Ddf_client.Client}. *)

val of_journal : Ddf_journal.Journal.t -> peer

val of_client : Ddf_client.Client.t -> peer
(** The remote must speak wire v6; older servers refuse the sync
    verbs with a typed error. *)

type direction = {
  d_from : string;      (** source wsid *)
  d_into : string;      (** destination wsid *)
  d_start : int;        (** seqno the pull started after *)
  d_upto : int;         (** source seqno applied through *)
  d_rounds : int;       (** frame batches transferred *)
  d_pulled : int;       (** frames transferred *)
  d_applied : int;      (** frames whose effects were new *)
  d_skipped : int;      (** frames deduplicated *)
  d_conflicts : int;    (** divergences registered *)
}

type report = {
  rp_into_a : direction;  (** what [a] pulled from [b] *)
  rp_into_b : direction;  (** what [b] pulled from [a] *)
  rp_dry : bool;
}

val pull :
  ?dry_run:bool -> ?batch:int -> src:peer -> dst:peer -> unit -> direction
(** One direction: [dst] pulls [src]'s missing suffix in batches of
    [batch] frames (default 64), each batch applied and its cursor
    persisted before the next is fetched — a severed sync resumes
    where it stopped.  [dry_run] fetches and counts but applies
    nothing.  The ["sync.pull"] fault point fires before each fetch.
    @raise Ddf_core.Error.Ddf_error when the peers share a workspace
    id, or when [src] has compacted away frames [dst] still needs. *)

val run : ?dry_run:bool -> ?batch:int -> a:peer -> b:peer -> unit -> report
(** A full bidirectional session: [a] pulls from [b], then — against
    re-fetched digests, so the first direction's merge results flow
    back — [b] pulls from [a].  Two already-connected workspaces
    converge to equal {!fingerprint}s in at most two [run]s (the
    second delivers only the conflict registrations the first created
    on the later side). *)

val pp_direction : Format.formatter -> direction -> unit
val pp_report : Format.formatter -> report -> unit
