(* Pairwise anti-entropy between disconnected workspace journals.

   The plan of a sync session (one [run]):

     1. both sides publish a digest: workspace id, journal window
        (base, seq), per-frame md5s, per-origin applied cursors and a
        canonical state fingerprint;
     2. the common prefix of the two histories is located by comparing
        frame digests over the window both wals still cover — clones
        of one directory agree up to the point of divergence;
     3. each side pulls exactly the other's missing suffix, in bounded
        batches, each batch applied and its cursor persisted before
        the next fetch (a severed sync resumes from the cursor).

   Application is semantic re-execution, not byte copy.  Instance ids
   are local to a store, so a remote entry is remapped before replay:

     - an instance's sync identity is its immutable birth key —
       (entity, content hash, creating user, logical creation time) —
       so the same object arriving twice (or over two routes)
       deduplicates, and the mapping (origin, remote iid) → local iid
       is persisted in the sync.ddf sidecar;
     - history records dedup on (task, tool, inputs, outputs, at)
       after remapping;
     - annotations merge as a max-register: the lexicographically
       larger serialized (label, comment, keywords) wins, so both
       sides converge without ordering metadata;
     - a remote record that derives a NEW version of an instance we
       also derived a version of becomes a sibling in the version tree
       and registers a History conflict — never an overwrite;
     - conflicts and resolutions travel in the journal like everything
       else, deduplicating on their unordered {ours, theirs} pair.

   Everything applied here goes through the ordinary store/history
   operations, so the local journal observers re-journal the effects
   with local ids — which is exactly what makes the merge visible to
   the peer in the reverse direction (and to any third workspace). *)

open Ddf_store
open Ddf_history
module S = Ddf_persist.Sexp
module W = Ddf_persist.Workspace_file
module Codec = Ddf_persist.Codec
module Engine = Ddf_exec.Engine
module Journal = Ddf_journal.Journal
module Wire = Ddf_wire.Wire
module Client = Ddf_client.Client
module Obs = Ddf_obs.Obs
module Metrics = Ddf_obs.Metrics
module Fault = Ddf_fault.Fault
module E = Ddf_core.Error

let m_rounds = Metrics.counter "sync.rounds"
let m_frames = Metrics.counter "sync.frames_pulled"
let m_conflicts = Metrics.counter "sync.conflicts"
let h_round = Metrics.histogram "sync.round_us"

(* ------------------------------------------------------------------ *)
(* The sync.ddf sidecar: cursors and identity maps                     *)
(* ------------------------------------------------------------------ *)

(* Lives next to the wal; loaded per batch, written atomically after.
   Losing it (crash between journal append and sidecar save) is safe:
   the cursor re-reads frames that then deduplicate by identity. *)
type state = {
  mutable st_cursors : (string * int) list;   (* origin wsid -> applied seqno *)
  st_imap : (string * int, int) Hashtbl.t;    (* (origin, remote iid) -> local iid *)
  st_cmap : (string * int, int) Hashtbl.t;    (* (origin, remote cid) -> local cid *)
  st_born : (int, string) Hashtbl.t;          (* local iid -> origin it synced from *)
}

let state_path dir = Filename.concat dir "sync.ddf"

let empty_state () =
  { st_cursors = []; st_imap = Hashtbl.create 64; st_cmap = Hashtbl.create 16;
    st_born = Hashtbl.create 64 }

let load_state dir =
  let path = state_path dir in
  if not (Sys.file_exists path) then empty_state ()
  else begin
    let ic = open_in_bin path in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let sexp =
      try S.of_string data
      with S.Sexp_error m -> E.errorf `Internal "sync.ddf: %s" m
    in
    match S.as_list sexp with
    | S.Atom "sync" :: fields ->
      let st = empty_state () in
      let rows name f =
        match S.find_field_opt fields name with
        | None -> ()
        | Some rows -> List.iter (fun r -> f (S.as_list r)) rows
      in
      rows "cursors" (function
        | [ w; n ] -> st.st_cursors <- (S.as_atom w, S.as_int n) :: st.st_cursors
        | _ -> E.errorf `Internal "sync.ddf: malformed cursor");
      rows "imap" (function
        | [ o; r; l ] ->
          Hashtbl.replace st.st_imap (S.as_atom o, S.as_int r) (S.as_int l)
        | _ -> E.errorf `Internal "sync.ddf: malformed imap row");
      rows "cmap" (function
        | [ o; r; l ] ->
          Hashtbl.replace st.st_cmap (S.as_atom o, S.as_int r) (S.as_int l)
        | _ -> E.errorf `Internal "sync.ddf: malformed cmap row");
      rows "born" (function
        | [ l; o ] -> Hashtbl.replace st.st_born (S.as_int l) (S.as_atom o)
        | _ -> E.errorf `Internal "sync.ddf: malformed born row");
      st
    | _ -> E.errorf `Internal "sync.ddf: malformed"
  end

let save_state dir st =
  let sorted tbl f =
    Hashtbl.fold (fun k v acc -> f k v :: acc) tbl []
    |> List.sort compare
    |> List.map (fun row -> S.list row)
  in
  let sexp =
    S.list
      [ S.atom "sync";
        S.field "cursors"
          (List.map
             (fun (w, n) -> S.list [ S.atom w; S.int n ])
             (List.sort compare st.st_cursors));
        S.field "imap"
          (sorted st.st_imap (fun (o, r) l -> [ S.atom o; S.int r; S.int l ]));
        S.field "cmap"
          (sorted st.st_cmap (fun (o, r) l -> [ S.atom o; S.int r; S.int l ]));
        S.field "born"
          (sorted st.st_born (fun l o -> [ S.int l; S.atom o ])) ]
  in
  let path = state_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (S.to_string ~pretty:true sexp);
     output_char oc '\n';
     flush oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let cursor_of st origin =
  match List.assoc_opt origin st.st_cursors with Some c -> c | None -> 0

let set_cursor st origin seq =
  st.st_cursors <- (origin, seq) :: List.remove_assoc origin st.st_cursors

let cursors j = List.sort compare (load_state (Journal.dir j)).st_cursors

(* ------------------------------------------------------------------ *)
(* Identity: birth keys and the canonical fingerprint                  *)
(* ------------------------------------------------------------------ *)

(* The immutable identity an instance keeps across workspaces: entity,
   content hash, creating user and logical creation time.  The mutable
   annotation (label/comment/keywords) is deliberately excluded — it
   merges, it does not identify. *)
let birth_key_of ~entity ~hash ~user ~created_at =
  S.to_string
    (S.list [ S.atom entity; S.atom hash; S.atom user; S.int created_at ])

let birth_key store iid =
  let inst = Store.find store iid in
  let m = inst.Store.meta in
  birth_key_of ~entity:inst.Store.entity ~hash:inst.Store.data_hash
    ~user:m.Store.user ~created_at:m.Store.created_at

(* Canonical identity-independent digest of the whole design state:
   sorted lines for every instance (birth key + current annotation),
   every record (iids replaced by birth keys, bindings sorted) and
   every conflict (unordered pair; detection time and reporting origin
   dropped — both peers describe one divergence from opposite ends).
   Two fully synced workspaces produce equal fingerprints even though
   their iids were assigned in different orders. *)
let fingerprint (ctx : Engine.context) =
  let store = ctx.Engine.store in
  let history = ctx.Engine.history in
  let key = birth_key store in
  let lines = ref [] in
  let line s = lines := S.to_string (S.list s) :: !lines in
  List.iter
    (fun iid ->
      let inst = Store.find store iid in
      let m = inst.Store.meta in
      line
        [ S.atom "i"; S.atom inst.Store.entity; S.atom inst.Store.data_hash;
          S.atom m.Store.user; S.int m.Store.created_at; S.atom m.Store.label;
          S.atom m.Store.comment; S.list (List.map S.atom m.Store.keywords) ])
    (Store.all_instances store);
  let binding l =
    List.sort compare (List.map (fun (role, iid) -> (role, key iid)) l)
    |> List.map (fun (role, k) -> S.list [ S.atom role; S.atom k ])
  in
  List.iter
    (fun (r : History.record) ->
      line
        [ S.atom "r"; S.atom r.History.task_entity; S.int r.History.at;
          (match r.History.tool with
          | None -> S.atom "-"
          | Some t -> S.atom (key t));
          S.list (binding r.History.inputs); S.list (binding r.History.outputs) ])
    (History.records history);
  List.iter
    (fun (c : History.conflict) ->
      let pair =
        List.sort compare [ key c.History.c_ours; key c.History.c_theirs ]
      in
      line
        [ S.atom "c"; S.atom (key c.History.c_base);
          S.list (List.map S.atom pair);
          (match c.History.c_winner with
          | None -> S.atom "-"
          | Some w -> S.atom (key w)) ])
    (History.all_conflicts history);
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare !lines)))

(* ------------------------------------------------------------------ *)
(* Digests and the common prefix                                       *)
(* ------------------------------------------------------------------ *)

type digest = {
  g_wsid : string;
  g_base : int;
  g_seq : int;
  g_fingerprint : string;
  g_cursors : (string * int) list;
  g_entries : (int * string) list;
}

let digest_of j =
  { g_wsid = Journal.wsid j; g_base = Journal.base_seq j;
    g_seq = Journal.seq j; g_fingerprint = fingerprint (Journal.context j);
    g_cursors = cursors j; g_entries = Journal.digest j }

(* The last seqno both journals agree on, scanned over the window both
   wals still cover.  Frames below [max] of the bases are invisible
   (compacted on at least one side) and assumed shared — compaction
   bounds how far back divergence can be detected, so divergent work
   should sync before it is compacted; a pull that genuinely needs
   compacted frames fails with a typed [`Conflict] from
   {!Journal.frames}. *)
let common_prefix a b =
  let lo = max a.g_base b.g_base in
  let hi = min a.g_seq b.g_seq in
  if hi < lo then hi
  else begin
    let rec go s =
      if s >= hi then s
      else
        let n = s + 1 in
        match (List.assoc_opt n a.g_entries, List.assoc_opt n b.g_entries) with
        | Some da, Some db when da = db -> go n
        | _ -> s
    in
    go lo
  end

(* ------------------------------------------------------------------ *)
(* Applying a remote suffix                                            *)
(* ------------------------------------------------------------------ *)

let annotation_key (m : Store.meta) =
  S.to_string
    (S.list
       [ S.atom m.Store.label; S.atom m.Store.comment;
         S.list (List.map S.atom m.Store.keywords) ])

let record_key ~task_entity ~tool ~inputs ~outputs ~at =
  let binding l =
    List.map (fun (r, i) -> S.list [ S.atom r; S.int i ]) (List.sort compare l)
  in
  S.to_string
    (S.list
       [ S.atom task_entity; S.int at;
         (match tool with None -> S.atom "-" | Some t -> S.int t);
         S.list (binding inputs); S.list (binding outputs) ])

(* One batch application.  Per-frame dispatch below; the counters are
   each frame's fate (applied xor skipped) plus the conflicts it
   registered. *)
let apply_frames j ~origin ~upto frames =
  let ctx = Journal.context j in
  let self = Journal.wsid j in
  if origin = self then
    E.errorf `Invalid
      "peer reports our own workspace id %s — a cloned directory must shed \
       wsid.ddf (and sync.ddf) to sync as its own peer"
      origin;
  let dir = Journal.dir j in
  let st = load_state dir in
  Obs.with_span ~cat:"sync"
    ~attrs:
      [ ("origin", Obs.Str origin); ("frames", Obs.Int (List.length frames)) ]
    "sync.apply"
  @@ fun () ->
  let store () = ctx.Engine.store in
  let history () = ctx.Engine.history in
  (* identity and record indexes over the CURRENT local state, kept
     up to date as entries apply *)
  let id_index = Hashtbl.create 256 in
  List.iter
    (fun iid ->
      let bk = birth_key (store ()) iid in
      if not (Hashtbl.mem id_index bk) then Hashtbl.add id_index bk iid)
    (Store.all_instances (store ()));
  let rec_index = Hashtbl.create 256 in
  List.iter
    (fun (r : History.record) ->
      Hashtbl.replace rec_index
        (record_key ~task_entity:r.History.task_entity ~tool:r.History.tool
           ~inputs:r.History.inputs ~outputs:r.History.outputs ~at:r.History.at)
        r.History.rid)
    (History.records (history ()));
  let applied = ref 0 and skipped = ref 0 and conflicts = ref 0 in
  (* remote iid -> local iid: the persisted map first; an id not in the
     map must predate the divergence point, where clone iids coincide *)
  let remap riid =
    match Hashtbl.find_opt st.st_imap (origin, riid) with
    | Some liid -> liid
    | None ->
      if Store.mem (store ()) riid then riid
      else
        E.errorf `Conflict
          "sync from %s references instance %d with no local counterpart \
           (peer compacted past the divergence point?)"
          origin riid
  in
  let register_conflict ~base ~ours ~theirs =
    match History.find_conflict_pair (history ()) ours theirs with
    | Some _ -> ()
    | None ->
      ignore
        (History.add_conflict (history ()) ~base ~ours ~theirs ~origin
           ~at:(Engine.tick ctx)
          : History.conflict);
      incr conflicts;
      Metrics.incr m_conflicts
  in
  let int_f fields name = S.as_int (S.one name (S.find_field fields name)) in
  let atom_f fields name = S.as_atom (S.one name (S.find_field fields name)) in
  let apply_entry payload =
    let sexp =
      try S.of_string payload
      with S.Sexp_error m -> E.errorf `Invalid "sync frame: %s" m
    in
    match S.as_list sexp with
    | S.Atom "put" :: fields ->
      let riid = int_f fields "iid" in
      let entity = atom_f fields "entity" in
      let stored_hash = atom_f fields "hash" in
      let meta = W.meta_of_sexp (S.one "meta" (S.find_field fields "meta")) in
      let value =
        try Codec.value_of_sexp (S.one "value" (S.find_field fields "value"))
        with Codec.Codec_error m ->
          E.errorf `Invalid "sync frame for instance %d: %s" riid m
      in
      if Ddf_data.hash value <> stored_hash then
        E.errorf `Invalid "sync frame for instance %d: content hash mismatch"
          riid;
      ctx.Engine.clock <- max ctx.Engine.clock (int_f fields "clock");
      if Hashtbl.mem st.st_imap (origin, riid) then incr skipped
      else begin
        let bk =
          birth_key_of ~entity ~hash:stored_hash ~user:meta.Store.user
            ~created_at:meta.Store.created_at
        in
        match Hashtbl.find_opt id_index bk with
        | Some liid ->
          (* the same object arrived before (or we created it): map it *)
          Hashtbl.replace st.st_imap (origin, riid) liid;
          incr skipped
        | None ->
          (* a direct put preserves the remote meta (user, creation
             time), so the birth key survives further hops *)
          let liid =
            Store.put (store ()) ~entity ~hash:stored_hash ~meta value
          in
          Hashtbl.replace st.st_imap (origin, riid) liid;
          Hashtbl.replace st.st_born liid origin;
          Hashtbl.replace id_index bk liid;
          incr applied
      end
    | S.Atom "note" :: fields ->
      let liid = remap (int_f fields "iid") in
      let meta = W.meta_of_sexp (S.one "meta" (S.find_field fields "meta")) in
      (* max-register merge: the larger serialized annotation wins on
         both sides, so concurrent edits converge without a conflict;
         equality skips, so re-delivery reaches a fixpoint *)
      if annotation_key meta > annotation_key (Store.meta_of (store ()) liid)
      then begin
        Store.annotate (store ()) liid ~label:meta.Store.label
          ~comment:meta.Store.comment ~keywords:meta.Store.keywords ();
        incr applied
      end
      else incr skipped
    | [ S.Atom "record"; clock_field; r ] ->
      let clock =
        match clock_field with
        | S.List [ S.Atom "clock"; c ] -> S.as_int c
        | _ -> E.errorf `Invalid "sync frame: malformed record entry"
      in
      let p =
        try W.record_of_sexp r
        with W.Persist_error m -> E.errorf `Invalid "sync record entry: %s" m
      in
      ctx.Engine.clock <- max ctx.Engine.clock clock;
      let tool = Option.map remap p.W.rp_tool in
      let inputs = List.map (fun (role, i) -> (role, remap i)) p.W.rp_inputs in
      let outputs = List.map (fun (e, i) -> (e, remap i)) p.W.rp_outputs in
      let rkey =
        record_key ~task_entity:p.W.rp_task_entity ~tool ~inputs ~outputs
          ~at:p.W.rp_at
      in
      if Hashtbl.mem rec_index rkey then incr skipped
      else begin
        (* produced-by collision check BEFORE History.add — add inserts
           before validating later outputs, so a late duplicate would
           leave a half-registered record behind *)
        let collisions =
          List.filter
            (fun (_, o) -> History.derivation_of (history ()) o <> None)
            outputs
        in
        if collisions <> [] then begin
          (* the same instance claims two different derivations: keep
             ours, surface the divergence *)
          List.iter
            (fun (_, o) ->
              let base =
                Option.value ~default:o
                  (History.version_parent (history ()) (store ())
                     ctx.Engine.schema o)
              in
              register_conflict ~base ~ours:o ~theirs:o)
            collisions;
          incr skipped
        end
        else begin
          let r =
            History.add (history ()) ~task_entity:p.W.rp_task_entity ~tool
              ~inputs ~outputs ~at:p.W.rp_at
          in
          Hashtbl.replace rec_index rkey r.History.rid;
          incr applied;
          (* did this record branch the version tree?  A sibling that
             did not itself come from this origin means both
             workspaces derived a version of the same object *)
          List.iter
            (fun (_, o) ->
              match
                History.record_version_parent (store ()) ctx.Engine.schema r o
              with
              | None -> ()
              | Some parent ->
                List.iter
                  (fun sib ->
                    if
                      sib <> o
                      && Hashtbl.find_opt st.st_born sib <> Some origin
                    then register_conflict ~base:parent ~ours:sib ~theirs:o)
                  (History.version_children (history ()) (store ())
                     ctx.Engine.schema parent))
            outputs
        end
      end
    | S.Atom "conflict" :: fields ->
      ctx.Engine.clock <- max ctx.Engine.clock (int_f fields "clock");
      let rcid = int_f fields "id" in
      if Hashtbl.mem st.st_cmap (origin, rcid) then incr skipped
      else begin
        let base = remap (int_f fields "base") in
        let ours = remap (int_f fields "ours") in
        let theirs = remap (int_f fields "theirs") in
        match History.find_conflict_pair (history ()) ours theirs with
        | Some c ->
          (* we already registered this divergence from our end *)
          Hashtbl.replace st.st_cmap (origin, rcid) c.History.cid;
          incr skipped
        | None ->
          let c =
            History.add_conflict (history ()) ~base ~ours ~theirs
              ~origin:(atom_f fields "origin") ~at:(int_f fields "at")
          in
          Hashtbl.replace st.st_cmap (origin, rcid) c.History.cid;
          incr conflicts;
          Metrics.incr m_conflicts;
          incr applied
      end
    | S.Atom "resolve" :: fields -> (
      ctx.Engine.clock <- max ctx.Engine.clock (int_f fields "clock");
      let rcid = int_f fields "id" in
      match Hashtbl.find_opt st.st_cmap (origin, rcid) with
      | None ->
        (* a resolution for a conflict we never mapped (lost sidecar):
           nothing safe to do — the conflict itself stays queryable *)
        incr skipped
      | Some lcid -> (
        let winner = remap (int_f fields "winner") in
        let c = History.find_conflict (history ()) lcid in
        match c.History.c_winner with
        | Some w when w = winner -> incr skipped
        | Some _ ->
          (* contradictory resolutions: keep the local one; the
             fingerprints will honestly disagree until someone decides *)
          incr skipped
        | None ->
          ignore
            (History.resolve_conflict (history ()) lcid ~winner
              : History.conflict);
          incr applied))
    | _ -> E.errorf `Invalid "sync frame: unknown entry kind"
  in
  List.iter
    (fun (seqno, md5, payload) ->
      if Journal.frame_digest payload <> md5 then
        E.errorf `Invalid "sync frame %d from %s: checksum mismatch" seqno
          origin;
      if seqno <= cursor_of st origin then incr skipped
      else begin
        apply_entry payload;
        set_cursor st origin seqno
      end)
    frames;
  if upto > cursor_of st origin then set_cursor st origin upto;
  save_state dir st;
  { Wire.sy_applied = !applied; sy_skipped = !skipped;
    sy_conflicts = !conflicts; sy_cursor = cursor_of st origin }

(* ------------------------------------------------------------------ *)
(* Peers and the driver                                                *)
(* ------------------------------------------------------------------ *)

type peer = {
  p_digest : unit -> digest;
  p_frames : after:int -> limit:int -> (int * string * string) list;
  p_push :
    origin:string -> upto:int -> (int * string * string) list ->
    Wire.sync_stats;
}

let of_journal j =
  { p_digest = (fun () -> digest_of j);
    p_frames = (fun ~after ~limit -> Journal.frames j ~after ~limit);
    p_push = (fun ~origin ~upto frames -> apply_frames j ~origin ~upto frames)
  }

let of_client c =
  { p_digest =
      (fun () ->
        let wsid, base, seq, fp, cursors, entries = Client.sync_digest c in
        { g_wsid = wsid; g_base = base; g_seq = seq; g_fingerprint = fp;
          g_cursors = cursors; g_entries = entries });
    p_frames = (fun ~after ~limit -> Client.sync_frames c ~after ~limit);
    p_push =
      (fun ~origin ~upto frames -> Client.sync_push c ~origin ~upto frames) }

type direction = {
  d_from : string;
  d_into : string;
  d_start : int;
  d_upto : int;
  d_rounds : int;
  d_pulled : int;
  d_applied : int;
  d_skipped : int;
  d_conflicts : int;
}

type report = {
  rp_into_a : direction;
  rp_into_b : direction;
  rp_dry : bool;
}

let pull ?(dry_run = false) ?(batch = 64) ~src ~dst () =
  if batch < 1 then E.errorf `Invalid "sync batch must be positive";
  let ds = src.p_digest () in
  let dd = dst.p_digest () in
  if ds.g_wsid = dd.g_wsid then
    E.errorf `Invalid
      "both peers report workspace id %s — a cloned directory must shed \
       wsid.ddf (and sync.ddf) to sync as its own peer"
      ds.g_wsid;
  let common = common_prefix ds dd in
  let cursor =
    match List.assoc_opt ds.g_wsid dd.g_cursors with Some c -> c | None -> 0
  in
  let start = max common cursor in
  let rounds = ref 0 and pulled = ref 0 in
  let applied = ref 0 and skipped = ref 0 and conflicts = ref 0 in
  (* one bounded round per loop step; the cursor is persisted with each
     push, so a disconnect (or an injected "sync.pull" fault) loses at
     most the round in flight *)
  let rec loop after =
    if after >= ds.g_seq then after
    else begin
      Fault.fire "sync.pull";
      let t0 = Unix.gettimeofday () in
      match src.p_frames ~after ~limit:batch with
      | [] -> after
      | fs ->
        incr rounds;
        Metrics.incr m_rounds;
        let n = List.length fs in
        pulled := !pulled + n;
        Metrics.incr ~by:n m_frames;
        let upto =
          match List.rev fs with (s, _, _) :: _ -> s | [] -> assert false
        in
        if not dry_run then begin
          let stats = dst.p_push ~origin:ds.g_wsid ~upto fs in
          applied := !applied + stats.Wire.sy_applied;
          skipped := !skipped + stats.Wire.sy_skipped;
          conflicts := !conflicts + stats.Wire.sy_conflicts
        end;
        let dur_us = (Unix.gettimeofday () -. t0) *. 1e6 in
        Metrics.observe h_round dur_us;
        if Obs.enabled () then
          Obs.complete ~cat:"sync" ~dur_us
            ~attrs:[ ("from", Obs.Str ds.g_wsid); ("frames", Obs.Int n) ]
            "sync.round";
        loop upto
    end
  in
  let final = loop start in
  (* nothing to pull but the cursor lags the common prefix: advance it
     with an empty ack so later digest scans start further along *)
  if (not dry_run) && !pulled = 0 && start > cursor then
    ignore (dst.p_push ~origin:ds.g_wsid ~upto:start [] : Wire.sync_stats);
  { d_from = ds.g_wsid; d_into = dd.g_wsid; d_start = start; d_upto = final;
    d_rounds = !rounds; d_pulled = !pulled; d_applied = !applied;
    d_skipped = !skipped; d_conflicts = !conflicts }

let run ?(dry_run = false) ?batch ~a ~b () =
  Obs.with_span ~cat:"sync" "sync.session" @@ fun () ->
  (* direction two re-fetches digests, so everything direction one
     merged (including freshly registered conflicts) flows straight
     back — one run converges the data, and the second run only
     carries conflict registrations the later side created *)
  let into_a = pull ~dry_run ?batch ~src:b ~dst:a () in
  let into_b = pull ~dry_run ?batch ~src:a ~dst:b () in
  { rp_into_a = into_a; rp_into_b = into_b; rp_dry = dry_run }

let pp_direction ppf d =
  Format.fprintf ppf
    "%s <- %s: %d frames in %d rounds (start %d, through %d): %d applied, %d \
     skipped, %d conflicts"
    d.d_into d.d_from d.d_pulled d.d_rounds d.d_start d.d_upto d.d_applied
    d.d_skipped d.d_conflicts

let pp_report ppf r =
  Format.fprintf ppf "%s@[<v>%a@,%a@]"
    (if r.rp_dry then "dry run:\n" else "")
    pp_direction r.rp_into_a pp_direction r.rp_into_b
