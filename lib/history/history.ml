(* The design-history database.

   Each task invocation leaves one record: the goal entity, the tool
   instance used, the input instances per role, and every co-produced
   output.  That is the "small amount of meta-data" from which the
   paper derives the complete derivation history: backward chaining
   reconstructs how an object was made (Fig. 10), forward chaining
   finds what depends on it, and a flow trace -- the same form as a
   task graph -- is a semantically richer superset of a version tree
   (Fig. 11).

   MVCC: like the store, the whole hot state is one immutable record
   behind an [Atomic.t]; a snapshot is [Atomic.get], mutations CAS a
   new state in.  Store-joined reads (traces, version queries) pair a
   history snapshot with a {!Store.Snapshot.t} so the two views are
   frozen together. *)

open Ddf_schema
open Ddf_store
module Int_map = Map.Make (Int)

type record = {
  rid : int;
  task_entity : string;                   (* goal entity of the task *)
  tool : Store.iid option;                (* None for compositions *)
  inputs : (string * Store.iid) list;     (* role -> instance *)
  outputs : (string * Store.iid) list;    (* entity -> instance *)
  at : int;                               (* logical time of execution *)
}

(* A sync conflict: two journal histories derived different versions
   of the same design object.  Both derivations stay in the history as
   alternative versions (the paper's Fig. 11 version branches); the
   conflict is a first-class, queryable pointer at the branch point,
   resolvable by picking a winner but never by deleting a branch.
   Immutable: resolution replaces the record, so a conflict value read
   through a snapshot can never be torn by a concurrent resolve. *)
type conflict = {
  cid : int;
  c_base : Store.iid;      (* the shared version both sides edited *)
  c_ours : Store.iid;      (* the locally derived alternative *)
  c_theirs : Store.iid;    (* the remotely derived alternative *)
  c_origin : string;       (* workspace id the remote branch came from *)
  c_at : int;              (* logical time the conflict was detected *)
  c_winner : Store.iid option;
}

type conflict_event = Conflict_added of conflict | Conflict_resolved of conflict

(* The immutable hot state. *)
type state = {
  hs_next_rid : int;
  hs_records : record Int_map.t;
  hs_produced_by : int Int_map.t;         (* instance -> record *)
  hs_used_by : int list Int_map.t;        (* instance -> rids, newest first *)
  hs_next_cid : int;
  hs_conflicts : conflict Int_map.t;
}

(* The version-successor index: version-parent and version-children
   edges derived from the records (see "Versioning" below).  Records
   and instance entities are immutable once written, so an indexed
   prefix of the record ids stays valid forever; the index advances
   incrementally over rids [vi_next ..] at query time ([add] has no
   store/schema in hand, so it cannot maintain the edges itself).

   The index is itself an immutable record cached on the handle and
   republished by CAS, which makes it snapshot-safe: a query over a
   history snapshot uses the cache only when the cached prefix is
   within the snapshot ([vi_next - 1 <= snapshot boundary]), extends
   it privately to exactly the boundary, and publishes the extension
   (a strict improvement — records are shared).  When the cache has
   advanced past the snapshot (the live history grew), the query
   rebuilds the prefix privately and leaves the cache alone.

   The store and schema the edges were derived against are remembered
   by store-handle id and schema physical identity — a different store
   (e.g. after a replication resync swaps the context's store)
   rebuilds from scratch. *)
type vindex = {
  vi_store : int;                       (* Store.id of the source handle *)
  vi_schema : Obj.t;
  vi_parent : Store.iid Int_map.t;
  vi_children : Store.iid list Int_map.t;
  vi_next : int;                        (* first rid not yet folded in *)
}

type t = {
  state : state Atomic.t;
  mutable observer : (record -> unit) option;
  vindex : vindex option Atomic.t;
  mutable conflict_observer : (conflict_event -> unit) option;
}

type snapshot = {
  hsnap_state : state;
  hsnap_source : t;
  (* the handle is carried only to reach the shared vindex cache *)
}

let history_errorf ?(code = `Invalid) fmt = Ddf_core.Error.errorf code fmt

let m_appends = Ddf_obs.Metrics.counter "history.appends"
let m_queries = Ddf_obs.Metrics.counter "history.template_queries"
let h_backward = Ddf_obs.Metrics.histogram "history.backward_depth"
let h_forward = Ddf_obs.Metrics.histogram "history.forward_depth"

let empty_state =
  {
    hs_next_rid = 1;
    hs_records = Int_map.empty;
    hs_produced_by = Int_map.empty;
    hs_used_by = Int_map.empty;
    hs_next_cid = 1;
    hs_conflicts = Int_map.empty;
  }

let create () =
  {
    state = Atomic.make empty_state;
    observer = None;
    vindex = Atomic.make None;
    conflict_observer = None;
  }

(* Pure-state CAS retry loop; [f]'s side effects must be none (it may
   run twice under contention). *)
let rec update h f =
  let old_state = Atomic.get h.state in
  let new_state, ret = f old_state in
  if Atomic.compare_and_set h.state old_state new_state then ret
  else update h f

let snapshot h = { hsnap_state = Atomic.get h.state; hsnap_source = h }

let size h = Int_map.cardinal (Atomic.get h.state).hs_records
let tick h = (Atomic.get h.state).hs_next_rid

let restore_tick h n =
  update h (fun st ->
      if n < st.hs_next_rid then
        history_errorf "cannot move the record counter back (%d < %d)" n
          st.hs_next_rid;
      ({ st with hs_next_rid = n }, ()))

let set_observer h f = h.observer <- Some f
let clear_observer h = h.observer <- None

let set_conflict_observer h f = h.conflict_observer <- Some f
let clear_conflict_observer h = h.conflict_observer <- None

let conflict_tick h = (Atomic.get h.state).hs_next_cid

let add_conflict h ~base ~ours ~theirs ~origin ~at =
  let c =
    update h (fun st ->
        let cid = st.hs_next_cid in
        let c =
          { cid; c_base = base; c_ours = ours; c_theirs = theirs;
            c_origin = origin; c_at = at; c_winner = None }
        in
        ( { st with
            hs_next_cid = cid + 1;
            hs_conflicts = Int_map.add cid c st.hs_conflicts },
          c ))
  in
  (match h.conflict_observer with None -> () | Some f -> f (Conflict_added c));
  c

let add h ~task_entity ~tool ~inputs ~outputs ~at =
  if outputs = [] then history_errorf "a record needs at least one output";
  let r =
    update h (fun st ->
        let rid = st.hs_next_rid in
        let r = { rid; task_entity; tool; inputs; outputs; at } in
        let produced_by =
          List.fold_left
            (fun acc (_, iid) ->
              if Int_map.mem iid acc then
                history_errorf ~code:`Conflict
                  "instance %d already has a producing record" iid;
              Int_map.add iid rid acc)
            st.hs_produced_by outputs
        in
        let note_use acc iid =
          let l = Option.value (Int_map.find_opt iid acc) ~default:[] in
          Int_map.add iid (rid :: l) acc
        in
        let used_by =
          List.fold_left (fun acc (_, iid) -> note_use acc iid)
            st.hs_used_by inputs
        in
        let used_by =
          match tool with Some t -> note_use used_by t | None -> used_by
        in
        ( { st with
            hs_next_rid = rid + 1;
            hs_records = Int_map.add rid r st.hs_records;
            hs_produced_by = produced_by;
            hs_used_by = used_by },
          r ))
  in
  Ddf_obs.Metrics.incr m_appends;
  (match h.observer with None -> () | Some f -> f r);
  r

let resolve_conflict h cid ~winner =
  let c, resolved =
    update h (fun st ->
        match Int_map.find_opt cid st.hs_conflicts with
        | None -> history_errorf ~code:`Not_found "no conflict %d" cid
        | Some c -> (
          if winner <> c.c_base && winner <> c.c_ours && winner <> c.c_theirs
          then
            history_errorf "conflict %d: %d is not one of its versions" cid
              winner;
          match c.c_winner with
          | Some w when w = winner ->
            (st, (c, false))   (* idempotent: re-applying a synced resolution *)
          | Some w ->
            history_errorf ~code:`Conflict
              "conflict %d already resolved in favour of %d" cid w
          | None ->
            let c = { c with c_winner = Some winner } in
            ( { st with hs_conflicts = Int_map.add cid c st.hs_conflicts },
              (c, true) )))
  in
  (if resolved then
     match h.conflict_observer with
     | None -> ()
     | Some f -> f (Conflict_resolved c));
  c

(* ------------------------------------------------------------------ *)
(* Reads over one frozen state                                         *)
(* ------------------------------------------------------------------ *)

(* Everything below is pure over a [state] (plus, for store-joined
   queries, a [Store.Snapshot.t] and a schema); the [Snapshot] module
   and the live wrappers at the bottom both delegate here. *)

let st_find st rid =
  match Int_map.find_opt rid st.hs_records with
  | Some r -> r
  | None -> history_errorf ~code:`Not_found "no record %d" rid

let st_records st = List.map snd (Int_map.bindings st.hs_records)

let st_find_conflict st cid =
  match Int_map.find_opt cid st.hs_conflicts with
  | Some c -> c
  | None -> history_errorf ~code:`Not_found "no conflict %d" cid

(* Unordered-pair lookup: the two sides of a sync each record the same
   divergence with [ours]/[theirs] swapped, so dedup ignores the
   orientation. *)
let st_find_conflict_pair st a b =
  let key x = (min x.c_ours x.c_theirs, max x.c_ours x.c_theirs) in
  let want = (min a b, max a b) in
  Int_map.fold
    (fun _ c acc -> if acc = None && key c = want then Some c else acc)
    st.hs_conflicts None

let st_all_conflicts st = List.map snd (Int_map.bindings st.hs_conflicts)

let st_conflicts st =
  List.filter (fun c -> c.c_winner = None) (st_all_conflicts st)

(* The record that created an instance; None for instances installed
   directly by the designer (sources). *)
let st_derivation_of st iid =
  Option.map (st_find st) (Int_map.find_opt iid st.hs_produced_by)

let st_uses_of st iid =
  match Int_map.find_opt iid st.hs_used_by with
  | Some l -> List.rev_map (st_find st) l
  | None -> []

(* Backward chaining: every record in the derivation history of an
   instance, nearest first. *)
let st_backward_closure st iid =
  let seen_records = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go iid =
    match st_derivation_of st iid with
    | None -> ()
    | Some r ->
      if not (Hashtbl.mem seen_records r.rid) then begin
        Hashtbl.add seen_records r.rid ();
        acc := r :: !acc;
        List.iter (fun (_, i) -> go i) r.inputs;
        Option.iter go r.tool
      end
  in
  go iid;
  Ddf_obs.Metrics.observe h_backward (float_of_int (Hashtbl.length seen_records));
  List.rev !acc

(* Forward chaining: every record that transitively depends on an
   instance -- e.g. all the performances derived from a netlist. *)
let st_forward_closure st iid =
  let seen_records = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go iid =
    List.iter
      (fun r ->
        if not (Hashtbl.mem seen_records r.rid) then begin
          Hashtbl.add seen_records r.rid ();
          acc := r :: !acc;
          List.iter (fun (_, out) -> go out) r.outputs
        end)
      (st_uses_of st iid)
  in
  go iid;
  Ddf_obs.Metrics.observe h_forward (float_of_int (Hashtbl.length seen_records));
  List.rev !acc

let st_derived_instances st iid =
  st_forward_closure st iid
  |> List.concat_map (fun r -> List.map snd r.outputs)
  |> List.sort_uniq compare

let st_ancestor_instances st iid =
  st_backward_closure st iid
  |> List.concat_map (fun r ->
         (match r.tool with Some t -> [ t ] | None -> [])
         @ List.map snd r.inputs)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Flow traces (Fig. 11(b))                                            *)
(* ------------------------------------------------------------------ *)

(* The derivation history of an instance as a task graph with an
   instance binding: the same form queries and re-execution use. *)
let st_trace st store schema iid =
  (* gather nodes and edges, then assemble the graph in one pass *)
  let binding = Hashtbl.create 16 in  (* iid -> node *)
  let nodes = ref [] and edges = ref [] in
  let counter = ref 0 in
  let rec node_of iid =
    match Hashtbl.find_opt binding iid with
    | Some nid -> nid
    | None ->
      let entity = Store.Snapshot.entity_of store iid in
      let nid = !counter in
      incr counter;
      Hashtbl.add binding iid nid;
      nodes := (nid, entity) :: !nodes;
      (match st_derivation_of st iid with
      | None -> ()
      | Some r ->
        (match (r.tool, Schema.functional_dep schema entity) with
        | Some tool, Some d ->
          let tnid = node_of tool in
          edges := (nid, d.Schema.role, tnid) :: !edges
        | Some _, None | None, Some _ | None, None -> ());
        List.iter
          (fun (role, input) ->
            let inid = node_of input in
            edges := (nid, role, inid) :: !edges)
          r.inputs);
      nid
  in
  let root = node_of iid in
  let g =
    Ddf_graph.Task_graph.of_parts schema (List.rev !nodes) (List.rev !edges)
  in
  let pairs = Hashtbl.fold (fun iid nid acc -> (nid, iid) :: acc) binding [] in
  (g, root, pairs)

(* ------------------------------------------------------------------ *)
(* Query by template (section 4.2)                                     *)
(* ------------------------------------------------------------------ *)

(* Find bindings of a task graph's nodes to instances consistent with
   the history: bound nodes are fixed, the rest are solved for.  Used
   for queries like "find the simulations performed on this netlist"
   where the template is the flow itself. *)
let st_query_template st store (g : Ddf_graph.Task_graph.t) ~bound =
  Ddf_obs.Metrics.incr m_queries;
  let schema = Ddf_graph.Task_graph.schema g in
  let satisfies nid iid =
    Schema.is_subtype schema
      ~sub:(Store.Snapshot.entity_of store iid)
      ~super:(Ddf_graph.Task_graph.entity_of g nid)
  in
  (* candidate instances for a node under a partial binding *)
  let candidates partial nid =
    (* if a user of this node is bound, the candidates come straight
       from its derivation record *)
    let from_users =
      List.filter_map
        (fun (user, role) ->
          match List.assoc_opt user partial with
          | None -> None
          | Some user_iid -> (
            match st_derivation_of st user_iid with
            | None -> Some []
            | Some r -> (
              match
                Schema.functional_dep schema
                  (Store.Snapshot.entity_of store user_iid)
              with
              | Some d when d.Schema.role = role ->
                Some (match r.tool with Some t -> [ t ] | None -> [])
              | Some _ | None ->
                Some
                  (match List.assoc_opt role r.inputs with
                  | Some i -> [ i ]
                  | None -> []))))
        (Ddf_graph.Task_graph.in_edges g nid)
    in
    match from_users with
    | constraints when constraints <> [] ->
      (* intersect the per-user constraints *)
      let inter a b = List.filter (fun x -> List.mem x b) a in
      (match constraints with
      | first :: rest -> List.fold_left inter first rest
      | [] -> [])
    | _ ->
      (* otherwise any instance of the entity's subtree *)
      let entity = Ddf_graph.Task_graph.entity_of g nid in
      List.concat_map
        (Store.Snapshot.instances_of_entity store)
        (entity :: Schema.descendants schema entity)
  in
  (* does the history record of [user_iid] really bind [role] to
     [dep_iid]? *)
  let edge_ok user_iid role dep_iid =
    match st_derivation_of st user_iid with
    | None -> false
    | Some r -> (
      match
        Schema.functional_dep schema (Store.Snapshot.entity_of store user_iid)
      with
      | Some d when d.Schema.role = role -> r.tool = Some dep_iid
      | Some _ | None -> List.assoc_opt role r.inputs = Some dep_iid)
  in
  (* every edge between the newly assigned node and an already assigned
     neighbour must agree with the history *)
  let consistent partial nid iid =
    List.for_all
      (fun (e : Ddf_graph.Task_graph.edge) ->
        match List.assoc_opt e.Ddf_graph.Task_graph.dst partial with
        | None -> true
        | Some dep_iid -> edge_ok iid e.Ddf_graph.Task_graph.role dep_iid)
      (Ddf_graph.Task_graph.out_edges g nid)
    && List.for_all
         (fun (user, role) ->
           match List.assoc_opt user partial with
           | None -> true
           | Some user_iid -> edge_ok user_iid role iid)
         (Ddf_graph.Task_graph.in_edges g nid)
  in
  (* order: bound nodes first, then reverse topological (users before
     dependencies) so derivations drive the search downward *)
  let order =
    let topo = List.rev (Ddf_graph.Task_graph.topological_order g) in
    let bound_nodes = List.map fst bound in
    bound_nodes @ List.filter (fun n -> not (List.mem n bound_nodes)) topo
  in
  let max_results = 1000 in
  let results = ref [] and count = ref 0 in
  let rec search partial = function
    | [] ->
      if !count < max_results then begin
        incr count;
        results := List.rev partial :: !results
      end
    | nid :: rest ->
      let cands =
        match List.assoc_opt nid bound with
        | Some iid -> [ iid ]
        | None -> candidates partial nid
      in
      List.iter
        (fun iid ->
          if satisfies nid iid && consistent partial nid iid
             && !count < max_results
          then search ((nid, iid) :: partial) rest)
        (List.sort_uniq compare cands)
  in
  search [] order;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Versioning (Fig. 11)                                                *)
(* ------------------------------------------------------------------ *)

(* A record is an editing task when one input has the same root entity
   type as an output: versioning is characterized exactly so in the
   paper.  The version parent of an instance is that input. *)
let snap_record_version_parent store schema (r : record) out_iid =
  let root = Schema.root_of schema (Store.Snapshot.entity_of store out_iid) in
  List.find_opt
    (fun (_, input) ->
      Schema.root_of schema (Store.Snapshot.entity_of store input) = root)
    r.inputs
  |> Option.map snd

(* Fold records [from .. until] into (parent, children) edge maps.
   Pure: builds fresh maps from the given ones. *)
let fold_edges st store schema ~from ~until parent children =
  let parent = ref parent and children = ref children in
  for rid = from to until do
    match Int_map.find_opt rid st.hs_records with
    | None -> ()   (* rid gap from a forward [restore_tick] *)
    | Some r ->
      List.iter
        (fun (_, out) ->
          match snap_record_version_parent store schema r out with
          | None -> ()
          | Some p ->
            parent := Int_map.add out p !parent;
            let l = Option.value (Int_map.find_opt p !children) ~default:[] in
            children := Int_map.add p (out :: l) !children)
        r.outputs
  done;
  (!parent, !children)

(* Get the version index for this (state, store, schema): the cached
   one when its indexed prefix fits inside the state, extended to the
   state's boundary; a privately rebuilt one otherwise.  Extensions of
   the shared cache are published with a CAS (losing the race is fine
   — the value returned is used either way; the cache just misses one
   advance).  Each output has at most one producing record ([add]
   enforces it), so the parent edge per instance is unique. *)
let vindex_for h st store schema =
  let boundary = st.hs_next_rid - 1 in
  let sid = Store.id (Store.Snapshot.source store) in
  let schema_id = Obj.repr schema in
  let fresh () =
    let parent, children =
      fold_edges st store schema ~from:1 ~until:boundary Int_map.empty
        Int_map.empty
    in
    { vi_store = sid; vi_schema = schema_id; vi_parent = parent;
      vi_children = children; vi_next = boundary + 1 }
  in
  let cached = Atomic.get h.vindex in
  match cached with
  | Some vi when vi.vi_store = sid && vi.vi_schema == schema_id ->
    if vi.vi_next = boundary + 1 then vi
    else if vi.vi_next > boundary + 1 then
      (* the live cache ran ahead of this snapshot: rebuild privately
         for the snapshot's prefix, leave the cache alone *)
      fresh ()
    else begin
      let parent, children =
        fold_edges st store schema ~from:vi.vi_next ~until:boundary
          vi.vi_parent vi.vi_children
      in
      let vi' = { vi with vi_parent = parent; vi_children = children;
                  vi_next = boundary + 1 } in
      ignore (Atomic.compare_and_set h.vindex cached (Some vi'));
      vi'
    end
  | Some _ | None ->
    let vi = fresh () in
    ignore (Atomic.compare_and_set h.vindex cached (Some vi));
    vi

let st_version_parent h st store schema iid =
  Int_map.find_opt iid (vindex_for h st store schema).vi_parent

(* Direct edit successors: the alternative versions branching off an
   instance.  More than one child — siblings — is exactly the shape an
   anti-entropy merge of divergent workspaces produces. *)
let st_version_children h st store schema iid =
  match Int_map.find_opt iid (vindex_for h st store schema).vi_children with
  | Some l -> List.sort_uniq compare l
  | None -> []

type version_tree = {
  v_iid : Store.iid;
  v_children : version_tree list;
}

(* The version tree rooted at an instance, following edit successors —
   one child-map hit per node instead of re-deriving the successors
   from [uses_of] at every node. *)
let st_version_tree h st store schema iid =
  let vi = vindex_for h st store schema in
  let children iid =
    match Int_map.find_opt iid vi.vi_children with
    | Some l -> List.sort_uniq compare l
    | None -> []
  in
  let rec build iid =
    { v_iid = iid; v_children = List.map build (children iid) }
  in
  build iid

let rec version_tree_size t =
  1 + List.fold_left (fun acc c -> acc + version_tree_size c) 0 t.v_children

(* All versions (the instances in the version tree), oldest first. *)
let st_versions h st store schema iid =
  (* walk up to the first version *)
  let vi = vindex_for h st store schema in
  let rec origin iid =
    match Int_map.find_opt iid vi.vi_parent with
    | Some p -> origin p
    | None -> iid
  in
  (* accumulator fold: [concat_map] would copy the tail once per level,
     quadratic on the long linear chains edit histories produce *)
  let rec flatten acc t = List.fold_left flatten (t.v_iid :: acc) t.v_children in
  flatten [] (st_version_tree h st store schema (origin iid))
  |> List.sort_uniq compare

(* The newest instance in the version tree by creation time (ties go
   to the higher iid); the instance itself when it has no versions. *)
let st_latest_version h st store schema iid =
  let at v = (Store.Snapshot.meta_of store v).Store.created_at in
  List.fold_left
    (fun best v -> if (at v, v) > (at best, best) then v else best)
    iid
    (st_versions h st store schema iid)

(* ------------------------------------------------------------------ *)
(* Consistency (out-of-date analysis)                                  *)
(* ------------------------------------------------------------------ *)

(* An instance is out of date when some input of its derivation has a
   newer version: e.g. the layout was edited after this netlist was
   extracted from it.  Returns the stale (input, newer-version) pairs. *)
let st_out_of_date h st store schema iid =
  match st_derivation_of st iid with
  | None -> []
  | Some r ->
    List.filter_map
      (fun (role, input) ->
        let newer =
          st_versions h st store schema input
          |> List.filter (fun v ->
                 v <> input
                 && (Store.Snapshot.meta_of store v).Store.created_at > r.at)
        in
        match newer with
        | [] -> None
        | _ -> Some (role, input, newer))
      r.inputs

let st_is_up_to_date h st store schema iid =
  st_out_of_date h st store schema iid = []

(* ------------------------------------------------------------------ *)
(* The snapshot read API                                               *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type t = snapshot

  let size snap = Int_map.cardinal snap.hsnap_state.hs_records
  let tick snap = snap.hsnap_state.hs_next_rid
  let conflict_tick snap = snap.hsnap_state.hs_next_cid
  let find snap rid = st_find snap.hsnap_state rid
  let records snap = st_records snap.hsnap_state
  let find_conflict snap cid = st_find_conflict snap.hsnap_state cid
  let find_conflict_pair snap a b = st_find_conflict_pair snap.hsnap_state a b
  let all_conflicts snap = st_all_conflicts snap.hsnap_state
  let conflicts snap = st_conflicts snap.hsnap_state
  let derivation_of snap iid = st_derivation_of snap.hsnap_state iid
  let uses_of snap iid = st_uses_of snap.hsnap_state iid
  let backward_closure snap iid = st_backward_closure snap.hsnap_state iid
  let forward_closure snap iid = st_forward_closure snap.hsnap_state iid
  let derived_instances snap iid = st_derived_instances snap.hsnap_state iid

  let ancestor_instances snap iid =
    st_ancestor_instances snap.hsnap_state iid

  let trace snap store schema iid = st_trace snap.hsnap_state store schema iid

  let query_template snap store g ~bound =
    st_query_template snap.hsnap_state store g ~bound

  let version_parent snap store schema iid =
    st_version_parent snap.hsnap_source snap.hsnap_state store schema iid

  let version_children snap store schema iid =
    st_version_children snap.hsnap_source snap.hsnap_state store schema iid

  let version_tree snap store schema iid =
    st_version_tree snap.hsnap_source snap.hsnap_state store schema iid

  let versions snap store schema iid =
    st_versions snap.hsnap_source snap.hsnap_state store schema iid

  let latest_version snap store schema iid =
    st_latest_version snap.hsnap_source snap.hsnap_state store schema iid

  let out_of_date snap store schema iid =
    st_out_of_date snap.hsnap_source snap.hsnap_state store schema iid

  let is_up_to_date snap store schema iid =
    st_is_up_to_date snap.hsnap_source snap.hsnap_state store schema iid
end

(* ------------------------------------------------------------------ *)
(* Live reads: thin wrappers over fresh snapshots.  The history state  *)
(* is captured *before* the store snapshot: records only ever refer to *)
(* instances already installed, so a later store view covers every     *)
(* instance a record mentions.                                         *)
(* ------------------------------------------------------------------ *)

let find h rid = st_find (Atomic.get h.state) rid
let records h = st_records (Atomic.get h.state)
let find_conflict h cid = st_find_conflict (Atomic.get h.state) cid
let find_conflict_pair h a b = st_find_conflict_pair (Atomic.get h.state) a b
let all_conflicts h = st_all_conflicts (Atomic.get h.state)
let conflicts h = st_conflicts (Atomic.get h.state)
let derivation_of h iid = st_derivation_of (Atomic.get h.state) iid
let uses_of h iid = st_uses_of (Atomic.get h.state) iid
let backward_closure h iid = st_backward_closure (Atomic.get h.state) iid
let forward_closure h iid = st_forward_closure (Atomic.get h.state) iid
let derived_instances h iid = st_derived_instances (Atomic.get h.state) iid
let ancestor_instances h iid = st_ancestor_instances (Atomic.get h.state) iid

let trace h store schema iid =
  let st = Atomic.get h.state in
  st_trace st (Store.snapshot store) schema iid

let query_template h store g ~bound =
  let st = Atomic.get h.state in
  st_query_template st (Store.snapshot store) g ~bound

let record_version_parent store schema r out_iid =
  snap_record_version_parent (Store.snapshot store) schema r out_iid

let version_parent h store schema iid =
  let st = Atomic.get h.state in
  st_version_parent h st (Store.snapshot store) schema iid

let version_children h store schema iid =
  let st = Atomic.get h.state in
  st_version_children h st (Store.snapshot store) schema iid

let version_tree h store schema iid =
  let st = Atomic.get h.state in
  st_version_tree h st (Store.snapshot store) schema iid

let versions h store schema iid =
  let st = Atomic.get h.state in
  st_versions h st (Store.snapshot store) schema iid

let latest_version h store schema iid =
  let st = Atomic.get h.state in
  st_latest_version h st (Store.snapshot store) schema iid

let out_of_date h store schema iid =
  let st = Atomic.get h.state in
  st_out_of_date h st (Store.snapshot store) schema iid

let is_up_to_date h store schema iid =
  let st = Atomic.get h.state in
  st_is_up_to_date h st (Store.snapshot store) schema iid

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_record ppf r =
  Fmt.pf ppf "r%d@%d %s: (%a)%a -> %a" r.rid r.at r.task_entity
    Fmt.(option ~none:(any "compose") int)
    r.tool
    Fmt.(list ~sep:nop (fun ppf (role, i) -> Fmt.pf ppf " %s=#%d" role i))
    r.inputs
    Fmt.(list ~sep:comma (fun ppf (e, i) -> Fmt.pf ppf "#%d:%s" i e))
    r.outputs

let pp ppf h =
  Fmt.pf ppf "@[<v>history: %d records@,%a@]" (size h)
    Fmt.(list ~sep:cut pp_record)
    (records h)
