(* The design-history database.

   Each task invocation leaves one record: the goal entity, the tool
   instance used, the input instances per role, and every co-produced
   output.  That is the "small amount of meta-data" from which the
   paper derives the complete derivation history: backward chaining
   reconstructs how an object was made (Fig. 10), forward chaining
   finds what depends on it, and a flow trace -- the same form as a
   task graph -- is a semantically richer superset of a version tree
   (Fig. 11). *)

open Ddf_schema
open Ddf_store

type record = {
  rid : int;
  task_entity : string;                   (* goal entity of the task *)
  tool : Store.iid option;                (* None for compositions *)
  inputs : (string * Store.iid) list;     (* role -> instance *)
  outputs : (string * Store.iid) list;    (* entity -> instance *)
  at : int;                               (* logical time of execution *)
}

(* The version-successor index: version-parent and version-children
   edges derived from the records (see "Versioning" below).  Records
   and instance entities are immutable once written, so an indexed
   prefix of the record ids stays valid forever; the index advances
   incrementally over rids [vi_next ..] at query time ([add] has no
   store/schema in hand, so it cannot maintain the edges itself).  The
   store and schema the edges were derived against are remembered by
   physical identity — a different store (e.g. after a replication
   resync swaps the context's store) rebuilds from scratch. *)
type vindex = {
  vi_store : Obj.t;
  vi_schema : Obj.t;
  vi_parent : (Store.iid, Store.iid) Hashtbl.t;
  vi_children : (Store.iid, Store.iid list ref) Hashtbl.t;
  mutable vi_next : int;               (* first rid not yet folded in *)
}

(* A sync conflict: two journal histories derived different versions
   of the same design object.  Both derivations stay in the history as
   alternative versions (the paper's Fig. 11 version branches); the
   conflict is a first-class, queryable pointer at the branch point,
   resolvable by picking a winner but never by deleting a branch. *)
type conflict = {
  cid : int;
  c_base : Store.iid;      (* the shared version both sides edited *)
  c_ours : Store.iid;      (* the locally derived alternative *)
  c_theirs : Store.iid;    (* the remotely derived alternative *)
  c_origin : string;       (* workspace id the remote branch came from *)
  c_at : int;              (* logical time the conflict was detected *)
  mutable c_winner : Store.iid option;
}

type conflict_event = Conflict_added of conflict | Conflict_resolved of conflict

type t = {
  mutable next_rid : int;
  records : (int, record) Hashtbl.t;
  produced_by : (Store.iid, int) Hashtbl.t;    (* instance -> record *)
  used_by : (Store.iid, int list ref) Hashtbl.t;
  mutable observer : (record -> unit) option;
  mutable vindex : vindex option;
  mutable next_cid : int;
  conflict_tbl : (int, conflict) Hashtbl.t;
  mutable conflict_observer : (conflict_event -> unit) option;
}

exception History_error of string

let history_errorf fmt = Format.kasprintf (fun s -> raise (History_error s)) fmt

let m_appends = Ddf_obs.Metrics.counter "history.appends"
let m_queries = Ddf_obs.Metrics.counter "history.template_queries"
let h_backward = Ddf_obs.Metrics.histogram "history.backward_depth"
let h_forward = Ddf_obs.Metrics.histogram "history.forward_depth"

let create () =
  {
    next_rid = 1;
    records = Hashtbl.create 64;
    produced_by = Hashtbl.create 64;
    used_by = Hashtbl.create 64;
    observer = None;
    vindex = None;
    next_cid = 1;
    conflict_tbl = Hashtbl.create 8;
    conflict_observer = None;
  }

let size h = Hashtbl.length h.records

let tick h = h.next_rid

let restore_tick h n =
  if n < h.next_rid then
    history_errorf "cannot move the record counter back (%d < %d)" n h.next_rid;
  h.next_rid <- n

let set_observer h f = h.observer <- Some f
let clear_observer h = h.observer <- None

let set_conflict_observer h f = h.conflict_observer <- Some f
let clear_conflict_observer h = h.conflict_observer <- None

let conflict_tick h = h.next_cid

let add_conflict h ~base ~ours ~theirs ~origin ~at =
  let cid = h.next_cid in
  h.next_cid <- cid + 1;
  let c =
    { cid; c_base = base; c_ours = ours; c_theirs = theirs;
      c_origin = origin; c_at = at; c_winner = None }
  in
  Hashtbl.add h.conflict_tbl cid c;
  (match h.conflict_observer with None -> () | Some f -> f (Conflict_added c));
  c

let find_conflict h cid =
  match Hashtbl.find_opt h.conflict_tbl cid with
  | Some c -> c
  | None -> history_errorf "no conflict %d" cid

(* Unordered-pair lookup: the two sides of a sync each record the same
   divergence with [ours]/[theirs] swapped, so dedup ignores the
   orientation. *)
let find_conflict_pair h a b =
  let key x = (min x.c_ours x.c_theirs, max x.c_ours x.c_theirs) in
  let want = (min a b, max a b) in
  Hashtbl.fold
    (fun _ c acc -> if acc = None && key c = want then Some c else acc)
    h.conflict_tbl None

let all_conflicts h =
  Hashtbl.fold (fun _ c acc -> c :: acc) h.conflict_tbl []
  |> List.sort (fun a b -> compare a.cid b.cid)

let conflicts h = List.filter (fun c -> c.c_winner = None) (all_conflicts h)

let resolve_conflict h cid ~winner =
  let c = find_conflict h cid in
  if winner <> c.c_base && winner <> c.c_ours && winner <> c.c_theirs then
    history_errorf "conflict %d: %d is not one of its versions" cid winner;
  (match c.c_winner with
  | Some w when w = winner -> ()    (* idempotent: re-applying a synced resolution *)
  | Some w ->
    history_errorf "conflict %d already resolved in favour of %d" cid w
  | None ->
    c.c_winner <- Some winner;
    (match h.conflict_observer with
    | None -> ()
    | Some f -> f (Conflict_resolved c)));
  c

let add h ~task_entity ~tool ~inputs ~outputs ~at =
  if outputs = [] then history_errorf "a record needs at least one output";
  Ddf_obs.Metrics.incr m_appends;
  let rid = h.next_rid in
  h.next_rid <- rid + 1;
  let r = { rid; task_entity; tool; inputs; outputs; at } in
  Hashtbl.add h.records rid r;
  List.iter
    (fun (_, iid) ->
      if Hashtbl.mem h.produced_by iid then
        history_errorf "instance %d already has a producing record" iid;
      Hashtbl.add h.produced_by iid rid)
    outputs;
  let note_use iid =
    let l =
      match Hashtbl.find_opt h.used_by iid with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add h.used_by iid l;
        l
    in
    l := rid :: !l
  in
  List.iter (fun (_, iid) -> note_use iid) inputs;
  (match tool with Some t -> note_use t | None -> ());
  (match h.observer with None -> () | Some f -> f r);
  r

let find h rid =
  match Hashtbl.find_opt h.records rid with
  | Some r -> r
  | None -> history_errorf "no record %d" rid

let records h =
  Hashtbl.fold (fun _ r acc -> r :: acc) h.records []
  |> List.sort (fun a b -> compare a.rid b.rid)

(* ------------------------------------------------------------------ *)
(* Chaining                                                            *)
(* ------------------------------------------------------------------ *)

(* The record that created an instance; None for instances installed
   directly by the designer (sources). *)
let derivation_of h iid =
  Option.map (find h) (Hashtbl.find_opt h.produced_by iid)

let uses_of h iid =
  match Hashtbl.find_opt h.used_by iid with
  | Some l -> List.rev_map (find h) !l
  | None -> []

(* Backward chaining: every record in the derivation history of an
   instance, nearest first. *)
let backward_closure h iid =
  let seen_records = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go iid =
    match derivation_of h iid with
    | None -> ()
    | Some r ->
      if not (Hashtbl.mem seen_records r.rid) then begin
        Hashtbl.add seen_records r.rid ();
        acc := r :: !acc;
        List.iter (fun (_, i) -> go i) r.inputs;
        Option.iter go r.tool
      end
  in
  go iid;
  Ddf_obs.Metrics.observe h_backward (float_of_int (Hashtbl.length seen_records));
  List.rev !acc

(* Forward chaining: every record that transitively depends on an
   instance -- e.g. all the performances derived from a netlist. *)
let forward_closure h iid =
  let seen_records = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go iid =
    List.iter
      (fun r ->
        if not (Hashtbl.mem seen_records r.rid) then begin
          Hashtbl.add seen_records r.rid ();
          acc := r :: !acc;
          List.iter (fun (_, out) -> go out) r.outputs
        end)
      (uses_of h iid)
  in
  go iid;
  Ddf_obs.Metrics.observe h_forward (float_of_int (Hashtbl.length seen_records));
  List.rev !acc

let derived_instances h iid =
  forward_closure h iid
  |> List.concat_map (fun r -> List.map snd r.outputs)
  |> List.sort_uniq compare

let ancestor_instances h iid =
  backward_closure h iid
  |> List.concat_map (fun r ->
         (match r.tool with Some t -> [ t ] | None -> [])
         @ List.map snd r.inputs)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Flow traces (Fig. 11(b))                                            *)
(* ------------------------------------------------------------------ *)

(* The derivation history of an instance as a task graph with an
   instance binding: the same form queries and re-execution use. *)
let trace h store schema iid =
  (* gather nodes and edges, then assemble the graph in one pass *)
  let binding = Hashtbl.create 16 in  (* iid -> node *)
  let nodes = ref [] and edges = ref [] in
  let counter = ref 0 in
  let rec node_of iid =
    match Hashtbl.find_opt binding iid with
    | Some nid -> nid
    | None ->
      let entity = Store.entity_of store iid in
      let nid = !counter in
      incr counter;
      Hashtbl.add binding iid nid;
      nodes := (nid, entity) :: !nodes;
      (match derivation_of h iid with
      | None -> ()
      | Some r ->
        (match (r.tool, Schema.functional_dep schema entity) with
        | Some tool, Some d ->
          let tnid = node_of tool in
          edges := (nid, d.Schema.role, tnid) :: !edges
        | Some _, None | None, Some _ | None, None -> ());
        List.iter
          (fun (role, input) ->
            let inid = node_of input in
            edges := (nid, role, inid) :: !edges)
          r.inputs);
      nid
  in
  let root = node_of iid in
  let g =
    Ddf_graph.Task_graph.of_parts schema (List.rev !nodes) (List.rev !edges)
  in
  let pairs = Hashtbl.fold (fun iid nid acc -> (nid, iid) :: acc) binding [] in
  (g, root, pairs)

(* ------------------------------------------------------------------ *)
(* Query by template (section 4.2)                                     *)
(* ------------------------------------------------------------------ *)

(* Find bindings of a task graph's nodes to instances consistent with
   the history: bound nodes are fixed, the rest are solved for.  Used
   for queries like "find the simulations performed on this netlist"
   where the template is the flow itself. *)
let query_template h store (g : Ddf_graph.Task_graph.t) ~bound =
  Ddf_obs.Metrics.incr m_queries;
  let schema = Ddf_graph.Task_graph.schema g in
  let satisfies nid iid =
    Schema.is_subtype schema
      ~sub:(Store.entity_of store iid)
      ~super:(Ddf_graph.Task_graph.entity_of g nid)
  in
  (* candidate instances for a node under a partial binding *)
  let candidates partial nid =
    (* if a user of this node is bound, the candidates come straight
       from its derivation record *)
    let from_users =
      List.filter_map
        (fun (user, role) ->
          match List.assoc_opt user partial with
          | None -> None
          | Some user_iid -> (
            match derivation_of h user_iid with
            | None -> Some []
            | Some r -> (
              match Schema.functional_dep schema (Store.entity_of store user_iid) with
              | Some d when d.Schema.role = role ->
                Some (match r.tool with Some t -> [ t ] | None -> [])
              | Some _ | None ->
                Some
                  (match List.assoc_opt role r.inputs with
                  | Some i -> [ i ]
                  | None -> []))))
        (Ddf_graph.Task_graph.in_edges g nid)
    in
    match from_users with
    | constraints when constraints <> [] ->
      (* intersect the per-user constraints *)
      let inter a b = List.filter (fun x -> List.mem x b) a in
      (match constraints with
      | first :: rest -> List.fold_left inter first rest
      | [] -> [])
    | _ ->
      (* otherwise any instance of the entity's subtree *)
      let entity = Ddf_graph.Task_graph.entity_of g nid in
      List.concat_map
        (Store.instances_of_entity store)
        (entity :: Schema.descendants schema entity)
  in
  (* does the history record of [user_iid] really bind [role] to
     [dep_iid]? *)
  let edge_ok user_iid role dep_iid =
    match derivation_of h user_iid with
    | None -> false
    | Some r -> (
      match Schema.functional_dep schema (Store.entity_of store user_iid) with
      | Some d when d.Schema.role = role -> r.tool = Some dep_iid
      | Some _ | None -> List.assoc_opt role r.inputs = Some dep_iid)
  in
  (* every edge between the newly assigned node and an already assigned
     neighbour must agree with the history *)
  let consistent partial nid iid =
    List.for_all
      (fun (e : Ddf_graph.Task_graph.edge) ->
        match List.assoc_opt e.Ddf_graph.Task_graph.dst partial with
        | None -> true
        | Some dep_iid -> edge_ok iid e.Ddf_graph.Task_graph.role dep_iid)
      (Ddf_graph.Task_graph.out_edges g nid)
    && List.for_all
         (fun (user, role) ->
           match List.assoc_opt user partial with
           | None -> true
           | Some user_iid -> edge_ok user_iid role iid)
         (Ddf_graph.Task_graph.in_edges g nid)
  in
  (* order: bound nodes first, then reverse topological (users before
     dependencies) so derivations drive the search downward *)
  let order =
    let topo = List.rev (Ddf_graph.Task_graph.topological_order g) in
    let bound_nodes = List.map fst bound in
    bound_nodes @ List.filter (fun n -> not (List.mem n bound_nodes)) topo
  in
  let max_results = 1000 in
  let results = ref [] and count = ref 0 in
  let rec search partial = function
    | [] ->
      if !count < max_results then begin
        incr count;
        results := List.rev partial :: !results
      end
    | nid :: rest ->
      let cands =
        match List.assoc_opt nid bound with
        | Some iid -> [ iid ]
        | None -> candidates partial nid
      in
      List.iter
        (fun iid ->
          if satisfies nid iid && consistent partial nid iid
             && !count < max_results
          then search ((nid, iid) :: partial) rest)
        (List.sort_uniq compare cands)
  in
  search [] order;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Versioning (Fig. 11)                                                *)
(* ------------------------------------------------------------------ *)

(* A record is an editing task when one input has the same root entity
   type as an output: versioning is characterized exactly so in the
   paper.  The version parent of an instance is that input. *)
let record_version_parent store schema (r : record) out_iid =
  let root = Schema.root_of schema (Store.entity_of store out_iid) in
  List.find_opt
    (fun (_, input) ->
      Schema.root_of schema (Store.entity_of store input) = root)
    r.inputs
  |> Option.map snd

(* Get the index for (store, schema), building or advancing it first:
   fold in every record with rid >= vi_next.  Each output has at most
   one producing record ([add] enforces it), so the parent edge per
   instance is unique. *)
let vindex_of h (store : 'a Store.t) (schema : Schema.t) =
  let vi =
    match h.vindex with
    | Some vi when vi.vi_store == Obj.repr store
                   && vi.vi_schema == Obj.repr schema ->
      vi
    | Some _ | None ->
      let vi =
        { vi_store = Obj.repr store; vi_schema = Obj.repr schema;
          vi_parent = Hashtbl.create 64; vi_children = Hashtbl.create 64;
          vi_next = 1 }
      in
      h.vindex <- Some vi;
      vi
  in
  let last = h.next_rid - 1 in
  if vi.vi_next <= last then begin
    for rid = vi.vi_next to last do
      match Hashtbl.find_opt h.records rid with
      | None -> ()   (* rid gap from a forward [restore_tick] *)
      | Some r ->
        List.iter
          (fun (_, out) ->
            match record_version_parent store schema r out with
            | None -> ()
            | Some parent ->
              Hashtbl.replace vi.vi_parent out parent;
              let l =
                match Hashtbl.find_opt vi.vi_children parent with
                | Some l -> l
                | None ->
                  let l = ref [] in
                  Hashtbl.add vi.vi_children parent l;
                  l
              in
              l := out :: !l)
          r.outputs
    done;
    vi.vi_next <- last + 1
  end;
  vi

let version_parent h store schema iid =
  Hashtbl.find_opt (vindex_of h store schema).vi_parent iid

(* Direct edit successors: the alternative versions branching off an
   instance.  More than one child — siblings — is exactly the shape an
   anti-entropy merge of divergent workspaces produces. *)
let version_children h store schema iid =
  match Hashtbl.find_opt (vindex_of h store schema).vi_children iid with
  | Some l -> List.sort_uniq compare !l
  | None -> []

type version_tree = {
  v_iid : Store.iid;
  v_children : version_tree list;
}

(* The version tree rooted at an instance, following edit successors —
   one child-table hit per node instead of re-deriving the successors
   from [uses_of] at every node. *)
let version_tree h store schema iid =
  let vi = vindex_of h store schema in
  let children iid =
    match Hashtbl.find_opt vi.vi_children iid with
    | Some l -> List.sort_uniq compare !l
    | None -> []
  in
  let rec build iid =
    { v_iid = iid; v_children = List.map build (children iid) }
  in
  build iid

let rec version_tree_size t =
  1 + List.fold_left (fun acc c -> acc + version_tree_size c) 0 t.v_children

(* All versions (the instances in the version tree), oldest first. *)
let versions h store schema iid =
  (* walk up to the first version *)
  let rec origin iid =
    match version_parent h store schema iid with
    | Some p -> origin p
    | None -> iid
  in
  (* accumulator fold: [concat_map] would copy the tail once per level,
     quadratic on the long linear chains edit histories produce *)
  let rec flatten acc t = List.fold_left flatten (t.v_iid :: acc) t.v_children in
  flatten [] (version_tree h store schema (origin iid))
  |> List.sort_uniq compare

(* The newest instance in the version tree by creation time (ties go
   to the higher iid); the instance itself when it has no versions. *)
let latest_version h store schema iid =
  let at v = (Store.meta_of store v).Store.created_at in
  List.fold_left
    (fun best v -> if (at v, v) > (at best, best) then v else best)
    iid
    (versions h store schema iid)

(* ------------------------------------------------------------------ *)
(* Consistency (out-of-date analysis)                                  *)
(* ------------------------------------------------------------------ *)

(* An instance is out of date when some input of its derivation has a
   newer version: e.g. the layout was edited after this netlist was
   extracted from it.  Returns the stale (input, newer-version) pairs. *)
let out_of_date h store schema iid =
  match derivation_of h iid with
  | None -> []
  | Some r ->
    List.filter_map
      (fun (role, input) ->
        let newer =
          versions h store schema input
          |> List.filter (fun v ->
                 v <> input
                 && (Store.meta_of store v).Store.created_at > r.at)
        in
        match newer with
        | [] -> None
        | _ -> Some (role, input, newer))
      r.inputs

let is_up_to_date h store schema iid = out_of_date h store schema iid = []

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_record ppf r =
  Fmt.pf ppf "r%d@%d %s: (%a)%a -> %a" r.rid r.at r.task_entity
    Fmt.(option ~none:(any "compose") int)
    r.tool
    Fmt.(list ~sep:nop (fun ppf (role, i) -> Fmt.pf ppf " %s=#%d" role i))
    r.inputs
    Fmt.(list ~sep:comma (fun ppf (e, i) -> Fmt.pf ppf "#%d:%s" i e))
    r.outputs

let pp ppf h =
  Fmt.pf ppf "@[<v>history: %d records@,%a@]" (size h)
    Fmt.(list ~sep:cut pp_record)
    (records h)
