(** The design-history database.

    Each task invocation leaves one record: the goal entity, the tool
    instance used, the input instances per role, and every co-produced
    output.  This is the "small amount of meta-data" from which the
    paper derives everything else: backward chaining reconstructs how
    an object was made (Fig. 10), forward chaining finds what depends
    on it, a flow trace — the same form as a task graph — subsumes a
    version tree (Fig. 11), and staleness falls out of version
    comparison. *)

open Ddf_schema
open Ddf_store

type record = {
  rid : int;
  task_entity : string;                (** goal entity of the task *)
  tool : Store.iid option;             (** [None] for compositions *)
  inputs : (string * Store.iid) list;  (** role -> instance *)
  outputs : (string * Store.iid) list; (** entity -> instance *)
  at : int;                            (** logical execution time *)
}

type t

exception History_error of string

val create : unit -> t
val size : t -> int

val add :
  t -> task_entity:string -> tool:Store.iid option ->
  inputs:(string * Store.iid) list -> outputs:(string * Store.iid) list ->
  at:int -> record
(** @raise History_error when an output already has a producing record
    (derivations uniquely identify design objects) or outputs are
    empty. *)

val find : t -> int -> record
val records : t -> record list

val tick : t -> int
(** The history's monotonic record counter: the rid the next {!add}
    will assign (restorable like {!Store.tick}). *)

val restore_tick : t -> int -> unit
(** @raise History_error when moving the counter backwards. *)

val set_observer : t -> (record -> unit) -> unit
(** Install the single append observer, called synchronously after a
    record commits.  The write-ahead journal subscribes here. *)

val clear_observer : t -> unit

(** {1 Chaining (Fig. 10)} *)

val derivation_of : t -> Store.iid -> record option
(** The record that created an instance; [None] for sources installed
    directly by the designer. *)

val uses_of : t -> Store.iid -> record list
(** Records consuming the instance (as input or as tool). *)

val backward_closure : t -> Store.iid -> record list
(** The complete derivation history, nearest record first. *)

val forward_closure : t -> Store.iid -> record list
(** Every record transitively depending on the instance. *)

val derived_instances : t -> Store.iid -> Store.iid list
val ancestor_instances : t -> Store.iid -> Store.iid list

(** {1 Flow traces (Fig. 11(b))} *)

val trace :
  t -> 'a Store.t -> Schema.t -> Store.iid ->
  Ddf_graph.Task_graph.t * int * (int * Store.iid) list
(** The derivation of an instance as a task graph plus its instance
    binding: [(graph, root node, node -> instance)].  The same form is
    used for queries and for re-execution. *)

(** {1 Query by template (section 4.2)} *)

val query_template :
  t -> 'a Store.t -> Ddf_graph.Task_graph.t -> bound:(int * Store.iid) list ->
  (int * Store.iid) list list
(** All bindings of the template's nodes to instances consistent with
    the recorded history; [bound] pins some nodes.  Result capped at
    1000 bindings. *)

(** {1 Versioning (Fig. 11)}

    Version queries are answered from a version-successor index
    (parent and children edges per instance) built lazily and advanced
    incrementally over the records added since the last query — never
    re-derived from [uses_of] per node.  The index is keyed on the
    physical identity of the (store, schema) pair it was derived
    against; querying with a different store (e.g. after a replication
    resync) rebuilds it transparently. *)

val version_parent : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid option
(** The edit predecessor: the input of the producing record whose
    entity shares the instance's root type. *)

type version_tree = {
  v_iid : Store.iid;
  v_children : version_tree list;
}

val version_tree : t -> 'a Store.t -> Schema.t -> Store.iid -> version_tree
val version_tree_size : version_tree -> int

val versions : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid list
(** Every version in the instance's tree, from its origin. *)

val latest_version : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid
(** The newest version by creation time (ties go to the higher iid);
    the instance itself when it has no versions. *)

(** {1 Consistency} *)

val out_of_date :
  t -> 'a Store.t -> Schema.t -> Store.iid ->
  (string * Store.iid * Store.iid list) list
(** Inputs of the derivation that have newer versions:
    [(role, input, newer versions)]. *)

val is_up_to_date : t -> 'a Store.t -> Schema.t -> Store.iid -> bool

val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> t -> unit
