(** The design-history database.

    Each task invocation leaves one record: the goal entity, the tool
    instance used, the input instances per role, and every co-produced
    output.  This is the "small amount of meta-data" from which the
    paper derives everything else: backward chaining reconstructs how
    an object was made (Fig. 10), forward chaining finds what depends
    on it, a flow trace — the same form as a task graph — subsumes a
    version tree (Fig. 11), and staleness falls out of version
    comparison.

    {b MVCC:} like {!Store}, the hot state is one immutable record
    behind an [Atomic.t].  {!snapshot} captures it lock-free; all the
    reads below exist in two forms — live wrappers on {!t} (a fresh
    capture per call) and the {!Snapshot} module for pinned views.
    Store-joined queries pair a history snapshot with a
    {!Store.Snapshot.t} so both sides are frozen together.

    Failures raise {!Ddf_core.Error.Ddf_error} ([`Not_found] for
    missing records/conflicts, [`Conflict] for duplicate producers and
    contradictory resolutions, [`Invalid] otherwise). *)

open Ddf_schema
open Ddf_store

type record = {
  rid : int;
  task_entity : string;                (** goal entity of the task *)
  tool : Store.iid option;             (** [None] for compositions *)
  inputs : (string * Store.iid) list;  (** role -> instance *)
  outputs : (string * Store.iid) list; (** entity -> instance *)
  at : int;                            (** logical execution time *)
}

type t

type snapshot
(** An immutable view of the history at one commit point; O(1) and
    lock-free to capture, repeatable to read. *)

val create : unit -> t

val snapshot : t -> snapshot
(** Capture the latest committed state: one atomic load. *)

val size : t -> int

val add :
  t -> task_entity:string -> tool:Store.iid option ->
  inputs:(string * Store.iid) list -> outputs:(string * Store.iid) list ->
  at:int -> record
(** @raise Ddf_core.Error.Ddf_error ([`Conflict]) when an output
    already has a producing record (derivations uniquely identify
    design objects), [`Invalid] when outputs are empty. *)

val find : t -> int -> record
val records : t -> record list

val tick : t -> int
(** The history's monotonic record counter: the rid the next {!add}
    will assign (restorable like {!Store.tick}). *)

val restore_tick : t -> int -> unit
(** @raise Ddf_core.Error.Ddf_error when moving the counter
    backwards. *)

val set_observer : t -> (record -> unit) -> unit
(** Install the single append observer, called synchronously after a
    record commits.  The write-ahead journal subscribes here. *)

val clear_observer : t -> unit

(** {1 Sync conflicts (alternative-version surfacing)}

    When anti-entropy sync ({!Ddf_sync}) applies a remote journal
    suffix and finds that both workspaces derived a version of the
    same design object, the remote derivation is kept as a sibling in
    the version tree — Fig. 11 already represents alternatives — and
    the branch point is registered here as a first-class conflict:
    queryable, resolvable by picking a winner, never silently
    overwritten.  Conflict values are immutable; {!resolve_conflict}
    replaces the record, so a value read through a snapshot is never
    torn by a concurrent resolution. *)

type conflict = {
  cid : int;
  c_base : Store.iid;      (** the shared version both sides edited *)
  c_ours : Store.iid;      (** the locally derived alternative *)
  c_theirs : Store.iid;    (** the remotely derived alternative *)
  c_origin : string;       (** workspace id the remote branch came from *)
  c_at : int;              (** logical time the conflict was detected *)
  c_winner : Store.iid option;
}

type conflict_event = Conflict_added of conflict | Conflict_resolved of conflict

val add_conflict :
  t -> base:Store.iid -> ours:Store.iid -> theirs:Store.iid ->
  origin:string -> at:int -> conflict

val find_conflict : t -> int -> conflict
(** @raise Ddf_core.Error.Ddf_error on an unknown id. *)

val find_conflict_pair : t -> Store.iid -> Store.iid -> conflict option
(** The conflict whose \{ours, theirs\} equals the unordered pair, if
    any — the dedup key: both peers record the same divergence with
    the orientation swapped. *)

val conflicts : t -> conflict list
(** Unresolved conflicts, oldest first. *)

val all_conflicts : t -> conflict list

val resolve_conflict : t -> int -> winner:Store.iid -> conflict
(** Pick a winner (one of base/ours/theirs), returning the updated
    conflict.  Re-resolving with the same winner is a no-op (synced
    resolutions re-apply); a different winner raises.
    @raise Ddf_core.Error.Ddf_error on an unknown id, a winner outside
    the conflict, or a contradictory re-resolution. *)

val conflict_tick : t -> int
(** The cid the next {!add_conflict} will assign (dense, like record
    ids — journal replay asserts it). *)

val set_conflict_observer : t -> (conflict_event -> unit) -> unit
(** Install the single conflict observer (the journal subscribes here,
    like {!set_observer} for records).  [Conflict_resolved] carries the
    {e updated} record (winner set). *)

val clear_conflict_observer : t -> unit

(** {1 Chaining (Fig. 10)} *)

val derivation_of : t -> Store.iid -> record option
(** The record that created an instance; [None] for sources installed
    directly by the designer. *)

val uses_of : t -> Store.iid -> record list
(** Records consuming the instance (as input or as tool). *)

val backward_closure : t -> Store.iid -> record list
(** The complete derivation history, nearest record first. *)

val forward_closure : t -> Store.iid -> record list
(** Every record transitively depending on the instance. *)

val derived_instances : t -> Store.iid -> Store.iid list
val ancestor_instances : t -> Store.iid -> Store.iid list

(** {1 Flow traces (Fig. 11(b))} *)

val trace :
  t -> 'a Store.t -> Schema.t -> Store.iid ->
  Ddf_graph.Task_graph.t * int * (int * Store.iid) list
(** The derivation of an instance as a task graph plus its instance
    binding: [(graph, root node, node -> instance)].  The same form is
    used for queries and for re-execution. *)

(** {1 Query by template (section 4.2)} *)

val query_template :
  t -> 'a Store.t -> Ddf_graph.Task_graph.t -> bound:(int * Store.iid) list ->
  (int * Store.iid) list list
(** All bindings of the template's nodes to instances consistent with
    the recorded history; [bound] pins some nodes.  Result capped at
    1000 bindings. *)

(** {1 Versioning (Fig. 11)}

    Version queries are answered from a version-successor index
    (parent and children edges per instance) built lazily and advanced
    incrementally over the records added since the last query — never
    re-derived from [uses_of] per node.  The index is an immutable
    value cached on the handle and republished by CAS, which makes it
    both domain-safe and snapshot-safe: a query through a pinned
    snapshot only uses the cached prefix up to the snapshot's own
    record boundary (rebuilding privately when the live cache has run
    ahead).  The index is keyed on the {!Store.id} and the physical
    identity of the schema it was derived against; querying with a
    different store (e.g. after a replication resync) rebuilds it
    transparently. *)

val version_parent : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid option
(** The edit predecessor: the input of the producing record whose
    entity shares the instance's root type. *)

val version_children : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid list
(** Direct edit successors — more than one means alternative versions
    branch here (deliberate alternatives, or a sync merge of divergent
    workspaces). *)

val record_version_parent :
  'a Store.t -> Schema.t -> record -> Store.iid -> Store.iid option
(** The version parent [record] gives one of its outputs: the input
    sharing the output's root entity type.  Exposed for the sync
    applier, which must detect version branches record by record. *)

type version_tree = {
  v_iid : Store.iid;
  v_children : version_tree list;
}

val version_tree : t -> 'a Store.t -> Schema.t -> Store.iid -> version_tree
val version_tree_size : version_tree -> int

val versions : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid list
(** Every version in the instance's tree, from its origin. *)

val latest_version : t -> 'a Store.t -> Schema.t -> Store.iid -> Store.iid
(** The newest version by creation time (ties go to the higher iid);
    the instance itself when it has no versions. *)

(** {1 Consistency} *)

val out_of_date :
  t -> 'a Store.t -> Schema.t -> Store.iid ->
  (string * Store.iid * Store.iid list) list
(** Inputs of the derivation that have newer versions:
    [(role, input, newer versions)]. *)

val is_up_to_date : t -> 'a Store.t -> Schema.t -> Store.iid -> bool

(** {1 Snapshot reads}

    The read API above, against one frozen history view.  Store-joined
    queries take the {!Store.Snapshot.t} to read instance entities and
    metadata from — pin both sides together (the server's published
    view does) for a fully repeatable query. *)

module Snapshot : sig
  type t = snapshot

  val size : t -> int
  val tick : t -> int
  val conflict_tick : t -> int
  val find : t -> int -> record
  val records : t -> record list
  val find_conflict : t -> int -> conflict
  val find_conflict_pair : t -> Store.iid -> Store.iid -> conflict option
  val all_conflicts : t -> conflict list
  val conflicts : t -> conflict list
  val derivation_of : t -> Store.iid -> record option
  val uses_of : t -> Store.iid -> record list
  val backward_closure : t -> Store.iid -> record list
  val forward_closure : t -> Store.iid -> record list
  val derived_instances : t -> Store.iid -> Store.iid list
  val ancestor_instances : t -> Store.iid -> Store.iid list

  val trace :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid ->
    Ddf_graph.Task_graph.t * int * (int * Store.iid) list

  val query_template :
    t -> 'a Store.Snapshot.t -> Ddf_graph.Task_graph.t ->
    bound:(int * Store.iid) list -> (int * Store.iid) list list

  val version_parent :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid -> Store.iid option

  val version_children :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid -> Store.iid list

  val version_tree :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid -> version_tree

  val versions :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid -> Store.iid list

  val latest_version :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid -> Store.iid

  val out_of_date :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid ->
    (string * Store.iid * Store.iid list) list

  val is_up_to_date :
    t -> 'a Store.Snapshot.t -> Schema.t -> Store.iid -> bool
end

val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> t -> unit
