(* hercules: a command-line front end to the dynamically-defined-flows
   workspace, in the spirit of the Hercules Task Manager (section 4).

   The store is in-memory, so each invocation hosts a complete scripted
   session: build a flow (from text or from a goal), bind it against a
   named circuit from the zoo, run it, and browse the resulting design
   history. *)

open Cmdliner
open Ddf
module E = Standard_schemas.E

let circuit_conv =
  let parse s =
    match List.assoc_opt s Eda.Circuits.all_named with
    | Some mk -> Ok (s, mk ())
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown circuit %S (try: %s)" s
             (String.concat ", " (List.map fst Eda.Circuits.all_named))))
  in
  let print ppf (name, _) = Fmt.string ppf name in
  Arg.conv (parse, print)

let circuit_arg =
  Arg.(
    value
    & opt circuit_conv ("c17", Eda.Circuits.c17 ())
    & info [ "c"; "circuit" ] ~docv:"NAME"
        ~doc:"Circuit from the zoo (c17, full_adder, adder4, ...).")

let blif_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "blif" ] ~docv:"FILE" ~doc:"Read the circuit from a BLIF file.")

let load_circuit (name, zoo) blif =
  match blif with
  | None -> (name, zoo)
  | Some path -> (
    match Eda.Blif.of_file path with
    | nl -> (nl.Eda.Netlist.name, nl)
    | exception Eda.Blif.Blif_error m ->
      Printf.eprintf "BLIF error: %s\n" m;
      exit 1)

let workspace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workspace" ] ~docv:"FILE"
        ~doc:
          "Persistent workspace: loaded when the file exists, saved back \
           after the command.")

(* ------------------------------------------------------------------ *)
(* Observability flags (shared across commands)                        *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a structured trace of the command to $(docv).")

let trace_format_arg =
  let formats =
    [ ("text", Obs_sinks.Text); ("jsonl", Obs_sinks.Jsonl);
      ("chrome", Obs_sinks.Chrome) ]
  in
  Arg.(
    value
    & opt (enum formats) Obs_sinks.Chrome
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace format: $(b,text) (human-readable), $(b,jsonl) (one JSON \
           event per line) or $(b,chrome) (chrome://tracing / Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the engine metrics registry after the command.")

let obs_term =
  Term.(
    const (fun trace format metrics -> (trace, format, metrics))
    $ trace_arg $ trace_format_arg $ metrics_arg)

(* Run [f] with the requested sink installed; the trace file is
   finalized (and the Chrome JSON document written) on the way out,
   even when [f] raises.  [locked] serializes emission for
   multi-threaded commands (the server). *)
let with_obs ?(locked = false) (trace, format, metrics) f =
  (match trace with
  | Some path -> (
    match Obs_sinks.to_file ~format path with
    | sink -> Obs.set_sink (if locked then Obs_sinks.locked sink else sink)
    | exception Sys_error m ->
      Printf.eprintf "cannot open trace file: %s\n" m;
      exit 1)
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
        Obs.clear_sink ();
        Printf.printf "[trace written to %s]\n" path
      | None -> ());
      if metrics then Format.printf "%a" Metrics.pp Metrics.global)
    f

(* Run [f] inside a (possibly persistent) workspace. *)
let with_workspace ?user ws_file f =
  let w =
    match ws_file with
    | Some path when Sys.file_exists path -> (
      match Persist.load_file Standard_schemas.odyssey path with
      | session -> Workspace.of_session session
      | exception Persist.Persist_error m ->
        Printf.eprintf "cannot load workspace: %s\n" m;
        exit 1)
    | Some _ | None -> Workspace.create ?user ()
  in
  let result = f w in
  (match ws_file with
  | Some path ->
    Persist.save_file (Workspace.session w) path;
    Printf.printf "[workspace saved to %s]\n" path
  | None -> ());
  result

(* ------------------------------------------------------------------ *)
(* hercules export                                                     *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write BLIF here (default stdout).")
  in
  let run circuit blif out =
    let _, nl = load_circuit circuit blif in
    match out with
    | None -> print_string (Eda.Blif.to_string nl)
    | Some path ->
      Eda.Blif.to_file path nl;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a circuit as BLIF.")
    Term.(const run $ circuit_arg $ blif_arg $ out)

(* ------------------------------------------------------------------ *)
(* hercules schema                                                     *)
(* ------------------------------------------------------------------ *)

let schema_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let run dot =
    if dot then print_string (Schema.to_dot Standard_schemas.odyssey)
    else Format.printf "%a@." Schema.pp Standard_schemas.odyssey
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the odyssey task schema (Fig. 1 extended).")
    Term.(const run $ dot)

(* ------------------------------------------------------------------ *)
(* hercules flow                                                       *)
(* ------------------------------------------------------------------ *)

let flow_cmd =
  let text =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FLOW"
          ~doc:
            "Flow in round-trip text form, e.g. \
             'extracted_netlist#0(tool=extractor#1, layout=layout#2)'.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.") in
  let flowmap =
    Arg.(value & flag & info [ "flowmap" ] ~doc:"Also print the bipartite view.")
  in
  let run text dot flowmap =
    match Sexp_form.of_string Standard_schemas.odyssey text with
    | exception Sexp_form.Parse_error m ->
      Printf.eprintf "parse error: %s\n" m;
      exit 1
    | exception Schema.Schema_error m ->
      Printf.eprintf "schema error: %s\n" m;
      exit 1
    | exception Task_graph.Graph_error m ->
      Printf.eprintf "illegal flow: %s\n" m;
      exit 1
    | g ->
      Task_graph.validate g;
      if dot then print_string (Task_graph.to_dot g)
      else print_string (Task_graph.to_ascii g);
      if flowmap then print_string (Bipartite.to_ascii (Bipartite.of_graph g));
      Printf.printf "valid flow: %d nodes, %d invocations, complete: %b\n"
        (Task_graph.size g)
        (List.length (Task_graph.invocations g))
        (Task_graph.complete g)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Parse, validate and display a dynamically defined flow.")
    Term.(const run $ text $ dot $ flowmap)

(* ------------------------------------------------------------------ *)
(* hercules run                                                        *)
(* ------------------------------------------------------------------ *)

let goal_arg =
  Arg.(
    value
    & opt string E.performance_plot
    & info [ "g"; "goal" ] ~docv:"ENTITY"
        ~doc:"Goal entity (goal-based approach).")

let run_cmd =
  let vectors =
    Arg.(
      value & opt int 16
      & info [ "vectors" ] ~doc:"Random stimulus vectors to simulate.")
  in
  let cell_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cell" ] ~docv:"NAME"
          ~doc:"Tag the circuit as this process cell's data.")
  in
  let vcd_arg =
    Arg.(
      value & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:"Also dump the simulation waveform as VCD (combinational \
                circuits only).")
  in
  let run circuit blif goal vectors ws_file cell vcd obs =
    let cname, circuit = load_circuit circuit blif in
    let user = Sys.getenv_opt "USER" |> Option.value ~default:"designer" in
    with_obs obs @@ fun () ->
    with_workspace ~user ws_file @@ fun w ->
    let ctx = Workspace.ctx w in
    let session = Workspace.session w in
    let keywords =
      match cell with Some c -> [ Process.cell_keyword c ] | None -> []
    in
    let nl_iid = Workspace.install_netlist w ~label:cname ~keywords circuit in
    let stim_iid =
      Workspace.install_stimuli w
        (if List.length circuit.Eda.Netlist.primary_inputs <= 8 then
           Eda.Stimuli.exhaustive circuit.Eda.Netlist.primary_inputs
         else Eda.Stimuli.for_netlist ~n:vectors circuit (Eda.Rng.create 1))
    in
    (* goal-based construction, expanding composites as needed *)
    let root = Session.start_goal_based session goal in
    let rec expand_all () =
      let flow = Session.current_flow session in
      let unexpanded =
        List.filter
          (fun (n : Task_graph.node) ->
            Task_graph.out_edges flow n.Task_graph.nid = []
            &&
            match Schema.construction_rule (Workspace.schema w) n.Task_graph.entity with
            | Schema.Constructed _ ->
              (* expand tasks and composites, but leave editable
                 self-referential entities as selectable leaves *)
              not
                (Schema.is_subtype (Workspace.schema w) ~sub:n.Task_graph.entity
                   ~super:E.netlist)
              && n.Task_graph.entity <> E.device_models
            | Schema.Abstract _ | Schema.Source -> false)
          (Task_graph.nodes flow)
      in
      match unexpanded with
      | [] -> ()
      | n :: _ ->
        ignore (Session.expand ~include_optional:false session n.Task_graph.nid);
        expand_all ()
    in
    expand_all ();
    let flow = Session.current_flow session in
    (* bind leaves *)
    List.iter
      (fun nid ->
        let entity = Task_graph.entity_of flow nid in
        let schema = Workspace.schema w in
        if Schema.is_tool schema entity then
          Session.select session nid [ Workspace.tool w entity ]
        else if Schema.is_subtype schema ~sub:entity ~super:E.netlist then
          Session.select session nid [ nl_iid ]
        else if entity = E.stimuli then Session.select session nid [ stim_iid ]
        else if entity = E.device_models then
          Session.select session nid [ Workspace.default_device_models w ]
        else if Schema.is_subtype schema ~sub:entity ~super:E.layout then begin
          let lay = Workspace.install_layout w (Eda.Layout.place circuit) in
          Session.select session nid [ lay ]
        end)
      (Task_graph.leaves flow);
    print_string (Session.render_task_window session);
    match Session.run session root with
    | [] -> print_endline "nothing to run"
    | iid :: _ ->
      Format.printf "@.result #%d: %a@." iid Value.pp (Workspace.payload w iid);
      (match Workspace.payload w iid with
      | Value.Plot p -> print_string p.Eda.Plot.rendering
      | _ -> ());
      (match vcd with
      | Some path when not (Eda.Netlist.is_sequential circuit) ->
        let stim_payload =
          Value.as_stimuli (Workspace.payload w stim_iid)
        in
        let r = Eda.Sim_event.run ~settle_ps:2000 circuit stim_payload in
        Eda.Vcd.to_file path r.Eda.Sim_event.waveform
          (circuit.Eda.Netlist.primary_inputs
          @ circuit.Eda.Netlist.primary_outputs);
        Printf.printf "waveform written to %s\n" path
      | Some _ ->
        print_endline "(--vcd skipped: sequential circuit)"
      | None -> ());
      print_endline "\nderivation history:";
      let g, _, _ =
        History.trace (Workspace.history w) (Workspace.store w)
          (Workspace.schema w) iid
      in
      print_string (Task_graph.to_ascii g);
      ignore ctx
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Build a goal-based flow for a circuit, run it, show history.")
    Term.(
      const run $ circuit_arg $ blif_arg $ goal_arg $ vectors
      $ workspace_arg $ cell_arg $ vcd_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* hercules browse                                                     *)
(* ------------------------------------------------------------------ *)

let browse_cmd =
  let user =
    Arg.(value & opt (some string) None & info [ "user" ] ~doc:"User limit.")
  in
  let from_ =
    Arg.(value & opt (some int) None & info [ "from" ] ~doc:"Date limit (from).")
  in
  let to_ =
    Arg.(value & opt (some int) None & info [ "to" ] ~doc:"Date limit (to).")
  in
  let keyword =
    Arg.(value & opt_all string [] & info [ "keyword" ] ~doc:"Keyword filter.")
  in
  let text =
    Arg.(value & opt (some string) None & info [ "text" ] ~doc:"Text search.")
  in
  let n =
    Arg.(value & opt int 30 & info [ "n" ] ~doc:"Sample instances to create.")
  in
  let run user from_ to_ keyword text n =
    let w = Workspace.create () in
    let ctx = Workspace.ctx w in
    let users = [| "jbb"; "director"; "sutton" |] in
    let kws = [| "analog"; "cmos"; "adder" |] in
    for i = 1 to n do
      ignore
        (Engine.install ctx ~entity:E.edited_netlist
           ~label:(Printf.sprintf "Design %d" i)
           ~user:users.(i mod 3)
           ~keywords:[ kws.(i mod 3) ]
           (Value.Netlist (Eda.Circuits.full_adder ())))
    done;
    let filter =
      { Store.f_entities = None; f_user = user; f_from = from_; f_to = to_;
        f_keywords = keyword; f_text = text }
    in
    List.iter
      (fun iid ->
        let m = Store.meta_of (Workspace.store w) iid in
        Printf.printf "#%-4d %-20s %-10s @%-4d [%s]\n" iid m.Store.label
          m.Store.user m.Store.created_at
          (String.concat "," m.Store.keywords))
      (Store.browse (Workspace.store w) filter)
  in
  Cmd.v
    (Cmd.info "browse"
       ~doc:"The Fig. 9 instance browser over a sample store.")
    Term.(const run $ user $ from_ $ to_ $ keyword $ text $ n)

(* ------------------------------------------------------------------ *)
(* hercules history                                                    *)
(* ------------------------------------------------------------------ *)

let history_cmd =
  let instance =
    Arg.(
      value & opt (some int) None
      & info [ "i"; "instance" ] ~docv:"IID"
          ~doc:"Show the derivation trace of this instance.")
  in
  let forward =
    Arg.(value & flag & info [ "uses" ] ~doc:"Forward chaining instead.")
  in
  let run ws_file instance forward =
    match ws_file with
    | None ->
      Printf.eprintf "history needs --workspace FILE\n";
      exit 2
    | Some _ ->
      with_workspace ws_file @@ fun w ->
      let ctx = Workspace.ctx w in
      (match instance with
      | None ->
        (* list everything with a derivation state *)
        List.iter
          (fun iid ->
            let m = Store.meta_of (Workspace.store w) iid in
            let derived =
              History.derivation_of (Workspace.history w) iid <> None
            in
            Printf.printf "#%-4d %-22s %-40s %s\n" iid
              (Store.entity_of (Workspace.store w) iid)
              m.Store.label
              (if derived then "(derived)" else "(source)"))
          (Store.all_instances (Workspace.store w))
      | Some iid when forward ->
        let derived = History.derived_instances (Workspace.history w) iid in
        Printf.printf "instances derived from #%d: %s\n" iid
          (String.concat ", " (List.map (fun i -> "#" ^ string_of_int i) derived))
      | Some iid ->
        let g, _, binding =
          History.trace (Workspace.history w) (Workspace.store w)
            (Workspace.schema w) iid
        in
        print_string (Task_graph.to_ascii g);
        Printf.printf "(%d instances in the derivation)\n" (List.length binding));
      ignore ctx
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Browse a persistent workspace's design history (Fig. 10).")
    Term.(const run $ workspace_arg $ instance $ forward)

(* ------------------------------------------------------------------ *)
(* hercules query                                                      *)
(* ------------------------------------------------------------------ *)

let query_cmd =
  let template =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEMPLATE"
          ~doc:
            "Flow template in text form; the task graph itself is the \
             query (section 4.2).")
  in
  let binds =
    Arg.(
      value & opt_all (pair ~sep:'=' int int) []
      & info [ "b"; "bind" ] ~docv:"NODE=IID"
          ~doc:"Pin a template node to an instance.")
  in
  let run ws_file template binds =
    match ws_file with
    | None ->
      Printf.eprintf "query needs --workspace FILE\n";
      exit 2
    | Some _ ->
      with_workspace ws_file @@ fun w ->
      let g =
        try Sexp_form.of_string (Workspace.schema w) template
        with
        | Sexp_form.Parse_error m | Schema.Schema_error m
        | Task_graph.Graph_error m ->
          Printf.eprintf "bad template: %s\n" m;
          exit 1
      in
      let results =
        History.query_template (Workspace.history w) (Workspace.store w) g
          ~bound:binds
      in
      Printf.printf "%d binding(s):\n" (List.length results);
      List.iter
        (fun binding ->
          print_endline
            (String.concat "  "
               (List.map
                  (fun (nid, iid) ->
                    Printf.sprintf "%s#%d=%d"
                      (Task_graph.entity_of g nid) nid iid)
                  binding)))
        results
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Query the design history with a flow template (section 4.2).")
    Term.(const run $ workspace_arg $ template $ binds)

(* ------------------------------------------------------------------ *)
(* hercules process                                                    *)
(* ------------------------------------------------------------------ *)

let process_cmd =
  let definition =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PROCESS.sexp"
          ~doc:"Design-process definition, e.g. '(process p (cell top \
                (requires synthesized_layout)))'.")
  in
  let worklist =
    Arg.(
      value & opt (some string) None
      & info [ "worklist" ] ~docv:"DESIGNER"
          ~doc:"Show this designer's worklist instead of the report.")
  in
  let run ws_file definition worklist =
    match ws_file with
    | None ->
      Printf.eprintf "process needs --workspace FILE\n";
      exit 2
    | Some _ ->
      with_workspace ws_file @@ fun w ->
      let ctx = Workspace.ctx w in
      let process =
        try Process_file.of_file definition
        with Process_file.Process_file_error m ->
          Printf.eprintf "bad process definition: %s\n" m;
          exit 1
      in
      (match worklist with
      | Some designer ->
        Printf.printf "%s could work on: %s\n" designer
          (String.concat ", "
             (Process.worklist ctx process ~designer))
      | None ->
        Format.printf "%a@." Process.pp_report (Process.report ctx process);
        Printf.printf "completion: %.0f%%\n"
          (100.0 *. Process.completion ctx process))
  in
  Cmd.v
    (Cmd.info "process"
       ~doc:"Track a design process (Minerva-style) over a workspace.")
    Term.(const run $ workspace_arg $ definition $ worklist)

(* ------------------------------------------------------------------ *)
(* hercules annotate                                                   *)
(* ------------------------------------------------------------------ *)

let annotate_cmd =
  let instance =
    Arg.(
      required
      & opt (some int) None
      & info [ "i"; "instance" ] ~docv:"IID" ~doc:"Instance to annotate.")
  in
  let label =
    Arg.(value & opt (some string) None & info [ "label" ] ~doc:"New name.")
  in
  let comment =
    Arg.(value & opt (some string) None & info [ "comment" ] ~doc:"New comment.")
  in
  let keyword =
    Arg.(
      value & opt_all string []
      & info [ "keyword" ] ~doc:"Replacement keywords (repeatable).")
  in
  let run ws_file instance label comment keyword =
    match ws_file with
    | None ->
      Printf.eprintf "annotate needs --workspace FILE\n";
      exit 2
    | Some _ ->
      with_workspace ws_file @@ fun w ->
      let keywords = if keyword = [] then None else Some keyword in
      (try
         Store.annotate (Workspace.store w) instance ?label ?comment ?keywords ()
       with Ddf.Error.Ddf_error err ->
         Printf.eprintf "%s\n" (Error.message err);
         exit 1);
      let m = Store.meta_of (Workspace.store w) instance in
      Printf.printf "#%d %s %S [%s]\n" instance
        (Store.entity_of (Workspace.store w) instance)
        m.Store.label
        (String.concat "," m.Store.keywords)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Name and document a design object (Fig. 9's annotation).")
    Term.(const run $ workspace_arg $ instance $ label $ comment $ keyword)

(* ------------------------------------------------------------------ *)
(* hercules recall                                                     *)
(* ------------------------------------------------------------------ *)

let recall_cmd =
  let instance =
    Arg.(
      required
      & opt (some int) None
      & info [ "i"; "instance" ] ~docv:"IID"
          ~doc:"Recall this instance's task into the task window.")
  in
  let rerun =
    Arg.(value & flag & info [ "rerun" ] ~doc:"Re-execute the recalled task.")
  in
  let run ws_file instance rerun obs =
    match ws_file with
    | None ->
      Printf.eprintf "recall needs --workspace FILE\n";
      exit 2
    | Some _ ->
      with_obs obs @@ fun () ->
      with_workspace ws_file @@ fun w ->
      let session = Workspace.session w in
      let root = Session.recall session instance in
      print_string (Session.render_task_window session);
      if rerun then
        match Session.run session root with
        | iid :: _ ->
          Format.printf "re-ran -> #%d: %a@." iid Value.pp
            (Workspace.payload w iid)
        | [] -> print_endline "nothing ran"
  in
  Cmd.v
    (Cmd.info "recall"
       ~doc:"Recall a previously executed task (section 4.1).")
    Term.(const run $ workspace_arg $ instance $ rerun $ obs_term)

(* ------------------------------------------------------------------ *)
(* hercules serve                                                      *)
(* ------------------------------------------------------------------ *)

(* First run against an empty database: install the standard tool
   catalog and the default models/option sets, journaled like any
   other mutation, so remote sessions find the same environment
   [Workspace.create] builds locally. *)
let seed_database ctx =
  List.iter
    (fun entity -> ignore (Engine.install_tool ctx entity))
    Workspace.catalog_tool_entities;
  ignore
    (Engine.install ctx ~entity:E.device_models ~label:"generic 800nm"
       (Value.Device_models Eda.Device_model.default));
  ignore
    (Engine.install ctx ~entity:E.sim_options ~label:"default sim options"
       (Value.Sim_options Value.default_sim_options));
  ignore
    (Engine.install ctx ~entity:E.placement_options ~label:"default placement"
       (Value.Placement_options Value.default_placement_options))

let db_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR"
        ~doc:"Database directory (snapshot + write-ahead journal); created \
              when missing.")

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to listen on (default $(b,DIR/hercules.sock)).")
  in
  let compact_every =
    Arg.(
      value & opt int 512
      & info [ "compact-every" ] ~docv:"N"
          ~doc:"Fold the journal into the snapshot every $(docv) entries.")
  in
  let request_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Reject mutations that wait longer than this in the write queue.")
  in
  let max_clients =
    Arg.(
      value & opt int 64
      & info [ "max-clients" ] ~doc:"Concurrent connection limit.")
  in
  let max_queue =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Write-queue admission bound: a mutation arriving when $(docv) \
             jobs already wait is shed with a typed overloaded error (and a \
             retry-after hint) instead of queueing unbounded latency.")
  in
  let read_domains =
    Arg.(
      value & opt int 0
      & info [ "read-domains" ] ~docv:"N"
          ~doc:
            "Size of the domain-pool read executor: with $(docv) > 0, pure \
             reads are evaluated on $(docv) worker domains, each pinning \
             the latest published store+history snapshot, so read \
             throughput scales across cores while the writer keeps \
             committing; 0 (the default) evaluates reads inline on the \
             connection threads — equally lock-free, just unpooled.")
  in
  let default_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Give every request from a client that sent no deadline header \
             an implicit budget of $(docv) seconds; requests whose budget \
             expires before execution are shed, never run.")
  in
  let slow_request =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-request" ] ~docv:"SECONDS"
          ~doc:
            "Slow-request log: report any request served slower than \
             $(docv) seconds on stderr — operation, user, duration and \
             (when tracing) its trace token — and count it in \
             $(b,server.slow_requests).")
  in
  let replay_only =
    Arg.(
      value & flag
      & info [ "replay-only" ]
          ~doc:"Open the database, replay the journal, print a summary and \
                exit without serving.")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"PRIMARY_SOCKET"
          ~doc:
            "Run as a read-only replication follower of the primary \
             listening on $(docv): subscribe to its journal stream, apply \
             every entry locally (crash-safe, promotable) and serve reads; \
             writes are rejected with a pointer to the primary.")
  in
  let sync_mode =
    Arg.(
      value
      & opt
          (enum
             [ ("always", Journal.Always); ("group", Journal.Group);
               ("none", Journal.Never) ])
          Journal.Group
      & info [ "sync-mode" ] ~docv:"MODE"
          ~doc:
            "Journal durability: $(b,always) fsyncs inside every append; \
             $(b,group) (the default) fsyncs once per write batch before \
             acknowledging any request in it — group commit, so concurrent \
             writers share one disk flush; $(b,none) never fsyncs (for \
             replay-only followers and benchmarks).")
  in
  let wire =
    Arg.(
      value
      & opt (enum [ ("binary", Wire.protocol_version); ("sexp", 7) ])
          Wire.protocol_version
      & info [ "wire" ] ~docv:"CODEC"
          ~doc:
            "Codec of the $(b,--follow) replication feed: $(b,binary) \
             (protocol v8, the default) or $(b,sexp), which subscribes at \
             protocol v7 so the upstream link stays on the s-expression \
             codec for debugging.  Client connections always negotiate \
             their own codec per connection.")
  in
  let run db socket follow wire sync_mode compact_every request_timeout
      max_clients max_queue read_domains default_deadline slow_request
      replay_only obs =
    let socket =
      match socket with Some s -> s | None -> Filename.concat db "hercules.sock"
    in
    if replay_only then begin
      let j = Journal.open_ ~compact_every ~dir:db Standard_schemas.odyssey in
      let ctx = Journal.context j in
      Printf.printf
        "%s: %d instance(s), %d history record(s), clock %d%s\n" db
        (Store.instance_count ctx.Engine.store)
        (History.size ctx.Engine.history)
        ctx.Engine.clock
        (let torn = Journal.truncated_on_open j in
         if torn > 0 then Printf.sprintf " (%d byte(s) of torn tail dropped)" torn
         else "");
      Journal.close j
    end
    else begin
      with_obs ~locked:true obs @@ fun () ->
      (match follow with
      | None -> Printf.printf "hercules: serving %s on %s\n%!" db socket
      | Some primary ->
        Printf.printf "hercules: serving %s on %s (following %s)\n%!" db
          socket primary);
      match
        Server.run ~seed:seed_database ?follow ~feed_version:wire ~sync_mode
          ~max_clients ~request_timeout ~max_queue ~read_domains
          ?default_deadline
          ?slow_log:slow_request ~compact_every ~db ~socket
          Standard_schemas.odyssey
      with
      | () -> print_endline "hercules: shut down"
      | exception Server.Server_error m ->
        Printf.eprintf "server error: %s\n" m;
        exit 1
      | exception Journal.Journal_error err ->
        Printf.eprintf "journal error: %s\n" (Error.to_string err);
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the design-server daemon: a journaled store shared by \
          concurrent $(b,hercules remote) clients — as the primary, or as a \
          read-scaling replication follower ($(b,--follow)).")
    Term.(
      const run $ db_arg $ socket $ follow $ wire $ sync_mode $ compact_every
      $ request_timeout $ max_clients $ max_queue $ read_domains
      $ default_deadline
      $ slow_request $ replay_only $ obs_term)

(* ------------------------------------------------------------------ *)
(* hercules remote                                                     *)
(* ------------------------------------------------------------------ *)

let remote_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"The server's Unix-domain socket.")

let remote_user_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "user" ] ~docv:"NAME"
        ~doc:"Identity stamped on instances this session creates (default \
              \\$USER).")

let remote_wire_arg =
  Arg.(
    value
    & opt (enum [ ("binary", Wire.protocol_version); ("sexp", 7) ])
        Wire.protocol_version
    & info [ "wire" ] ~docv:"CODEC"
        ~doc:
          "On-wire codec: $(b,binary) (protocol v8, the default) or \
           $(b,sexp), which negotiates protocol v7 so the whole \
           connection stays on the human-readable framed s-expression \
           codec -- the debugging fallback.")

(* Remote verbs ride out a daemon restart or failover: a few redials
   with backoff, and a per-request timeout so a wedged server fails
   the verb instead of hanging it. *)
let with_remote ~version socket user f =
  let user =
    match user with
    | Some u -> u
    | None -> Sys.getenv_opt "USER" |> Option.value ~default:"anonymous"
  in
  match Client.with_client ~user ~version ~retries:4 ~timeout:30.0 ~socket f with
  | v -> v
  | exception Client.Client_error err ->
    Printf.eprintf "error: %s\n" (Error.to_string err);
    exit 1

let no_filter =
  { Store.f_entities = None; f_user = None; f_from = None; f_to = None;
    f_keywords = []; f_text = None }

(* First store instance of an entity — how remote sessions reach the
   seeded tool catalog and default option sets. *)
let first_instance c entity =
  match Client.browse c { no_filter with Store.f_entities = Some [ entity ] } with
  | row :: _ -> row.Wire.row_iid
  | [] ->
    Printf.eprintf "no %s in the server catalog\n" entity;
    exit 1

let remote_ping_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    let t0 = Unix.gettimeofday () in
    Client.ping c;
    Printf.printf "pong (%.2f ms)\n" ((Unix.gettimeofday () -. t0) *. 1e3)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Round-trip to the server.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_stat_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    let s = Client.stat c in
    Printf.printf "role         %s\nseq          %d\n" s.Wire.st_role
      s.Wire.st_seq;
    Printf.printf "clock        %d\ninstances    %d\nrecords      %d\n"
      s.Wire.st_clock s.Wire.st_instances s.Wire.st_records;
    Printf.printf "store tick   %d\nhistory tick %d\nuptime       %.1f s\n"
      s.Wire.st_store_tick s.Wire.st_history_tick s.Wire.st_uptime_s
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Server store/history/clock statistics.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_lag_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    let primary_seq, rows = Client.lag c in
    Printf.printf "journal seq %d, %d follower(s)\n" primary_seq
      (List.length rows);
    List.iter
      (fun r ->
        Printf.printf "%-24s acked %-8d sent %-8d lag %d\n" r.Wire.lag_follower
          r.Wire.lag_acked r.Wire.lag_sent
          (primary_seq - r.Wire.lag_acked))
      rows
  in
  Cmd.v
    (Cmd.info "lag"
       ~doc:"Replication lag: the journal seqno and each follower's \
             acked/sent watermarks.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_compact_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    Client.compact c;
    let s = Client.stat c in
    Printf.printf "compacted at seq %d\n" s.Wire.st_seq
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Fold the server's journal into a fresh snapshot now.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_export_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the snapshot here (atomically, via $(docv).tmp).")
  in
  let run socket user wire out =
    with_remote ~version:wire socket user @@ fun c ->
    let seq, bytes = Client.snapshot_export c ~out in
    Printf.printf "exported snapshot at seq %d (%d bytes) to %s\n" seq bytes
      out
  in
  Cmd.v
    (Cmd.info "snapshot-export"
       ~doc:"Compact the server and stream its snapshot to a local file in \
             bounded chunks (wire v7) — a consistent online backup that \
             never holds the state in memory on either side.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ out)

let remote_catalog_cmd =
  let which =
    Arg.(
      value
      & pos 0
          (enum
             [ ("entities", Wire.Entities); ("tools", Wire.Tools);
               ("flows", Wire.Flows) ])
          Wire.Entities
      & info [] ~docv:"WHICH" ~doc:"entities, tools or flows.")
  in
  let run socket user wire which =
    with_remote ~version:wire socket user @@ fun c ->
    List.iter print_endline (Client.catalog c which)
  in
  Cmd.v
    (Cmd.info "catalog" ~doc:"List the entity, tool or flow catalog.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ which)

let remote_browse_cmd =
  let entity =
    Arg.(
      value & opt_all string []
      & info [ "entity" ] ~doc:"Entity filter (repeatable).")
  in
  let by_user =
    Arg.(value & opt (some string) None & info [ "by" ] ~doc:"User limit.")
  in
  let keyword =
    Arg.(value & opt_all string [] & info [ "keyword" ] ~doc:"Keyword filter.")
  in
  let text =
    Arg.(value & opt (some string) None & info [ "text" ] ~doc:"Text search.")
  in
  let run socket user wire entity by_user keyword text =
    with_remote ~version:wire socket user @@ fun c ->
    let filter =
      { no_filter with
        Store.f_entities = (if entity = [] then None else Some entity);
        f_user = by_user; f_keywords = keyword; f_text = text }
    in
    List.iter
      (fun row ->
        let m = row.Wire.row_meta in
        Printf.printf "#%-4d %-22s %-20s %-10s @%-4d [%s]\n" row.Wire.row_iid
          row.Wire.row_entity m.Store.label m.Store.user m.Store.created_at
          (String.concat "," m.Store.keywords))
      (Client.browse c filter)
  in
  Cmd.v
    (Cmd.info "browse" ~doc:"Browse the server's store (Fig. 9, remotely).")
    Term.(
      const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ entity $ by_user
      $ keyword $ text)

let remote_demo_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    let nl = Eda.Circuits.c17 () in
    let nl_iid =
      Client.install c ~entity:E.edited_netlist ~label:"c17"
        (Codec.value_to_sexp (Value.Netlist nl))
    in
    let stim_iid =
      Client.install c ~entity:E.stimuli ~label:"c17 stimuli"
        (Codec.value_to_sexp
           (Value.Stimuli (Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs)))
    in
    let root = Client.start_goal c E.performance in
    let fresh = Client.expand c root in
    (match List.find_opt (fun (_, e) -> e = E.circuit) fresh with
    | Some (nid, _) -> ignore (Client.expand c nid)
    | None -> ());
    let leaves = Client.leaves c in
    let node entity =
      match List.find_opt (fun (_, e) -> e = entity) leaves with
      | Some (nid, _) -> nid
      | None ->
        Printf.eprintf "no %s leaf in the task window\n" entity;
        exit 1
    in
    Client.select c (node E.simulator) [ first_instance c E.simulator ];
    Client.select c (node E.netlist) [ nl_iid ];
    Client.select c (node E.stimuli) [ stim_iid ];
    Client.select c (node E.device_models) [ first_instance c E.device_models ];
    print_string (Client.render c);
    let results = Client.run c root in
    List.iter (fun iid -> Printf.printf "-> #%d\n" iid) results;
    match results with
    | iid :: _ -> print_string (Client.trace c iid)
    | [] -> ()
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Run the section 4.1 walkthrough against a design server.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_run_cmd =
  let vectors =
    Arg.(
      value & opt int 16
      & info [ "vectors" ] ~doc:"Random stimulus vectors to simulate.")
  in
  let run socket user wire circuit blif goal vectors obs =
    let cname, circuit = load_circuit circuit blif in
    (* one root span for the whole command, so every client call — and
       through the frame headers every server/follower span they cause
       — lands in a single distributed trace *)
    with_obs obs @@ fun () ->
    Obs.with_span ~cat:"cli"
      ~attrs:[ ("circuit", Obs.Str cname) ]
      "cli.remote_run"
    @@ fun () ->
    with_remote ~version:wire socket user @@ fun c ->
    let schema = Standard_schemas.odyssey in
    let nl_iid =
      Client.install c ~entity:E.edited_netlist ~label:cname
        (Codec.value_to_sexp (Value.Netlist circuit))
    in
    let stim =
      if List.length circuit.Eda.Netlist.primary_inputs <= 8 then
        Eda.Stimuli.exhaustive circuit.Eda.Netlist.primary_inputs
      else Eda.Stimuli.for_netlist ~n:vectors circuit (Eda.Rng.create 1)
    in
    let stim_iid =
      Client.install c ~entity:E.stimuli ~label:(cname ^ " stimuli")
        (Codec.value_to_sexp (Value.Stimuli stim))
    in
    let root = Client.start_goal c goal in
    (* Expand every constructed leaf; editable netlists and device
       models stay selectable, as in the local goal-based run. *)
    let expandable entity =
      match Schema.construction_rule schema entity with
      | Schema.Constructed _ ->
        (not (Schema.is_subtype schema ~sub:entity ~super:E.netlist))
        && entity <> E.device_models
      | Schema.Abstract _ | Schema.Source -> false
    in
    let rec expand_all () =
      match List.find_opt (fun (_, e) -> expandable e) (Client.leaves c) with
      | Some (nid, _) ->
        ignore (Client.expand c nid);
        expand_all ()
      | None -> ()
    in
    expand_all ();
    List.iter
      (fun (nid, entity) ->
        if Schema.is_tool schema entity then
          Client.select c nid [ first_instance c entity ]
        else if Schema.is_subtype schema ~sub:entity ~super:E.netlist then
          Client.select c nid [ nl_iid ]
        else if entity = E.stimuli then Client.select c nid [ stim_iid ]
        else if
          entity = E.device_models || entity = E.sim_options
          || entity = E.placement_options
        then Client.select c nid [ first_instance c entity ]
        else if Schema.is_subtype schema ~sub:entity ~super:E.layout then
          Client.select c nid
            [ Client.install c ~entity:E.edited_layout
                ~label:(cname ^ " placed")
                (Codec.value_to_sexp (Value.Layout (Eda.Layout.place circuit)))
            ])
      (Client.leaves c);
    print_string (Client.render c);
    match Client.run c root with
    | [] -> print_endline "nothing to run"
    | iid :: _ as results ->
      List.iter (fun iid -> Printf.printf "-> #%d\n" iid) results;
      print_endline "\nderivation history:";
      print_string (Client.trace c iid)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Build and run a goal-based flow on the design server.")
    Term.(
      const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ circuit_arg $ blif_arg
      $ goal_arg $ vectors $ obs_term)

let remote_iid_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "i"; "instance" ] ~docv:"IID" ~doc:"Instance id.")

let remote_trace_cmd =
  let run socket user wire iid =
    with_remote ~version:wire socket user @@ fun c -> print_string (Client.trace c iid)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Show an instance's derivation trace.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ remote_iid_arg)

let remote_refresh_cmd =
  let run socket user wire iid =
    with_remote ~version:wire socket user @@ fun c ->
    let fresh, reran, reused = Client.refresh c iid in
    Printf.printf "fresh #%d (%d task(s) re-run, %d reused)\n" fresh reran
      reused
  in
  Cmd.v
    (Cmd.info "refresh"
       ~doc:"Bring an instance up to date (consistency maintenance).")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ remote_iid_arg)

let remote_edit_cmd =
  let rename =
    Arg.(
      required
      & opt (some string) None
      & info [ "rename" ] ~docv:"NAME"
          ~doc:"Rename the netlist to $(docv) — the smallest scripted edit.")
  in
  let run socket user wire iid rename =
    with_remote ~version:wire socket user @@ fun c ->
    let es =
      Client.install c ~entity:E.netlist_editor ~label:("edit " ^ rename)
        (Codec.value_to_sexp
           (Value.Tool
              (Value.Scripted_netlist_editor
                 (Eda.Edit_script.create ~name:rename
                    [ Eda.Edit_script.Rename rename ]))))
    in
    let root = Client.start_goal c E.edited_netlist in
    let fresh = Client.expand c root in
    let node entity =
      match List.find_opt (fun (_, e) -> e = entity) fresh with
      | Some (nid, _) -> nid
      | None ->
        Printf.eprintf "no %s leaf in the edit flow\n" entity;
        exit 1
    in
    Client.select c (node E.netlist_editor) [ es ];
    Client.select c (node E.netlist) [ iid ];
    match Client.run c root with
    | out :: _ -> Printf.printf "-> #%d\n" out
    | [] -> print_endline "nothing produced"
  in
  Cmd.v
    (Cmd.info "edit"
       ~doc:
         "Derive a new version of a netlist instance through a scripted \
          editing session (the Fig. 11 versioning walkthrough, remotely).  \
          Two workspaces editing the same version and then syncing get \
          both results as alternatives plus a surfaced conflict.")
    Term.(
      const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ remote_iid_arg
      $ rename)

let remote_shutdown_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    Client.shutdown c;
    print_endline "server shutting down"
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the server to shut down gracefully.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_batch_cmd =
  let run socket user wire =
    (* One request s-expression per non-empty stdin line; the whole
       list travels as a single pipelined frame and the responses come
       back positionally, one line each. *)
    let reqs = ref [] in
    (try
       while true do
         let line = String.trim (input_line stdin) in
         if line <> "" then
           match Wire.request_of_sexp (Sexp.of_string line) with
           | req -> reqs := req :: !reqs
           | exception (Sexp.Sexp_error m | Wire.Wire_error m) ->
             Printf.eprintf "bad request %S: %s\n" line m;
             exit 1
       done
     with End_of_file -> ());
    let reqs = List.rev !reqs in
    if reqs = [] then begin
      Printf.eprintf "no requests on stdin\n";
      exit 1
    end;
    with_remote ~version:wire socket user @@ fun c ->
    let resps = Client.batch c reqs in
    List.iter
      (fun r -> print_endline (Sexp.to_string (Wire.response_to_sexp r)))
      resps;
    if List.exists (function Wire.Error _ -> true | _ -> false) resps then
      exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Pipeline many requests in one round trip: read request \
          s-expressions from stdin (one per line), send them as a single \
          $(b,batch) frame, and print the responses in order.  Exits \
          non-zero when any response is an error.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_metrics_cmd =
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Emit Prometheus text exposition (counters as $(b,_total), \
             histograms as summaries with p50/p90/p99 quantiles) instead \
             of the human-readable table.")
  in
  let run socket user wire prometheus =
    with_remote ~version:wire socket user @@ fun c ->
    let ms = Client.metrics c in
    if prometheus then print_string (Metrics.prometheus_of_metrics ms)
    else Format.printf "%a" Metrics.pp_metrics ms
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Fetch the server's metrics registry: counters, gauges and \
          latency histograms with p50/p90/p99 quantiles.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ prometheus)

let remote_digest_cmd =
  let run socket user wire =
    with_remote ~version:wire socket user @@ fun c ->
    let wsid, base, seq, fp, cursors, _entries = Client.sync_digest c in
    Printf.printf "wsid        %s\nbase        %d\nseq         %d\n" wsid base
      seq;
    Printf.printf "fingerprint %s\n" fp;
    List.iter
      (fun (origin, n) -> Printf.printf "cursor      %s -> %d\n" origin n)
      (List.sort compare cursors)
  in
  Cmd.v
    (Cmd.info "digest"
       ~doc:
         "The server's anti-entropy digest: workspace id, journal window \
          and the canonical state fingerprint (equal fingerprints mean \
          equal design state, whatever the local instance ids).")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg)

let remote_conflicts_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Include conflicts that are already resolved.")
  in
  let run socket user wire all =
    with_remote ~version:wire socket user @@ fun c ->
    let rows = Client.conflicts c in
    let rows =
      if all then rows else List.filter (fun r -> r.Wire.cf_winner = None) rows
    in
    if rows = [] then print_endline "no conflicts"
    else begin
      Printf.printf "%-4s %-6s %-6s %-8s %-14s %-6s %s\n" "id" "base" "ours"
        "theirs" "origin" "at" "winner";
      List.iter
        (fun r ->
          Printf.printf "%-4d #%-5d #%-5d #%-7d %-14s %-6d %s\n" r.Wire.cf_id
            r.Wire.cf_base r.Wire.cf_ours r.Wire.cf_theirs
            (let o = r.Wire.cf_origin in
             if String.length o > 12 then String.sub o 0 12 ^ ".." else o)
            r.Wire.cf_at
            (match r.Wire.cf_winner with
            | None -> "-"
            | Some w -> Printf.sprintf "#%d" w))
        rows
    end
  in
  Cmd.v
    (Cmd.info "conflicts"
       ~doc:
         "Divergences surfaced by anti-entropy sync: both workspaces \
          derived a version of the same design object; each row names the \
          branch point and the two alternatives.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ all)

let remote_resolve_cmd =
  let conflict =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"CONFLICT" ~doc:"Conflict id (see $(b,conflicts).)")
  in
  let winner =
    Arg.(
      required
      & pos 1 (some int) None
      & info [] ~docv:"WINNER"
          ~doc:"Winning instance: the conflict's base, ours or theirs.")
  in
  let run socket user wire conflict winner =
    with_remote ~version:wire socket user @@ fun c ->
    Client.resolve c ~conflict ~winner;
    Printf.printf "conflict %d resolved: winner #%d\n" conflict winner
  in
  Cmd.v
    (Cmd.info "resolve"
       ~doc:
         "Pick the winning version of a surfaced sync conflict.  The losing \
          alternative stays in the store and the version tree; the \
          resolution itself is journaled and syncs onward.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ conflict $ winner)

let remote_cmd =
  Cmd.group
    (Cmd.info "remote"
       ~doc:"Talk to a $(b,hercules serve) daemon over its socket.")
    [ remote_ping_cmd; remote_stat_cmd; remote_lag_cmd; remote_compact_cmd;
      remote_export_cmd;
      remote_catalog_cmd; remote_browse_cmd; remote_batch_cmd;
      remote_demo_cmd; remote_run_cmd; remote_trace_cmd; remote_refresh_cmd;
      remote_edit_cmd; remote_metrics_cmd; remote_digest_cmd;
      remote_conflicts_cmd;
      remote_resolve_cmd; remote_shutdown_cmd ]

(* ------------------------------------------------------------------ *)
(* hercules cement                                                     *)
(* ------------------------------------------------------------------ *)

(* Offline inspection of a database's tiered cold store: opens only
   [DIR/cemented] (no journal replay), so it is cheap even against a
   deep history and safe against a database a daemon has open — the
   segments are append-only and immutable once sealed. *)
let cement_cmd =
  let read_seq =
    Arg.(
      value
      & opt (some int) None
      & info [ "read" ] ~docv:"SEQ"
          ~doc:"Print the cemented frame payload for this seqno (a \
                checksum-verified positioned read).")
  in
  let run db read_seq =
    let dir = Filename.concat db "cemented" in
    if not (Sys.file_exists dir) then begin
      Printf.eprintf "no cemented history under %s\n" db;
      exit 1
    end;
    let c = Cement.open_ ~dir in
    Fun.protect ~finally:(fun () -> Cement.close c) @@ fun () ->
    match read_seq with
    | Some seqno -> (
      match Cement.read c seqno with
      | Some payload -> print_endline payload
      | None ->
        Printf.eprintf "seq %d is outside the cemented window %d..%d\n" seqno
          (Cement.first_seq c) (Cement.last_seq c);
        exit 1)
    | None ->
      Printf.printf "segments   %d\n" (Cement.segment_count c);
      Printf.printf "bytes      %d\n" (Cement.total_bytes c);
      Printf.printf "first-seq  %d\n" (Cement.first_seq c);
      Printf.printf "last-seq   %d\n" (Cement.last_seq c);
      if Cement.truncated_on_open c > 0 then
        Printf.printf "truncated  %d bytes of torn tail dropped on open\n"
          (Cement.truncated_on_open c)
  in
  Cmd.v
    (Cmd.info "cement"
       ~doc:"Inspect a database directory's tiered cold store (segment \
             count, bytes, cemented seqno window), or read one cemented \
             frame back.")
    Term.(const run $ db_arg $ read_seq)

(* ------------------------------------------------------------------ *)
(* hercules sync                                                       *)
(* ------------------------------------------------------------------ *)

let sync_cmd =
  let peer =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PEER_SOCKET"
          ~doc:"Socket of the peer daemon to reconcile with.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Count what each side would pull; apply nothing.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Frames per sync round.")
  in
  let run socket user wire peer dry_run batch =
    with_remote ~version:wire socket user @@ fun local ->
    with_remote ~version:wire peer (Some (Client.user local)) @@ fun remote ->
    let report =
      Sync.run ~dry_run ~batch ~a:(Sync.of_client local)
        ~b:(Sync.of_client remote) ()
    in
    Format.printf "%a@." Sync.pp_report report;
    let la, _, _, lfp, _, _ = Client.sync_digest local in
    let ra, _, _, rfp, _, _ = Client.sync_digest remote in
    if dry_run then ()
    else if lfp = rfp then
      Printf.printf "workspaces %s and %s converged (fingerprint %s)\n" la ra
        lfp
    else
      Printf.printf
        "fingerprints differ (unresolved divergence or concurrent writes): \
         %s vs %s\nrun the sync again after resolving conflicts\n"
        lfp rfp
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:
         "Anti-entropy reconciliation of two disconnected workspaces: \
          exchange journal digests with the daemon at $(docv), pull exactly \
          the missing entries in both directions, and surface any \
          conflicting derivations as alternative versions (see $(b,remote \
          conflicts)).")
    Term.(
      const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ peer $ dry_run $ batch)

(* ------------------------------------------------------------------ *)
(* hercules top                                                        *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "n"; "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes (default: run until \
             interrupted).")
  in
  let run socket user wire interval count =
    with_remote ~version:wire socket user @@ fun c ->
    let clear = Unix.isatty Unix.stdout in
    let rec loop i prev =
      let s = Client.stat c in
      let ms = Client.metrics c in
      let t_now = Unix.gettimeofday () in
      if clear then print_string "\027[H\027[2J";
      Printf.printf "hercules top — %s  seq %d  clock %d  uptime %.0fs\n"
        s.Wire.st_role s.Wire.st_seq s.Wire.st_clock s.Wire.st_uptime_s;
      (* counter rates come from the delta against the previous poll *)
      let rate name n =
        match prev with
        | None -> ""
        | Some (t_prev, prev_ms) -> (
          let dt = t_now -. t_prev in
          match
            List.find_opt
              (function
                | Metrics.Counter (n', _) -> n' = name | _ -> false)
              prev_ms
          with
          | Some (Metrics.Counter (_, p)) when dt > 0.0 ->
            Printf.sprintf "  %8.1f/s" (float_of_int (n - p) /. dt)
          | _ -> "")
      in
      let counters =
        List.filter_map
          (function Metrics.Counter (n, v) -> Some (n, v) | _ -> None)
          ms
      and gauges =
        List.filter_map
          (function Metrics.Gauge (n, v) -> Some (n, v) | _ -> None)
          ms
      and histos =
        List.filter_map
          (function Metrics.Histogram (n, h) -> Some (n, h) | _ -> None)
          ms
      in
      if histos <> [] then begin
        Printf.printf "\n%-34s %8s %10s %10s %10s %10s %10s\n" "latency" "n"
          "mean" "p50" "p90" "p99" "max";
        List.iter
          (fun (name, h) ->
            Printf.printf
              "%-34s %8d %10.1f %10.1f %10.1f %10.1f %10.1f\n" name
              h.Metrics.hs_n (Metrics.hs_mean h) h.Metrics.hs_p50
              h.Metrics.hs_p90 h.Metrics.hs_p99 h.Metrics.hs_max)
          histos
      end;
      if counters <> [] then begin
        print_newline ();
        List.iter
          (fun (name, v) ->
            Printf.printf "%-34s %8d%s\n" name v (rate name v))
          counters
      end;
      if gauges <> [] then begin
        print_newline ();
        List.iter
          (fun (name, v) -> Printf.printf "%-34s %8g\n" name v)
          gauges
      end;
      flush stdout;
      match count with
      | Some n when i + 1 >= n -> ()
      | Some _ | None ->
        Unix.sleepf interval;
        loop (i + 1) (Some (t_now, ms))
    in
    loop 0 None
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live server statistics: poll the metrics registry every \
          $(b,--interval) seconds and render latency quantiles, counters \
          (with rates) and gauges.")
    Term.(const run $ remote_socket_arg $ remote_user_arg $ remote_wire_arg $ interval $ count)

(* ------------------------------------------------------------------ *)
(* hercules trace-merge                                                *)
(* ------------------------------------------------------------------ *)

let trace_merge_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"The merged chrome://tracing document.")
  in
  let require_flow =
    Arg.(
      value & flag
      & info [ "require-flow" ]
          ~doc:
            "Exit non-zero unless the merged trace contains at least one \
             flow link — a span bound to its parent, the record that draws \
             the cross-process arrow.")
  in
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"JSONL"
          ~doc:
            "JSON-lines trace files ($(b,--trace-format jsonl)), typically \
             one per process.")
  in
  (* Every input line is already one complete trace-event object (the
     jsonl sink emits flow records alongside span begins), so merging
     is concatenation inside the envelope — no JSON parsing. *)
  let contains_sub line sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  let run out require_flow inputs =
    let buf = Buffer.create 65536 in
    Buffer.add_string buf "{\"traceEvents\": [";
    let events = ref 0 and flows = ref 0 in
    List.iter
      (fun path ->
        let ic = open_in path in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" then begin
               if !events > 0 then Buffer.add_string buf ",\n  ";
               incr events;
               Buffer.add_string buf line;
               if contains_sub line "\"ph\": \"f\"" then incr flows
             end
           done
         with End_of_file -> ());
        close_in ic)
      inputs;
    Buffer.add_string buf "],\n\"displayTimeUnit\": \"ms\"}\n";
    let oc = open_out out in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "[%d event(s) from %d file(s), %d flow link(s) -> %s]\n"
      !events (List.length inputs) !flows out;
    if require_flow && !flows = 0 then begin
      Printf.eprintf
        "trace-merge: no flow links — the inputs do not join into one \
         cross-process trace\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Merge per-process JSONL traces into one chrome://tracing \
          document.  The flow records already present in the streams bind \
          client, server and follower spans of one trace together, so the \
          merged view draws the cross-process arrows directly.")
    Term.(const run $ out $ require_flow $ inputs)

(* ------------------------------------------------------------------ *)
(* hercules demo                                                       *)
(* ------------------------------------------------------------------ *)

let demo_cmd =
  let run obs =
    with_obs obs @@ fun () ->
    print_endline
      "Running the section 4.1 walkthrough (see also examples/quickstart.ml).";
    let w = Workspace.create ~user:"sutton" () in
    let session = Workspace.session w in
    let nl = Eda.Circuits.c17 () in
    let nl_iid = Workspace.install_netlist w ~label:"c17" nl in
    let stim_iid =
      Workspace.install_stimuli w
        (Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs)
    in
    let perf = Session.start_goal_based session E.performance in
    ignore (Session.expand session perf);
    let flow = Session.current_flow session in
    let circuit = List.hd (Workspace.find_nodes flow E.circuit) in
    ignore (Session.expand session circuit);
    let flow = Session.current_flow session in
    let node e = List.hd (Workspace.find_nodes flow e) in
    Session.select session (node E.simulator) [ Workspace.tool w E.simulator ];
    Session.select session (node E.netlist) [ nl_iid ];
    Session.select session (node E.stimuli) [ stim_iid ];
    Session.select session (node E.device_models)
      [ Workspace.default_device_models w ];
    print_string (Session.render_task_window session);
    let results = Session.run session perf in
    List.iter
      (fun iid ->
        Format.printf "-> #%d: %a@." iid Value.pp (Workspace.payload w iid))
      results
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the section 4.1 walkthrough.")
    Term.(const run $ obs_term)

let () =
  let info =
    Cmd.info "hercules" ~version:"1.0"
      ~doc:"Design management using dynamically defined flows (DAC'93)."
  in
  exit (Cmd.eval (Cmd.group info
          [ schema_cmd; flow_cmd; run_cmd; browse_cmd; demo_cmd; export_cmd;
            history_cmd; query_cmd; process_cmd; annotate_cmd;
            recall_cmd; serve_cmd; remote_cmd; cement_cmd; sync_cmd; top_cmd;
            trace_merge_cmd ]))
