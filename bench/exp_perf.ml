(* Experiment P: the hot paths.

   1. Journal group commit -- write throughput against a scratch server
      with sync=always (one fsync inside every append) vs sync=group
      (one fsync per drained writer batch).  The workload pipelines
      installs in batches of 32, so group mode pays one disk flush
      where always mode pays 32.
   2. Wire pipelining -- one batch-of-32 frame vs 32 singleton round
      trips over the Unix socket.
   3. Indexed versioning -- versions / latest_version latency over a
      ~5k-record edit chain, answered from the version-successor index
      instead of per-call uses_of re-derivation.

   Exported gauges (for --json): perf.write.{always_rps,group_rps,
   speedup}, perf.rtt.{singleton_rps,batch32_rps,speedup},
   perf.query.{index_build_us,versions_us,latest_us}. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-perf-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let seed ctx = ignore (Workspace.of_session (Session.of_context ctx))

let with_scratch_server ?sync_mode f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let t =
    Server.start ?sync_mode ~seed ~db:dir ~socket Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t;
      rm_rf dir)
    (fun () -> f socket)

let batch_size = 32

(* ------------------------------------------------------------------ *)
(* 1. Group commit vs per-append fsync                                 *)
(* ------------------------------------------------------------------ *)

let write_batches = 32

let install_req i j =
  Wire.Install
    {
      entity = E.stimuli;
      label = Printf.sprintf "p%d-%d" i j;
      keywords = [];
      value =
        Codec.value_to_sexp (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]));
    }

let write_throughput sync_mode =
  with_scratch_server ~sync_mode @@ fun socket ->
  Client.with_client ~user:"perf" ~socket @@ fun c ->
  ignore (Client.batch c (List.init batch_size (install_req 0)));  (* warmup *)
  let t0 = Unix.gettimeofday () in
  for i = 1 to write_batches do
    List.iter
      (function
        | Wire.Error e -> failwith ("install failed: " ^ Error.message e) | _ -> ())
      (Client.batch c (List.init batch_size (install_req i)))
  done;
  float_of_int (write_batches * batch_size) /. (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* 2. Pipelined batch vs singleton round trips                         *)
(* ------------------------------------------------------------------ *)

let rtt_rounds = 50

let round_trips () =
  with_scratch_server @@ fun socket ->
  Client.with_client ~user:"perf" ~socket @@ fun c ->
  Client.ping c;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rtt_rounds do
    for _ = 1 to batch_size do
      Client.ping c
    done
  done;
  let singleton_s = Unix.gettimeofday () -. t0 in
  let pings = List.init batch_size (fun _ -> Wire.Ping) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rtt_rounds do
    ignore (Client.batch c pings)
  done;
  let batched_s = Unix.gettimeofday () -. t0 in
  let n = float_of_int (rtt_rounds * batch_size) in
  (n /. singleton_s, n /. batched_s)

(* ------------------------------------------------------------------ *)
(* 3. Version queries over a long edit chain                           *)
(* ------------------------------------------------------------------ *)

let chain_len = 5_000
let query_rounds = 100

let version_queries () =
  let schema = Standard_schemas.odyssey in
  let store = Store.create () in
  let h = History.create () in
  let put i =
    Store.put store ~entity:E.edited_netlist
      ~hash:(Printf.sprintf "h%d" i)
      ~meta:(Store.meta ~created_at:i ())
      ()
  in
  let v0 = put 0 in
  let prev = ref v0 in
  for i = 1 to chain_len do
    let v = put i in
    ignore
      (History.add h ~task_entity:E.edited_netlist ~tool:None
         ~inputs:[ ("source", !prev) ]
         ~outputs:[ (E.edited_netlist, v) ]
         ~at:i);
    prev := v
  done;
  (* the first query pays for building the index over all records *)
  let t0 = Unix.gettimeofday () in
  ignore (History.latest_version h store schema v0);
  let build_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to query_rounds do
    ignore (History.versions h store schema v0)
  done;
  let versions_us =
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int query_rounds
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to query_rounds do
    ignore (History.latest_version h store schema !prev)
  done;
  let latest_us =
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int query_rounds
  in
  (build_us, versions_us, latest_us)

let run () =
  Bench_util.section
    (Printf.sprintf "group commit: %d batches of %d installs per sync mode"
       write_batches batch_size);
  let always_rps = write_throughput Journal.Always in
  let group_rps = write_throughput Journal.Group in
  let w_speedup = group_rps /. always_rps in
  Printf.printf "  sync=always %.0f writes/s, sync=group %.0f writes/s (%.1fx)\n"
    always_rps group_rps w_speedup;
  Metrics.set (Metrics.gauge "perf.write.always_rps") always_rps;
  Metrics.set (Metrics.gauge "perf.write.group_rps") group_rps;
  Metrics.set (Metrics.gauge "perf.write.speedup") w_speedup;

  Bench_util.section
    (Printf.sprintf "pipelining: batch of %d vs %d singleton round trips"
       batch_size batch_size);
  let singleton_rps, batch_rps = round_trips () in
  let r_speedup = batch_rps /. singleton_rps in
  Printf.printf "  singleton %.0f req/s, batch-of-%d %.0f req/s (%.1fx)\n"
    singleton_rps batch_size batch_rps r_speedup;
  Metrics.set (Metrics.gauge "perf.rtt.singleton_rps") singleton_rps;
  Metrics.set (Metrics.gauge "perf.rtt.batch32_rps") batch_rps;
  Metrics.set (Metrics.gauge "perf.rtt.speedup") r_speedup;

  Bench_util.section
    (Printf.sprintf "version queries over a %d-record edit chain" chain_len);
  let build_us, versions_us, latest_us = version_queries () in
  Printf.printf
    "  index build %.0f us; versions %.1f us, latest_version %.1f us per query\n"
    build_us versions_us latest_us;
  Metrics.set (Metrics.gauge "perf.query.index_build_us") build_us;
  Metrics.set (Metrics.gauge "perf.query.versions_us") versions_us;
  Metrics.set (Metrics.gauge "perf.query.latest_us") latest_us
