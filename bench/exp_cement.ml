(* Experiment C: tiered cemented history and streaming bootstrap.

   Three questions about the cold tier:

     - replay scaling: how long a restart takes as the journaled
       history grows, for a journal that never compacts (wal replay is
       linear in history) vs one that compacted into cement (snapshot
       load + segment scan — flat, with the full history still
       addressable by seqno);
     - the cold tier itself: how much resident memory payload eviction
       releases, and what a positioned cold read costs;
     - follower bootstrap: wall time and peak-heap growth of a v7
       streamed snapshot (bounded 256 KiB chunks spooled to disk)
       vs the v6 monolithic resync (the whole state as one string).

   Everything is exported as gauges for --json. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-cement-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let word_bytes = Sys.word_size / 8
let mib w = float_of_int (w * word_bytes) /. (1024.0 *. 1024.0)

(* One light journal entry: a distinct stimuli install (distinct nets,
   so payloads are not deduplicated away by content hash). *)
let stim i =
  Eda.Stimuli.exhaustive (List.init 5 (fun k -> Printf.sprintf "n%d_%d" i k))

(* [n] install entries: state grows with history (the eviction
   workload — every entry leaves a resident payload behind). *)
let populate_installs ctx n =
  let w = Workspace.of_session (Session.of_context ctx) in
  for i = 1 to n do
    ignore
      (Workspace.install_stimuli w ~label:(Printf.sprintf "s%d" i) (stim i))
  done

(* [n] history entries over BOUNDED state: a small working set of
   instances annotated over and over — the shape cement targets, where
   the journal grows without the database growing.  Uncompacted, a
   restart replays all [n] frames; compacted, it loads a constant-size
   snapshot (and the history stays addressable in cement). *)
let populate_history ctx n =
  let w = Workspace.of_session (Session.of_context ctx) in
  let base = 20 in
  let iids =
    Array.init base (fun i ->
        Workspace.install_stimuli w ~label:(Printf.sprintf "s%d" i) (stim i))
  in
  let store = ctx.Engine.store in
  for i = base + 1 to n do
    Store.annotate store
      iids.(i mod base)
      ~label:(Printf.sprintf "rev%d" i)
      ~comment:"bench revision" ~keywords:[] ()
  done

(* Build a database with [n] entries; [compacted] folds the whole
   history into snapshot + cement before closing. *)
let build ~style ~compacted n =
  let dir = fresh_dir () in
  let j = Journal.open_ ~dir Standard_schemas.odyssey in
  style (Journal.context j) n;
  if compacted then Journal.compact j;
  Journal.close j;
  dir

let reopen_us dir =
  Bench_util.time_us ~runs:3 (fun () ->
      let j = Journal.open_ ~dir Standard_schemas.odyssey in
      let seq = Journal.seq j in
      Journal.close j;
      seq)

(* Resident live words with the database open (and optionally its cold
   payloads evicted) — the restart memory footprint. *)
let live_words ~evict dir =
  let j = Journal.open_ ~dir Standard_schemas.odyssey in
  if evict then ignore (Journal.evict_cold j);
  Gc.full_major ();
  let live = (Gc.stat ()).Gc.live_words in
  Journal.close j;
  live

let sizes = [ 500; 1_000; 2_000; 4_000; 8_000 ]

let replay_scaling () =
  Bench_util.section
    "replay scaling: restart cost vs history length, bounded state \
     (median of 3)";
  let rows =
    List.map
      (fun n ->
        let wal_dir = build ~style:populate_history ~compacted:false n in
        let cem_dir = build ~style:populate_history ~compacted:true n in
        let wal_us = reopen_us wal_dir in
        let cem_us = reopen_us cem_dir in
        let wal_live = live_words ~evict:false wal_dir in
        let cem_live = live_words ~evict:true cem_dir in
        let segs, bytes =
          let j = Journal.open_ ~dir:cem_dir Standard_schemas.odyssey in
          let r =
            match Journal.cement_stats j with
            | Some (s, b, _, _) -> (s, b)
            | None -> (0, 0)
          in
          Journal.close j;
          r
        in
        Metrics.set
          (Metrics.gauge (Printf.sprintf "cement.bench.replay_wal_us_%d" n))
          wal_us;
        Metrics.set
          (Metrics.gauge (Printf.sprintf "cement.bench.replay_cem_us_%d" n))
          cem_us;
        rm_rf wal_dir;
        rm_rf cem_dir;
        [ string_of_int n;
          Printf.sprintf "%.1f" (wal_us /. 1000.0);
          Printf.sprintf "%.1f" (cem_us /. 1000.0);
          Printf.sprintf "%.1f" (mib wal_live);
          Printf.sprintf "%.1f" (mib cem_live);
          string_of_int segs;
          Printf.sprintf "%.1f" (float_of_int bytes /. 1024.0) ])
      sizes
  in
  Bench_util.print_table
    [ "entries"; "wal replay ms"; "cemented ms"; "wal live MiB";
      "evicted live MiB"; "segments"; "cement KiB" ]
    rows

let cold_tier () =
  Bench_util.section "cold tier: eviction and positioned reads";
  let n = List.nth sizes (List.length sizes - 1) in
  let dir = build ~style:populate_installs ~compacted:true n in
  let j = Journal.open_ ~dir Standard_schemas.odyssey in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  let evicted = Journal.evict_cold j in
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  let seq = Journal.seq j in
  (* positioned reads across the whole cemented window, cold cache *)
  let reads = 200 in
  let read_us =
    Bench_util.time_us ~runs:3 (fun () ->
        for i = 1 to reads do
          ignore (Journal.cold_frame j (1 + (i * 7 mod seq)))
        done)
    /. float_of_int reads
  in
  Journal.close j;
  rm_rf dir;
  Printf.printf
    "  evicted %d payloads, releasing %.1f MiB of resident heap\n"
    evicted
    (mib (max 0 (before - after)));
  Printf.printf "  cold frame read: %.1f us (index lookup + pread + checksum)\n"
    read_us;
  Metrics.set (Metrics.gauge "cement.bench.evicted") (float_of_int evicted);
  Metrics.set (Metrics.gauge "cement.bench.evicted_mib")
    (mib (max 0 (before - after)));
  Metrics.set (Metrics.gauge "cement.bench.cold_read_us") read_us

(* Follower bootstrap: one deep, compacted primary; subscribe from
   seqno 0 at v7 (streamed) and v6 (monolithic).  The streamed pass
   runs FIRST so the monotone top-of-heap checkpoint attributes any
   growth to the pass that actually caused it. *)
let bootstrap () =
  let n = 400 in
  (* heavyweight payloads (256-vector stimuli, ~20 KiB each) so the
     snapshot is a few MiB and the two paths' peak memory diverges *)
  let big_stim i =
    Eda.Stimuli.exhaustive (List.init 8 (fun k -> Printf.sprintf "b%d_%d" i k))
  in
  Bench_util.section
    (Printf.sprintf "follower bootstrap: %d-install snapshot, streamed vs monolithic" n);
  let root = fresh_dir () in
  Unix.mkdir root 0o755;
  let psock = Filename.concat root "p.sock" in
  let p =
    Server.start
      ~seed:(fun ctx -> ignore (Workspace.of_session (Session.of_context ctx)))
      ~db:(Filename.concat root "p")
      ~socket:psock Standard_schemas.odyssey
  in
  Client.with_client ~user:"bench-writer" ~socket:psock (fun cp ->
      for i = 1 to n do
        ignore
          (Client.install cp ~entity:E.stimuli
             ~label:(Printf.sprintf "s%d" i)
             (Codec.value_to_sexp (Value.Stimuli (big_stim i))))
      done;
      Client.compact cp);
  (* Each bootstrap runs in a forked child so its heap growth is the
     follower's alone — in-process the server's chunk encoding would
     drown the number being measured.  The child compacts its
     inherited heap first, so any later growth is caused by the
     bootstrap itself. *)
  let bootstrap_once version =
    let result = Filename.concat root (Printf.sprintf "boot-%d.out" version) in
    match Unix.fork () with
    | 0 ->
      let status =
        try
          Gc.compact ();
          let base = (Gc.stat ()).Gc.live_words in
          (* live words at the handoff point — the follower's resident
             requirement when it owns the complete snapshot.  Streamed,
             the state is a spool file on disk (and mid-flight at most
             one chunk is in memory by construction); monolithic, the
             whole snapshot string must be live at once. *)
          let peak = ref base in
          let sample () = peak := max !peak (Gc.stat ()).Gc.live_words in
          let t0 = Unix.gettimeofday () in
          let feed =
            Replica.Feed.connect ~version ~spool:root ~socket:psock ~since:0 ()
          in
          let bytes =
            match Replica.Feed.next feed with
            | Replica.Feed.Snapshot_file { path; _ } ->
              Gc.full_major ();
              sample ();
              let b = (Unix.stat path).Unix.st_size in
              Sys.remove path;
              b
            | Replica.Feed.Snapshot { data; _ } ->
              Gc.full_major ();
              sample ();
              String.length (Sys.opaque_identity data)
            | Replica.Feed.Frame _ -> failwith "expected a snapshot event"
          in
          Replica.Feed.close feed;
          let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let oc = open_out result in
          Printf.fprintf oc "%d %f %d\n" bytes wall_ms (!peak - base);
          close_out oc;
          0
        with _ -> 1
      in
      Unix._exit status
    | pid ->
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> failwith "bootstrap child failed");
      let ic = open_in result in
      let line = input_line ic in
      close_in ic;
      Sys.remove result;
      Scanf.sscanf line "%d %f %d" (fun bytes wall_ms grew ->
          (bytes, wall_ms, grew))
  in
  let s_bytes, s_ms, s_grew = bootstrap_once Wire.protocol_version in
  let m_bytes, m_ms, m_grew = bootstrap_once 6 in
  Server.stop p;
  Server.wait p;
  rm_rf root;
  Printf.printf
    "  snapshot %.1f KiB; chunk size %d KiB\n"
    (float_of_int s_bytes /. 1024.0)
    (Wire.snapshot_chunk_bytes / 1024);
  Printf.printf
    "  streamed (v7):   %.1f ms, peak live growth %.2f MiB (spooled to disk)\n"
    s_ms (mib s_grew);
  Printf.printf
    "  monolithic (v6): %.1f ms, peak live growth %.2f MiB (one resident string)\n"
    m_ms (mib m_grew);
  ignore m_bytes;
  Metrics.set (Metrics.gauge "cement.bench.snapshot_bytes")
    (float_of_int s_bytes);
  Metrics.set (Metrics.gauge "cement.bench.stream_ms") s_ms;
  Metrics.set (Metrics.gauge "cement.bench.stream_heap_mib") (mib s_grew);
  Metrics.set (Metrics.gauge "cement.bench.mono_ms") m_ms;
  Metrics.set (Metrics.gauge "cement.bench.mono_heap_mib") (mib m_grew)

(* Bootstrap first: the top-of-heap checkpoints it takes are monotone,
   so it must run before the other phases warm the heap up. *)
let run () =
  bootstrap ();
  replay_scaling ();
  cold_tier ()
