(* Experiment R: journal-shipping replication.

   A primary with F followers on scratch databases; a writer thread
   installs through the primary while reader threads browse.  Two
   questions:

     - read scaling: browse throughput with reads pinned to the
       primary vs spread round-robin over the followers (the pool's
       read path);
     - apply lag: how far a follower's journal trails the primary's,
       sampled after every write, reported as p50/p99 in entries.

   Both are exported as gauges for --json. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-replica-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let seed ctx =
  ignore (Workspace.of_session (Session.of_context ctx))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let n_followers = 2
let n_readers = 4
let n_writes = 30
let reads_per_thread = 80

let no_filter =
  { Store.f_entities = None; f_user = None; f_from = None; f_to = None;
    f_keywords = []; f_text = None }

(* [reads_per_thread] browses per reader thread over the given
   endpoints; returns sustained reads/sec.  Pools, like clients, are
   not thread-safe: one per thread. *)
let read_throughput endpoints =
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n_readers (fun i ->
        Thread.create
          (fun () ->
            let pool =
              Client.Pool.connect
                ~user:(Printf.sprintf "bench-reader%d" i)
                endpoints
            in
            for _ = 1 to reads_per_thread do
              ignore
                (Client.Pool.read pool (fun c -> Client.browse c no_filter))
            done;
            Client.Pool.close pool)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  float_of_int (n_readers * reads_per_thread) /. wall

let run () =
  Bench_util.section
    (Printf.sprintf
       "replication: 1 primary + %d followers, %d writes, %d reader threads"
       n_followers n_writes n_readers);
  let root = fresh_dir () in
  Unix.mkdir root 0o755;
  let psock = Filename.concat root "p.sock" in
  let p =
    Server.start ~seed
      ~db:(Filename.concat root "p")
      ~socket:psock Standard_schemas.odyssey
  in
  let followers =
    List.init n_followers (fun i ->
        let sock = Filename.concat root (Printf.sprintf "f%d.sock" i) in
        ( Server.start ~follow:psock
            ~db:(Filename.concat root (Printf.sprintf "f%d" i))
            ~socket:sock Standard_schemas.odyssey,
          sock ))
  in
  let fsocks = List.map snd followers in
  (* writes on the primary, sampling each follower's lag (in journal
     entries) right after every install *)
  let lags = ref [] in
  Client.with_client ~user:"bench-writer" ~socket:psock (fun cp ->
      let cfs =
        List.map (fun s -> Client.connect ~user:"bench-lag" ~socket:s ()) fsocks
      in
      for j = 1 to n_writes do
        ignore
          (Client.install cp ~entity:E.stimuli
             ~label:(Printf.sprintf "w%d" j)
             (Codec.value_to_sexp
                (Value.Stimuli (Eda.Stimuli.exhaustive [ "a"; "b" ]))));
        let pseq = (Client.stat cp).Wire.st_seq in
        List.iter
          (fun cf ->
            let fseq = (Client.stat cf).Wire.st_seq in
            lags := float_of_int (max 0 (pseq - fseq)) :: !lags)
          cfs
      done;
      (* let the set catch up before the read comparison *)
      let rec settle n =
        let pseq = (Client.stat cp).Wire.st_seq in
        if
          n > 0
          && List.exists (fun cf -> (Client.stat cf).Wire.st_seq < pseq) cfs
        then begin
          Thread.delay 0.02;
          settle (n - 1)
        end
      in
      settle 250;
      List.iter Client.close cfs);
  let primary_rps = read_throughput [ psock ] in
  let replica_rps = read_throughput (psock :: fsocks) in
  List.iter (fun (f, _) -> Server.stop f; Server.wait f) followers;
  Server.stop p;
  Server.wait p;
  rm_rf root;
  let lag = Array.of_list !lags in
  Array.sort compare lag;
  let p50 = percentile lag 0.50 and p99 = percentile lag 0.99 in
  Printf.printf "  reads: primary only %.0f req/s, with %d followers %.0f req/s (%.2fx)\n"
    primary_rps n_followers replica_rps (replica_rps /. primary_rps);
  Printf.printf "  apply lag p50 %.0f entries, p99 %.0f entries (%d samples)\n"
    p50 p99 (Array.length lag);
  Metrics.set (Metrics.gauge "replica.bench.primary_rps") primary_rps;
  Metrics.set (Metrics.gauge "replica.bench.replica_rps") replica_rps;
  Metrics.set (Metrics.gauge "replica.bench.lag_p50") p50;
  Metrics.set (Metrics.gauge "replica.bench.lag_p99") p99
