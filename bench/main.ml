(* The experiment harness: one section per figure of the paper, plus
   the ablations of DESIGN.md.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only E5    -- one experiment
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- --quota 0.05 -- faster bechamel runs
     dune exec bench/main.exe -- --json F     -- also write per-experiment
                                                metrics JSON to F *)

let experiments =
  [
    ("E1", "Fig. 1: example task schema", Exp_fig1.run);
    ("E2", "Fig. 2: tool created during design", Exp_fig2.run);
    ("E3", "Fig. 3: flow representations", Exp_fig3.run);
    ("E4", "Fig. 4: expansion operations", Exp_fig4.run);
    ("E5", "Fig. 5: complex flow", Exp_fig5.run);
    ("E6", "Fig. 6: parallel branches", Exp_fig6.run);
    ("E7", "Figs. 7-8: views and view flows", Exp_fig78.run);
    ("E9", "Fig. 9: session and browser", Exp_fig9.run);
    ("E10", "Fig. 10: history queries", Exp_fig10.run);
    ("E11", "Fig. 11: versioning", Exp_fig11.run);
    ("A", "ablations A1-A4", Exp_ablations.run);
    ("S", "design server: wire throughput and latency", Exp_server.run);
    ("R", "replication: read scaling and apply lag", Exp_replica.run);
    ("P", "hot paths: group commit, pipelined batches, indexed queries",
     Exp_perf.run);
    ("O", "overload: load shedding keeps the latency tail bounded",
     Exp_overload.run);
    ("T", "telemetry: tracing overhead on the write path", Exp_trace.run);
    ("Y", "anti-entropy sync: frames vs delta size, round latency",
     Exp_sync.run);
    ("C", "tiered storage: cemented replay, cold reads, streamed bootstrap",
     Exp_cement.run);
    ("W", "wire codec: binary vs sexp encode/decode, framed throughput",
     Exp_wire.run);
    ("M", "MVCC: domain-pool read scaling with the writer loop active",
     Exp_mvcc.run);
  ]

let () =
  let only = ref None and list = ref false and json = ref None in
  let rec parse = function
    | [] -> ()
    | "--only" :: id :: rest ->
      only := Some id;
      parse rest
    | "--list" :: rest ->
      list := true;
      parse rest
    | "--quota" :: q :: rest ->
      Bench_util.quota := float_of_string q;
      parse rest
    | "--json" :: path :: rest ->
      json := Some path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list then
    List.iter (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
      experiments
  else begin
    let selected =
      match !only with
      | None -> experiments
      | Some id -> (
        match List.filter (fun (i, _, _) -> i = id) experiments with
        | [] ->
          Printf.eprintf "no experiment %S (try --list)\n" id;
          exit 2
        | l -> l)
    in
    List.iter
      (fun (id, title, run) -> Bench_util.run_recorded ~id ~title run)
      selected;
    print_newline ();
    Option.iter Bench_util.write_json !json
  end
