(* Experiment T: tracing overhead.

   The experiment-P write workload (pipelined batch installs against a
   scratch group-commit server) run twice: with tracing disabled (the
   PR-5 baseline — no sink installed, every [with_span] runs its thunk
   directly) and with a JSONL sink recording every span on the client,
   server, writer and journal paths in-process — the worst case, since
   one sink sees both sides of the wire.

   Targets: disabled within noise of the baseline, enabled < 10%
   throughput loss.

   Exported gauges (for --json): trace.write.{off_rps,on_rps,
   overhead_pct,events}. *)

open Ddf

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

(* Longer than experiment P's 32 batches, and measured as the median
   of interleaved off/on rounds: a short burst at tens of thousands of
   writes per second is otherwise dominated by fsync timing noise. *)
let write_batches = 128
let rounds = 5

let write_throughput () =
  Exp_perf.with_scratch_server ~sync_mode:Journal.Group @@ fun socket ->
  Client.with_client ~user:"trace" ~socket @@ fun c ->
  ignore (Client.batch c (List.init Exp_perf.batch_size (Exp_perf.install_req 0)));
  let t0 = Unix.gettimeofday () in
  for i = 1 to write_batches do
    List.iter
      (function
        | Wire.Error e -> failwith ("install failed: " ^ Error.message e)
        | _ -> ())
      (Client.batch c (List.init Exp_perf.batch_size (Exp_perf.install_req i)))
  done;
  float_of_int (write_batches * Exp_perf.batch_size)
  /. (Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let run () =
  Bench_util.section
    (Printf.sprintf
       "tracing overhead: %dx %d batches of %d installs, sync=group, off vs \
        jsonl"
       rounds write_batches Exp_perf.batch_size);
  let path = Filename.temp_file "ddf-bench-trace" ".jsonl" in
  let offs = ref [] and ons = ref [] in
  let events = ref 0 in
  for _ = 1 to rounds do
    offs := write_throughput () :: !offs;
    Obs.set_sink (Obs_sinks.to_file ~format:Obs_sinks.Jsonl path);
    ons :=
      Fun.protect ~finally:Obs.clear_sink (fun () -> write_throughput ())
      :: !ons;
    events := count_lines path
  done;
  let off_rps = median !offs and on_rps = median !ons in
  let events = !events in
  Sys.remove path;
  let overhead = (off_rps -. on_rps) /. off_rps *. 100.0 in
  Printf.printf
    "  tracing off %.0f writes/s, jsonl %.0f writes/s (%.1f%% overhead, %d \
     trace lines)\n"
    off_rps on_rps overhead events;
  Metrics.set (Metrics.gauge "trace.write.off_rps") off_rps;
  Metrics.set (Metrics.gauge "trace.write.on_rps") on_rps;
  Metrics.set (Metrics.gauge "trace.write.overhead_pct") overhead;
  Metrics.set (Metrics.gauge "trace.write.events") (float_of_int events)
