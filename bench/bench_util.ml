(* Shared machinery for the experiment harness: a bechamel runner that
   prints one row per test, and small table helpers. *)

open Bechamel

let quota = ref 0.25

(* Run a group of bechamel tests and print the estimated ns/run. *)
let run_bechamel ~name tests =
  let test = Test.make_grouped ~name tests in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second !quota)
      ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns < 1_000.0 then Printf.printf "  %-48s %10.0f ns/run\n" name ns
      else if ns < 1_000_000.0 then
        Printf.printf "  %-48s %10.2f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "  %-48s %10.2f ms/run\n" name (ns /. 1_000_000.0))
    rows

let header id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "================================================================\n"

let paper_claim s = Printf.printf "paper: %s\n\n" s

let section s = Printf.printf "\n-- %s --\n" s

(* Wall-clock measurement of a single thunk, median of [runs]. *)
let time_us ?(runs = 5) f =
  let sample () =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    ignore (Sys.opaque_identity x);
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  let samples = List.init runs (fun _ -> sample ()) |> List.sort compare in
  List.nth samples (runs / 2)

(* ------------------------------------------------------------------ *)
(* Machine-readable per-experiment metrics                             *)
(* ------------------------------------------------------------------ *)

type exp_result = {
  exp_id : string;
  exp_title : string;
  wall_s : float;
  metrics_json : string;   (* snapshot of the global registry *)
}

let results : exp_result list ref = ref []

(* Run one experiment against a freshly reset global metrics registry,
   recording wall time and the engine counters it accumulated. *)
let run_recorded ~id ~title f =
  Ddf.Metrics.reset Ddf.Metrics.global;
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  results :=
    { exp_id = id; exp_title = title; wall_s;
      metrics_json = Ddf.Metrics.to_json Ddf.Metrics.global }
    :: !results

(* One JSON object per experiment: name, wall time, engine metrics. *)
let write_json path =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "  {\"experiment\": \"%s\", \"title\": \"%s\", \"wall_s\": %.6f, \
         \"metrics\": %s}"
        (Ddf.Obs.json_escape r.exp_id)
        (Ddf.Obs.json_escape r.exp_title)
        r.wall_s r.metrics_json)
    (List.rev !results);
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "[metrics written to %s]\n" path

let print_table headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let print_row cells =
    List.iteri
      (fun i c -> Printf.printf "%-*s  " (List.nth widths i) c)
      cells;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows
