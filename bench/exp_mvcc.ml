(* Experiment M: MVCC read scaling across domains.

   An in-process daemon on a scratch database; a writer client keeps
   the single-writer loop committing (and republishing the snapshot
   view) while N reader threads hammer Browse over the socket.  The
   same workload runs with the domain-pool read executor at 0 (inline
   baseline), 1, 2 and 4 worker domains; sustained reads/sec per
   configuration and the 1->4 scaling factor are exported as gauges.
   On a multi-core host the pinned-snapshot read path scales with the
   pool size because it takes no lock; on a single core the numbers
   flatline — the scaling gauge then reports the hardware, not the
   design. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-mvcc-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let seed ctx = ignore (Workspace.of_session (Session.of_context ctx))

let n_readers = 8
let store_instances = 200
let measure_s = 1.0

(* A filter that makes the server scan every instance's metadata but
   ship an empty row list back, so the cost under test is the server's
   snapshot read, not the client's decode. *)
let scan_filter =
  { Store.f_entities = Some [ E.stimuli ]; f_user = None; f_from = None;
    f_to = None; f_keywords = []; f_text = Some "no-such-label" }

let populate socket =
  Client.with_client ~user:"seed" ~socket @@ fun c ->
  let first = ref 0 in
  for i = 1 to store_instances do
    let iid =
      Client.install c ~entity:E.stimuli
        ~label:(Printf.sprintf "stim%d" i)
        (Codec.value_to_sexp
           (Value.Stimuli (Eda.Stimuli.exhaustive [ "a"; "b" ])))
    in
    if i = 1 then first := iid
  done;
  !first

(* Sustained pure-read throughput with the writer loop active, at one
   pool size.  Returns reads/sec. *)
let measure ~read_domains =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let t =
    Server.start ~seed ~read_domains ~sync_mode:Ddf.Journal.Never ~db:dir
      ~socket Standard_schemas.odyssey
  in
  let victim = populate socket in
  let stop = Atomic.make false in
  let writes = ref 0 in
  let writer =
    Thread.create
      (fun () ->
        Client.with_client ~user:"writer" ~socket (fun c ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              Client.annotate c victim
                ~comment:(Printf.sprintf "tick %d" !i);
              incr writes
            done))
      ()
  in
  let counts = Array.make n_readers 0 in
  let readers =
    List.init n_readers (fun i ->
        Thread.create
          (fun () ->
            Client.with_client ~user:(Printf.sprintf "r%d" i) ~socket
              (fun c ->
                while not (Atomic.get stop) do
                  ignore
                    (Client.browse c scan_filter
                      : Ddf_wire.Wire.instance_row list);
                  counts.(i) <- counts.(i) + 1
                done))
          ())
  in
  let t0 = Unix.gettimeofday () in
  Thread.delay measure_s;
  Atomic.set stop true;
  List.iter Thread.join readers;
  Thread.join writer;
  let wall = Unix.gettimeofday () -. t0 in
  Server.stop t;
  Server.wait t;
  rm_rf dir;
  let total = Array.fold_left ( + ) 0 counts in
  let rps = float_of_int total /. wall in
  Printf.printf
    "  read-domains=%d: %d reads in %.2f s = %.0f reads/s (%d writes behind)\n%!"
    read_domains total wall rps !writes;
  rps

let run () =
  Bench_util.section
    (Printf.sprintf
       "MVCC read scaling: %d reader clients, scan of %d instances, writer \
        active"
       n_readers store_instances);
  let configs = [ 0; 1; 2; 4 ] in
  let rates = List.map (fun d -> (d, measure ~read_domains:d)) configs in
  List.iter
    (fun (d, rps) ->
      Metrics.set (Metrics.gauge (Printf.sprintf "mvcc.read_rps.d%d" d)) rps)
    rates;
  let rate d = List.assoc d rates in
  let scaling = rate 4 /. Float.max 1.0 (rate 1) in
  Metrics.set (Metrics.gauge "mvcc.read_scaling_1to4") scaling;
  Printf.printf "  scaling 1 -> 4 domains: %.2fx\n" scaling
