(* Experiment O: behaviour at and past saturation.

   A closed-loop client fleet hammers one scratch server with
   moderately expensive installs at increasing concurrency, twice:
   once with a small bounded admission queue (the shedding
   configuration) and once with an effectively unbounded queue.  With
   shedding, a mutation's queue dwell is bounded by [max_queue] times
   the service time, so the latency tail of the *accepted* requests
   stays flat as offered load grows and the surplus is refused with
   [`Overloaded] plus a retry-after hint the clients honour.  Without
   the bound every request is admitted and the tail stretches with the
   queue instead.

   Exported gauges (for --json), per configuration and fleet size:
   overload.{shed,noshed}.c{N}.{acked_rps,shed_frac,p99_ms}, and the
   headline overload.p99_ratio (unbounded p99 / bounded p99 at the
   highest load). *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-overload-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let seed ctx = ignore (Workspace.of_session (Session.of_context ctx))

let with_scratch_server ~max_queue f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let t =
    Server.start ~max_queue ~seed ~db:dir ~socket Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t;
      rm_rf dir)
    (fun () -> f socket)

let levels = [ 1; 8; 32 ]
let duration_s = 1.5

(* 2^10 stimulus vectors: enough codec + hash + journal work per
   install that per-job service time dominates the batch fsync and a
   small fleet saturates the single writer. *)
let payload =
  Codec.value_to_sexp
    (Value.Stimuli
       (Eda.Stimuli.exhaustive
          [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j" ]))

(* Closed loop: each client issues the next install as soon as the
   previous one is answered, backing off by the server's hint when
   shed.  Returns (acked, shed, latencies of acked requests). *)
let drive ~clients ~socket =
  let stop_at = Unix.gettimeofday () +. duration_s in
  let oks = Array.make clients 0
  and sheds = Array.make clients 0
  and lats = Array.make clients [] in
  let worker i () =
    Client.with_client ~user:(Printf.sprintf "load%d" i) ~socket @@ fun c ->
    let n = ref 0 in
    while Unix.gettimeofday () < stop_at do
      let t0 = Unix.gettimeofday () in
      (match
         Client.install_r c ~entity:E.stimuli
           ~label:(Printf.sprintf "o%d-%d" i !n)
           payload
       with
      | Ok _ ->
        oks.(i) <- oks.(i) + 1;
        lats.(i) <- (Unix.gettimeofday () -. t0) :: lats.(i)
      | Error e when e.Error.code = `Overloaded ->
        sheds.(i) <- sheds.(i) + 1;
        Thread.delay
          (match e.Error.retry_after with
          | Some s -> Float.min s 0.25
          | None -> 0.01)
      | Error e -> failwith (Error.to_string e));
      incr n
    done
  in
  let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  let acked = Array.fold_left ( + ) 0 oks
  and shed = Array.fold_left ( + ) 0 sheds
  and all = Array.fold_left (fun acc l -> List.rev_append l acc) [] lats in
  (acked, shed, List.sort compare all)

let p99 = function
  | [] -> 0.0
  | lats ->
    let n = List.length lats in
    List.nth lats (min (n - 1) (n * 99 / 100))

(* One configuration: sweep the fleet sizes against one queue bound.
   Returns the p99 at the highest load. *)
let sweep label ~max_queue =
  Bench_util.section
    (Printf.sprintf "%s: max_queue=%d, %.1fs per level" label max_queue
       duration_s);
  with_scratch_server ~max_queue @@ fun socket ->
  List.fold_left
    (fun _ clients ->
      let acked, shed, lats = drive ~clients ~socket in
      let total = acked + shed in
      let shed_frac =
        if total = 0 then 0.0 else float_of_int shed /. float_of_int total
      in
      let rps = float_of_int acked /. duration_s in
      let p99_ms = p99 lats *. 1e3 in
      Printf.printf
        "  %2d clients: %6.0f acked/s, %4.1f%% shed, p99 %6.1f ms\n%!"
        clients rps (100.0 *. shed_frac) p99_ms;
      let g suffix v =
        Metrics.set
          (Metrics.gauge
             (Printf.sprintf "overload.%s.c%d.%s" label clients suffix))
          v
      in
      g "acked_rps" rps;
      g "shed_frac" shed_frac;
      g "p99_ms" p99_ms;
      p99_ms)
    0.0 levels

let run () =
  let bounded = sweep "shed" ~max_queue:8 in
  let unbounded = sweep "noshed" ~max_queue:1_000_000 in
  let ratio = if bounded > 0.0 then unbounded /. bounded else 0.0 in
  Printf.printf
    "\n  p99 at %d clients: bounded %.1f ms vs unbounded %.1f ms (%.1fx)\n"
    (List.fold_left max 0 levels) bounded unbounded ratio;
  Metrics.set (Metrics.gauge "overload.p99_ratio") ratio
