(* Experiment S: the design server under concurrent clients.

   An in-process daemon on a scratch database; N client threads issue
   a mixed workload (installs and annotations through the single-writer
   loop, browses and stats served concurrently) over the Unix-socket
   wire protocol.  Reports sustained requests/sec and p50/p99
   per-request latency, exported as gauges for --json. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-server-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let seed ctx =
  ignore (Workspace.of_session (Session.of_context ctx))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let n_clients = 4
let rounds = 40

(* Each round: two mutations and two reads, individually timed. *)
let workload socket i =
  let lat = ref [] in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    lat := (Unix.gettimeofday () -. t0) *. 1e6 :: !lat;
    x
  in
  Client.with_client ~user:(Printf.sprintf "bench%d" i) ~socket (fun c ->
      for j = 1 to rounds do
        let iid =
          timed (fun () ->
              Client.install c ~entity:E.stimuli
                ~label:(Printf.sprintf "b%d-%d" i j)
                (Codec.value_to_sexp
                   (Value.Stimuli (Eda.Stimuli.exhaustive [ "a"; "b" ]))))
        in
        timed (fun () -> Client.annotate c ~keywords:[ "bench" ] iid);
        ignore
          (timed (fun () ->
               Client.browse c
                 { Store.f_entities = Some [ E.stimuli ]; f_user = None;
                   f_from = None; f_to = None; f_keywords = []; f_text = None }));
        ignore (timed (fun () -> Client.stat c))
      done);
  !lat

let run () =
  Bench_util.section
    (Printf.sprintf "design server: %d clients x %d rounds over the socket"
       n_clients rounds);
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let t = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
  let lats = Array.make n_clients [] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n_clients (fun i ->
        Thread.create (fun () -> lats.(i) <- workload socket i) ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  Server.stop t;
  Server.wait t;
  rm_rf dir;
  let all = Array.of_list (Array.to_list lats |> List.concat) in
  Array.sort compare all;
  let total = Array.length all in
  let rps = float_of_int total /. wall_s in
  let p50 = percentile all 0.50 and p99 = percentile all 0.99 in
  Printf.printf "  %d requests in %.2f s: %.0f req/s\n" total wall_s rps;
  Printf.printf "  latency p50 %.1f us, p99 %.1f us\n" p50 p99;
  Metrics.set (Metrics.gauge "server.bench.rps") rps;
  Metrics.set (Metrics.gauge "server.bench.p50_us") p50;
  Metrics.set (Metrics.gauge "server.bench.p99_us") p99
