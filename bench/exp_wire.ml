(* Experiment W: the v8 binary wire codec against the sexp codec.

   Three layers: (1) codec microbenchmarks — encode and decode ns per
   frame and bytes per frame over representative requests/responses,
   with the median binary-vs-sexp speedup as the headline number;
   (2) framed transport throughput for large payload bodies over a
   socketpair (the zero-copy slice path); (3) an end-to-end mini rerun
   of experiment S's shape: one server, a v8 (binary) client vs a v7
   (sexp) client driving the same install/browse workload, singly and
   as pipelined batches.  Exported as gauges for --json. *)

open Ddf
module E = Standard_schemas.E

let fresh_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-wire-%d" (Unix.getpid ()))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Representative frames                                               *)
(* ------------------------------------------------------------------ *)

let meta =
  { Store.user = "designer"; created_at = 42; label = "netlist v3";
    comment = "seeded from the walkthrough"; keywords = [ "bench"; "wire" ] }

let filter =
  { Store.f_entities = Some [ E.stimuli; E.edited_netlist ];
    f_user = Some "designer"; f_from = Some 10; f_to = Some 99_999;
    f_keywords = [ "adder" ]; f_text = Some "v3" }

let payload n = String.init n (fun i -> Char.chr (0x20 + (i land 0x5f)))

let sample_requests =
  [
    ("req ping", Wire.Ping);
    ("req run", Wire.Run 12);
    ("req browse", Wire.Browse filter);
    ( "req install",
      Wire.Install
        { entity = E.stimuli; label = "stim"; keywords = [ "bench" ];
          value =
            Codec.value_to_sexp
              (Value.Stimuli (Eda.Stimuli.exhaustive [ "a"; "b"; "c" ])) } );
    ("req batch-8", Wire.Batch (List.init 8 (fun i -> Wire.Run i)));
  ]

let sample_responses =
  [
    ("resp int", Wire.Ok_int 7);
    ( "resp rows-20",
      Wire.Ok_rows
        (List.init 20 (fun i ->
             { Wire.row_iid = i; row_entity = E.stimuli; row_meta = meta })) );
    ( "resp frame-4k",
      Wire.Ok_frame
        { seq = 9; payload = payload 4096;
          digest = "0123456789abcdef0123456789abcdef" } );
    ( "resp metrics-16",
      Wire.Ok_metrics
        (List.init 16 (fun i ->
             Metrics.Counter (Printf.sprintf "engine.counter_%d" i, i * 17)))
    );
  ]

(* ------------------------------------------------------------------ *)
(* Codec microbenchmarks                                               *)
(* ------------------------------------------------------------------ *)

let ns_per ?(iters = 10_000) f =
  for _ = 1 to 200 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* One row per sample frame: sizes, encode/decode ns for each codec,
   and the two speedups. *)
let codec_rows () =
  let row name ~enc_bin ~dec_bin ~enc_sexp ~dec_sexp ~bin_bytes ~sexp_bytes =
    [ name;
      string_of_int bin_bytes; string_of_int sexp_bytes;
      Printf.sprintf "%.0f" enc_bin; Printf.sprintf "%.0f" enc_sexp;
      Printf.sprintf "%.0f" dec_bin; Printf.sprintf "%.0f" dec_sexp;
      Printf.sprintf "%.1fx" (enc_sexp /. enc_bin);
      Printf.sprintf "%.1fx" (dec_sexp /. dec_bin) ]
  in
  let speedups = ref [] in
  let bench name to_bin of_bin to_sexp of_sexp =
    let bin = to_bin () and sx = to_sexp () in
    let enc_bin = ns_per to_bin and enc_sexp = ns_per to_sexp in
    let dec_bin = ns_per (fun () -> of_bin bin)
    and dec_sexp = ns_per (fun () -> of_sexp sx) in
    speedups :=
      (enc_sexp /. enc_bin, dec_sexp /. dec_bin, sx, bin) :: !speedups;
    row name ~enc_bin ~dec_bin ~enc_sexp ~dec_sexp
      ~bin_bytes:(String.length bin) ~sexp_bytes:(String.length sx)
  in
  let rows =
    List.map
      (fun (name, r) ->
        bench name
          (fun () -> Wire.request_to_binary_string r)
          Wire.request_of_binary_string
          (fun () -> Sexp.to_string ~pretty:false (Wire.request_to_sexp r))
          (fun s -> Wire.request_of_sexp (Sexp.of_string s)))
      sample_requests
    @ List.map
        (fun (name, r) ->
          bench name
            (fun () -> Wire.response_to_binary_string r)
            Wire.response_of_binary_string
            (fun () -> Sexp.to_string ~pretty:false (Wire.response_to_sexp r))
            (fun s -> Wire.response_of_sexp (Sexp.of_string s)))
        sample_responses
  in
  (rows, !speedups)

(* ------------------------------------------------------------------ *)
(* Framed transport throughput                                         *)
(* ------------------------------------------------------------------ *)

let stream_throughput codec ~frames ~bytes_per =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let resp =
    Wire.Ok_frame
      { seq = 1; payload = payload bytes_per;
        digest = "0123456789abcdef0123456789abcdef" }
  in
  let t0 = Unix.gettimeofday () in
  let sender =
    Thread.create
      (fun () ->
        for _ = 1 to frames do
          Wire.send_response codec a resp
        done;
        Unix.close a)
      ()
  in
  let received = ref 0 in
  (try
     while
       match Wire.recv_response b with
       | Some _ ->
         incr received;
         !received < frames
       | None -> false
     do
       ()
     done
   with Wire.Wire_error _ -> ());
  Thread.join sender;
  Unix.close b;
  let wall = Unix.gettimeofday () -. t0 in
  let mb = float_of_int (frames * bytes_per) /. 1e6 in
  (mb /. wall, !received)

(* ------------------------------------------------------------------ *)
(* End-to-end: one server, one client per codec                        *)
(* ------------------------------------------------------------------ *)

let seed ctx = ignore (Workspace.of_session (Session.of_context ctx))

let e2e_rounds = 120

(* install + annotate + browse + stat per round, like experiment S. *)
let e2e_workload socket version =
  Client.with_client ~user:(Printf.sprintf "wire-v%d" version) ~version ~socket
    (fun c ->
      let t0 = Unix.gettimeofday () in
      for j = 1 to e2e_rounds do
        let iid =
          Client.install c ~entity:E.stimuli
            ~label:(Printf.sprintf "w%d-%d" version j)
            (Codec.value_to_sexp
               (Value.Stimuli (Eda.Stimuli.exhaustive [ "a"; "b" ])))
        in
        Client.annotate c ~keywords:[ "bench" ] iid;
        ignore
          (Client.browse c { filter with Store.f_entities = Some [ E.stimuli ] });
        ignore (Client.stat c)
      done;
      let wall = Unix.gettimeofday () -. t0 in
      float_of_int (4 * e2e_rounds) /. wall)

(* experiment P's shape: pipelined batches of 32 reads, one frame each
   way per batch. *)
let batch_rounds = 60

let batch_workload socket version =
  Client.with_client ~user:(Printf.sprintf "batch-v%d" version) ~version
    ~socket (fun c ->
      let reqs = List.init 32 (fun _ -> Wire.Stat) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch_rounds do
        ignore (Client.batch c reqs)
      done;
      let wall = Unix.gettimeofday () -. t0 in
      float_of_int (32 * batch_rounds) /. wall)

let run () =
  (* --- codec micro --- *)
  Bench_util.section "codec: encode/decode ns per frame, bytes per frame";
  let rows, speedups = codec_rows () in
  Bench_util.print_table
    [ "frame"; "B bin"; "B sexp"; "enc bin"; "enc sexp"; "dec bin";
      "dec sexp"; "enc x"; "dec x" ]
    rows;
  let enc_x = median (List.map (fun (e, _, _, _) -> e) speedups) in
  let dec_x = median (List.map (fun (_, d, _, _) -> d) speedups) in
  let size_ratio =
    median
      (List.map
         (fun (_, _, sx, bin) ->
           float_of_int (String.length sx) /. float_of_int (String.length bin))
         speedups)
  in
  Printf.printf
    "  median speedup: encode %.1fx, decode %.1fx; sexp/binary bytes %.2fx\n"
    enc_x dec_x size_ratio;
  Metrics.set (Metrics.gauge "wire.bench.encode_speedup_median") enc_x;
  Metrics.set (Metrics.gauge "wire.bench.decode_speedup_median") dec_x;
  Metrics.set (Metrics.gauge "wire.bench.sexp_to_binary_bytes") size_ratio;

  (* --- transport throughput --- *)
  Bench_util.section "transport: 64 x 1 MiB payload frames over a socketpair";
  let mbps_bin, got_b =
    stream_throughput Wire.Binary ~frames:64 ~bytes_per:(1 lsl 20)
  in
  let mbps_sexp, got_s =
    stream_throughput Wire.Sexp ~frames:64 ~bytes_per:(1 lsl 20)
  in
  Printf.printf "  binary  %8.0f MB/s  (%d frames)\n" mbps_bin got_b;
  Printf.printf "  sexp    %8.0f MB/s  (%d frames)\n" mbps_sexp got_s;
  Metrics.set (Metrics.gauge "wire.bench.stream_mbps_binary") mbps_bin;
  Metrics.set (Metrics.gauge "wire.bench.stream_mbps_sexp") mbps_sexp;

  (* --- end to end --- *)
  Bench_util.section
    (Printf.sprintf
       "end to end: %d install/annotate/browse/stat rounds per codec"
       e2e_rounds);
  let dir = fresh_dir () in
  rm_rf dir;
  let socket = Filename.concat dir "s.sock" in
  let t = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t;
      rm_rf dir)
    (fun () ->
      let rps8 = e2e_workload socket Wire.protocol_version in
      let rps7 = e2e_workload socket 7 in
      let bat8 = batch_workload socket Wire.protocol_version in
      let bat7 = batch_workload socket 7 in
      Printf.printf "  singles: v8 binary %8.0f req/s   v7 sexp %8.0f req/s\n"
        rps8 rps7;
      Printf.printf "  batches: v8 binary %8.0f req/s   v7 sexp %8.0f req/s\n"
        bat8 bat7;
      Metrics.set (Metrics.gauge "wire.bench.rps_binary") rps8;
      Metrics.set (Metrics.gauge "wire.bench.rps_sexp") rps7;
      Metrics.set (Metrics.gauge "wire.bench.batch_rps_binary") bat8;
      Metrics.set (Metrics.gauge "wire.bench.batch_rps_sexp") bat7)
