(* Experiment Y: anti-entropy sync cost.

   Two clones of one workspace diverge by a controlled number of
   journal entries; one bidirectional sync session reconciles them.
   Two questions:

     - proportionality: the frames transferred must track the delta
       size, not the journal size — anti-entropy pulls exactly the
       missing suffix (plus the echo of what the first direction
       merged), so doubling the shared prefix must not move the count;
     - round latency: p50/p99 of a bounded pull round (fetch + apply +
       cursor persist), from the [sync.round_us] histogram the sync
       driver already maintains.

   Gauges for --json: sync.bench.frames_<delta>, sync.bench.round_p50,
   sync.bench.round_p99, sync.bench.converged. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-bench-sync-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec copy_dir src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun f ->
      let s = Filename.concat src f and d = Filename.concat dst f in
      if Sys.is_directory s then copy_dir s d
      else begin
        let ic = open_in_bin s in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let oc = open_out_bin d in
        output_string oc data;
        close_out oc
      end)
    (Sys.readdir src)

let clone src dst =
  copy_dir src dst;
  List.iter
    (fun f ->
      let p = Filename.concat dst f in
      if Sys.file_exists p then Sys.remove p)
    [ "wsid.ddf"; "sync.ddf" ]

(* [n] one-entry installs: a delta of exactly [n] journal frames. *)
let diverge ctx tag n =
  for i = 1 to n do
    ignore
      (Engine.install ctx ~entity:E.stimuli
         ~label:(Printf.sprintf "%s-%d" tag i)
         (Value.Stimuli (Eda.Stimuli.exhaustive [ tag; string_of_int i ])))
  done

let deltas = [ 8; 32; 128 ]
let batch = 32

let run () =
  let results =
    List.map
      (fun delta ->
        let base = fresh_dir () in
        let da = fresh_dir () and db = fresh_dir () in
        let j = Journal.open_ ~dir:base Standard_schemas.odyssey in
        ignore (Workspace.of_session (Session.of_context (Journal.context j)));
        diverge (Journal.context j) "shared" 16;
        Journal.close j;
        clone base da;
        clone base db;
        let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
        let jb = Journal.open_ ~dir:db Standard_schemas.odyssey in
        diverge (Journal.context ja) "a" delta;
        diverge (Journal.context jb) "b" delta;
        let t0 = Unix.gettimeofday () in
        let r =
          Sync.run ~batch ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ()
        in
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        let converged =
          Sync.fingerprint (Journal.context ja)
          = Sync.fingerprint (Journal.context jb)
        in
        let pulled =
          r.Sync.rp_into_a.Sync.d_pulled + r.Sync.rp_into_b.Sync.d_pulled
        in
        let applied =
          r.Sync.rp_into_a.Sync.d_applied + r.Sync.rp_into_b.Sync.d_applied
        in
        Journal.close ja;
        Journal.close jb;
        rm_rf base;
        rm_rf da;
        rm_rf db;
        (delta, pulled, applied, wall_ms, converged))
      deltas
  in
  Printf.printf "  one session over clones sharing a 16-entry prefix (batch %d):\n"
    batch;
  List.iter
    (fun (delta, pulled, applied, wall_ms, converged) ->
      Printf.printf
        "  delta %4d/side: %4d frames pulled (%d applied) in %6.1f ms%s\n"
        delta pulled applied wall_ms
        (if converged then "" else "  [DID NOT CONVERGE]");
      Metrics.set
        (Metrics.gauge (Printf.sprintf "sync.bench.frames_%d" delta))
        (float_of_int pulled))
    results;
  let h = Metrics.histogram "sync.round_us" in
  let p50 = Metrics.quantile h 0.50 /. 1e3
  and p99 = Metrics.quantile h 0.99 /. 1e3 in
  Printf.printf "  pull round latency: p50 %.2f ms, p99 %.2f ms\n" p50 p99;
  Metrics.set (Metrics.gauge "sync.bench.round_p50_ms") p50;
  Metrics.set (Metrics.gauge "sync.bench.round_p99_ms") p99;
  Metrics.set
    (Metrics.gauge "sync.bench.converged")
    (if List.for_all (fun (_, _, _, _, c) -> c) results then 1.0 else 0.0)
