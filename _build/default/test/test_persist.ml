(* Tests for workspace persistence: the save/load round trip over a
   session with real derivations, tools-as-data and catalog flows. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* A workspace exercising every payload class: netlists, layouts,
   stimuli, circuit composites, performances, verifications, plots,
   statistics, transistor views, options, editor sessions and a
   compiled simulator. *)
let rich_session () =
  let w = Workspace.create ~user:"persist" () in
  let ctx = Workspace.ctx w in
  let session = Workspace.session w in
  (* run fig5 *)
  let reference = Eda.Circuits.full_adder () in
  let layout_iid = Workspace.install_layout w (Eda.Layout.place reference) in
  let reference_iid = Workspace.install_netlist w reference in
  let stimuli_iid =
    Workspace.install_stimuli w
      (Eda.Stimuli.exhaustive reference.Eda.Netlist.primary_inputs)
  in
  let f = Standard_flows.fig5 () in
  let bindings =
    Workspace.bind_catalog_tools w f.Standard_flows.f5_graph
      ~already:
        [ (f.Standard_flows.f5_layout, layout_iid);
          (f.Standard_flows.f5_stimuli, stimuli_iid);
          (f.Standard_flows.f5_reference, reference_iid);
          (f.Standard_flows.f5_device_models, Workspace.default_device_models w) ]
  in
  let run = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
  (* an editor session + edit *)
  let edit =
    Workspace.install_editor_session w
      (Eda.Edit_script.create
         [ Eda.Edit_script.Insert_buffer { net = "x1"; gname = "pb" } ])
  in
  let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
  let g, fresh = Task_graph.expand g out in
  let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let _ = Engine.execute ctx g ~bindings:[ (editor, edit); (src, reference_iid) ] in
  (* a compiled simulator (Fig. 2) + transistor view *)
  let f2 = Standard_flows.fig2 () in
  let b2 =
    Workspace.bind_catalog_tools w f2.Standard_flows.f2_graph
      ~already:
        [ (f2.Standard_flows.f2_netlist, reference_iid);
          (f2.Standard_flows.f2_stimuli, stimuli_iid) ]
  in
  let _ = Engine.execute ctx f2.Standard_flows.f2_graph ~bindings:b2 in
  ignore
    (Views.derive_views ctx ~logic:reference_iid
       ~placer_tool:(Workspace.tool w E.placer)
       ~expander_tool:(Workspace.tool w E.transistor_expander));
  (* a catalog flow *)
  ignore (Session.start_goal_based session E.performance);
  let perf_root = List.hd (Task_graph.roots (Session.current_flow session)) in
  ignore (Session.expand session perf_root);
  Session.save_flow session "simulate";
  (w, run, f)

let reload session =
  Persist.load Standard_schemas.odyssey (Persist.save session)

let suite_cases =
  [
    t "round trip preserves counts and hashes" (fun () ->
        let w, _, _ = rich_session () in
        let s2 = reload (Workspace.session w) in
        let ctx1 = Workspace.ctx w and ctx2 = Session.context s2 in
        check Alcotest.int "instances"
          (Store.instance_count ctx1.Engine.store)
          (Store.instance_count ctx2.Engine.store);
        check Alcotest.int "payloads"
          (Store.physical_count ctx1.Engine.store)
          (Store.physical_count ctx2.Engine.store);
        check Alcotest.int "records"
          (History.size ctx1.Engine.history)
          (History.size ctx2.Engine.history);
        check Alcotest.int "clock" ctx1.Engine.clock ctx2.Engine.clock;
        List.iter
          (fun iid ->
            check Alcotest.string
              (Printf.sprintf "hash of #%d" iid)
              (Store.hash_of ctx1.Engine.store iid)
              (Store.hash_of ctx2.Engine.store iid);
            check Alcotest.string
              (Printf.sprintf "entity of #%d" iid)
              (Store.entity_of ctx1.Engine.store iid)
              (Store.entity_of ctx2.Engine.store iid))
          (Store.all_instances ctx1.Engine.store));
    t "history chains survive" (fun () ->
        let w, run, f = rich_session () in
        let perf = Engine.result_of run f.Standard_flows.f5_performance in
        let s2 = reload (Workspace.session w) in
        let ctx2 = Session.context s2 in
        let g, root, _ =
          History.trace ctx2.Engine.history ctx2.Engine.store ctx2.Engine.schema
            perf
        in
        check Alcotest.string "root entity" E.performance
          (Task_graph.entity_of g root);
        check Alcotest.bool "non-trivial trace" true (Task_graph.size g > 5));
    t "memoization works across a reload" (fun () ->
        let w, _, f = rich_session () in
        let s2 = reload (Workspace.session w) in
        let ctx2 = Session.context s2 in
        (* re-bind the same flow against the reloaded instances *)
        let layout_iid =
          List.hd (Store.instances_of_entity ctx2.Engine.store E.edited_layout)
        in
        let reference_iid =
          List.hd (Store.instances_of_entity ctx2.Engine.store E.edited_netlist)
        in
        let stim_iid =
          List.hd (Store.instances_of_entity ctx2.Engine.store E.stimuli)
        in
        let models =
          List.hd (Store.instances_of_entity ctx2.Engine.store E.device_models)
        in
        let tool entity =
          List.hd (Store.instances_of_entity ctx2.Engine.store entity)
        in
        let g = f.Standard_flows.f5_graph in
        let bindings =
          [ (f.Standard_flows.f5_layout, layout_iid);
            (f.Standard_flows.f5_stimuli, stim_iid);
            (f.Standard_flows.f5_reference, reference_iid);
            (f.Standard_flows.f5_device_models, models);
            (f.Standard_flows.f5_extractor, tool E.extractor) ]
        in
        let bindings =
          List.map
            (fun nid ->
              match List.assoc_opt nid bindings with
              | Some iid -> (nid, iid)
              | None -> (nid, tool (Task_graph.entity_of g nid)))
            (Task_graph.leaves g)
        in
        let run = Engine.execute ctx2 g ~bindings in
        check Alcotest.int "all memo hits" 0 run.Engine.stats.Engine.executed);
    t "the compiled simulator survives (recompiled from source)" (fun () ->
        let w, _, _ = rich_session () in
        let ctx1 = Workspace.ctx w in
        let sim1 =
          List.hd (Store.instances_of_entity ctx1.Engine.store E.compiled_simulator)
        in
        let s2 = reload (Workspace.session w) in
        let ctx2 = Session.context s2 in
        match Store.payload ctx2.Engine.store sim1 with
        | Value.Tool (Value.Compiled_simulator c) ->
          check Alcotest.bool "has instructions" true
            (Eda.Sim_compiled.instruction_count c > 0)
        | _ -> Alcotest.fail "compiled simulator payload lost");
    t "the flow catalog survives" (fun () ->
        let w, _, _ = rich_session () in
        let s1 = Workspace.session w in
        let s2 = reload s1 in
        check (Alcotest.list Alcotest.string) "names"
          (Session.flow_catalog s1) (Session.flow_catalog s2);
        match (Session.catalog_flow s1 "simulate", Session.catalog_flow s2 "simulate") with
        | Some a, Some b ->
          check Alcotest.bool "isomorphic" true (Canonical.equal a b)
        | _ -> Alcotest.fail "catalog flow lost");
    t "save is deterministic" (fun () ->
        let w, _, _ = rich_session () in
        let s = Workspace.session w in
        check Alcotest.string "same bytes" (Persist.save s) (Persist.save s));
    t "a second save/load cycle is a fixpoint" (fun () ->
        let w, _, _ = rich_session () in
        let text1 = Persist.save (Workspace.session w) in
        let text2 = Persist.save (reload (Workspace.session w)) in
        check Alcotest.string "fixpoint" text1 text2);
    Util.expect_exn "corrupt file rejected"
      (function Persist.Persist_error _ -> true | _ -> false)
      (fun () -> Persist.load Standard_schemas.odyssey "(not_a_workspace)");
    Util.expect_exn "tampered payload rejected by hash check"
      (function Persist.Persist_error _ -> true | _ -> false)
      (fun () ->
        let w = Workspace.create () in
        ignore (Workspace.install_netlist w (Eda.Circuits.inverter ()));
        let text = Persist.save (Workspace.session w) in
        (* tamper: flip the gate operator in the serialized payload *)
        let tampered = Util.replace_first text "(g_inv not" "(g_inv buf" in
        if tampered = text then Alcotest.fail "tampering failed to apply";
        Persist.load Standard_schemas.odyssey tampered);
  ]

let sexp_cases =
  let module S = Ddf_persist.Sexp in
  [
    t "sexp round-trips tricky atoms" (fun () ->
        let cases =
          [ "plain"; "with space"; "quo\"te"; "back\\slash"; "new\nline";
            "tab\there"; "(parens)"; "" ]
        in
        List.iter
          (fun s ->
            let sexp = S.List [ S.Atom "k"; S.Atom s ] in
            check Alcotest.bool s true
              (S.of_string (S.to_string sexp) = sexp))
          cases);
    Util.expect_exn "unterminated list"
      (function S.Sexp_error _ -> true | _ -> false)
      (fun () -> S.of_string "(a (b c)");
    Util.expect_exn "trailing garbage"
      (function S.Sexp_error _ -> true | _ -> false)
      (fun () -> S.of_string "(a) b");
    t "comments are skipped" (fun () ->
        check Alcotest.bool "parsed" true
          (S.of_string "(a ; comment\n b)" = S.List [ S.Atom "a"; S.Atom "b" ]));
  ]

let suite =
  [ ("persist.workspace", suite_cases); ("persist.sexp", sexp_cases) ]
