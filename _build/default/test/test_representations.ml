(* Tests for the flow representations of Fig. 3: the Lisp-style form,
   the round-trip textual form, and the bipartite flowmap. *)

open Ddf_graph
module E = Ddf_schema.Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let schema = Ddf_schema.Standard_schemas.odyssey

let suite_cases =
  [
    t "paper form of the Fig. 3 flow" (fun () ->
        let f = Standard_flows.fig3 () in
        check Alcotest.string "footnote 2"
          "synthesized_layout (placer, edited_netlist (netlist_editor, netlist), placement_options)"
          (Sexp_form.to_paper_string f.Standard_flows.f3_graph
             f.Standard_flows.f3_layout));
    t "round-trip form parses back" (fun () ->
        let f = Standard_flows.fig3 () in
        let s = Sexp_form.to_string f.Standard_flows.f3_graph in
        let g = Sexp_form.of_string schema s in
        check Alcotest.bool "isomorphic" true
          (Canonical.equal g f.Standard_flows.f3_graph));
    t "sharing survives the round trip" (fun () ->
        let f = Standard_flows.fig5 () in
        let s = Sexp_form.to_string f.Standard_flows.f5_graph in
        let g = Sexp_form.of_string schema s in
        check Alcotest.bool "isomorphic" true
          (Canonical.equal g f.Standard_flows.f5_graph);
        (* shared node: some node has two users *)
        check Alcotest.bool "sharing" true
          (List.exists
             (fun (n : Task_graph.node) ->
               List.length (Task_graph.users g n.Task_graph.nid) >= 2)
             (Task_graph.nodes g)));
    Util.expect_exn "parse error on garbage"
      (function Sexp_form.Parse_error _ -> true | _ -> false)
      (fun () -> Sexp_form.of_string schema "((((");
    Util.expect_exn "parse error on unknown entity"
      (function Ddf_schema.Schema.Schema_error _ -> true | _ -> false)
      (fun () -> Sexp_form.of_string schema "martian#0");
    Util.expect_exn "parse error on redefined shared node"
      (function Sexp_form.Parse_error _ -> true | _ -> false)
      (fun () ->
        Sexp_form.of_string schema
          "circuit#0(device_models=device_models#1(tool=device_model_editor#2), netlist=netlist#3); device_models#1(tool=device_model_editor#4)");
    t "bipartite conversion of a plain flow is lossless" (fun () ->
        let f = Standard_flows.fig3 () in
        let b = Bipartite.of_graph f.Standard_flows.f3_graph in
        check Alcotest.bool "lossless" true (Bipartite.lossless b));
    t "bipartite round-trips a plain flow" (fun () ->
        let f = Standard_flows.fig3 () in
        let b = Bipartite.of_graph f.Standard_flows.f3_graph in
        let g = Bipartite.to_graph schema b in
        check Alcotest.bool "isomorphic" true
          (Canonical.equal g f.Standard_flows.f3_graph));
    t "flowmaps cannot express tools built by the flow (Fig. 2)" (fun () ->
        let f = Standard_flows.fig2 () in
        let b = Bipartite.of_graph f.Standard_flows.f2_graph in
        check Alcotest.bool "lossy" false (Bipartite.lossless b);
        check
          Alcotest.(list string)
          "the compiled simulator is lost"
          [ E.compiled_simulator ] b.Bipartite.derived_tools);
    t "bipartite keeps co-produced outputs in one activity" (fun () ->
        let f = Standard_flows.fig5 () in
        let b = Bipartite.of_graph f.Standard_flows.f5_graph in
        let extraction =
          List.find
            (fun a -> a.Bipartite.act_tool = Some E.extractor)
            b.Bipartite.activities
        in
        check Alcotest.int "two outputs" 2
          (List.length extraction.Bipartite.act_outputs));
    t "ascii rendering marks shared nodes" (fun () ->
        let f = Standard_flows.fig5 () in
        check Alcotest.bool "shared marker" true
          (Util.contains (Task_graph.to_ascii f.Standard_flows.f5_graph)
             "(shared)"));
    t "dot rendering emits every node" (fun () ->
        let f = Standard_flows.fig5 () in
        let dot = Task_graph.to_dot f.Standard_flows.f5_graph in
        List.iter
          (fun (n : Task_graph.node) ->
            check Alcotest.bool "node present" true
              (Util.contains dot (Printf.sprintf "n%d " n.Task_graph.nid)))
          (Task_graph.nodes f.Standard_flows.f5_graph));
    t "canonical distinguishes sharing from copying" (fun () ->
        (* verification with one netlist used twice vs two distinct *)
        let g, v = Task_graph.create schema E.verification in
        let g, n1 = Task_graph.add_node g E.edited_netlist in
        let shared = Task_graph.connect g ~user:v ~role:"reference" ~dep:n1 in
        let shared = Task_graph.connect shared ~user:v ~role:"candidate" ~dep:n1 in
        let g2, n2 = Task_graph.add_node g E.edited_netlist in
        let copied = Task_graph.connect g2 ~user:v ~role:"reference" ~dep:n1 in
        let copied = Task_graph.connect copied ~user:v ~role:"candidate" ~dep:n2 in
        check Alcotest.bool "different" false (Canonical.equal shared copied));
  ]

(* property: round trip on random flows *)
let property_cases =
  let open QCheck2 in
  let flow_gen =
    Gen.map
      (fun (seed, steps) -> Flow_gen.random_flow seed steps)
      Gen.(pair (int_bound 1_000_000) (int_range 1 25))
  in
  [
    Util.qcheck "sexp round-trip on random flows" flow_gen (fun g ->
        Canonical.equal g (Sexp_form.of_string schema (Sexp_form.to_string g)));
    Util.qcheck "lossless flowmaps round-trip" flow_gen (fun g ->
        let b = Bipartite.of_graph g in
        (not (Bipartite.lossless b))
        ||
        (* to_graph only reconstructs data and activities; tool leaves
           of the original remain, so compare data/activity structure *)
        let g' = Bipartite.to_graph schema b in
        let b' = Bipartite.of_graph g' in
        List.length b'.Bipartite.activities = List.length b.Bipartite.activities
        && List.length b'.Bipartite.data = List.length b.Bipartite.data);
  ]

let suite =
  [
    ("representations.fig3", suite_cases);
    ("representations.properties", property_cases);
  ]
