(* Tests for the simulation substrate: stimuli, waveforms, the
   event-driven and compiled simulators, device models, performance
   analysis and the plotter. *)

open Ddf_eda

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let stimuli_tests =
  [
    t "exhaustive covers 2^n vectors" (fun () ->
        check Alcotest.int "8" 8
          (Stimuli.length (Stimuli.exhaustive [ "a"; "b"; "c" ])));
    t "exhaustive is LSB-first" (fun () ->
        let s = Stimuli.exhaustive [ "a"; "b" ] in
        match Stimuli.vectors s with
        | [ v0; v1; _; _ ] ->
          check Alcotest.bool "v0 all zero" true
            (List.for_all (fun (_, x) -> x = Logic.V0) v0);
          check Alcotest.bool "v1 a=1" true (List.assoc "a" v1 = Logic.V1);
          check Alcotest.bool "v1 b=0" true (List.assoc "b" v1 = Logic.V0)
        | _ -> Alcotest.fail "wrong count");
    Util.expect_exn "exhaustive rejects too many inputs"
      (function Stimuli.Stimuli_error _ -> true | _ -> false)
      (fun () -> Stimuli.exhaustive (List.init 21 string_of_int));
    t "walking ones" (fun () ->
        let s = Stimuli.walking_ones [ "a"; "b"; "c" ] in
        check Alcotest.int "3 vectors" 3 (Stimuli.length s);
        List.iteri
          (fun k vec ->
            let ones =
              List.filter (fun (_, x) -> x = Logic.V1) vec |> List.length
            in
            check Alcotest.int (Printf.sprintf "vector %d" k) 1 ones)
          (Stimuli.vectors s));
    t "random stimuli are deterministic per seed" (fun () ->
        let mk () = Stimuli.random ~inputs:[ "a"; "b" ] ~n:10 (Rng.create 7) in
        check Alcotest.string "hash equal" (Stimuli.hash (mk ()))
          (Stimuli.hash (mk ())));
  ]

let waveform_tests =
  [
    t "record and read back" (fun () ->
        let w = Waveform.empty in
        let w = Waveform.record w "n" 10 Logic.V1 in
        let w = Waveform.record w "n" 20 Logic.V0 in
        check Alcotest.bool "before" true (Waveform.value_at w "n" 5 = Logic.VX);
        check Alcotest.bool "at 10" true (Waveform.value_at w "n" 10 = Logic.V1);
        check Alcotest.bool "at 15" true (Waveform.value_at w "n" 15 = Logic.V1);
        check Alcotest.bool "at 25" true (Waveform.value_at w "n" 25 = Logic.V0));
    Util.expect_exn "backwards time rejected"
      (function Invalid_argument _ -> true | _ -> false)
      (fun () ->
        let w = Waveform.record Waveform.empty "n" 10 Logic.V1 in
        Waveform.record w "n" 5 Logic.V0);
    Util.expect_exn "redundant change rejected"
      (function Invalid_argument _ -> true | _ -> false)
      (fun () ->
        let w = Waveform.record Waveform.empty "n" 10 Logic.V1 in
        Waveform.record w "n" 20 Logic.V1);
    t "sampling" (fun () ->
        let w = Waveform.record Waveform.empty "n" 10 Logic.V1 in
        let w = Waveform.set_end_time w 30 in
        check Alcotest.int "samples" 4
          (List.length (Waveform.sample w "n" ~step_ps:10)));
  ]

let simulator_tests =
  let rng = Rng.create 2024 in
  [
    t "event sim settles to functional values" (fun () ->
        let nl = Circuits.full_adder () in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let r = Sim_event.run ~settle_ps:2000 nl stim in
        let last = List.nth (Stimuli.vectors stim) 7 in
        check Alcotest.bool "matches eval" true
          (Sim_event.final_outputs r nl = Netlist.eval nl last));
    t "event sim counts activity" (fun () ->
        let nl = Circuits.c17 () in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let r = Sim_event.run nl stim in
        check Alcotest.bool "events happened" true
          (r.Sim_event.stats.Sim_event.events_processed > 0);
        check Alcotest.bool "gates evaluated" true
          (r.Sim_event.stats.Sim_event.gate_evaluations
           >= r.Sim_event.stats.Sim_event.events_processed / 4));
    t "hazard pulses are captured, steady state is right" (fun () ->
        (* y = a AND not a: glitches on a's rise, settles to 0 *)
        let nl =
          Netlist.create ~name:"glitch" ~primary_inputs:[ "a" ]
            ~primary_outputs:[ "y" ]
            [
              Netlist.gate "gn" Logic.Not [ "a" ] "na";
              Netlist.gate "ga" Logic.And [ "a"; "na" ] "y";
            ]
        in
        let stim =
          Stimuli.create ~interval_ps:1000
            [ [ ("a", Logic.V0) ]; [ ("a", Logic.V1) ] ]
        in
        let r = Sim_event.run ~settle_ps:1000 nl stim in
        check Alcotest.bool "settles to 0" true
          (Waveform.final_value r.Sim_event.waveform "y" = Logic.V0));
    t "compiled simulator instruction count" (fun () ->
        let nl = Circuits.c17 () in
        check Alcotest.int "6 instructions" 6
          (Sim_compiled.instruction_count (Sim_compiled.compile nl)));
    t "compiled simulator runs per vector" (fun () ->
        let nl = Circuits.full_adder () in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let responses = Sim_compiled.run (Sim_compiled.compile nl) stim in
        check Alcotest.int "8 responses" 8 (List.length responses);
        List.iter2
          (fun resp vec ->
            check Alcotest.bool "matches eval" true (resp = Netlist.eval nl vec))
          responses (Stimuli.vectors stim));
    Util.qcheck ~count:50 "event == compiled == eval on random circuits"
      QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 40))
      (fun (seed, n_gates) ->
        let rng = Rng.create seed in
        let nl = Circuits.random ~n_inputs:4 ~n_gates rng in
        let stim = Stimuli.for_netlist ~n:6 nl rng in
        let last = List.nth (Stimuli.vectors stim) (Stimuli.length stim - 1) in
        let ev =
          Sim_event.final_outputs (Sim_event.run ~settle_ps:5000 nl stim) nl
        in
        let co =
          List.nth
            (Sim_compiled.run (Sim_compiled.compile nl) stim)
            (Stimuli.length stim - 1)
        in
        ev = Netlist.eval nl last && co = Netlist.eval nl last);
    t "device models scale delay" (fun () ->
        let nl = Circuits.ripple_adder 4 in
        let slow = Performance.critical_path ~model:Device_model.low_power nl in
        let fast = Performance.critical_path ~model:Device_model.fast nl in
        check Alcotest.bool "fast < slow" true (fast < slow));
    t "drive strength shortens the critical path" (fun () ->
        let nl = Circuits.ripple_adder 4 in
        let boosted =
          List.fold_left
            (fun acc (g : Netlist.gate) -> Netlist.set_drive acc g.Netlist.gname 4)
            nl nl.Netlist.gates
        in
        check Alcotest.bool "boosted faster" true
          (Performance.critical_path boosted < Performance.critical_path nl));
    Util.expect_exn "model with vth above vdd rejected"
      (function Device_model.Model_error _ -> true | _ -> false)
      (fun () ->
        Device_model.create ~model_name:"bad" ~process_nm:800 ~vdd_mv:1000
          ~vth_mv:1500 ~delay_scale:1.0 ~power_scale:1.0);
    t "model edits compose" (fun () ->
        let m =
          Device_model.apply_edits Device_model.default
            [ Device_model.Scale_delay 0.5; Device_model.Rename "half" ]
        in
        check Alcotest.string "renamed" "half" m.Device_model.model_name;
        check (Alcotest.float 1e-9) "scaled" 0.5 m.Device_model.delay_scale);
    t "performance analysis is reproducible" (fun () ->
        let nl = Circuits.full_adder () in
        let stim = Stimuli.for_netlist ~n:8 nl rng in
        let p1 = Performance.analyze nl stim and p2 = Performance.analyze nl stim in
        check Alcotest.string "same hash" (Performance.hash p1)
          (Performance.hash p2));
    t "output signature distinguishes circuits" (fun () ->
        let stim = Stimuli.exhaustive [ "a"; "b"; "cin" ] in
        let p1 = Performance.analyze (Circuits.full_adder ()) stim in
        let broken =
          Netlist.set_drive (Circuits.full_adder ()) "g_sum" 4
        in
        let p2 = Performance.analyze broken stim in
        (* drives change timing but not the function *)
        check Alcotest.string "same function" p1.Performance.output_signature
          p2.Performance.output_signature);
    t "plot renders every net" (fun () ->
        let nl = Circuits.full_adder () in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let r = Sim_event.run nl stim in
        let p =
          Plot.of_simulation ~title:"fa" r [ "a"; "b"; "cin"; "sum"; "cout" ]
        in
        List.iter
          (fun net ->
            check Alcotest.bool net true (Util.contains p.Plot.rendering net))
          p.Plot.nets_plotted);
    t "performance plot contains the metrics" (fun () ->
        let nl = Circuits.full_adder () in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let p = Plot.of_performance (Performance.analyze nl stim) in
        check Alcotest.bool "critical path" true
          (Util.contains p.Plot.rendering "critical path"));
  ]

let optimizer_tests =
  [
    t "all strategies improve or preserve the cost" (fun () ->
        let nl = Circuits.ripple_adder 4 in
        List.iter
          (fun strategy ->
            let _, r = Optimize.run ~budget:100 strategy nl (Rng.create 5) in
            check Alcotest.bool (Optimize.strategy_name strategy) true
              (r.Optimize.final_cost <= r.Optimize.initial_cost))
          Optimize.all_strategies);
    t "optimization preserves the function" (fun () ->
        let nl = Circuits.full_adder () in
        let optimized, _ =
          Optimize.run ~budget:60 Optimize.Hill_climb nl (Rng.create 9)
        in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let run n = Sim_compiled.run (Sim_compiled.compile n) stim in
        check Alcotest.bool "same responses" true
          (List.map (List.map snd) (run nl)
           = List.map (List.map snd) (run optimized)));
    t "budget bounds evaluations" (fun () ->
        let _, r =
          Optimize.run ~budget:30 Optimize.Annealing (Circuits.c17 ())
            (Rng.create 3)
        in
        check Alcotest.bool "bounded" true (r.Optimize.evaluations <= 31));
  ]

let suite =
  [
    ("eda.stimuli", stimuli_tests);
    ("eda.waveform", waveform_tests);
    ("eda.simulation", simulator_tests);
    ("eda.optimize", optimizer_tests);
  ]

(* Sequential circuits: flops, cycle-based simulation. *)
let sequential_tests =
  [
    t "counter counts" (fun () ->
        let nl = Circuits.counter 3 in
        let en = [ ("en", Logic.V1) ] in
        let outs = Netlist.run_cycles nl [ en; en; en; en; en ] in
        let as_int vals =
          List.fold_left
            (fun (acc, i) (_, v) ->
              match Logic.to_bool v with
              | Some true -> (acc lor (1 lsl i), i + 1)
              | Some false -> (acc, i + 1)
              | None -> Alcotest.fail "X in counter")
            (0, 0) vals
          |> fst
        in
        check (Alcotest.list Alcotest.int) "0..4" [ 0; 1; 2; 3; 4 ]
          (List.map as_int outs));
    t "counter holds when disabled" (fun () ->
        let nl = Circuits.counter 2 in
        let en = [ ("en", Logic.V1) ] and off = [ ("en", Logic.V0) ] in
        let outs = Netlist.run_cycles nl [ en; off; off; en ] in
        match outs with
        | [ _; b; c; _ ] -> check Alcotest.bool "held" true (b = c)
        | _ -> Alcotest.fail "wrong cycle count");
    t "shift register delays by n" (fun () ->
        let nl = Circuits.shift_register 3 in
        let v b = [ ("din", Logic.of_bool b) ] in
        let outs =
          Netlist.run_cycles nl [ v true; v false; v false; v false; v false ]
        in
        (* the pulse appears at the output on the 4th cycle *)
        check Alcotest.bool "delayed pulse" true
          (List.map (fun o -> List.assoc "q2" o) outs
           = [ Logic.V0; Logic.V0; Logic.V0; Logic.V1; Logic.V0 ]));
    t "lfsr4 has period 15" (fun () ->
        let nl = Circuits.lfsr4 () in
        let outs = Netlist.run_cycles nl (List.init 31 (fun _ -> [])) in
        let bits = List.map (fun o -> List.assoc "q3" o) outs in
        let first15 = List.filteri (fun i _ -> i < 15) bits in
        let second15 = List.filteri (fun i _ -> i >= 15 && i < 30) bits in
        check Alcotest.bool "periodic" true (first15 = second15);
        check Alcotest.bool "not constant" true
          (List.exists (fun b -> b <> List.hd bits) first15));
    t "compiled simulator agrees with run_cycles" (fun () ->
        let nl = Circuits.counter 4 in
        let vectors = List.init 20 (fun i -> [ ("en", Logic.of_bool (i mod 3 <> 0)) ]) in
        let stim = Stimuli.create vectors in
        let compiled = Sim_compiled.compile nl in
        check Alcotest.bool "same trajectory" true
          (Sim_compiled.run compiled stim = Netlist.run_cycles nl vectors));
    t "flop validation catches double drivers" (fun () ->
        match
          Netlist.create
            ~flops:[ Netlist.flop "f1" ~d:"a" ~q:"q"; Netlist.flop "f2" ~d:"a" ~q:"q" ]
            ~name:"bad" ~primary_inputs:[ "a" ] ~primary_outputs:[ "q" ] []
        with
        | _ -> Alcotest.fail "expected Netlist_error"
        | exception Netlist.Netlist_error _ -> ());
    t "event simulator refuses sequential designs" (fun () ->
        match
          Sim_event.run (Circuits.counter 2) (Stimuli.create [ [] ])
        with
        | _ -> Alcotest.fail "expected Simulation_error"
        | exception Sim_event.Simulation_error _ -> ());
    t "placer refuses sequential designs" (fun () ->
        match Layout.place (Circuits.lfsr4 ()) with
        | _ -> Alcotest.fail "expected Layout_error"
        | exception Layout.Layout_error _ -> ());
    t "hierarchical designs may contain sequential cells" (fun () ->
        let cell = Circuits.counter 2 in
        let h =
          Hier.create ~design_name:"two_counters"
            ~cells:[ ("counter", cell) ]
            ~top_inputs:[ "en" ] ~top_outputs:[ "a1"; "b1" ]
            [
              { Hier.inst_name = "u1"; cell = "counter";
                connections = [ ("en", "en"); ("q0", "a0"); ("q1", "a1") ] };
              { Hier.inst_name = "u2"; cell = "counter";
                connections = [ ("en", "en"); ("q0", "b0"); ("q1", "b1") ] };
            ]
        in
        let flat = Hier.flatten h in
        check Alcotest.bool "sequential flat" true (Netlist.is_sequential flat);
        let en = [ ("en", Logic.V1) ] in
        let outs = Netlist.run_cycles flat [ en; en; en ] in
        (* both counters march in lockstep: a1 = b1 always *)
        check Alcotest.bool "lockstep" true
          (List.for_all
             (fun o -> List.assoc "a1" o = List.assoc "b1" o)
             outs));
    t "sequential netlists persist" (fun () ->
        let v = Ddf_data.Netlist (Circuits.lfsr4 ()) in
        let v2 =
          Ddf_persist.Codec.value_of_sexp (Ddf_persist.Codec.value_to_sexp v)
        in
        check Alcotest.string "hash" (Ddf_data.hash v) (Ddf_data.hash v2));
  ]

let suite = suite @ [ ("eda.sequential", sequential_tests) ]
