(* Tests for the netlist substrate: construction, validation,
   evaluation, editing and the circuit zoo. *)

open Ddf_eda

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let expect_netlist_error name f =
  Util.expect_exn name
    (function Netlist.Netlist_error _ -> true | _ -> false)
    f

let v = Alcotest.testable (Fmt.of_to_string Logic.value_name) ( = )

let eval_bits nl bits =
  let env =
    List.map2
      (fun name b -> (name, Logic.of_bool b))
      nl.Netlist.primary_inputs bits
  in
  List.map snd (Netlist.eval nl env)

let logic_tests =
  [
    t "three-valued operators" (fun () ->
        check v "and x 0" Logic.V0 (Logic.v_and Logic.VX Logic.V0);
        check v "and x 1" Logic.VX (Logic.v_and Logic.VX Logic.V1);
        check v "or x 1" Logic.V1 (Logic.v_or Logic.VX Logic.V1);
        check v "or x 0" Logic.VX (Logic.v_or Logic.VX Logic.V0);
        check v "xor x 1" Logic.VX (Logic.v_xor Logic.VX Logic.V1);
        check v "not x" Logic.VX (Logic.v_not Logic.VX));
    t "n-ary evaluation" (fun () ->
        check v "nand3" Logic.V1
          (Logic.eval Logic.Nand [ Logic.V1; Logic.V1; Logic.V0 ]);
        check v "nor3" Logic.V0
          (Logic.eval Logic.Nor [ Logic.V0; Logic.V1; Logic.V0 ]);
        check v "xor3 parity" Logic.V1
          (Logic.eval Logic.Xor [ Logic.V1; Logic.V1; Logic.V1 ]));
    t "operator names round-trip" (fun () ->
        List.iter
          (fun op ->
            check Alcotest.bool (Logic.op_name op) true
              (Logic.op_of_name (Logic.op_name op) = Some op))
          Logic.all_ops);
    t "arity checks" (fun () ->
        check Alcotest.bool "not/1" true (Logic.arity_ok Logic.Not 1);
        check Alcotest.bool "not/2" false (Logic.arity_ok Logic.Not 2);
        check Alcotest.bool "and/1" false (Logic.arity_ok Logic.And 1);
        check Alcotest.bool "and/4" true (Logic.arity_ok Logic.And 4));
  ]

let construction_tests =
  [
    expect_netlist_error "multiple drivers" (fun () ->
        Netlist.create ~name:"bad" ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]
          [
            Netlist.gate "g1" Logic.Not [ "a" ] "y";
            Netlist.gate "g2" Logic.Buf [ "a" ] "y";
          ]);
    expect_netlist_error "undriven input" (fun () ->
        Netlist.create ~name:"bad" ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]
          [ Netlist.gate "g1" Logic.And [ "a"; "ghost" ] "y" ]);
    expect_netlist_error "driven primary input" (fun () ->
        Netlist.create ~name:"bad" ~primary_inputs:[ "a"; "b" ]
          ~primary_outputs:[ "b" ]
          [ Netlist.gate "g1" Logic.Not [ "a" ] "b" ]);
    expect_netlist_error "undriven primary output" (fun () ->
        Netlist.create ~name:"bad" ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]
          []);
    expect_netlist_error "duplicate gate name" (fun () ->
        Netlist.create ~name:"bad" ~primary_inputs:[ "a" ]
          ~primary_outputs:[ "x"; "y" ]
          [
            Netlist.gate "g" Logic.Not [ "a" ] "x";
            Netlist.gate "g" Logic.Not [ "a" ] "y";
          ]);
    expect_netlist_error "bad arity" (fun () ->
        ignore (Netlist.gate "g" Logic.And [ "a" ] "y"));
    expect_netlist_error "bad drive" (fun () ->
        ignore (Netlist.gate ~drive:3 "g" Logic.Not [ "a" ] "y"));
    expect_netlist_error "combinational cycle detected by levelize" (fun () ->
        let nl =
          Netlist.create ~name:"cyc" ~primary_inputs:[ "a" ]
            ~primary_outputs:[ "y" ]
            [
              Netlist.gate "g1" Logic.And [ "a"; "z" ] "y";
              Netlist.gate "g2" Logic.Buf [ "y" ] "z";
            ]
        in
        Netlist.levelize nl);
    t "depth of the full adder" (fun () ->
        check Alcotest.int "depth" 3 (Netlist.depth (Circuits.full_adder ())));
    t "transistor count grows with gates" (fun () ->
        check Alcotest.bool "positive" true
          (Netlist.transistor_count (Circuits.c17 ()) > 0));
    t "hash is stable and content-sensitive" (fun () ->
        let a = Circuits.c17 () and b = Circuits.c17 () in
        check Alcotest.string "same" (Netlist.hash a) (Netlist.hash b);
        let c = Netlist.set_drive a "g10" 2 in
        check Alcotest.bool "differs" false (Netlist.hash a = Netlist.hash c));
  ]

let eval_tests =
  [
    t "full adder truth table" (fun () ->
        let nl = Circuits.full_adder () in
        (* inputs a b cin -> sum cout *)
        let cases =
          [
            ([ false; false; false ], [ Logic.V0; Logic.V0 ]);
            ([ true; false; false ], [ Logic.V1; Logic.V0 ]);
            ([ true; true; false ], [ Logic.V0; Logic.V1 ]);
            ([ true; true; true ], [ Logic.V1; Logic.V1 ]);
            ([ false; true; true ], [ Logic.V0; Logic.V1 ]);
          ]
        in
        List.iter
          (fun (bits, expected) ->
            check (Alcotest.list v) "row" expected (eval_bits nl bits))
          cases);
    t "ripple adder adds" (fun () ->
        let nl = Circuits.ripple_adder 4 in
        let to_bits n k = List.init n (fun i -> (k lsr i) land 1 = 1) in
        let of_vals vals =
          List.fold_left
            (fun (acc, i) value ->
              match Logic.to_bool value with
              | Some true -> (acc lor (1 lsl i), i + 1)
              | Some false -> (acc, i + 1)
              | None -> Alcotest.fail "X output")
            (0, 0) vals
          |> fst
        in
        List.iter
          (fun (a, b, cin) ->
            let env = (cin = 1) :: List.concat (List.init 4 (fun i ->
                [ List.nth (to_bits 4 a) i; List.nth (to_bits 4 b) i ]))
            in
            let out = of_vals (eval_bits nl env) in
            check Alcotest.int
              (Printf.sprintf "%d+%d+%d" a b cin)
              (a + b + cin) out)
          [ (3, 5, 0); (15, 1, 0); (9, 9, 1); (0, 0, 1); (15, 15, 1) ]);
    t "parity tree" (fun () ->
        let nl = Circuits.parity 8 in
        let bits = [ true; false; true; true; false; false; true; false ] in
        check (Alcotest.list v) "odd parity" [ Logic.V0 ] (eval_bits nl bits);
        let bits = [ true; false; true; true; false; false; true; true ] in
        check (Alcotest.list v) "even parity" [ Logic.V1 ] (eval_bits nl bits));
    t "mux4 selects" (fun () ->
        let nl = Circuits.mux4 () in
        (* d0..d3, s0, s1 *)
        let sel s0 s1 d =
          let bits = [ d = 0; d = 1; d = 2; d = 3; s0; s1 ] in
          eval_bits nl bits = [ Logic.V1 ]
        in
        check Alcotest.bool "00->d0" true (sel false false 0);
        check Alcotest.bool "10->d1" true (sel true false 1);
        check Alcotest.bool "01->d2" true (sel false true 2);
        check Alcotest.bool "11->d3" true (sel true true 3));
    t "X propagates through eval" (fun () ->
        let nl = Circuits.inverter () in
        check (Alcotest.list v) "X in, X out" [ Logic.VX ] (Netlist.eval nl [] |> List.map snd));
  ]

let edit_tests =
  [
    t "add and remove a gate" (fun () ->
        let nl = Circuits.c17 () in
        let nl2 =
          Netlist.add_gate nl (Netlist.gate "extra" Logic.Not [ "n22" ] "n24")
        in
        check Alcotest.int "one more" (Netlist.gate_count nl + 1)
          (Netlist.gate_count nl2);
        let nl3 = Netlist.remove_gate nl2 "extra" in
        check Alcotest.bool "hash restored" true
          (Netlist.hash { nl3 with Netlist.name = nl.Netlist.name }
           = Netlist.hash nl));
    expect_netlist_error "removing a needed gate breaks validation" (fun () ->
        Netlist.remove_gate (Circuits.c17 ()) "g22");
    t "edit script applies in order" (fun () ->
        let script =
          Edit_script.create ~name:"s"
            [
              Edit_script.Set_drive ("g10", 4);
              Edit_script.Insert_buffer { net = "n11"; gname = "b1" };
              Edit_script.Rename "c17v2";
            ]
        in
        let nl = Edit_script.apply (Circuits.c17 ()) script in
        check Alcotest.string "renamed" "c17v2" nl.Netlist.name;
        check Alcotest.int "buffer added" 7 (Netlist.gate_count nl);
        match Netlist.find_gate nl "g10" with
        | Some g -> check Alcotest.int "drive" 4 g.Netlist.drive
        | None -> Alcotest.fail "gate lost");
    t "insert_buffer preserves function" (fun () ->
        let nl = Circuits.full_adder () in
        let script =
          Edit_script.create
            [ Edit_script.Insert_buffer { net = "x1"; gname = "b" } ]
        in
        let nl2 = Edit_script.apply nl script in
        let stim = Stimuli.exhaustive nl.Netlist.primary_inputs in
        let run n =
          let c = Sim_compiled.compile n in
          Sim_compiled.run c stim |> List.map (List.map snd)
        in
        check Alcotest.bool "equal responses" true (run nl = run nl2));
    Util.expect_exn "buffering an unread net fails"
      (function Edit_script.Edit_error _ -> true | _ -> false)
      (fun () ->
        Edit_script.apply (Circuits.full_adder ())
          (Edit_script.create
             [ Edit_script.Insert_buffer { net = "sum"; gname = "b" } ]));
  ]

(* property tests over random netlists *)
let property_tests =
  let open QCheck2 in
  let netlist_gen =
    Gen.map
      (fun (seed, (n_inputs, n_gates)) ->
        Circuits.random ~n_inputs ~n_gates (Rng.create seed))
      Gen.(pair (int_bound 1_000_000) (pair (int_range 2 6) (int_range 1 60)))
  in
  [
    Util.qcheck "random netlists validate" netlist_gen (fun nl ->
        Netlist.validate nl;
        true);
    Util.qcheck "levelize covers every gate" netlist_gen (fun nl ->
        List.length (Netlist.levelize nl) = Netlist.gate_count nl);
    Util.qcheck "eval is deterministic" netlist_gen (fun nl ->
        let rng = Rng.create 1 in
        let env =
          List.map
            (fun i -> (i, Logic.of_bool (Rng.bool rng)))
            nl.Netlist.primary_inputs
        in
        Netlist.eval nl env = Netlist.eval nl env);
    Util.qcheck "binary eval yields no X" netlist_gen (fun nl ->
        let rng = Rng.create 2 in
        let env =
          List.map
            (fun i -> (i, Logic.of_bool (Rng.bool rng)))
            nl.Netlist.primary_inputs
        in
        List.for_all (fun (_, x) -> x <> Logic.VX) (Netlist.eval nl env));
  ]

let suite =
  [
    ("eda.logic", logic_tests);
    ("eda.netlist.construction", construction_tests);
    ("eda.netlist.eval", eval_tests);
    ("eda.netlist.edit", edit_tests);
    ("eda.netlist.properties", property_tests);
  ]
