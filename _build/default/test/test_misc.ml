(* Coverage for smaller APIs: renderings, hashes, the RNG, engine cost
   accounting, file round trips. *)

open Ddf

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let rng_tests =
  [
    t "int respects bounds" (fun () ->
        let rng = Eda.Rng.create 1 in
        for _ = 1 to 1000 do
          let x = Eda.Rng.int rng 7 in
          check Alcotest.bool "in range" true (x >= 0 && x < 7)
        done);
    t "float is in [0,1)" (fun () ->
        let rng = Eda.Rng.create 2 in
        for _ = 1 to 1000 do
          let x = Eda.Rng.float rng in
          check Alcotest.bool "in range" true (x >= 0.0 && x < 1.0)
        done);
    t "same seed, same stream" (fun () ->
        let a = Eda.Rng.create 3 and b = Eda.Rng.create 3 in
        for _ = 1 to 50 do
          check Alcotest.int "lockstep" (Eda.Rng.int a 1000) (Eda.Rng.int b 1000)
        done);
    t "copy forks the stream" (fun () ->
        let a = Eda.Rng.create 4 in
        ignore (Eda.Rng.int a 10);
        let b = Eda.Rng.copy a in
        check Alcotest.int "same next" (Eda.Rng.int a 1000) (Eda.Rng.int b 1000));
    t "shuffle permutes" (fun () ->
        let rng = Eda.Rng.create 5 in
        let l = List.init 20 Fun.id in
        let s = Eda.Rng.shuffle rng l in
        check Alcotest.(slist int compare) "same elements" l s);
    Util.expect_exn "int rejects non-positive bounds"
      (function Invalid_argument _ -> true | _ -> false)
      (fun () -> Eda.Rng.int (Eda.Rng.create 6) 0);
    t "rough uniformity" (fun () ->
        let rng = Eda.Rng.create 7 in
        let buckets = Array.make 4 0 in
        for _ = 1 to 4000 do
          let i = Eda.Rng.int rng 4 in
          buckets.(i) <- buckets.(i) + 1
        done;
        Array.iter
          (fun n -> check Alcotest.bool "within 20%" true (n > 800 && n < 1200))
          buckets);
  ]

let rendering_tests =
  [
    t "waveform plot shows transitions" (fun () ->
        let nl = Eda.Circuits.inverter () in
        let stim =
          Eda.Stimuli.create ~interval_ps:500
            [ [ ("in", Eda.Logic.V0) ]; [ ("in", Eda.Logic.V1) ] ]
        in
        let r = Eda.Sim_event.run ~settle_ps:500 nl stim in
        let p = Eda.Plot.of_simulation ~title:"inv" r [ "in"; "out" ] in
        check Alcotest.bool "low glyph" true (Util.contains p.Eda.Plot.rendering "_");
        check Alcotest.bool "high glyph" true (Util.contains p.Eda.Plot.rendering "#"));
    t "schema dot output is well-formed" (fun () ->
        let dot = Schema.to_dot Standard_schemas.odyssey in
        check Alcotest.bool "digraph" true (Util.contains dot "digraph");
        check Alcotest.bool "dashed optional arcs" true
          (Util.contains dot "style=dashed"));
    t "task graph dot marks tool edges bold" (fun () ->
        let f = Standard_flows.fig3 () in
        check Alcotest.bool "bold" true
          (Util.contains (Task_graph.to_dot f.Standard_flows.f3_graph)
             "style=bold"));
    t "sta path report prints" (fun () ->
        let report =
          Eda.Performance.critical_path_report (Eda.Circuits.c17 ())
        in
        let text = Fmt.str "%a" Eda.Performance.pp_path report in
        check Alcotest.bool "has start" true (Util.contains text "(start)");
        check Alcotest.bool "has via" true (Util.contains text "via "));
    t "value summaries are informative" (fun () ->
        check Alcotest.bool "netlist" true
          (Util.contains
             (Value.summary (Value.Netlist (Eda.Circuits.c17 ())))
             "c17");
        check Alcotest.bool "blob" true
          (Util.contains
             (Value.summary (Value.Blob { blob_kind = "draft"; text = "hi" }))
             "draft"));
  ]

let engine_accounting_tests =
  [
    t "costs cover exactly the executed invocations" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let layout_iid =
          Workspace.install_layout w (Eda.Layout.place (Eda.Circuits.c17 ()))
        in
        let g, ext = Task_graph.create (Workspace.schema w) Standard_schemas.E.extracted_netlist in
        let g, fresh = Task_graph.expand g ext in
        let extractor, lay =
          match fresh with [ a; b ] -> (a, b) | _ -> assert false
        in
        let run =
          Engine.execute ctx g
            ~bindings:
              [ (extractor, Workspace.tool w Standard_schemas.E.extractor);
                (lay, layout_iid) ]
        in
        check Alcotest.int "one cost entry"
          (run.Engine.stats.Engine.executed + run.Engine.stats.Engine.composed)
          (List.length run.Engine.costs);
        List.iter
          (fun (_, c) -> check Alcotest.bool "positive" true (c > 0))
          run.Engine.costs);
    t "latest_version finds the newest" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let v0 = Workspace.install_netlist w (Eda.Circuits.c17 ()) in
        check Alcotest.int "own latest" v0 (Consistency.latest_version ctx v0);
        let session =
          Workspace.install_editor_session w
            (Eda.Edit_script.create [ Eda.Edit_script.Rename "v2" ])
        in
        let g, out = Task_graph.create (Workspace.schema w) Standard_schemas.E.edited_netlist in
        let g, fresh = Task_graph.expand g out in
        let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let run = Engine.execute ctx g ~bindings:[ (editor, session); (src, v0) ] in
        let v1 = Engine.result_of run out in
        check Alcotest.int "newest" v1 (Consistency.latest_version ctx v0));
  ]

let file_tests =
  [
    t "blif files round-trip on disk" (fun () ->
        let path = Filename.temp_file "ddf_test" ".blif" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let nl = Eda.Circuits.full_adder () in
            Eda.Blif.to_file path nl;
            let nl2 = Eda.Blif.of_file path in
            check Alcotest.bool "equivalent" true
              (Eda.Lvs.compare_netlists nl nl2).Eda.Lvs.equivalent));
    t "workspace files round-trip on disk" (fun () ->
        let path = Filename.temp_file "ddf_test" ".ddf" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let w = Workspace.create () in
            ignore (Workspace.install_netlist w (Eda.Circuits.c17 ()));
            Persist.save_file (Workspace.session w) path;
            let s2 = Persist.load_file Standard_schemas.odyssey path in
            check Alcotest.int "instances"
              (Store.instance_count (Workspace.store w))
              (Store.instance_count (Session.context s2).Engine.store)));
  ]

let suite =
  [
    ("misc.rng", rng_tests);
    ("misc.rendering", rendering_tests);
    ("misc.accounting", engine_accounting_tests);
    ("misc.files", file_tests);
  ]

let sequential_bench_tests =
  [
    t "s27 simulates deterministically" (fun () ->
        let nl = Eda.Circuits.s27 () in
        let rng = Eda.Rng.create 12 in
        let vectors =
          List.init 50 (fun _ ->
              List.map
                (fun n -> (n, Eda.Logic.of_bool (Eda.Rng.bool rng)))
                nl.Eda.Netlist.primary_inputs)
        in
        let a = Eda.Netlist.run_cycles nl vectors in
        let b = Eda.Netlist.run_cycles nl vectors in
        check Alcotest.bool "deterministic" true (a = b);
        check Alcotest.bool "binary outputs" true
          (List.for_all
             (List.for_all (fun (_, v) -> v <> Eda.Logic.VX))
             a);
        (* compiled agrees *)
        let stim = Eda.Stimuli.create vectors in
        check Alcotest.bool "compiled agrees" true
          (Eda.Sim_compiled.run (Eda.Sim_compiled.compile nl) stim = a));
    t "vcd export is well-formed" (fun () ->
        let nl = Eda.Circuits.full_adder () in
        let stim = Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs in
        let r = Eda.Sim_event.run ~settle_ps:1000 nl stim in
        let vcd =
          Eda.Vcd.to_string r.Eda.Sim_event.waveform
            [ "a"; "b"; "cin"; "sum"; "cout" ]
        in
        check Alcotest.bool "header" true
          (Util.contains vcd "$enddefinitions");
        check Alcotest.bool "var decls" true (Util.contains vcd "$var wire 1");
        check Alcotest.bool "time marks" true (Util.contains vcd "#");
        (* changes are time-ordered *)
        let times =
          String.split_on_char '\n' vcd
          |> List.filter_map (fun line ->
                 if String.length line > 1 && line.[0] = '#' then
                   int_of_string_opt (String.sub line 1 (String.length line - 1))
                 else None)
        in
        check Alcotest.bool "sorted" true
          (List.sort compare times = times));
    t "vcd identifiers are distinct" (fun () ->
        let ids = List.init 300 Eda.Vcd.identifier in
        check Alcotest.int "unique" 300
          (List.length (List.sort_uniq compare ids)));
    Util.expect_exn "vcd rejects unknown nets"
      (function Eda.Vcd.Vcd_error _ -> true | _ -> false)
      (fun () -> Eda.Vcd.to_string Eda.Waveform.empty [ "ghost" ]);
  ]

let suite = suite @ [ ("misc.sequential_bench", sequential_bench_tests) ]

let scheduler_tests =
  [
    t "LPT beats or ties the other heuristics on skewed costs" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let g, _ = Standard_flows.wide_flow 6 in
        let bindings =
          Workspace.bind_catalog_tools w g
            ~already:
              (List.mapi
                 (fun i nid ->
                   ( nid,
                     Workspace.install_layout w
                       (Eda.Layout.place
                          ~name_suffix:(Printf.sprintf "_h%d" i)
                          (Eda.Circuits.ripple_adder (1 + (i * 3)))) ))
                 (Workspace.find_nodes g Standard_schemas.E.layout))
        in
        let run = Engine.execute ~memo:false ctx g ~bindings in
        let makespan h =
          (Parallel.schedule ~heuristic:h g ~costs:run.Engine.costs ~machines:2)
            .Parallel.makespan_us
        in
        check Alcotest.bool "lpt <= spt" true
          (makespan Parallel.Longest_first <= makespan Parallel.Shortest_first);
        check Alcotest.bool "lpt <= fifo" true
          (makespan Parallel.Longest_first <= makespan Parallel.Fifo));
    Util.expect_exn "ordering count overflows are reported"
      (function Baselines.Freedom.Too_many _ -> true | _ -> false)
      (fun () ->
        Baselines.Freedom.legal_orderings ~cap:1000
          (fst (Standard_flows.wide_flow 16)));
    t "removing an unused entity revalidates" (fun () ->
        let s =
          Schema.add_entity Standard_schemas.odyssey (Schema.tool "scratch" [])
        in
        let s = Schema.remove_entity s "scratch" in
        check Alcotest.bool "gone" false (Schema.mem s "scratch"));
    t "pre-bound inner nodes are not recomputed" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        (* compute an extraction, then reuse the result as a binding for
           the inner node of a larger flow *)
        let layout_iid =
          Workspace.install_layout w (Eda.Layout.place (Eda.Circuits.c17 ()))
        in
        let g, ext = Task_graph.create (Workspace.schema w) Standard_schemas.E.extracted_netlist in
        let g, fresh = Task_graph.expand g ext in
        let extractor, lay = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let run =
          Engine.execute ctx g
            ~bindings:
              [ (extractor, Workspace.tool w Standard_schemas.E.extractor);
                (lay, layout_iid) ]
        in
        let extracted = Engine.result_of run ext in
        (* grow the flow upward and bind the extraction node directly *)
        let g, _verification, fresh2 =
          Task_graph.expand_up ~role:"candidate" g ext
            ~consumer:Standard_schemas.E.verification
        in
        let bindings =
          (ext, extracted)
          :: List.filter_map
               (fun nid ->
                 let e = Task_graph.entity_of g nid in
                 if e = Standard_schemas.E.verifier then
                   Some (nid, Workspace.tool w Standard_schemas.E.verifier)
                 else if e = Standard_schemas.E.netlist then
                   Some (nid, extracted)
                 else None)
               fresh2
        in
        let run2 = Engine.execute ~memo:false ctx g ~bindings in
        (* only the verification executed; the extraction was pre-bound *)
        check Alcotest.int "one task" 1 run2.Engine.stats.Engine.executed);
    t "sexp pretty and compact forms parse the same" (fun () ->
        let w = Workspace.create () in
        ignore (Workspace.install_netlist w (Eda.Circuits.full_adder ()));
        let text = Persist.save (Workspace.session w) in
        let sexp = Sexp.of_string text in
        check Alcotest.bool "compact round-trip" true
          (Sexp.of_string (Sexp.to_string ~pretty:false sexp) = sexp));
  ]

let suite = suite @ [ ("misc.scheduler", scheduler_tests) ]
