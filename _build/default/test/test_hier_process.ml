(* Tests for hierarchical designs (Hier) and the Minerva-style design
   process level (Process). *)

open Ddf
module E = Standard_schemas.E
module H = Eda.Hier

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let expect_hier_error name f =
  Util.expect_exn name (function H.Hier_error _ -> true | _ -> false) f

let hier_tests =
  [
    t "assembled adder equals the monolithic one" (fun () ->
        let flat = H.flatten (H.adder_of_cells 4) in
        let reference = Eda.Circuits.ripple_adder 4 in
        let truth nl =
          Eda.Sim_compiled.run (Eda.Sim_compiled.compile nl)
            (Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs)
          |> List.map (List.map snd)
        in
        check Alcotest.bool "same function" true (truth flat = truth reference));
    t "flattening prefixes internal names" (fun () ->
        let flat = H.flatten (H.adder_of_cells 2) in
        check Alcotest.bool "prefixed gates" true
          (List.exists
             (fun (g : Eda.Netlist.gate) ->
               Util.contains g.Eda.Netlist.gname "fa1.")
             flat.Eda.Netlist.gates));
    t "gate_count matches the flat netlist" (fun () ->
        let h = H.adder_of_cells 3 in
        check Alcotest.int "count" (H.gate_count h)
          (Eda.Netlist.gate_count (H.flatten h)));
    t "flat design survives place+extract+lvs" (fun () ->
        let flat = H.flatten (H.adder_of_cells 2) in
        let extracted, stats = Eda.Extract.run (Eda.Layout.place flat) in
        check Alcotest.int "no opens" 0 stats.Eda.Extract.opens;
        check Alcotest.bool "lvs" true
          (Eda.Lvs.compare_netlists flat extracted).Eda.Lvs.equivalent);
    expect_hier_error "unknown cell" (fun () ->
        H.create ~design_name:"bad" ~cells:[] ~top_inputs:[ "a" ]
          ~top_outputs:[ "y" ]
          [ { H.inst_name = "u1"; cell = "ghost"; connections = [] } ]);
    expect_hier_error "unconnected cell input" (fun () ->
        H.create ~design_name:"bad"
          ~cells:[ ("inv", Eda.Circuits.inverter ()) ]
          ~top_inputs:[ "a" ] ~top_outputs:[ "y" ]
          [ { H.inst_name = "u1"; cell = "inv"; connections = [ ("out", "y") ] } ]);
    expect_hier_error "two drivers on one net" (fun () ->
        let inv = Eda.Circuits.inverter () in
        H.create ~design_name:"bad" ~cells:[ ("inv", inv) ]
          ~top_inputs:[ "a" ] ~top_outputs:[ "y" ]
          [
            { H.inst_name = "u1"; cell = "inv";
              connections = [ ("in", "a"); ("out", "y") ] };
            { H.inst_name = "u2"; cell = "inv";
              connections = [ ("in", "a"); ("out", "y") ] };
          ]);
    expect_hier_error "unknown port" (fun () ->
        H.create ~design_name:"bad"
          ~cells:[ ("inv", Eda.Circuits.inverter ()) ]
          ~top_inputs:[ "a" ] ~top_outputs:[ "y" ]
          [ { H.inst_name = "u1"; cell = "inv";
              connections = [ ("in", "a"); ("zap", "y") ] } ]);
    expect_hier_error "duplicate instance names" (fun () ->
        let inv = Eda.Circuits.inverter () in
        H.create ~design_name:"bad" ~cells:[ ("inv", inv) ]
          ~top_inputs:[ "a" ] ~top_outputs:[ "y"; "z" ]
          [
            { H.inst_name = "u1"; cell = "inv";
              connections = [ ("in", "a"); ("out", "y") ] };
            { H.inst_name = "u1"; cell = "inv";
              connections = [ ("in", "a"); ("out", "z") ] };
          ]);
    t "glue logic participates" (fun () ->
        let inv = Eda.Circuits.inverter () in
        let h =
          H.create ~design_name:"glued" ~cells:[ ("inv", inv) ]
            ~top_inputs:[ "a"; "b" ] ~top_outputs:[ "y" ]
            ~glue:[ Eda.Netlist.gate "g_and" Eda.Logic.And [ "na"; "b" ] "y" ]
            [ { H.inst_name = "u1"; cell = "inv";
                connections = [ ("in", "a"); ("out", "na") ] } ]
        in
        let flat = H.flatten h in
        check Alcotest.int "two gates" 2 (Eda.Netlist.gate_count flat);
        check Alcotest.bool "function" true
          (Eda.Netlist.eval flat
             [ ("a", Eda.Logic.V0); ("b", Eda.Logic.V1) ]
           = [ ("y", Eda.Logic.V1) ]));
  ]

(* ------------------------------------------------------------------ *)

let setup_process () =
  let w = Workspace.create ~user:"lead" () in
  let ctx = Workspace.ctx w in
  let process =
    Process.create ~process_name:"p"
      (Process.cell "top"
         ~requirements:[ Process.require E.extracted_netlist ]
         ~children:
           [
             Process.cell "alu"
               ~requirements:[ Process.require E.synthesized_layout ]
               ~assigned_to:"ann";
             Process.cell "regfile"
               ~requirements:[ Process.require E.synthesized_layout ]
               ~assigned_to:"bob";
           ])
  in
  (w, ctx, process)

let install_cell w name nl =
  Engine.install (Workspace.ctx w) ~entity:E.edited_netlist ~label:name
    ~keywords:[ Process.cell_keyword name ]
    (Value.Netlist nl)

let synthesize w iid =
  let ctx = Workspace.ctx w in
  let g, lay = Task_graph.create (Workspace.schema w) E.synthesized_layout in
  let g, fresh = Task_graph.expand ~include_optional:false g lay in
  let placer, nln = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let run =
    Engine.execute ctx g
      ~bindings:[ (placer, Workspace.tool w E.placer); (nln, iid) ]
  in
  Engine.result_of run lay

let process_tests =
  [
    Util.expect_exn "duplicate cells rejected"
      (function Process.Process_error _ -> true | _ -> false)
      (fun () ->
        Process.create ~process_name:"p"
          (Process.cell "x" ~children:[ Process.cell "x" ]));
    t "statuses evolve with the workspace" (fun () ->
        let w, ctx, process = setup_process () in
        let alu = Process.find_cell process "alu" in
        let req = List.hd alu.Process.requirements in
        check Alcotest.bool "no data" true
          (Process.requirement_status ctx alu req = Process.No_logic_view);
        let alu_iid = install_cell w "alu" (Eda.Circuits.full_adder ()) in
        check Alcotest.bool "missing" true
          (Process.requirement_status ctx alu req = Process.Missing);
        let _ = synthesize w alu_iid in
        (match Process.requirement_status ctx alu req with
        | Process.Met _ -> ()
        | _ -> Alcotest.fail "expected Met");
        check Alcotest.bool "cell complete" true
          (Process.report_cell ctx alu).Process.cr_complete);
    t "completion counts requirement-bearing cells" (fun () ->
        let w, ctx, process = setup_process () in
        check (Alcotest.float 0.01) "zero" 0.0 (Process.completion ctx process);
        let alu_iid = install_cell w "alu" (Eda.Circuits.full_adder ()) in
        let _ = synthesize w alu_iid in
        check (Alcotest.float 0.01) "one third" (1.0 /. 3.0)
          (Process.completion ctx process));
    t "worklist respects assignment and readiness" (fun () ->
        let w, ctx, process = setup_process () in
        check (Alcotest.list Alcotest.string) "nothing ready" []
          (Process.worklist ctx process ~designer:"ann");
        let _ = install_cell w "alu" (Eda.Circuits.full_adder ()) in
        let _ = install_cell w "regfile" (Eda.Circuits.c17 ()) in
        check (Alcotest.list Alcotest.string) "ann sees alu" [ "alu" ]
          (Process.worklist ctx process ~designer:"ann");
        check (Alcotest.list Alcotest.string) "bob sees regfile" [ "regfile" ]
          (Process.worklist ctx process ~designer:"bob"));
    t "an edit turns the status stale" (fun () ->
        let w, ctx, process = setup_process () in
        let alu = Process.find_cell process "alu" in
        let req = List.hd alu.Process.requirements in
        let alu_iid = install_cell w "alu" (Eda.Circuits.full_adder ()) in
        let _ = synthesize w alu_iid in
        (* edit the cell netlist *)
        let session =
          Workspace.install_editor_session w
            (Eda.Edit_script.create
               [ Eda.Edit_script.Insert_buffer { net = "x1"; gname = "e" } ])
        in
        let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
        let g, fresh = Task_graph.expand g out in
        let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let run =
          Engine.execute ctx g ~bindings:[ (editor, session); (src, alu_iid) ]
        in
        Store.annotate (Workspace.store w) (Engine.result_of run out)
          ~keywords:[ Process.cell_keyword "alu" ] ();
        (match Process.requirement_status ctx alu req with
        | Process.Stale _ -> ()
        | s -> Alcotest.failf "expected Stale, got %s" (Process.status_name s));
        (* refresh repairs it *)
        (match Process.requirement_status ctx alu req with
        | Process.Stale stale ->
          let _ = Consistency.refresh ctx stale in
          (match Process.requirement_status ctx alu req with
          | Process.Met _ -> ()
          | s -> Alcotest.failf "expected Met, got %s" (Process.status_name s))
        | _ -> assert false));
  ]

let suite =
  [ ("hier", hier_tests); ("process", process_tests) ]

let process_file_tests =
  let definition =
    "(process adder4_tapeout\n\
    \ (cell chip (requires extracted_netlist) (assigned jacome)\n\
    \  (cell full_adder (requires synthesized_layout) (assigned sutton))\n\
    \  (cell output_buffer (requires synthesized_layout))))"
  in
  [
    t "definitions parse" (fun () ->
        let p = Process_file.of_string definition in
        check Alcotest.string "name" "adder4_tapeout" (Process.process_name p);
        check Alcotest.int "three cells" 3
          (List.length (Process.all_cells (Process.root p)));
        let fa = Process.find_cell p "full_adder" in
        check (Alcotest.option Alcotest.string) "assignment" (Some "sutton")
          fa.Process.assigned_to);
    t "definitions round-trip" (fun () ->
        let p = Process_file.of_string definition in
        let p2 = Process_file.of_string (Process_file.to_string p) in
        check Alcotest.string "same text" (Process_file.to_string p)
          (Process_file.to_string p2));
    Util.expect_exn "malformed definitions rejected"
      (function Process_file.Process_file_error _ -> true | _ -> false)
      (fun () -> Process_file.of_string "(cell orphan)");
    Util.expect_exn "unknown cell item rejected"
      (function Process_file.Process_file_error _ -> true | _ -> false)
      (fun () -> Process_file.of_string "(process p (cell c (wibble x)))");
  ]

let suite = suite @ [ ("process.file", process_file_tests) ]
