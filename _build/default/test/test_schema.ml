(* Tests for the task schema (lib/schema). *)

open Ddf_schema
module E = Standard_schemas.E

let check = Alcotest.check

(* Alcotest lacks a "raises any Schema_error" helper; roll one. *)
let expect_schema_error name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | _ -> Alcotest.fail "expected Schema_error"
      | exception Schema.Schema_error _ -> ())

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)

let construction_tests =
  [
    t "fig1 builds and validates" (fun () ->
        check Alcotest.int "entity count" 20 (Schema.size Standard_schemas.fig1));
    t "odyssey builds and validates" (fun () ->
        Schema.validate Standard_schemas.odyssey);
    t "fig2 builds" (fun () -> Schema.validate Standard_schemas.fig2);
    expect_schema_error "duplicate entity" (fun () ->
        Schema.create "bad" [ Schema.entity "x" []; Schema.entity "x" [] ]);
    expect_schema_error "unknown dependency target" (fun () ->
        Schema.create "bad" [ Schema.entity "x" [ Schema.data "ghost" ] ]);
    expect_schema_error "two functional dependencies" (fun () ->
        Schema.create "bad"
          [
            Schema.tool "t1" [];
            Schema.tool "t2" [];
            Schema.entity "x"
              [ Schema.functional "t1"; Schema.functional ~role:"tool2" "t2" ];
          ]);
    expect_schema_error "functional dependency on data" (fun () ->
        Schema.create "bad"
          [ Schema.entity "d" []; Schema.entity "x" [ Schema.functional "d" ] ]);
    expect_schema_error "duplicate roles" (fun () ->
        Schema.create "bad"
          [
            Schema.entity "d" [];
            Schema.entity "x" [ Schema.data ~role:"r" "d"; Schema.data ~role:"r" "d" ];
          ]);
    expect_schema_error "unknown parent" (fun () ->
        Schema.create "bad" [ Schema.entity ~parent:"ghost" "x" [] ]);
    expect_schema_error "kind-changing subtype" (fun () ->
        Schema.create "bad"
          [ Schema.tool "t" []; Schema.entity ~parent:"t" "x" [] ]);
    expect_schema_error "mandatory cycle" (fun () ->
        Schema.create "bad"
          [
            Schema.entity "a" [ Schema.data "b" ];
            Schema.entity "b" [ Schema.data "a" ];
          ]);
    t "optional edge breaks a cycle" (fun () ->
        let s =
          Schema.create "ok"
            [
              Schema.entity "a" [ Schema.data "b" ];
              Schema.entity "b" [ Schema.data ~optional:true "a" ];
            ]
        in
        check Alcotest.int "two entities" 2 (Schema.size s));
    t "self-loop broken by optional" (fun () ->
        let s =
          Schema.create "ok"
            [
              Schema.tool "ed" [];
              Schema.entity "d"
                [ Schema.functional "ed"; Schema.data ~optional:true "d" ];
            ]
        in
        Schema.validate s);
    expect_schema_error "empty entity id" (fun () -> Schema.entity "" []);
    t "add_entity extends and validates" (fun () ->
        let s =
          Schema.add_entity Standard_schemas.fig1 (Schema.tool "new_router" [])
        in
        check Alcotest.bool "present" true (Schema.mem s "new_router"));
    expect_schema_error "add duplicate entity" (fun () ->
        Schema.add_entity Standard_schemas.fig1 (Schema.tool E.simulator []));
    expect_schema_error "remove entity leaves dangling deps" (fun () ->
        Schema.remove_entity Standard_schemas.fig1 E.simulator);
  ]

let subtyping_tests =
  let s = Standard_schemas.odyssey in
  [
    t "direct subtypes of netlist" (fun () ->
        check
          Alcotest.(slist string compare)
          "subs"
          [ E.extracted_netlist; E.edited_netlist; E.optimized_netlist ]
          (Schema.subtypes s E.netlist));
    t "is_subtype is reflexive" (fun () ->
        check Alcotest.bool "refl" true
          (Schema.is_subtype s ~sub:E.netlist ~super:E.netlist));
    t "is_subtype holds one level" (fun () ->
        check Alcotest.bool "sub" true
          (Schema.is_subtype s ~sub:E.extracted_netlist ~super:E.netlist));
    t "is_subtype fails across siblings" (fun () ->
        check Alcotest.bool "not" false
          (Schema.is_subtype s ~sub:E.extracted_netlist ~super:E.edited_netlist));
    t "root_of a subtype" (fun () ->
        check Alcotest.string "root" E.performance
          (Schema.root_of s E.switch_performance));
    t "ancestors nearest-first" (fun () ->
        check
          Alcotest.(list string)
          "anc" [ E.performance ]
          (Schema.ancestors s E.switch_performance));
    t "descendants of layout" (fun () ->
        check
          Alcotest.(slist string compare)
          "desc"
          [ E.edited_layout; E.synthesized_layout; E.pla_layout ]
          (Schema.descendants s E.layout));
  ]

let rule_tests =
  let s = Standard_schemas.odyssey in
  [
    t "abstract entity needs specialization" (fun () ->
        match Schema.construction_rule s E.netlist with
        | Schema.Abstract subs ->
          check Alcotest.int "three methods" 3 (List.length subs)
        | Schema.Constructed _ | Schema.Source ->
          Alcotest.fail "expected Abstract");
    t "source entity" (fun () ->
        check Alcotest.bool "stimuli is source" true
          (Schema.is_primitive_source s E.stimuli));
    t "composite entity" (fun () ->
        check Alcotest.bool "circuit is composite" true
          (Schema.is_composite s E.circuit));
    t "composite has no functional dep" (fun () ->
        check Alcotest.bool "none" true
          (Schema.functional_dep s E.circuit = None));
    t "performance has a functional dep on the simulator" (fun () ->
        match Schema.functional_dep s E.performance with
        | Some d -> check Alcotest.string "target" E.simulator d.Schema.target
        | None -> Alcotest.fail "missing");
    t "constructed tool (Fig. 2)" (fun () ->
        match Schema.construction_rule s E.compiled_simulator with
        | Schema.Constructed deps ->
          check Alcotest.int "two deps" 2 (List.length deps)
        | Schema.Abstract _ | Schema.Source -> Alcotest.fail "expected rule");
    t "subtype overrides parent rule" (fun () ->
        match Schema.functional_dep s E.switch_performance with
        | Some d ->
          check Alcotest.string "compiled sim" E.compiled_simulator d.Schema.target
        | None -> Alcotest.fail "missing");
    t "optional data deps of performance" (fun () ->
        let opt =
          List.filter
            (fun (d : Schema.dep) ->
              d.Schema.dep_kind = Schema.Data_dep { optional = true })
            (Schema.data_deps s E.performance)
        in
        check Alcotest.int "one optional" 1 (List.length opt));
  ]

let query_tests =
  let s = Standard_schemas.odyssey in
  [
    t "consumers of netlist include circuit and verification" (fun () ->
        let c = Schema.consumers s E.netlist in
        check Alcotest.bool "circuit" true (List.mem E.circuit c);
        check Alcotest.bool "verification" true (List.mem E.verification c));
    t "consumers accept subtypes" (fun () ->
        let c = Schema.consumers s E.extracted_netlist in
        check Alcotest.bool "circuit consumes subtypes" true
          (List.mem E.circuit c));
    t "verification consumes netlist through two roles" (fun () ->
        let roles =
          Schema.consuming_roles s E.netlist
          |> List.filter (fun (cid, _) -> cid = E.verification)
        in
        check Alcotest.int "two roles" 2 (List.length roles));
    t "goals of the extractor" (fun () ->
        check
          Alcotest.(slist string compare)
          "goals"
          [ E.extracted_netlist; E.extraction_statistics ]
          (Schema.goals_of_tool s E.extractor));
    t "coproduced outputs" (fun () ->
        check
          Alcotest.(list string)
          "stats with netlist"
          [ E.extraction_statistics ]
          (Schema.coproduced s E.extracted_netlist));
    t "coproduced is symmetric" (fun () ->
        check
          Alcotest.(list string)
          "netlist with stats"
          [ E.extracted_netlist ]
          (Schema.coproduced s E.extraction_statistics));
    t "dot export mentions every entity" (fun () ->
        let dot = Schema.to_dot s in
        List.iter
          (fun e ->
            check Alcotest.bool ("dot has " ^ e) true
              (Util.contains dot e))
          (Schema.entity_ids s));
  ]

let suite =
  [
    ("schema.construction", construction_tests);
    ("schema.subtyping", subtyping_tests);
    ("schema.rules", rule_tests);
    ("schema.queries", query_tests);
  ]
