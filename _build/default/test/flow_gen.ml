(* Random task-graph generation over the odyssey schema, for the
   property-based tests: a deterministic sequence of designer
   operations (expand, upward expand, specialize) driven by a seed. *)

open Ddf_schema
open Ddf_graph
module Rng = Ddf_eda.Rng

let schema = Standard_schemas.odyssey

let constructible =
  List.filter
    (fun e ->
      match Schema.construction_rule schema e with
      | Schema.Constructed _ -> true
      | Schema.Abstract _ | Schema.Source -> false)
    (Schema.entity_ids schema)

(* Specialize an abstract node to a random constructible subtype. *)
let specialize_randomly rng g nid =
  let subs =
    Schema.descendants schema (Task_graph.entity_of g nid)
    |> List.filter (fun e ->
           match Schema.construction_rule schema e with
           | Schema.Constructed _ -> true
           | Schema.Abstract _ | Schema.Source -> false)
  in
  match subs with
  | [] -> g
  | subs -> (
    try Task_graph.specialize g nid (Rng.pick rng subs)
    with Task_graph.Graph_error _ -> g)

let step rng g =
  let nodes = Task_graph.node_ids g in
  if nodes = [] then g
  else
    let nid = Rng.pick rng nodes in
    match Rng.int rng 4 with
    | 0 | 1 -> (
      (* downward expansion, specializing when required *)
      try fst (Task_graph.expand g nid) with
      | Task_graph.Needs_specialization _ -> specialize_randomly rng g nid
      | Task_graph.Graph_error _ -> g)
    | 2 -> (
      (* upward expansion to a random consumer *)
      let consumers = Schema.consumers schema (Task_graph.entity_of g nid) in
      match consumers with
      | [] -> g
      | consumers -> (
        let consumer = Rng.pick rng consumers in
        let roles =
          Schema.consuming_roles schema (Task_graph.entity_of g nid)
          |> List.filter (fun (c, _) -> c = consumer)
        in
        let role = (snd (Rng.pick rng roles)).Schema.role in
        try
          let g, _, _ = Task_graph.expand_up ~role g nid ~consumer in
          g
        with
        | Task_graph.Needs_specialization _ | Task_graph.Graph_error _ -> g))
    | _ -> specialize_randomly rng g nid

let random_flow seed steps =
  let rng = Rng.create seed in
  let start = Rng.pick rng constructible in
  let g, _ = Task_graph.create schema start in
  let rec go g n = if n = 0 then g else go (step rng g) (n - 1) in
  go g steps
