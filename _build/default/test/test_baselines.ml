(* Tests for the baseline systems: static flows, designer-freedom
   counting, trace capture, make-style rebuilds and version trees. *)

open Ddf
module E = Standard_schemas.E
module B = Baselines

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let static_flow_tests =
  [
    t "freezing fig5 yields one activity per invocation" (fun () ->
        let f = Standard_flows.fig5 () in
        let sf = B.Static_flow.of_task_graph f.Standard_flows.f5_graph in
        check Alcotest.int "five steps" 5 (B.Static_flow.length sf));
    t "the straight-jacket allows exactly the next step" (fun () ->
        let f = Standard_flows.fig5 () in
        let sf = B.Static_flow.of_task_graph f.Standard_flows.f5_graph in
        (match B.Static_flow.next_step sf ~completed:0 with
        | Some a -> check Alcotest.string "first" "step1" a.B.Static_flow.act_name
        | None -> Alcotest.fail "no first step");
        check Alcotest.bool "done" true
          (B.Static_flow.next_step sf ~completed:5 = None));
    t "conformance accepts only the mandated order" (fun () ->
        let f = Standard_flows.fig3 () in
        let sf = B.Static_flow.of_task_graph f.Standard_flows.f3_graph in
        let steps =
          List.map
            (fun a -> (a.B.Static_flow.hardwired_tool, a.B.Static_flow.produces))
            sf.B.Static_flow.activities
        in
        check Alcotest.bool "own order" true (B.Static_flow.conforms sf steps);
        check Alcotest.bool "reversed order" false
          (B.Static_flow.conforms sf (List.rev steps)));
    t "tool change burden counts affected flows" (fun () ->
        let mk g = B.Static_flow.of_task_graph g in
        let catalog =
          [
            mk (Standard_flows.fig3 ()).Standard_flows.f3_graph;
            mk (Standard_flows.fig5 ()).Standard_flows.f5_graph;
            mk (Standard_flows.fig8b ()).Standard_flows.f8b_graph;
          ]
        in
        check Alcotest.int "extractor appears in two flows" 2
          (B.Static_flow.maintenance_burden catalog ~tool:E.extractor);
        check Alcotest.int "placer appears in one" 1
          (B.Static_flow.maintenance_burden catalog ~tool:E.placer));
  ]

let freedom_tests =
  [
    t "a chain admits exactly one order" (fun () ->
        let g, _ = Standard_flows.edit_chain 4 in
        check Alcotest.int "one" 1 (B.Freedom.legal_orderings g));
    t "independent branches multiply orderings" (fun () ->
        let g, _ = Standard_flows.wide_flow 4 in
        (* 4 independent invocations: 4! orders *)
        check Alcotest.int "24" 24 (B.Freedom.legal_orderings g));
    t "fig5 admits several orders, the frozen flow one" (fun () ->
        let f = Standard_flows.fig5 () in
        let n = B.Freedom.legal_orderings f.Standard_flows.f5_graph in
        check Alcotest.bool "> 1" true (n > 1));
    t "prefixes dominate full orderings" (fun () ->
        let g, _ = Standard_flows.wide_flow 3 in
        check Alcotest.bool "prefixes > orders" true
          (B.Freedom.legal_prefixes g > B.Freedom.legal_orderings g));
  ]

let trace_tests =
  [
    t "capture and cut traces" (fun () ->
        let tc = B.Trace_capture.create () in
        B.Trace_capture.capture tc ~tool:"extractor" ~consumed:[ "lay.mag" ]
          ~produced:[ "net.sim" ];
        B.Trace_capture.capture tc ~tool:"simulator" ~consumed:[ "net.sim" ]
          ~produced:[ "perf.out" ];
        let tr = B.Trace_capture.cut tc "session1" in
        check Alcotest.int "two events" 2 (List.length tr.B.Trace_capture.events);
        check Alcotest.int "archived" 1
          (List.length (B.Trace_capture.archive tc)));
    t "replay substitutes object names" (fun () ->
        let tc = B.Trace_capture.create () in
        B.Trace_capture.capture tc ~tool:"extractor" ~consumed:[ "lay.mag" ]
          ~produced:[ "net.sim" ];
        let tr = B.Trace_capture.cut tc "proto" in
        let re =
          B.Trace_capture.replay tr ~substitute:[ ("lay.mag", "other.mag") ]
        in
        match re.B.Trace_capture.events with
        | [ e ] ->
          check (Alcotest.list Alcotest.string) "substituted" [ "other.mag" ]
            e.B.Trace_capture.ev_consumed
        | _ -> Alcotest.fail "wrong events");
    t "indexing is by concrete name only" (fun () ->
        let tc = B.Trace_capture.create () in
        B.Trace_capture.capture tc ~tool:"extractor" ~consumed:[ "lay.mag" ]
          ~produced:[ "net.sim" ];
        ignore (B.Trace_capture.cut tc "s1");
        check Alcotest.int "by name" 1
          (List.length (B.Trace_capture.traces_touching tc "lay.mag"));
        check Alcotest.int "no type query" 0
          (List.length (B.Trace_capture.traces_touching tc "layout")));
    t "capture accepts what the schema rejects" (fun () ->
        let tc = B.Trace_capture.create () in
        (* a plotter "producing" a netlist: nonsense, but captured *)
        B.Trace_capture.capture tc ~tool:E.plotter ~consumed:[ "p1" ]
          ~produced:[ "n1" ];
        let tr = B.Trace_capture.cut tc "bad" in
        let typing = function
          | "n1" -> Some E.extracted_netlist
          | "p1" -> Some E.performance
          | _ -> None
        in
        let violations =
          B.Trace_capture.check_against_schema Standard_schemas.odyssey ~typing tr
        in
        check Alcotest.int "one violation" 1 (List.length violations));
    t "legal traces pass the post-hoc check" (fun () ->
        let tc = B.Trace_capture.create () in
        B.Trace_capture.capture tc ~tool:E.extractor ~consumed:[ "l1" ]
          ~produced:[ "n1" ];
        let tr = B.Trace_capture.cut tc "good" in
        let typing = function
          | "n1" -> Some E.extracted_netlist
          | "l1" -> Some E.edited_layout
          | _ -> None
        in
        check Alcotest.int "clean" 0
          (List.length
             (B.Trace_capture.check_against_schema Standard_schemas.odyssey
                ~typing tr)));
  ]

let make_tests =
  let rules =
    [
      { B.Make_style.target = "netlist"; deps = [ "layout" ]; cost_us = 100 };
      { B.Make_style.target = "perf"; deps = [ "netlist"; "stimuli" ]; cost_us = 300 };
      { B.Make_style.target = "plot"; deps = [ "perf" ]; cost_us = 50 };
    ]
  in
  [
    t "first build makes everything" (fun () ->
        let m = B.Make_style.create rules in
        B.Make_style.touch m "layout";
        B.Make_style.touch m "stimuli";
        let r = B.Make_style.build m "plot" in
        check
          (Alcotest.list Alcotest.string)
          "order" [ "netlist"; "perf"; "plot" ] r.B.Make_style.rebuilt);
    t "no-op rebuild is free" (fun () ->
        let m = B.Make_style.create rules in
        B.Make_style.touch m "layout";
        B.Make_style.touch m "stimuli";
        let _ = B.Make_style.build m "plot" in
        let r = B.Make_style.build m "plot" in
        check Alcotest.int "nothing rebuilt" 0 (List.length r.B.Make_style.rebuilt));
    t "touching a source rebuilds downstream even if content is identical"
      (fun () ->
        let m = B.Make_style.create rules in
        B.Make_style.touch m "layout";
        B.Make_style.touch m "stimuli";
        let _ = B.Make_style.build m "plot" in
        B.Make_style.touch m "layout";
        let r = B.Make_style.build m "plot" in
        (* make cannot see that nothing changed: the false-rebuild gap
           the memoizing history closes (experiment A3) *)
        check Alcotest.int "three rebuilt" 3 (List.length r.B.Make_style.rebuilt));
    Util.expect_exn "missing source"
      (function B.Make_style.Make_error _ -> true | _ -> false)
      (fun () -> B.Make_style.build (B.Make_style.create rules) "plot");
  ]

let version_tree_tests =
  [
    t "check-in builds the Fig. 11 tree" (fun () ->
        let vt = B.Version_tree.create () in
        let c1 = B.Version_tree.check_in vt ~payload_hash:"c1" ~author:"a" ~at:1 () in
        let c2 = B.Version_tree.check_in vt ~parent:c1 ~payload_hash:"c2" ~author:"a" ~at:2 () in
        let c3 = B.Version_tree.check_in vt ~parent:c1 ~payload_hash:"c3" ~author:"b" ~at:3 () in
        let _c4 = B.Version_tree.check_in vt ~parent:c3 ~payload_hash:"c4" ~author:"b" ~at:4 () in
        let c5 = B.Version_tree.check_in vt ~parent:c3 ~payload_hash:"c5" ~author:"a" ~at:5 () in
        check Alcotest.int "size" 5 (B.Version_tree.size vt);
        check (Alcotest.list Alcotest.int) "children of c1" [ c2; c3 ]
          (B.Version_tree.children vt c1);
        check (Alcotest.option Alcotest.int) "parent of c5" (Some c3)
          (B.Version_tree.parent vt c5));
    Util.expect_exn "unknown parent"
      (function B.Version_tree.Version_error _ -> true | _ -> false)
      (fun () ->
        B.Version_tree.check_in (B.Version_tree.create ()) ~parent:9
          ~payload_hash:"x" ~author:"a" ~at:1 ());
    t "version trees cannot name the tool (flow traces can)" (fun () ->
        let vt = B.Version_tree.create () in
        let v = B.Version_tree.check_in vt ~payload_hash:"c1" ~author:"a" ~at:1 () in
        check (Alcotest.option Alcotest.string) "unknown" None
          (B.Version_tree.tool_used vt v));
    t "metadata footprint is positive and linear-ish" (fun () ->
        let vt = B.Version_tree.create () in
        let v1 = B.Version_tree.check_in vt ~payload_hash:"h1" ~author:"a" ~at:1 () in
        let one = B.Version_tree.metadata_bytes vt in
        let _ = B.Version_tree.check_in vt ~parent:v1 ~payload_hash:"h2" ~author:"a" ~at:2 () in
        check Alcotest.int "double" (2 * one) (B.Version_tree.metadata_bytes vt));
  ]

let suite =
  [
    ("baselines.static_flow", static_flow_tests);
    ("baselines.freedom", freedom_tests);
    ("baselines.trace_capture", trace_tests);
    ("baselines.make_style", make_tests);
    ("baselines.version_tree", version_tree_tests);
  ]
