(* Tests for the physical substrate: layout, extraction, LVS, the
   transistor view and the PLA generator. *)

open Ddf_eda

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let layout_tests =
  [
    t "placement covers every gate and port" (fun () ->
        let nl = Circuits.ripple_adder 4 in
        let l = Layout.place nl in
        check Alcotest.int "cells" (Netlist.gate_count nl
                                    + List.length nl.Netlist.primary_inputs
                                    + List.length nl.Netlist.primary_outputs)
          (Layout.cell_count l));
    t "area and wirelength are positive" (fun () ->
        let l = Layout.place (Circuits.c17 ()) in
        check Alcotest.bool "area" true (Layout.area l > 0);
        check Alcotest.bool "wl" true (Layout.wirelength l > 0));
    t "cells stay inside the die" (fun () ->
        let l = Layout.place (Circuits.parity 8) in
        List.iter
          (fun (c : Layout.cell) ->
            check Alcotest.bool c.Layout.cname true
              (c.Layout.x >= 0 && c.Layout.y >= 0
              && c.Layout.x + c.Layout.width <= l.Layout.die_width
              && c.Layout.y + c.Layout.height <= l.Layout.die_height))
          l.Layout.cells);
    t "segments are axis-parallel and normalized" (fun () ->
        let l = Layout.place (Circuits.full_adder ()) in
        List.iter
          (fun (s : Layout.segment) ->
            check Alcotest.bool "axis" true
              (s.Layout.x1 = s.Layout.x2 || s.Layout.y1 = s.Layout.y2);
            check Alcotest.bool "normalized" true
              ((s.Layout.x1, s.Layout.y1) <= (s.Layout.x2, s.Layout.y2)))
          l.Layout.wires);
    t "edits apply" (fun () ->
        let l = Layout.place (Circuits.inverter ()) in
        let l2 =
          Layout.apply_edits l
            [ Layout.Rename_layout "inv2"; Layout.Move_cell ("g_inv", 3, 0) ]
        in
        check Alcotest.string "renamed" "inv2" l2.Layout.layout_name;
        match (Layout.find_cell l "g_inv", Layout.find_cell l2 "g_inv") with
        | Some a, Some b -> check Alcotest.int "moved" (a.Layout.x + 3) b.Layout.x
        | _ -> Alcotest.fail "cell lost");
    Util.expect_exn "moving a missing cell fails"
      (function Layout.Layout_error _ -> true | _ -> false)
      (fun () ->
        Layout.apply_edits
          (Layout.place (Circuits.inverter ()))
          [ Layout.Move_cell ("ghost", 1, 1) ]);
    t "hash tracks geometry" (fun () ->
        let l = Layout.place (Circuits.inverter ()) in
        let l2 = Layout.apply_edits l [ Layout.Move_cell ("g_inv", 1, 0) ] in
        check Alcotest.bool "hash changed" false (Layout.hash l = Layout.hash l2));
  ]

let extract_tests =
  [
    t "extraction round-trips the whole zoo" (fun () ->
        List.iter
          (fun (name, mk) ->
            let nl = mk () in
            let extracted, stats = Extract.run (Layout.place nl) in
            check Alcotest.int (name ^ " opens") 0 stats.Extract.opens;
            let v = Lvs.compare_netlists nl extracted in
            check Alcotest.bool (name ^ " lvs") true v.Lvs.equivalent)
          Circuits.all_named);
    t "statistics are consistent" (fun () ->
        let nl = Circuits.full_adder () in
        let l = Layout.place nl in
        let _, stats = Extract.run l in
        check Alcotest.int "cells" (Layout.cell_count l)
          stats.Extract.cells_extracted;
        check Alcotest.int "wirelength" (Layout.wirelength l)
          stats.Extract.total_wirelength;
        check Alcotest.int "area" (Layout.area l) stats.Extract.die_area;
        check Alcotest.bool "vias" true (stats.Extract.vias > 0));
    t "a moved cell produces opens" (fun () ->
        let nl = Circuits.full_adder () in
        let l = Layout.place nl in
        let broken = Layout.apply_edits l [ Layout.Move_cell ("g_cout", 6, 0) ] in
        let extracted, stats = Extract.run broken in
        check Alcotest.bool "opens reported" true (stats.Extract.opens > 0);
        let v = Lvs.compare_netlists nl extracted in
        check Alcotest.bool "LVS fails" false v.Lvs.equivalent);
    t "deleting a wire splits a net" (fun () ->
        let nl = Circuits.full_adder () in
        let l = Layout.place nl in
        let seg = List.hd l.Layout.wires in
        let broken = Layout.apply_edits l [ Layout.Delete_segment seg ] in
        let _, stats = Extract.run broken in
        check Alcotest.bool "connectivity changed" true
          (stats.Extract.opens > 0
          || stats.Extract.nets_extracted
             <> (let _, s0 = Extract.run l in
                 s0.Extract.nets_extracted));
        ());
    Util.qcheck ~count:30 "random circuits survive place+extract+lvs"
      QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 40))
      (fun (seed, n_gates) ->
        let rng = Rng.create seed in
        let nl = Circuits.random ~n_inputs:4 ~n_gates rng in
        let extracted, stats = Extract.run (Layout.place nl) in
        stats.Extract.opens = 0
        && (Lvs.compare_netlists nl extracted).Lvs.equivalent);
  ]

let lvs_tests =
  [
    t "renamed nets still match" (fun () ->
        let nl = Circuits.full_adder () in
        let renamed =
          let map n = if n = "x1" then "weird" else n in
          Netlist.create ~name:"renamed"
            ~primary_inputs:nl.Netlist.primary_inputs
            ~primary_outputs:nl.Netlist.primary_outputs
            (List.map
               (fun (g : Netlist.gate) ->
                 { g with
                   Netlist.gname = "r_" ^ g.Netlist.gname;
                   Netlist.inputs = List.map map g.Netlist.inputs;
                   Netlist.output = map g.Netlist.output })
               nl.Netlist.gates)
        in
        check Alcotest.bool "equivalent" true
          (Lvs.compare_netlists nl renamed).Lvs.equivalent);
    t "different ports are reported" (fun () ->
        let a = Circuits.full_adder () in
        let b = { a with Netlist.primary_inputs = [ "a"; "b"; "carry" ];
                  Netlist.gates =
                    List.map
                      (fun (g : Netlist.gate) ->
                        { g with
                          Netlist.inputs =
                            List.map
                              (fun i -> if i = "cin" then "carry" else i)
                              g.Netlist.inputs })
                      a.Netlist.gates }
        in
        let v = Lvs.compare_netlists a b in
        check Alcotest.bool "mismatch" false v.Lvs.equivalent;
        check Alcotest.bool "port mismatch named" true
          (List.exists
             (function Lvs.Port_sets_differ _ -> true | _ -> false)
             v.Lvs.mismatches));
    t "gate count difference is reported" (fun () ->
        let a = Circuits.full_adder () in
        let b =
          Netlist.add_gate a (Netlist.gate "extra" Logic.Buf [ "sum" ] "s2")
        in
        let v = Lvs.compare_netlists a b in
        check Alcotest.bool "mismatch" false v.Lvs.equivalent);
    t "swapped gate operator is caught" (fun () ->
        let a = Circuits.full_adder () in
        let b =
          { a with
            Netlist.gates =
              List.map
                (fun (g : Netlist.gate) ->
                  if g.Netlist.gname = "g_cout" then
                    { g with Netlist.op = Logic.And }
                  else g)
                a.Netlist.gates }
        in
        check Alcotest.bool "mismatch" false
          (Lvs.compare_netlists a b).Lvs.equivalent);
    t "symmetric trees match (the parity regression)" (fun () ->
        let a = Circuits.parity 8 in
        let extracted, _ = Extract.run (Layout.place a) in
        check Alcotest.bool "equivalent" true
          (Lvs.compare_netlists a extracted).Lvs.equivalent);
    t "gate map covers all gates on success" (fun () ->
        let a = Circuits.c17 () in
        let extracted, _ = Extract.run (Layout.place a) in
        let v = Lvs.compare_netlists a extracted in
        check Alcotest.int "mapped" (Netlist.gate_count a) v.Lvs.matched_gates);
  ]

let transistor_tests =
  [
    t "inverter expands to two devices" (fun () ->
        let t' = Transistor.of_netlist (Circuits.inverter ()) in
        check Alcotest.int "devices" 2 (Transistor.device_count t'));
    t "zoo corresponds at switch level" (fun () ->
        let rng = Rng.create 1 in
        List.iter
          (fun (name, mk) ->
            let nl = mk () in
            let t' = Transistor.of_netlist nl in
            check Alcotest.bool name true (Transistor.corresponds nl t' rng))
          Circuits.all_named);
    t "nand pull-down is in series" (fun () ->
        let nl =
          Netlist.create ~name:"nand" ~primary_inputs:[ "a"; "b" ]
            ~primary_outputs:[ "y" ]
            [ Netlist.gate "g" Logic.Nand [ "a"; "b" ] "y" ]
        in
        let t' = Transistor.of_netlist nl in
        check Alcotest.int "4 devices" 4 (Transistor.device_count t');
        (* a=1,b=0 -> no pull-down path -> 1 *)
        check Alcotest.bool "partial pulldown" true
          (Transistor.eval t' [ ("a", Logic.V1); ("b", Logic.V0) ]
           = [ ("y", Logic.V1) ]));
    t "X on a gate input gives X out" (fun () ->
        let t' = Transistor.of_netlist (Circuits.inverter ()) in
        check Alcotest.bool "X" true
          (Transistor.eval t' [ ("in", Logic.VX) ] = [ ("out", Logic.VX) ]));
    Util.qcheck ~count:30 "random circuits correspond at switch level"
      QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 25))
      (fun (seed, n_gates) ->
        let rng = Rng.create seed in
        let nl = Circuits.random ~n_inputs:4 ~n_gates rng in
        Transistor.corresponds nl (Transistor.of_netlist nl) rng);
  ]

let pla_tests =
  [
    t "full adder minimizes to 7 terms" (fun () ->
        let p = Pla.of_netlist (Circuits.full_adder ()) in
        check Alcotest.int "terms" 7 (Pla.product_terms p));
    t "PLA is functionally equivalent" (fun () ->
        List.iter
          (fun (name, mk) ->
            let nl = mk () in
            if List.length nl.Netlist.primary_inputs <= 8 then
              let p = Pla.of_netlist nl in
              check Alcotest.bool name true (Pla.equivalent nl p))
          Circuits.all_named);
    t "PLA netlist is two-level" (fun () ->
        let p = Pla.of_netlist (Circuits.mux4 ()) in
        check Alcotest.bool "depth <= 3" true
          (Netlist.depth (Pla.to_netlist p) <= 3));
    t "PLA layout places" (fun () ->
        let p = Pla.of_netlist (Circuits.full_adder ()) in
        check Alcotest.bool "area" true (Layout.area (Pla.to_layout p) > 0));
    t "shared product terms are not duplicated" (fun () ->
        let p = Pla.of_netlist (Circuits.full_adder ()) in
        let keys = List.map Pla.cube_key p.Pla.and_plane in
        check Alcotest.int "unique" (List.length keys)
          (List.length (List.sort_uniq compare keys)));
    Util.expect_exn "too many inputs rejected"
      (function Pla.Pla_error _ -> true | _ -> false)
      (fun () -> Pla.of_netlist (Circuits.ripple_adder 8));
    Util.qcheck ~count:25 "random small circuits re-implement exactly"
      QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 15))
      (fun (seed, n_gates) ->
        let rng = Rng.create seed in
        let nl = Circuits.random ~n_inputs:4 ~n_gates rng in
        Pla.equivalent nl (Pla.of_netlist nl));
  ]

let suite =
  [
    ("eda.layout", layout_tests);
    ("eda.extract", extract_tests);
    ("eda.lvs", lvs_tests);
    ("eda.transistor", transistor_tests);
    ("eda.pla", pla_tests);
  ]

let blif_tests =
  [
    t "BLIF round-trips the zoo structurally" (fun () ->
        List.iter
          (fun (name, mk) ->
            let nl = mk () in
            let nl2 = Blif.of_string (Blif.to_string nl) in
            check Alcotest.bool name true
              (Lvs.compare_netlists nl nl2).Lvs.equivalent)
          Circuits.all_named);
    t "BLIF preserves drive strengths" (fun () ->
        let nl = Netlist.set_drive (Circuits.c17 ()) "g10" 4 in
        let nl2 = Blif.of_string (Blif.to_string nl) in
        let drives (n : Netlist.t) =
          List.map (fun (g : Netlist.gate) -> g.Netlist.drive) n.Netlist.gates
          |> List.sort compare
        in
        check (Alcotest.list Alcotest.int) "drives" (drives nl) (drives nl2));
    t ".names covers import as two-level logic" (fun () ->
        let text =
          ".model xor2\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n"
        in
        let nl = Blif.of_string text in
        let eval x y =
          Netlist.eval nl [ ("a", Logic.of_bool x); ("b", Logic.of_bool y) ]
        in
        check Alcotest.bool "xor" true
          (eval true false = [ ("y", Logic.V1) ]
          && eval true true = [ ("y", Logic.V0) ]
          && eval false true = [ ("y", Logic.V1) ]
          && eval false false = [ ("y", Logic.V0) ]));
    Util.expect_exn "unsupported directive"
      (function Blif.Blif_error _ -> true | _ -> false)
      (fun () -> Blif.of_string ".model m\n.subckt foo a=b\n.end\n");
    t ".latch imports a flip-flop" (fun () ->
        let text =
          ".model toggle\n.inputs\n.outputs q\n.gate not_x1 I0=q O=nq\n\
           .latch nq q 0\n.end\n"
        in
        let nl = Blif.of_string text in
        check Alcotest.bool "sequential" true (Netlist.is_sequential nl);
        let outs = Netlist.run_cycles nl [ []; []; []; [] ] in
        check Alcotest.bool "toggles 0101" true
          (outs
           = [ [ ("q", Logic.V0) ]; [ ("q", Logic.V1) ]; [ ("q", Logic.V0) ];
               [ ("q", Logic.V1) ] ]));
    t ".latch round-trips" (fun () ->
        let nl = Circuits.counter 3 in
        let nl2 = Blif.of_string (Blif.to_string nl) in
        check Alcotest.bool "same behaviour" true
          (Netlist.run_cycles nl (List.init 10 (fun _ -> []))
           = Netlist.run_cycles nl2 (List.init 10 (fun _ -> []))));
    Util.expect_exn "missing model"
      (function Blif.Blif_error _ -> true | _ -> false)
      (fun () -> Blif.of_string ".inputs a\n.outputs a\n.end\n");
    t "comments and continuations parse" (fun () ->
        let text =
          "# a comment\n.model m\n.inputs \\\na b\n.outputs y\n\
           .gate and_x1 I0=a I1=b O=y # instance g1\n.end\n"
        in
        let nl = Blif.of_string text in
        check Alcotest.int "one gate" 1 (Netlist.gate_count nl));
  ]

let suite = suite @ [ ("eda.blif", blif_tests) ]
