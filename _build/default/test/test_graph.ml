(* Tests for task graphs (lib/graph): construction operations, the
   figure flows, and random-operation invariants. *)

open Ddf_schema
open Ddf_graph
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let schema = Standard_schemas.odyssey

let expect_graph_error name f =
  Util.expect_exn name
    (function Task_graph.Graph_error _ -> true | _ -> false)
    f

(* ------------------------------------------------------------------ *)

let operation_tests =
  [
    t "create a one-node flow" (fun () ->
        let g, nid = Task_graph.create schema E.performance in
        check Alcotest.int "size" 1 (Task_graph.size g);
        check Alcotest.string "entity" E.performance (Task_graph.entity_of g nid));
    t "expand fills every role" (fun () ->
        let g, nid = Task_graph.create schema E.performance in
        let g, fresh = Task_graph.expand g nid in
        check Alcotest.int "four deps" 4 (List.length fresh);
        check Alcotest.bool "expanded" true (Task_graph.status g nid = Task_graph.Expanded));
    t "expand without optional roles" (fun () ->
        let g, nid = Task_graph.create schema E.performance in
        let g, fresh = Task_graph.expand ~include_optional:false g nid in
        check Alcotest.int "three deps" 3 (List.length fresh);
        ignore g);
    t "expanding an abstract entity raises Needs_specialization" (fun () ->
        let g, nid = Task_graph.create schema E.netlist in
        match Task_graph.expand g nid with
        | _ -> Alcotest.fail "expected Needs_specialization"
        | exception Task_graph.Needs_specialization (e, subs) ->
          check Alcotest.string "entity" E.netlist e;
          check Alcotest.int "methods" 3 (List.length subs));
    t "specialize then expand (Fig. 4b)" (fun () ->
        let f = Standard_flows.fig4b () in
        let g = f.Standard_flows.f3_graph in
        Task_graph.validate g;
        check Alcotest.string "specialized" E.extracted_netlist
          (Task_graph.entity_of g f.Standard_flows.f3_source_netlist));
    expect_graph_error "specialize to a non-subtype" (fun () ->
        let g, nid = Task_graph.create schema E.netlist in
        Task_graph.specialize g nid E.layout);
    t "specialize to itself is identity" (fun () ->
        let g, nid = Task_graph.create schema E.netlist in
        let g' = Task_graph.specialize g nid E.netlist in
        check Alcotest.bool "equal" true (Canonical.equal g g'));
    expect_graph_error "connect with wrong type" (fun () ->
        let g, perf = Task_graph.create schema E.performance in
        let g, lay = Task_graph.add_node g E.layout in
        Task_graph.connect g ~user:perf ~role:E.circuit ~dep:lay);
    expect_graph_error "connect an unknown role" (fun () ->
        let g, perf = Task_graph.create schema E.performance in
        let g, c = Task_graph.add_node g E.circuit in
        Task_graph.connect g ~user:perf ~role:"nonsense" ~dep:c);
    expect_graph_error "double-fill a role" (fun () ->
        let g, perf = Task_graph.create schema E.performance in
        let g, c = Task_graph.add_node g E.circuit in
        let g = Task_graph.connect g ~user:perf ~role:E.circuit ~dep:c in
        let g, c2 = Task_graph.add_node g E.circuit in
        Task_graph.connect g ~user:perf ~role:E.circuit ~dep:c2);
    expect_graph_error "cycle rejected" (fun () ->
        (* device_models optionally depends on device_models *)
        let g, a = Task_graph.create schema E.device_models in
        Task_graph.connect g ~user:a ~role:E.device_models ~dep:a);
    t "expand_up incorporates a whole task" (fun () ->
        let g, nid = Task_graph.create schema E.performance in
        let g, plot, fresh =
          Task_graph.expand_up g nid ~consumer:E.performance_plot
        in
        check Alcotest.int "plotter appears" 1 (List.length fresh);
        check Alcotest.bool "complete" true
          (Task_graph.status g plot = Task_graph.Expanded));
    expect_graph_error "expand_up with ambiguous role fails" (fun () ->
        let g, nid = Task_graph.create schema E.edited_netlist in
        let g, _, _ = Task_graph.expand_up g nid ~consumer:E.verification in
        g);
    t "expand_up with explicit role" (fun () ->
        let g, nid = Task_graph.create schema E.edited_netlist in
        let g, v, _ =
          Task_graph.expand_up ~role:"candidate" g nid ~consumer:E.verification
        in
        check Alcotest.bool "edge exists" true
          (Task_graph.dep_of g v "candidate" = Some nid));
    t "unexpand removes the subtree" (fun () ->
        let g, nid = Task_graph.create schema E.performance in
        let before = Canonical.canonical g in
        let g2, _ = Task_graph.expand g nid in
        let g3 = Task_graph.unexpand g2 nid in
        check Alcotest.string "restored" before (Canonical.canonical g3));
    t "unexpand keeps shared nodes" (fun () ->
        let f = Standard_flows.fig5 () in
        let g = Task_graph.unexpand f.Standard_flows.f5_graph
                  f.Standard_flows.f5_circuit in
        (* the extracted netlist is still used by the verification *)
        check Alcotest.bool "extracted kept" true
          (Task_graph.mem g f.Standard_flows.f5_extracted);
        Task_graph.validate g);
    t "reuse joins sub-tasks (Fig. 5)" (fun () ->
        let f = Standard_flows.fig5 () in
        let users =
          Task_graph.users f.Standard_flows.f5_graph f.Standard_flows.f5_extracted
        in
        check Alcotest.int "two users" 2 (List.length users));
  ]

let analysis_tests =
  [
    t "topological order puts dependencies first" (fun () ->
        let f = Standard_flows.fig5 () in
        let g = f.Standard_flows.f5_graph in
        let order = Task_graph.topological_order g in
        let pos nid =
          let rec find i = function
            | [] -> Alcotest.fail "missing node"
            | x :: rest -> if x = nid then i else find (i + 1) rest
          in
          find 0 order
        in
        List.iter
          (fun (n : Task_graph.node) ->
            List.iter
              (fun (e : Task_graph.edge) ->
                check Alcotest.bool "dep before user" true
                  (pos e.Task_graph.dst < pos n.Task_graph.nid))
              (Task_graph.out_edges g n.Task_graph.nid))
          (Task_graph.nodes g));
    t "invocations group co-produced outputs" (fun () ->
        let f = Standard_flows.fig5 () in
        let invs = Task_graph.invocations f.Standard_flows.f5_graph in
        let extractor_inv =
          List.find
            (fun (i : Task_graph.invocation) ->
              List.mem f.Standard_flows.f5_extracted i.Task_graph.outputs)
            invs
        in
        check
          Alcotest.(slist int compare)
          "both outputs"
          [ f.Standard_flows.f5_extracted; f.Standard_flows.f5_statistics ]
          extractor_inv.Task_graph.outputs);
    t "composite entities yield tool-less invocations" (fun () ->
        let f = Standard_flows.fig5 () in
        let invs = Task_graph.invocations f.Standard_flows.f5_graph in
        let circuit_inv =
          List.find
            (fun (i : Task_graph.invocation) ->
              i.Task_graph.outputs = [ f.Standard_flows.f5_circuit ])
            invs
        in
        check Alcotest.bool "no tool" true (circuit_inv.Task_graph.tool = None));
    t "fig6 branches are disjoint" (fun () ->
        let f = Standard_flows.fig6 () in
        let a = List.hd f.Standard_flows.f6_branch_a in
        let b = List.hd f.Standard_flows.f6_branch_b in
        check Alcotest.bool "disjoint" true
          (Task_graph.disjoint f.Standard_flows.f6_graph a b));
    t "fig5 statuses" (fun () ->
        let f = Standard_flows.fig5 () in
        let g = f.Standard_flows.f5_graph in
        check Alcotest.bool "layout is a leaf" true
          (Task_graph.status g f.Standard_flows.f5_layout
           = Task_graph.Unexpanded);
        check Alcotest.bool "flow is complete" true (Task_graph.complete g));
    t "subflow of the performance is executable alone" (fun () ->
        let f = Standard_flows.fig5 () in
        let sub =
          Task_graph.subflow f.Standard_flows.f5_graph
            f.Standard_flows.f5_performance
        in
        Task_graph.validate sub;
        check Alcotest.bool "smaller" true
          (Task_graph.size sub < Task_graph.size f.Standard_flows.f5_graph);
        check Alcotest.bool "has its root" true
          (List.mem f.Standard_flows.f5_performance (Task_graph.roots sub)));
    t "edit chain has the requested depth" (fun () ->
        let g, _top = Standard_flows.edit_chain 5 in
        let editors =
          List.filter
            (fun (n : Task_graph.node) -> n.Task_graph.entity = E.netlist_editor)
            (Task_graph.nodes g)
        in
        check Alcotest.int "editors" 5 (List.length editors));
    t "wide flow has independent roots" (fun () ->
        let g, roots = Standard_flows.wide_flow 4 in
        check Alcotest.int "roots" 4 (List.length roots);
        match roots with
        | a :: b :: _ ->
          check Alcotest.bool "disjoint" true (Task_graph.disjoint g a b)
        | _ -> Alcotest.fail "missing roots");
  ]

(* property tests over random designer behaviour *)
let property_tests =
  let open QCheck2 in
  let flow_gen =
    Gen.map
      (fun (seed, steps) -> Flow_gen.random_flow seed steps)
      Gen.(pair (int_bound 1_000_000) (int_range 1 30))
  in
  [
    Util.qcheck "random flows always validate" flow_gen (fun g ->
        Task_graph.validate g;
        true);
    Util.qcheck "random flows are acyclic with full coverage" flow_gen (fun g ->
        List.length (Task_graph.topological_order g) = Task_graph.size g);
    Util.qcheck "roots and leaves are consistent" flow_gen (fun g ->
        List.for_all (fun r -> Task_graph.in_edges g r = []) (Task_graph.roots g)
        && List.for_all
             (fun l -> Task_graph.out_edges g l = [])
             (Task_graph.leaves g));
    Util.qcheck "every invocation output appears exactly once" flow_gen
      (fun g ->
        let outs =
          List.concat_map
            (fun (i : Task_graph.invocation) -> i.Task_graph.outputs)
            (Task_graph.invocations g)
        in
        List.length outs = List.length (List.sort_uniq compare outs));
    Util.qcheck "expand/unexpand round-trips" flow_gen (fun g ->
        let g, nid = Task_graph.add_node g E.performance in
        let before = Canonical.canonical g in
        let g2, _ = Task_graph.expand g nid in
        let g3 = Task_graph.unexpand g2 nid in
        String.equal before (Canonical.canonical g3));
    Util.qcheck "canonical is invariant under node renumbering" flow_gen
      (fun g ->
        (* rebuild the graph with shifted ids via the sexp round-trip *)
        let s = Sexp_form.to_string g in
        let g' = Sexp_form.of_string Flow_gen.schema s in
        Canonical.equal g g');
  ]

let suite =
  [
    ("graph.operations", operation_tests);
    ("graph.analysis", analysis_tests);
    ("graph.properties", property_tests);
  ]

let bulk_tests =
  [
    t "of_parts assembles a valid graph" (fun () ->
        let g =
          Task_graph.of_parts schema
            [ (0, E.extracted_netlist); (1, E.extractor); (2, E.edited_layout) ]
            [ (0, "tool", 1); (0, E.layout, 2) ]
        in
        Task_graph.validate g;
        check Alcotest.int "three nodes" 3 (Task_graph.size g);
        (* further incremental edits continue from fresh ids *)
        let g, nid = Task_graph.add_node g E.stimuli in
        check Alcotest.bool "fresh id" true (nid >= 3);
        ignore g);
    expect_graph_error "of_parts rejects cycles" (fun () ->
        Task_graph.of_parts schema
          [ (0, E.device_models); (1, E.device_models) ]
          [ (0, E.device_models, 1); (1, E.device_models, 0) ]);
    expect_graph_error "of_parts rejects duplicate node ids" (fun () ->
        Task_graph.of_parts schema [ (0, E.stimuli); (0, E.stimuli) ] []);
    expect_graph_error "of_parts rejects ill-typed edges" (fun () ->
        Task_graph.of_parts schema
          [ (0, E.extracted_netlist); (1, E.stimuli) ]
          [ (0, E.layout, 1) ]);
    Util.qcheck ~count:40 "traces equal incremental reconstruction"
      QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 15))
      (fun (seed, steps) ->
        (* of_parts over a random flow's own parts is isomorphic to it *)
        let g = Flow_gen.random_flow seed steps in
        let nodes =
          List.map
            (fun (n : Task_graph.node) -> (n.Task_graph.nid, n.Task_graph.entity))
            (Task_graph.nodes g)
        in
        let edges =
          List.concat_map
            (fun (n : Task_graph.node) ->
              List.map
                (fun (e : Task_graph.edge) ->
                  (n.Task_graph.nid, e.Task_graph.role, e.Task_graph.dst))
                (Task_graph.out_edges g n.Task_graph.nid))
            (Task_graph.nodes g)
        in
        Canonical.equal g (Task_graph.of_parts schema nodes edges));
  ]

let suite = suite @ [ ("graph.bulk", bulk_tests) ]
