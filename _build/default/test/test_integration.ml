(* End-to-end integration fuzzing: random designer behaviour builds a
   flow (Flow_gen), every leaf gets a plausible instance, and the flow
   executes through the engine.  Invariants checked per random flow:

   - execution succeeds and assigns every node;
   - an identical re-run is 100% memo hits with the same instances;
   - wave-parallel execution produces payload-identical results;
   - the workspace survives a save/load round trip with hashes intact. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* One payload per root entity, installed lazily per workspace. *)
let binder w =
  let cache = Hashtbl.create 16 in
  let ctx = Workspace.ctx w in
  let memo entity mk =
    match Hashtbl.find_opt cache entity with
    | Some iid -> iid
    | None ->
      let iid = mk () in
      Hashtbl.add cache entity iid;
      iid
  in
  let fa = Eda.Circuits.full_adder () in
  let netlist () =
    memo "netlist" (fun () -> Workspace.install_netlist w fa)
  in
  let stimuli () =
    memo "stimuli" (fun () ->
        Workspace.install_stimuli w
          (Eda.Stimuli.exhaustive fa.Eda.Netlist.primary_inputs))
  in
  let instance_for entity =
    let schema = Workspace.schema w in
    let root = Schema.root_of schema entity in
    let install value = Engine.install ctx ~entity value in
    if root = E.netlist then
      (* respect the subtype: the instance entity must fit the node *)
      if entity = E.netlist || entity = E.edited_netlist then netlist ()
      else memo entity (fun () -> install (Value.Netlist fa))
    else if root = E.layout then
      memo entity (fun () -> install (Value.Layout (Eda.Layout.place fa)))
    else if root = E.stimuli then stimuli ()
    else if root = E.device_models then Workspace.default_device_models w
    else if root = E.circuit then
      memo entity (fun () ->
          install
            (Value.Circuit
               { Value.c_models = Eda.Device_model.default; c_netlist = fa }))
    else if root = E.performance then
      memo entity (fun () ->
          install
            (Value.Performance
               (Eda.Performance.analyze fa
                  (Eda.Stimuli.exhaustive fa.Eda.Netlist.primary_inputs))))
    else if root = E.verification then
      memo entity (fun () ->
          install (Value.Verification (Eda.Lvs.compare_netlists fa fa)))
    else if root = E.performance_plot then
      memo entity (fun () ->
          install
            (Value.Plot
               (Eda.Plot.of_performance
                  (Eda.Performance.analyze fa
                     (Eda.Stimuli.exhaustive fa.Eda.Netlist.primary_inputs)))))
    else if root = E.extraction_statistics then
      memo entity (fun () ->
          let _, stats = Eda.Extract.run (Eda.Layout.place fa) in
          install (Value.Extraction_statistics stats))
    else if root = E.transistor_netlist then
      memo entity (fun () ->
          install (Value.Transistor_view (Eda.Transistor.of_netlist fa)))
    else if root = E.sim_options then
      memo entity (fun () -> install (Value.Sim_options Value.default_sim_options))
    else if root = E.placement_options then
      memo entity (fun () ->
          install (Value.Placement_options Value.default_placement_options))
    else if root = E.optimizer_options then
      memo entity (fun () ->
          install (Value.Optimizer_options Value.default_optimizer_options))
    else if entity = E.netlist_editor then
      memo entity (fun () ->
          Workspace.install_editor_session w
            (Eda.Edit_script.create ~name:"fuzz" [ Eda.Edit_script.Rename "fuzzed" ]))
    else if entity = E.layout_editor then
      memo entity (fun () ->
          Workspace.install_layout_editor_session w
            [ Eda.Layout.Rename_layout "fuzzed_layout" ])
    else if entity = E.device_model_editor then
      memo entity (fun () ->
          Engine.install ctx ~entity
            (Value.Tool
               (Value.Scripted_model_editor [ Eda.Device_model.Scale_delay 1.1 ])))
    else if entity = E.optimizer then
      memo entity (fun () ->
          Engine.install ctx ~entity
            (Value.Tool (Value.Builtin "optimizer:hill_climb")))
    else if entity = E.compiled_simulator then
      memo entity (fun () ->
          Engine.install ctx ~entity
            (Value.Tool (Value.Compiled_simulator (Eda.Sim_compiled.compile fa))))
    else if Schema.is_tool schema entity then Workspace.tool w entity
    else
      Alcotest.failf "fuzz binder: no instance strategy for %s" entity
  in
  instance_for

let auto_bindings w g =
  let bind = binder w in
  List.map (fun nid -> (nid, bind (Task_graph.entity_of g nid)))
    (Task_graph.leaves g)

let executes_and_memoizes (seed, steps) =
  let g = Flow_gen.random_flow seed steps in
  let w = Workspace.create () in
  let ctx = Workspace.ctx w in
  let bindings = auto_bindings w g in
  let r1 = Engine.execute ctx g ~bindings in
  let all_assigned =
    List.for_all
      (fun nid -> List.mem_assoc nid r1.Engine.assignment)
      (Task_graph.node_ids g)
  in
  let r2 = Engine.execute ctx g ~bindings in
  all_assigned
  && r2.Engine.stats.Engine.executed = 0
  && r2.Engine.stats.Engine.composed = 0
  && r1.Engine.assignment = r2.Engine.assignment

let parallel_matches_serial (seed, steps) =
  let g = Flow_gen.random_flow seed steps in
  let w1 = Workspace.create () in
  let r1 = Engine.execute (Workspace.ctx w1) g ~bindings:(auto_bindings w1 g) in
  let w2 = Workspace.create () in
  let a2, _ =
    Parallel.execute_parallel ~domains:2 (Workspace.ctx w2) g
      ~bindings:(auto_bindings w2 g)
  in
  List.for_all
    (fun nid ->
      Store.hash_of (Workspace.store w1) (List.assoc nid r1.Engine.assignment)
      = Store.hash_of (Workspace.store w2) (List.assoc nid a2))
    (Task_graph.node_ids g)

let survives_persistence (seed, steps) =
  let g = Flow_gen.random_flow seed steps in
  let w = Workspace.create () in
  let _ = Engine.execute (Workspace.ctx w) g ~bindings:(auto_bindings w g) in
  let s2 = Persist.load Standard_schemas.odyssey (Persist.save (Workspace.session w)) in
  let st1 = Workspace.store w and st2 = (Session.context s2).Engine.store in
  Store.instance_count st1 = Store.instance_count st2
  && List.for_all
       (fun iid -> Store.hash_of st1 iid = Store.hash_of st2 iid)
       (Store.all_instances st1)

let gen = QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 18))

let suite =
  [
    ( "integration.fuzz",
      [
        Util.qcheck ~count:40 "random flows execute and memoize" gen
          executes_and_memoizes;
        Util.qcheck ~count:15 "parallel execution matches serial" gen
          parallel_matches_serial;
        Util.qcheck ~count:15 "workspaces survive persistence" gen
          survives_persistence;
        t "multi-function payload shares physical storage" (fun () ->
            (* the same physical tool instantiated for two entity types
               (section 3.3): one payload, two instances *)
            let w = Workspace.create () in
            let ctx = Workspace.ctx w in
            let payload = Value.Tool (Value.Builtin "magic:multi") in
            let a = Engine.install ctx ~entity:E.layout_editor payload in
            let b = Engine.install ctx ~entity:E.extractor payload in
            check Alcotest.bool "distinct instances" true (a <> b);
            check Alcotest.string "one physical payload"
              (Store.hash_of (Workspace.store w) a)
              (Store.hash_of (Workspace.store w) b));
      ] );
  ]
