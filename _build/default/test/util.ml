(* Shared helpers for the test suites. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* Run [f] and expect it to raise an exception satisfying [pred]. *)
let expect_exn name pred f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | _ -> Alcotest.fail "expected an exception"
      | exception e ->
        if not (pred e) then
          Alcotest.failf "unexpected exception %s" (Printexc.to_string e))

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Replace the first occurrence of [needle] in [hay]. *)
let replace_first hay needle replacement =
  let n = String.length needle and h = String.length hay in
  let rec at i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else at (i + 1)
  in
  match at 0 with
  | None -> hay
  | Some i ->
    String.sub hay 0 i ^ replacement
    ^ String.sub hay (i + n) (h - i - n)
