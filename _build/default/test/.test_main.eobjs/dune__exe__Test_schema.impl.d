test/test_schema.ml: Alcotest Ddf_schema List Schema Standard_schemas Util
