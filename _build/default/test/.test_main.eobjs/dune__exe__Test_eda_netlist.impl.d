test/test_eda_netlist.ml: Alcotest Circuits Ddf_eda Edit_script Fmt Gen List Logic Netlist Printf QCheck2 Rng Sim_compiled Stimuli Util
