test/flow_gen.ml: Ddf_eda Ddf_graph Ddf_schema List Schema Standard_schemas Task_graph
