test/test_session.ml: Alcotest Canonical Ddf Eda List Schema Session Standard_schemas Task_graph Util Workspace
