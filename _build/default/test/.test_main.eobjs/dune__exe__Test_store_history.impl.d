test/test_store_history.ml: Alcotest Ddf Eda Engine History List Standard_schemas Store Task_graph Util Workspace
