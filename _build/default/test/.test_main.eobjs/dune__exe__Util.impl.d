test/util.ml: Alcotest Printexc QCheck2 QCheck_alcotest String
