test/test_baselines.ml: Alcotest Baselines Ddf List Standard_flows Standard_schemas Util
