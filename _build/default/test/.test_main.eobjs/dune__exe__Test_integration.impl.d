test/test_integration.ml: Alcotest Ddf Eda Engine Flow_gen Hashtbl List Parallel Persist QCheck2 Schema Session Standard_schemas Store Task_graph Util Value Workspace
