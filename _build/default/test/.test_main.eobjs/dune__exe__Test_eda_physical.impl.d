test/test_eda_physical.ml: Alcotest Blif Circuits Ddf_eda Extract Layout List Logic Lvs Netlist Pla QCheck2 Rng Transistor Util
