test/test_exec.ml: Alcotest Consistency Ddf Ddf_tools Eda Engine History List Parallel Printf Schema Session Standard_flows Standard_schemas Store Task_graph Typing Util Value Workspace
