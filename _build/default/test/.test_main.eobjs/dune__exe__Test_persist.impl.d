test/test_persist.ml: Alcotest Canonical Ddf Ddf_persist Eda Engine History List Persist Printf Session Standard_flows Standard_schemas Store Task_graph Util Value Views Workspace
