test/test_properties.ml: Array Baselines Ddf Ddf_persist Eda Engine Flow_gen Fun Hashtbl History List Printf QCheck2 Standard_schemas Store Task_graph Util Value Workspace
