test/test_graph.ml: Alcotest Canonical Ddf_graph Ddf_schema Flow_gen Gen List QCheck2 Sexp_form Standard_flows Standard_schemas String Task_graph Util
