test/test_representations.ml: Alcotest Bipartite Canonical Ddf_graph Ddf_schema Flow_gen Gen List Printf QCheck2 Sexp_form Standard_flows Task_graph Util
