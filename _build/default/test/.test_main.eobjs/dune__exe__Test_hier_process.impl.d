test/test_hier_process.ml: Alcotest Consistency Ddf Eda Engine List Process Process_file Standard_schemas Store Task_graph Util Value Workspace
