(* E4 / Fig. 4: expand and specialize operations, and their cost as the
   flow grows. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E4" "Fig. 4: two possible expansions of the Fig. 3 flow";
  Bench_util.paper_claim
    "flows are built up on demand by expand operations; specialization \
     selects a construction method before expanding";

  Bench_util.section "fig4(a): the source netlist edited again";
  Printf.printf "%s"
    (Task_graph.to_ascii (Standard_flows.fig4a ()).Standard_flows.f3_graph);
  Bench_util.section "fig4(b): specialized to an extracted netlist first";
  Printf.printf "%s"
    (Task_graph.to_ascii (Standard_flows.fig4b ()).Standard_flows.f3_graph);

  Bench_util.section "expand cost vs flow size (persistent graphs)";
  let rows =
    List.map
      (fun depth ->
        let g, _top = Standard_flows.edit_chain depth in
        let g, fresh_node = Task_graph.add_node g E.performance in
        let us =
          Bench_util.time_us ~runs:9 (fun () -> Task_graph.expand g fresh_node)
        in
        [
          string_of_int (Task_graph.size g);
          Printf.sprintf "%.1f" us;
          Printf.sprintf "%.2f"
            (Bench_util.time_us ~runs:9 (fun () -> Task_graph.validate g)
             /. 1000.0);
        ])
      [ 4; 16; 64; 256; 1024 ]
  in
  Bench_util.print_table
    [ "flow nodes"; "expand (us)"; "full validate (ms)" ]
    rows;

  Bench_util.section "operation latency on the Fig. 3 flow";
  let f = Standard_flows.fig3 () in
  let g = f.Standard_flows.f3_graph in
  Bench_util.run_bechamel ~name:"fig4"
    [
      Test.make ~name:"build the whole fig3 flow"
        (Staged.stage (fun () -> Standard_flows.fig3 ()));
      Test.make ~name:"specialize netlist -> extracted"
        (Staged.stage (fun () ->
             Task_graph.specialize g f.Standard_flows.f3_source_netlist
               E.extracted_netlist));
      Test.make ~name:"expand_up to a plot"
        (Staged.stage (fun () ->
             let g, nid = Task_graph.create Standard_flows.schema E.performance in
             Task_graph.expand_up g nid ~consumer:E.performance_plot));
      Test.make ~name:"unexpand the layout"
        (Staged.stage (fun () ->
             Task_graph.unexpand g f.Standard_flows.f3_layout));
    ]
