(* E9 / Fig. 9: the Hercules user interface -- catalogs, the task
   window, and the instance browser with its filters. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E9" "Fig. 9: one interface, four approaches, a browser";
  Bench_util.paper_claim
    "Hercules uses the same visual task-graph interface for every design \
     approach; the browser filters instances by user, date and keywords";

  Bench_util.section "the task window and browser, regenerated";
  let w = Workspace.create ~user:"sutton" () in
  let ctx = Workspace.ctx w in
  List.iter
    (fun (user, label, keywords) ->
      ignore
        (Engine.install ctx ~entity:E.edited_netlist ~label ~keywords ~user
           (Value.Netlist (Eda.Circuits.full_adder ()))))
    [
      ("jbb", "Low pass filter", [ "analog" ]);
      ("director", "CMOS Full adder", [ "cmos" ]);
      ("sutton", "Operational Amplifier", [ "analog" ]);
    ];
  let session = Workspace.session w in
  let perf = Session.start_goal_based session E.performance in
  ignore (Session.expand session perf);
  print_string (Session.render_task_window session);
  let flow = Session.current_flow session in
  (match Workspace.find_nodes flow E.circuit with
  | [ c ] ->
    ignore (Session.expand session c);
    let flow = Session.current_flow session in
    (match Workspace.find_nodes flow E.netlist with
    | [ n ] -> print_string (Session.render_browser session n)
    | _ -> ())
  | _ -> ());

  Bench_util.section "browser filter latency vs store size";
  let rows =
    List.concat_map
      (fun n ->
        let w = Workloads.populated_store n in
        let store = Workspace.store w in
        let run_filter name filter =
          let us =
            Bench_util.time_us ~runs:7 (fun () -> Store.browse store filter)
          in
          [ string_of_int n; name;
            string_of_int (List.length (Store.browse store filter));
            Printf.sprintf "%.1f" us ]
        in
        [
          run_filter "by user"
            { Store.any_filter with Store.f_user = Some "sutton" };
          run_filter "by date window"
            { Store.any_filter with Store.f_from = Some (n / 4);
              Store.f_to = Some (n / 2) };
          run_filter "by keyword"
            { Store.any_filter with Store.f_keywords = [ "cmos" ] };
          run_filter "by text"
            { Store.any_filter with Store.f_text = Some "design 7" };
        ])
      [ 100; 1000; 10_000 ]
  in
  Bench_util.print_table
    [ "instances"; "filter"; "hits"; "latency us" ]
    rows;

  Bench_util.section "workspace persistence vs store size";
  let rows =
    List.map
      (fun n ->
        let w = Workloads.populated_store n in
        let session = Workspace.session w in
        let text = ref "" in
        let save_us =
          Bench_util.time_us ~runs:3 (fun () -> text := Persist.save session)
        in
        let load_us =
          Bench_util.time_us ~runs:3 (fun () ->
              Persist.load Standard_schemas.odyssey !text)
        in
        [ string_of_int n;
          string_of_int (String.length !text / 1024);
          Printf.sprintf "%.1f" (save_us /. 1000.0);
          Printf.sprintf "%.1f" (load_us /. 1000.0) ])
      [ 100; 1000 ]
  in
  Bench_util.print_table
    [ "instances"; "file KiB"; "save ms"; "load ms" ]
    rows;

  Bench_util.section "session operation latency";
  let w2 = Workloads.populated_store 1000 in
  let s2 = Workspace.session w2 in
  Bench_util.run_bechamel ~name:"fig9"
    [
      Test.make ~name:"goal-based start + expand"
        (Staged.stage (fun () ->
             let n = Session.start_goal_based s2 E.performance in
             Session.expand s2 n));
      Test.make ~name:"browse a node over 1000 instances"
        (Staged.stage (fun () ->
             let n = Session.start_goal_based s2 E.netlist in
             Session.browse s2 n));
      Test.make ~name:"render the task window"
        (Staged.stage (fun () ->
             let n = Session.start_goal_based s2 E.performance in
             ignore (Session.expand s2 n);
             Session.render_task_window s2));
    ]
