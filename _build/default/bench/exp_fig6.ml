(* E6 / Fig. 6: parallel execution of disjoint branches. *)

open Ddf

let run () =
  Bench_util.header "E6" "Fig. 6: separate branches execute in parallel";
  Bench_util.paper_claim
    "disjoint branches in the flow can be executed in parallel, possibly \
     on different machines";

  Bench_util.section "the Fig. 6 flow";
  let f6 = Standard_flows.fig6 () in
  Printf.printf "%s" (Task_graph.to_ascii f6.Standard_flows.f6_graph);
  Printf.printf "disjoint branch groups under the root: %d\n"
    (List.length
       (List.filter
          (fun (_, s) -> Task_graph.Int_set.cardinal s > 1)
          (Task_graph.disjoint_branches f6.Standard_flows.f6_graph
             f6.Standard_flows.f6_verification)));

  Bench_util.section "makespan on a simulated machine pool (us)";
  let rows =
    List.concat_map
      (fun width ->
        let w, g, bindings = Workloads.bound_wide_flow width in
        let run = Engine.execute ~memo:false (Workspace.ctx w) g ~bindings in
        List.map
          (fun machines ->
            let s = Parallel.schedule g ~costs:run.Engine.costs ~machines in
            [
              string_of_int width;
              string_of_int machines;
              string_of_int s.Parallel.serial_us;
              string_of_int s.Parallel.makespan_us;
              Printf.sprintf "%.2f" (Parallel.speedup s);
            ])
          [ 1; 2; 4; 8 ])
      [ 2; 4; 8; 16 ]
  in
  Bench_util.print_table
    [ "branches"; "machines"; "serial us"; "makespan us"; "speedup" ]
    rows;

  Bench_util.section "scheduling heuristics on a skewed workload";
  let w, gs, bindings = Workloads.bound_skewed_flow () in
  let run = Engine.execute ~memo:false (Workspace.ctx w) gs ~bindings in
  let rows =
    List.concat_map
      (fun machines ->
        List.map
          (fun h ->
            let s =
              Parallel.schedule ~heuristic:h gs ~costs:run.Engine.costs ~machines
            in
            [ string_of_int machines; Parallel.heuristic_name h;
              string_of_int s.Parallel.makespan_us;
              Printf.sprintf "%.2f" (Parallel.speedup s) ])
          [ Parallel.Longest_first; Parallel.Shortest_first; Parallel.Fifo ])
      [ 2; 4 ]
  in
  Bench_util.print_table
    [ "machines"; "heuristic"; "makespan us"; "speedup" ]
    rows;

  Bench_util.section
    "real multicore execution (domains, wall-clock; 4 simulation branches)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "host provides %d core(s)%s\n" cores
    (if cores <= 1 then
       " -- wall-clock speedup is impossible here; the machine-pool \
        simulation above carries the Fig. 6 result, the run below only \
        demonstrates correctness of concurrent execution"
     else "");
  let base = ref 0.0 in
  let rows =
    List.map
      (fun domains ->
        let w, g, bindings = Workloads.bound_sim_flow ~vectors:32 4 in
        let us =
          Bench_util.time_us ~runs:3 (fun () ->
              Parallel.execute_parallel ~domains (Workspace.ctx w) g ~bindings)
        in
        if domains = 1 then base := us;
        [ string_of_int domains; Printf.sprintf "%.0f" us;
          Printf.sprintf "%.2f" (!base /. us) ])
      (if cores <= 1 then [ 1; 2 ] else [ 1; 2; 4; 8 ])
  in
  Bench_util.print_table [ "domains"; "wall-clock us"; "speedup" ] rows
