(* E5 / Fig. 5: the complex flow -- entity reuse, multiple outputs,
   construction from any starting entity, execution. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E5" "Fig. 5: a complex flow with reuse and multiple outputs";
  Bench_util.paper_claim
    "this flow could be constructed by starting at any one of the \
     entities present and performing expand operations until built up";

  let f = Standard_flows.fig5 () in
  Printf.printf "%s" (Task_graph.to_ascii f.Standard_flows.f5_graph);

  Bench_util.section "structure";
  let g = f.Standard_flows.f5_graph in
  Bench_util.print_table
    [ "nodes"; "invocations"; "roots"; "reused entities"; "multi-output tasks" ]
    [
      [
        string_of_int (Task_graph.size g);
        string_of_int (List.length (Task_graph.invocations g));
        string_of_int (List.length (Task_graph.roots g));
        string_of_int
          (List.length
             (List.filter
                (fun (n : Task_graph.node) ->
                  List.length (Task_graph.users g n.Task_graph.nid) >= 2)
                (Task_graph.nodes g)));
        string_of_int
          (List.length
             (List.filter
                (fun (i : Task_graph.invocation) ->
                  List.length i.Task_graph.outputs >= 2)
                (Task_graph.invocations g)));
      ];
    ];

  (* construction from a different starting point reaches the same flow *)
  Bench_util.section "construction from another starting entity";
  (* start from the layout (data-based) instead of the goal *)
  let schema = Standard_flows.schema in
  let g2, layout = Task_graph.create schema E.edited_layout in
  let g2, extracted, _ =
    Task_graph.expand_up ~role:E.layout g2 layout ~consumer:E.extracted_netlist
  in
  let g2, _stats, _ =
    Task_graph.expand_up ~role:E.layout
      ~reuse:[ ("tool", match Task_graph.dep_of g2 extracted "tool" with
                        | Some t -> t | None -> assert false) ]
      g2 layout ~consumer:E.extraction_statistics
  in
  Printf.printf
    "layout-first construction gives one extraction invocation: %b\n"
    (List.length
       (List.filter
          (fun (i : Task_graph.invocation) -> List.length i.Task_graph.outputs = 2)
          (Task_graph.invocations g2))
     = 1);

  Bench_util.section "execution";
  let w, f, bindings = Workloads.bound_fig5 () in
  let run = Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings in
  Format.printf "first run : %a@." Engine.pp_stats run.Engine.stats;
  let run2 = Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings in
  Format.printf "second run: %a@." Engine.pp_stats run2.Engine.stats;
  Printf.printf "store: %d instances over %d physical objects\n"
    (Store.instance_count (Workspace.store w))
    (Store.physical_count (Workspace.store w));

  Bench_util.section "latency";
  Bench_util.run_bechamel ~name:"fig5"
    [
      Test.make ~name:"construct fig5" (Staged.stage Standard_flows.fig5);
      Test.make ~name:"invocations of fig5"
        (Staged.stage (fun () -> Task_graph.invocations g));
      Test.make ~name:"execute fig5 (all memo hits)"
        (Staged.stage (fun () ->
             Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings));
    ]
