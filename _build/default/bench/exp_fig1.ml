(* E1 / Fig. 1: the example task schema. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E1" "Fig. 1: an example task schema";
  Bench_util.paper_claim
    "a task schema of tools and data with f/d arcs, subtyping and an \
     optional (dashed) loop-breaking dependency states every legal task";

  let s = Standard_schemas.fig1 in
  Format.printf "%a@." Schema.pp s;

  Bench_util.section "schema statistics";
  let tools = List.filter (Schema.is_tool s) (Schema.entity_ids s) in
  let composites = List.filter (Schema.is_composite s) (Schema.entity_ids s) in
  let optional_arcs =
    List.fold_left
      (fun acc e ->
        acc
        + List.length
            (List.filter
               (fun (d : Schema.dep) ->
                 d.Schema.dep_kind = Schema.Data_dep { optional = true })
               e.Schema.deps))
      0 (Schema.entities s)
  in
  Bench_util.print_table
    [ "entities"; "tools"; "data"; "composites"; "optional arcs" ]
    [
      [
        string_of_int (Schema.size s);
        string_of_int (List.length tools);
        string_of_int (Schema.size s - List.length tools);
        string_of_int (List.length composites);
        string_of_int optional_arcs;
      ];
    ];

  Bench_util.section "expansion candidates per entity (schema queries)";
  Bench_util.print_table
    [ "entity"; "rule"; "consumers" ]
    (List.map
       (fun e ->
         let rule =
           match Schema.construction_rule s e with
           | Schema.Constructed deps ->
             Printf.sprintf "task/%d deps" (List.length deps)
           | Schema.Abstract subs ->
             Printf.sprintf "abstract/%d methods" (List.length subs)
           | Schema.Source -> "source"
         in
         [ e; rule; string_of_int (List.length (Schema.consumers s e)) ])
       (Schema.entity_ids s));

  Bench_util.section "query latency";
  Bench_util.run_bechamel ~name:"fig1"
    [
      Test.make ~name:"create+validate fig1"
        (Staged.stage (fun () ->
             Schema.create "fig1" Standard_schemas.fig1_entities));
      Test.make ~name:"consumers(netlist)"
        (Staged.stage (fun () -> Schema.consumers s E.netlist));
      Test.make ~name:"construction_rule(performance)"
        (Staged.stage (fun () -> Schema.construction_rule s E.performance));
      Test.make ~name:"is_subtype (deep)"
        (Staged.stage (fun () ->
             Schema.is_subtype Standard_schemas.odyssey
               ~sub:E.switch_performance ~super:E.performance));
      Test.make ~name:"add a new tool + revalidate"
        (Staged.stage (fun () ->
             Schema.add_entity s (Schema.tool "new_router" [])));
    ]
