(* E3 / Fig. 3: the three representations of a flow -- bipartite
   flowmap, task graph, Lisp-style text. *)

open Ddf
open Bechamel

let flows () =
  [
    ("fig3", (Standard_flows.fig3 ()).Standard_flows.f3_graph);
    ("fig5", (Standard_flows.fig5 ()).Standard_flows.f5_graph);
    ("fig2", (Standard_flows.fig2 ()).Standard_flows.f2_graph);
    ("fig8b", (Standard_flows.fig8b ()).Standard_flows.f8b_graph);
  ]

let run () =
  Bench_util.header "E3" "Fig. 3: task graph vs bipartite flowmap vs text";
  Bench_util.paper_claim
    "a task graph treats the tool as just another parameter; the \
     traditional flowmap hardwires it and cannot express a tool created \
     by the flow";

  let f3 = Standard_flows.fig3 () in
  Bench_util.section "the Fig. 3 flow, three ways";
  Printf.printf "(a) flowmap:\n%s"
    (Bipartite.to_ascii (Bipartite.of_graph f3.Standard_flows.f3_graph));
  Printf.printf "(b) task graph:\n%s" (Task_graph.to_ascii f3.Standard_flows.f3_graph);
  Printf.printf "(c) paper text: %s\n"
    (Sexp_form.to_paper_string f3.Standard_flows.f3_graph f3.Standard_flows.f3_layout);

  Bench_util.section "expressiveness comparison";
  let rows =
    List.map
      (fun (name, g) ->
        let b = Bipartite.of_graph g in
        let round_trip =
          Bipartite.lossless b
          && Canonical.equal g
               (Bipartite.to_graph (Task_graph.schema g) b)
        in
        [
          name;
          string_of_int (Task_graph.size g);
          string_of_int (Bipartite.size b);
          (if Bipartite.lossless b then "yes" else "NO");
          (if Bipartite.lossless b then string_of_bool round_trip else "n/a");
          (let s = Sexp_form.to_string g in
           string_of_bool
             (Canonical.equal g (Sexp_form.of_string (Task_graph.schema g) s)));
        ])
      (flows ())
  in
  Bench_util.print_table
    [ "flow"; "graph nodes"; "flowmap size"; "flowmap lossless";
      "flowmap roundtrip"; "text roundtrip" ]
    rows;

  Bench_util.section "conversion latency";
  let g5 = (Standard_flows.fig5 ()).Standard_flows.f5_graph in
  let b5 = Bipartite.of_graph g5 in
  let s5 = Sexp_form.to_string g5 in
  let schema = Task_graph.schema g5 in
  Bench_util.run_bechamel ~name:"fig3"
    [
      Test.make ~name:"graph -> flowmap" (Staged.stage (fun () -> Bipartite.of_graph g5));
      Test.make ~name:"flowmap -> graph" (Staged.stage (fun () -> Bipartite.to_graph schema b5));
      Test.make ~name:"graph -> text" (Staged.stage (fun () -> Sexp_form.to_string g5));
      Test.make ~name:"text -> graph" (Staged.stage (fun () -> Sexp_form.of_string schema s5));
      Test.make ~name:"canonical form" (Staged.stage (fun () -> Canonical.canonical g5));
    ]
