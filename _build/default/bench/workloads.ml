(* Shared workload builders for the experiment harness. *)

open Ddf
module E = Standard_schemas.E

(* A workspace with the standard catalog plus a circuit installed. *)
let workspace_with circuit =
  let w = Workspace.create ~user:"bench" () in
  let nl_iid = Workspace.install_netlist w circuit in
  (w, nl_iid)

(* A populated store: [n] instances across entities, users and dates,
   for the browser benchmarks (E9). *)
let populated_store n =
  let w = Workspace.create ~user:"bench" () in
  let ctx = Workspace.ctx w in
  let users = [| "jbb"; "director"; "sutton"; "jacome"; "cobourn" |] in
  let keywords = [| "analog"; "cmos"; "adder"; "filter"; "opamp"; "ram" |] in
  let rng = Eda.Rng.create 17 in
  for i = 1 to n do
    let nl =
      Eda.Circuits.random
        ~name:(Printf.sprintf "circuit_%d" i)
        ~n_inputs:3 ~n_gates:(3 + (i mod 5))
        rng
    in
    ignore
      (Engine.install ctx ~entity:E.edited_netlist
         ~label:(Printf.sprintf "Design %d" i)
         ~user:users.(i mod Array.length users)
         ~keywords:
           [ keywords.(i mod Array.length keywords);
             keywords.((i / 2) mod Array.length keywords) ]
         (Value.Netlist nl))
  done;
  w

(* The fig5 flow over a full adder, bound and ready to run. *)
let bound_fig5 () =
  let w = Workspace.create ~user:"bench" () in
  let reference = Eda.Circuits.full_adder () in
  let layout_iid =
    Workspace.install_layout w (Eda.Layout.place reference)
  in
  let reference_iid = Workspace.install_netlist w reference in
  let stimuli_iid =
    Workspace.install_stimuli w
      (Eda.Stimuli.exhaustive reference.Eda.Netlist.primary_inputs)
  in
  let f = Standard_flows.fig5 () in
  let bindings =
    Workspace.bind_catalog_tools w f.Standard_flows.f5_graph
      ~already:
        [
          (f.Standard_flows.f5_layout, layout_iid);
          (f.Standard_flows.f5_stimuli, stimuli_iid);
          (f.Standard_flows.f5_reference, reference_iid);
          (f.Standard_flows.f5_device_models, Workspace.default_device_models w);
        ]
  in
  (w, f, bindings)

(* A deep design history: a chain of [depth] editing tasks executed for
   real, returning the workspace and the newest version (E10). *)
let edit_history depth =
  let w = Workspace.create ~user:"bench" () in
  let ctx = Workspace.ctx w in
  let base = Eda.Circuits.ripple_adder 2 in
  let v0 = Workspace.install_netlist w base in
  let current = ref v0 in
  for i = 1 to depth do
    let session =
      Workspace.install_editor_session w
        ~label:(Printf.sprintf "edit %d" i)
        (Eda.Edit_script.create
           ~name:(Printf.sprintf "e%d" i)
           [ Eda.Edit_script.Set_drive ("gx0", [| 1; 2; 4 |].(i mod 3));
             Eda.Edit_script.Rename (Printf.sprintf "adder2_v%d" i) ])
    in
    let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
    let g, fresh = Task_graph.expand g out in
    let editor, source =
      match fresh with [ a; b ] -> (a, b) | _ -> assert false
    in
    let run =
      Engine.execute ctx g ~bindings:[ (editor, session); (source, !current) ]
    in
    current := Engine.result_of run out
  done;
  (w, v0, !current)

(* A wide flow of [width] independent simulation branches -- heavy
   enough (event-driven simulation) for real multicore speedups. *)
let bound_sim_flow ?(vectors = 64) width =
  let w = Workspace.create ~user:"bench" () in
  let g = ref (Task_graph.empty (Workspace.schema w)) in
  let bindings = ref [] in
  let bind nid iid = bindings := (nid, iid) :: !bindings in
  for i = 0 to width - 1 do
    let nl = Eda.Circuits.ripple_adder 8 in
    let nl_iid =
      Workspace.install_netlist w ~label:(Printf.sprintf "branch %d" i) nl
    in
    let stim_iid =
      Workspace.install_stimuli w
        (Eda.Stimuli.for_netlist ~n:vectors nl (Eda.Rng.create (100 + i)))
    in
    let g1, perf = Task_graph.add_node !g E.performance in
    let g1, fresh = Task_graph.expand ~include_optional:false g1 perf in
    g := g1;
    List.iter
      (fun nid ->
        let entity = Task_graph.entity_of !g nid in
        if entity = E.simulator then bind nid (Workspace.tool w E.simulator)
        else if entity = E.stimuli then bind nid stim_iid
        else if entity = E.circuit then begin
          let g2, fresh = Task_graph.expand !g nid in
          g := g2;
          List.iter
            (fun inner ->
              let e = Task_graph.entity_of !g inner in
              if e = E.device_models then
                bind inner (Workspace.default_device_models w)
              else if e = E.netlist then bind inner nl_iid)
            fresh
        end)
      fresh
  done;
  (w, !g, !bindings)

(* Extraction branches over circuits of very different sizes: the
   skewed workload for the scheduling-heuristic ablation. *)
let bound_skewed_flow () =
  let w = Workspace.create ~user:"bench" () in
  let g = ref (Task_graph.empty (Workspace.schema w)) in
  let bindings = ref [] in
  List.iteri
    (fun i bits ->
      let g1, extracted = Task_graph.add_node !g E.extracted_netlist in
      let g1, fresh = Task_graph.expand g1 extracted in
      g := g1;
      List.iter
        (fun nid ->
          let entity = Task_graph.entity_of !g nid in
          if entity = E.extractor then
            bindings := (nid, Workspace.tool w E.extractor) :: !bindings
          else if entity = E.layout then
            bindings :=
              ( nid,
                Workspace.install_layout w
                  (Eda.Layout.place
                     ~name_suffix:(Printf.sprintf "_sk%d" i)
                     (Eda.Circuits.ripple_adder bits)) )
              :: !bindings)
        fresh)
    [ 1; 1; 2; 2; 4; 8; 16 ];
  (w, !g, !bindings)

(* A wide flow of [width] independent extraction branches, bound. *)
let bound_wide_flow width =
  let w = Workspace.create ~user:"bench" () in
  let g, _roots = Standard_flows.wide_flow width in
  let bindings =
    Workspace.bind_catalog_tools w g
      ~already:
        (List.mapi
           (fun i nid ->
             ( nid,
               Workspace.install_layout w
                 (Eda.Layout.place
                    ~name_suffix:(Printf.sprintf "_w%d" i)
                    (Eda.Circuits.ripple_adder 4)) ))
           (Workspace.find_nodes g E.layout))
  in
  (w, g, bindings)
