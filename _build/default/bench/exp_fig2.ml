(* E2 / Fig. 2: a tool created during the design -- the compiled
   simulator, and its crossover against interpretive simulation. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E2" "Fig. 2: tool created during a design (COSMOS)";
  Bench_util.paper_claim
    "a simulator compiled for a given netlist is itself a design object; \
     compile once, then run cheaply on different stimuli";

  (* structural regeneration: the Fig. 2 flow through the engine *)
  let w = Workspace.create ~user:"bench" () in
  let ctx = Workspace.ctx w in
  let nl = Eda.Circuits.ripple_adder 8 in
  let nl_iid = Workspace.install_netlist w nl in
  let stim_iid =
    Workspace.install_stimuli w
      (Eda.Stimuli.for_netlist ~n:32 nl (Eda.Rng.create 4))
  in
  let f = Standard_flows.fig2 () in
  let bindings =
    Workspace.bind_catalog_tools w f.Standard_flows.f2_graph
      ~already:
        [ (f.Standard_flows.f2_netlist, nl_iid);
          (f.Standard_flows.f2_stimuli, stim_iid) ]
  in
  let run1 = Engine.execute ctx f.Standard_flows.f2_graph ~bindings in
  let tool_iid = Engine.result_of run1 f.Standard_flows.f2_compiled_simulator in
  Printf.printf "flow executed: %d tasks; compiled simulator is instance #%d\n"
    run1.Engine.stats.Engine.executed tool_iid;
  Printf.printf "the tool has a derivation record: %b\n"
    (History.derivation_of (Workspace.history w) tool_iid <> None);
  (* run on new stimuli: the compile memo-hits *)
  let stim2 =
    Workspace.install_stimuli w
      (Eda.Stimuli.for_netlist ~n:64 nl (Eda.Rng.create 5))
  in
  let bindings2 =
    List.map
      (fun (n, i) -> if n = f.Standard_flows.f2_stimuli then (n, stim2) else (n, i))
      bindings
  in
  let run2 = Engine.execute ctx f.Standard_flows.f2_graph ~bindings:bindings2 in
  Printf.printf
    "rerun on new stimuli: %d executed, %d memo hits (the compile is reused)\n"
    run2.Engine.stats.Engine.executed run2.Engine.stats.Engine.memo_hits;

  (* crossover sweep: event-driven vs compile+run *)
  Bench_util.section "crossover sweep (adder8, median wall-clock, us)";
  let nl = Eda.Circuits.ripple_adder 8 in
  let compiled = Eda.Sim_compiled.compile nl in
  let compile_us = Bench_util.time_us (fun () -> Eda.Sim_compiled.compile nl) in
  let rows =
    List.map
      (fun k ->
        let stim = Eda.Stimuli.for_netlist ~n:k nl (Eda.Rng.create 7) in
        let event = Bench_util.time_us (fun () -> Eda.Sim_event.run nl stim) in
        let crun =
          Bench_util.time_us (fun () -> Eda.Sim_compiled.run compiled stim)
        in
        let total = compile_us +. crun in
        [
          string_of_int k;
          Printf.sprintf "%.0f" event;
          Printf.sprintf "%.0f" compile_us;
          Printf.sprintf "%.0f" crun;
          Printf.sprintf "%.0f" total;
          (if total < event then "compiled" else "event");
        ])
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  Bench_util.print_table
    [ "vectors"; "event"; "compile"; "comp-run"; "comp-total"; "winner" ]
    rows;

  Bench_util.section "per-operation latency";
  let stim1 = Eda.Stimuli.for_netlist ~n:1 nl (Eda.Rng.create 9) in
  Bench_util.run_bechamel ~name:"fig2"
    [
      Test.make ~name:"compile adder8" (Staged.stage (fun () -> Eda.Sim_compiled.compile nl));
      Test.make ~name:"compiled run, 1 vector"
        (Staged.stage (fun () -> Eda.Sim_compiled.run (Eda.Sim_compiled.compile nl) stim1));
      Test.make ~name:"event-driven, 1 vector"
        (Staged.stage (fun () -> Eda.Sim_event.run nl stim1));
    ]
