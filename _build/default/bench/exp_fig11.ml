(* E11 / Fig. 11: version trees vs flow traces. *)

open Ddf
module E = Standard_schemas.E
module B = Baselines

(* Reproduce the Fig. 11 editing history: c1 edited to c2 and c3; c3
   edited to c4 and c5 -- through real editing tasks. *)
let fig11_scenario () =
  let w = Workspace.create ~user:"bench" () in
  let ctx = Workspace.ctx w in
  let c1 = Workspace.install_netlist w ~label:"c1" (Eda.Circuits.full_adder ()) in
  let edit label net source =
    let session =
      Workspace.install_editor_session w ~label
        (Eda.Edit_script.create ~name:label
           [ Eda.Edit_script.Insert_buffer { net; gname = "b_" ^ label } ])
    in
    let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
    let g, fresh = Task_graph.expand g out in
    let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
    let run = Engine.execute ctx g ~bindings:[ (editor, session); (src, source) ] in
    Engine.result_of run out
  in
  let c2 = edit "e1" "x1" c1 in
  let c3 = edit "e2" "a1" c1 in
  let c4 = edit "e3" "a2" c3 in
  let c5 = edit "e4" "x1" c3 in
  (w, c1, [ c2; c3; c4; c5 ])

let run () =
  Bench_util.header "E11" "Fig. 11: version tree vs flow trace";
  Bench_util.paper_claim
    "a flow trace is a semantically richer superset of a version tree: \
     it also shows the tools used to create each version";

  let w, c1, versions = fig11_scenario () in
  let h = Workspace.history w and st = Workspace.store w in
  let schema = Workspace.schema w in

  Bench_util.section "(a) the dedicated version tree";
  let vt = B.Version_tree.create () in
  let vids = Hashtbl.create 8 in
  let check_in parent iid =
    let v =
      B.Version_tree.check_in vt
        ?parent:(Option.map (Hashtbl.find vids) parent)
        ~payload_hash:(Store.hash_of st iid)
        ~author:(Store.meta_of st iid).Store.user
        ~at:(Store.meta_of st iid).Store.created_at ()
    in
    Hashtbl.add vids iid v
  in
  check_in None c1;
  List.iter
    (fun v -> check_in (History.version_parent h st schema v) v)
    versions;
  Format.printf "%a@." B.Version_tree.pp vt;

  Bench_util.section "(b) the flow trace, reconstructed from history";
  let tree = History.version_tree h st schema c1 in
  let rec render indent t =
    let m = Store.meta_of st t.History.v_iid in
    let tool =
      match History.derivation_of h t.History.v_iid with
      | Some r -> (
        match r.History.tool with
        | Some tool_iid -> (Store.meta_of st tool_iid).Store.label
        | None -> "(composed)")
      | None -> "(installed)"
    in
    Printf.printf "%s#%d %s  <- %s\n" indent t.History.v_iid m.Store.label tool;
    List.iter (render (indent ^ "  ")) t.History.v_children
  in
  render "" tree;

  Bench_util.section "comparison";
  let shapes_match =
    (* compare tree shapes: sizes and branching degrees multiset *)
    let rec degrees t =
      List.length t.History.v_children
      :: List.concat_map degrees t.History.v_children
    in
    let rec vt_degrees vid =
      let kids = B.Version_tree.children vt vid in
      List.length kids :: List.concat_map vt_degrees kids
    in
    List.sort compare (degrees tree)
    = List.sort compare (vt_degrees (Hashtbl.find vids c1))
  in
  let history_bytes =
    (* per-record footprint of the derivation meta-data *)
    List.fold_left
      (fun acc (r : History.record) ->
        acc + 8 (* task *) + 8 (* tool *) + 8 (* at *)
        + (16 * List.length r.History.inputs)
        + (16 * List.length r.History.outputs))
      0 (History.records h)
  in
  Bench_util.print_table
    [ "scheme"; "tree size"; "same shape"; "metadata bytes"; "knows the tool?" ]
    [
      [
        "version tree"; string_of_int (B.Version_tree.size vt);
        "-"; string_of_int (B.Version_tree.metadata_bytes vt);
        (match B.Version_tree.tool_used vt 1 with Some _ -> "yes" | None -> "no");
      ];
      [
        "flow trace"; string_of_int (History.version_tree_size tree);
        string_of_bool shapes_match; string_of_int history_bytes; "yes";
      ];
    ];
  Printf.printf
    "\nno separate version store was needed: versioning fell out of the\n\
     derivation history (records: %d, store instances: %d, shared payloads: %d)\n"
    (History.size h) (Store.instance_count st) (Store.physical_count st)
