(* E10 / Fig. 10: browsing the design history -- backward and forward
   chaining, and queries by flow template. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E10" "Fig. 10: design-history queries";
  Bench_util.paper_claim
    "backward chaining reveals an instance's derivation; forward \
     chaining finds the data that depends on it; the task graph itself \
     is the query template";

  Bench_util.section "history browsing, regenerated";
  let w, v0, latest = Workloads.edit_history 4 in
  let g, _root, binding =
    History.trace (Workspace.history w) (Workspace.store w) (Workspace.schema w)
      latest
  in
  Printf.printf "derivation of the newest version (%d instances):\n%s"
    (List.length binding) (Task_graph.to_ascii g);
  Printf.printf "forward chaining from the original: %d derived instances\n"
    (List.length (History.derived_instances (Workspace.history w) v0));

  Bench_util.section "chaining latency vs history depth";
  let rows =
    List.map
      (fun depth ->
        let w, v0, latest = Workloads.edit_history depth in
        let h = Workspace.history w in
        let back =
          Bench_util.time_us ~runs:7 (fun () -> History.backward_closure h latest)
        in
        let fwd =
          Bench_util.time_us ~runs:7 (fun () -> History.forward_closure h v0)
        in
        let trace =
          Bench_util.time_us ~runs:7 (fun () ->
              History.trace h (Workspace.store w) (Workspace.schema w) latest)
        in
        [
          string_of_int depth;
          string_of_int (History.size h);
          Printf.sprintf "%.1f" back;
          Printf.sprintf "%.1f" fwd;
          Printf.sprintf "%.1f" trace;
        ])
      [ 4; 16; 64; 256; 1024 ]
  in
  Bench_util.print_table
    [ "depth"; "records"; "backward us"; "forward us"; "trace us" ]
    rows;

  Bench_util.section "query by template";
  let w, _, _ = Workloads.edit_history 16 in
  let schema = Workspace.schema w in
  let g, out = Task_graph.create schema E.edited_netlist in
  let g, _ = Task_graph.expand g out in
  let results =
    History.query_template (Workspace.history w) (Workspace.store w) g ~bound:[]
  in
  Printf.printf "editing-task template matches %d derivations\n"
    (List.length results);

  let h16 = Workspace.history w in
  Bench_util.run_bechamel ~name:"fig10"
    [
      Test.make ~name:"template query over 16 edits"
        (Staged.stage (fun () ->
             History.query_template h16 (Workspace.store w) g ~bound:[]));
    ]
