bench/exp_fig1.ml: Bechamel Bench_util Ddf Format List Printf Schema Staged Standard_schemas Test
