bench/workloads.ml: Array Ddf Eda Engine List Printf Standard_flows Standard_schemas Task_graph Value Workspace
