bench/exp_fig3.ml: Bechamel Bench_util Bipartite Canonical Ddf List Printf Sexp_form Staged Standard_flows Task_graph Test
