bench/exp_fig6.ml: Bench_util Ddf Domain Engine List Parallel Printf Standard_flows Task_graph Workloads Workspace
