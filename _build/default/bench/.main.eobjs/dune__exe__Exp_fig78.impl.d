bench/exp_fig78.ml: Bechamel Bench_util Ddf Eda Format List Printf Staged Standard_flows Standard_schemas Task_graph Test Value Views Workspace
