bench/exp_fig5.ml: Bechamel Bench_util Ddf Engine Format List Printf Staged Standard_flows Standard_schemas Store Task_graph Test Workloads Workspace
