bench/exp_ablations.ml: Baselines Bechamel Bench_util Consistency Ddf Eda Engine List Printf Schema Staged Standard_flows Standard_schemas Task_graph Test Workspace
