bench/exp_fig2.ml: Bechamel Bench_util Ddf Eda Engine History List Printf Staged Standard_flows Standard_schemas Test Workspace
