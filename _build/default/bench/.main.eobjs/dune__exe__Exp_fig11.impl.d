bench/exp_fig11.ml: Baselines Bench_util Ddf Eda Engine Format Hashtbl History List Option Printf Standard_schemas Store Task_graph Workspace
