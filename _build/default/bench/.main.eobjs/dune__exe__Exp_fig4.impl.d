bench/exp_fig4.ml: Bechamel Bench_util Ddf List Printf Staged Standard_flows Standard_schemas Task_graph Test
