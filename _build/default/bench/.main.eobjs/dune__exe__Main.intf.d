bench/main.mli:
