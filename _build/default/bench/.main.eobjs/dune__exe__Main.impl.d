bench/main.ml: Array Bench_util Exp_ablations Exp_fig1 Exp_fig10 Exp_fig11 Exp_fig2 Exp_fig3 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig78 Exp_fig9 List Printf Sys
