bench/exp_fig9.ml: Bechamel Bench_util Ddf Eda Engine List Persist Printf Session Staged Standard_schemas Store String Test Value Workloads Workspace
