bench/exp_fig10.ml: Bechamel Bench_util Ddf History List Printf Staged Standard_schemas Task_graph Test Workloads Workspace
