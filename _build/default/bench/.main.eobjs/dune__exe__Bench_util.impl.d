bench/bench_util.ml: Analyze Bechamel Benchmark Hashtbl List Measure Printf String Sys Test Time Toolkit Unix
