(* A1-A4: ablations of the design decisions DESIGN.md calls out. *)

open Ddf
open Bechamel
module E = Standard_schemas.E
module B = Baselines

(* A1: the flow straight-jacket. *)
let straitjacket () =
  Bench_util.header "A1" "ablation: dynamic flows vs the flow straight-jacket";
  Bench_util.paper_claim
    "static flows force a fixed sequence; the designer should be able to \
     perform any allowable task in any order";
  let flows =
    [
      ("fig3", (Standard_flows.fig3 ()).Standard_flows.f3_graph);
      ("fig5", (Standard_flows.fig5 ()).Standard_flows.f5_graph);
      ("wide4", fst (Standard_flows.wide_flow 4));
      ("wide8", fst (Standard_flows.wide_flow 8));
    ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        [
          name;
          string_of_int (List.length (Task_graph.invocations g));
          string_of_int (B.Freedom.legal_orderings g);
          string_of_int (B.Freedom.legal_prefixes g);
          "1";
        ])
      flows
  in
  Bench_util.print_table
    [ "flow"; "tasks"; "dynamic orderings"; "dynamic prefixes";
      "static orderings" ]
    rows

(* A2: legality checking vs unchecked trace capture. *)
let methodology () =
  Bench_util.header "A2" "ablation: schema-checked construction vs trace capture";
  Bench_util.paper_claim
    "trace capture provides no means of enforcing a methodology; the \
     schema consult on every expand is the price of enforcement";
  let schema = Standard_flows.schema in

  (* enforcement: every ill-typed connection is rejected *)
  let attempts = ref 0 and rejected = ref 0 in
  let g0, perf = Task_graph.create schema E.performance in
  List.iter
    (fun entity ->
      List.iter
        (fun role ->
          incr attempts;
          let g, n = Task_graph.add_node g0 entity in
          match Task_graph.connect g ~user:perf ~role ~dep:n with
          | _ -> ()
          | exception Task_graph.Graph_error _ -> incr rejected)
        [ "tool"; E.circuit; E.stimuli ])
    [ E.layout; E.performance_plot; E.verification; E.plotter ];
  Printf.printf "ill-typed connections rejected: %d / %d\n" !rejected !attempts;

  (* the same nonsense, captured happily by a trace *)
  let tc = B.Trace_capture.create () in
  B.Trace_capture.capture tc ~tool:E.plotter ~consumed:[ "perf1" ]
    ~produced:[ "netlist1" ];
  let tr = B.Trace_capture.cut tc "nonsense" in
  let typing = function
    | "netlist1" -> Some E.extracted_netlist
    | "perf1" -> Some E.performance
    | _ -> None
  in
  Printf.printf "trace capture accepted it; post-hoc check finds %d violations\n"
    (List.length (B.Trace_capture.check_against_schema schema ~typing tr));

  (* the cost of checking *)
  Bench_util.section "cost of the legality check";
  let g1, nid = Task_graph.create schema E.performance in
  Bench_util.run_bechamel ~name:"a2"
    [
      Test.make ~name:"checked expand (schema consult)"
        (Staged.stage (fun () -> Task_graph.expand g1 nid));
      Test.make ~name:"unchecked trace append"
        (Staged.stage (fun () ->
             let tc = B.Trace_capture.create () in
             B.Trace_capture.capture tc ~tool:"simulator" ~consumed:[ "c" ]
               ~produced:[ "p" ]));
    ]

(* A3: consistency by derivation memoization vs make-style timestamps. *)
let consistency () =
  Bench_util.header "A3" "ablation: history memoization vs make-style rebuild";
  Bench_util.paper_claim
    "queries into the design history determine whether re-tracing need \
     occur; timestamps force rebuilds even when nothing changed";

  (* the same pipeline in both systems: edit -> place -> extract *)
  let pipeline_w () =
    let w = Workspace.create ~user:"bench" () in
    let ctx = Workspace.ctx w in
    let v0 = Workspace.install_netlist w (Eda.Circuits.full_adder ()) in
    let g, ext = Task_graph.create (Workspace.schema w) E.extracted_netlist in
    let g, fresh = Task_graph.expand g ext in
    let extractor, lay =
      match fresh with [ a; b ] -> (a, b) | _ -> assert false
    in
    let g = Task_graph.specialize g lay E.synthesized_layout in
    let g, fresh = Task_graph.expand ~include_optional:false g lay in
    let placer, nln = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
    let bindings =
      [ (extractor, Workspace.tool w E.extractor);
        (placer, Workspace.tool w E.placer); (nln, v0) ]
    in
    let run = Engine.execute ctx g ~bindings in
    (w, v0, Engine.result_of run ext)
  in
  let make_rules =
    [
      { B.Make_style.target = "layout"; deps = [ "netlist" ]; cost_us = 150 };
      { B.Make_style.target = "extracted"; deps = [ "layout" ]; cost_us = 90 };
    ]
  in

  (* case 1: touch with identical content *)
  let w, v0, ext = pipeline_w () in
  let ctx = Workspace.ctx w in
  (* reinstalling the identical netlist yields the same content hash;
     refresh sees identical inputs and reuses everything *)
  ignore (Workspace.install_netlist w (Eda.Circuits.full_adder ()));
  let report = Consistency.refresh ctx ext in
  let m = B.Make_style.create make_rules in
  B.Make_style.touch m "netlist";
  let _ = B.Make_style.build m "extracted" in
  B.Make_style.touch m "netlist";
  let make_touch = B.Make_style.build m "extracted" in
  Bench_util.section "case 1: source touched, content identical";
  Bench_util.print_table
    [ "system"; "tasks re-run" ]
    [
      [ "history memoization"; string_of_int report.Consistency.reran ];
      [ "make-style"; string_of_int (List.length make_touch.B.Make_style.rebuilt) ];
    ];

  (* case 2: a real edit *)
  let session =
    Workspace.install_editor_session w
      (Eda.Edit_script.create
         [ Eda.Edit_script.Insert_buffer { net = "x1"; gname = "bb" } ])
  in
  let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
  let g, fresh = Task_graph.expand g out in
  let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let _ = Engine.execute ctx g ~bindings:[ (editor, session); (src, v0) ] in
  let report = Consistency.refresh ctx ext in
  B.Make_style.touch m "netlist";
  let make_edit = B.Make_style.build m "extracted" in
  Bench_util.section "case 2: source genuinely edited";
  Bench_util.print_table
    [ "system"; "tasks re-run" ]
    [
      [ "history memoization"; string_of_int report.Consistency.reran ];
      [ "make-style"; string_of_int (List.length make_edit.B.Make_style.rebuilt) ];
    ]

(* A5: batched vs per-instance invocation (section 4.1). *)
let batching () =
  Bench_util.header "A5" "ablation: batched vs per-instance tool calls";
  Bench_util.paper_claim
    "the encapsulation may cause the tool to be run for each instance \
     selected or may pass all of the data to a single call of the tool";
  let setup () =
    let w = Workspace.create ~user:"bench" () in
    let nl = Eda.Circuits.ripple_adder 4 in
    let nl_iid = Workspace.install_netlist w nl in
    let stims =
      List.init 8 (fun i ->
          Workspace.install_stimuli w
            (Eda.Stimuli.for_netlist ~n:8 nl (Eda.Rng.create (50 + i))))
    in
    let g, perf = Task_graph.create (Workspace.schema w) E.performance in
    let g, _ = Task_graph.expand ~include_optional:false g perf in
    let circuit = List.hd (Workspace.find_nodes g E.circuit) in
    let g, _ = Task_graph.expand g circuit in
    let bindings =
      [
        (List.hd (Workspace.find_nodes g E.simulator),
         [ Workspace.tool w E.simulator ]);
        (List.hd (Workspace.find_nodes g E.netlist), [ nl_iid ]);
        (List.hd (Workspace.find_nodes g E.device_models),
         [ Workspace.default_device_models w ]);
        (List.hd (Workspace.find_nodes g E.stimuli), stims);
      ]
    in
    (w, g, perf, bindings)
  in
  (* batched: the standard simulator encapsulation merges the stimuli *)
  let w, g, _, bindings = setup () in
  let t_batched =
    Bench_util.time_us ~runs:3 (fun () ->
        Engine.execute_fanout ~memo:false (Workspace.ctx w) g ~bindings)
  in
  (* per-instance: one execute per stimuli selection *)
  let w3, g3, _, bindings3 = setup () in
  let singles =
    match List.rev bindings3 with
    | (stim_node, stims) :: rest ->
      List.map
        (fun s -> List.rev ((stim_node, [ s ]) :: rest))
        stims
    | [] -> []
  in
  let t_single =
    Bench_util.time_us ~runs:3 (fun () ->
        List.iter
          (fun b ->
            ignore (Engine.execute_fanout ~memo:false (Workspace.ctx w3) g3 ~bindings:b))
          singles)
  in
  Bench_util.print_table
    [ "mode"; "simulator calls"; "vectors per call"; "wall us" ]
    [
      [ "batched (merged stimuli)"; "1"; "64"; Printf.sprintf "%.0f" t_batched ];
      [ "per-instance fan-out"; "8"; "8"; Printf.sprintf "%.0f" t_single ];
    ]

(* A4: incorporating a new tool. *)
let tool_change () =
  Bench_util.header "A4" "ablation: the cost of incorporating a new tool";
  Bench_util.paper_claim
    "only the task schema need be maintained; static flows require \
     modification whenever tool changes are made";
  let catalog =
    [
      B.Static_flow.of_task_graph ~name:"extract"
        (Standard_flows.fig5 ()).Standard_flows.f5_graph;
      B.Static_flow.of_task_graph ~name:"verify"
        (Standard_flows.fig8b ()).Standard_flows.f8b_graph;
      B.Static_flow.of_task_graph ~name:"resynth"
        (Standard_flows.fig4b ()).Standard_flows.f3_graph;
      B.Static_flow.of_task_graph ~name:"fig6"
        (Standard_flows.fig6 ()).Standard_flows.f6_graph;
    ]
  in
  Printf.printf
    "replacing the extractor:\n\
    \  dynamic flows : 1 schema entity untouched, 1 encapsulation swapped\n\
    \  static catalog: %d of %d flows must be rewritten\n"
    (B.Static_flow.maintenance_burden catalog ~tool:E.extractor)
    (List.length catalog);
  (* a new tool subtype serves existing flows without edits *)
  let schema =
    Schema.add_entity Standard_flows.schema
      (Schema.tool ~parent:E.extractor "fast_extractor" [])
  in
  Printf.printf
    "adding fast_extractor as a subtype: %d existing goal entities accept \
     it at once\n"
    (List.length (Schema.goals_of_tool schema "fast_extractor"))

let run () =
  straitjacket ();
  methodology ();
  consistency ();
  tool_change ();
  batching ()
