(* E7+E8 / Figs. 7-8: views of a cell and the synthesis / verification
   flows between them. *)

open Ddf
open Bechamel
module E = Standard_schemas.E

let run () =
  Bench_util.header "E7/E8" "Figs. 7-8: views and view-management flows";
  Bench_util.paper_claim
    "if views are associated with entities, flows represent the \
     transformations between views: Fig. 8a synthesizes the physical \
     view, Fig. 8b verifies it against the transistor view";

  Bench_util.section "Fig. 7: three views of the inverter cell";
  let w = Workspace.create ~user:"bench" () in
  let ctx = Workspace.ctx w in
  let inverter = Eda.Circuits.inverter () in
  let logic = Workspace.install_netlist w inverter in
  let views =
    Views.derive_views ctx ~logic
      ~placer_tool:(Workspace.tool w E.placer)
      ~expander_tool:(Workspace.tool w E.transistor_expander)
  in
  List.iter
    (fun (view, iid) ->
      Format.printf "%-10s %a@." view Value.pp (Workspace.payload w iid))
    [
      ("logic", views.Views.cv_logic);
      ("transistor", views.Views.cv_transistor);
      ("physical", views.Views.cv_physical);
    ];

  Bench_util.section "Fig. 8 flows";
  Printf.printf "(a) synthesis:\n%s"
    (Task_graph.to_ascii (Standard_flows.fig8a ()).Standard_flows.f8a_graph);
  Printf.printf "(b) verification:\n%s"
    (Task_graph.to_ascii (Standard_flows.fig8b ()).Standard_flows.f8b_graph);

  Bench_util.section "view correspondence across the circuit zoo";
  let rng = Eda.Rng.create 3 in
  let rows =
    List.map
      (fun (name, mk) ->
        let nl = mk () in
        let logic = Workspace.install_netlist w nl in
        let v =
          Views.derive_views ctx ~logic
            ~placer_tool:(Workspace.tool w E.placer)
            ~expander_tool:(Workspace.tool w E.transistor_expander)
        in
        let _, verdict =
          Views.verify_physical ctx ~logic ~physical:v.Views.cv_physical
            ~extractor_tool:(Workspace.tool w E.extractor)
            ~verifier_tool:(Workspace.tool w E.verifier)
        in
        let switch_ok =
          Views.transistor_corresponds ctx ~logic
            ~transistor:v.Views.cv_transistor rng
        in
        [
          name;
          string_of_bool verdict.Eda.Lvs.equivalent;
          string_of_bool switch_ok;
        ])
      Eda.Circuits.all_named
  in
  Bench_util.print_table
    [ "cell"; "physical == logic (LVS)"; "transistor == logic (switch)" ]
    rows;

  Bench_util.section "a careless edit is caught (negative control)";
  let fa_logic = Workspace.install_netlist w (Eda.Circuits.full_adder ()) in
  let fa =
    Views.derive_views ctx ~logic:fa_logic
      ~placer_tool:(Workspace.tool w E.placer)
      ~expander_tool:(Workspace.tool w E.transistor_expander)
  in
  let broken =
    Eda.Layout.apply_edits
      (Workspace.layout_of w fa.Views.cv_physical)
      [ Eda.Layout.Move_cell ("g_cout", 6, 0) ]
  in
  let broken_iid = Workspace.install_layout w broken in
  let _, verdict =
    Views.verify_physical ctx ~logic:fa_logic ~physical:broken_iid
      ~extractor_tool:(Workspace.tool w E.extractor)
      ~verifier_tool:(Workspace.tool w E.verifier)
  in
  Printf.printf "moved cell without rerouting -> LVS equivalent: %b\n"
    verdict.Eda.Lvs.equivalent;

  Bench_util.section "latency";
  let fa_nl = Eda.Circuits.full_adder () in
  let fa_layout = Eda.Layout.place fa_nl in
  Bench_util.run_bechamel ~name:"fig78"
    [
      Test.make ~name:"place full adder" (Staged.stage (fun () -> Eda.Layout.place fa_nl));
      Test.make ~name:"extract full adder" (Staged.stage (fun () -> Eda.Extract.run fa_layout));
      Test.make ~name:"LVS full adder"
        (Staged.stage (fun () ->
             let nl2, _ = Eda.Extract.run fa_layout in
             Eda.Lvs.compare_netlists fa_nl nl2));
      Test.make ~name:"expand to transistors"
        (Staged.stage (fun () -> Eda.Transistor.of_netlist fa_nl));
    ]
