(* A small circuit zoo: the cells the paper's narrative mentions (the
   inverter of Fig. 7, a CMOS full adder from the Fig. 9 browser) plus
   parameterized and random generators for tests and benchmarks. *)

let inverter () =
  Netlist.create ~name:"inverter" ~primary_inputs:[ "in" ]
    ~primary_outputs:[ "out" ]
    [ Netlist.gate "g_inv" Logic.Not [ "in" ] "out" ]

(* The ISCAS-85 c17 benchmark: six NAND2 gates. *)
let c17 () =
  let g = Netlist.gate in
  Netlist.create ~name:"c17"
    ~primary_inputs:[ "n1"; "n2"; "n3"; "n6"; "n7" ]
    ~primary_outputs:[ "n22"; "n23" ]
    [
      g "g10" Logic.Nand [ "n1"; "n3" ] "n10";
      g "g11" Logic.Nand [ "n3"; "n6" ] "n11";
      g "g16" Logic.Nand [ "n2"; "n11" ] "n16";
      g "g19" Logic.Nand [ "n11"; "n7" ] "n19";
      g "g22" Logic.Nand [ "n10"; "n16" ] "n22";
      g "g23" Logic.Nand [ "n16"; "n19" ] "n23";
    ]

let full_adder () =
  let g = Netlist.gate in
  Netlist.create ~name:"full_adder"
    ~primary_inputs:[ "a"; "b"; "cin" ]
    ~primary_outputs:[ "sum"; "cout" ]
    [
      g "g_x1" Logic.Xor [ "a"; "b" ] "x1";
      g "g_sum" Logic.Xor [ "x1"; "cin" ] "sum";
      g "g_a1" Logic.And [ "x1"; "cin" ] "a1";
      g "g_a2" Logic.And [ "a"; "b" ] "a2";
      g "g_cout" Logic.Or [ "a1"; "a2" ] "cout";
    ]

(* n-bit ripple-carry adder built from full adders. *)
let ripple_adder n =
  if n < 1 then invalid_arg "Circuits.ripple_adder";
  let a i = Printf.sprintf "a%d" i
  and b i = Printf.sprintf "b%d" i
  and s i = Printf.sprintf "s%d" i
  and c i = Printf.sprintf "c%d" i in
  let g = Netlist.gate in
  let stage i carry_in =
    let p = Printf.sprintf "p%d" i
    and t1 = Printf.sprintf "t1_%d" i
    and t2 = Printf.sprintf "t2_%d" i in
    [
      g (Printf.sprintf "gx%d" i) Logic.Xor [ a i; b i ] p;
      g (Printf.sprintf "gs%d" i) Logic.Xor [ p; carry_in ] (s i);
      g (Printf.sprintf "g1%d" i) Logic.And [ p; carry_in ] t1;
      g (Printf.sprintf "g2%d" i) Logic.And [ a i; b i ] t2;
      g (Printf.sprintf "gc%d" i) Logic.Or [ t1; t2 ] (c i);
    ]
  in
  let rec build i carry acc =
    if i = n then List.concat (List.rev acc)
    else build (i + 1) (c i) (stage i carry :: acc)
  in
  let gates = build 1 (c 0) [ stage 0 "cin" ] in
  let inputs =
    "cin" :: List.concat_map (fun i -> [ a i; b i ]) (List.init n Fun.id)
  in
  let outputs = List.init n s @ [ c (n - 1) ] in
  Netlist.create
    ~name:(Printf.sprintf "adder%d" n)
    ~primary_inputs:inputs ~primary_outputs:outputs gates

(* n-input odd-parity tree. *)
let parity n =
  if n < 2 then invalid_arg "Circuits.parity";
  let in_net i = Printf.sprintf "i%d" i in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "p%d" !counter
  in
  let gates = ref [] in
  let rec reduce = function
    | [] -> invalid_arg "parity"
    | [ last ] -> last
    | nets ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ last ] -> List.rev (last :: acc)
        | x :: y :: rest ->
          let out = fresh () in
          gates :=
            Netlist.gate (Printf.sprintf "gx_%s" out) Logic.Xor [ x; y ] out
            :: !gates;
          pair (out :: acc) rest
      in
      reduce (pair [] nets)
  in
  let out = reduce (List.init n in_net) in
  let gates =
    !gates
    @ [ Netlist.gate "g_buf_out" Logic.Buf [ out ] "parity" ]
  in
  Netlist.create
    ~name:(Printf.sprintf "parity%d" n)
    ~primary_inputs:(List.init n in_net)
    ~primary_outputs:[ "parity" ] gates

(* 4-to-1 multiplexer. *)
let mux4 () =
  let g = Netlist.gate in
  Netlist.create ~name:"mux4"
    ~primary_inputs:[ "d0"; "d1"; "d2"; "d3"; "s0"; "s1" ]
    ~primary_outputs:[ "y" ]
    [
      g "g_ns0" Logic.Not [ "s0" ] "ns0";
      g "g_ns1" Logic.Not [ "s1" ] "ns1";
      g "g_t0" Logic.And [ "d0"; "ns0"; "ns1" ] "t0";
      g "g_t1" Logic.And [ "d1"; "s0"; "ns1" ] "t1";
      g "g_t2" Logic.And [ "d2"; "ns0"; "s1" ] "t2";
      g "g_t3" Logic.And [ "d3"; "s0"; "s1" ] "t3";
      g "g_y" Logic.Or [ "t0"; "t1"; "t2"; "t3" ] "y";
    ]

(* n-bit binary counter with enable: the classic sequential cell.
   Inputs: en; outputs: q0..q(n-1).  Counts up when en = 1. *)
let counter n =
  if n < 1 then invalid_arg "Circuits.counter";
  let q i = Printf.sprintf "q%d" i
  and d i = Printf.sprintf "d%d" i
  and c i = Printf.sprintf "cy%d" i in
  let g = Netlist.gate in
  (* d_i = q_i xor carry_i; carry_0 = en; carry_{i+1} = carry_i and q_i *)
  let rec build i carry gates =
    if i = n then List.rev gates
    else
      let gates = g (Printf.sprintf "gx%d" i) Logic.Xor [ q i; carry ] (d i) :: gates in
      if i = n - 1 then List.rev gates
      else
        let gates =
          g (Printf.sprintf "gc%d" i) Logic.And [ carry; q i ] (c i) :: gates
        in
        build (i + 1) (c i) gates
  in
  let gates = build 0 "en" [] in
  let flops =
    List.init n (fun i -> Netlist.flop (Printf.sprintf "ff%d" i) ~d:(d i) ~q:(q i))
  in
  Netlist.create ~flops
    ~name:(Printf.sprintf "counter%d" n)
    ~primary_inputs:[ "en" ]
    ~primary_outputs:(List.init n q)
    gates

(* n-bit shift register: q0 <- din, q(i) <- q(i-1). *)
let shift_register n =
  if n < 1 then invalid_arg "Circuits.shift_register";
  let q i = Printf.sprintf "q%d" i in
  let flops =
    List.init n (fun i ->
        Netlist.flop (Printf.sprintf "ff%d" i)
          ~d:(if i = 0 then "din" else q (i - 1))
          ~q:(q i))
  in
  Netlist.create ~flops
    ~name:(Printf.sprintf "shift%d" n)
    ~primary_inputs:[ "din" ]
    ~primary_outputs:[ q (n - 1) ]
    []

(* 4-bit Fibonacci LFSR (taps 4,3), seeded 0001: period 15. *)
let lfsr4 () =
  let g = Netlist.gate in
  Netlist.create
    ~flops:
      [
        Netlist.flop ~init:Logic.V1 "ff0" ~d:"fb" ~q:"q0";
        Netlist.flop "ff1" ~d:"q0" ~q:"q1";
        Netlist.flop "ff2" ~d:"q1" ~q:"q2";
        Netlist.flop "ff3" ~d:"q2" ~q:"q3";
      ]
    ~name:"lfsr4" ~primary_inputs:[] ~primary_outputs:[ "q3" ]
    [ g "g_fb" Logic.Xor [ "q3"; "q2" ] "fb" ]

(* The ISCAS-89 s27 sequential benchmark: 3 flip-flops, 10 gates. *)
let s27 () =
  let g = Netlist.gate in
  Netlist.create ~name:"s27"
    ~flops:
      [
        Netlist.flop "ff5" ~d:"g10" ~q:"g5";
        Netlist.flop "ff6" ~d:"g11" ~q:"g6";
        Netlist.flop "ff7" ~d:"g13" ~q:"g7";
      ]
    ~primary_inputs:[ "g0"; "g1"; "g2"; "g3" ]
    ~primary_outputs:[ "g17" ]
    [
      g "u14" Logic.Not [ "g0" ] "g14";
      g "u17" Logic.Not [ "g11" ] "g17";
      g "u8" Logic.And [ "g14"; "g6" ] "g8";
      g "u15" Logic.Or [ "g12"; "g8" ] "g15";
      g "u16" Logic.Or [ "g3"; "g8" ] "g16";
      g "u9" Logic.Nand [ "g16"; "g15" ] "g9";
      g "u10" Logic.Nor [ "g14"; "g11" ] "g10";
      g "u11" Logic.Nor [ "g5"; "g9" ] "g11";
      g "u12" Logic.Nor [ "g1"; "g7" ] "g12";
      g "u13" Logic.Nor [ "g2"; "g12" ] "g13";
    ]

(* Random combinational netlist: a DAG of [n_gates] gates over
   [n_inputs] primary inputs; every gate output that remains unread
   becomes a primary output. *)
let random ?(name = "random") ~n_inputs ~n_gates rng =
  if n_inputs < 2 || n_gates < 1 then invalid_arg "Circuits.random";
  let in_net i = Printf.sprintf "i%d" i in
  let available = ref (List.init n_inputs in_net) in
  let gates = ref [] in
  for k = 0 to n_gates - 1 do
    let op =
      Rng.pick rng
        Logic.[ Not; And; Or; Nand; Nor; Xor; Buf ]
    in
    let arity =
      match op with
      | Logic.Not | Logic.Buf -> 1
      | Logic.And | Logic.Or | Logic.Nand | Logic.Nor | Logic.Xor | Logic.Xnor
        -> 2 + Rng.int rng 2
    in
    let rec pick_distinct acc n =
      if n = 0 then acc
      else
        let cand = Rng.pick rng !available in
        if List.mem cand acc then pick_distinct acc n
        else pick_distinct (cand :: acc) (n - 1)
    in
    let arity = min arity (List.length !available) in
    let arity = if arity < 1 then 1 else arity in
    let op = if arity = 1 then Rng.pick rng Logic.[ Not; Buf ] else op in
    let inputs = pick_distinct [] arity in
    let out = Printf.sprintf "w%d" k in
    let drive = Rng.pick rng [ 1; 2; 4 ] in
    gates := Netlist.gate ~drive (Printf.sprintf "g%d" k) op inputs out :: !gates;
    available := out :: !available
  done;
  let gates = List.rev !gates in
  let read = Hashtbl.create 64 in
  List.iter
    (fun (g : Netlist.gate) ->
      List.iter (fun i -> Hashtbl.replace read i ()) g.inputs)
    gates;
  let outputs =
    List.filter_map
      (fun (g : Netlist.gate) ->
        if Hashtbl.mem read g.output then None else Some g.output)
      gates
  in
  let outputs = if outputs = [] then [ (List.hd (List.rev gates)).output ] else outputs in
  Netlist.create ~name ~primary_inputs:(List.init n_inputs in_net)
    ~primary_outputs:outputs gates

let all_named =
  [
    ("inverter", fun () -> inverter ());
    ("c17", fun () -> c17 ());
    ("full_adder", fun () -> full_adder ());
    ("adder4", fun () -> ripple_adder 4);
    ("adder8", fun () -> ripple_adder 8);
    ("parity8", fun () -> parity 8);
    ("mux4", fun () -> mux4 ());
  ]
