(* Levelized compiled-code simulation, in the manner of COSMOS
   (Bryant et al., DAC'87), the paper's Fig. 2 example of a tool
   created during design.

   [compile] turns a netlist into a flat instruction program over
   integer-indexed nets; [run] executes it per stimulus vector.  The
   compile step is the expensive part, after which each vector costs a
   single linear pass -- the crossover against the event-driven
   simulator is measured by experiment E2. *)

type instr = {
  op : Logic.gate_op;
  (* indices into the value array *)
  args : int array;
  dst : int;
}

type t = {
  source_name : string;
  source_hash : string;
  net_index : (string * int) list;
  n_nets : int;
  program : instr array;
  input_slots : (string * int) list;
  output_slots : (string * int) list;
  (* sequential designs: per flop, (d slot, q slot, initial value) *)
  flop_slots : (int * int * Logic.value) list;
}

exception Compile_error of string

let compile netlist =
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  let slot net =
    match Hashtbl.find_opt index net with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.add index net i;
      i
  in
  List.iter (fun n -> ignore (slot n)) netlist.Netlist.primary_inputs;
  List.iter
    (fun (f : Netlist.flop) -> ignore (slot f.Netlist.q))
    netlist.Netlist.flops;
  let program =
    Netlist.topological_gates netlist
    |> List.map (fun (g : Netlist.gate) ->
           let args = Array.of_list (List.map slot g.inputs) in
           { op = g.op; args; dst = slot g.output })
    |> Array.of_list
  in
  let net_index = Hashtbl.fold (fun n i acc -> (n, i) :: acc) index [] in
  let lookup net =
    match Hashtbl.find_opt index net with
    | Some i -> i
    | None -> raise (Compile_error (Printf.sprintf "unknown net %s" net))
  in
  {
    source_name = netlist.Netlist.name;
    source_hash = Netlist.hash netlist;
    net_index;
    n_nets = !next;
    program;
    input_slots =
      List.map (fun n -> (n, lookup n)) netlist.Netlist.primary_inputs;
    output_slots =
      List.map (fun n -> (n, lookup n)) netlist.Netlist.primary_outputs;
    flop_slots =
      List.map
        (fun (f : Netlist.flop) ->
          (lookup f.Netlist.d, lookup f.Netlist.q, f.Netlist.init))
        netlist.Netlist.flops;
  }

let instruction_count t = Array.length t.program

(* Evaluate one vector under a flop state; returns outputs and the next
   state. *)
let cycle t state vector =
  let values = Array.make t.n_nets Logic.VX in
  List.iter
    (fun (net, slot) ->
      let v = try List.assoc net vector with Not_found -> Logic.VX in
      values.(slot) <- v)
    t.input_slots;
  List.iter2
    (fun (_, q, _) v -> values.(q) <- v)
    t.flop_slots state;
  Array.iter
    (fun i ->
      let ins = Array.to_list (Array.map (fun a -> values.(a)) i.args) in
      values.(i.dst) <- Logic.eval i.op ins)
    t.program;
  let outs = List.map (fun (net, slot) -> (net, values.(slot))) t.output_slots in
  let state' = List.map (fun (d, _, _) -> values.(d)) t.flop_slots in
  (outs, state')

let initial_state t = List.map (fun (_, _, init) -> init) t.flop_slots

(* One steady-state evaluation of a single vector, from reset. *)
let run_vector t vector = fst (cycle t (initial_state t) vector)

(* Clocked run: the flop state threads across vectors (one edge per
   vector); purely combinational programs are unaffected. *)
let run t stimuli =
  let rec go state acc = function
    | [] -> List.rev acc
    | vector :: rest ->
      let outs, state' = cycle t state vector in
      go state' (outs :: acc) rest
  in
  go (initial_state t) [] (Stimuli.vectors stimuli)

(* Per-net toggle counts across consecutive vectors: the activity
   profile an optimizer can weigh power by (tools as data, section
   3.3). *)
let run_trace t stimuli =
  let toggles = Array.make t.n_nets 0 in
  let previous = Array.make t.n_nets Logic.VX in
  let values = Array.make t.n_nets Logic.VX in
  let first = ref true in
  let state = ref (initial_state t) in
  List.iter
    (fun vector ->
      Array.fill values 0 t.n_nets Logic.VX;
      List.iter
        (fun (net, slot) ->
          let v = try List.assoc net vector with Not_found -> Logic.VX in
          values.(slot) <- v)
        t.input_slots;
      List.iter2 (fun (_, q, _) v -> values.(q) <- v) t.flop_slots !state;
      Array.iter
        (fun i ->
          let ins = Array.to_list (Array.map (fun a -> values.(a)) i.args) in
          values.(i.dst) <- Logic.eval i.op ins)
        t.program;
      state := List.map (fun (d, _, _) -> values.(d)) t.flop_slots;
      if not !first then
        for slot = 0 to t.n_nets - 1 do
          if values.(slot) <> previous.(slot) then
            toggles.(slot) <- toggles.(slot) + 1
        done;
      first := false;
      Array.blit values 0 previous 0 t.n_nets)
    (Stimuli.vectors stimuli);
  List.map (fun (net, slot) -> (net, toggles.(slot))) t.net_index

(* Rebuild a compiled simulator from persisted parts, revalidating the
   slot structure. *)
let rebuild ?(flop_slots = []) ~source_name ~source_hash ~net_index ~n_nets
    ~program ~input_slots ~output_slots () =
  let check_slot what i =
    if i < 0 || i >= n_nets then
      raise (Compile_error (Printf.sprintf "%s slot %d out of range" what i))
  in
  List.iter (fun (_, i) -> check_slot "net" i) net_index;
  List.iter (fun (_, i) -> check_slot "input" i) input_slots;
  List.iter (fun (_, i) -> check_slot "output" i) output_slots;
  List.iter
    (fun (d, q, _) ->
      check_slot "flop d" d;
      check_slot "flop q" q)
    flop_slots;
  let program =
    Array.of_list
      (List.map
         (fun (op, args, dst) ->
           Array.iter (check_slot "argument") args;
           check_slot "destination" dst;
           if not (Logic.arity_ok op (Array.length args)) then
             raise (Compile_error "bad instruction arity");
           { op; args; dst })
         program)
  in
  { source_name; source_hash; net_index; n_nets; program; input_slots;
    output_slots; flop_slots }

let hash t =
  Digest.to_hex (Digest.string (t.source_hash ^ "|" ^ t.source_name))
