(** The extractor tool: recover a netlist from layout geometry alone.

    Connectivity is computed from the artwork (pins and wire segments
    joined at shared via points), so the result reflects what the
    layout actually connects.  The statistics are the co-produced
    second output of the same task invocation (Fig. 5). *)

type statistics = {
  source_layout : string;
  nets_extracted : int;
  cells_extracted : int;
  total_wirelength : int;
  estimated_cap_ff : float;
  vias : int;
  die_area : int;
  opens : int;
      (** floating pins promoted to input ports; healthy layouts: 0 *)
}

exception Extract_error of string

val run : Layout.t -> Netlist.t * statistics
(** Geometric extraction.  Net names are fresh except for ports, which
    keep their pad labels (as real extractors honour text labels).
    Floating nets are promoted to ports and counted in [opens] rather
    than failing. *)

val statistics_hash : statistics -> string
val pp_statistics : Format.formatter -> statistics -> unit
