(* Performance analysis: the design object produced by the simulator
   tools -- static timing plus activity-based power from a simulation
   run. *)

type t = {
  circuit_name : string;
  model_name : string;
  critical_path_ps : int;
  total_switching : int;       (* transitions observed in simulation *)
  dynamic_power : float;       (* arbitrary energy units per vector *)
  vectors_simulated : int;
  gate_count : int;
  output_signature : string;   (* digest of the output responses *)
}

(* One step of the worst path: (net, arrival, gate that set it). *)
type path_step = {
  ps_net : string;
  ps_arrival_ps : int;
  ps_gate : string option;  (* None at a timing start point *)
}

(* Static timing: longest weighted path from any start point (primary
   input or flop output) to any end point (primary output or flop
   input) under the device model, with the worst path traceable. *)
let timing_tables ?(model = Device_model.default) nl =
  let fanout = Netlist.fanout_table nl in
  let arrival = Hashtbl.create 64 in
  let via = Hashtbl.create 64 in  (* net -> worst gate, worst input *)
  List.iter
    (fun n -> Hashtbl.replace arrival n 0)
    (nl.Netlist.primary_inputs @ Netlist.flop_outputs nl);
  let at net = try Hashtbl.find arrival net with Not_found -> 0 in
  List.iter
    (fun (g : Netlist.gate) ->
      let d = Device_model.gate_delay_ps model g ~fanout:(fanout g.output) in
      let worst_in =
        List.fold_left
          (fun best i -> match best with
            | Some b when at b >= at i -> best
            | Some _ | None -> Some i)
          None g.inputs
      in
      let worst = match worst_in with Some i -> at i | None -> 0 in
      Hashtbl.replace arrival g.output (worst + d);
      Hashtbl.replace via g.output (g.gname, worst_in))
    (Netlist.topological_gates nl);
  (at, via)

let timing_end_points nl =
  nl.Netlist.primary_outputs
  @ List.map (fun (f : Netlist.flop) -> f.Netlist.d) nl.Netlist.flops

let critical_path ?(model = Device_model.default) nl =
  let at, _ = timing_tables ~model nl in
  List.fold_left (fun m o -> max m (at o)) 0 (timing_end_points nl)

(* The worst register-to-register / input-to-output path, end point
   first. *)
let critical_path_report ?(model = Device_model.default) nl =
  let at, via = timing_tables ~model nl in
  match timing_end_points nl with
  | [] -> []
  | o :: rest ->
    let endpoint = List.fold_left (fun m o -> if at o > at m then o else m) o rest in
    let rec walk net acc =
      match Hashtbl.find_opt via net with
      | None -> { ps_net = net; ps_arrival_ps = at net; ps_gate = None } :: acc
      | Some (gname, worst_in) ->
        let step =
          { ps_net = net; ps_arrival_ps = at net; ps_gate = Some gname }
        in
        (match worst_in with
        | Some i -> walk i (step :: acc)
        | None -> step :: acc)
    in
    walk endpoint []

let pp_path ppf steps =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf s ->
         Fmt.pf ppf "%6d ps  %-12s %s" s.ps_arrival_ps s.ps_net
           (match s.ps_gate with Some g -> "via " ^ g | None -> "(start)")))
    steps

(* Activity-based dynamic power: switching events weighted by the gate
   energy under the model. *)
let dynamic_power ~model nl (waveform : Waveform.t) =
  let energy_of_net = Hashtbl.create 64 in
  List.iter
    (fun (g : Netlist.gate) ->
      Hashtbl.replace energy_of_net g.output (Device_model.gate_energy model g))
    nl.Netlist.gates;
  List.fold_left
    (fun acc net ->
      match Hashtbl.find_opt energy_of_net net with
      | None -> acc
      | Some e -> acc +. (e *. float_of_int (Waveform.transition_count waveform net)))
    0.0 (Waveform.nets waveform)

let output_signature nl (waveform : Waveform.t) stimuli =
  let buf = Buffer.create 128 in
  let interval = Stimuli.interval_ps stimuli in
  List.iteri
    (fun k _ ->
      let sample_time = ((k + 1) * interval) - 1 in
      List.iter
        (fun o ->
          Buffer.add_string buf
            (Logic.value_name (Waveform.value_at waveform o sample_time)))
        nl.Netlist.primary_outputs)
    (Stimuli.vectors stimuli);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The complete simulator tool behaviour: event-driven run + analysis. *)
let analyze ?(model = Device_model.default) nl stimuli =
  let result = Sim_event.run ~model ~settle_ps:(Stimuli.interval_ps stimuli) nl stimuli in
  let vectors = Stimuli.length stimuli in
  {
    circuit_name = nl.Netlist.name;
    model_name = model.Device_model.model_name;
    critical_path_ps = critical_path ~model nl;
    total_switching = Waveform.total_transitions result.Sim_event.waveform;
    dynamic_power =
      (if vectors = 0 then 0.0
       else dynamic_power ~model nl result.Sim_event.waveform /. float_of_int vectors);
    vectors_simulated = vectors;
    gate_count = Netlist.gate_count nl;
    output_signature = output_signature nl result.Sim_event.waveform stimuli;
  }

(* Summary signature from a compiled-simulation run (Fig. 2 flow):
   functional outputs only, no waveform. *)
let of_compiled_run compiled responses ~model_name =
  let buf = Buffer.create 128 in
  List.iter
    (fun resp ->
      List.iter
        (fun (_, v) -> Buffer.add_string buf (Logic.value_name v))
        resp)
    responses;
  {
    circuit_name = compiled.Sim_compiled.source_name;
    model_name;
    critical_path_ps = 0;
    total_switching = 0;
    dynamic_power = 0.0;
    vectors_simulated = List.length responses;
    gate_count = Sim_compiled.instruction_count compiled;
    output_signature = Digest.to_hex (Digest.string (Buffer.contents buf));
  }

let hash p =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%s|%d|%d|%f|%d|%s" p.circuit_name p.model_name
          p.critical_path_ps p.total_switching p.dynamic_power
          p.vectors_simulated p.output_signature))

let pp ppf p =
  Fmt.pf ppf
    "performance of %s under %s: critical path %d ps, %.1f energy/vector, %d vectors"
    p.circuit_name p.model_name p.critical_path_ps p.dynamic_power
    p.vectors_simulated
