(* Three-valued logic and gate operators for the netlist substrate. *)

type value =
  | V0
  | V1
  | VX  (* unknown / uninitialized *)

type gate_op =
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor

let all_ops = [ Buf; Not; And; Or; Nand; Nor; Xor; Xnor ]

let op_name = function
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"

let op_of_name = function
  | "buf" -> Some Buf
  | "not" -> Some Not
  | "and" -> Some And
  | "or" -> Some Or
  | "nand" -> Some Nand
  | "nor" -> Some Nor
  | "xor" -> Some Xor
  | "xnor" -> Some Xnor
  | _ -> None

let arity_ok op n =
  match op with
  | Buf | Not -> n = 1
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 2

let value_name = function V0 -> "0" | V1 -> "1" | VX -> "x"

let v_not = function V0 -> V1 | V1 -> V0 | VX -> VX

let v_and a b =
  match (a, b) with
  | V0, _ | _, V0 -> V0
  | V1, V1 -> V1
  | VX, (V1 | VX) | V1, VX -> VX

let v_or a b =
  match (a, b) with
  | V1, _ | _, V1 -> V1
  | V0, V0 -> V0
  | VX, (V0 | VX) | V0, VX -> VX

let v_xor a b =
  match (a, b) with
  | VX, _ | _, VX -> VX
  | V0, V0 | V1, V1 -> V0
  | V0, V1 | V1, V0 -> V1

let eval op inputs =
  match (op, inputs) with
  | (Buf | Not), [ a ] -> if op = Buf then a else v_not a
  | (Buf | Not), _ -> invalid_arg "Logic.eval: unary operator arity"
  | _, ([] | [ _ ]) -> invalid_arg "Logic.eval: n-ary operator arity"
  | And, x :: rest -> List.fold_left v_and x rest
  | Or, x :: rest -> List.fold_left v_or x rest
  | Nand, x :: rest -> v_not (List.fold_left v_and x rest)
  | Nor, x :: rest -> v_not (List.fold_left v_or x rest)
  | Xor, x :: rest -> List.fold_left v_xor x rest
  | Xnor, x :: rest -> v_not (List.fold_left v_xor x rest)

let of_bool = function true -> V1 | false -> V0

let to_bool = function V0 -> Some false | V1 -> Some true | VX -> None

(* Intrinsic gate delays in picoseconds; fanout loading is added by the
   timing model. *)
let intrinsic_delay_ps = function
  | Buf -> 8
  | Not -> 10
  | Nand -> 12
  | Nor -> 14
  | And -> 16
  | Or -> 16
  | Xor -> 20
  | Xnor -> 22

(* Relative switching energy, for the power estimate. *)
let energy_weight = function
  | Buf -> 1.0
  | Not -> 1.0
  | Nand -> 1.4
  | Nor -> 1.5
  | And -> 1.8
  | Or -> 1.8
  | Xor -> 2.4
  | Xnor -> 2.5

(* CMOS transistor count of the reference cell implementation. *)
let transistor_count op n_inputs =
  match op with
  | Buf -> 4
  | Not -> 2
  | Nand | Nor -> 2 * n_inputs
  | And | Or -> (2 * n_inputs) + 2
  | Xor | Xnor -> 10 + (6 * (n_inputs - 2))
