(** A small deterministic pseudo-random generator (splitmix64).

    Workload generation, optimizer search and random netlists must be
    reproducible and independent of the global [Random] state, so every
    consumer threads an explicit generator. *)

type t

val create : int -> t
(** A generator seeded deterministically. *)

val copy : t -> t
(** An independent generator continuing from the same state. *)

val next : t -> int64
(** The next raw 64-bit value; advances the state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element. @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates permutation. *)
